// Package repro is a from-scratch Go reproduction of
//
//	Xiaofei Zhang, Lei Chen, Min Wang.
//	"Efficient Multi-way Theta-Join Processing Using MapReduce."
//	PVLDB 5(11): 1184–1195, 2012.
//
// The system plans an N-way theta-join as a set of MapReduce jobs
// selected from the pruned join-path graph G'_JP, evaluates several
// theta conditions in one job by partitioning the cross-product
// hyper-cube with a Hilbert space-filling curve, and schedules the
// chosen jobs on k_P bounded processing units with an I/O- and
// network-aware cost model. Everything the paper depends on — the
// MapReduce runtime itself, a block-based DFS, the YSmart/Hive/Pig
// competitor planners, the mobile CDR and TPC-H workloads — is
// implemented in this module; see DESIGN.md for the system inventory
// and EXPERIMENTS.md for paper-vs-measured results.
//
// Entry points:
//
//   - internal/core: the planner/executor (Planner.Plan / Execute)
//   - cmd/thetabench: regenerate every evaluation table and figure
//   - cmd/thetajoin: plan and run a query over CSV relations
//   - examples/: quickstart, travelplan, mobilecalls, tpch
//
// The top-level bench_test.go exposes one testing.B benchmark per
// table/figure of the paper's evaluation section.
package repro
