package repro

// One testing.B benchmark per table and figure of the paper's
// evaluation section (§6). Each iteration regenerates the experiment's
// data series on the simulated cluster in quick mode (trimmed sweeps);
// `go run ./cmd/thetabench` produces the full series.
//
// The reported ns/op measures the wall-clock cost of reproducing the
// experiment, not the simulated cluster time (which the tables print).

import (
	"io"
	"testing"

	"repro/internal/bench"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	suite := bench.NewSuite(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := suite.Run(id, io.Discard); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// BenchmarkTable1Config regenerates Table 1 (Hadoop parameter
// configuration).
func BenchmarkTable1Config(b *testing.B) { runExperiment(b, bench.ExpTable1) }

// BenchmarkFig6ReduceSweep regenerates Fig. 6: sample join execution
// time across reduce-task counts at several input volumes.
func BenchmarkFig6ReduceSweep(b *testing.B) { runExperiment(b, bench.ExpFig6) }

// BenchmarkFig7aBestKR regenerates Fig. 7a: the model's optimal
// reducer count as a function of map output volume.
func BenchmarkFig7aBestKR(b *testing.B) { runExperiment(b, bench.ExpFig7a) }

// BenchmarkFig7bPQ regenerates Fig. 7b: the calibrated p (spill) and q
// (connection) cost variables across map output volumes.
func BenchmarkFig7bPQ(b *testing.B) { runExperiment(b, bench.ExpFig7b) }

// BenchmarkFig8CostModel regenerates Fig. 8: analytic Eq. 1–6 estimate
// vs the event-driven simulated execution time of a real self-join.
func BenchmarkFig8CostModel(b *testing.B) { runExperiment(b, bench.ExpFig8) }

// BenchmarkTable2QueryStats regenerates Table 2: mobile benchmark
// query statistics including measured result selectivities.
func BenchmarkTable2QueryStats(b *testing.B) { runExperiment(b, bench.ExpTable2) }

// BenchmarkFig9Mobile96 regenerates Fig. 9: mobile queries Q1–Q4, our
// method vs YSmart/Hive/Pig, kP ≤ 96.
func BenchmarkFig9Mobile96(b *testing.B) { runExperiment(b, bench.ExpFig9) }

// BenchmarkFig10Mobile64 regenerates Fig. 10: the same comparison with
// kP ≤ 64, where the baselines' fixed 96-reducer requests run in
// multiple waves.
func BenchmarkFig10Mobile64(b *testing.B) { runExperiment(b, bench.ExpFig10) }

// BenchmarkFig11Loading regenerates Fig. 11: data loading time of
// Hive vs plain upload vs our sampling+index load.
func BenchmarkFig11Loading(b *testing.B) { runExperiment(b, bench.ExpFig11) }

// BenchmarkTable3TPCHStats regenerates Table 3: TPC-H query statistics.
func BenchmarkTable3TPCHStats(b *testing.B) { runExperiment(b, bench.ExpTable3) }

// BenchmarkFig12TPCH96 regenerates Fig. 12: TPC-H Q7/Q17/Q18/Q21,
// kP ≤ 96.
func BenchmarkFig12TPCH96(b *testing.B) { runExperiment(b, bench.ExpFig12) }

// BenchmarkFig13TPCH64 regenerates Fig. 13: the same with kP ≤ 64.
func BenchmarkFig13TPCH64(b *testing.B) { runExperiment(b, bench.ExpFig13) }

// BenchmarkAblations regenerates the four design-choice ablations:
// Hilbert vs row-major vs random partitioning, one-job multiway vs
// pairwise+merge vs cascade, model-chosen kR vs max reducers, and
// kP-aware scheduling vs oblivious serial execution.
func BenchmarkAblations(b *testing.B) { runExperiment(b, bench.ExpAblation) }
