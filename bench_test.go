package repro

// One testing.B benchmark per table and figure of the paper's
// evaluation section (§6). Each iteration regenerates the experiment's
// data series on the simulated cluster in quick mode (trimmed sweeps);
// `go run ./cmd/thetabench` produces the full series.
//
// The reported ns/op measures the wall-clock cost of reproducing the
// experiment, not the simulated cluster time (which the tables print).

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/mr"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/workloads"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	suite := bench.NewSuite(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := suite.Run(id, io.Discard); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// BenchmarkTable1Config regenerates Table 1 (Hadoop parameter
// configuration).
func BenchmarkTable1Config(b *testing.B) { runExperiment(b, bench.ExpTable1) }

// BenchmarkFig6ReduceSweep regenerates Fig. 6: sample join execution
// time across reduce-task counts at several input volumes.
func BenchmarkFig6ReduceSweep(b *testing.B) { runExperiment(b, bench.ExpFig6) }

// BenchmarkFig7aBestKR regenerates Fig. 7a: the model's optimal
// reducer count as a function of map output volume.
func BenchmarkFig7aBestKR(b *testing.B) { runExperiment(b, bench.ExpFig7a) }

// BenchmarkFig7bPQ regenerates Fig. 7b: the calibrated p (spill) and q
// (connection) cost variables across map output volumes.
func BenchmarkFig7bPQ(b *testing.B) { runExperiment(b, bench.ExpFig7b) }

// BenchmarkFig8CostModel regenerates Fig. 8: analytic Eq. 1–6 estimate
// vs the event-driven simulated execution time of a real self-join.
func BenchmarkFig8CostModel(b *testing.B) { runExperiment(b, bench.ExpFig8) }

// BenchmarkTable2QueryStats regenerates Table 2: mobile benchmark
// query statistics including measured result selectivities.
func BenchmarkTable2QueryStats(b *testing.B) { runExperiment(b, bench.ExpTable2) }

// BenchmarkFig9Mobile96 regenerates Fig. 9: mobile queries Q1–Q4, our
// method vs YSmart/Hive/Pig, kP ≤ 96.
func BenchmarkFig9Mobile96(b *testing.B) { runExperiment(b, bench.ExpFig9) }

// BenchmarkFig10Mobile64 regenerates Fig. 10: the same comparison with
// kP ≤ 64, where the baselines' fixed 96-reducer requests run in
// multiple waves.
func BenchmarkFig10Mobile64(b *testing.B) { runExperiment(b, bench.ExpFig10) }

// BenchmarkFig11Loading regenerates Fig. 11: data loading time of
// Hive vs plain upload vs our sampling+index load.
func BenchmarkFig11Loading(b *testing.B) { runExperiment(b, bench.ExpFig11) }

// BenchmarkTable3TPCHStats regenerates Table 3: TPC-H query statistics.
func BenchmarkTable3TPCHStats(b *testing.B) { runExperiment(b, bench.ExpTable3) }

// BenchmarkFig12TPCH96 regenerates Fig. 12: TPC-H Q7/Q17/Q18/Q21,
// kP ≤ 96.
func BenchmarkFig12TPCH96(b *testing.B) { runExperiment(b, bench.ExpFig12) }

// BenchmarkFig13TPCH64 regenerates Fig. 13: the same with kP ≤ 64.
func BenchmarkFig13TPCH64(b *testing.B) { runExperiment(b, bench.ExpFig13) }

// BenchmarkAblations regenerates the four design-choice ablations:
// Hilbert vs row-major vs random partitioning, one-job multiway vs
// pairwise+merge vs cascade, model-chosen kR vs max reducers, and
// kP-aware scheduling vs oblivious serial execution.
func BenchmarkAblations(b *testing.B) { runExperiment(b, bench.ExpAblation) }

// ---- Engine-level benchmarks (not paper figures) --------------------
//
// BenchmarkShuffle and BenchmarkConcurrentPlan track the wall-clock
// effect of the pipelined executor: the parallel partitioned shuffle
// inside one job, and concurrent plan execution across jobs. Compare
// the workers=1 / serial sub-benchmarks against the parallel ones.

func shuffleJob(n, fanout, reducers int) *mr.Job {
	in := relation.New("S", relation.MustSchema(
		relation.Column{Name: "v", Kind: relation.KindInt},
	))
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		in.MustAppend(relation.Tuple{relation.Int(int64(rng.Intn(1 << 20)))})
	}
	return &mr.Job{
		Name: "shuffle-bench",
		Inputs: []mr.Input{{Rel: in, Map: func(t relation.Tuple, emit mr.Emitter) {
			v := uint64(t[0].Int64())
			for f := 0; f < fanout; f++ {
				emit(v*31+uint64(f), 0, t)
			}
		}}},
		Reduce: func(key uint64, values []mr.Tagged, ctx *mr.ReduceContext) {
			ctx.AddWork(int64(len(values)))
		},
		NumReducers:  reducers,
		OutputName:   "out",
		OutputSchema: relation.MustSchema(relation.Column{Name: "v", Kind: relation.KindInt}),
	}
}

// BenchmarkShuffle measures one map-heavy job whose cost is dominated
// by partitioning, merging and sorting shuffled pairs.
func BenchmarkShuffle(b *testing.B) {
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := mr.DefaultConfig()
			cfg.TuplesPerMapTask = 1024
			cfg.MaxParallelWorkers = workers
			job := shuffleJob(60000, 4, 32) // mr.Run never mutates the job
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mr.Run(context.Background(), cfg, nil, job); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSkewedShuffle compares the plain hash partitioner against
// the skew-aware partitioner on a Zipf(1.2)-keyed equi-join: the
// baseline's hottest reducer serialises the hot key's join work, the
// skew-aware variant splits it across sub-reducers. Each sub-benchmark
// reports the measured reducer balance ratio (MaxReducerInput / mean)
// alongside ns/op.
func BenchmarkSkewedShuffle(b *testing.B) {
	zipfRel := func(name string, n int, seed int64) *relation.Relation {
		r := relation.New(name, relation.MustSchema(
			relation.Column{Name: "k", Kind: relation.KindInt},
			relation.Column{Name: "v", Kind: relation.KindInt},
		))
		rng := rand.New(rand.NewSource(seed))
		z := rand.NewZipf(rng, 1.2, 1, 4095)
		for i := 0; i < n; i++ {
			r.MustAppend(relation.Tuple{
				relation.Int(int64(z.Uint64())),
				relation.Int(int64(rng.Intn(1 << 16))),
			})
		}
		return r
	}
	const kr = 32
	db, err := core.NewDB(1000, 1, zipfRel("L", 30000, 7), zipfRel("R", 3000, 8))
	if err != nil {
		b.Fatal(err)
	}
	rel := func(name string) *relation.Relation {
		r, err := db.Relation(name)
		if err != nil {
			b.Fatal(err)
		}
		return r
	}
	conds := predicate.Conjunction{predicate.C("L", "k", predicate.EQ, "R", "k")}
	baseJob, err := core.BuildHashEquiJob("skewbench-base", rel("L"), rel("R"), conds, kr)
	if err != nil {
		b.Fatal(err)
	}
	plan := core.SkewPlanFor(db.Catalog, core.KindHashEqui, conds, kr, 0)
	if plan == nil {
		b.Fatal("no skew plan on Zipf(1.2) keys")
	}
	skewJob, err := core.BuildHashEquiJobSkew("skewbench-skew", rel("L"), rel("R"), conds, kr, plan)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		job  *mr.Job
	}{{"baseline", baseJob}, {"skew-aware", skewJob}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := mr.DefaultConfig()
			cfg.TuplesPerMapTask = 2048
			var balance float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := mr.Run(context.Background(), cfg, nil, mode.job)
				if err != nil {
					b.Fatal(err)
				}
				balance = res.Metrics.BalanceRatio
			}
			b.ReportMetric(balance, "balance")
		})
	}
}

// BenchmarkReduceJoin measures reducer-local join evaluation on
// reduce-heavy configurations: few reducers, large per-group candidate
// lists, so the inner loops dominate over map/shuffle. The indexed
// sub-benchmarks run the compiled evaluator (hash probes on
// equalities, intersected sorted-run ranges on band predicates); the
// linear sub-benchmarks are the nested-loop ablation
// (core.IndexedJoinEval=false) over the same jobs. Each reports the
// CombinationsChecked metric alongside ns/op and allocs/op.
func BenchmarkReduceJoin(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	mk := func(name string, n, domain int) *relation.Relation {
		r := relation.New(name, relation.MustSchema(
			relation.Column{Name: "a", Kind: relation.KindInt},
			relation.Column{Name: "b", Kind: relation.KindInt},
		))
		for i := 0; i < n; i++ {
			r.MustAppend(relation.Tuple{
				relation.Int(int64(rng.Intn(domain))),
				relation.Int(int64(rng.Intn(domain))),
			})
		}
		return r
	}
	db, err := core.NewDB(1000, 1, mk("A", 4000, 6000), mk("B", 3000, 6000), mk("C", 2000, 300))
	if err != nil {
		b.Fatal(err)
	}
	rel := func(name string) *relation.Relation {
		r, err := db.Relation(name)
		if err != nil {
			b.Fatal(err)
		}
		return r
	}
	// Band theta-join: two range conditions on the same column, the
	// sorted-run intersection's best case.
	thetaConds := predicate.Conjunction{
		predicate.C("A", "a", predicate.LT, "B", "a"),
		predicate.C("A", "a", predicate.GT, "B", "a").WithOffsets(0, -30),
	}
	// Equi-connected 3-way with a theta residual: hash probes at each
	// extension step.
	gridConds := predicate.Conjunction{
		predicate.C("A", "b", predicate.EQ, "C", "b"),
		predicate.C("B", "b", predicate.EQ, "C", "b"),
		predicate.C("A", "a", predicate.LT, "B", "a"),
	}
	variants := []struct {
		name    string
		indexed bool
		build   func() (*mr.Job, error)
	}{
		{"theta-band/indexed", true, nil},
		{"theta-band/linear", false, nil},
		{"share-grid/indexed", true, nil},
		{"share-grid/linear", false, nil},
	}
	buildTheta := func() (*mr.Job, error) {
		job, _, err := core.BuildThetaJob("rjbench-theta", []*relation.Relation{rel("A"), rel("B")}, thetaConds, 4, 1<<12)
		return job, err
	}
	buildGrid := func() (*mr.Job, error) {
		return core.BuildShareGridJob("rjbench-grid", []*relation.Relation{rel("C"), rel("A"), rel("B")}, gridConds, 8, 1<<12)
	}
	variants[0].build, variants[1].build = buildTheta, buildTheta
	variants[2].build, variants[3].build = buildGrid, buildGrid
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			prev := core.IndexedJoinEval
			core.IndexedJoinEval = v.indexed
			defer func() { core.IndexedJoinEval = prev }()
			job, err := v.build() // the evaluator snapshots the flag here
			if err != nil {
				b.Fatal(err)
			}
			cfg := mr.DefaultConfig()
			cfg.TuplesPerMapTask = 2048
			var combs int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := mr.Run(context.Background(), cfg, nil, job)
				if err != nil {
					b.Fatal(err)
				}
				combs = res.Metrics.CombinationsChecked
			}
			b.ReportMetric(float64(combs), "combinations")
		})
	}
}

func concurrentPlanFixture(b *testing.B, kp, units int) (*core.Planner, *core.Plan, *core.DB) {
	b.Helper()
	mk := func(name string, n int, rng *rand.Rand) *relation.Relation {
		r := relation.New(name, relation.MustSchema(
			relation.Column{Name: "a", Kind: relation.KindInt},
			relation.Column{Name: "b", Kind: relation.KindInt},
		))
		for i := 0; i < n; i++ {
			r.MustAppend(relation.Tuple{
				relation.Int(int64(rng.Intn(4000))),
				relation.Int(int64(rng.Intn(4000))),
			})
		}
		return r
	}
	rng := rand.New(rand.NewSource(9))
	db, err := core.NewDB(300, 1, mk("A", 2500, rng), mk("B", 2500, rng), mk("C", 2500, rng))
	if err != nil {
		b.Fatal(err)
	}
	q := query.MustNew("bench2", []string{"A", "B", "C"}, []predicate.Condition{
		predicate.C("A", "a", predicate.LT, "B", "a"),
		predicate.C("B", "b", predicate.GE, "C", "b"),
	})
	cfg := mr.DefaultConfig()
	cfg.TuplesPerMapTask = 256
	pl := core.NewPlanner(cfg, kp)
	pl.Opts.MaxCells = 1 << 12
	// Band-join conjunctions (x < y AND x > y-4) keep the outputs and
	// the final merge small, so the measurement is dominated by the two
	// jobs' map/shuffle/reduce work.
	band := func(l, lc, r, rc string) predicate.Conjunction {
		return predicate.Conjunction{
			predicate.C(l, lc, predicate.LT, r, rc),
			predicate.C(l, lc, predicate.GT, r, rc).WithOffsets(0, -4),
		}
	}
	plan := &core.Plan{
		Query: q,
		Jobs: []core.PlannedJob{
			{Name: "bench2-j1", Conds: band("A", "a", "B", "a"), RelOrder: []string{"A", "B"},
				Kind: core.KindHilbertTheta, Reducers: 4, Units: units},
			{Name: "bench2-j2", Conds: band("B", "b", "C", "b"), RelOrder: []string{"B", "C"},
				Kind: core.KindHilbertTheta, Reducers: 4, Units: units},
		},
	}
	return pl, plan, db
}

// BenchmarkConcurrentPlan measures executing a 2-independent-job plan.
// In the serial variant each job demands the full K_P allotment, so
// the unit semaphore admits one at a time; in the concurrent variant
// each takes half the units and the jobs overlap.
func BenchmarkConcurrentPlan(b *testing.B) {
	const kp = 8
	for _, mode := range []struct {
		name  string
		units int
	}{{"serial", kp}, {"concurrent", kp / 2}} {
		b.Run(mode.name, func(b *testing.B) {
			pl, plan, db := concurrentPlanFixture(b, kp, mode.units)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := pl.Execute(plan, db)
				if err != nil {
					b.Fatal(err)
				}
				if mode.units < kp && res.MaxConcurrentJobs < 2 {
					b.Fatalf("expected overlap, got MaxConcurrentJobs=%d", res.MaxConcurrentJobs)
				}
			}
		})
	}
}

// BenchmarkStringJoinJob is the end-to-end companion of
// internal/core's BenchmarkStringJoin: the same interned vs Compare
// fallback ablation run as whole MapReduce jobs on the mobile
// workload, so the shuffle-byte win shows up alongside the reducer
// speedup (shuffle-MB/op reports the per-iteration network volume).
// Job ns/op mixes map, shuffle and output materialisation with the
// condition evaluation; the reducer-only factor is what
// BenchmarkStringJoin isolates.
func BenchmarkStringJoinJob(b *testing.B) {
	mkDB := func(interned bool, tuples int) *core.DB {
		prev := core.StringInterning
		core.StringInterning = interned
		defer func() { core.StringInterning = prev }()
		cfg := workloads.DefaultMobileConfig()
		cfg.Tuples = tuples
		cfg.Stations = 200
		db, err := workloads.MobileDB(cfg, 1000)
		if err != nil {
			b.Fatal(err)
		}
		return db
	}
	equiConds := predicate.Conjunction{
		predicate.C("t1", "bs", predicate.EQ, "t2", "bs"),
		predicate.C("t1", "bt", predicate.LT, "t2", "bt"),
	}
	bandConds := predicate.Conjunction{
		predicate.C("t1", "bs", predicate.LE, "t3", "bs"),
		predicate.C("t2", "bs", predicate.GE, "t3", "bs"),
		predicate.C("t1", "d", predicate.EQ, "t2", "d"),
	}
	for _, v := range []struct {
		name     string
		interned bool
		tuples   int
		rels     []string
		conds    predicate.Conjunction
	}{
		// The 3-way band touches cubically many combinations, so it
		// runs on a smaller table than the pairwise equi-join.
		{"string-equi/interned", true, 3000, []string{"t1", "t2"}, equiConds},
		{"string-equi/fallback", false, 3000, []string{"t1", "t2"}, equiConds},
		{"string-band/interned", true, 240, []string{"t1", "t2", "t3"}, bandConds},
		{"string-band/fallback", false, 240, []string{"t1", "t2", "t3"}, bandConds},
	} {
		b.Run(v.name, func(b *testing.B) {
			db := mkDB(v.interned, v.tuples)
			rels := make([]*relation.Relation, len(v.rels))
			for i, name := range v.rels {
				r, err := db.Relation(name)
				if err != nil {
					b.Fatal(err)
				}
				rels[i] = r
			}
			job, _, err := core.BuildThetaJob("sjbench", rels, v.conds, 4, 1<<12)
			if err != nil {
				b.Fatal(err)
			}
			cfg := mr.DefaultConfig()
			cfg.TuplesPerMapTask = 2048
			var shuffleBytes int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := mr.Run(context.Background(), cfg, nil, job)
				if err != nil {
					b.Fatal(err)
				}
				shuffleBytes = res.Metrics.ShuffleBytes
			}
			b.ReportMetric(float64(shuffleBytes)/1e6, "shuffle-MB")
		})
	}
}
