// Package obs is the execution-observability layer: wall-clock span
// tracing and a structured metrics registry, threaded through the mr
// engine, the core plan executor and the skew router via context.
//
// # Nil-tracer contract
//
// Every method in this package is nil-safe along the whole chain:
//
//	var o *Obs                       // nil: observability disabled
//	sh := o.Shard("job/map-w0")      // nil *Shard
//	sp := sh.Start("map")            // nil *Span
//	sp.End()                         // no-op
//	o.Counter("mr/pairs").Add(1)     // no-op
//	o.Histogram("mr/run").Observe(3) // no-op
//
// Instrumented code therefore never branches on "is tracing on": it
// unconditionally calls Start/End/Instant/Add/Observe, and a disabled
// run pays only a nil receiver check per call site. Call sites are
// placed at task granularity (per map task, per reduce partition, per
// merge step) — never per tuple — so enabled runs stay low-overhead
// and disabled runs are unmeasurable against the CI bench gate.
//
// # Determinism guarantee
//
// Tracing and metrics are write-only observers of the execution: no
// code path reads a span, counter or histogram to make a decision, so
// enabling observability cannot change any relation output, modeled
// metric, plan choice or replan decision. The engine's determinism
// contract (identical output for any worker count) holds bit-for-bit
// with tracing on; internal/core's TestTracedExecutionDeterminism
// asserts it under -race. Span timestamps and durations are wall
// clock and naturally vary between runs — the trace's *structure*
// (which spans exist, on which shards, with which args) is a pure
// function of the job specification.
//
// # Shards and races
//
// A Tracer hands out Shards; a Shard buffers events without locking
// and therefore must only be used by one goroutine at a time. Worker
// loops take one shard per worker goroutine (Tracer.Shard is itself
// safe for concurrent use), which keeps the hot path lock-free and
// the whole arrangement race-free. WriteJSON/Events must only be
// called after every shard user has finished.
//
// # Export
//
// Tracer.WriteJSON emits Chrome trace-event JSON ("traceEvents"
// array, "X" complete and "i" instant phases, microsecond timestamps
// relative to the tracer epoch) loadable in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing. Events are sorted by
// timestamp, so the exported stream is monotonic. Registry.WriteJSON
// emits a {"counters": {...}, "histograms": {...}} document with
// count/sum/min/max/mean and power-of-two bucket counts.
package obs
