package obs

import "context"

// Obs bundles the two observability sinks one execution threads
// through its stack: a span tracer and a metrics registry. Either may
// be nil independently; a nil *Obs disables both. See the package doc
// for the nil contract.
type Obs struct {
	Tracer  *Tracer
	Metrics *Registry
}

// Shard derives a tracer shard; nil-safe on both o and o.Tracer.
func (o *Obs) Shard(name string) *Shard {
	if o == nil {
		return nil
	}
	return o.Tracer.Shard(name)
}

// Counter resolves a metrics counter; nil-safe.
func (o *Obs) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics.Counter(name)
}

// Histogram resolves a metrics histogram; nil-safe.
func (o *Obs) Histogram(name string) *Histogram {
	if o == nil {
		return nil
	}
	return o.Metrics.Histogram(name)
}

// Tracing reports whether span recording is active — the one branch
// instrumented loops may take to skip per-worker shard bookkeeping
// entirely when disabled.
func (o *Obs) Tracing() bool { return o != nil && o.Tracer != nil }

type ctxKey struct{}

// NewContext attaches o to the context; a nil o returns ctx unchanged,
// so downstream FromContext keeps seeing "disabled".
func NewContext(ctx context.Context, o *Obs) context.Context {
	if o == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, o)
}

// FromContext extracts the execution's Obs, or nil when none is
// attached (observability disabled). Nil-safe on ctx.
func FromContext(ctx context.Context) *Obs {
	if ctx == nil {
		return nil
	}
	o, _ := ctx.Value(ctxKey{}).(*Obs)
	return o
}
