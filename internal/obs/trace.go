package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Arg is one key/value annotation attached to a span or instant event;
// it lands in the trace event's "args" object.
type Arg struct {
	Key string
	Val any
}

// A builds an Arg.
func A(key string, val any) Arg { return Arg{Key: key, Val: val} }

// Tracer records wall-clock spans across many goroutines by handing
// out per-goroutine Shards. The zero value is not usable; a nil
// *Tracer is the disabled tracer (every derived Shard/Span is nil).
type Tracer struct {
	mu     sync.Mutex
	epoch  time.Time
	shards []*Shard
}

// NewTracer starts a tracer whose epoch (timestamp zero) is now.
func NewTracer() *Tracer { return &Tracer{epoch: time.Now()} }

// Shard allocates a new event buffer owned by one goroutine. The name
// becomes the Perfetto track (thread) name; several shards may share a
// display name and still get distinct tracks. Safe for concurrent use;
// nil-safe (a nil tracer yields a nil shard).
func (t *Tracer) Shard(name string) *Shard {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Shard{tr: t, tid: len(t.shards) + 1, name: name}
	t.shards = append(t.shards, s)
	return s
}

// Shard is a single-goroutine event buffer: appends take no lock, so
// the owning goroutine traces without contention. Use one shard per
// worker goroutine.
type Shard struct {
	tr     *Tracer
	tid    int
	name   string
	events []event
}

type event struct {
	name  string
	ph    byte // 'X' complete, 'i' instant
	start time.Time
	dur   time.Duration
	args  []Arg
}

// Span is an open interval started on a shard; End closes it and
// records a complete ("X") trace event. A nil span (from a nil shard)
// ignores End.
type Span struct {
	sh    *Shard
	name  string
	start time.Time
	args  []Arg
}

// Start opens a span. Nil-safe.
func (s *Shard) Start(name string, args ...Arg) *Span {
	if s == nil {
		return nil
	}
	return &Span{sh: s, name: name, start: time.Now(), args: args}
}

// End closes the span, appending extra args recorded during the work.
func (sp *Span) End(args ...Arg) {
	if sp == nil {
		return
	}
	a := sp.args
	if len(args) > 0 {
		a = append(append([]Arg(nil), a...), args...)
	}
	sp.sh.events = append(sp.sh.events, event{
		name: sp.name, ph: 'X', start: sp.start, dur: time.Since(sp.start), args: a,
	})
}

// Instant records a zero-duration event. Nil-safe.
func (s *Shard) Instant(name string, args ...Arg) {
	if s == nil {
		return
	}
	s.events = append(s.events, event{name: name, ph: 'i', start: time.Now(), args: args})
}

// TraceEvent is one exported Chrome trace-event JSON object.
type TraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"` // microseconds since the tracer epoch
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// Events returns every recorded span/instant event sorted by
// (timestamp, tid): a monotonic stream. Must only be called once all
// shard-owning goroutines have finished. Nil-safe (returns nil).
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []TraceEvent
	for _, sh := range t.shards {
		for _, e := range sh.events {
			te := TraceEvent{
				Name: e.name,
				Ph:   string(e.ph),
				Ts:   e.start.Sub(t.epoch).Microseconds(),
				Dur:  e.dur.Microseconds(),
				Pid:  1,
				Tid:  sh.tid,
			}
			if te.Ts < 0 {
				te.Ts = 0
			}
			if e.ph == 'i' {
				te.S = "t"
			}
			if len(e.args) > 0 {
				te.Args = make(map[string]any, len(e.args))
				for _, a := range e.args {
					te.Args[a.Key] = a.Val
				}
			}
			out = append(out, te)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Ts != out[j].Ts {
			return out[i].Ts < out[j].Ts
		}
		return out[i].Tid < out[j].Tid
	})
	return out
}

// traceFile is the exported JSON document shape.
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteJSON writes the Chrome trace-event JSON document: thread-name
// metadata for every shard followed by the monotonic event stream.
// Load the file in Perfetto (ui.perfetto.dev) or chrome://tracing.
// Must only be called once all shard users have finished. Nil-safe
// (writes an empty trace).
func (t *Tracer) WriteJSON(w io.Writer) error {
	doc := traceFile{TraceEvents: []TraceEvent{}, DisplayTimeUnit: "ms"}
	if t != nil {
		t.mu.Lock()
		for _, sh := range t.shards {
			doc.TraceEvents = append(doc.TraceEvents, TraceEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: sh.tid,
				Args: map[string]any{"name": sh.name},
			})
		}
		t.mu.Unlock()
		doc.TraceEvents = append(doc.TraceEvents, t.Events()...)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
