package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

// TestNilSafety drives the whole disabled chain: every call on nil
// receivers must be a no-op, never a panic — the contract that lets
// instrumented code skip "is tracing on" branches.
func TestNilSafety(t *testing.T) {
	var o *Obs
	sh := o.Shard("x")
	if sh != nil {
		t.Fatal("nil Obs produced a live shard")
	}
	sp := sh.Start("span", A("k", 1))
	sp.End(A("k2", 2))
	sh.Instant("i")
	o.Counter("c").Add(5)
	if got := o.Counter("c").Value(); got != 0 {
		t.Errorf("nil counter value = %d", got)
	}
	o.Histogram("h").Observe(3)
	if s := o.Histogram("h").Snapshot(); s.Count != 0 {
		t.Errorf("nil histogram count = %d", s.Count)
	}
	if o.Tracing() {
		t.Error("nil Obs reports tracing enabled")
	}
	// Obs with nil members is equally inert.
	o = &Obs{}
	if o.Shard("x") != nil || o.Counter("c") != nil || o.Tracing() {
		t.Error("Obs{nil,nil} is not fully disabled")
	}
	var tr *Tracer
	if err := tr.WriteJSON(&bytes.Buffer{}); err != nil {
		t.Errorf("nil tracer WriteJSON: %v", err)
	}
	var reg *Registry
	if err := reg.WriteJSON(&bytes.Buffer{}); err != nil {
		t.Errorf("nil registry WriteJSON: %v", err)
	}
}

// TestTracerEventsMonotonic records spans from several goroutines on
// separate shards and asserts the exported stream is well-formed and
// sorted by timestamp.
func TestTracerEventsMonotonic(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := tr.Shard("worker")
			for i := 0; i < 5; i++ {
				sp := sh.Start("step", A("i", i))
				sp.End(A("w", w))
				sh.Instant("tick")
			}
		}(w)
	}
	wg.Wait()
	evs := tr.Events()
	if want := 4 * 5 * 2; len(evs) != want {
		t.Fatalf("got %d events, want %d", len(evs), want)
	}
	for i, e := range evs {
		if e.Name == "" || (e.Ph != "X" && e.Ph != "i") {
			t.Fatalf("event %d malformed: %+v", i, e)
		}
		if e.Ts < 0 || e.Dur < 0 {
			t.Fatalf("event %d has negative time: %+v", i, e)
		}
		if i > 0 && e.Ts < evs[i-1].Ts {
			t.Fatalf("event %d breaks monotonicity: ts %d after %d", i, e.Ts, evs[i-1].Ts)
		}
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	// 4 thread_name metadata events + the spans/instants.
	if want := 4 + len(evs); len(doc.TraceEvents) != want {
		t.Errorf("JSON has %d events, want %d", len(doc.TraceEvents), want)
	}
}

func TestSpanArgsAndDuration(t *testing.T) {
	tr := NewTracer()
	sh := tr.Shard("s")
	sp := sh.Start("work", A("in", 10))
	time.Sleep(2 * time.Millisecond)
	sp.End(A("out", 20))
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events", len(evs))
	}
	e := evs[0]
	if e.Dur <= 0 {
		t.Errorf("span duration %d, want > 0", e.Dur)
	}
	if e.Args["in"] != 10 || e.Args["out"] != 20 {
		t.Errorf("args = %v", e.Args)
	}
}

func TestRegistryCountersAndHistograms(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Counter("pairs").Add(10)
			for _, v := range []int64{1, 2, 7, 1024} {
				r.Histogram("bytes").Observe(v)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("pairs").Value(); got != 80 {
		t.Errorf("counter = %d, want 80", got)
	}
	s := r.Histogram("bytes").Snapshot()
	if s.Count != 32 || s.Min != 1 || s.Max != 1024 {
		t.Errorf("snapshot = %+v", s)
	}
	if s.Sum != 8*(1+2+7+1024) {
		t.Errorf("sum = %d", s.Sum)
	}
	if math.Abs(s.Mean-float64(s.Sum)/32) > 1e-9 {
		t.Errorf("mean = %f", s.Mean)
	}
	// 1 → bucket 1, 2 → bucket 2, 7 → bucket 3, 1024 → bucket 11.
	if len(s.Buckets) != 12 || s.Buckets[1] != 8 || s.Buckets[2] != 8 || s.Buckets[3] != 8 || s.Buckets[11] != 8 {
		t.Errorf("buckets = %v", s.Buckets)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc registrySnapshot
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported metrics are not valid JSON: %v", err)
	}
	if doc.Counters["pairs"] != 80 || doc.Histograms["bytes"].Count != 32 {
		t.Errorf("exported doc = %+v", doc)
	}
}

func TestContextRoundTrip(t *testing.T) {
	if got := FromContext(context.Background()); got != nil {
		t.Errorf("empty context yields %v", got)
	}
	o := &Obs{Tracer: NewTracer(), Metrics: NewRegistry()}
	ctx := NewContext(context.Background(), o)
	if got := FromContext(ctx); got != o {
		t.Errorf("round trip lost the Obs: %v", got)
	}
	if ctx2 := NewContext(context.Background(), nil); FromContext(ctx2) != nil {
		t.Error("nil Obs attached to context")
	}
}
