package obs

import (
	"encoding/json"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a concurrent-safe registry of named counters and
// histograms. A nil *Registry is disabled: it hands out nil
// counters/histograms whose Add/Observe are no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

// defaultRegistry is the process-wide registry hot-path components
// without context access (the join evaluator's key-column cache, the
// string-dictionary probes) record into; the driver commands export
// it behind -metrics.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns (creating on first use) the named counter. Nil-safe.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns (creating on first use) the named histogram.
// Nil-safe.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically growing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter. Nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the counter. Nil-safe (0).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Histogram accumulates int64 observations into power-of-two buckets:
// bucket i counts values whose bit length is i, i.e. v in
// [2^(i-1), 2^i), with bucket 0 counting v <= 0. Count, sum, min and
// max are tracked exactly; the buckets give the distribution shape
// (reducer byte balance, key-run lengths) without storing samples.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
	buckets [65]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	b := 0
	if v > 0 {
		b = bits.Len64(uint64(v))
	}
	h.buckets[b].Add(1)
}

// HistogramSnapshot is one histogram's exported state.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	// Mean is Sum/Count (0 when empty).
	Mean float64 `json:"mean"`
	// Buckets[i] counts observations with bit length i (values in
	// [2^(i-1), 2^i)); trailing zero buckets are trimmed.
	Buckets []int64 `json:"buckets"`
}

// Snapshot exports the histogram's current state. Nil-safe.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	if s.Count == 0 {
		return s
	}
	s.Min = h.min.Load()
	s.Max = h.max.Load()
	s.Mean = float64(s.Sum) / float64(s.Count)
	last := -1
	var buckets [65]int64
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
		if buckets[i] != 0 {
			last = i
		}
	}
	s.Buckets = append([]int64(nil), buckets[:last+1]...)
	return s
}

// registrySnapshot is the exported JSON document shape.
type registrySnapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// WriteJSON exports every counter and histogram as one JSON document
// with sorted, stable key order (encoding/json sorts map keys).
// Nil-safe (writes an empty document).
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := registrySnapshot{
		Counters:   map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r != nil {
		r.mu.Lock()
		names := make([]string, 0, len(r.counters))
		for n := range r.counters {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			snap.Counters[n] = r.counters[n].Value()
		}
		for n, h := range r.hists {
			snap.Histograms[n] = h.Snapshot()
		}
		r.mu.Unlock()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}
