// Package baselines implements the competitor systems of the paper's
// evaluation (§6): HIVE- and PIG-style pairwise-join cascades, a
// YSMART-style correlation-aware variant [23], the 1-Bucket-Theta
// pairwise theta-join of Okcan & Riedewald [25], and the Afrati–Ullman
// share-based one-job multiway equi-join [2].
//
// Every baseline executes on the same MapReduce simulator as the
// paper's method, so comparisons reflect plan structure — number of
// jobs, intermediate materialisation, shuffle volume, reducer counts —
// rather than implementation folklore. Behavioural knobs that cannot
// be reproduced structurally (Pig's serialisation overhead, YSmart's
// merged-job I/O savings) are explicit, documented Strategy fields.
package baselines

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/mr"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/relation"
)

// Strategy selects and parameterises a cascade baseline.
type Strategy struct {
	Name string

	// CompositeEquiKey joins on all available equality conditions at a
	// step (Hive, YSmart); false uses only the first (Pig's single-key
	// repartition join), verifying the rest in the reducer.
	CompositeEquiKey bool

	// SharedScan charges repeated scans of the same physical base
	// table only once (YSmart's input correlation, important for the
	// self-join mobile queries).
	SharedScan bool

	// TransitDiscount ∈ [0,1) removes that fraction of the
	// intermediate write+read cost between consecutive steps (YSmart's
	// common-MapReduce merging of correlated jobs).
	TransitDiscount float64

	// MaterializeFactor inflates every step's simulated time (Pig's
	// heavier tuple serialisation; 1.0 = none).
	MaterializeFactor float64

	// ReorderBySize joins the two smallest connected relations first
	// and extends with the smallest connected relation (Hive with
	// statistics); false keeps the query's written order (Pig).
	ReorderBySize bool
}

// Hive returns the HIVE-style strategy. Hive of the paper's vintage
// (0.20-era, pre-CBO) joins tables in the order the query writes them,
// with composite equi keys and as many reducers as the cluster allows.
func Hive() Strategy {
	return Strategy{Name: "Hive", CompositeEquiKey: true, ReorderBySize: false, MaterializeFactor: 1.0}
}

// Pig returns the PIG-style strategy: the same written-order cascade
// with Pig's heavier bag serialisation between stages.
func Pig() Strategy {
	return Strategy{Name: "Pig", CompositeEquiKey: true, ReorderBySize: false, MaterializeFactor: 1.25}
}

// YSmart returns the YSMART-style strategy [23]: Hive's plan plus
// input-correlation shared scans and transit-correlation discounts.
func YSmart() Strategy {
	return Strategy{
		Name: "YSmart", CompositeEquiKey: true, ReorderBySize: false,
		SharedScan: true, TransitDiscount: 0.5, MaterializeFactor: 1.0,
	}
}

// StepMetrics records one cascade stage.
type StepMetrics struct {
	Name     string
	Relation string // base relation joined in at this step
	SimTime  float64
	Metrics  mr.Metrics
}

// Result is a completed baseline execution.
type Result struct {
	Strategy  string
	Output    *relation.Relation
	TotalTime float64
	Steps     []StepMetrics
	// ShuffleBytes totals network volume across all stages.
	ShuffleBytes int64
}

// Run evaluates the query with the given cascade strategy.
//
// requestedReducers is the reducer count every stage asks for —
// "Hive always try to employ as many Reduce tasks as possible"
// (§6.3.2), i.e. the full cluster's configured capacity, NOT the
// currently available k_P: when the experiment restricts processing
// units below the request (Fig. 10/13's kP ≤ 64 vs the 96-task
// request), the reduce phase runs in multiple waves — the k_P
// obliviousness the paper's scheduler exploits. Pass 0 to default to
// cfg.ReduceSlots.
func Run(ctx context.Context, st Strategy, cfg mr.Config, params cost.Params, q *query.Query, db *core.DB, requestedReducers int) (*Result, error) {
	if st.MaterializeFactor <= 0 {
		st.MaterializeFactor = 1
	}
	order, err := joinOrder(st, q, db)
	if err != nil {
		return nil, err
	}
	kr := requestedReducers
	if kr <= 0 {
		kr = cfg.ReduceSlots
	}
	res := &Result{Strategy: st.Name}
	scanned := map[string]bool{}
	timer := params.Timer()

	left, err := db.Relation(order[0])
	if err != nil {
		return nil, err
	}
	current := prefixBase(left)
	joined := map[string]bool{order[0]: true}
	scanned[db.BaseName(order[0])] = true
	var prevOutBytes int64
	var prevKeySig map[string]bool

	for step := 1; step < len(order); step++ {
		relName := order[step]
		right, err := db.Relation(relName)
		if err != nil {
			return nil, err
		}
		conds := condsBetween(q, joined, relName)
		if len(conds) == 0 {
			return nil, fmt.Errorf("baselines: no condition links %s to the joined set", relName)
		}
		jobName := fmt.Sprintf("%s-%s-s%d", st.Name, q.Name, step)
		job, err := buildStepJob(st, jobName, current, right, conds, kr)
		if err != nil {
			return nil, err
		}
		run, err := mr.Run(ctx, cfg, timer, job)
		if err != nil {
			return nil, err
		}
		simT := run.Metrics.Sim.Total * st.MaterializeFactor

		// YSmart correlations: shared scans of re-read base tables
		// (input correlation) and avoided intermediate write+read
		// between consecutive correlated jobs (transit correlation).
		// The combined discount is capped at half the step's own time —
		// merged jobs still shuffle, sort and reduce their data.
		var discount float64
		base := db.BaseName(relName)
		if st.SharedScan && scanned[base] {
			if ts, err := db.Catalog.Stats(relName); err == nil {
				// Input correlation merges the duplicate scan's whole
				// map phase into the earlier job: one sequential read
				// and one spill pass instead of two [23]. Self-join
				// workloads (the mobile queries read the same physical
				// table three or four times) are where YSmart's ~2×
				// advantage over Hive comes from.
				discount += float64(ts.ModeledSize) * (params.C1 + params.WriteCost)
			}
		}
		scanned[base] = true
		// Transit correlation requires consecutive jobs to partition on
		// the same key [23]: only then can YSmart merge them into one
		// common MapReduce job and skip re-materialising the
		// intermediate. A cascade that re-keys every step (e.g. Q7's
		// suppkey → orderkey → custkey chain) gets no discount.
		keySig := equiKeySignature(conds)
		if st.TransitDiscount > 0 && step > 1 && intersects(keySig, prevKeySig) {
			discount += float64(prevOutBytes) * (params.C1 + params.WriteCost) * st.TransitDiscount
		}
		if max := 0.5 * simT; discount > max {
			discount = max
		}
		simT -= discount
		prevOutBytes = run.Metrics.OutputBytes
		prevKeySig = keySig

		res.Steps = append(res.Steps, StepMetrics{
			Name: jobName, Relation: relName, SimTime: simT, Metrics: run.Metrics,
		})
		res.TotalTime += simT
		res.ShuffleBytes += run.Metrics.ShuffleBytes
		current = run.Output
		joined[relName] = true
	}
	current.Name = q.Name
	res.Output = current
	return res, nil
}

// joinOrder produces the left-deep order: written order (Pig) or
// smallest-connected-first (Hive/YSmart).
func joinOrder(st Strategy, q *query.Query, db *core.DB) ([]string, error) {
	rels := q.Relations
	if len(rels) < 2 {
		return nil, fmt.Errorf("baselines: need >= 2 relations")
	}
	connected := func(joined map[string]bool, r string) bool {
		for _, c := range q.Conditions {
			if other, ok := c.Other(r); ok && joined[other] {
				return true
			}
		}
		return false
	}
	if !st.ReorderBySize {
		// Written order, but each next relation must connect; rotate
		// until the first two connect.
		order := append([]string(nil), rels...)
		joined := map[string]bool{order[0]: true}
		out := []string{order[0]}
		remaining := order[1:]
		for len(remaining) > 0 {
			idx := -1
			for i, r := range remaining {
				if connected(joined, r) {
					idx = i
					break
				}
			}
			if idx < 0 {
				return nil, fmt.Errorf("baselines: query graph disconnected at %v", remaining)
			}
			out = append(out, remaining[idx])
			joined[remaining[idx]] = true
			remaining = append(remaining[:idx], remaining[idx+1:]...)
		}
		return out, nil
	}
	// Size-ordered: start with the smallest relation, repeatedly add
	// the smallest connected one.
	card := func(name string) int { return db.Catalog.Cardinality(name) }
	start := rels[0]
	for _, r := range rels {
		if card(r) < card(start) {
			start = r
		}
	}
	out := []string{start}
	joined := map[string]bool{start: true}
	for len(out) < len(rels) {
		best := ""
		for _, r := range rels {
			if joined[r] || !connected(joined, r) {
				continue
			}
			if best == "" || card(r) < card(best) {
				best = r
			}
		}
		if best == "" {
			return nil, fmt.Errorf("baselines: query graph disconnected")
		}
		out = append(out, best)
		joined[best] = true
	}
	return out, nil
}

// condsBetween collects conditions linking the joined set to the new
// relation.
func condsBetween(q *query.Query, joined map[string]bool, relName string) predicate.Conjunction {
	var out predicate.Conjunction
	for _, c := range q.Conditions {
		if other, ok := c.Other(relName); ok && joined[other] {
			out = append(out, c)
		}
	}
	return out
}

// prefixBase renames a base relation's columns to "rel.col" so cascade
// intermediates share the join-output naming convention.
func prefixBase(r *relation.Relation) *relation.Relation {
	cols := make([]relation.Column, r.Schema.Len())
	for i := 0; i < r.Schema.Len(); i++ {
		c := r.Schema.Column(i)
		cols[i] = relation.Column{Name: r.Name + "." + c.Name, Kind: c.Kind}
	}
	out := relation.New(r.Name, relation.MustSchema(cols...))
	out.VolumeMultiplier = r.VolumeMultiplier
	out.Tuples = r.Tuples
	return out
}

// condSides resolves a step condition: left side against the
// intermediate (prefixed columns), right side against the incoming
// base relation.
type stepCond struct {
	leftCol, rightCol int
	leftOff, rightOff float64
	op                predicate.Op
}

func bindStepConds(inter *relation.Relation, base *relation.Relation, conds predicate.Conjunction) ([]stepCond, error) {
	var out []stepCond
	for _, c := range conds {
		oc := c
		if oc.Right != base.Name {
			oc = c.Reversed()
		}
		if oc.Right != base.Name {
			return nil, fmt.Errorf("baselines: condition %s does not touch %s", c, base.Name)
		}
		li, ok := inter.Schema.Lookup(oc.Left + "." + oc.LeftColumn)
		if !ok {
			return nil, fmt.Errorf("baselines: intermediate lacks column %s.%s", oc.Left, oc.LeftColumn)
		}
		ri, ok := base.Schema.Lookup(oc.RightColumn)
		if !ok {
			return nil, fmt.Errorf("baselines: %s lacks column %s", base.Name, oc.RightColumn)
		}
		out = append(out, stepCond{
			leftCol: li, rightCol: ri,
			leftOff: oc.LeftOffset, rightOff: oc.RightOffset,
			op: oc.Op,
		})
	}
	return out, nil
}

// buildStepJob creates the pairwise join job for one cascade stage:
// repartition hash join when equality keys exist, fragment-and-
// replicate cross join otherwise (the practical Hive/Pig realisation
// of an inequality join).
func buildStepJob(st Strategy, name string, inter, base *relation.Relation, conds predicate.Conjunction, kr int) (*mr.Job, error) {
	bound, err := bindStepConds(inter, base, conds)
	if err != nil {
		return nil, err
	}
	var equi []stepCond
	var residual []stepCond
	for _, bc := range bound {
		if bc.op == predicate.EQ && (st.CompositeEquiKey || len(equi) == 0) {
			equi = append(equi, bc)
		} else {
			residual = append(residual, bc)
		}
	}
	outSchema := concatPrefixed(inter, base)
	reduce := func(key uint64, values []mr.Tagged, ctx *mr.ReduceContext) {
		var ls, rs []relation.Tuple
		for _, v := range values {
			if v.Tag == 0 {
				ls = append(ls, v.Tuple)
			} else {
				rs = append(rs, v.Tuple)
			}
		}
		ctx.AddWork(int64(len(ls)) * int64(len(rs)))
		for _, l := range ls {
			for _, r := range rs {
				ok := true
				for _, bc := range bound { // verify ALL conditions (incl. hash-collided equi)
					lv := l[bc.leftCol].Add(bc.leftOff)
					rv := r[bc.rightCol].Add(bc.rightOff)
					if !bc.op.Eval(relation.Compare(lv, rv)) {
						ok = false
						break
					}
				}
				if ok {
					ctx.Emit(l.Concat(r))
				}
			}
		}
	}
	if len(equi) > 0 {
		lKey := func(t relation.Tuple) uint64 { return hashCols(t, equi, true) }
		rKey := func(t relation.Tuple) uint64 { return hashCols(t, equi, false) }
		return &mr.Job{
			Name: name,
			Inputs: []mr.Input{
				{Rel: inter, Map: func(t relation.Tuple, emit mr.Emitter) { emit(lKey(t), 0, t) }},
				{Rel: base, Map: func(t relation.Tuple, emit mr.Emitter) { emit(rKey(t), 1, t) }},
			},
			Reduce:       reduce,
			NumReducers:  kr,
			OutputName:   name,
			OutputSchema: outSchema,
		}, nil
	}
	// Inequality-only step: 1-Bucket-style cross partition — the
	// practical realisation of a theta join in Hive/Pig-era systems
	// [25]. The |L|×|R| matrix is tiled rows×cols ≈ kr; the left input
	// replicates across its row's rectangles, the right across its
	// column's (map tasks run concurrently, so assignment is a pure
	// hash of the tuple).
	rows, cols := squarish(kr)
	grid := rows * cols
	return &mr.Job{
		Name: name,
		Inputs: []mr.Input{
			{Rel: inter, Map: func(t relation.Tuple, emit mr.Emitter) {
				row := tupleHash(t) % uint64(rows)
				for c := 0; c < cols; c++ {
					emit(row*uint64(cols)+uint64(c), 0, t)
				}
			}},
			{Rel: base, Map: func(t relation.Tuple, emit mr.Emitter) {
				col := (tupleHash(t) >> 17) % uint64(cols)
				for r := 0; r < rows; r++ {
					emit(uint64(r)*uint64(cols)+col, 1, t)
				}
			}},
		},
		Reduce:       reduce,
		NumReducers:  grid,
		Partition:    mr.IdentityPartition,
		OutputName:   name,
		OutputSchema: outSchema,
	}, nil
}

func concatPrefixed(inter, base *relation.Relation) *relation.Schema {
	var cols []relation.Column
	cols = append(cols, inter.Schema.Columns()...)
	for i := 0; i < base.Schema.Len(); i++ {
		c := base.Schema.Column(i)
		cols = append(cols, relation.Column{Name: base.Name + "." + c.Name, Kind: c.Kind})
	}
	return relation.MustSchema(cols...)
}

func hashCols(t relation.Tuple, conds []stepCond, leftSide bool) uint64 {
	h := fnv.New64a()
	for _, bc := range conds {
		var v relation.Value
		if leftSide {
			v = t[bc.leftCol].Add(bc.leftOff)
		} else {
			v = t[bc.rightCol].Add(bc.rightOff)
		}
		h.Write([]byte(v.String()))
		h.Write([]byte{0x1f})
	}
	return h.Sum64()
}

// tupleHash mixes every value of a tuple into a partition key.
func tupleHash(t relation.Tuple) uint64 {
	h := fnv.New64a()
	for _, v := range t {
		h.Write([]byte(v.String()))
		h.Write([]byte{0x1f})
	}
	return h.Sum64()
}

// equiKeySignature canonicalises the equality-join attributes of a
// step as "rel.col" strings (both sides of every equality condition).
func equiKeySignature(conds predicate.Conjunction) map[string]bool {
	sig := make(map[string]bool)
	for _, c := range conds {
		if c.Op == predicate.EQ && c.LeftOffset == 0 && c.RightOffset == 0 {
			sig[c.Left+"."+c.LeftColumn] = true
			sig[c.Right+"."+c.RightColumn] = true
		}
	}
	return sig
}

func intersects(a, b map[string]bool) bool {
	for k := range a {
		if b[k] {
			return true
		}
	}
	return false
}

// Names returns the standard comparison set, in the paper's plot order.
func Names() []string { return []string{"Our Method", "YSmart", "Hive", "Pig"} }

// sortSteps is exposed for deterministic reporting in tests.
func sortSteps(steps []StepMetrics) {
	sort.Slice(steps, func(i, j int) bool { return steps[i].Name < steps[j].Name })
}
