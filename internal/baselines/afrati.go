package baselines

import (
	"fmt"
	"math"

	"repro/internal/mr"
	"repro/internal/predicate"
	"repro/internal/relation"
)

// AfratiUllman implements the share-based one-job multiway EQUI-join
// of Afrati & Ullman [2]: the k_R reducers form a grid indexed by the
// join attributes; each attribute a_i receives a "share" s_i with
// Π s_i ≈ k_R, and a tuple knowing attributes {a_i} hashes each known
// attribute to its grid coordinate and replicates over the unknown
// ones. The paper contrasts this with its own method because share-
// based partitioning "only works for the Equi-join scenario" — the
// partition key must functionally determine co-location, which
// inequality predicates break.
//
// This implementation covers the chain equi-join R_1 ⋈ R_2 ⋈ … ⋈ R_m
// where consecutive relations join on one attribute each (m-1 join
// attributes). Shares are balanced by relation sizes following the
// Lagrangean solution of [2] (proportional to communication savings),
// rounded to a feasible integer grid.
func AfratiUllman(name string, rels []*relation.Relation, conds predicate.Conjunction, kr int) (*mr.Job, error) {
	m := len(rels)
	if m < 2 {
		return nil, fmt.Errorf("baselines: afrati-ullman needs >= 2 relations")
	}
	if len(conds) != m-1 {
		return nil, fmt.Errorf("baselines: afrati-ullman chain needs %d conditions, got %d", m-1, len(conds))
	}
	// Bind condition i between rels[i] and rels[i+1]; must be EQ.
	type attr struct {
		leftCol, rightCol int // column in rels[i], rels[i+1]
	}
	attrs := make([]attr, m-1)
	for i, c := range conds {
		if c.Op != predicate.EQ {
			return nil, fmt.Errorf("baselines: afrati-ullman requires equi conditions, got %s", c)
		}
		oc := c
		if oc.Left != rels[i].Name {
			oc = c.Reversed()
		}
		if oc.Left != rels[i].Name || oc.Right != rels[i+1].Name {
			return nil, fmt.Errorf("baselines: condition %s does not link %s-%s", c, rels[i].Name, rels[i+1].Name)
		}
		li, ok := rels[i].Schema.Lookup(oc.LeftColumn)
		if !ok {
			return nil, fmt.Errorf("baselines: %s lacks %s", rels[i].Name, oc.LeftColumn)
		}
		ri, ok := rels[i+1].Schema.Lookup(oc.RightColumn)
		if !ok {
			return nil, fmt.Errorf("baselines: %s lacks %s", rels[i+1].Name, oc.RightColumn)
		}
		attrs[i] = attr{leftCol: li, rightCol: ri}
	}
	shares := computeShares(rels, kr)
	grid := 1
	for _, s := range shares {
		grid *= s
	}
	// Reducer id = mixed-radix index over the m-1 attribute shares.
	strides := make([]int, m-1)
	st := 1
	for i := m - 2; i >= 0; i-- {
		strides[i] = st
		st *= shares[i]
	}
	hashTo := func(v relation.Value, share int, dim int) int {
		return int(idHash(v, uint64(97+dim)) % uint64(share))
	}
	// Relation i knows attribute i-1 (right side) and attribute i
	// (left side); it replicates over all other attribute dimensions.
	inputs := make([]mr.Input, m)
	for i := range rels {
		i := i
		inputs[i] = mr.Input{
			Rel: rels[i],
			Map: func(t relation.Tuple, emit mr.Emitter) {
				known := make(map[int]int, 2) // attr dim → coord
				if i > 0 {
					known[i-1] = hashTo(t[attrs[i-1].rightCol], shares[i-1], i-1)
				}
				if i < m-1 {
					known[i] = hashTo(t[attrs[i].leftCol], shares[i], i)
				}
				emitAll(known, shares, strides, 0, 0, uint8(i), t, emit)
			},
		}
	}
	bound := make([]stepCond, 0, len(conds))
	// Precompute reducer-side verification between adjacent relations
	// using offsets into the concatenated tuple? Simpler: verify with
	// per-relation groups below.
	_ = bound
	outSchema := concatAll(rels)
	reduce := func(key uint64, values []mr.Tagged, ctx *mr.ReduceContext) {
		groups := make([][]relation.Tuple, m)
		for _, v := range values {
			groups[v.Tag] = append(groups[v.Tag], v.Tuple)
		}
		for _, g := range groups {
			if len(g) == 0 {
				return
			}
		}
		partial := make([]relation.Tuple, m)
		var rec func(j int)
		rec = func(j int) {
			if j == m {
				out := make(relation.Tuple, 0, 8)
				for _, t := range partial {
					out = append(out, t...)
				}
				ctx.Emit(out)
				return
			}
			for _, t := range groups[j] {
				ctx.AddWork(1)
				if j > 0 {
					lv := partial[j-1][attrs[j-1].leftCol]
					rv := t[attrs[j-1].rightCol]
					if relation.Compare(lv, rv) != 0 {
						continue
					}
				}
				partial[j] = t
				rec(j + 1)
			}
		}
		rec(0)
	}
	return &mr.Job{
		Name:         name,
		Inputs:       inputs,
		Reduce:       reduce,
		NumReducers:  grid,
		Partition:    mr.IdentityPartition,
		OutputName:   name,
		OutputSchema: outSchema,
	}, nil
}

// emitAll enumerates reducer coordinates: known dims fixed, unknown
// dims swept.
func emitAll(known map[int]int, shares, strides []int, dim, acc int, tag uint8, t relation.Tuple, emit mr.Emitter) {
	if dim == len(shares) {
		emit(uint64(acc), tag, t)
		return
	}
	if c, ok := known[dim]; ok {
		emitAll(known, shares, strides, dim+1, acc+c*strides[dim], tag, t, emit)
		return
	}
	for c := 0; c < shares[dim]; c++ {
		emitAll(known, shares, strides, dim+1, acc+c*strides[dim], tag, t, emit)
	}
}

// computeShares assigns each join attribute a share s_i ≥ 1 with
// Π s_i ≤ kr. Following [2], attributes adjacent to larger relations
// get bigger shares (they save more replication); we optimise by
// greedy doubling of the share whose increase reduces total
// communication the most.
func computeShares(rels []*relation.Relation, kr int) []int {
	m := len(rels)
	shares := make([]int, m-1)
	for i := range shares {
		shares[i] = 1
	}
	sizes := make([]float64, m)
	for i, r := range rels {
		sizes[i] = math.Max(1, float64(r.ModeledSize()))
	}
	// Communication: relation i is replicated Π_{j∉known(i)} s_j times.
	comm := func(sh []int) float64 {
		total := 0.0
		for i := 0; i < m; i++ {
			rep := 1
			for d := 0; d < m-1; d++ {
				if d == i-1 || d == i {
					continue
				}
				rep *= sh[d]
			}
			total += sizes[i] * float64(rep)
		}
		return total
	}
	for {
		bestDim, bestComm := -1, comm(shares)
		for d := range shares {
			trial := append([]int(nil), shares...)
			trial[d] *= 2
			prod := 1
			for _, s := range trial {
				prod *= s
			}
			if prod > kr {
				continue
			}
			// Doubling a share halves nothing by itself but the extra
			// parallelism divides reducer load; prefer moves that do
			// not increase communication per unit of added parallelism.
			c := comm(trial) / 2 // normalised by the doubled parallelism
			if c < bestComm {
				bestComm, bestDim = c, d
			}
		}
		if bestDim < 0 {
			break
		}
		shares[bestDim] *= 2
	}
	return shares
}

func concatAll(rels []*relation.Relation) *relation.Schema {
	var cols []relation.Column
	for _, r := range rels {
		for i := 0; i < r.Schema.Len(); i++ {
			c := r.Schema.Column(i)
			cols = append(cols, relation.Column{Name: r.Name + "." + c.Name, Kind: c.Kind})
		}
	}
	return relation.MustSchema(cols...)
}
