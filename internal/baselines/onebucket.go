package baselines

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/mr"
	"repro/internal/predicate"
	"repro/internal/relation"
)

// OneBucketTheta is the pairwise theta-join of Okcan & Riedewald [25]:
// the |L|×|R| cross-product matrix is tiled by a near-square
// rows×cols = kR grid of rectangles, each rectangle one reducer. Every
// L tuple is assigned a random matrix row and replicated to the `cols`
// rectangles intersecting it; every R tuple a random column and the
// `rows` rectangles. Any theta condition is then verified reducer-side
// with guaranteed coverage. The paper observes this "does not have a
// straightforward extension" beyond two dimensions — which is exactly
// what the Hilbert method supplies — so this operator serves as the
// pairwise building block and an ablation reference.
func OneBucketTheta(name string, left, right *relation.Relation, conds predicate.Conjunction, kr int) (*mr.Job, error) {
	if kr < 1 {
		return nil, fmt.Errorf("baselines: 1-bucket needs kr >= 1")
	}
	rows, cols := squarish(kr)
	grid := rows * cols
	lCard, rCard := left.Cardinality(), right.Cardinality()
	bound, err := bindPairConds(left, right, conds)
	if err != nil {
		return nil, err
	}
	lRid, err := ridCol(left)
	if err != nil {
		return nil, err
	}
	rRid, err := ridCol(right)
	if err != nil {
		return nil, err
	}
	salt := uint64(0x9d2c5680)
	outSchema := concatBoth(left, right)
	return &mr.Job{
		Name: name,
		Inputs: []mr.Input{
			{Rel: left, Map: func(t relation.Tuple, emit mr.Emitter) {
				row := idHash(t[lRid], salt) % uint64(maxi(rows, 1))
				_ = lCard
				for c := 0; c < cols; c++ {
					emit(row*uint64(cols)+uint64(c), 0, t)
				}
			}},
			{Rel: right, Map: func(t relation.Tuple, emit mr.Emitter) {
				col := idHash(t[rRid], salt+1) % uint64(maxi(cols, 1))
				_ = rCard
				for r := 0; r < rows; r++ {
					emit(uint64(r)*uint64(cols)+col, 1, t)
				}
			}},
		},
		Reduce: func(key uint64, values []mr.Tagged, ctx *mr.ReduceContext) {
			var ls, rs []relation.Tuple
			for _, v := range values {
				if v.Tag == 0 {
					ls = append(ls, v.Tuple)
				} else {
					rs = append(rs, v.Tuple)
				}
			}
			ctx.AddWork(int64(len(ls)) * int64(len(rs)))
			for _, l := range ls {
				for _, r := range rs {
					ok := true
					for _, bc := range bound {
						lv := l[bc.leftCol].Add(bc.leftOff)
						rv := r[bc.rightCol].Add(bc.rightOff)
						if !bc.op.Eval(relation.Compare(lv, rv)) {
							ok = false
							break
						}
					}
					if ok {
						ctx.Emit(l.Concat(r))
					}
				}
			}
		},
		NumReducers:  grid,
		Partition:    mr.IdentityPartition,
		OutputName:   name,
		OutputSchema: outSchema,
	}, nil
}

// squarish factors kr into rows×cols with rows·cols ≤ kr and the
// shape as square as possible (maximising rectangle area balance,
// minimising total replication rows+cols).
func squarish(kr int) (rows, cols int) {
	best := 1
	for f := 1; f*f <= kr; f++ {
		if kr%f == 0 {
			best = f
		}
	}
	rows = best
	cols = kr / best
	// Highly non-square factorizations (primes) replicate badly; fall
	// back to floor(sqrt) grid that may waste a few reducers.
	if cols > 4*rows {
		s := int(math.Sqrt(float64(kr)))
		if s < 1 {
			s = 1
		}
		return s, s
	}
	return rows, cols
}

// bindPairConds resolves conditions between two base relations (bare
// or prefixed column names on either side).
func bindPairConds(left, right *relation.Relation, conds predicate.Conjunction) ([]stepCond, error) {
	var out []stepCond
	for _, c := range conds {
		oc := c
		if oc.Left != left.Name {
			oc = c.Reversed()
		}
		li, ok := lookupEither(left, oc.Left, oc.LeftColumn)
		if !ok {
			return nil, fmt.Errorf("baselines: %s lacks %s.%s", left.Name, oc.Left, oc.LeftColumn)
		}
		ri, ok := lookupEither(right, oc.Right, oc.RightColumn)
		if !ok {
			return nil, fmt.Errorf("baselines: %s lacks %s.%s", right.Name, oc.Right, oc.RightColumn)
		}
		out = append(out, stepCond{
			leftCol: li, rightCol: ri,
			leftOff: oc.LeftOffset, rightOff: oc.RightOffset,
			op: oc.Op,
		})
	}
	return out, nil
}

func lookupEither(r *relation.Relation, relName, col string) (int, bool) {
	if i, ok := r.Schema.Lookup(relName + "." + col); ok {
		return i, true
	}
	if r.Name == relName {
		if i, ok := r.Schema.Lookup(col); ok {
			return i, true
		}
	}
	return 0, false
}

func ridCol(r *relation.Relation) (int, error) {
	if i, ok := r.Schema.Lookup(core.RowIDColumn); ok {
		return i, nil
	}
	if i, ok := r.Schema.Lookup(r.Name + "." + core.RowIDColumn); ok {
		return i, nil
	}
	return 0, fmt.Errorf("baselines: relation %s lacks %s", r.Name, core.RowIDColumn)
}

func concatBoth(left, right *relation.Relation) *relation.Schema {
	var cols []relation.Column
	for i := 0; i < left.Schema.Len(); i++ {
		c := left.Schema.Column(i)
		cols = append(cols, relation.Column{Name: left.Name + "." + c.Name, Kind: c.Kind})
	}
	for i := 0; i < right.Schema.Len(); i++ {
		c := right.Schema.Column(i)
		cols = append(cols, relation.Column{Name: right.Name + "." + c.Name, Kind: c.Kind})
	}
	return relation.MustSchema(cols...)
}

func idHash(v relation.Value, salt uint64) uint64 {
	x := uint64(v.Int64()) ^ salt
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
