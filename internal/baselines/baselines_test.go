package baselines

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/mr"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/relation"
)

func testConfig() mr.Config {
	cfg := mr.DefaultConfig()
	cfg.TuplesPerMapTask = 32
	cfg.MapSlots = 8
	cfg.ReduceSlots = 8
	return cfg
}

func randRelation(name string, n, domain int, rng *rand.Rand) *relation.Relation {
	r := relation.New(name, relation.MustSchema(
		relation.Column{Name: "a", Kind: relation.KindInt},
		relation.Column{Name: "b", Kind: relation.KindInt},
	))
	for i := 0; i < n; i++ {
		r.MustAppend(relation.Tuple{
			relation.Int(int64(rng.Intn(domain))),
			relation.Int(int64(rng.Intn(domain))),
		})
	}
	return r
}

func newDB(t *testing.T, rels ...*relation.Relation) *core.DB {
	t.Helper()
	db, err := core.NewDB(500, 1, rels...)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func resultSet(r *relation.Relation) *relation.ResultSet {
	rs := relation.NewResultSet()
	rs.AddAll(core.CanonicalizeResult(r).Tuples)
	return rs
}

func chainQuery(t *testing.T) *query.Query {
	t.Helper()
	return query.MustNew("q3", []string{"A", "B", "C"}, []predicate.Condition{
		predicate.C("A", "a", predicate.LT, "B", "a"),
		predicate.C("B", "b", predicate.GE, "C", "b"),
	})
}

// Every cascade strategy must reproduce the naive result exactly.
func TestCascadesMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	a := randRelation("A", 40, 12, rng)
	b := randRelation("B", 35, 12, rng)
	c := randRelation("C", 30, 12, rng)
	db := newDB(t, a, b, c)
	q := chainQuery(t)
	want, err := core.Naive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	wantRS := resultSet(want)
	params := cost.FromConfig(testConfig())
	for _, st := range []Strategy{Hive(), Pig(), YSmart()} {
		res, err := Run(context.Background(), st, testConfig(), params, q, db, 0)
		if err != nil {
			t.Fatalf("%s: %v", st.Name, err)
		}
		got := resultSet(res.Output)
		if !wantRS.Equal(got) {
			t.Errorf("%s: mismatch %d vs %d rows: %v", st.Name, got.Len(), wantRS.Len(), wantRS.Diff(got, 3))
		}
		if res.TotalTime <= 0 {
			t.Errorf("%s: no time accounted", st.Name)
		}
		if len(res.Steps) != 2 {
			t.Errorf("%s: %d steps, want 2 (pairwise cascade)", st.Name, len(res.Steps))
		}
	}
}

func TestCascadeEquiAndMixed(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	a := randRelation("A", 50, 10, rng)
	b := randRelation("B", 45, 10, rng)
	db := newDB(t, a, b)
	q := query.MustNew("mixed", []string{"A", "B"}, []predicate.Condition{
		predicate.C("A", "a", predicate.EQ, "B", "a"),
		predicate.C("A", "b", predicate.LE, "B", "b"),
	})
	want, err := core.Naive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	wantRS := resultSet(want)
	params := cost.FromConfig(testConfig())
	for _, st := range []Strategy{Hive(), Pig(), YSmart()} {
		res, err := Run(context.Background(), st, testConfig(), params, q, db, 0)
		if err != nil {
			t.Fatalf("%s: %v", st.Name, err)
		}
		if got := resultSet(res.Output); !wantRS.Equal(got) {
			t.Errorf("%s: mixed equi/theta mismatch", st.Name)
		}
	}
}

// Random query property: all cascade baselines agree with naive.
func TestCascadesRandomQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	ops := []predicate.Op{predicate.LT, predicate.LE, predicate.EQ, predicate.GE, predicate.GT, predicate.NE}
	params := cost.FromConfig(testConfig())
	for trial := 0; trial < 12; trial++ {
		m := 2 + rng.Intn(2)
		names := []string{"A", "B", "C"}[:m]
		rels := make([]*relation.Relation, m)
		for i := range rels {
			rels[i] = randRelation(names[i], 15+rng.Intn(20), 8, rng)
		}
		var conds []predicate.Condition
		for i := 0; i+1 < m; i++ {
			conds = append(conds, predicate.Condition{
				Left: names[i], LeftColumn: "a", Op: ops[rng.Intn(len(ops))],
				Right: names[i+1], RightColumn: "b",
			})
		}
		db := newDB(t, rels...)
		q, err := query.New("rq", names, conds)
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.Naive(q, db)
		if err != nil {
			t.Fatal(err)
		}
		wantRS := resultSet(want)
		for _, st := range []Strategy{Hive(), Pig(), YSmart()} {
			res, err := Run(context.Background(), st, testConfig(), params, q, db, 0)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, st.Name, err)
			}
			if got := resultSet(res.Output); !wantRS.Equal(got) {
				t.Fatalf("trial %d %s (%s): mismatch %d vs %d",
					trial, st.Name, q, got.Len(), wantRS.Len())
			}
		}
	}
}

func TestYSmartFasterThanHiveOnSelfJoins(t *testing.T) {
	// Self-join query reading the same base table twice: YSmart's
	// shared scan should beat Hive's rescan (as in [23]).
	rng := rand.New(rand.NewSource(73))
	base := randRelation("calls", 60, 15, rng)
	base.VolumeMultiplier = 1e6
	db := newDB(t, base)
	if err := db.Alias("t1", "calls"); err != nil {
		t.Fatal(err)
	}
	if err := db.Alias("t2", "calls"); err != nil {
		t.Fatal(err)
	}
	if err := db.Alias("t3", "calls"); err != nil {
		t.Fatal(err)
	}
	q := query.MustNew("self", []string{"t1", "t2", "t3"}, []predicate.Condition{
		predicate.C("t1", "a", predicate.EQ, "t2", "a"),
		predicate.C("t2", "b", predicate.EQ, "t3", "b"),
	})
	params := cost.FromConfig(testConfig())
	hive, err := Run(context.Background(), Hive(), testConfig(), params, q, db, 0)
	if err != nil {
		t.Fatal(err)
	}
	ysmart, err := Run(context.Background(), YSmart(), testConfig(), params, q, db, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ysmart.TotalTime >= hive.TotalTime {
		t.Errorf("YSmart (%v) not faster than Hive (%v) on self-join", ysmart.TotalTime, hive.TotalTime)
	}
	// Same results.
	if !resultSet(hive.Output).Equal(resultSet(ysmart.Output)) {
		t.Error("YSmart and Hive disagree")
	}
}

func TestPigSlowerThanHive(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	a := randRelation("A", 50, 10, rng)
	b := randRelation("B", 50, 10, rng)
	a.VolumeMultiplier = 1e6
	b.VolumeMultiplier = 1e6
	db := newDB(t, a, b)
	q := query.MustNew("pq", []string{"A", "B"}, []predicate.Condition{
		predicate.C("A", "a", predicate.EQ, "B", "a"),
	})
	params := cost.FromConfig(testConfig())
	hive, err := Run(context.Background(), Hive(), testConfig(), params, q, db, 0)
	if err != nil {
		t.Fatal(err)
	}
	pig, err := Run(context.Background(), Pig(), testConfig(), params, q, db, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pig.TotalTime <= hive.TotalTime {
		t.Errorf("Pig (%v) not slower than Hive (%v)", pig.TotalTime, hive.TotalTime)
	}
}

func TestOneBucketThetaMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	a := randRelation("A", 45, 15, rng)
	b := randRelation("B", 55, 15, rng)
	db := newDB(t, a, b)
	q := query.MustNew("ob", []string{"A", "B"}, []predicate.Condition{
		predicate.C("A", "a", predicate.LT, "B", "a"),
		predicate.C("A", "b", predicate.NE, "B", "b"),
	})
	want, err := core.Naive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	wantRS := resultSet(want)
	ra, _ := db.Relation("A")
	rb, _ := db.Relation("B")
	for _, kr := range []int{1, 4, 6, 9, 16} {
		job, err := OneBucketTheta("ob", ra, rb, q.Conditions, kr)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mr.Run(context.Background(), testConfig(), nil, job)
		if err != nil {
			t.Fatal(err)
		}
		if got := resultSet(res.Output); !wantRS.Equal(got) {
			t.Errorf("kr=%d: 1-bucket mismatch %d vs %d", kr, got.Len(), wantRS.Len())
		}
	}
	if _, err := OneBucketTheta("ob", ra, rb, q.Conditions, 0); err == nil {
		t.Error("kr=0 accepted")
	}
}

func TestSquarish(t *testing.T) {
	cases := []struct{ kr, rows, cols int }{
		{1, 1, 1}, {4, 2, 2}, {6, 2, 3}, {9, 3, 3}, {16, 4, 4}, {12, 3, 4},
	}
	for _, c := range cases {
		r, co := squarish(c.kr)
		if r != c.rows || co != c.cols {
			t.Errorf("squarish(%d) = %d,%d want %d,%d", c.kr, r, co, c.rows, c.cols)
		}
	}
	// Large prime: falls back to sqrt grid.
	r, c := squarish(97)
	if r != 9 || c != 9 {
		t.Errorf("squarish(97) = %d,%d, want 9,9", r, c)
	}
}

func TestAfratiUllmanMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	a := randRelation("A", 40, 8, rng)
	b := randRelation("B", 35, 8, rng)
	c := randRelation("C", 30, 8, rng)
	db := newDB(t, a, b, c)
	q := query.MustNew("au", []string{"A", "B", "C"}, []predicate.Condition{
		predicate.C("A", "a", predicate.EQ, "B", "a"),
		predicate.C("B", "b", predicate.EQ, "C", "b"),
	})
	want, err := core.Naive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	wantRS := resultSet(want)
	ra, _ := db.Relation("A")
	rb, _ := db.Relation("B")
	rc, _ := db.Relation("C")
	for _, kr := range []int{1, 4, 8, 16} {
		job, err := AfratiUllman("au", []*relation.Relation{ra, rb, rc}, q.Conditions, kr)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mr.Run(context.Background(), testConfig(), nil, job)
		if err != nil {
			t.Fatal(err)
		}
		if got := resultSet(res.Output); !wantRS.Equal(got) {
			t.Errorf("kr=%d: afrati-ullman mismatch %d vs %d rows", kr, got.Len(), wantRS.Len())
		}
	}
}

func TestAfratiUllmanRejectsTheta(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	db := newDB(t, randRelation("A", 5, 5, rng), randRelation("B", 5, 5, rng))
	ra, _ := db.Relation("A")
	rb, _ := db.Relation("B")
	conds := predicate.Conjunction{predicate.C("A", "a", predicate.LT, "B", "a")}
	if _, err := AfratiUllman("x", []*relation.Relation{ra, rb}, conds, 4); err == nil {
		t.Error("theta condition accepted")
	}
	if _, err := AfratiUllman("x", []*relation.Relation{ra}, nil, 4); err == nil {
		t.Error("single relation accepted")
	}
}

func TestComputeShares(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	a := randRelation("A", 100, 5, rng)
	b := randRelation("B", 100, 5, rng)
	c := randRelation("C", 100, 5, rng)
	shares := computeShares([]*relation.Relation{a, b, c}, 16)
	prod := 1
	for _, s := range shares {
		if s < 1 {
			t.Fatalf("share < 1: %v", shares)
		}
		prod *= s
	}
	if prod > 16 {
		t.Errorf("share product %d exceeds kr", prod)
	}
	if prod < 4 {
		t.Errorf("shares %v underuse the grid", shares)
	}
}

func TestJoinOrderWrittenVsSize(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	big := randRelation("Big", 100, 10, rng)
	small := randRelation("Small", 10, 10, rng)
	mid := randRelation("Mid", 50, 10, rng)
	db := newDB(t, big, small, mid)
	q := query.MustNew("jo", []string{"Big", "Small", "Mid"}, []predicate.Condition{
		predicate.C("Big", "a", predicate.LT, "Small", "a"),
		predicate.C("Small", "b", predicate.GE, "Mid", "b"),
	})
	written, err := joinOrder(Pig(), q, db)
	if err != nil {
		t.Fatal(err)
	}
	if written[0] != "Big" {
		t.Errorf("written order starts with %s", written[0])
	}
	// Hive's vintage default is written order too; the size-driven
	// reordering remains available as a strategy knob.
	sizeAware := Hive()
	sizeAware.ReorderBySize = true
	sized, err := joinOrder(sizeAware, q, db)
	if err != nil {
		t.Fatal(err)
	}
	if sized[0] != "Small" {
		t.Errorf("size order starts with %s, want Small", sized[0])
	}
}

func TestNames(t *testing.T) {
	n := Names()
	if len(n) != 4 || n[0] != "Our Method" {
		t.Errorf("Names() = %v", n)
	}
}
