package mr

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/relation"
)

// zeroWallM strips the measured wall-clock fields and the wall-clock-
// dependent attempt counters (retry and speculation scheduling follow
// real time), which legitimately vary between runs; every other metric
// must be bit-identical.
func zeroWallM(m Metrics) Metrics {
	m.Wall = WallTime{}
	m.MapAttempts = 0
	m.ReduceAttempts = 0
	m.SpeculativeLaunched = 0
	m.SpeculativeWins = 0
	return m
}

// spillProbeRelation builds an interned-string relation whose shuffle
// pairs exercise the raw pair codec end to end: dictionary code slots,
// plain strings, NULLs and numeric payloads.
func spillProbeRelation(t testing.TB, rows int) *relation.Relation {
	t.Helper()
	r := relation.New("probe", relation.MustSchema(
		relation.Column{Name: "k", Kind: relation.KindInt},
		relation.Column{Name: "city", Kind: relation.KindString},
		relation.Column{Name: "w", Kind: relation.KindFloat},
	))
	cities := []string{"amsterdam", "beijing", "chicago", "delhi", "edinburgh"}
	for i := 0; i < rows; i++ {
		city := relation.Str(cities[i%len(cities)])
		if i%11 == 0 {
			city = relation.Null()
		}
		r.MustAppend(relation.Tuple{
			relation.Int(int64(i % 41)),
			city,
			relation.Float(float64(i) * 0.75),
		})
	}
	relation.InternStrings(r)
	return r
}

// groupJob groups the probe relation by k and emits per-group counts
// plus a representative (interned) city value, so output byte metrics
// depend on code slots surviving the shuffle.
func groupJob(in *relation.Relation, reducers int) *Job {
	outSchema := relation.MustSchema(
		relation.Column{Name: "k", Kind: relation.KindInt},
		relation.Column{Name: "city", Kind: relation.KindString},
		relation.Column{Name: "n", Kind: relation.KindInt},
	)
	return &Job{
		Name:   "group",
		Inputs: []Input{{Rel: in, Map: func(t relation.Tuple, emit Emitter) { emit(uint64(t[0].Int64()), 0, t) }}},
		Reduce: func(key uint64, values []Tagged, ctx *ReduceContext) {
			var city relation.Value
			for _, v := range values {
				if !v.Tuple[1].IsNull() {
					city = v.Tuple[1]
					break
				}
			}
			ctx.Emit(relation.Tuple{values[0].Tuple[0], city, relation.Int(int64(len(values)))})
		},
		NumReducers:  reducers,
		OutputName:   "groups",
		OutputSchema: outSchema,
		OutputDicts:  []*relation.Dict{nil, in.DictOf(1), nil},
	}
}

func mustRun(t *testing.T, cfg Config, job *Job) *Result {
	t.Helper()
	res, err := Run(context.Background(), cfg, nil, job)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func requireSameOutput(t *testing.T, a, b *relation.Relation, where string) {
	t.Helper()
	if len(a.Tuples) != len(b.Tuples) {
		t.Fatalf("%s: %d vs %d output tuples", where, len(a.Tuples), len(b.Tuples))
	}
	for i := range a.Tuples {
		if len(a.Tuples[i]) != len(b.Tuples[i]) {
			t.Fatalf("%s: row %d arity differs", where, i)
		}
		for j := range a.Tuples[i] {
			if a.Tuples[i][j] != b.Tuples[i][j] {
				t.Fatalf("%s: row %d col %d: %#v vs %#v", where, i, j, a.Tuples[i][j], b.Tuples[i][j])
			}
		}
	}
}

// TestSpillEquivalence: forcing out-of-core execution with a tiny
// budget changes no output bit and no byte-level metric — only the
// spill/live-bytes accounting moves.
func TestSpillEquivalence(t *testing.T) {
	in := spillProbeRelation(t, 900)
	cfg := smallConfig()
	base := mustRun(t, cfg, groupJob(in, 5))

	spillCfg := cfg
	spillCfg.SpillBudgetBytes = 512 // force many flushes per task
	spilled := mustRun(t, spillCfg, groupJob(in, 5))

	requireSameOutput(t, base.Output, spilled.Output, "spill on/off")

	bm, sm := zeroWallM(base.Metrics), zeroWallM(spilled.Metrics)
	if sm.SpillBytes <= 0 || sm.SpillRuns <= 0 {
		t.Fatalf("budgeted run did not spill: %+v", sm)
	}
	if bm.SpillBytes != 0 || bm.SpillRuns != 0 {
		t.Fatalf("in-memory run reports spills: %+v", bm)
	}
	if sm.PeakLiveBytes >= bm.PeakLiveBytes {
		t.Fatalf("peak live bytes did not drop: spill %d vs in-memory %d", sm.PeakLiveBytes, bm.PeakLiveBytes)
	}
	// Everything else must match bit for bit.
	sm.SpillBytes, sm.SpillRuns, sm.PeakLiveBytes = bm.SpillBytes, bm.SpillRuns, bm.PeakLiveBytes
	if !reflect.DeepEqual(bm, sm) {
		t.Fatalf("metrics diverged between spill on/off:\nbase:  %+v\nspill: %+v", bm, sm)
	}
}

// TestSpillDeterministicAcrossWorkers: with spill forced on, output
// and all non-wall metrics stay bit-identical for any worker count.
func TestSpillDeterministicAcrossWorkers(t *testing.T) {
	in := spillProbeRelation(t, 700)
	var first *Result
	for _, workers := range []int{1, 2, 8} {
		cfg := smallConfig()
		cfg.SpillBudgetBytes = 1024
		cfg.MaxParallelWorkers = workers
		res := mustRun(t, cfg, groupJob(in, 4))
		if first == nil {
			first = res
			continue
		}
		requireSameOutput(t, first.Output, res.Output, "across workers")
		if !reflect.DeepEqual(zeroWallM(first.Metrics), zeroWallM(res.Metrics)) {
			t.Fatalf("metrics diverged at %d workers:\n%+v\nvs\n%+v",
				workers, zeroWallM(first.Metrics), zeroWallM(res.Metrics))
		}
	}
}

// TestChunkedInputEquivalence: a map input streamed chunk by chunk
// produces the same result content and byte metrics as the in-memory
// relation it was built from.
func TestChunkedInputEquivalence(t *testing.T) {
	in := spillProbeRelation(t, 500)
	cfg := smallConfig()
	base := mustRun(t, cfg, groupJob(in, 4))

	job := groupJob(in, 4)
	job.Inputs[0].Stream = NewMemoryChunkSource(in, 64)
	streamed := mustRun(t, cfg, job)

	if relation.ContentHash(streamed.Output) != relation.ContentHash(base.Output) {
		t.Fatal("content hash differs between streamed and in-memory input")
	}
	bm, sm := zeroWallM(base.Metrics), zeroWallM(streamed.Metrics)
	if bm.InputBytes != sm.InputBytes || bm.ShuffleBytes != sm.ShuffleBytes ||
		bm.PairsEmitted != sm.PairsEmitted || bm.OutputBytes != sm.OutputBytes {
		t.Fatalf("byte metrics diverged:\nbase:     %+v\nstreamed: %+v", bm, sm)
	}

	// Chunk streaming composes with the spill budget: fully
	// out-of-core in and out, same content.
	oocCfg := cfg
	oocCfg.SpillBudgetBytes = 2048
	oocJob := groupJob(in, 4)
	oocJob.Inputs[0].Stream = NewMemoryChunkSource(in, 64)
	ooc := mustRun(t, oocCfg, oocJob)
	if relation.ContentHash(ooc.Output) != relation.ContentHash(base.Output) {
		t.Fatal("content hash differs under streaming + spill")
	}
}

// TestSpillBoundedMemoryLargeWorkload drives the acceptance story: a
// shuffle several times larger than the budget completes under it,
// produces the identical result, and the accounted peak drops by more
// than half.
func TestSpillBoundedMemoryLargeWorkload(t *testing.T) {
	in := spillProbeRelation(t, 4000)
	cfg := smallConfig()
	job := groupJob(in, 8)
	base := mustRun(t, cfg, job)
	basePeak := base.Metrics.PeakLiveBytes
	if basePeak <= 0 {
		t.Fatalf("no accounted peak on the in-memory run: %+v", base.Metrics)
	}

	budget := basePeak / 16
	if budget < 256 {
		budget = 256
	}
	spillCfg := cfg
	spillCfg.SpillBudgetBytes = budget
	spilled := mustRun(t, spillCfg, groupJob(in, 8))

	if relation.ContentHash(spilled.Output) != relation.ContentHash(base.Output) {
		t.Fatal("content hash differs under a bounded budget")
	}
	if spilled.Metrics.SpillBytes < basePeak {
		t.Fatalf("expected the whole shuffle on disk: spilled %d, base peak %d",
			spilled.Metrics.SpillBytes, basePeak)
	}
	if spilled.Metrics.PeakLiveBytes*2 > basePeak {
		t.Fatalf("accounted peak dropped less than half: %d vs %d",
			spilled.Metrics.PeakLiveBytes, basePeak)
	}
}

// TestMemSourceReleasesOnDrain pins the reducer-merge memory fix: an
// in-memory bucket's backing array is released the moment its cursor
// drains, not when the whole merge completes.
func TestMemSourceReleasesOnDrain(t *testing.T) {
	bucket := []pair{
		{key: 1, tuple: relation.Tuple{relation.Int(1)}},
		{key: 2, tuple: relation.Tuple{relation.Int(2)}},
	}
	s := memSource(bucket, 1)
	if _, err := s.next(); err != nil {
		t.Fatal(err)
	}
	if s.bucket == nil {
		t.Fatal("bucket released before drain")
	}
	if bucket[0].tuple != nil {
		t.Fatal("consumed pair's tuple reference not dropped")
	}
	if _, err := s.next(); err != nil {
		t.Fatal(err)
	}
	if s.bucket != nil {
		t.Fatal("bucket not released at drain")
	}
	if !s.drained() {
		t.Fatal("source not drained")
	}

	// The ordered fast path and the heap merge both release: merge two
	// overlapping buckets and check the caller-visible slice entries.
	a := []pair{{key: 1, tuple: relation.Tuple{relation.Int(1)}}, {key: 5, tuple: relation.Tuple{relation.Int(5)}}}
	b := []pair{{key: 2, tuple: relation.Tuple{relation.Int(2)}}, {key: 9, tuple: relation.Tuple{relation.Int(9)}}}
	srcs := []*pairSource{memSource(a, 1), memSource(b, 1)}
	var got []uint64
	if err := mergeSources(srcs, func(p pair, _ *pairSource) error {
		got = append(got, p.key)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if want := []uint64{1, 2, 5, 9}; !reflect.DeepEqual(got, want) {
		t.Fatalf("merge order %v, want %v", got, want)
	}
	for i, s := range srcs {
		if s.bucket != nil {
			t.Fatalf("source %d bucket still referenced after merge", i)
		}
	}
}

// TestTempSpillStore: the fallback store round-trips bytes and cleans
// up after itself.
func TestTempSpillStore(t *testing.T) {
	store, err := NewTempSpillStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f, err := store.CreateSpillFile()
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("spill payload bytes")
	if _, err := f.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := f.Seal(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload)-6)
	if _, err := f.ReadAt(got, 6); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload[6:]) {
		t.Fatalf("read back %q", got)
	}
	if err := f.Release(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
}
