package mr

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// FaultKind enumerates the injectable fault types of a FaultPlan.
type FaultKind int

const (
	// FaultKillMap fails one map task attempt midway through its
	// input, after partial output (including partial spill runs) has
	// been produced — the partial state must be discarded, never
	// merged.
	FaultKillMap FaultKind = iota
	// FaultKillReduce fails one reduce task attempt after its shuffle
	// gather, before the merge commits anything.
	FaultKillReduce
	// FaultDelayMap stalls a map task attempt (a straggler) for Delay,
	// long enough to trip speculative execution when armed.
	FaultDelayMap
	// FaultDelayReduce stalls a reduce task attempt for Delay.
	FaultDelayReduce
	// FaultCorruptSpill flips a byte in the first spill-run frame read
	// from the chosen map task, once. The frame checksum catches it
	// and the reader fails over to a replica re-read, so a single
	// corruption is absorbed without failing the attempt.
	FaultCorruptSpill
)

// String names the fault kind the way ParseFaultPlan spells it.
func (k FaultKind) String() string {
	switch k {
	case FaultKillMap:
		return "kill-map"
	case FaultKillReduce:
		return "kill-reduce"
	case FaultDelayMap:
		return "delay-map"
	case FaultDelayReduce:
		return "delay-reduce"
	case FaultCorruptSpill:
		return "corrupt-spill"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Fault is one injected event. The zero Task/Attempt target the first
// task's first attempt; negative values widen the target: Task < 0
// picks a task pseudo-randomly from the plan's seed (stable for a
// given seed, job name and task count), Attempt < 0 strikes every
// attempt of the task — the way to exhaust retries deliberately.
type Fault struct {
	Kind    FaultKind
	Job     string        // restrict to this job name ("" = every job)
	Task    int           // task ordinal; < 0 = seeded pseudo-random pick
	Attempt int           // attempt ordinal; < 0 = every attempt
	Delay   time.Duration // stall for delay faults (0 = 200ms)
}

// FaultPlan is a seeded, deterministic fault-injection schedule
// (Config.Faults). The same plan against the same job produces the
// same injected faults at any worker count: kill and delay targets are
// a pure function of (Seed, job name, task counts), and a corruption
// is consumed exactly once regardless of which reader reaches the
// frame first. Every fault except an Attempt < 0 kill is retryable,
// and the engine's contract is that results remain bit-identical under
// any plan whose faults are all retryable.
type FaultPlan struct {
	Seed   int64
	Faults []Fault
}

const defaultFaultDelay = 200 * time.Millisecond

// ParseFaultPlan parses the CLI fault-plan syntax: comma-separated
// key=value pairs, e.g.
//
//	seed=7,map-kills=2,reduce-kills=1,corrupt-frames=1,stragglers=1,delay=300ms
//
// map-kills/reduce-kills add that many first-attempt kills of seeded
// pseudo-random tasks; stragglers add seeded map-task delays of the
// `delay` duration; corrupt-frames add one-shot spill-frame
// corruptions on seeded map tasks. Every generated fault is retryable,
// so a parsed plan never changes a result.
func ParseFaultPlan(s string) (*FaultPlan, error) {
	plan := &FaultPlan{}
	var mapKills, reduceKills, stragglers, corrupt int
	delay := defaultFaultDelay
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("mr: fault plan: %q is not key=value", part)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("mr: fault plan: seed: %w", err)
			}
			plan.Seed = n
		case "map-kills", "reduce-kills", "stragglers", "corrupt-frames":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("mr: fault plan: %s must be a non-negative integer, got %q", k, v)
			}
			switch k {
			case "map-kills":
				mapKills = n
			case "reduce-kills":
				reduceKills = n
			case "stragglers":
				stragglers = n
			case "corrupt-frames":
				corrupt = n
			}
		case "delay":
			d, err := time.ParseDuration(v)
			if err != nil {
				return nil, fmt.Errorf("mr: fault plan: delay: %w", err)
			}
			delay = d
		default:
			return nil, fmt.Errorf("mr: fault plan: unknown key %q", k)
		}
	}
	for i := 0; i < mapKills; i++ {
		plan.Faults = append(plan.Faults, Fault{Kind: FaultKillMap, Task: -1})
	}
	for i := 0; i < reduceKills; i++ {
		plan.Faults = append(plan.Faults, Fault{Kind: FaultKillReduce, Task: -1})
	}
	for i := 0; i < stragglers; i++ {
		plan.Faults = append(plan.Faults, Fault{Kind: FaultDelayMap, Task: -1, Delay: delay})
	}
	for i := 0; i < corrupt; i++ {
		plan.Faults = append(plan.Faults, Fault{Kind: FaultCorruptSpill, Task: -1})
	}
	return plan, nil
}

// String renders the plan in the ParseFaultPlan syntax (summarised).
func (p *FaultPlan) String() string {
	if p == nil {
		return "<none>"
	}
	counts := map[string]int{}
	for _, f := range p.Faults {
		counts[f.Kind.String()]++
	}
	var kinds []string
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	parts := []string{fmt.Sprintf("seed=%d", p.Seed)}
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s=%d", k, counts[k]))
	}
	return strings.Join(parts, ",")
}

// ---- Per-run injector -------------------------------------------------

// Phases of task execution; injector and attempt bookkeeping index by
// these.
const (
	phaseMap = iota
	phaseReduce
	numPhases
)

func phaseName(ph int) string {
	if ph == phaseReduce {
		return "reduce"
	}
	return "map"
}

// faultTarget addresses one (phase, task, attempt) triple.
type faultTarget struct{ ph, task, attempt int }

// injector is a FaultPlan resolved against one concrete Run: seeded
// pseudo-random task picks are fixed up front (mixing the job name
// into the seed so every job of a cascade draws its own targets), so
// whether a fault fires is a pure function of (task, attempt) — the
// anchor of the fault-determinism contract. Only corruption carries
// runtime state: it is consumed exactly once, atomically, no matter
// which reader reaches the frame first.
type injector struct {
	kills    map[faultTarget]bool
	killAll  map[[2]int]bool // kill every attempt of [phase, task]
	delays   map[faultTarget]time.Duration
	delayAll map[[2]int]time.Duration
	corrupt  map[int]*atomic.Int64 // map task -> corruptions remaining
}

// newInjector resolves plan against a job with nMap map tasks and nRed
// reduce tasks. Returns nil when the plan has nothing for this job.
func newInjector(plan *FaultPlan, jobName string, nMap, nRed int) *injector {
	if plan == nil || len(plan.Faults) == 0 {
		return nil
	}
	h := fnv.New64a()
	h.Write([]byte(jobName))
	rng := rand.New(rand.NewSource(plan.Seed ^ int64(h.Sum64())))
	in := &injector{
		kills:    map[faultTarget]bool{},
		killAll:  map[[2]int]bool{},
		delays:   map[faultTarget]time.Duration{},
		delayAll: map[[2]int]time.Duration{},
		corrupt:  map[int]*atomic.Int64{},
	}
	any := false
	for _, f := range plan.Faults {
		ph, n := phaseMap, nMap
		if f.Kind == FaultKillReduce || f.Kind == FaultDelayReduce {
			ph, n = phaseReduce, nRed
		}
		task := f.Task
		if task < 0 {
			// Draw even for other jobs' faults so the stream of picks
			// stays aligned across jobs that share one plan.
			task = rng.Intn(n)
		}
		if f.Job != "" && f.Job != jobName {
			continue
		}
		if task >= n {
			continue
		}
		any = true
		switch f.Kind {
		case FaultKillMap, FaultKillReduce:
			if f.Attempt < 0 {
				in.killAll[[2]int{ph, task}] = true
			} else {
				in.kills[faultTarget{ph, task, f.Attempt}] = true
			}
		case FaultDelayMap, FaultDelayReduce:
			d := f.Delay
			if d <= 0 {
				d = defaultFaultDelay
			}
			if f.Attempt < 0 {
				in.delayAll[[2]int{ph, task}] += d
			} else {
				in.delays[faultTarget{ph, task, f.Attempt}] += d
			}
		case FaultCorruptSpill:
			c := in.corrupt[task]
			if c == nil {
				c = &atomic.Int64{}
				in.corrupt[task] = c
			}
			c.Add(1)
		}
	}
	if !any {
		return nil
	}
	return in
}

// kill reports whether the (phase, task, attempt) attempt is scheduled
// to fail. Nil-safe.
func (in *injector) kill(ph, task, attempt int) bool {
	if in == nil {
		return false
	}
	return in.killAll[[2]int{ph, task}] || in.kills[faultTarget{ph, task, attempt}]
}

// delay returns the injected straggler stall for the attempt (0 =
// none). Nil-safe.
func (in *injector) delay(ph, task, attempt int) time.Duration {
	if in == nil {
		return 0
	}
	return in.delayAll[[2]int{ph, task}] + in.delays[faultTarget{ph, task, attempt}]
}

// corruptSpill consumes one scheduled corruption of the map task's
// spill runs; at most the scheduled count of calls return true, no
// matter how many readers ask concurrently. Nil-safe.
func (in *injector) corruptSpill(task int) bool {
	if in == nil {
		return false
	}
	c := in.corrupt[task]
	if c == nil {
		return false
	}
	for {
		v := c.Load()
		if v <= 0 {
			return false
		}
		if c.CompareAndSwap(v, v-1) {
			return true
		}
	}
}

// plannedKills counts the kill attempts the plan schedules for a task
// within the attempt budget — the deterministic quantity the simulated
// clock charges as task failures (capped backoff included), regardless
// of how real attempts interleave with speculation. A kill-every-
// attempt fault burns the whole budget; the run then fails, so the
// charge never surfaces.
func (in *injector) plannedKills(ph, task, maxAttempts int) int {
	if in == nil {
		return 0
	}
	if in.killAll[[2]int{ph, task}] {
		return maxAttempts - 1
	}
	n := 0
	for a := 0; a < maxAttempts-1; a++ {
		if in.kills[faultTarget{ph, task, a}] {
			n++
		}
	}
	return n
}
