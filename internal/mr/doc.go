// Package mr is a deterministic MapReduce runtime-and-simulator.
//
// Jobs really execute: map functions run over real tuples, a hash
// shuffle routes tagged (key,value) pairs to reduce partitions, and
// reduce functions emit real output tuples. What is simulated is time:
// a discrete-event clock advances by the same quantities the paper's
// cost model (§4.1) reasons about — sequential scan of input blocks,
// round-by-round map waves over a bounded slot pool, spill cost as a
// function of map output volume, copy cost over the network with
// per-connection overhead, and the straggler reduce task that
// dominates J_R.
//
// The paper's experiments ran on a 13-node Hadoop 0.20.205 cluster
// (104 cores, 10 GbE, measured 74.26 MB/s read and 14.69 MB/s write);
// the default configuration mirrors Table 1 and those measurements so
// simulated times land in the paper's range.
//
// # Task attempts and the idempotency contract
//
// MapReduce's defining runtime property — a job survives task failure
// because tasks re-execute idempotently — is real here, not simulated.
// Every map and reduce task runs as a sequence of ATTEMPTS, bounded by
// Config.MaxTaskAttempts, and the engine relies on a strict
// idempotency contract:
//
//   - Attempt isolation. An attempt derives its output only from
//     attempt-scoped state it creates itself: its own per-reducer
//     buckets and its own spill files (the attempt-scoped namespace in
//     the SpillStore). Nothing an attempt produces is visible to the
//     rest of the run until the attempt COMMITS.
//   - Bit-identical re-execution. Map and reduce functions must be
//     deterministic, so any attempt of a task commits byte-for-byte
//     the output any other attempt would have committed. This is what
//     lets speculative execution take "first to finish wins" without
//     perturbing results.
//   - Discard, never merge. A failed or losing attempt's partial
//     state — spill runs included — is released without ever feeding
//     the shuffle. Reducers only merge runs of committed map attempts.
//
// Retries are charged to the simulated clock (failures occupy their
// slot for the extra attempts plus a capped doubling backoff), never
// to results: the headline contract is that results are bit-identical
// under any Config.Faults plan whose faults are all retryable, at any
// worker count.
//
// Speculative execution backs up stragglers: when a running attempt
// exceeds Config.SpeculativeFactor times the phase's median completed
// attempt duration, one backup attempt launches, the first to finish
// commits, and the loser is discarded atomically.
//
// # Spill integrity
//
// Spilled runs are written as checksummed frames (~32 KiB of pairs,
// each with a CRC32 header; a pair never spans frames). Readers verify
// every frame before decoding; a mismatch is counted
// (Metrics.ChecksumFailures, the mr/checksum_failures quarantine
// counter) and the frame is re-read — failover to a surviving replica,
// priced by Config.DFSReplication — before the attempt fails with a
// retryable error. A transient corruption therefore costs a counter
// tick and a failover read; only persistent corruption of every
// replica can surface an error, and even that error is retried with a
// fresh attempt.
package mr
