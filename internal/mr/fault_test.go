package mr

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// faultProbePlan is the CI smoke plan: two map kills, one reduce kill,
// one corrupted spill frame and one straggler, all seeded.
func faultProbePlan(t testing.TB) *FaultPlan {
	t.Helper()
	plan, err := ParseFaultPlan("seed=7,map-kills=2,reduce-kills=1,corrupt-frames=1,stragglers=1,delay=10ms")
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestFaultInjectionDeterminism is the headline contract: with a fault
// plan whose faults are all retryable, the output and every
// deterministic metric are bit-identical to each other at any worker
// count — and the output matches the fault-free run.
func TestFaultInjectionDeterminism(t *testing.T) {
	in := spillProbeRelation(t, 3000)
	clean := mustRun(t, func() Config {
		cfg := smallConfig()
		cfg.SpillBudgetBytes = 4 << 10
		return cfg
	}(), groupJob(in, 4))

	var first *Result
	var firstWorkers int
	for _, w := range []int{1, 2, runtime.NumCPU()} {
		cfg := smallConfig()
		cfg.SpillBudgetBytes = 4 << 10
		cfg.MaxParallelWorkers = w
		cfg.Faults = faultProbePlan(t)
		res := mustRun(t, cfg, groupJob(in, 4))
		requireSameOutput(t, clean.Output, res.Output, "faulty vs clean")
		if res.Metrics.ChecksumFailures != 1 || res.Metrics.FailoverReads != 1 {
			t.Errorf("workers=%d: corruption not absorbed exactly once: checksum=%d failover=%d",
				w, res.Metrics.ChecksumFailures, res.Metrics.FailoverReads)
		}
		if res.Metrics.MapFailures < 2 || res.Metrics.ReduceFailures < 1 {
			t.Errorf("workers=%d: planned kills not charged: %+v", w, res.Metrics)
		}
		if first == nil {
			first, firstWorkers = res, w
			continue
		}
		if !reflect.DeepEqual(zeroWallM(first.Metrics), zeroWallM(res.Metrics)) {
			t.Errorf("metrics diverged between %d and %d workers:\n%+v\nvs\n%+v",
				firstWorkers, w, zeroWallM(first.Metrics), zeroWallM(res.Metrics))
		}
		requireSameOutput(t, first.Output, res.Output, "across worker counts")
	}
	// Faulted runs must charge recovery to the simulated clock.
	if first.Metrics.Sim.Total <= clean.Metrics.Sim.Total {
		t.Errorf("injected kills did not extend simulated time: %v vs clean %v",
			first.Metrics.Sim.Total, clean.Metrics.Sim.Total)
	}
}

func TestParseFaultPlan(t *testing.T) {
	plan, err := ParseFaultPlan("seed=42,map-kills=2,reduce-kills=1,corrupt-frames=3,stragglers=1,delay=300ms")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 42 || len(plan.Faults) != 7 {
		t.Fatalf("parsed %+v", plan)
	}
	counts := map[FaultKind]int{}
	var delay time.Duration
	for _, f := range plan.Faults {
		counts[f.Kind]++
		if f.Kind == FaultDelayMap {
			delay = f.Delay
		}
		if f.Task >= 0 {
			t.Errorf("parsed fault should use seeded picks, got task %d", f.Task)
		}
	}
	if counts[FaultKillMap] != 2 || counts[FaultKillReduce] != 1 ||
		counts[FaultCorruptSpill] != 3 || counts[FaultDelayMap] != 1 {
		t.Errorf("kind counts %v", counts)
	}
	if delay != 300*time.Millisecond {
		t.Errorf("delay %v", delay)
	}
	if s := plan.String(); !strings.Contains(s, "seed=42") || !strings.Contains(s, "kill-map=2") {
		t.Errorf("String() = %q", s)
	}

	for _, bad := range []string{"map-kills", "map-kills=-1", "map-kills=x", "seed=abc", "delay=xyz", "bogus=1"} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("ParseFaultPlan(%q) accepted", bad)
		}
	}
}

// TestConfigRejectsBadFaultKnobs exercises Validate through mr.Run, the
// path every caller takes.
func TestConfigRejectsBadFaultKnobs(t *testing.T) {
	in := intsRelation("in", 1, 2, 3)
	for _, tc := range []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"negative-attempts", func(c *Config) { c.MaxTaskAttempts = -1 }, "MaxTaskAttempts"},
		{"sub-1-speculation", func(c *Config) { c.SpeculativeFactor = 0.5 }, "SpeculativeFactor"},
		{"negative-speculation", func(c *Config) { c.SpeculativeFactor = -3 }, "SpeculativeFactor"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallConfig()
			tc.mut(&cfg)
			_, err := Run(context.Background(), cfg, nil, countJob(in, 2))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Run error = %v, want mention of %s", err, tc.want)
			}
		})
	}
}

// TestRetryExhaustion: a kill-every-attempt fault burns the whole
// budget and surfaces the FIRST attempt's error wrapped in a TaskError.
func TestRetryExhaustion(t *testing.T) {
	in := spillProbeRelation(t, 500)
	cfg := smallConfig()
	cfg.MaxTaskAttempts = 3
	cfg.Faults = &FaultPlan{Faults: []Fault{{Kind: FaultKillMap, Task: 0, Attempt: -1}}}
	_, err := Run(context.Background(), cfg, nil, groupJob(in, 2))
	if err == nil {
		t.Fatal("expected retry exhaustion")
	}
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("error %T %v is not a TaskError", err, err)
	}
	if te.Phase != "map" || te.Task != 0 || te.Attempts != 3 {
		t.Errorf("TaskError = %+v", te)
	}
	if te.Err == nil || !strings.Contains(te.Err.Error(), "attempt 0") {
		t.Errorf("first-error propagation: wrapped %v", te.Err)
	}
}

// TestSpeculativeBackupWins drives runTask directly with a controlled
// attempt function: the primary attempt stalls until the backup has
// committed, so the backup must win and the primary's outcome must be
// discarded — exactly once, atomically.
func TestSpeculativeBackupWins(t *testing.T) {
	oldFloor, oldMin := specFloor, specMinSamples
	specFloor, specMinSamples = time.Millisecond, 1
	defer func() { specFloor, specMinSamples = oldFloor, oldMin }()

	cfg := DefaultConfig()
	cfg.MaxTaskAttempts = 2
	cfg.SpeculativeFactor = 1
	ft := newFaultRuntime(cfg, &Job{Name: "spec"}, 1, 1, nil)
	ft.recordDur(phaseMap, time.Millisecond) // establish the median

	release := make(chan struct{})
	var primaryCommitted, primaryDiscarded, backupCommitted atomic.Bool
	err := ft.runTask(context.Background(), phaseMap, 0, nil, func(ctx context.Context, attempt int, _ *obs.Shard) (attemptOutcome, error) {
		if attempt == 0 {
			<-release // stall the primary until the backup has won
			return attemptOutcome{
				commit:  func() { primaryCommitted.Store(true) },
				discard: func() { primaryDiscarded.Store(true) },
			}, nil
		}
		return attemptOutcome{
			commit: func() {
				backupCommitted.Store(true)
				close(release)
			},
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !backupCommitted.Load() || primaryCommitted.Load() || !primaryDiscarded.Load() {
		t.Errorf("backup committed=%v, primary committed=%v discarded=%v",
			backupCommitted.Load(), primaryCommitted.Load(), primaryDiscarded.Load())
	}
	if ft.specLaunched.Load() != 1 || ft.specWins.Load() != 1 {
		t.Errorf("spec counters: launched=%d wins=%d", ft.specLaunched.Load(), ft.specWins.Load())
	}
	if got := ft.attempts[phaseMap].Load(); got != 2 {
		t.Errorf("attempts = %d, want 2", got)
	}
}

// TestCancellationMidMerge: cancelling the context while reducers are
// merging spilled runs must abort the run promptly, join every attempt
// goroutine and leak no spill files — Live() counts the store's
// outstanding files and must be 0 whether the run succeeded or not.
func TestCancellationMidMerge(t *testing.T) {
	in := spillProbeRelation(t, 4000)
	store, err := NewTempSpillStore("")
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	cfg := smallConfig()
	cfg.SpillBudgetBytes = 1 << 10
	cfg.Spill = store

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	job := groupJob(in, 2)
	orig := job.Reduce
	job.Reduce = func(key uint64, values []Tagged, rctx *ReduceContext) {
		cancel() // fire mid-merge, with sources still open
		orig(key, values, rctx)
	}

	before := runtime.NumGoroutine()
	_, err = Run(ctx, cfg, nil, job)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	if live := store.Live(); live != 0 {
		t.Errorf("%d spill files leaked after cancellation", live)
	}
	// Every attempt goroutine must have exited; poll briefly since
	// runtime bookkeeping lags goroutine exit.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutines leaked: %d before Run, %d after", before, now)
	}
}

// BenchmarkFaultFreeOverhead prices the attempt machinery on the
// fault-free path: the default config (4 attempts armed, nothing
// injected) against the inert single-attempt fast path. The benchdiff
// gate holds the fault-tolerant ns/op within 3% of baseline.
func BenchmarkFaultFreeOverhead(b *testing.B) {
	in := spillProbeRelation(b, 5000)
	for _, mode := range []struct {
		name     string
		attempts int
	}{
		{"baseline-single-attempt", 1},
		{"fault-tolerant-default", 0},
	} {
		b.Run(mode.name, func(b *testing.B) {
			// Default split granularity (2048 tuples/task), not the
			// micro-splits the correctness tests use: the plumbing's
			// cost is fixed per task attempt, so task sizing IS the
			// overhead ratio being measured.
			cfg := DefaultConfig()
			cfg.MaxTaskAttempts = mode.attempts
			job := groupJob(in, 4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(context.Background(), cfg, nil, job); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
