package mr

import (
	"context"
	"hash/fnv"
	"testing"

	"repro/internal/relation"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.TuplesPerMapTask = 16
	cfg.MapSlots = 4
	cfg.ReduceSlots = 4
	return cfg
}

func intsRelation(name string, vals ...int64) *relation.Relation {
	r := relation.New(name, relation.MustSchema(relation.Column{Name: "v", Kind: relation.KindInt}))
	for _, v := range vals {
		r.MustAppend(relation.Tuple{relation.Int(v)})
	}
	return r
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// A word-count style job: group ints by value, count occurrences.
func countJob(in *relation.Relation, reducers int) *Job {
	outSchema := relation.MustSchema(
		relation.Column{Name: "v", Kind: relation.KindInt},
		relation.Column{Name: "n", Kind: relation.KindInt},
	)
	return &Job{
		Name:   "count",
		Inputs: []Input{{Rel: in, Map: func(t relation.Tuple, emit Emitter) { emit(uint64(t[0].Int64()), 0, t) }}},
		Reduce: func(key uint64, values []Tagged, ctx *ReduceContext) {
			ctx.Emit(relation.Tuple{values[0].Tuple[0], relation.Int(int64(len(values)))})
		},
		NumReducers:  reducers,
		OutputName:   "counts",
		OutputSchema: outSchema,
	}
}

func TestRunCountJob(t *testing.T) {
	in := intsRelation("in", 1, 2, 2, 3, 3, 3, 7, 7, 7, 7)
	res, err := Run(context.Background(), smallConfig(), nil, countJob(in, 3))
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]int64{1: 1, 2: 2, 3: 3, 7: 4}
	if res.Output.Cardinality() != len(want) {
		t.Fatalf("output rows %d, want %d", res.Output.Cardinality(), len(want))
	}
	for _, row := range res.Output.Tuples {
		if want[row[0].Int64()] != row[1].Int64() {
			t.Errorf("count of %d = %d, want %d", row[0].Int64(), row[1].Int64(), want[row[0].Int64()])
		}
	}
	m := res.Metrics
	if m.PairsEmitted != 10 {
		t.Errorf("pairs emitted %d", m.PairsEmitted)
	}
	if m.ReduceTasks != 3 || len(m.ReducerInputBytes) != 3 {
		t.Errorf("reduce task accounting wrong: %+v", m)
	}
	if m.InputBytes <= 0 || m.ShuffleBytes <= 0 || m.OutputBytes <= 0 {
		t.Errorf("byte accounting not positive: %+v", m)
	}
	if m.Sim.Total <= 0 || m.Sim.Total < m.Sim.ShuffleDone || m.Sim.ShuffleDone < m.Sim.MapDone {
		t.Errorf("sim time ordering violated: %+v", m.Sim)
	}
}

func TestRunDeterministic(t *testing.T) {
	in := intsRelation("in")
	for i := int64(0); i < 500; i++ {
		in.MustAppend(relation.Tuple{relation.Int(i % 37)})
	}
	var first *Result
	for trial := 0; trial < 3; trial++ {
		res, err := Run(context.Background(), smallConfig(), nil, countJob(in, 5))
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = res
			continue
		}
		if res.Output.Cardinality() != first.Output.Cardinality() {
			t.Fatal("nondeterministic cardinality")
		}
		for i := range res.Output.Tuples {
			for j := range res.Output.Tuples[i] {
				if relation.Compare(res.Output.Tuples[i][j], first.Output.Tuples[i][j]) != 0 {
					t.Fatalf("nondeterministic output at row %d", i)
				}
			}
		}
		if res.Metrics.Sim != first.Metrics.Sim {
			t.Fatalf("nondeterministic sim time: %+v vs %+v", res.Metrics.Sim, first.Metrics.Sim)
		}
	}
}

// TestMergeOrderingContract pins the shuffle ordering the sort-free
// merge must reproduce: reduce keys arrive in ascending order, and
// values within a key keep task order (and, within a task, emission
// order). With tasks split from one relation in block order, that
// means values of a key appear in global input order.
func TestMergeOrderingContract(t *testing.T) {
	in := relation.New("in", relation.MustSchema(
		relation.Column{Name: "k", Kind: relation.KindInt},
		relation.Column{Name: "pos", Kind: relation.KindInt},
	))
	// 64 tuples over 7 keys, interleaved so every map task (4 tuples
	// each) holds several keys and every key spans several tasks.
	for i := int64(0); i < 64; i++ {
		in.MustAppend(relation.Tuple{relation.Int(i % 7), relation.Int(i)})
	}
	cfg := smallConfig()
	cfg.TuplesPerMapTask = 4
	type group struct {
		key uint64
		pos []int64
	}
	var groups []group
	job := &Job{
		Name:   "ordering",
		Inputs: []Input{{Rel: in, Map: func(t relation.Tuple, emit Emitter) { emit(uint64(t[0].Int64()), 0, t) }}},
		Reduce: func(key uint64, values []Tagged, ctx *ReduceContext) {
			g := group{key: key}
			for _, v := range values {
				g.pos = append(g.pos, v.Tuple[1].Int64())
			}
			groups = append(groups, g)
			ctx.Emit(relation.Tuple{values[0].Tuple[0], relation.Int(int64(len(values)))})
		},
		NumReducers:  1, // single reducer: observe the full merged run
		OutputName:   "out",
		OutputSchema: relation.MustSchema(
			relation.Column{Name: "k", Kind: relation.KindInt},
			relation.Column{Name: "n", Kind: relation.KindInt},
		),
	}
	cfg.MaxParallelWorkers = 1
	if _, err := Run(context.Background(), cfg, nil, job); err != nil {
		t.Fatal(err)
	}
	if len(groups) != 7 {
		t.Fatalf("got %d key groups, want 7", len(groups))
	}
	for i := 1; i < len(groups); i++ {
		if groups[i].key <= groups[i-1].key {
			t.Errorf("keys not ascending: %d after %d", groups[i].key, groups[i-1].key)
		}
	}
	for _, g := range groups {
		for i := 1; i < len(g.pos); i++ {
			if g.pos[i] <= g.pos[i-1] {
				t.Errorf("key %d: values out of input order: %v", g.key, g.pos)
				break
			}
		}
		if int64(len(g.pos)) != 64/7+b2i(g.key < 64%7) {
			t.Errorf("key %d: %d values", g.key, len(g.pos))
		}
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func TestRunEquiJoin(t *testing.T) {
	left := intsRelation("L", 1, 2, 3, 4, 5)
	right := intsRelation("R", 3, 4, 5, 6, 3)
	outSchema := relation.MustSchema(
		relation.Column{Name: "l", Kind: relation.KindInt},
		relation.Column{Name: "r", Kind: relation.KindInt},
	)
	job := &Job{
		Name: "equijoin",
		Inputs: []Input{
			{Rel: left, Map: func(t relation.Tuple, emit Emitter) { emit(uint64(t[0].Int64()), 0, t) }},
			{Rel: right, Map: func(t relation.Tuple, emit Emitter) { emit(uint64(t[0].Int64()), 1, t) }},
		},
		Reduce: func(key uint64, values []Tagged, ctx *ReduceContext) {
			var ls, rs []relation.Tuple
			for _, v := range values {
				if v.Tag == 0 {
					ls = append(ls, v.Tuple)
				} else {
					rs = append(rs, v.Tuple)
				}
			}
			ctx.AddWork(int64(len(ls) * len(rs)))
			for _, l := range ls {
				for _, r := range rs {
					if l[0].Int64() == r[0].Int64() {
						ctx.Emit(relation.Tuple{l[0], r[0]})
					}
				}
			}
		},
		NumReducers:  4,
		OutputName:   "joined",
		OutputSchema: outSchema,
	}
	res, err := Run(context.Background(), smallConfig(), nil, job)
	if err != nil {
		t.Fatal(err)
	}
	// Matches: 3 appears twice on the right → 3×2? L has one 3. Pairs: (3,3)x2, (4,4), (5,5) = 4 rows.
	if res.Output.Cardinality() != 4 {
		t.Fatalf("join rows = %d, want 4", res.Output.Cardinality())
	}
	if res.Metrics.CombinationsChecked < 4 {
		t.Errorf("combinations checked = %d", res.Metrics.CombinationsChecked)
	}
}

func TestRunValidation(t *testing.T) {
	in := intsRelation("in", 1)
	good := countJob(in, 2)
	bad := *good
	bad.Name = ""
	if _, err := Run(context.Background(), smallConfig(), nil, &bad); err == nil {
		t.Error("empty name accepted")
	}
	bad = *good
	bad.Inputs = nil
	if _, err := Run(context.Background(), smallConfig(), nil, &bad); err == nil {
		t.Error("no inputs accepted")
	}
	bad = *good
	bad.NumReducers = 0
	if _, err := Run(context.Background(), smallConfig(), nil, &bad); err == nil {
		t.Error("0 reducers accepted")
	}
	bad = *good
	bad.Reduce = nil
	if _, err := Run(context.Background(), smallConfig(), nil, &bad); err == nil {
		t.Error("nil reduce accepted")
	}
	bad = *good
	bad.OutputSchema = nil
	if _, err := Run(context.Background(), smallConfig(), nil, &bad); err == nil {
		t.Error("nil schema accepted")
	}
	cfg := smallConfig()
	cfg.MapSlots = 0
	if _, err := Run(context.Background(), cfg, nil, good); err == nil {
		t.Error("bad config accepted")
	}
}

func TestRunEmptyInput(t *testing.T) {
	res, err := Run(context.Background(), smallConfig(), nil, countJob(intsRelation("empty"), 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Cardinality() != 0 {
		t.Error("nonempty output from empty input")
	}
}

func TestIdentityPartition(t *testing.T) {
	if IdentityPartition(3, 8) != 3 {
		t.Error("identity partition wrong")
	}
	if got := IdentityPartition(12, 8); got < 0 || got >= 8 {
		t.Errorf("out-of-range key mapped to %d", got)
	}
}

func TestBadPartitionRejected(t *testing.T) {
	in := intsRelation("in", 1, 2, 3)
	job := countJob(in, 2)
	job.Partition = func(key uint64, n int) int { return 99 }
	if _, err := Run(context.Background(), smallConfig(), nil, job); err == nil {
		t.Error("out-of-range partition accepted")
	}
}

func TestArityMismatchRejected(t *testing.T) {
	in := intsRelation("in", 1)
	job := countJob(in, 1)
	job.Reduce = func(key uint64, values []Tagged, ctx *ReduceContext) {
		ctx.Emit(relation.Tuple{relation.Int(1)}) // schema wants 2 columns
	}
	if _, err := Run(context.Background(), smallConfig(), nil, job); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestVolumeMultiplierScalesBytes(t *testing.T) {
	in := intsRelation("in", 1, 2, 3, 4)
	base, err := Run(context.Background(), smallConfig(), nil, countJob(in, 2))
	if err != nil {
		t.Fatal(err)
	}
	in2 := in.Clone()
	in2.VolumeMultiplier = 10
	scaled, err := Run(context.Background(), smallConfig(), nil, countJob(in2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if scaled.Metrics.InputBytes != base.Metrics.InputBytes*10 {
		t.Errorf("input bytes %d, want %d", scaled.Metrics.InputBytes, base.Metrics.InputBytes*10)
	}
	if scaled.Metrics.ShuffleBytes != base.Metrics.ShuffleBytes*10 {
		t.Errorf("shuffle bytes %d, want %d", scaled.Metrics.ShuffleBytes, base.Metrics.ShuffleBytes*10)
	}
	if scaled.Output.VolumeMultiplier != 10 {
		t.Errorf("output multiplier = %v", scaled.Output.VolumeMultiplier)
	}
	if scaled.Metrics.Sim.Total <= base.Metrics.Sim.Total {
		t.Error("larger modeled volume did not increase simulated time")
	}
}

func TestFaultInjectionMapRetry(t *testing.T) {
	in := intsRelation("in")
	for i := int64(0); i < 100; i++ {
		in.MustAppend(relation.Tuple{relation.Int(i)})
	}
	job := countJob(in, 2)
	clean, err := Run(context.Background(), smallConfig(), nil, job)
	if err != nil {
		t.Fatal(err)
	}
	job.FailMapTasks = map[int]int{0: 2}
	job.FailReduceTasks = map[int]int{1: 1}
	faulty, err := Run(context.Background(), smallConfig(), nil, job)
	if err != nil {
		t.Fatal(err)
	}
	// Same result despite failures (re-execution fault tolerance).
	if faulty.Output.Cardinality() != clean.Output.Cardinality() {
		t.Error("failure changed output")
	}
	if faulty.Metrics.MapFailures != 2 || faulty.Metrics.ReduceFailures != 1 {
		t.Errorf("failure counters: %+v", faulty.Metrics)
	}
	if faulty.Metrics.Sim.Total <= clean.Metrics.Sim.Total {
		t.Error("failures did not extend simulated time")
	}
}

func TestSimulatedWavesRespectSlots(t *testing.T) {
	// 8 equal map tasks on 2 slots must take ≥ 4× one task's time.
	mapDur := []float64{5, 5, 5, 5, 5, 5, 5, 5}
	copyDur := make([]float64, 8)
	sim := simulate(2, 2, mapDur, copyDur, make([]int, 8), []float64{1}, []int{0})
	if sim.MapDone != 20 {
		t.Errorf("map waves = %v, want 20", sim.MapDone)
	}
	// 4 reduce tasks of 10s on 2 slots after shuffle at t=20 → 20+20.
	sim = simulate(2, 2, mapDur, copyDur, make([]int, 8),
		[]float64{10, 10, 10, 10}, make([]int, 4))
	if sim.Total != 40 {
		t.Errorf("total = %v, want 40", sim.Total)
	}
}

func TestSimulateCopyOverlap(t *testing.T) {
	// Copies overlap with later map waves: 2 tasks, 1 slot, copy 3s.
	// Task A: 0-5, copy done 8. Task B: 5-10, copy done 13.
	sim := simulate(1, 1, []float64{5, 5}, []float64{3, 3}, []int{0, 0},
		[]float64{2}, []int{0})
	if sim.MapDone != 10 {
		t.Errorf("MapDone = %v", sim.MapDone)
	}
	if sim.ShuffleDone != 13 {
		t.Errorf("ShuffleDone = %v", sim.ShuffleDone)
	}
	if sim.Total != 15 {
		t.Errorf("Total = %v", sim.Total)
	}
}

func TestStragglerReducerDominates(t *testing.T) {
	in := intsRelation("skew")
	for i := 0; i < 1000; i++ {
		in.MustAppend(relation.Tuple{relation.Int(7)}) // all same key
	}
	for i := 0; i < 10; i++ {
		in.MustAppend(relation.Tuple{relation.Int(int64(100 + i))})
	}
	res, err := Run(context.Background(), smallConfig(), nil, countJob(in, 4))
	if err != nil {
		t.Fatal(err)
	}
	var max, sum int64
	for _, b := range res.Metrics.ReducerInputBytes {
		if b > max {
			max = b
		}
		sum += b
	}
	if max != res.Metrics.MaxReducerInput {
		t.Error("MaxReducerInput mismatch")
	}
	if float64(max) < 0.9*float64(sum) {
		t.Errorf("expected heavy skew, max %d of total %d", max, sum)
	}
}

func TestStdTimerMonotonicity(t *testing.T) {
	tm := NewStdTimer(DefaultConfig())
	if tm.MapTaskTime(1e9, 1e8) <= tm.MapTaskTime(1e8, 1e8) {
		t.Error("map time not increasing in input")
	}
	if tm.ReduceTime(1e9, 0) <= tm.ReduceTime(1e8, 0) {
		t.Error("reduce time not increasing in input")
	}
	if tm.CopyTime(1e9, 4) <= tm.CopyTime(1e8, 4) {
		t.Error("copy time not increasing in bytes")
	}
	// q·n term grows with reducer count for fixed bytes.
	if tm.CopyTime(1e6, 64) <= tm.CopyTime(1e6, 2) {
		t.Error("connection overhead not growing with reducers")
	}
	// Spill factor inflates beyond the sort buffer.
	if tm.SpillFactor(tm.SortBuf*10) <= tm.SpillFactor(tm.SortBuf/2) {
		t.Error("spill factor not inflating")
	}
	if tm.SpillFactor(tm.SortBuf/2) != 1 {
		t.Error("spill factor below buffer should be 1")
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func(*Config){
		func(c *Config) { c.MapSlots = 0 },
		func(c *Config) { c.ReduceSlots = 0 },
		func(c *Config) { c.DiskReadMBps = 0 },
		func(c *Config) { c.DiskWriteMBps = -1 },
		func(c *Config) { c.NetworkMBps = 0 },
		func(c *Config) { c.TuplesPerMapTask = 0 },
		func(c *Config) { c.TuplesPerMapTask = -7 },
		func(c *Config) { c.BlockSizeMB = 0 },
		func(c *Config) { c.BlockSizeMB = -64 },
		func(c *Config) { c.IoSortMB = 0 },
		func(c *Config) { c.IoSortFactor = -1 },
		func(c *Config) { c.IoSortFactor = 1 }, // timer would silently coerce to default
		func(c *Config) { c.MaxParallelWorkers = -1 },
		func(c *Config) { c.OutputCapRatio = -0.5 },
	} {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("invalid config accepted: %+v", c)
		}
	}
	// The engine divides by TuplesPerMapTask and the BlockSizeMB-derived
	// block size: a non-positive value must surface as a config error
	// from Run, not a runtime panic.
	for _, mutate := range []func(*Config){
		func(c *Config) { c.TuplesPerMapTask = 0 },
		func(c *Config) { c.BlockSizeMB = -1 },
	} {
		c := DefaultConfig()
		mutate(&c)
		job := countJob(intsRelation("vreject", 1, 2, 3), 2)
		if _, err := Run(context.Background(), c, nil, job); err == nil {
			t.Errorf("Run accepted invalid config: %+v", c)
		}
	}
}

func TestStringKeysViaHash(t *testing.T) {
	sa := relation.MustSchema(relation.Column{Name: "s", Kind: relation.KindString})
	in := relation.New("strs", sa)
	words := []string{"ape", "bee", "cat", "bee", "ape", "ape"}
	for _, w := range words {
		in.MustAppend(relation.Tuple{relation.Str(w)})
	}
	outSchema := relation.MustSchema(
		relation.Column{Name: "s", Kind: relation.KindString},
		relation.Column{Name: "n", Kind: relation.KindInt},
	)
	job := &Job{
		Name:   "strcount",
		Inputs: []Input{{Rel: in, Map: func(t relation.Tuple, emit Emitter) { emit(hashString(t[0].Str()), 0, t) }}},
		Reduce: func(key uint64, values []Tagged, ctx *ReduceContext) {
			// Hash collisions are possible in principle: re-group by value.
			byVal := map[string]int64{}
			for _, v := range values {
				byVal[v.Tuple[0].Str()]++
			}
			for s, n := range byVal {
				ctx.Emit(relation.Tuple{relation.Str(s), relation.Int(n)})
			}
		},
		NumReducers:  2,
		OutputName:   "out",
		OutputSchema: outSchema,
	}
	res, err := Run(context.Background(), smallConfig(), nil, job)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, row := range res.Output.Tuples {
		got[row[0].Str()] = row[1].Int64()
	}
	if got["ape"] != 3 || got["bee"] != 2 || got["cat"] != 1 {
		t.Errorf("counts = %v", got)
	}
}

// Map tasks split by MODELED block size: a small tuple count modeling
// tens of gigabytes must produce block-sized tasks, not one giant task.
func TestMapTasksFollowModeledBlocks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TuplesPerMapTask = 1 << 20 // tuple granularity not binding
	in := intsRelation("big")
	for i := int64(0); i < 1000; i++ {
		in.MustAppend(relation.Tuple{relation.Int(i)})
	}
	in.VolumeMultiplier = 10e9 / float64(in.EncodedSize()) // model 10 GB
	res, err := Run(context.Background(), cfg, nil, countJob(in, 4))
	if err != nil {
		t.Fatal(err)
	}
	// ceil(10 GB / 64 MB) = 157 blocks, re-quantised to whole tuples
	// (1000 tuples / 7 per task = 143): accept the neighbourhood.
	if res.Metrics.MapTasks < 140 || res.Metrics.MapTasks > 160 {
		t.Errorf("map tasks = %d, want ~143-157", res.Metrics.MapTasks)
	}
	// Never more tasks than tuples.
	in2 := intsRelation("tiny", 1, 2, 3)
	in2.VolumeMultiplier = 1e12
	res2, err := Run(context.Background(), cfg, nil, countJob(in2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Metrics.MapTasks > 3 {
		t.Errorf("tiny relation got %d tasks", res2.Metrics.MapTasks)
	}
}

// The output-volume cap bounds modeled output at OutputCapRatio × input
// and adjusts the output relation's multiplier coherently.
func TestOutputCapRatio(t *testing.T) {
	cfg := smallConfig()
	cfg.OutputCapRatio = 2
	in := intsRelation("in")
	for i := int64(0); i < 64; i++ {
		in.MustAppend(relation.Tuple{relation.Int(7)}) // one hot key
	}
	in.VolumeMultiplier = 1e6
	// A job that explodes: emits n^2 output rows for the hot key.
	job := &Job{
		Name:   "explode",
		Inputs: []Input{{Rel: in, Map: func(t relation.Tuple, emit Emitter) { emit(7, 0, t) }}},
		Reduce: func(key uint64, values []Tagged, ctx *ReduceContext) {
			for range values {
				for range values {
					ctx.Emit(relation.Tuple{relation.Int(1)})
				}
			}
		},
		NumReducers:  2,
		OutputName:   "out",
		OutputSchema: relation.MustSchema(relation.Column{Name: "x", Kind: relation.KindInt}),
	}
	res, err := Run(context.Background(), cfg, nil, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Cardinality() != 64*64 {
		t.Fatalf("output rows = %d", res.Output.Cardinality())
	}
	if res.Metrics.OutputBytes > 2*res.Metrics.InputBytes+1 {
		t.Errorf("output bytes %d exceed cap of 2x input %d",
			res.Metrics.OutputBytes, res.Metrics.InputBytes)
	}
	// Disabled cap: output bytes exceed input.
	cfg.OutputCapRatio = 0
	res2, err := Run(context.Background(), cfg, nil, job)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Metrics.OutputBytes <= 2*res2.Metrics.InputBytes {
		t.Errorf("uncapped output %d not above 2x input %d",
			res2.Metrics.OutputBytes, res2.Metrics.InputBytes)
	}
}

// Per-slot copy serialization: when copies are slower than maps, the
// shuffle completes at ~JM + waves·tCP (Eq. 6's J_CP branch), not
// JM + tCP.
func TestCopySerializationPerSlot(t *testing.T) {
	// 4 tasks, 2 slots, map 1s, copy 10s: slot A maps tasks 0 (0-1)
	// and 2 (1-2); its copies serialize 1-11 and 11-21. Without
	// serialization task 2's copy would end at 12.
	sim := simulate(2, 1, []float64{1, 1, 1, 1}, []float64{10, 10, 10, 10},
		make([]int, 4), []float64{1}, []int{0})
	if sim.MapDone != 2 {
		t.Errorf("MapDone = %v", sim.MapDone)
	}
	if sim.ShuffleDone != 21 {
		t.Errorf("ShuffleDone = %v, want 21 (serialized copies)", sim.ShuffleDone)
	}
}
