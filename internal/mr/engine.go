package mr

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/relation"
)

// SimTime is the simulated-clock breakdown of one job run, mirroring
// the J_M / J_CP / J_R decomposition of §4.1.
type SimTime struct {
	MapDone     float64 // last map task finishes (J_M)
	ShuffleDone float64 // last copy arrives
	Total       float64 // last reduce task finishes (the job makespan T)
}

// WallTime is the MEASURED wall-clock breakdown of one run on the
// real machine — laptop seconds, not the modeled cluster seconds of
// SimTime. The two are deliberately separate: SimTime prices the
// paper's 13-node cluster from byte volumes, WallTime reports where
// this process actually spent its time, so the cost model can be
// compared against reality phase by phase. Wall times naturally vary
// between runs and worker counts; determinism assertions must ignore
// them (every byte-level metric remains exactly reproducible).
type WallTime struct {
	Map      time.Duration // map phase: all tasks, end to end
	Reduce   time.Duration // shuffle gather + k-way merge + reduce, end to end
	Assemble time.Duration // output assembly from the per-reducer buffers
	Total    time.Duration // whole Run call
}

// Metrics aggregates the byte-accounting and work counters of one run.
// Byte quantities are "modeled": real encoded sizes multiplied by the
// input relations' VolumeMultiplier, so laptop-sized tuple counts
// reproduce the paper's hundreds-of-GB sweeps.
type Metrics struct {
	MapTasks    int
	ReduceTasks int

	InputBytes   int64 // S_I
	ShuffleBytes int64 // S_CP: total map output copied over the network
	OutputBytes  int64

	PairsEmitted        int64
	CombinationsChecked int64

	ReducerInputBytes []int64
	// ReducerOutputBytes mirrors ReducerInputBytes on the output side:
	// modeled bytes each reduce task emitted. Together with
	// BalanceRatio these are the per-reducer observations the runtime
	// feedback loop (core re-planning) consumes after a job completes.
	ReducerOutputBytes []int64
	MaxReducerInput    int64
	// BalanceRatio is MaxReducerInput over the mean reducer input
	// (ShuffleBytes / ReduceTasks): 1.0 is perfect balance, k means
	// the straggler reducer carries k× its fair share. 0 when nothing
	// was shuffled.
	BalanceRatio float64

	// MapFailures / ReduceFailures count failed task attempts charged
	// to the simulated clock: the legacy per-job injected counts
	// (Job.FailMapTasks) plus the kills a Config.Faults plan schedules
	// within the attempt budget. Both are a pure function of the job
	// and plan — deterministic — and each failure extends the makespan
	// by a re-attempt plus capped backoff.
	MapFailures    int
	ReduceFailures int

	// SpillBytes is the real (unscaled) bytes of sorted runs written
	// to the spill store; 0 on a fully in-memory run. SpillRuns counts
	// the spill files written. Both are deterministic: flush boundaries
	// depend only on the job specification and SpillBudgetBytes.
	SpillBytes int64
	SpillRuns  int

	// PeakLiveBytes is the ACCOUNTED peak of resident shuffle-pair
	// bytes — a deterministic model of the engine's live memory, not a
	// heap measurement: the sum over map tasks of the pair bytes still
	// buffered when the map phase ends (all map output in-memory, zero
	// under a spill budget), plus the larger of the biggest transient
	// map-task buffer above that floor and the biggest per-reducer
	// merge residency (its in-memory source buckets plus its largest
	// single key run). Pair bytes are Tuple.EncodedSize + 8, the same
	// raw unit the modeled byte metrics scale. The quantity is exactly
	// reproducible across worker counts, so determinism tests may
	// compare it; the acceptance story — bounded budgets cut peak live
	// bytes — is asserted against it.
	PeakLiveBytes int64

	// MapAttempts / ReduceAttempts count every task attempt actually
	// launched — first attempts, retries and speculative backups.
	// SpeculativeLaunched / SpeculativeWins count backup attempts and
	// the backups that won their race. All four depend on real-time
	// scheduling (whether a backup launches at all is a wall-clock
	// race), so — like Wall — they are NOT deterministic and
	// determinism comparisons must strip them.
	MapAttempts         int
	ReduceAttempts      int
	SpeculativeLaunched int
	SpeculativeWins     int

	// ChecksumFailures counts spill-run frames that failed CRC
	// verification; FailoverReads counts the replica re-reads that
	// recovered them. An injected corruption is consumed exactly once
	// no matter which reader hits it first, so both are deterministic
	// for a fixed fault plan.
	ChecksumFailures int64
	FailoverReads    int64

	Sim SimTime

	// Wall is the measured wall-clock breakdown of this run — the
	// real-time counterpart of the modeled Sim. Populated on every
	// run (tracing need not be enabled).
	Wall WallTime
}

// Result is a completed job: the output relation plus metrics.
type Result struct {
	Output  *relation.Relation
	Metrics Metrics
}

type pair struct {
	key   uint64
	tag   uint8
	tuple relation.Tuple
}

type mapTask struct {
	inputIdx   int
	tuples     []relation.Tuple // in-memory split (nil for streamed tasks)
	stream     ChunkSource      // chunk-streamed split (nil for in-memory)
	chunkLo    int              // [chunkLo, chunkHi) range into stream
	chunkHi    int
	multiplier float64
	inputBytes int64 // modeled
}

// Run executes the job and returns its output and metrics. Execution
// is deterministic for a fixed job specification regardless of worker
// count or goroutine interleaving: map tasks partition their output
// into per-reducer buckets as they emit and sort each bucket by key at
// spill time (Hadoop's map-side sort), each reducer k-way merges its
// pre-sorted buckets in task order, and reduce keys are processed in
// sorted order (values within a key keep task emission order). A
// Job.Partitioner (e.g. the skew-resilient router of internal/skew)
// participates in this guarantee because routing is a pure function of
// pair content.
//
// Every task runs as retryable attempts (Config.MaxTaskAttempts) with
// speculative backups for stragglers; see the package documentation
// for the attempt-idempotency contract. The determinism guarantee
// extends to any Config.Faults plan whose faults are all retryable.
//
// Cancelling ctx aborts the run between tasks and mid-merge; the first
// error raised by any worker (or the context's error) is returned and
// stops the remaining workers.
func Run(ctx context.Context, cfg Config, timer Timer, job *Job) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := job.Validate(); err != nil {
		return nil, err
	}
	if timer == nil {
		timer = NewStdTimer(cfg)
	}
	o := obs.FromContext(ctx)
	wallStart := time.Now()
	jobShard := o.Shard("mr:" + job.Name)
	jobSpan := jobShard.Start("job", obs.A("job", job.Name), obs.A("reducers", job.NumReducers))

	// ---- Plan map tasks ------------------------------------------------
	// Each map task covers one DFS block of MODELED bytes (the paper's
	// 64 MB splits), capped by tuple granularity: a relation modeling
	// 10 GB from 2,000 physical tuples yields ~156 tasks of ~13 tuples
	// each, so wave counts and per-task spill volumes match the modeled
	// cluster. TuplesPerMapTask additionally bounds how many physical
	// tuples one task may hold (the binding constraint for unscaled
	// relations).
	blockBytes := int64(cfg.BlockSizeMB) * 1e6
	var tasks []mapTask
	var inputBytes int64
	for idx, in := range job.Inputs {
		mult := in.Rel.VolumeMultiplier
		if mult <= 0 {
			mult = 1
		}
		var card int
		var rawTotal int64
		if in.Stream != nil {
			for ci := 0; ci < in.Stream.NumChunks(); ci++ {
				card += in.Stream.ChunkRows(ci)
				rawTotal += in.Stream.ChunkBytes(ci)
			}
		} else {
			card = in.Rel.Cardinality()
			rawTotal = in.Rel.EncodedSize()
		}
		if card == 0 {
			continue
		}
		modeled := int64(float64(rawTotal) * mult)
		nTasks := int((modeled + blockBytes - 1) / blockBytes)
		if byTuples := (card + cfg.TuplesPerMapTask - 1) / cfg.TuplesPerMapTask; byTuples > nTasks {
			nTasks = byTuples
		}
		if nTasks < 1 {
			nTasks = 1
		}
		if nTasks > card {
			nTasks = card
		}
		per := (card + nTasks - 1) / nTasks
		if in.Stream != nil {
			// Tasks cover contiguous chunk ranges of ~per rows each; a
			// chunk is never split across tasks, so a task decodes its
			// chunks one at a time and holds at most one resident.
			nChunks := in.Stream.NumChunks()
			lo := 0
			for lo < nChunks {
				hi, rows := lo, 0
				var raw int64
				for hi < nChunks && (rows == 0 || rows+in.Stream.ChunkRows(hi) <= per) {
					rows += in.Stream.ChunkRows(hi)
					raw += in.Stream.ChunkBytes(hi)
					hi++
				}
				mb := int64(float64(raw) * mult)
				tasks = append(tasks, mapTask{inputIdx: idx, stream: in.Stream,
					chunkLo: lo, chunkHi: hi, multiplier: mult, inputBytes: mb})
				inputBytes += mb
				lo = hi
			}
			continue
		}
		blocks := in.Rel.Blocks(per)
		for _, blk := range blocks {
			var raw int64
			for _, t := range blk {
				raw += int64(t.EncodedSize())
			}
			mb := int64(float64(raw) * mult)
			tasks = append(tasks, mapTask{inputIdx: idx, tuples: blk, multiplier: mult, inputBytes: mb})
			inputBytes += mb
		}
	}
	if len(tasks) == 0 {
		// All inputs empty: an empty but well-formed result.
		out := relation.New(job.OutputName, job.OutputSchema)
		jobSpan.End(obs.A("empty", true))
		return &Result{Output: out, Metrics: Metrics{
			ReduceTasks: job.NumReducers,
			Wall:        WallTime{Total: time.Since(wallStart)},
		}}, nil
	}

	// ---- Map phase (real execution) ------------------------------------
	// Each map task partitions its output locally into per-reducer
	// buckets as it emits — the local "spill partitioning" a Hadoop
	// mapper performs — so the shuffle never funnels all pairs through
	// one goroutine.
	workers := cfg.MaxParallelWorkers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	partition := job.Partition
	if partition == nil {
		partition = func(key uint64, n int) int { return int(key % uint64(n)) }
	}
	nRed := job.NumReducers

	// Out-of-core shuffle: with a spill budget, each map task spills
	// its sorted buckets to the spill store whenever the buffered pair
	// bytes exceed the budget (and once more at task end), so no pairs
	// survive the map phase in memory; reducers then stream-merge the
	// runs from the store. Without a budget the buckets stay resident,
	// exactly as before. The store is released when the run finishes.
	spillStore := cfg.Spill
	var ownedStore *TempSpillStore
	if cfg.SpillBudgetBytes > 0 && spillStore == nil {
		ts, err := NewTempSpillStore("")
		if err != nil {
			return nil, err
		}
		ownedStore = ts
		spillStore = ts
	}
	taskBuckets := make([][][]pair, len(tasks))    // [task][reducer] bucket (in-memory path)
	taskSpills := make([]*taskSpiller, len(tasks)) // spilled runs (budgeted path)
	taskOutBytes := make([]int64, len(tasks))      // modeled map output per task
	taskRealFinal := make([]int64, len(tasks))     // accounted pair bytes resident after the task
	taskRealPeak := make([]int64, len(tasks))      // accounted high-water mark while mapping
	defer func() {
		for _, ts := range taskSpills {
			if ts != nil {
				ts.release()
			}
		}
		if ownedStore != nil {
			ownedStore.Close()
		}
	}()
	// Tracing shards are per worker goroutine: each worker owns its
	// shard exclusively (forEach hands every index to exactly one
	// worker), so span recording takes no lock and cannot race.
	mapShards := workerShards(o, job.Name+"/map", workers)
	replicated := o.Counter("mr/replicated_pairs")
	// Fault-tolerance runtime: the resolved fault injector, the attempt
	// budget, and the straggler baseline. In inert mode (one attempt,
	// nothing injected) the engine keeps its destructive single-reader
	// fast paths; otherwise sources read non-destructively so a retried
	// or speculative attempt can re-read its inputs.
	ft := newFaultRuntime(cfg, job, len(tasks), nRed, o)
	destructive := ft.inert()
	mapStart := time.Now()
	err := forEach(ctx, workers, len(tasks), func(w, ti int) error {
		task := &tasks[ti]
		// Injected faults fire at the halfway point of the task's
		// input, so a killed attempt leaves real partial state
		// (buffered pairs, partial spill runs) for discard to reclaim.
		faultAt := -1
		if ft.inj != nil {
			total := len(task.tuples)
			if task.stream != nil {
				total = 0
				for ci := task.chunkLo; ci < task.chunkHi; ci++ {
					total += task.stream.ChunkRows(ci)
				}
			}
			faultAt = total / 2
		}
		return ft.runTask(ctx, phaseMap, ti, mapShards.get(o, w), func(actx context.Context, attempt int, sh *obs.Shard) (attemptOutcome, error) {
			sp := sh.Start("map", obs.A("task", ti), obs.A("attempt", attempt), obs.A("tuples", len(task.tuples)))
			mapFn := job.Inputs[task.inputIdx].Map
			// Attempt-scoped output: this attempt's own buckets or its
			// own spill namespace. Nothing is shared until commit.
			var spiller *taskSpiller
			var buckets [][]pair
			if spillStore != nil {
				spiller = newTaskSpiller(spillStore, nRed, cfg.SpillBudgetBytes)
			} else {
				buckets = make([][]pair, nRed)
			}
			fail := func(err error) (attemptOutcome, error) {
				if spiller != nil {
					spiller.release() // discard partial runs, never merge them
				}
				sp.End(obs.A("error", err.Error()))
				return attemptOutcome{}, err
			}
			var outBytes, realBytes int64
			var replPairs int64
			var emitErr error
			var routeBuf []int
			route := func(key uint64, tag uint8, value relation.Tuple) []int {
				if job.Partitioner != nil {
					return job.Partitioner.Route(routeBuf[:0], key, tag, value, nRed)
				}
				routeBuf = append(routeBuf[:0], partition(key, nRed))
				return routeBuf
			}
			emit := func(key uint64, tag uint8, value relation.Tuple) {
				routeBuf = route(key, tag, value)
				if len(routeBuf) > 1 {
					replPairs += int64(len(routeBuf) - 1)
				}
				for _, r := range routeBuf {
					if r < 0 || r >= nRed {
						if emitErr == nil {
							emitErr = fmt.Errorf("mr: job %s: partition returned %d for %d reducers", job.Name, r, nRed)
						}
						return
					}
					p := pair{key: key, tag: tag, tuple: value}
					if spiller != nil {
						if err := spiller.add(r, p); err != nil && emitErr == nil {
							emitErr = err
							return
						}
					} else {
						buckets[r] = append(buckets[r], p)
						realBytes += pairRealBytes(p)
					}
					// 8 bytes of key framing per shuffled pair; a replicated
					// pair is copied (and charged) once per destination.
					outBytes += int64(float64(value.EncodedSize()+8) * task.multiplier)
				}
			}
			processed := 0
			if task.stream != nil {
				// Chunk-streamed input: decode one chunk at a time,
				// releasing each before opening the next, so the task's
				// input residency is a single chunk.
				for ci := task.chunkLo; ci < task.chunkHi && emitErr == nil; ci++ {
					c, err := task.stream.OpenChunk(ci)
					if err != nil {
						return fail(fmt.Errorf("mr: job %s: open chunk %d: %w", job.Name, ci, err))
					}
					for ri := 0; ri < c.Rows(); ri++ {
						if processed == faultAt {
							if err := ft.maybeFault(actx, phaseMap, ti, attempt); err != nil {
								return fail(err)
							}
						}
						processed++
						mapFn(c.Row(ri), emit)
						if emitErr != nil {
							break
						}
					}
				}
			} else {
				for _, t := range task.tuples {
					if processed == faultAt {
						if err := ft.maybeFault(actx, phaseMap, ti, attempt); err != nil {
							return fail(err)
						}
					}
					processed++
					mapFn(t, emit)
					if emitErr != nil {
						break
					}
				}
			}
			if processed == faultAt { // empty split: fire at the end
				if err := ft.maybeFault(actx, phaseMap, ti, attempt); err != nil {
					return fail(err)
				}
			}
			if emitErr != nil {
				return fail(emitErr)
			}
			if spiller != nil {
				// Final flush: the whole map output is on the store; the
				// task retains no pairs.
				sortSp := sh.Start("spill", obs.A("task", ti))
				if err := spiller.finish(); err != nil {
					sortSp.End(obs.A("error", err.Error()))
					return fail(err)
				}
				sortSp.End(obs.A("runs", len(spiller.flushes)), obs.A("spilledBytes", spiller.spilled))
			} else {
				// Map-side sort: order each spill bucket by key before it is
				// handed to the shuffle, so reducers merge pre-sorted runs
				// instead of re-sorting their whole input. The sort is stable
				// (emission order within a key is preserved) and skipped when
				// the bucket is already ordered — the common case for jobs
				// whose keys are reducer ordinals (identity partition).
				sortSp := sh.Start("spill-sort", obs.A("task", ti))
				for r := range buckets {
					sortBucket(buckets[r])
				}
				sortSp.End()
			}
			sp.End(obs.A("outBytes", outBytes))
			return attemptOutcome{
				commit: func() {
					if spiller != nil {
						taskSpills[ti] = spiller
						taskRealPeak[ti] = spiller.peak
					} else {
						taskBuckets[ti] = buckets
						taskRealFinal[ti] = realBytes
						taskRealPeak[ti] = realBytes
					}
					taskOutBytes[ti] = outBytes
					replicated.Add(replPairs)
				},
				discard: func() {
					if spiller != nil {
						spiller.release()
					}
				},
			}, nil
		})
	})
	if err != nil {
		return nil, err
	}
	mapWall := time.Since(mapStart)

	// ---- Shuffle + reduce (sort-free parallel streaming merge) ---------
	// Each reducer k-way merges its pre-sorted runs in (task, flush)
	// order (the determinism anchor): the merged stream is key-ordered
	// with task emission order within a key — the exact ordering the
	// old global stable sort produced. Runs come from in-memory buckets
	// or spilled segments interchangeably; key-runs are accumulated
	// into a per-reducer buffer reused across keys and handed to Reduce
	// as capacity-capped views, so a reducer's residency is its
	// in-memory source buckets (none under a spill budget) plus one key
	// run — never a materialized copy of its whole input. In-memory
	// buckets release their backing arrays the moment their cursor
	// drains, not when the whole merge completes.
	reduceStart := time.Now()
	reducerBytes := make([]int64, nRed)
	reducerPairs := make([]int64, nRed)
	reducerResident := make([]int64, nRed) // accounted resident pair bytes
	outs := make([][]relation.Tuple, nRed)
	combs := make([]int64, nRed)
	reduceShards := workerShards(o, job.Name+"/reduce", workers)
	keyRunHist := o.Histogram("mr/key_run_len")
	err = forEach(ctx, workers, nRed, func(w, r int) error {
		err := ft.runTask(ctx, phaseReduce, r, reduceShards.get(o, w), func(actx context.Context, attempt int, sh *obs.Shard) (attemptOutcome, error) {
			gatherSp := sh.Start("shuffle-copy", obs.A("reducer", r), obs.A("attempt", attempt))
			var n int
			var memReal int64
			srcs := make([]*pairSource, 0, len(tasks))
			for ti := range tasks {
				mult := tasks[ti].multiplier
				if ts := taskSpills[ti]; ts != nil {
					for _, fl := range ts.flushes {
						if seg := fl.segs[r]; seg.count > 0 {
							srcs = append(srcs, diskSource(fl.file, seg, mult, ft, ti))
							n += seg.count
						}
					}
				}
				if taskBuckets[ti] == nil {
					continue
				}
				if b := taskBuckets[ti][r]; len(b) > 0 {
					for _, p := range b {
						memReal += pairRealBytes(p)
					}
					src := memSource(b, mult)
					// A retried or speculative attempt re-reads the same
					// buckets, so destructive drain is only safe in inert
					// mode; otherwise the bucket is released after the
					// task commits (below, all attempts joined).
					src.destructive = destructive
					srcs = append(srcs, src)
					n += len(b)
					if destructive {
						taskBuckets[ti][r] = nil // release as we go
					}
				}
			}
			gatherSp.End(obs.A("pairs", n), obs.A("runs", len(srcs)))
			// Fault point: after the gather (partial state exists to
			// discard), before the empty-reducer return — kills target
			// empty reducers too.
			if err := ft.maybeFault(actx, phaseReduce, r, attempt); err != nil {
				return attemptOutcome{}, err
			}
			if n == 0 {
				return attemptOutcome{}, nil
			}
			reduceSp := sh.Start("reduce", obs.A("reducer", r), obs.A("pairs", n), obs.A("runs", len(srcs)))
			rctx := &ReduceContext{}
			runs := 0
			var bytes int64
			var curKey uint64
			var run []Tagged
			var runReal, maxRunReal int64
			flushRun := func() {
				if len(run) == 0 {
					return
				}
				keyRunHist.Observe(int64(len(run)))
				runs++
				// Capacity-capped view: an accidental append inside Reduce
				// allocates instead of clobbering the reused buffer.
				job.Reduce(curKey, run[:len(run):len(run)], rctx)
				run = run[:0]
				runReal = 0
			}
			var merged int
			mergeErr := mergeSources(srcs, func(p pair, s *pairSource) error {
				// Cancellation check mid-merge: a cancelled run must not
				// finish a large merge before noticing.
				if merged++; merged&1023 == 0 {
					if err := actx.Err(); err != nil {
						return err
					}
				}
				// Per-pair modeled bytes convert to int64 individually, so
				// the integer sum is independent of merge order and matches
				// the in-memory gather accounting bit for bit.
				bytes += int64(float64(p.tuple.EncodedSize()+8) * s.mult)
				if len(run) > 0 && p.key != curKey {
					flushRun()
				}
				curKey = p.key
				run = append(run, Tagged{Tag: p.tag, Tuple: p.tuple})
				runReal += pairRealBytes(p)
				if runReal > maxRunReal {
					maxRunReal = runReal
				}
				return nil
			})
			if mergeErr != nil {
				reduceSp.End(obs.A("error", mergeErr.Error()))
				return attemptOutcome{}, mergeErr
			}
			flushRun()
			reduceSp.End(obs.A("keys", runs),
				obs.A("combinations", rctx.combinations), obs.A("outTuples", len(rctx.out)))
			return attemptOutcome{
				commit: func() {
					reducerPairs[r] = int64(n)
					reducerBytes[r] = bytes
					reducerResident[r] = memReal + maxRunReal
					outs[r] = rctx.out
					combs[r] = rctx.combinations
				},
			}, nil
		})
		if err != nil {
			return err
		}
		// Non-destructive mode: the reducer's share of every bucket is
		// only released once runTask has joined all attempts — no late
		// speculative loser can still be reading it.
		if !destructive {
			for ti := range taskBuckets {
				if tb := taskBuckets[ti]; tb != nil {
					tb[r] = nil
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	reduceWall := time.Since(reduceStart)
	var pairsEmitted, shuffleBytes int64
	for r := 0; r < nRed; r++ {
		pairsEmitted += reducerPairs[r]
		shuffleBytes += reducerBytes[r]
	}

	// Spill metrics and the accounted live-byte peak: the pair bytes
	// resident at the end of the map phase (zero under a budget), plus
	// the larger of the biggest transient task buffer above that floor
	// and the biggest reducer merge residency. See Metrics.
	var spillBytes int64
	var spillRuns int
	var residentFloor, peakExtra int64
	for ti := range tasks {
		residentFloor += taskRealFinal[ti]
		if extra := taskRealPeak[ti] - taskRealFinal[ti]; extra > peakExtra {
			peakExtra = extra
		}
		if ts := taskSpills[ti]; ts != nil {
			spillBytes += ts.spilled
			spillRuns += len(ts.flushes)
		}
	}
	for r := 0; r < nRed; r++ {
		if reducerResident[r] > peakExtra {
			peakExtra = reducerResident[r]
		}
	}
	peakLiveBytes := residentFloor + peakExtra

	outMult := job.OutputMultiplier
	if outMult <= 0 {
		for _, in := range job.Inputs {
			if in.Rel.VolumeMultiplier > outMult {
				outMult = in.Rel.VolumeMultiplier
			}
		}
		if outMult <= 0 {
			outMult = 1
		}
	}
	// Pre-compute raw output size to apply the output-volume cap: the
	// effective output multiplier shrinks so the modeled output stays
	// within OutputCapRatio × modeled input (see Config).
	var rawOut int64
	for r := 0; r < nRed; r++ {
		for _, t := range outs[r] {
			rawOut += int64(t.EncodedSize())
		}
	}
	if cfg.OutputCapRatio > 0 && rawOut > 0 {
		maxOut := cfg.OutputCapRatio * float64(inputBytes)
		if float64(rawOut)*outMult > maxOut {
			outMult = maxOut / float64(rawOut)
			if outMult < 1 {
				outMult = 1
			}
		}
	}
	asmStart := time.Now()
	asmSpan := jobShard.Start("assemble", obs.A("reducers", nRed))
	output := relation.New(job.OutputName, job.OutputSchema)
	output.VolumeMultiplier = outMult
	output.Dicts = append([]*relation.Dict(nil), job.OutputDicts...)
	// Pre-size the output from the known per-reducer counts instead of
	// growing append from nil, and release each reducer's buffer as
	// soon as it is copied.
	var totalOut int
	for r := 0; r < nRed; r++ {
		totalOut += len(outs[r])
	}
	if totalOut > 0 {
		output.Tuples = make([]relation.Tuple, 0, totalOut)
	}
	var combinations int64
	var outputBytes int64
	reducerOutBytes := make([]int64, nRed)
	for r := 0; r < nRed; r++ {
		for _, t := range outs[r] {
			if len(t) != job.OutputSchema.Len() {
				return nil, fmt.Errorf("mr: job %s: reducer %d emitted arity %d, schema wants %d",
					job.Name, r, len(t), job.OutputSchema.Len())
			}
			output.Tuples = append(output.Tuples, t)
			b := int64(float64(t.EncodedSize()) * outMult)
			outputBytes += b
			reducerOutBytes[r] += b
		}
		outs[r] = nil
		combinations += combs[r]
	}
	asmSpan.End(obs.A("tuples", totalOut))
	asmWall := time.Since(asmStart)

	// ---- Simulated clock -------------------------------------------------
	mapDur := make([]float64, len(tasks))
	copyDur := make([]float64, len(tasks))
	mapFail := make([]int, len(tasks))
	totalMapFailures := 0
	for ti := range tasks {
		mapDur[ti] = timer.MapTaskTime(tasks[ti].inputBytes, taskOutBytes[ti])
		copyDur[ti] = timer.CopyTime(taskOutBytes[ti], nRed)
		if f, ok := job.FailMapTasks[ti]; ok && f > 0 {
			mapFail[ti] = f
		}
		// Injected kills charge the clock from the PLAN, not from
		// observed attempts: speculation makes the observed count
		// nondeterministic (a backup may land before a targeted attempt
		// ever runs), while the planned count is a pure function of the
		// fault plan. Retry backoff is folded into the per-attempt
		// duration so slot time = dur*(fails+1) + total backoff.
		mapFail[ti] += ft.inj.plannedKills(phaseMap, ti, ft.maxAttempts)
		if f := mapFail[ti]; f > 0 {
			totalMapFailures += f
			mapDur[ti] += backoffSeconds(f) / float64(f+1)
		}
	}
	reduceDur := make([]float64, nRed)
	reduceFail := make([]int, nRed)
	totalReduceFailures := 0
	for r := 0; r < nRed; r++ {
		reduceDur[r] = timer.ReduceTime(reducerBytes[r], reducerOutBytes[r])
		if f, ok := job.FailReduceTasks[r]; ok && f > 0 {
			reduceFail[r] = f
		}
		reduceFail[r] += ft.inj.plannedKills(phaseReduce, r, ft.maxAttempts)
		if f := reduceFail[r]; f > 0 {
			totalReduceFailures += f
			reduceDur[r] += backoffSeconds(f) / float64(f+1)
		}
	}
	sim := simulate(cfg.MapSlots, cfg.ReduceSlots, mapDur, copyDur, mapFail, reduceDur, reduceFail)

	var maxRed int64
	for _, b := range reducerBytes {
		if b > maxRed {
			maxRed = b
		}
	}
	balance := 0.0
	if shuffleBytes > 0 && nRed > 0 {
		balance = float64(maxRed) * float64(nRed) / float64(shuffleBytes)
	}

	// Registry rollups: the per-reducer byte distributions feed the
	// -metrics export, batched once per job (no per-tuple cost).
	if inHist := o.Histogram("mr/reducer_input_bytes"); inHist != nil {
		outHist := o.Histogram("mr/reducer_output_bytes")
		for r := 0; r < nRed; r++ {
			inHist.Observe(reducerBytes[r])
			outHist.Observe(reducerOutBytes[r])
		}
	}
	o.Counter("mr/pairs_emitted").Add(pairsEmitted)
	o.Counter("mr/shuffle_bytes").Add(shuffleBytes)
	o.Counter("mr/combinations_checked").Add(combinations)
	o.Counter("mr/output_tuples").Add(int64(totalOut))
	o.Counter("mr/spill_bytes").Add(spillBytes)
	o.Counter("mr/spill_runs").Add(int64(spillRuns))
	if h := o.Histogram("mr/peak_live_bytes"); h != nil {
		h.Observe(peakLiveBytes)
	}
	if n := totalMapFailures + totalReduceFailures; n > 0 {
		o.Counter("mr/task_retries").Add(int64(n))
	}
	jobSpan.End(obs.A("shuffleBytes", shuffleBytes),
		obs.A("outTuples", totalOut), obs.A("balance", balance))

	res := &Result{
		Output: output,
		Metrics: Metrics{
			MapTasks:            len(tasks),
			ReduceTasks:         nRed,
			InputBytes:          inputBytes,
			ShuffleBytes:        shuffleBytes,
			OutputBytes:         outputBytes,
			PairsEmitted:        pairsEmitted,
			CombinationsChecked: combinations,
			ReducerInputBytes:   reducerBytes,
			ReducerOutputBytes:  reducerOutBytes,
			MaxReducerInput:     maxRed,
			BalanceRatio:        balance,
			MapFailures:         totalMapFailures,
			ReduceFailures:      totalReduceFailures,
			SpillBytes:          spillBytes,
			SpillRuns:           spillRuns,
			PeakLiveBytes:       peakLiveBytes,
			Sim:                 sim,
			Wall: WallTime{
				Map:      mapWall,
				Reduce:   reduceWall,
				Assemble: asmWall,
				Total:    time.Since(wallStart),
			},
		},
	}
	ft.metricsInto(&res.Metrics)
	return res, nil
}

// sortBucket stable-sorts one spill bucket by key, preserving emission
// order within a key. Buckets that are already ordered — every job
// whose keys are reducer ordinals routed by the identity partition —
// are detected in one linear pass and left untouched.
func sortBucket(b []pair) {
	sorted := true
	for i := 1; i < len(b); i++ {
		if b[i].key < b[i-1].key {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	sort.SliceStable(b, func(i, j int) bool { return b[i].key < b[j].key })
}

// simulate advances the discrete-event clock: map tasks run in waves
// over mapSlots (a task with f injected failures occupies its slot for
// f+1 attempts), each finished map task's output copies to the
// reducers (overlapping later map waves, as in Fig. 3, but serialised
// per slot — one node uplink serves one task's n reducer connections
// at a time, which realises Eq. 6's J_CP branch when t_CP > t_M), and
// reduce tasks start once the last copy lands, running in waves over
// reduceSlots.
func simulate(mapSlots, reduceSlots int, mapDur, copyDur []float64, mapFail []int, reduceDur []float64, reduceFail []int) SimTime {
	slotFree := make([]float64, mapSlots)
	copyFree := make([]float64, mapSlots)
	var mapDone, shuffleDone float64
	for ti := range mapDur {
		s := argminFloat(slotFree)
		start := slotFree[s]
		end := start + mapDur[ti]*float64(mapFail[ti]+1)
		slotFree[s] = end
		if end > mapDone {
			mapDone = end
		}
		cpStart := end
		if copyFree[s] > cpStart {
			cpStart = copyFree[s]
		}
		cp := cpStart + copyDur[ti]
		copyFree[s] = cp
		if cp > shuffleDone {
			shuffleDone = cp
		}
	}
	rSlot := make([]float64, reduceSlots)
	for i := range rSlot {
		rSlot[i] = shuffleDone
	}
	total := shuffleDone
	// Longest-processing-time order mirrors Hadoop's scheduling of the
	// largest shuffled partitions first and tightens the makespan.
	order := make([]int, len(reduceDur))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return reduceDur[order[a]] > reduceDur[order[b]] })
	for _, r := range order {
		s := argminFloat(rSlot)
		end := rSlot[s] + reduceDur[r]*float64(reduceFail[r]+1)
		rSlot[s] = end
		if end > total {
			total = end
		}
	}
	return SimTime{MapDone: mapDone, ShuffleDone: shuffleDone, Total: total}
}

// forEach runs fn(w, i) for i in [0, n) on up to `workers` goroutines,
// stopping early on context cancellation or the first error, which is
// propagated to the caller (worker errors take precedence over the
// context's own error). w is the ordinal of the goroutine running the
// call — every i is handed to exactly one worker, so per-worker state
// indexed by w (e.g. tracing shards) needs no synchronisation.
func forEach(ctx context.Context, workers, n int, fn func(w, i int) error) error {
	if n == 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var firstErr error
	var once sync.Once
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				if err := fn(w, i); err != nil {
					once.Do(func() { firstErr = err })
					cancel()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return context.Cause(ctx)
}

// shardSet lazily hands out one tracing shard per forEach worker
// ordinal. Slot w is only ever touched by worker w (forEach gives
// every index to exactly one goroutine), so no lock is needed; a nil
// set (tracing disabled) hands out nil shards.
type shardSet struct {
	name   string
	shards []*obs.Shard
}

// workerShards sizes a shard set for `workers` forEach goroutines.
// Returns nil (inert) when tracing is off.
func workerShards(o *obs.Obs, name string, workers int) *shardSet {
	if !o.Tracing() {
		return nil
	}
	return &shardSet{name: name, shards: make([]*obs.Shard, workers)}
}

// get returns worker w's shard, creating it on first use. Nil-safe.
func (ss *shardSet) get(o *obs.Obs, w int) *obs.Shard {
	if ss == nil {
		return nil
	}
	if ss.shards[w] == nil {
		ss.shards[w] = o.Shard(fmt.Sprintf("%s w%d", ss.name, w))
	}
	return ss.shards[w]
}

func argminFloat(xs []float64) int {
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[best] {
			best = i
		}
	}
	return best
}
