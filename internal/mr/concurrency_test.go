package mr

import (
	"context"
	"errors"
	"testing"

	"repro/internal/relation"
)

// TestRunCancelledContext asserts that a cancelled context aborts the
// run and surfaces the cancellation cause instead of a result.
func TestRunCancelledContext(t *testing.T) {
	in := intsRelation("in")
	for i := 0; i < 64; i++ {
		in.MustAppend(relation.Tuple{relation.Int(int64(i))})
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, smallConfig(), nil, countJob(in, 3))
	if err == nil {
		t.Fatalf("cancelled run returned %+v, want error", res)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestRunNilContext asserts nil is accepted and treated as Background.
func TestRunNilContext(t *testing.T) {
	in := intsRelation("in")
	in.MustAppend(relation.Tuple{relation.Int(1)})
	if _, err := Run(nil, smallConfig(), nil, countJob(in, 2)); err != nil { //nolint:staticcheck
		t.Fatal(err)
	}
}

// TestForEachFirstError asserts the pool stops on the first error and
// returns it.
func TestForEachFirstError(t *testing.T) {
	boom := errors.New("boom")
	err := forEach(context.Background(), 4, 100, func(_, i int) error {
		if i == 10 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if err := forEach(context.Background(), 4, 100, func(int, int) error { return nil }); err != nil {
		t.Fatalf("clean pool errored: %v", err)
	}
}
