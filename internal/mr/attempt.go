package mr

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// TaskError reports a map or reduce task whose attempt budget is
// exhausted: every attempt failed with a retryable error and no more
// may be launched. It wraps the first attempt's error (first-error
// propagation — later attempts' errors are echoes of the same fault).
// Callers classify it with errors.As; the serving layer maps it to
// 503 + Retry-After.
type TaskError struct {
	Job      string
	Phase    string // "map" or "reduce"
	Task     int
	Attempts int
	Err      error
}

func (e *TaskError) Error() string {
	return fmt.Sprintf("mr: job %s: %s task %d failed after %d attempts: %v",
		e.Job, e.Phase, e.Task, e.Attempts, e.Err)
}

func (e *TaskError) Unwrap() error { return e.Err }

// retryableError marks a failure worth re-attempting: injected kills
// and spill-integrity errors. User-code errors (bad partitions, emit
// failures) and context cancellation are deliberately NOT retryable —
// they are deterministic, so a retry would only repeat them.
type retryableError struct{ err error }

func (e retryableError) Error() string { return e.err.Error() }
func (e retryableError) Unwrap() error { return e.err }

func retryable(err error) error { return retryableError{err: err} }

func isRetryable(err error) bool {
	var r retryableError
	return errors.As(err, &r)
}

// Speculation arming: a phase needs this many completed attempts
// before medians mean anything, and the straggler threshold never
// drops below the floor — tasks in this engine complete in
// microseconds, so a sub-second floor would let one GC pause launch a
// spurious backup and perturb the attempt counters determinism tests
// strip. Tests override these to exercise speculation quickly.
var (
	specMinSamples = 5
	specFloor      = time.Second
)

// Retry backoff charged to the simulated clock, in cluster seconds:
// doubling from retryBackoffBase, capped at retryBackoffCap — the
// scheduling gap between a failed attempt and its re-launch. Real
// retries do not sleep (the fault is injected, not transient); the
// backoff exists in virtual time so a faulted run's makespan prices
// recovery the way §4.1 prices everything else.
const (
	retryBackoffBase = 2.0  // seconds before the first re-attempt
	retryBackoffCap  = 30.0 // per-gap ceiling
)

// backoffSeconds is the total virtual backoff for `fails` failed
// attempts of one task.
func backoffSeconds(fails int) float64 {
	total, gap := 0.0, retryBackoffBase
	for i := 0; i < fails; i++ {
		total += gap
		gap *= 2
		if gap > retryBackoffCap {
			gap = retryBackoffCap
		}
	}
	return total
}

// attemptOutcome is what a successful attempt hands back: commit
// publishes the attempt's output into the run's shared state, discard
// releases it (spill runs included) without publishing. Exactly one of
// the two is invoked, exactly once — the "loser discarded atomically"
// half of speculative execution.
type attemptOutcome struct {
	commit  func()
	discard func()
}

// attemptFn runs one attempt of a task. Attempts must be idempotent
// and isolated: every attempt derives its output only from the
// attempt-scoped state it creates (own buckets, own spill files), so
// any attempt's committed output is bit-identical to any other's. sh
// is the attempt's tracing shard (nil for speculative backups — shards
// are single-writer).
type attemptFn func(ctx context.Context, attempt int, sh *obs.Shard) (attemptOutcome, error)

// faultRuntime carries one Run's fault-tolerance state: the resolved
// injector, the attempt budget, per-phase duration samples for the
// straggler median, and the fault counters that roll into Metrics.
type faultRuntime struct {
	job         string
	maxAttempts int
	specFactor  float64
	replicas    int // spill-frame read attempts (DFSReplication)
	inj         *injector
	o           *obs.Obs

	mu   sync.Mutex
	durs [numPhases][]time.Duration // completed attempt durations

	attempts         [numPhases]atomic.Int64
	specLaunched     atomic.Int64
	specWins         atomic.Int64
	checksumFailures atomic.Int64
	failoverReads    atomic.Int64
}

func newFaultRuntime(cfg Config, job *Job, nMap, nRed int, o *obs.Obs) *faultRuntime {
	ma := cfg.MaxTaskAttempts
	if ma == 0 {
		ma = defaultTaskAttempts
	}
	sf := cfg.SpeculativeFactor
	if sf == 0 {
		sf = defaultSpeculativeFactor
	}
	reps := cfg.DFSReplication
	if reps < 1 {
		reps = 1
	}
	return &faultRuntime{
		job:         job.Name,
		maxAttempts: ma,
		specFactor:  sf,
		replicas:    reps,
		inj:         newInjector(cfg.Faults, job.Name, nMap, nRed),
		o:           o,
	}
}

// inert reports that no second attempt of any task can ever run: one
// attempt allowed, nothing injected. Only then may the engine keep its
// destructive single-reader fast paths (in-place bucket release during
// the merge).
func (ft *faultRuntime) inert() bool { return ft.maxAttempts == 1 && ft.inj == nil }

// maybeFault injects this attempt's scheduled delay and kill, in that
// order (a straggler that is also killed stalls first). The delay is
// interruptible by ctx so cancellation stays prompt.
func (ft *faultRuntime) maybeFault(ctx context.Context, ph, task, attempt int) error {
	if ft.inj == nil {
		return nil
	}
	if d := ft.inj.delay(ph, task, attempt); d > 0 {
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	if ft.inj.kill(ph, task, attempt) {
		return retryable(fmt.Errorf("injected %s kill: task %d attempt %d", phaseName(ph), task, attempt))
	}
	return nil
}

// recordDur feeds one completed attempt's duration into the phase's
// straggler baseline.
func (ft *faultRuntime) recordDur(ph int, d time.Duration) {
	ft.mu.Lock()
	// Sorted insert keeps the median read in specThreshold O(1); this
	// runs once per completed attempt, on the scheduling path of every
	// task, so it must not sort.
	s := ft.durs[ph]
	i := sort.Search(len(s), func(i int) bool { return s[i] >= d })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = d
	ft.durs[ph] = s
	ft.mu.Unlock()
}

// specThreshold returns the straggler cutoff for the phase — the
// configured multiple of the median completed-attempt duration, never
// below the floor — or 0 while too few attempts have completed to
// call anything a straggler.
func (ft *faultRuntime) specThreshold(ph int) time.Duration {
	if ft.maxAttempts < 2 {
		return 0
	}
	ft.mu.Lock()
	defer ft.mu.Unlock()
	n := len(ft.durs[ph])
	if n < specMinSamples {
		return 0
	}
	th := time.Duration(float64(ft.durs[ph][n/2]) * ft.specFactor)
	if th < specFloor {
		th = specFloor
	}
	return th
}

// counters rolled into Metrics at the end of a Run.
func (ft *faultRuntime) metricsInto(m *Metrics) {
	m.MapAttempts = int(ft.attempts[phaseMap].Load())
	m.ReduceAttempts = int(ft.attempts[phaseReduce].Load())
	m.SpeculativeLaunched = int(ft.specLaunched.Load())
	m.SpeculativeWins = int(ft.specWins.Load())
	m.ChecksumFailures = ft.checksumFailures.Load()
	m.FailoverReads = ft.failoverReads.Load()
}

// checksumFailure records one detected spill-frame corruption
// (quarantine counter, before failover).
func (ft *faultRuntime) checksumFailure() {
	if ft == nil {
		return
	}
	ft.checksumFailures.Add(1)
	ft.o.Counter("mr/checksum_failures").Add(1)
}

// failoverRead records one successful replica re-read after a
// checksum failure.
func (ft *faultRuntime) failoverRead() {
	if ft == nil {
		return
	}
	ft.failoverReads.Add(1)
	ft.o.Counter("mr/failover_reads").Add(1)
}

// attemptDone is one attempt's report back to the race loop.
type attemptDone struct {
	ord int
	out attemptOutcome
	err error
	dur time.Duration
}

// runTask executes one task as a sequence of attempt rounds until an
// attempt commits or the budget is exhausted. Each round races the
// serial attempt against (at most) one speculative backup launched
// when the attempt outlives the phase's straggler threshold; the first
// success commits, every other outcome is discarded, and — crucially —
// the round joins every goroutine it launched before returning, so no
// attempt ever outlives the task and races the engine's shared state.
func (ft *faultRuntime) runTask(ctx context.Context, ph, task int, sh *obs.Shard, fn attemptFn) error {
	if ft.inert() {
		ft.attempts[ph].Add(1)
		out, err := fn(ctx, 0, sh)
		if err != nil {
			return err
		}
		if out.commit != nil {
			out.commit()
		}
		return nil
	}
	next := 0
	var firstErr error
	for {
		committed, launched, err := ft.race(ctx, ph, task, next, sh, fn)
		next += launched
		if committed {
			return nil
		}
		if firstErr == nil {
			firstErr = err
		}
		if ctx.Err() != nil {
			return err
		}
		if !isRetryable(err) {
			return err
		}
		if next >= ft.maxAttempts {
			return &TaskError{Job: ft.job, Phase: phaseName(ph), Task: task, Attempts: next, Err: firstErr}
		}
	}
}

// race runs one attempt round: launch attempt ordinal `first`, arm the
// speculation timer when the phase has a baseline, launch at most one
// backup on expiry, and wait for every launched attempt. The first
// success commits (a backup winning counts as a speculative win);
// later successes are discarded. With no success, the lowest ordinal's
// error is returned so propagation order is deterministic.
func (ft *faultRuntime) race(ctx context.Context, ph, task, first int, sh *obs.Shard, fn attemptFn) (committed bool, launched int, err error) {
	done := make(chan attemptDone, 2)
	launch := func(ord int, shard *obs.Shard) {
		ft.attempts[ph].Add(1)
		go func() {
			start := time.Now()
			out, err := fn(ctx, ord, shard)
			done <- attemptDone{ord: ord, out: out, err: err, dur: time.Since(start)}
		}()
	}
	launch(first, sh)
	launched = 1
	var specC <-chan time.Time
	if th := ft.specThreshold(ph); th > 0 && first+1 < ft.maxAttempts {
		t := time.NewTimer(th)
		defer t.Stop()
		specC = t.C
	}
	var errOrd int
	var reported int
	for reported < launched {
		select {
		case d := <-done:
			reported++
			if d.err == nil {
				ft.recordDur(ph, d.dur)
				if !committed {
					committed = true
					if d.out.commit != nil {
						d.out.commit()
					}
					if d.ord > first {
						ft.specWins.Add(1)
					}
				} else if d.out.discard != nil {
					d.out.discard()
				}
			} else if err == nil || d.ord < errOrd {
				err, errOrd = d.err, d.ord
			}
		case <-specC:
			specC = nil
			if !committed && launched == 1 && first+1 < ft.maxAttempts {
				ft.specLaunched.Add(1)
				ft.o.Counter("mr/speculative_launched").Add(1)
				launch(first+1, nil)
				launched++
			}
		}
	}
	if committed {
		return true, launched, nil
	}
	return false, launched, err
}
