package mr

import (
	"fmt"

	"repro/internal/relation"
)

// Tagged is a shuffled value: the tuple plus the ordinal of the input
// that produced it, so join reducers can separate sides.
type Tagged struct {
	Tag   uint8
	Tuple relation.Tuple
}

// Emitter receives map output. Key routing is by the job's Partition
// function (default key mod numReducers).
type Emitter func(key uint64, tag uint8, value relation.Tuple)

// MapFunc transforms one input tuple into zero or more (key, tagged
// tuple) pairs.
type MapFunc func(t relation.Tuple, emit Emitter)

// ReduceContext lets reducers report work (candidate combinations
// checked) for the Metrics and emit output tuples.
type ReduceContext struct {
	out          []relation.Tuple
	combinations int64
}

// Emit appends an output tuple.
func (rc *ReduceContext) Emit(t relation.Tuple) { rc.out = append(rc.out, t) }

// AddWork records n candidate combinations examined; it feeds the
// CombinationsChecked metric (the Π|R_i|/k_R term of Eq. 10).
func (rc *ReduceContext) AddWork(n int64) { rc.combinations += n }

// ReduceFunc processes all values grouped under one key.
//
// values is a zero-copy view into the reducer's merged run: it is valid
// only for the duration of the call and must not be mutated or retained
// (copy what outlives the call). Values appear in task order and, within
// a task, map emission order — the engine's determinism contract.
type ReduceFunc func(key uint64, values []Tagged, ctx *ReduceContext)

// Partitioner routes one map-emitted pair to one or more reducers. It
// generalises the Partition function for skew-resilient shuffles: a
// heavy key's pairs can be split across sub-reducers by tuple content
// while the matching other side replicates to all of them, so the
// imbalance a value-skewed key distribution forces on a plain hash
// partition disappears. Route appends the destination ordinals (each
// in [0, numReducers)) to dst and returns the extended slice; it must
// be a pure, deterministic function of its arguments — the engine's
// determinism guarantee rests on it.
type Partitioner interface {
	Route(dst []int, key uint64, tag uint8, t relation.Tuple, numReducers int) []int
}

// ChunkSource provides chunk-granular streaming access to an input
// relation residing out of core (e.g. a dfs.ChunkedFile backed by the
// block store's page cache). Chunk indices are stable and chunks
// decode to bit-identical tuples on every open, so the engine's
// determinism contract extends to streamed inputs. Implementations
// must be safe for concurrent OpenChunk calls — map tasks stream in
// parallel.
type ChunkSource interface {
	NumChunks() int
	// ChunkRows returns chunk i's row count.
	ChunkRows(i int) int
	// ChunkBytes returns chunk i's raw encoded size in
	// relation.Tuple.EncodedSize units (pre-multiplier).
	ChunkBytes(i int) int64
	// OpenChunk decodes (or pages in) chunk i.
	OpenChunk(i int) (*relation.Chunk, error)
}

// MemoryChunkSource is a ChunkSource over pre-built in-memory chunks.
// It exists for tests, benchmarks and equivalence checks — the chunks
// stay resident, so it bounds nothing; real out-of-core inputs come
// from internal/dfs, whose sources decode chunks on demand from the
// block store.
type MemoryChunkSource struct {
	chunks []*relation.Chunk
}

// NewMemoryChunkSource chunks r at the given granularity
// (relation.DefaultChunkRows when rowsPerChunk <= 0).
func NewMemoryChunkSource(r *relation.Relation, rowsPerChunk int) *MemoryChunkSource {
	return &MemoryChunkSource{chunks: relation.ChunksOf(r, rowsPerChunk)}
}

func (s *MemoryChunkSource) NumChunks() int         { return len(s.chunks) }
func (s *MemoryChunkSource) ChunkRows(i int) int    { return s.chunks[i].Rows() }
func (s *MemoryChunkSource) ChunkBytes(i int) int64 { return s.chunks[i].EncodedBytes() }

func (s *MemoryChunkSource) OpenChunk(i int) (*relation.Chunk, error) { return s.chunks[i], nil }

// Input binds one relation to the map function applied to its tuples.
type Input struct {
	Rel *relation.Relation
	Map MapFunc

	// Stream, when set, feeds the map tasks from chunk streams instead
	// of Rel.Tuples: tasks cover contiguous chunk ranges and decode one
	// chunk at a time, releasing each as consumed, so the relation's
	// rows never need to be resident. Rel still supplies the schema,
	// dictionaries and VolumeMultiplier (its Tuples may be empty — an
	// out-of-core "shell" relation). Tuple values round-trip
	// bit-identically through the chunk codec, so output content and
	// byte metrics match an in-memory run of the same rows.
	Stream ChunkSource
}

// Job is a single MapReduce job specification (one MRJ in the paper's
// terms). NumReducers is the user-specified RN(MRJ) of Definition 3.
type Job struct {
	Name        string
	Inputs      []Input
	Reduce      ReduceFunc
	NumReducers int

	// Partition routes keys to reducers; nil means key % NumReducers.
	// Jobs whose keys are already component IDs use an identity
	// partition.
	Partition func(key uint64, numReducers int) int

	// Partitioner, when set, routes pairs instead of Partition
	// (including one-to-many skew-resilient routing); see the
	// interface doc.
	Partitioner Partitioner

	// OutputName and OutputSchema describe the produced relation.
	OutputName   string
	OutputSchema *relation.Schema

	// OutputDicts optionally carries the per-column string
	// dictionaries of the output relation, aligned with OutputSchema
	// (nil entries for columns without one). Join jobs propagate their
	// inputs' column dictionaries here so interned string values keep
	// valid codes in the produced relation and downstream jobs retain
	// the dictionary key fast path.
	OutputDicts []*relation.Dict

	// OutputMultiplier sets the VolumeMultiplier of the output
	// relation; 0 defaults to the max input multiplier, which keeps
	// modeled intermediate-result I/O proportional to modeled inputs.
	OutputMultiplier float64

	// Fault injection: map/reduce task ordinal → number of times the
	// task fails before succeeding. Failed attempts cost time and are
	// re-executed, reproducing MapReduce's re-execution fault
	// tolerance.
	FailMapTasks    map[int]int
	FailReduceTasks map[int]int
}

// Validate reports specification errors.
func (j *Job) Validate() error {
	if j.Name == "" {
		return fmt.Errorf("mr: job has no name")
	}
	if len(j.Inputs) == 0 {
		return fmt.Errorf("mr: job %s has no inputs", j.Name)
	}
	if len(j.Inputs) > 255 {
		return fmt.Errorf("mr: job %s has %d inputs; max 255 (tag is uint8)", j.Name, len(j.Inputs))
	}
	for i, in := range j.Inputs {
		if in.Rel == nil {
			return fmt.Errorf("mr: job %s input %d has nil relation", j.Name, i)
		}
		if in.Map == nil {
			return fmt.Errorf("mr: job %s input %d has nil map function", j.Name, i)
		}
	}
	if j.Reduce == nil {
		return fmt.Errorf("mr: job %s has nil reduce function", j.Name)
	}
	if j.NumReducers < 1 {
		return fmt.Errorf("mr: job %s has %d reducers; must be >= 1", j.Name, j.NumReducers)
	}
	if j.OutputSchema == nil {
		return fmt.Errorf("mr: job %s has nil output schema", j.Name)
	}
	return nil
}

// IdentityPartition treats the key itself as the reducer ordinal
// (clamped); used when map keys are component IDs in [0, NumReducers).
func IdentityPartition(key uint64, numReducers int) int {
	r := int(key)
	if r < 0 || r >= numReducers {
		r = int(key % uint64(numReducers))
	}
	return r
}
