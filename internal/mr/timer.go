package mr

import "math"

// Timer converts byte volumes into simulated seconds. The engine's
// event loop composes these primitives into the job makespan; the
// analytic cost model (internal/cost) uses the same primitives in
// closed form, so "estimated" vs "simulated" comparisons (Fig. 8) are
// meaningful.
type Timer interface {
	// MapTaskTime is t_M for one map task: sequential scan of its split
	// plus spilling its output (Eq. 1: (C1 + p·α)·S_I/m).
	MapTaskTime(inputBytes, outputBytes int64) float64

	// CopyTime is t_CP for one map task's output moving to n reducers
	// (Eq. 3: C2·α·S_I/(n·m) + q·n).
	CopyTime(outputBytes int64, numReducers int) float64

	// ReduceTime is the run time of one reduce task over its input
	// (Eq. 5: (p + β·C1)·S_r).
	ReduceTime(inputBytes, outputBytes int64) float64
}

// StdTimer implements Timer with the device constants of Config and
// the paper's p/q behaviour:
//
//   - C1, the per-byte sequential read cost, is 1/DiskReadMBps.
//   - p, the spill cost, is the per-byte write cost inflated
//     logarithmically once map output exceeds the sort buffer
//     (multi-pass merge), matching "p increases while spilled data
//     size grows".
//   - q, the connection-service overhead, grows superlinearly with the
//     reducer count ("rapid growth of q while n gets larger").
type StdTimer struct {
	ReadBps    float64 // bytes/second sequential read
	WriteBps   float64 // bytes/second write
	NetBps     float64 // bytes/second per map-to-reduce stream
	SortBuf    int64   // io.sort.mb in bytes
	SortFactor int     // io.sort.factor: runs merged per pass
	QBase      float64 // seconds per connection at n=1
	// Overhead floor per task (JVM start, scheduling), seconds.
	TaskOverhead float64
}

// NewStdTimer derives a timer from the configuration.
func NewStdTimer(cfg Config) *StdTimer {
	sf := cfg.IoSortFactor
	if sf < 2 {
		sf = 300
	}
	return &StdTimer{
		ReadBps:      cfg.DiskReadMBps * 1e6,
		WriteBps:     cfg.DiskWriteMBps * 1e6,
		NetBps:       cfg.NetworkMBps * 1e6,
		SortBuf:      int64(cfg.IoSortMB) * 1e6,
		SortFactor:   sf,
		QBase:        0.0005,
		TaskOverhead: 1.0,
	}
}

// SpillFactor returns p's inflation multiplier for a given spilled
// volume: 1 while the data fits the sort buffer, growing gently with
// the (io.sort.factor-ary) merge depth — Hadoop merges up to
// io.sort.factor runs per pass, so even hundreds of runs cost one
// extra pass, matching the paper's mild growth of p (Fig. 7b).
func (t *StdTimer) SpillFactor(outputBytes int64) float64 {
	if outputBytes <= t.SortBuf || t.SortBuf <= 0 {
		return 1
	}
	runs := float64(outputBytes) / float64(t.SortBuf)
	factor := float64(t.SortFactor)
	if factor < 2 {
		factor = 300
	}
	return 1 + 0.3*(1+math.Log(runs)/math.Log(factor))
}

// QValue returns the per-connection overhead coefficient q as a
// function of reducer count. q itself grows linearly in n, so the q·n
// term of Eq. 3 grows quadratically — the "rapid growth of q while n
// gets larger" that creates the Fig. 6 inflection and keeps the
// optimal k_R of Fig. 7a in the tens rather than the hundreds.
func (t *StdTimer) QValue(numReducers int) float64 {
	if numReducers < 1 {
		numReducers = 1
	}
	return t.QBase * float64(numReducers)
}

// MapTaskTime implements Timer.
func (t *StdTimer) MapTaskTime(inputBytes, outputBytes int64) float64 {
	read := float64(inputBytes) / t.ReadBps
	spill := float64(outputBytes) / t.WriteBps * t.SpillFactor(outputBytes)
	return t.TaskOverhead + read + spill
}

// CopyTime implements Timer.
func (t *StdTimer) CopyTime(outputBytes int64, numReducers int) float64 {
	if numReducers < 1 {
		numReducers = 1
	}
	transfer := float64(outputBytes) / t.NetBps
	service := t.QValue(numReducers) * float64(numReducers)
	return transfer + service
}

// ReduceTime implements Timer.
func (t *StdTimer) ReduceTime(inputBytes, outputBytes int64) float64 {
	// Read + sort-merge the shuffled input (charged at write rate: the
	// merge spills), then write the final output to the DFS.
	merge := float64(inputBytes) / t.WriteBps * t.SpillFactor(inputBytes)
	write := float64(outputBytes) / t.WriteBps
	return t.TaskOverhead + merge + write
}
