package mr

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/relation"
)

// Out-of-core shuffle: when Config.SpillBudgetBytes is set, a map task
// buffers at most that many accounted bytes of emitted pairs before
// sorting its per-reducer buckets and writing them to a SpillFile as
// key-sorted runs (Hadoop's io.sort.mb spill, made real). Reducers
// then k-way merge the spilled runs straight from disk through
// streaming cursors instead of holding every bucket live, so the
// engine's resident pair memory is bounded by the budget — while every
// byte-level metric and the output stay bit-identical to the
// in-memory path. See Run for the determinism contract; the spill
// layer preserves it because runs are merged in (key, source ordinal)
// order with sources ordered (task, flush), exactly the global stable
// sort order of the in-memory path, and because the pair codec
// (relation.WriteTupleRaw) round-trips values bit-identically,
// dictionary code slots included.

// SpillFile is one spill target: append-only while writing, random
// access (io.ReaderAt) after Seal, reclaimed by Release. The engine
// tracks segment offsets itself; implementations only store bytes.
type SpillFile interface {
	io.Writer
	io.ReaderAt // valid after Seal
	// Seal flushes and makes the file readable; no writes may follow.
	Seal() error
	// Release frees the file's storage.
	Release() error
}

// SpillStore creates spill files. Implementations must be safe for
// concurrent use — map tasks spill in parallel. internal/dfs's
// BlockStore implements it with an in-memory page cache over the spill
// bytes; the engine falls back to plain temp files when
// Config.Spill is nil.
type SpillStore interface {
	CreateSpillFile() (SpillFile, error)
}

// ---- Default temp-file store ------------------------------------------

// TempSpillStore is the engine's fallback SpillStore: one plain file
// per spill in a private temp directory, removed on Close.
type TempSpillStore struct {
	dir  string
	mu   sync.Mutex
	n    int
	live atomic.Int64
}

// Live reports the spill files created but not yet released — 0 after
// a Run returns, success or not: the engine discards failed attempts'
// runs immediately and releases committed runs before returning, so a
// nonzero count after Run is a leak. Cancellation-hygiene tests assert
// on it.
func (s *TempSpillStore) Live() int { return int(s.live.Load()) }

// NewTempSpillStore creates a temp-file spill store rooted in dir (""
// = the system temp directory).
func NewTempSpillStore(dir string) (*TempSpillStore, error) {
	d, err := os.MkdirTemp(dir, "mr-spill-*")
	if err != nil {
		return nil, fmt.Errorf("mr: spill store: %w", err)
	}
	return &TempSpillStore{dir: d}, nil
}

// CreateSpillFile opens a fresh spill file.
func (s *TempSpillStore) CreateSpillFile() (SpillFile, error) {
	s.mu.Lock()
	name := fmt.Sprintf("%s/spill-%06d", s.dir, s.n)
	s.n++
	s.mu.Unlock()
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return nil, fmt.Errorf("mr: spill store: %w", err)
	}
	s.live.Add(1)
	return &tempSpillFile{f: f, bw: bufio.NewWriter(f), store: s}, nil
}

// Close removes the store's directory and every remaining file.
func (s *TempSpillStore) Close() error { return os.RemoveAll(s.dir) }

type tempSpillFile struct {
	f     *os.File
	bw    *bufio.Writer
	store *TempSpillStore
}

func (t *tempSpillFile) Write(p []byte) (int, error) { return t.bw.Write(p) }

func (t *tempSpillFile) Seal() error { return t.bw.Flush() }

func (t *tempSpillFile) ReadAt(p []byte, off int64) (int, error) { return t.f.ReadAt(p, off) }

func (t *tempSpillFile) Release() error {
	if t.store != nil {
		t.store.live.Add(-1)
		t.store = nil
	}
	name := t.f.Name()
	if err := t.f.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Remove(name)
}

// ---- Pair codec -------------------------------------------------------

// Spilled pair layout: u64 key (LE), u8 tag, tuple in the raw
// self-describing layout (relation.WriteTupleRaw), which preserves
// interned-string code slots so EncodedSize — and with it every
// modeled byte metric — is unchanged by a disk round trip.

func writePair(bw *bufio.Writer, p pair) error {
	var scratch [9]byte
	binary.LittleEndian.PutUint64(scratch[:8], p.key)
	scratch[8] = p.tag
	if _, err := bw.Write(scratch[:9]); err != nil {
		return err
	}
	return relation.WriteTupleRaw(bw, p.tuple)
}

func readPair(br *bufio.Reader) (pair, error) {
	var scratch [9]byte
	if _, err := io.ReadFull(br, scratch[:9]); err != nil {
		return pair{}, err
	}
	t, err := relation.ReadTupleRaw(br)
	if err != nil {
		return pair{}, err
	}
	return pair{key: binary.LittleEndian.Uint64(scratch[:8]), tag: scratch[8], tuple: t}, nil
}

// pairRealBytes is the accounted in-memory size of one buffered pair:
// the tuple's encoded size plus 8 bytes of key framing — the same raw
// quantity the modeled byte accounting multiplies, so budget and
// metrics speak one unit.
func pairRealBytes(p pair) int64 { return int64(p.tuple.EncodedSize() + 8) }

// ---- Checksummed frames -----------------------------------------------

// Spilled segments are written as a sequence of frames: a u32 payload
// length and u32 CRC32 (IEEE) header followed by ~spillFrameSize bytes
// of encoded pairs; a pair never spans frames. Readers verify every
// frame before decoding a byte of it, fail over to replica re-reads on
// mismatch, and only surface a (retryable) error when every replica
// disagrees with the checksum — the integrity half of the
// fault-tolerance contract. Frame boundaries are a pure function of
// the pair sequence, so the segment bytes — and SpillBytes — stay
// deterministic.

const (
	spillFrameSize   = 32 << 10
	spillFrameHeader = 8
)

// frameWriter buffers pairs into frames and emits each with its
// length+CRC header to dst.
type frameWriter struct {
	dst    io.Writer
	buf    bytes.Buffer
	bw     *bufio.Writer
	frames int
}

func newFrameWriter(dst io.Writer) *frameWriter {
	fw := &frameWriter{dst: dst}
	fw.bw = bufio.NewWriter(&fw.buf)
	return fw
}

func (fw *frameWriter) writePair(p pair) error {
	if err := writePair(fw.bw, p); err != nil {
		return err
	}
	if err := fw.bw.Flush(); err != nil {
		return err
	}
	if fw.buf.Len() >= spillFrameSize {
		return fw.emit()
	}
	return nil
}

func (fw *frameWriter) emit() error {
	if fw.buf.Len() == 0 {
		return nil
	}
	payload := fw.buf.Bytes()
	var hdr [spillFrameHeader]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := fw.dst.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := fw.dst.Write(payload); err != nil {
		return err
	}
	fw.frames++
	fw.buf.Reset()
	return nil
}

// finish emits the final partial frame.
func (fw *frameWriter) finish() error { return fw.emit() }

// ---- Map-side spiller -------------------------------------------------

// spillSegment locates one reducer's key-sorted run inside a sealed
// spill file.
type spillSegment struct {
	off, n   int64
	count    int
	firstKey uint64
	lastKey  uint64
}

// spillFlush is one sealed spill file holding a segment per reducer
// (empty segments have count 0).
type spillFlush struct {
	file SpillFile
	segs []spillSegment
}

// taskSpiller buffers one map task's per-reducer buckets under the
// byte budget and flushes them to the spill store as sorted runs.
type taskSpiller struct {
	store    SpillStore
	budget   int64
	buckets  [][]pair
	buffered int64 // accounted bytes currently buffered
	peak     int64 // high-water mark of buffered
	flushes  []spillFlush
	spilled  int64 // total bytes written to the store
}

func newTaskSpiller(store SpillStore, nRed int, budget int64) *taskSpiller {
	return &taskSpiller{store: store, budget: budget, buckets: make([][]pair, nRed)}
}

// add buffers one routed pair, flushing first when the budget is
// exhausted. Flushing before (not after) appending keeps the buffer at
// most one pair over budget.
func (ts *taskSpiller) add(r int, p pair) error {
	b := pairRealBytes(p)
	if ts.buffered > 0 && ts.buffered+b > ts.budget {
		if err := ts.flush(); err != nil {
			return err
		}
	}
	ts.buckets[r] = append(ts.buckets[r], p)
	ts.buffered += b
	if ts.buffered > ts.peak {
		ts.peak = ts.buffered
	}
	return nil
}

// flush sorts every non-empty bucket and writes one spill file with a
// segment per reducer, then drops the buffered pairs.
func (ts *taskSpiller) flush() error {
	if ts.buffered == 0 {
		return nil
	}
	f, err := ts.store.CreateSpillFile()
	if err != nil {
		return err
	}
	cw := &countingWriter{w: f}
	fw := newFrameWriter(cw)
	segs := make([]spillSegment, len(ts.buckets))
	for r, b := range ts.buckets {
		if len(b) == 0 {
			continue
		}
		sortBucket(b)
		seg := spillSegment{off: cw.n, count: len(b), firstKey: b[0].key, lastKey: b[len(b)-1].key}
		for _, p := range b {
			if err := fw.writePair(p); err != nil {
				return err
			}
		}
		if err := fw.finish(); err != nil {
			return err
		}
		seg.n = cw.n - seg.off
		segs[r] = seg
		ts.buckets[r] = nil
	}
	if err := f.Seal(); err != nil {
		return err
	}
	ts.flushes = append(ts.flushes, spillFlush{file: f, segs: segs})
	ts.spilled += cw.n
	ts.buffered = 0
	return nil
}

// finish flushes the remaining buffer so the task retains no pairs in
// memory; every run is on the store.
func (ts *taskSpiller) finish() error { return ts.flush() }

// release frees every spill file of the task.
func (ts *taskSpiller) release() {
	for _, fl := range ts.flushes {
		fl.file.Release()
	}
	ts.flushes = nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ---- Reduce-side cursors and streaming merge --------------------------

// pairSource is one key-sorted run feeding a reducer's merge: an
// in-memory bucket or a spilled segment. Sources expose their key
// bounds so the merge can take the sequential fast path when the
// task-order concatenation is already globally sorted.
//
// A destructive source releases consumed state as it drains (the
// single-reader fast path); a non-destructive one leaves the shared
// bucket untouched so a retried or speculative reduce attempt can
// re-read it — the engine picks per run.
type pairSource struct {
	// Exactly one of bucket/seg is set.
	bucket []pair
	file   SpillFile
	seg    spillSegment
	mult   float64 // producing task's volume multiplier

	destructive bool

	// Integrity context for disk sources: ft carries the quarantine
	// counters and the replica budget, task addresses the producing
	// map task for fault targeting.
	ft   *faultRuntime
	task int

	// cursor state
	pos     int
	frOff   int64 // next unread file offset (frame-aligned)
	payload []byte
	rd      *bytes.Reader
	br      *bufio.Reader
}

func memSource(bucket []pair, mult float64) *pairSource {
	return &pairSource{bucket: bucket, mult: mult, destructive: true}
}

func diskSource(file SpillFile, seg spillSegment, mult float64, ft *faultRuntime, task int) *pairSource {
	return &pairSource{file: file, seg: seg, mult: mult, ft: ft, task: task}
}

func (s *pairSource) count() int {
	if s.bucket != nil {
		return len(s.bucket)
	}
	return s.seg.count
}

func (s *pairSource) firstKey() uint64 {
	if s.bucket != nil {
		return s.bucket[0].key
	}
	return s.seg.firstKey
}

func (s *pairSource) lastKey() uint64 {
	if s.bucket != nil {
		return s.bucket[len(s.bucket)-1].key
	}
	return s.seg.lastKey
}

// next returns the run's next pair. Destructive drained in-memory
// sources release their bucket's backing array immediately (not at the
// end of the whole merge) so GC can reclaim buckets while later
// sources are still merging; disk sources decode from checksum-
// verified frames loaded one at a time.
func (s *pairSource) next() (pair, error) {
	if s.bucket != nil {
		p := s.bucket[s.pos]
		if s.destructive {
			s.bucket[s.pos] = pair{} // drop the tuple ref as consumed
		}
		s.pos++
		if s.pos == len(s.bucket) {
			if s.destructive {
				s.bucket = nil // release as the cursor drains
			}
			s.pos = -1
		}
		return p, nil
	}
	if s.br == nil || (s.br.Buffered() == 0 && s.rd.Len() == 0) {
		if err := s.loadFrame(); err != nil {
			return pair{}, fmt.Errorf("mr: read spilled pair: %w", err)
		}
	}
	p, err := readPair(s.br)
	if err != nil {
		return pair{}, fmt.Errorf("mr: read spilled pair: %w", err)
	}
	s.pos++
	if s.pos == s.seg.count {
		s.br, s.rd, s.payload = nil, nil, nil // release the read buffers
		s.pos = -1
	}
	return p, nil
}

// loadFrame reads and verifies the segment's next frame. A checksum
// mismatch (real corruption or an injected one) is counted and the
// frame re-read up to the replica budget; only when every replica
// fails verification does the frame surface a retryable error that
// fails — and re-runs — the whole reduce attempt.
func (s *pairSource) loadFrame() error {
	if s.frOff == 0 {
		s.frOff = s.seg.off
	}
	end := s.seg.off + s.seg.n
	var hdr [spillFrameHeader]byte
	if s.frOff+spillFrameHeader > end {
		return fmt.Errorf("spill segment truncated at offset %d", s.frOff)
	}
	if _, err := s.file.ReadAt(hdr[:], s.frOff); err != nil {
		return err
	}
	n := int64(binary.LittleEndian.Uint32(hdr[:4]))
	want := binary.LittleEndian.Uint32(hdr[4:])
	if n <= 0 || s.frOff+spillFrameHeader+n > end {
		return retryable(fmt.Errorf("spill frame header corrupt at offset %d (len %d)", s.frOff, n))
	}
	if int64(cap(s.payload)) < n {
		s.payload = make([]byte, n)
	}
	s.payload = s.payload[:n]
	if _, err := s.file.ReadAt(s.payload, s.frOff+spillFrameHeader); err != nil {
		return err
	}
	if s.ft != nil && s.ft.inj.corruptSpill(s.task) {
		s.payload[0] ^= 0xFF // injected bit rot, caught below
	}
	maxReads := 1
	if s.ft != nil {
		maxReads = s.ft.replicas
	}
	for tries := 1; crc32.ChecksumIEEE(s.payload) != want; tries++ {
		s.ft.checksumFailure()
		if tries >= maxReads {
			return retryable(fmt.Errorf("spill frame checksum mismatch at offset %d after %d replica reads", s.frOff, tries))
		}
		if _, err := s.file.ReadAt(s.payload, s.frOff+spillFrameHeader); err != nil {
			return err
		}
		s.ft.failoverRead()
	}
	s.frOff += spillFrameHeader + n
	if s.rd == nil {
		s.rd = bytes.NewReader(s.payload)
		s.br = bufio.NewReaderSize(s.rd, 4096)
	} else {
		s.rd.Reset(s.payload)
		s.br.Reset(s.rd)
	}
	return nil
}

func (s *pairSource) drained() bool { return s.pos == -1 || s.count() == 0 }

// mergeSources streams the k-way merge of key-sorted sources (ordered
// by (task, flush) ordinal) to emit, in (key, source ordinal) order —
// the same global order the in-memory engine's stable sort produced.
// Memory held is one pair per live source.
func mergeSources(srcs []*pairSource, emit func(pair, *pairSource) error) error {
	live := srcs[:0]
	for _, s := range srcs {
		if s.count() > 0 {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		return nil
	}
	// Fast path: concatenation in source order is already globally
	// ordered (boundary ties are fine — source order is the desired
	// order for equal keys).
	ordered := true
	for i := 1; i < len(live); i++ {
		if live[i].firstKey() < live[i-1].lastKey() {
			ordered = false
			break
		}
	}
	if ordered {
		for _, s := range live {
			for !s.drained() {
				p, err := s.next()
				if err != nil {
					return err
				}
				if err := emit(p, s); err != nil {
					return err
				}
			}
		}
		return nil
	}
	// Binary min-heap of source ordinals keyed by (head key, ordinal).
	heads := make([]pair, len(live))
	for i, s := range live {
		p, err := s.next()
		if err != nil {
			return err
		}
		heads[i] = p
	}
	heap := make([]int, len(live))
	for i := range heap {
		heap[i] = i
	}
	less := func(a, b int) bool {
		ka, kb := heads[a].key, heads[b].key
		return ka < kb || (ka == kb && a < b)
	}
	var siftDown func(i, size int)
	siftDown = func(i, size int) {
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < size && less(heap[l], heap[small]) {
				small = l
			}
			if r < size && less(heap[r], heap[small]) {
				small = r
			}
			if small == i {
				return
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
	}
	size := len(heap)
	for i := size/2 - 1; i >= 0; i-- {
		siftDown(i, size)
	}
	for size > 0 {
		b := heap[0]
		s := live[b]
		if err := emit(heads[b], s); err != nil {
			return err
		}
		if s.drained() {
			heads[b] = pair{}
			size--
			heap[0] = heap[size]
		} else {
			p, err := s.next()
			if err != nil {
				return err
			}
			heads[b] = p
		}
		siftDown(0, size)
	}
	return nil
}
