package mr

// Config carries the Hadoop-style parameters of Table 1 plus the
// cluster geometry and device speeds of §6.1.
type Config struct {
	// Table 1 parameters (the "Set" column).
	BlockSizeMB      int     // fs.blocksize
	IoSortMB         int     // io.sort.mb
	IoSortRecordPct  float64 // io.sort.record.percentage
	IoSortSpillPct   float64 // io.sort.spill.percentage
	IoSortFactor     int     // io.sort.factor
	DFSReplication   int     // dfs.replication
	MapSlots         int     // concurrent map tasks cluster-wide (m')
	ReduceSlots      int     // concurrent reduce tasks (bounded by k_P)
	DiskReadMBps     float64 // measured sequential read rate
	DiskWriteMBps    float64 // measured write rate
	NetworkMBps      float64 // effective per-stream network rate
	TuplesPerMapTask int     // simulator granularity of an input split
	// MaxParallelWorkers bounds the real goroutines executing map
	// tasks and reduce partitions (0 = NumCPU). The concurrent plan
	// executor sets it per job to the job's share of the machine, so
	// overlapping jobs split the CPUs the way the schedule splits the
	// cluster's K_P units. Results never depend on it — only wall
	// clock does.
	MaxParallelWorkers int

	// OutputCapRatio bounds a job's modeled output volume at this
	// multiple of its modeled input (0 disables). The nominal-volume
	// scheme scales byte accounting linearly while generated tuple
	// counts grow sub-linearly, which would otherwise inflate
	// low-selectivity intermediate results quadratically — volumes the
	// paper's real 20 GB–1 TB runs (result selectivities 1e-4..1e-2)
	// never exhibit. The cap applies identically to every method.
	OutputCapRatio float64

	// SpillBudgetBytes bounds the REAL (unscaled, accounted — see
	// Metrics.PeakLiveBytes) bytes of emitted pairs one map task may
	// buffer before its sorted buckets spill to the SpillStore; with a
	// budget set, every map-output pair reaches the store and reducers
	// stream-merge the spilled runs from disk, so resident pair memory
	// is bounded instead of proportional to the shuffle volume. It is
	// the real-memory counterpart of the modeled IoSortMB knob: IoSortMB
	// prices spill passes in simulated time, SpillBudgetBytes makes this
	// process actually spill. 0 (the default) keeps the shuffle fully
	// in-memory. Output and byte-level metrics are bit-identical either
	// way.
	SpillBudgetBytes int64

	// Spill receives spill runs when SpillBudgetBytes > 0. nil makes
	// the engine manage plain temp files per run (NewTempSpillStore);
	// internal/dfs's BlockStore plugs in here to serve reads through
	// its page cache. Implementations must be concurrency-safe.
	Spill SpillStore

	// MaxTaskAttempts bounds how many times one map or reduce task may
	// run before its first error propagates (mapred.map.max.attempts).
	// 0 means the default (4, Hadoop's); 1 disables both retries and
	// speculative execution, restoring the single-attempt fast paths.
	// Failed attempts charge the simulated clock — the slot is held for
	// the extra runs plus a capped doubling backoff in cluster seconds.
	MaxTaskAttempts int

	// SpeculativeFactor is the straggler threshold: a running attempt
	// that exceeds this multiple of the phase's median completed
	// attempt duration gets one speculative backup, first finisher
	// wins. 0 means the default (3); values below 1 are rejected — a
	// sub-median "straggler" cutoff would back up the fast half of the
	// phase. Speculation needs MaxTaskAttempts >= 2 and enough
	// completed attempts to establish a median; it never changes
	// results, only wall clock.
	SpeculativeFactor float64

	// Faults injects deterministic failures for testing and CI: seeded
	// task kills, stragglers and spill corruption (see FaultPlan). nil
	// (the default) injects nothing. Results are bit-identical under
	// any plan whose faults are all retryable.
	Faults *FaultPlan
}

// Defaults for the fault-tolerance knobs (applied when the field is
// zero).
const (
	defaultTaskAttempts      = 4
	defaultSpeculativeFactor = 3.0
)

// DefaultConfig returns the Table 1 "Set" column plus the paper's
// cluster geometry: 13 nodes × 8 cores = 104 processing units, of
// which the experiments cap k_P at 96 or 64.
func DefaultConfig() Config {
	return Config{
		BlockSizeMB:      64,
		IoSortMB:         512,
		IoSortRecordPct:  0.1,
		IoSortSpillPct:   0.9,
		IoSortFactor:     300,
		DFSReplication:   3,
		MapSlots:         104,
		ReduceSlots:      96,
		DiskReadMBps:     74.26,
		DiskWriteMBps:    14.69,
		NetworkMBps:      120, // 10 GbE switch, effective per-stream
		TuplesPerMapTask: 2048,
		OutputCapRatio:   2,

		MaxTaskAttempts:   defaultTaskAttempts,
		SpeculativeFactor: defaultSpeculativeFactor,
	}
}

// Validate reports configuration errors. Every field the engine or
// the timers divide by (BlockSizeMB, TuplesPerMapTask, the device
// rates, IoSortMB) must be positive; fields where zero means "use the
// default" (MaxParallelWorkers, OutputCapRatio, IoSortFactor) reject
// only negative values.
func (c Config) Validate() error {
	switch {
	case c.MapSlots < 1:
		return errConfig("MapSlots must be >= 1")
	case c.ReduceSlots < 1:
		return errConfig("ReduceSlots must be >= 1")
	case c.DiskReadMBps <= 0 || c.DiskWriteMBps <= 0 || c.NetworkMBps <= 0:
		return errConfig("device rates must be positive")
	case c.TuplesPerMapTask < 1:
		return errConfig("TuplesPerMapTask must be >= 1")
	case c.BlockSizeMB < 1:
		return errConfig("BlockSizeMB must be >= 1")
	case c.IoSortMB < 1:
		return errConfig("IoSortMB must be >= 1")
	case c.IoSortFactor != 0 && c.IoSortFactor < 2:
		// The timer falls back to its default for any factor below 2
		// (a <2-way merge is meaningless); only an explicit 0 may ask
		// for that fallback.
		return errConfig("IoSortFactor must be 0 (default) or >= 2")
	case c.MaxParallelWorkers < 0:
		return errConfig("MaxParallelWorkers must be >= 0 (0 = NumCPU)")
	case c.OutputCapRatio < 0:
		return errConfig("OutputCapRatio must be >= 0 (0 disables the cap)")
	case c.SpillBudgetBytes < 0:
		return errConfig("SpillBudgetBytes must be >= 0 (0 = in-memory shuffle)")
	case c.MaxTaskAttempts < 0:
		return errConfig("MaxTaskAttempts must be >= 0 (0 = default)")
	case c.SpeculativeFactor != 0 && c.SpeculativeFactor < 1:
		// A sub-1 threshold would call faster-than-median attempts
		// stragglers; only an explicit 0 may ask for the default.
		return errConfig("SpeculativeFactor must be 0 (default) or >= 1")
	}
	return nil
}

type configError string

func errConfig(msg string) error    { return configError(msg) }
func (e configError) Error() string { return "mr: config: " + string(e) }
