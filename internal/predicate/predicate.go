// Package predicate defines theta-join conditions — the binary
// functions θ ∈ {<, ≤, =, ≥, >, ≠} between attributes of two relations
// — along with evaluation and sampling-based selectivity estimation.
//
// A Condition models the paper's edge labels l(e)=θ in the join graph:
// "R_i.a θ R_j.b", optionally with an additive constant on either side
// so predicates such as "FI₁.at + L.l₁ < FI₂.dt" (the travel-planning
// example of §2.2) and "t1.d + 3 > t3.d" (mobile query Q3) are
// expressible.
package predicate

import (
	"fmt"

	"repro/internal/relation"
)

// Op is a theta comparison operator.
type Op uint8

// The six theta operators of the paper (§2.2).
const (
	LT Op = iota // <
	LE           // <=
	EQ           // =
	GE           // >=
	GT           // >
	NE           // <>
)

// String renders the operator in SQL notation.
func (o Op) String() string {
	switch o {
	case LT:
		return "<"
	case LE:
		return "<="
	case EQ:
		return "="
	case GE:
		return ">="
	case GT:
		return ">"
	case NE:
		return "<>"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// ParseOp converts SQL notation to an Op.
func ParseOp(s string) (Op, error) {
	switch s {
	case "<":
		return LT, nil
	case "<=":
		return LE, nil
	case "=", "==":
		return EQ, nil
	case ">=":
		return GE, nil
	case ">":
		return GT, nil
	case "<>", "!=":
		return NE, nil
	default:
		return EQ, fmt.Errorf("predicate: unknown operator %q", s)
	}
}

// IsEquality reports whether the operator is plain equality. Multi-way
// equi-joins admit the key-partitioning shortcut of Afrati–Ullman; any
// other operator forces result-space partitioning.
func (o Op) IsEquality() bool { return o == EQ }

// Flip returns the operator with its operand order reversed, so that
// "a θ b" ⇔ "b θ.Flip() a".
func (o Op) Flip() Op {
	switch o {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	default: // EQ and NE are symmetric
		return o
	}
}

// Eval applies the operator to a three-way comparison result as
// produced by relation.Compare.
func (o Op) Eval(cmp int) bool {
	switch o {
	case LT:
		return cmp < 0
	case LE:
		return cmp <= 0
	case EQ:
		return cmp == 0
	case GE:
		return cmp >= 0
	case GT:
		return cmp > 0
	case NE:
		return cmp != 0
	default:
		return false
	}
}

// Condition is one theta-join condition between two relations:
//
//	Left.LeftColumn + LeftOffset  θ  Right.RightColumn + RightOffset
//
// Left and Right are relation names; the planner resolves columns
// against schemas at execution time.
type Condition struct {
	ID          int // ordinal within the query (θ_1 … θ_n); set by query construction
	Left        string
	LeftColumn  string
	LeftOffset  float64
	Op          Op
	Right       string
	RightColumn string
	RightOffset float64
}

// C builds a condition without offsets; the common case.
func C(left, leftCol string, op Op, right, rightCol string) Condition {
	return Condition{Left: left, LeftColumn: leftCol, Op: op, Right: right, RightColumn: rightCol}
}

// WithOffsets returns a copy with additive constants applied to each side.
func (c Condition) WithOffsets(l, r float64) Condition {
	c.LeftOffset = l
	c.RightOffset = r
	return c
}

// String renders the condition in SQL-like form.
func (c Condition) String() string {
	l := c.Left + "." + c.LeftColumn
	if c.LeftOffset != 0 {
		l = fmt.Sprintf("%s%+g", l, c.LeftOffset)
	}
	r := c.Right + "." + c.RightColumn
	if c.RightOffset != 0 {
		r = fmt.Sprintf("%s%+g", r, c.RightOffset)
	}
	return fmt.Sprintf("%s %s %s", l, c.Op, r)
}

// Reversed returns the condition with sides swapped (an equivalent
// predicate oriented Right-to-Left).
func (c Condition) Reversed() Condition {
	return Condition{
		ID:          c.ID,
		Left:        c.Right,
		LeftColumn:  c.RightColumn,
		LeftOffset:  c.RightOffset,
		Op:          c.Op.Flip(),
		Right:       c.Left,
		RightColumn: c.LeftColumn,
		RightOffset: c.LeftOffset,
	}
}

// Touches reports whether the condition references the relation name.
func (c Condition) Touches(rel string) bool { return c.Left == rel || c.Right == rel }

// Other returns the opposite relation of the condition given one
// endpoint, and whether rel is an endpoint at all.
func (c Condition) Other(rel string) (string, bool) {
	switch rel {
	case c.Left:
		return c.Right, true
	case c.Right:
		return c.Left, true
	default:
		return "", false
	}
}

// Bound resolves the condition against concrete schemas, producing an
// evaluator closure over tuples of the two relations. It returns an
// error when a referenced column is missing.
func (c Condition) Bound(leftSchema, rightSchema *relation.Schema) (func(l, r relation.Tuple) bool, error) {
	li, ok := leftSchema.Lookup(c.LeftColumn)
	if !ok {
		return nil, fmt.Errorf("predicate: %s: relation %s has no column %q", c, c.Left, c.LeftColumn)
	}
	ri, ok := rightSchema.Lookup(c.RightColumn)
	if !ok {
		return nil, fmt.Errorf("predicate: %s: relation %s has no column %q", c, c.Right, c.RightColumn)
	}
	op := c.Op
	lo, ro := c.LeftOffset, c.RightOffset
	if lo == 0 && ro == 0 {
		return func(l, r relation.Tuple) bool {
			return op.Eval(relation.Compare(l[li], r[ri]))
		}, nil
	}
	return func(l, r relation.Tuple) bool {
		return op.Eval(relation.Compare(l[li].Add(lo), r[ri].Add(ro)))
	}, nil
}

// KeyMode classifies how a condition between two typed columns can be
// evaluated on normalized sort keys (relation.SortKeyInt/SortKeyFloat):
// the compilation step of the indexed reducer-side join evaluator.
type KeyMode uint8

const (
	// KeyGeneric: no key extraction applies (a string column, or any
	// non-numeric kind); evaluation falls back to relation.Compare.
	KeyGeneric KeyMode = iota
	// KeyInt: both sides stay integer-valued after their additive
	// offsets (int/time columns, integral offsets); both sides extract
	// with relation.SortKeyInt and compare as raw int64.
	KeyInt
	// KeyFloat: both sides numeric, at least one float-valued after
	// its offset (a float column, or an int column with a fractional
	// offset — relation.Value.Add's promotion rule); both sides
	// extract with relation.SortKeyFloat.
	KeyFloat
	// KeyDict: both sides string columns and at least one side carries
	// an order-preserving dictionary (relation.Dict) covering all of
	// its values. Both sides key against that reference dictionary —
	// member strings via their even code keys, absent probe strings
	// via the odd gap keys — so string equality, inequality and range
	// conditions ride the same int64 indexes as numeric ones. Only
	// CondKeyModeDict, which knows dictionary availability, assigns
	// this mode.
	KeyDict
)

// shiftedKind is the value kind a column of kind k produces after
// Value.Add(off): the static half of Add's promotion rules. Time
// columns stay integer-valued for any offset (Add truncates), int
// columns promote to float on fractional offsets.
func shiftedKind(k relation.Kind, off float64) relation.Kind {
	switch k {
	case relation.KindInt:
		if off == float64(int64(off)) {
			return relation.KindInt
		}
		return relation.KindFloat
	case relation.KindTime:
		return relation.KindInt
	default:
		return k
	}
}

// CondKeyMode classifies a condition between a left column of kind l
// (shifted by lOff) and a right column of kind r (shifted by rOff).
// The chosen mode reproduces relation.Compare's dispatch exactly:
// integer comparison when both shifted sides are integer-valued, float
// comparison when either is a float, no fast path otherwise. NULL
// values are handled by the extractors, not the mode.
func CondKeyMode(l relation.Kind, lOff float64, r relation.Kind, rOff float64) KeyMode {
	lk, rk := shiftedKind(l, lOff), shiftedKind(r, rOff)
	numeric := func(k relation.Kind) bool { return k == relation.KindInt || k == relation.KindFloat }
	if !numeric(lk) || !numeric(rk) {
		return KeyGeneric
	}
	if lk == relation.KindFloat || rk == relation.KindFloat {
		return KeyFloat
	}
	return KeyInt
}

// CondKeyModeDict is CondKeyMode extended with dictionary awareness:
// hasDict reports whether a reference dictionary covering one full
// side of the condition is available. String-string conditions then
// classify as KeyDict (additive offsets are no-ops on strings, so they
// do not block the fast path); everything else falls back to
// CondKeyMode.
func CondKeyModeDict(l relation.Kind, lOff float64, r relation.Kind, rOff float64, hasDict bool) KeyMode {
	if hasDict && l == relation.KindString && r == relation.KindString {
		return KeyDict
	}
	return CondKeyMode(l, lOff, r, rOff)
}

// Conjunction is a set of conditions that must all hold; the predicate
// attached to one MapReduce job candidate.
type Conjunction []Condition

// String renders the conjunction joined by AND.
func (cj Conjunction) String() string {
	s := ""
	for i, c := range cj {
		if i > 0 {
			s += " AND "
		}
		s += c.String()
	}
	return s
}

// Relations returns the distinct relation names referenced, in first-
// appearance order.
func (cj Conjunction) Relations() []string {
	seen := make(map[string]bool)
	var out []string
	for _, c := range cj {
		if !seen[c.Left] {
			seen[c.Left] = true
			out = append(out, c.Left)
		}
		if !seen[c.Right] {
			seen[c.Right] = true
			out = append(out, c.Right)
		}
	}
	return out
}

// IDs returns the condition IDs in the conjunction.
func (cj Conjunction) IDs() []int {
	out := make([]int, len(cj))
	for i, c := range cj {
		out[i] = c.ID
	}
	return out
}
