package predicate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

func TestOpStringParse(t *testing.T) {
	ops := []Op{LT, LE, EQ, GE, GT, NE}
	for _, op := range ops {
		got, err := ParseOp(op.String())
		if err != nil || got != op {
			t.Errorf("ParseOp(%q) = %v, %v", op.String(), got, err)
		}
	}
	if _, err := ParseOp("~"); err == nil {
		t.Error("ParseOp(~) succeeded")
	}
	if got, _ := ParseOp("!="); got != NE {
		t.Error("!= not parsed as NE")
	}
	if got, _ := ParseOp("=="); got != EQ {
		t.Error("== not parsed as EQ")
	}
}

func TestOpEval(t *testing.T) {
	cases := []struct {
		op   Op
		cmp  int
		want bool
	}{
		{LT, -1, true}, {LT, 0, false}, {LT, 1, false},
		{LE, -1, true}, {LE, 0, true}, {LE, 1, false},
		{EQ, -1, false}, {EQ, 0, true}, {EQ, 1, false},
		{GE, -1, false}, {GE, 0, true}, {GE, 1, true},
		{GT, -1, false}, {GT, 0, false}, {GT, 1, true},
		{NE, -1, true}, {NE, 0, false}, {NE, 1, true},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.cmp); got != c.want {
			t.Errorf("%v.Eval(%d) = %v, want %v", c.op, c.cmp, got, c.want)
		}
	}
}

func TestOpFlipInvolution(t *testing.T) {
	for _, op := range []Op{LT, LE, EQ, GE, GT, NE} {
		if op.Flip().Flip() != op {
			t.Errorf("Flip not involutive for %v", op)
		}
	}
	if LT.Flip() != GT || LE.Flip() != GE || EQ.Flip() != EQ || NE.Flip() != NE {
		t.Error("Flip mapping wrong")
	}
}

// Property: "a op b" must equal "b op.Flip() a" for all int pairs.
func TestFlipSemanticsQuick(t *testing.T) {
	f := func(a, b int64, opIdx uint8) bool {
		op := Op(opIdx % 6)
		lhs := op.Eval(relation.Compare(relation.Int(a), relation.Int(b)))
		rhs := op.Flip().Eval(relation.Compare(relation.Int(b), relation.Int(a)))
		return lhs == rhs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func twoRelations(t *testing.T) (*relation.Relation, *relation.Relation) {
	t.Helper()
	sa := relation.MustSchema(
		relation.Column{Name: "x", Kind: relation.KindInt},
		relation.Column{Name: "tag", Kind: relation.KindString},
	)
	sb := relation.MustSchema(
		relation.Column{Name: "y", Kind: relation.KindInt},
	)
	a := relation.New("A", sa)
	b := relation.New("B", sb)
	for i := 0; i < 20; i++ {
		a.MustAppend(relation.Tuple{relation.Int(int64(i)), relation.Str("t")})
		b.MustAppend(relation.Tuple{relation.Int(int64(i * 2))})
	}
	return a, b
}

func TestConditionBoundEval(t *testing.T) {
	a, b := twoRelations(t)
	c := C("A", "x", LT, "B", "y")
	eval, err := c.Bound(a.Schema, b.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if !eval(relation.Tuple{relation.Int(1), relation.Str("")}, relation.Tuple{relation.Int(5)}) {
		t.Error("1 < 5 evaluated false")
	}
	if eval(relation.Tuple{relation.Int(5), relation.Str("")}, relation.Tuple{relation.Int(5)}) {
		t.Error("5 < 5 evaluated true")
	}
}

func TestConditionOffsets(t *testing.T) {
	a, b := twoRelations(t)
	// A.x + 3 > B.y
	c := C("A", "x", GT, "B", "y").WithOffsets(3, 0)
	eval, err := c.Bound(a.Schema, b.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if !eval(relation.Tuple{relation.Int(3), relation.Str("")}, relation.Tuple{relation.Int(5)}) {
		t.Error("3+3 > 5 evaluated false")
	}
	if eval(relation.Tuple{relation.Int(2), relation.Str("")}, relation.Tuple{relation.Int(5)}) {
		t.Error("2+3 > 5 evaluated true")
	}
}

func TestConditionBoundErrors(t *testing.T) {
	a, b := twoRelations(t)
	if _, err := C("A", "nope", LT, "B", "y").Bound(a.Schema, b.Schema); err == nil {
		t.Error("missing left column accepted")
	}
	if _, err := C("A", "x", LT, "B", "nope").Bound(a.Schema, b.Schema); err == nil {
		t.Error("missing right column accepted")
	}
}

func TestConditionReversedEquivalent(t *testing.T) {
	a, b := twoRelations(t)
	rng := rand.New(rand.NewSource(9))
	for _, op := range []Op{LT, LE, EQ, GE, GT, NE} {
		c := C("A", "x", op, "B", "y").WithOffsets(1, -2)
		r := c.Reversed()
		fwd, err := c.Bound(a.Schema, b.Schema)
		if err != nil {
			t.Fatal(err)
		}
		rev, err := r.Bound(b.Schema, a.Schema)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			at := relation.Tuple{relation.Int(int64(rng.Intn(40) - 20)), relation.Str("")}
			bt := relation.Tuple{relation.Int(int64(rng.Intn(40) - 20))}
			if fwd(at, bt) != rev(bt, at) {
				t.Fatalf("reversed condition differs for op %v: %v vs %v", op, at, bt)
			}
		}
	}
}

func TestConditionHelpers(t *testing.T) {
	c := C("A", "x", LT, "B", "y")
	if !c.Touches("A") || !c.Touches("B") || c.Touches("C") {
		t.Error("Touches wrong")
	}
	if o, ok := c.Other("A"); !ok || o != "B" {
		t.Error("Other(A) wrong")
	}
	if o, ok := c.Other("B"); !ok || o != "A" {
		t.Error("Other(B) wrong")
	}
	if _, ok := c.Other("Z"); ok {
		t.Error("Other(Z) accepted")
	}
	if s := c.String(); s != "A.x < B.y" {
		t.Errorf("String() = %q", s)
	}
	if s := c.WithOffsets(3, -1).String(); s != "A.x+3 < B.y-1" {
		t.Errorf("offset String() = %q", s)
	}
}

func TestConjunctionHelpers(t *testing.T) {
	cj := Conjunction{
		C("A", "x", LT, "B", "y"),
		C("B", "y", GE, "C", "z"),
	}
	cj[0].ID = 1
	cj[1].ID = 2
	rels := cj.Relations()
	if len(rels) != 3 || rels[0] != "A" || rels[1] != "B" || rels[2] != "C" {
		t.Errorf("Relations() = %v", rels)
	}
	ids := cj.IDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Errorf("IDs() = %v", ids)
	}
	if cj.String() != "A.x < B.y AND B.y >= C.z" {
		t.Errorf("String() = %q", cj.String())
	}
}

func TestExactSelectivity(t *testing.T) {
	a, b := twoRelations(t)
	// A.x = B.y: matches where x even and x/2 < 20 → x ∈ {0,2,...,19 even}=10 matches
	sel, err := ExactSelectivity(C("A", "x", EQ, "B", "y"), a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := 10.0 / 400.0
	if sel != want {
		t.Errorf("exact EQ selectivity = %v, want %v", sel, want)
	}
	empty := relation.New("E", a.Schema)
	sel, err = ExactSelectivity(C("A", "x", EQ, "B", "y"), empty, b)
	if err != nil || sel != 0 {
		t.Errorf("empty selectivity = %v, %v", sel, err)
	}
}

func TestEstimateSelectivityUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sa := relation.MustSchema(relation.Column{Name: "v", Kind: relation.KindInt})
	a := relation.New("A", sa)
	b := relation.New("B", sa)
	for i := 0; i < 3000; i++ {
		a.MustAppend(relation.Tuple{relation.Int(int64(rng.Intn(1000)))})
		b.MustAppend(relation.Tuple{relation.Int(int64(rng.Intn(1000)))})
	}
	cat := relation.NewCatalog([]*relation.Relation{a, b}, 400, rng)

	// LT on two uniform distributions ~ 0.5.
	sel, err := EstimateSelectivity(C("A", "v", LT, "B", "v"), cat)
	if err != nil {
		t.Fatal(err)
	}
	if sel < 0.4 || sel > 0.6 {
		t.Errorf("LT selectivity = %v, want ~0.5", sel)
	}
	// EQ ~ 1/1000.
	sel, err = EstimateSelectivity(C("A", "v", EQ, "B", "v"), cat)
	if err != nil {
		t.Fatal(err)
	}
	if sel > 0.02 {
		t.Errorf("EQ selectivity = %v, want ~0.001", sel)
	}
	// NE ~ 1 - EQ.
	sel, err = EstimateSelectivity(C("A", "v", NE, "B", "v"), cat)
	if err != nil {
		t.Fatal(err)
	}
	if sel < 0.95 {
		t.Errorf("NE selectivity = %v, want ~0.999", sel)
	}
}

func TestEstimateMatchesExactOnSkewedData(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	sa := relation.MustSchema(relation.Column{Name: "v", Kind: relation.KindInt})
	a := relation.New("A", sa)
	b := relation.New("B", sa)
	for i := 0; i < 800; i++ {
		// Skewed: squares concentrate mass at low values.
		x := rng.Intn(100)
		a.MustAppend(relation.Tuple{relation.Int(int64(x * x / 100))})
		b.MustAppend(relation.Tuple{relation.Int(int64(rng.Intn(100)))})
	}
	cat := relation.NewCatalog([]*relation.Relation{a, b}, 800, rng)
	for _, op := range []Op{LT, LE, GT, GE} {
		c := C("A", "v", op, "B", "v")
		est, err := EstimateSelectivity(c, cat)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := ExactSelectivity(c, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if diff := est - exact; diff > 0.08 || diff < -0.08 {
			t.Errorf("op %v: estimate %v vs exact %v", op, est, exact)
		}
	}
}

func TestEstimateConjunction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sa := relation.MustSchema(relation.Column{Name: "v", Kind: relation.KindInt})
	rels := make([]*relation.Relation, 3)
	names := []string{"A", "B", "C"}
	for i := range rels {
		rels[i] = relation.New(names[i], sa)
		for j := 0; j < 500; j++ {
			rels[i].MustAppend(relation.Tuple{relation.Int(int64(rng.Intn(100)))})
		}
	}
	cat := relation.NewCatalog(rels, 300, rng)
	cj := Conjunction{C("A", "v", LT, "B", "v"), C("B", "v", LT, "C", "v")}
	sel, err := EstimateConjunction(cj, cat)
	if err != nil {
		t.Fatal(err)
	}
	if sel < 0.15 || sel > 0.35 {
		t.Errorf("conjunction selectivity = %v, want ~0.25", sel)
	}
	bad := Conjunction{C("A", "v", LT, "Z", "v")}
	if _, err := EstimateConjunction(bad, cat); err == nil {
		t.Error("unknown relation accepted")
	}
}

func TestEstimateSelectivityErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	sa := relation.MustSchema(relation.Column{Name: "v", Kind: relation.KindInt})
	a := relation.New("A", sa)
	a.MustAppend(relation.Tuple{relation.Int(1)})
	cat := relation.NewCatalog([]*relation.Relation{a}, 10, rng)
	if _, err := EstimateSelectivity(C("A", "v", LT, "B", "v"), cat); err == nil {
		t.Error("missing right relation accepted")
	}
	if _, err := EstimateSelectivity(C("Z", "v", LT, "A", "v"), cat); err == nil {
		t.Error("missing left relation accepted")
	}
}

func TestCondKeyMode(t *testing.T) {
	cases := []struct {
		l    relation.Kind
		lOff float64
		r    relation.Kind
		rOff float64
		want KeyMode
	}{
		{relation.KindInt, 0, relation.KindInt, 0, KeyInt},
		{relation.KindInt, 3, relation.KindInt, -7, KeyInt},
		{relation.KindTime, 0.5, relation.KindTime, 0, KeyInt}, // Add truncates time offsets
		{relation.KindInt, 0, relation.KindTime, 2, KeyInt},
		{relation.KindInt, 0.5, relation.KindInt, 0, KeyFloat}, // fractional offset promotes
		{relation.KindFloat, 0, relation.KindInt, 0, KeyFloat},
		{relation.KindFloat, 1.25, relation.KindFloat, 0, KeyFloat},
		{relation.KindString, 0, relation.KindInt, 0, KeyGeneric},
		{relation.KindInt, 0, relation.KindString, 0, KeyGeneric},
		{relation.KindNull, 0, relation.KindInt, 0, KeyGeneric},
	}
	for _, tc := range cases {
		if got := CondKeyMode(tc.l, tc.lOff, tc.r, tc.rOff); got != tc.want {
			t.Errorf("CondKeyMode(%v%+g, %v%+g) = %d, want %d", tc.l, tc.lOff, tc.r, tc.rOff, got, tc.want)
		}
	}
}

// Key-mode comparison must agree with Compare on shifted values for
// each fast mode, across the kinds that mode admits.
func TestCondKeyModeAgreesWithCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mk := func(k relation.Kind) relation.Value {
		switch k {
		case relation.KindInt:
			return relation.Int(int64(rng.Intn(100) - 50))
		case relation.KindFloat:
			return relation.Float(float64(rng.Intn(100)-50) / 4)
		case relation.KindTime:
			return relation.TimeUnix(int64(rng.Intn(100)))
		default:
			return relation.Null()
		}
	}
	kinds := []relation.Kind{relation.KindInt, relation.KindFloat, relation.KindTime}
	offs := []float64{0, 2, -3, 0.5}
	for trial := 0; trial < 2000; trial++ {
		lk, rk := kinds[rng.Intn(len(kinds))], kinds[rng.Intn(len(kinds))]
		lOff, rOff := offs[rng.Intn(len(offs))], offs[rng.Intn(len(offs))]
		lv, rv := mk(lk), mk(rk)
		if rng.Intn(10) == 0 {
			lv = relation.Null()
		}
		mode := CondKeyMode(lk, lOff, rk, rOff)
		var lkey, rkey int64
		switch mode {
		case KeyInt:
			lkey, rkey = relation.SortKeyInt(lv, lOff), relation.SortKeyInt(rv, rOff)
		case KeyFloat:
			lkey, rkey = relation.SortKeyFloat(lv, lOff), relation.SortKeyFloat(rv, rOff)
		default:
			t.Fatalf("numeric kinds classified generic: %v %v", lk, rk)
		}
		got := 0
		if lkey < rkey {
			got = -1
		} else if lkey > rkey {
			got = 1
		}
		if want := relation.Compare(lv.Add(lOff), rv.Add(rOff)); got != want {
			t.Fatalf("mode %d: %v%+g vs %v%+g: key cmp %d, Compare %d", mode, lv, lOff, rv, rOff, got, want)
		}
	}
}

func TestCondKeyModeDict(t *testing.T) {
	s, i, f := relation.KindString, relation.KindInt, relation.KindFloat
	cases := []struct {
		l, r    relation.Kind
		hasDict bool
		want    KeyMode
	}{
		{s, s, true, KeyDict},
		{s, s, false, KeyGeneric}, // no dictionary: generic fallback
		{s, i, true, KeyGeneric},  // mixed kinds never take dict keys
		{i, s, true, KeyGeneric},
		{i, i, true, KeyInt}, // numeric pairs ignore hasDict
		{f, i, true, KeyFloat},
	}
	for _, tc := range cases {
		if got := CondKeyModeDict(tc.l, 0, tc.r, 0, tc.hasDict); got != tc.want {
			t.Errorf("CondKeyModeDict(%v, %v, dict=%v) = %d, want %d", tc.l, tc.r, tc.hasDict, got, tc.want)
		}
	}
}
