package predicate

import (
	"fmt"

	"repro/internal/relation"
)

// Selectivity estimation. The paper runs a sampling pass at data-upload
// time (§6.3: "we run a sampling algorithm to collect rough data
// statistics") and uses selectivities to derive the Map/Reduce output
// ratios α and β of the cost model (§4.1). We estimate a condition's
// selectivity by evaluating it over the cross product of the retained
// sample rows of both relations; histogram-based closed forms back the
// estimate up when samples are unavailable.

// EstimateSelectivity returns the estimated fraction of the cross
// product |L|×|R| satisfying the condition, in [0,1].
func EstimateSelectivity(c Condition, cat *relation.Catalog) (float64, error) {
	ls, err := cat.Stats(c.Left)
	if err != nil {
		return 0, err
	}
	rs, err := cat.Stats(c.Right)
	if err != nil {
		return 0, err
	}
	if sel, ok := sampleSelectivity(c, ls, rs); ok {
		return sel, nil
	}
	return histogramSelectivity(c, ls, rs)
}

// sampleSelectivity evaluates c over sample row pairs. It caps the pair
// count to keep estimation cheap, striding through the larger sample.
func sampleSelectivity(c Condition, ls, rs *relation.TableStats) (float64, bool) {
	const maxPairs = 250000
	if len(ls.SampleRows) == 0 || len(rs.SampleRows) == 0 {
		return 0, false
	}
	lIdx := columnOrdinal(ls, c.LeftColumn)
	rIdx := columnOrdinal(rs, c.RightColumn)
	if lIdx < 0 || rIdx < 0 {
		return 0, false
	}
	lRows, rRows := ls.SampleRows, rs.SampleRows
	// Stride sampling keeps the pair count bounded while remaining
	// deterministic.
	lStride, rStride := 1, 1
	for (len(lRows)/lStride)*(len(rRows)/rStride) > maxPairs {
		if len(lRows)/lStride >= len(rRows)/rStride {
			lStride++
		} else {
			rStride++
		}
	}
	match, total := 0, 0
	for i := 0; i < len(lRows); i += lStride {
		lv := lRows[i][lIdx].Add(c.LeftOffset)
		for j := 0; j < len(rRows); j += rStride {
			rv := rRows[j][rIdx].Add(c.RightOffset)
			total++
			if c.Op.Eval(relation.Compare(lv, rv)) {
				match++
			}
		}
	}
	if total == 0 {
		return 0, false
	}
	return float64(match) / float64(total), true
}

// columnOrdinal finds the position of a named column within the sample
// rows by consulting the per-column stats map; sample rows follow the
// relation's schema order, which Analyze preserves. Returns -1 when the
// column is unknown.
func columnOrdinal(ts *relation.TableStats, name string) int {
	// TableStats does not retain the schema, but SampleRows tuples are
	// in schema order and ColumnStats knows the set of names. We locate
	// the ordinal by probing the stats map's insertion invariants: the
	// histogram carries no ordinal, so we fall back to matching values.
	// To keep this robust, Analyze stores columns keyed by name and we
	// recover ordinals via ColumnOrder.
	for i, n := range ts.ColumnOrder() {
		if n == name {
			return i
		}
	}
	return -1
}

// histogramSelectivity combines per-column histograms under an
// independence assumption. For EQ it uses 1/max(distinct); for NE the
// complement; for range operators it integrates P[L θ R] assuming
// uniform bucketed distributions.
func histogramSelectivity(c Condition, ls, rs *relation.TableStats) (float64, error) {
	lcs, ok := ls.Columns[c.LeftColumn]
	if !ok {
		return 0, fmt.Errorf("predicate: no stats for %s.%s", c.Left, c.LeftColumn)
	}
	rcs, ok := rs.Columns[c.RightColumn]
	if !ok {
		return 0, fmt.Errorf("predicate: no stats for %s.%s", c.Right, c.RightColumn)
	}
	switch c.Op {
	case EQ:
		d := lcs.Distinct
		if rcs.Distinct > d {
			d = rcs.Distinct
		}
		if d <= 0 {
			return 0.5, nil
		}
		return 1 / float64(d), nil
	case NE:
		d := lcs.Distinct
		if rcs.Distinct > d {
			d = rcs.Distinct
		}
		if d <= 0 {
			return 0.5, nil
		}
		return 1 - 1/float64(d), nil
	}
	// Range operator: P[L+lo θ R+ro]. Sample the left histogram domain
	// at bucket midpoints and integrate the right CDF.
	if len(rcs.BucketCount) == 0 || len(lcs.BucketCount) == 0 {
		return 0.5, nil
	}
	lw := (lcs.HistMax - lcs.HistMin)
	steps := len(lcs.BucketCount)
	if lw <= 0 || steps == 0 {
		// Degenerate single-point distribution.
		v := lcs.HistMin + c.LeftOffset - c.RightOffset
		p := rcs.FracLess(v)
		switch c.Op {
		case LT, LE:
			return 1 - p, nil
		default:
			return p, nil
		}
	}
	totalL := 0
	for _, b := range lcs.BucketCount {
		totalL += b
	}
	if totalL == 0 {
		return 0.5, nil
	}
	acc := 0.0
	bw := lw / float64(steps)
	for i, cnt := range lcs.BucketCount {
		mid := lcs.HistMin + (float64(i)+0.5)*bw + c.LeftOffset - c.RightOffset
		pLess := rcs.FracLess(mid) // P[R' < mid]
		var p float64
		switch c.Op {
		case LT, LE:
			p = 1 - pLess // P[mid < R']
		case GT, GE:
			p = pLess
		}
		acc += p * float64(cnt)
	}
	return acc / float64(totalL), nil
}

// EstimateConjunction multiplies member selectivities under the
// independence assumption the paper's model inherits from classic
// System R estimation.
func EstimateConjunction(cj Conjunction, cat *relation.Catalog) (float64, error) {
	sel := 1.0
	for _, c := range cj {
		s, err := EstimateSelectivity(c, cat)
		if err != nil {
			return 0, err
		}
		sel *= s
	}
	return sel, nil
}

// ExactSelectivity computes the true fraction of the cross product
// satisfying the condition. Exponential in data size; used only in
// tests and by Table 2/3 harnesses over generated data.
func ExactSelectivity(c Condition, left, right *relation.Relation) (float64, error) {
	eval, err := c.Bound(left.Schema, right.Schema)
	if err != nil {
		return 0, err
	}
	if left.Cardinality() == 0 || right.Cardinality() == 0 {
		return 0, nil
	}
	match := 0
	for _, lt := range left.Tuples {
		for _, rt := range right.Tuples {
			if eval(lt, rt) {
				match++
			}
		}
	}
	return float64(match) / (float64(left.Cardinality()) * float64(right.Cardinality())), nil
}
