// Package skew detects heavy hitters on join attributes and plans
// skew-resilient shuffle routing around them.
//
// The paper's cost model (§4.1) charges every reducer an equal share
// of the shuffled bytes plus a variance term, and the planner's
// operators — hash repartitioning and the Afrati–Ullman share grid —
// realise that balance only when join-key values are roughly uniform.
// Real workloads are Zipf-skewed: one hot station code or part key can
// put a constant fraction of the input on a single reducer, making it
// the job makespan no matter how many units the scheduler grants.
//
// The subsystem has three layers:
//
//   - Detection: a Misra–Gries summary (Sketch) fed from the sampled
//     statistics pass — with an exact counting pass for relations small
//     enough to scan — produces a per-attribute heavy-hitter report
//     ([]relation.HotKey) stored in the stats catalog
//     (AnnotateCatalog). Because the sampling RNG is seeded, the report
//     is deterministic across runs. Composite equi keys get joint
//     detection on demand (JointHotKeys): the planner names a column
//     set and receives the hot value COMBINATIONS ([]HotGroup), which
//     per-column reports cannot see — two individually near-uniform
//     columns can still share one dominant pair.
//
//   - Planning: core.Planner consults the report when costing candidate
//     jobs (SigmaFrac turns the hottest key's share into the reducer
//     input-variance estimate the cost model consumes) and attaches a
//     JobPlan — per-column HotKeys plus joint HotGroups for composite
//     keys — to planned jobs whose hottest key would overload a
//     reducer past Threshold × the mean load. At execution time the
//     runtime feedback loop (core's replan step) re-derives the
//     JobPlan of cascade jobs from a statistics overlay measured on
//     their actual intermediate inputs, escalating to a tighter
//     threshold when an upstream job's observed BalanceRatio exceeded
//     the bound its threshold modeled.
//
//   - Routing: per SharesSkew (Afrati/Ullman et al.), a heavy hitter's
//     tuples on one side are split across a Rows×Cols sub-grid of
//     reducers by a deterministic content hash (TupleHash) while the
//     matching other side replicates along the opposite axis, so every
//     joining pair still meets exactly once. EquiPartitioner plugs this
//     into the engine's shuffle for hash equi-joins — coordinating
//     sub-grid placement across hot keys so simultaneous heavy
//     hitters occupy disjoint reducer sets when capacity allows — and
//     the share-grid operator gives hot rows of its grid finer cells
//     the same way.
//
// All routing decisions are pure functions of tuple content and the
// plan, so execution stays deterministic for any worker count.
package skew
