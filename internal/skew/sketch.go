package skew

import "sort"

// Sketch is a Misra–Gries heavy-hitter summary over a stream of string
// keys. It maintains at most `capacity` counters; after n additions
// every key with true count > n/(capacity+1) is guaranteed to be
// present, and each reported count undercounts the true count by at
// most ErrorBound. The summary is deterministic for a fixed insertion
// order, which the seeded statistics sample guarantees.
type Sketch struct {
	capacity int
	counts   map[string]int64
	n        int64
}

// NewSketch builds a sketch with the given counter capacity (minimum 1).
func NewSketch(capacity int) *Sketch {
	if capacity < 1 {
		capacity = 1
	}
	return &Sketch{capacity: capacity, counts: make(map[string]int64, capacity+1)}
}

// Add feeds one key occurrence.
func (s *Sketch) Add(key string) {
	s.n++
	if c, ok := s.counts[key]; ok {
		s.counts[key] = c + 1
		return
	}
	if len(s.counts) < s.capacity {
		s.counts[key] = 1
		return
	}
	// Counter set full: the classic Misra–Gries step decrements every
	// counter (the new key's single occurrence cancels against one
	// occurrence of each tracked key), evicting keys that reach zero.
	for k, c := range s.counts {
		if c <= 1 {
			delete(s.counts, k)
		} else {
			s.counts[k] = c - 1
		}
	}
}

// N returns the number of additions.
func (s *Sketch) N() int64 { return s.n }

// ErrorBound returns the maximum undercount of any reported count:
// floor(n / (capacity+1)).
func (s *Sketch) ErrorBound() int64 { return s.n / int64(s.capacity+1) }

// Estimate returns the tracked count for key (a lower bound on its
// true count) and whether the key is tracked at all.
func (s *Sketch) Estimate(key string) (int64, bool) {
	c, ok := s.counts[key]
	return c, ok
}

// Entry is one tracked key with its (lower-bound) count.
type Entry struct {
	Key   string
	Count int64
}

// Entries returns the tracked keys ordered by count descending, key
// ascending — a deterministic top-k view.
func (s *Sketch) Entries() []Entry {
	out := make([]Entry, 0, len(s.counts))
	for k, c := range s.counts {
		out = append(out, Entry{Key: k, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}
