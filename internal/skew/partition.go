package skew

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/relation"
)

// DefaultThreshold is the load-imbalance trigger: a key is handled as
// hot when its estimated tuple fraction times the job's reducer count
// exceeds it — i.e. the key alone would load a reducer past 1.5× the
// mean.
const DefaultThreshold = 1.5

// JobPlan is the skew handling chosen for one planned job: the
// heavy-hitter reports of the job's join attributes plus the trigger
// threshold. Operators derive their concrete split layout from it at
// build time (hash-equi sub-grids, share-grid hot-row refinement).
type JobPlan struct {
	Threshold float64
	// Cols holds heavy hitters per relation per column.
	Cols map[string]map[string][]relation.HotKey
	// Joint holds joint heavy hitters per relation per canonical
	// column-set key (JointKey of the column names in join-condition
	// order) — the composite-key analogue of Cols, filled when a job
	// equi-joins on more than one column pair.
	Joint map[string]map[string][]HotGroup
}

// NewJobPlan builds an empty plan with the given threshold (<= 0 uses
// DefaultThreshold).
func NewJobPlan(threshold float64) *JobPlan {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	return &JobPlan{
		Threshold: threshold,
		Cols:      make(map[string]map[string][]relation.HotKey),
		Joint:     make(map[string]map[string][]HotGroup),
	}
}

// JointKey canonicalises a column list for Joint lookups. Order
// matters: callers must pass the columns in join-condition order on
// both the planning and the operator side, so the stored value vectors
// align with the composite shuffle key.
func JointKey(cols []string) string { return strings.Join(cols, "\x1f") }

// AddJoint registers the joint heavy hitters of rel over cols.
func (p *JobPlan) AddJoint(rel string, cols []string, hot []HotGroup) {
	if len(hot) == 0 {
		return
	}
	if p.Joint == nil {
		p.Joint = make(map[string]map[string][]HotGroup)
	}
	m, ok := p.Joint[rel]
	if !ok {
		m = make(map[string][]HotGroup)
		p.Joint[rel] = m
	}
	m[JointKey(cols)] = hot
}

// HotJoint returns the joint heavy hitters of rel over cols (nil-safe).
func (p *JobPlan) HotJoint(rel string, cols []string) []HotGroup {
	if p == nil {
		return nil
	}
	return p.Joint[rel][JointKey(cols)]
}

// Add registers the heavy hitters of rel.col.
func (p *JobPlan) Add(rel, col string, hot []relation.HotKey) {
	if len(hot) == 0 {
		return
	}
	m, ok := p.Cols[rel]
	if !ok {
		m = make(map[string][]relation.HotKey)
		p.Cols[rel] = m
	}
	m[col] = hot
}

// Hot returns the heavy hitters of rel.col (nil-safe).
func (p *JobPlan) Hot(rel, col string) []relation.HotKey {
	if p == nil {
		return nil
	}
	return p.Cols[rel][col]
}

// TupleHash is the deterministic content hash that spreads a hot key's
// tuples over its sub-reducers: identical in the map-side router and
// the reduce-side ownership check, and independent of task or
// goroutine interleaving.
func TupleHash(t relation.Tuple) uint64 {
	h := fnv.New64a()
	var kb [2]byte
	var cb [8]byte
	kb[1] = 0x1e
	for _, v := range t {
		kb[0] = byte(v.Kind())
		h.Write(kb[:1])
		// Interned strings hash their fixed-width dictionary code
		// instead of the string bytes: within a column every value
		// shares one dictionary, so the code determines the string.
		if c, ok := v.DictCode(); ok {
			binary.LittleEndian.PutUint64(cb[:], uint64(c))
			h.Write(cb[:])
		} else {
			h.Write([]byte(v.String()))
		}
		h.Write(kb[1:])
	}
	return h.Sum64()
}

// SplitFactor returns the number of sub-reducers a key carrying
// fraction frac of one side's tuples warrants: 1 (no splitting) while
// its load stays within threshold × the mean reducer load, otherwise
// enough sub-reducers to bring each fragment back to roughly the mean.
func SplitFactor(frac float64, reducers int, threshold float64) int {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	if frac <= 0 || reducers < 2 || frac*float64(reducers) <= threshold {
		return 1
	}
	f := int(math.Ceil(frac * float64(reducers)))
	if f > reducers {
		f = reducers
	}
	return f
}

// SigmaFrac estimates the reducer-input variation coefficient (stddev
// as a fraction of the mean) the cost model should charge, from the
// hottest join-key fraction pmax at the given parallelism. The
// straggler term of the model reads mean + 3σ, so a key holding
// fraction p implies σ ≈ (p·k − 1)/3 × mean; runtime hot-key splitting
// bounds the hot reducer near threshold × mean, capping the estimate.
// A distribution measured near-uniform (pmax ≈ 0) yields a small
// residual-hash-variance floor rather than the pessimistic constants
// used when no report exists.
func SigmaFrac(pmax float64, parallelism int, threshold float64) float64 {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	excess := pmax*float64(parallelism) - 1
	if excess > threshold {
		excess = threshold
	}
	cv := excess / 3
	if cv < 0.02 {
		cv = 0.02
	}
	return cv
}

// Split is the sub-reducer grid one hot join key is spread over:
// tuples of the row side land in one of Rows row-fragments by
// TupleHash and replicate across the Cols columns; the column side
// mirrors. Every joining pair meets in exactly one of the Rows×Cols
// cells.
type Split struct {
	Rows, Cols int
}

// Cells returns Rows×Cols.
func (s Split) Cells() int { return s.Rows * s.Cols }

// EquiPartitioner routes a repartition equi-join's shuffle with
// heavy-hitter splitting: non-hot keys go to hash(key) mod n exactly
// as the default partitioner would; a hot key's pairs spread over the
// Cells reducers of its sub-grid. It implements mr.Partitioner.
//
// Sub-grid placement is coordinated across hot keys: the historical
// layout placed every grid on the consecutive slots following the
// key's base, so two hot keys whose base slots were close aliased
// onto the same reducers and re-concentrated exactly the load the
// split was meant to spread. gridLayout instead assigns each key's
// cells to the reducers occupied by the fewest other hot grids
// (orbiting the key's own base slot for tie-breaks), which is fully
// disjoint whenever Σ Cells ≤ n and evens out grid occupancy beyond
// that.
type EquiPartitioner struct {
	// Splits maps the job's shuffle key (the composite join-key hash)
	// of each heavy hitter to its sub-grid.
	Splits map[uint64]Split

	// Obs, when set, records the hot-key routing layout as trace
	// events: one "skew-layout" span around the grid computation plus a
	// "hot-key" instant per split key. The layout is built exactly once
	// (under layoutOnce, whichever map worker gets there first), so the
	// shard has a single writer and recording stays race-free.
	Obs *obs.Shard

	layoutOnce sync.Once
	layoutN    int
	layout     map[uint64][]int
}

// layoutFor returns the slot assignment of every hot grid for n
// reducers, computing it on first use. A partitioner serves exactly
// one job (one n); the sync.Once makes the lazy build safe under the
// engine's concurrent map tasks, and the layout is a pure function of
// (Splits, n), preserving shuffle determinism.
func (p *EquiPartitioner) layoutFor(n int) map[uint64][]int {
	p.layoutOnce.Do(func() {
		sp := p.Obs.Start("skew-layout", obs.A("hotKeys", len(p.Splits)), obs.A("reducers", n))
		p.layoutN = n
		p.layout = gridLayout(p.Splits, n)
		for key, slots := range p.layout {
			p.Obs.Instant("hot-key",
				obs.A("key", fmt.Sprintf("%#x", key)),
				obs.A("rows", p.Splits[key].Rows), obs.A("cols", p.Splits[key].Cols),
				obs.A("slots", fmt.Sprint(slots)))
		}
		sp.End(obs.A("placed", len(p.layout)))
	})
	if p.layoutN != n {
		// Out-of-contract caller probing a second n: stay correct,
		// just without caching.
		return gridLayout(p.Splits, n)
	}
	return p.layout
}

// gridLayout assigns each hot key's Cells() sub-grid slots. Keys are
// processed in ascending key order (determinism); each picks the
// slots currently covered by the fewest already-placed grids,
// tie-breaking by ring distance from the key's own base slot so a
// lone hot key keeps its historical consecutive run.
func gridLayout(splits map[uint64]Split, n int) map[uint64][]int {
	keys := make([]uint64, 0, len(splits))
	for k := range splits {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	occ := make([]int, n)
	order := make([]int, n)
	layout := make(map[uint64][]int, len(keys))
	for _, key := range keys {
		cells := splits[key].Cells()
		if cells < 1 || cells > n {
			continue // Route falls back to plain hashing for this key
		}
		base := int(key % uint64(n))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			sa, sb := order[a], order[b]
			if occ[sa] != occ[sb] {
				return occ[sa] < occ[sb]
			}
			return (sa-base+n)%n < (sb-base+n)%n
		})
		slots := append([]int(nil), order[:cells]...)
		for _, s := range slots {
			occ[s]++
		}
		layout[key] = slots
	}
	return layout
}

// Route implements the skew-resilient routing. Tag 0 is the row side
// (split), any other tag the column side (replicated); with both sides
// hot the Rows×Cols grid splits each and every pair still meets in
// exactly one cell — the grid-index → slot mapping is injective, so
// the single shared cell of a (row, column) tuple pair is a single
// shared reducer.
func (p *EquiPartitioner) Route(dst []int, key uint64, tag uint8, t relation.Tuple, n int) []int {
	base := int(key % uint64(n))
	sp, ok := p.Splits[key]
	if !ok || n < 2 || sp.Rows < 1 || sp.Cols < 1 || sp.Cells() > n {
		return append(dst, base)
	}
	slots := p.layoutFor(n)[key]
	if len(slots) != sp.Cells() {
		return append(dst, base)
	}
	th := TupleHash(t)
	if tag == 0 {
		row := int(th % uint64(sp.Rows))
		for c := 0; c < sp.Cols; c++ {
			dst = append(dst, slots[row*sp.Cols+c])
		}
		return dst
	}
	col := int(th % uint64(sp.Cols))
	for r := 0; r < sp.Rows; r++ {
		dst = append(dst, slots[r*sp.Cols+col])
	}
	return dst
}
