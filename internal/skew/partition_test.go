package skew

import (
	"testing"

	"repro/internal/relation"
)

func tup(vals ...int64) relation.Tuple {
	t := make(relation.Tuple, len(vals))
	for i, v := range vals {
		t[i] = relation.Int(v)
	}
	return t
}

// TestEquiPartitionerColdKey: non-hot keys route exactly like the
// default hash partition.
func TestEquiPartitionerColdKey(t *testing.T) {
	p := &EquiPartitioner{Splits: map[uint64]Split{99: {Rows: 4, Cols: 1}}}
	for _, key := range []uint64{0, 1, 17, 1 << 40} {
		dst := p.Route(nil, key, 0, tup(1), 8)
		if len(dst) != 1 || dst[0] != int(key%8) {
			t.Errorf("key %d: route %v, want [%d]", key, dst, key%8)
		}
	}
}

// TestEquiPartitionerPairsMeetOnce: for a hot key, every (row-side,
// col-side) tuple pair shares exactly one reducer — the join neither
// loses nor duplicates pairs — and row-side tuples spread over Rows
// distinct reducers.
func TestEquiPartitionerPairsMeetOnce(t *testing.T) {
	const n = 16
	const hot = uint64(42)
	p := &EquiPartitioner{Splits: map[uint64]Split{hot: {Rows: 3, Cols: 2}}}
	var rowRoutes, colRoutes [][]int
	rowDst := map[int]bool{}
	for i := 0; i < 40; i++ {
		r := p.Route(nil, hot, 0, tup(int64(i), 7), n)
		if len(r) != 2 { // Cols copies
			t.Fatalf("row-side tuple %d: %d destinations, want 2", i, len(r))
		}
		rowRoutes = append(rowRoutes, r)
		rowDst[r[0]] = true
	}
	for i := 0; i < 40; i++ {
		c := p.Route(nil, hot, 1, tup(int64(1000+i), 9), n)
		if len(c) != 3 { // Rows copies
			t.Fatalf("col-side tuple %d: %d destinations, want 3", i, len(c))
		}
		colRoutes = append(colRoutes, c)
	}
	for ri, r := range rowRoutes {
		for ci, c := range colRoutes {
			shared := 0
			for _, a := range r {
				for _, b := range c {
					if a == b {
						shared++
					}
				}
			}
			if shared != 1 {
				t.Fatalf("pair (%d,%d): %d shared reducers (routes %v / %v), want exactly 1", ri, ci, shared, r, c)
			}
		}
	}
	if len(rowDst) < 2 {
		t.Errorf("row side never spread: all tuples landed on %v", rowDst)
	}
}

// TestEquiPartitionerDeterministic: routing is a pure function of the
// pair.
func TestEquiPartitionerDeterministic(t *testing.T) {
	p := &EquiPartitioner{Splits: map[uint64]Split{5: {Rows: 4, Cols: 3}}}
	a := p.Route(nil, 5, 0, tup(11, 22), 16)
	b := p.Route(nil, 5, 0, tup(11, 22), 16)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("routes differ: %v vs %v", a, b)
		}
	}
}

func TestSplitFactor(t *testing.T) {
	cases := []struct {
		frac      float64
		reducers  int
		threshold float64
		want      int
	}{
		{0, 16, 1.5, 1},    // no skew info
		{0.05, 16, 1.5, 1}, // 0.8× mean: below threshold
		{0.2, 16, 1.5, 4},  // 3.2× mean: ceil(0.2*16)
		{0.5, 8, 1.5, 4},   // ceil(0.5*8)
		{1.0, 8, 1.5, 8},   // whole side one key: use all reducers
		{0.9, 1, 1.5, 1},   // single reducer: nothing to split
		{0.4, 4, 2.0, 1},   // 1.6× mean under threshold 2
	}
	for _, c := range cases {
		if got := SplitFactor(c.frac, c.reducers, c.threshold); got != c.want {
			t.Errorf("SplitFactor(%v,%d,%v) = %d, want %d", c.frac, c.reducers, c.threshold, got, c.want)
		}
	}
}

func TestSigmaFrac(t *testing.T) {
	// Near-uniform distribution: small residual floor, far below the
	// 0.3 constant it replaces.
	if cv := SigmaFrac(0.01, 16, 1.5); cv != 0.02 {
		t.Errorf("uniform cv = %v, want floor 0.02", cv)
	}
	// Heavy key, mitigation caps at threshold: (1.5)/3 = 0.5.
	if cv := SigmaFrac(0.5, 16, 1.5); cv != 0.5 {
		t.Errorf("hot cv = %v, want 0.5", cv)
	}
	// Moderate skew between floor and cap: (0.25*8-1)/3.
	if cv := SigmaFrac(0.25, 8, 1.5); cv < 0.3 || cv > 0.35 {
		t.Errorf("moderate cv = %v, want ~1/3", cv)
	}
}

// TestTupleHashDistinguishesContent: different tuples hash apart (so a
// hot key's tuples spread) and equal content hashes equal (so map and
// reduce sides agree).
func TestTupleHashDistinguishesContent(t *testing.T) {
	if TupleHash(tup(1, 2)) != TupleHash(tup(1, 2)) {
		t.Error("equal tuples hash differently")
	}
	seen := map[uint64]bool{}
	for i := int64(0); i < 100; i++ {
		seen[TupleHash(tup(i, 7))] = true
	}
	if len(seen) < 95 {
		t.Errorf("only %d distinct hashes over 100 tuples", len(seen))
	}
}

// TestEquiPartitionerMultiHotSpread is the multi-hot-key regression:
// with the historical consecutive-slot layout, two hot keys whose
// base slots are close alias their sub-grids onto the same reducers
// and re-concentrate load. The coordinated layout must (a) still give
// each grid exactly Cells distinct reducers, (b) place the two grids
// on disjoint reducer sets (8 + 8 cells fit in 16 slots exactly), and
// (c) balance the combined load strictly better than the consecutive
// layout.
func TestEquiPartitionerMultiHotSpread(t *testing.T) {
	const n = 16
	// Two hot keys with adjacent base slots (key % 16 = 4 and 5).
	k1, k2 := uint64(4+16*3), uint64(5+16*9)
	sp := Split{Rows: 4, Cols: 2}
	p := &EquiPartitioner{Splits: map[uint64]Split{k1: sp, k2: sp}}

	load := make([]int64, n)
	consecutive := make([]int64, n)
	gridSlots := map[uint64]map[int]bool{k1: {}, k2: {}}
	for _, key := range []uint64{k1, k2} {
		base := int(key % n)
		for i := 0; i < 400; i++ {
			tpl := tup(int64(i), int64(key))
			for _, s := range p.Route(nil, key, 0, tpl, n) {
				load[s]++
				gridSlots[key][s] = true
			}
			// Replay the pre-fix consecutive layout for the same tuple.
			row := int(TupleHash(tpl) % uint64(sp.Rows))
			for c := 0; c < sp.Cols; c++ {
				consecutive[(base+row*sp.Cols+c)%n]++
			}
		}
		for i := 0; i < 100; i++ {
			tpl := tup(int64(5000+i), int64(key))
			for _, s := range p.Route(nil, key, 1, tpl, n) {
				load[s]++
				gridSlots[key][s] = true
			}
			col := int(TupleHash(tpl) % uint64(sp.Cols))
			for r := 0; r < sp.Rows; r++ {
				consecutive[(base+r*sp.Cols+col)%n]++
			}
		}
	}
	for key, slots := range gridSlots {
		if len(slots) != sp.Cells() {
			t.Errorf("key %d grid occupies %d distinct reducers, want %d", key, len(slots), sp.Cells())
		}
	}
	for s := range gridSlots[k1] {
		if gridSlots[k2][s] {
			t.Errorf("grids overlap on reducer %d despite free capacity", s)
		}
	}
	ratio := func(loads []int64) float64 {
		var max, total int64
		for _, l := range loads {
			total += l
			if l > max {
				max = l
			}
		}
		return float64(max) * float64(len(loads)) / float64(total)
	}
	got, old := ratio(load), ratio(consecutive)
	if got >= old {
		t.Errorf("coordinated layout balance %.2f not better than consecutive %.2f", got, old)
	}
	if got > 1.5 {
		t.Errorf("two simultaneous hot keys still imbalanced: ratio %.2f", got)
	}
	t.Logf("multi-hot balance ratio: coordinated %.2f vs consecutive %.2f", got, old)
}

// TestGridLayoutOverCapacity: three 8-cell grids on 16 slots cannot be
// disjoint, but occupancy must stay even — no slot carries all three
// grids while another carries none.
func TestGridLayoutOverCapacity(t *testing.T) {
	const n = 16
	sp := Split{Rows: 4, Cols: 2}
	splits := map[uint64]Split{3: sp, 4: sp, 5: sp}
	layout := gridLayout(splits, n)
	occ := make([]int, n)
	for key, slots := range layout {
		if len(slots) != sp.Cells() {
			t.Fatalf("key %d: %d slots, want %d", key, len(slots), sp.Cells())
		}
		seen := map[int]bool{}
		for _, s := range slots {
			if s < 0 || s >= n || seen[s] {
				t.Fatalf("key %d: bad slot list %v", key, slots)
			}
			seen[s] = true
			occ[s]++
		}
	}
	for s, o := range occ {
		if o < 1 || o > 2 {
			t.Errorf("slot %d carries %d grids, want 1..2 (24 cells over 16 slots)", s, o)
		}
	}
}

// TestJobPlanJointRoundTrip: AddJoint/HotJoint key on the ordered
// column vector and are nil-safe.
func TestJobPlanJointRoundTrip(t *testing.T) {
	p := NewJobPlan(0)
	g := []HotGroup{{Values: []relation.Value{relation.Int(7), relation.Int(8)}, Count: 10, Frac: 0.4}}
	p.AddJoint("L", []string{"a", "b"}, g)
	if got := p.HotJoint("L", []string{"a", "b"}); len(got) != 1 || got[0].Frac != 0.4 {
		t.Errorf("HotJoint round trip failed: %v", got)
	}
	if got := p.HotJoint("L", []string{"b", "a"}); got != nil {
		t.Errorf("column order ignored: %v", got)
	}
	if got := p.HotJoint("R", []string{"a", "b"}); got != nil {
		t.Errorf("unknown relation returned %v", got)
	}
	var nilPlan *JobPlan
	if got := nilPlan.HotJoint("L", []string{"a"}); got != nil {
		t.Errorf("nil plan returned %v", got)
	}
	p.AddJoint("L", []string{"a", "b"}, nil) // no-op, must not clobber
	if got := p.HotJoint("L", []string{"a", "b"}); len(got) != 1 {
		t.Errorf("empty AddJoint clobbered existing groups: %v", got)
	}
}
