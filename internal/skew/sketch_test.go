package skew

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestSketchExactWhenUnderCapacity: with fewer distinct keys than
// counters the sketch is an exact frequency table.
func TestSketchExactWhenUnderCapacity(t *testing.T) {
	s := NewSketch(16)
	want := map[string]int64{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("k%d", rng.Intn(10))
		want[k]++
		s.Add(k)
	}
	if s.N() != 5000 {
		t.Fatalf("N = %d", s.N())
	}
	for k, w := range want {
		got, ok := s.Estimate(k)
		if !ok || got != w {
			t.Errorf("Estimate(%s) = %d,%v want %d", k, got, ok, w)
		}
	}
}

// TestSketchErrorBound: every reported count is a lower bound within
// n/(capacity+1) of the true count, on an adversarial-ish mixed stream.
func TestSketchErrorBound(t *testing.T) {
	const cap = 8
	s := NewSketch(cap)
	truth := map[string]int64{}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20000; i++ {
		var k string
		if rng.Intn(100) < 40 {
			k = fmt.Sprintf("hot%d", rng.Intn(2)) // two heavy keys, ~20% each
		} else {
			k = fmt.Sprintf("cold%d", rng.Intn(5000))
		}
		truth[k]++
		s.Add(k)
	}
	bound := s.ErrorBound()
	for _, e := range s.Entries() {
		tr := truth[e.Key]
		if e.Count > tr {
			t.Errorf("key %s: sketch count %d exceeds true %d", e.Key, e.Count, tr)
		}
		if tr-e.Count > bound {
			t.Errorf("key %s: undercount %d exceeds bound %d", e.Key, tr-e.Count, bound)
		}
	}
	for _, k := range []string{"hot0", "hot1"} {
		if _, ok := s.Estimate(k); !ok {
			t.Errorf("heavy key %s evicted (true count %d, n %d)", k, truth[k], s.N())
		}
	}
}

// TestSketchTopKRecallZipf: on Zipf-distributed draws the sketch's top
// entries contain the true top keys.
func TestSketchTopKRecallZipf(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	z := rand.NewZipf(rng, 1.2, 1, 9999)
	s := NewSketch(64)
	truth := map[uint64]int64{}
	for i := 0; i < 30000; i++ {
		v := z.Uint64()
		truth[v]++
		s.Add(fmt.Sprintf("%d", v))
	}
	// Zipf(1.2) over [0,9999]: keys 0..4 are the true top 5.
	got := map[string]bool{}
	for i, e := range s.Entries() {
		if i >= 10 {
			break
		}
		got[e.Key] = true
	}
	for v := uint64(0); v < 5; v++ {
		if !got[fmt.Sprintf("%d", v)] {
			t.Errorf("true heavy key %d (count %d) missing from sketch top 10", v, truth[v])
		}
	}
}
