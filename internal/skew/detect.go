package skew

import (
	"encoding/binary"
	"math"
	"sort"

	"repro/internal/relation"
)

// countKey is the map key heavy-hitter counting buckets a value under.
// Interned strings (relation.InternedStr) count by their fixed-width
// dictionary code instead of the full string bytes: within one column
// every value shares the same dictionary, so the code is a unique and
// allocation-cheap stand-in. The 0x02 tag byte keeps code keys
// disjoint from the textual keys of un-interned values in other
// columns of a joint report (a raw string starting with 0x02 would
// need the identical 9-byte layout to collide, and per column the
// representation is uniform anyway).
func countKey(v relation.Value) string {
	if c, ok := v.DictCode(); ok {
		var b [9]byte
		b[0] = 0x02
		binary.LittleEndian.PutUint64(b[1:], uint64(c))
		return string(b[:])
	}
	return v.String()
}

// Options tune heavy-hitter detection.
type Options struct {
	// MaxKeys bounds the heavy hitters retained per column (default 8).
	MaxKeys int
	// MinFrac is the smallest estimated tuple fraction reported
	// (default 0.05): values below it cannot overload a reducer at any
	// realistic parallelism.
	MinFrac float64
	// ExactThreshold: relations with at most this many tuples are
	// counted exactly instead of sketched from the sample (default
	// 4096).
	ExactThreshold int
	// SketchCapacity sets the Misra–Gries counter budget for the
	// sampled path (default 64); the undercount is then at most
	// sample/65, far below MinFrac × sample.
	SketchCapacity int
}

// DefaultOptions returns the detection defaults.
func DefaultOptions() Options {
	return Options{MaxKeys: 8, MinFrac: 0.05, ExactThreshold: 4096, SketchCapacity: 64}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.MaxKeys <= 0 {
		o.MaxKeys = d.MaxKeys
	}
	if o.MinFrac <= 0 {
		o.MinFrac = d.MinFrac
	}
	if o.ExactThreshold <= 0 {
		o.ExactThreshold = d.ExactThreshold
	}
	if o.SketchCapacity <= 0 {
		o.SketchCapacity = d.SketchCapacity
	}
	return o
}

// AnnotateCatalog fills the HotKeys report of every table in the
// catalog for which a relation is supplied (matched by name). Tables
// without a matching relation are sketched from their retained sample
// rows alone.
func AnnotateCatalog(cat *relation.Catalog, rels []*relation.Relation, opts Options) {
	byName := make(map[string]*relation.Relation, len(rels))
	for _, r := range rels {
		if r != nil {
			byName[r.Name] = r
		}
	}
	for name, ts := range cat.Tables {
		AnnotateTable(ts, byName[name], opts)
	}
}

// AnnotateTable computes ts.HotKeys: per column, the values estimated
// to carry at least MinFrac of the relation's tuples, ordered by
// estimated count descending. Small relations (and any relation passed
// with r != nil and at most ExactThreshold tuples) are counted
// exactly; larger ones run the Misra–Gries sketch over the seeded
// statistics sample, so the report is deterministic across runs.
func AnnotateTable(ts *relation.TableStats, r *relation.Relation, opts Options) {
	opts = opts.withDefaults()
	ts.HotKeys = make(map[string][]relation.HotKey, len(ts.ColumnOrder()))
	var rows []relation.Tuple
	exact := false
	if r != nil && r.Cardinality() <= opts.ExactThreshold {
		rows, exact = r.Tuples, true
	} else {
		rows = ts.SampleRows
	}
	for ci, col := range ts.ColumnOrder() {
		ts.HotKeys[col] = detectColumn(rows, ci, ts.Cardinality, exact, opts)
	}
}

// HotGroup is one joint heavy hitter over a column set: a value
// combination estimated to carry at least MinFrac of the relation's
// tuples. Values are ordered as the detection columns were given.
type HotGroup struct {
	Values []relation.Value
	Count  int64   // estimated occurrences in the full relation
	Frac   float64 // estimated fraction of tuples carrying Values
}

// JointHotKeys detects joint heavy hitters over the named columns of
// ts — the composite-key analogue of AnnotateTable's per-column
// report, computed on demand for the column sets the planner joins
// on. Per-column reports cannot see composite skew: two individually
// near-uniform columns can still share one dominant value combination
// that overloads the reducer hashing their composite key.
//
// When r is non-nil with at most ExactThreshold tuples — or the
// retained sample already holds the whole relation — combinations are
// counted exactly; otherwise the Misra–Gries sketch runs over the
// seeded sample rows, so the report is deterministic across runs
// either way. Unknown column names yield nil.
func JointHotKeys(ts *relation.TableStats, r *relation.Relation, cols []string, opts Options) []HotGroup {
	opts = opts.withDefaults()
	if ts == nil || len(cols) == 0 {
		return nil
	}
	ords := make([]int, len(cols))
	for i, name := range cols {
		ords[i] = -1
		for j, n := range ts.ColumnOrder() {
			if n == name {
				ords[i] = j
				break
			}
		}
		if ords[i] < 0 {
			return nil
		}
	}
	rows, exact := ts.SampleRows, len(ts.SampleRows) == ts.Cardinality
	if r != nil && r.Cardinality() <= opts.ExactThreshold {
		rows, exact = r.Tuples, true
	}
	if len(rows) == 0 || ts.Cardinality <= 0 {
		return nil
	}
	var kb []byte
	keyOf := func(t relation.Tuple) (string, bool) {
		kb = kb[:0]
		for _, ci := range ords {
			if ci >= len(t) || t[ci].IsNull() {
				return "", false
			}
			kb = append(kb, countKey(t[ci])...)
			kb = append(kb, 0x1f)
		}
		return string(kb), true
	}
	valuesOf := func(t relation.Tuple) []relation.Value {
		vs := make([]relation.Value, len(ords))
		for i, ci := range ords {
			vs[i] = t[ci]
		}
		return vs
	}
	type acc struct {
		vs []relation.Value
		n  int64
	}
	counts := make(map[string]*acc)
	if exact {
		for _, t := range rows {
			k, ok := keyOf(t)
			if !ok {
				continue
			}
			if a, ok := counts[k]; ok {
				a.n++
			} else {
				counts[k] = &acc{vs: valuesOf(t), n: 1}
			}
		}
	} else {
		sk := NewSketch(opts.SketchCapacity)
		rep := make(map[string][]relation.Value, opts.SketchCapacity)
		for _, t := range rows {
			k, ok := keyOf(t)
			if !ok {
				continue
			}
			if _, seen := rep[k]; !seen {
				rep[k] = valuesOf(t)
			}
			sk.Add(k)
		}
		for _, e := range sk.Entries() {
			counts[e.Key] = &acc{vs: rep[e.Key], n: e.Count}
		}
	}
	n := int64(len(rows))
	var hot []HotGroup
	for _, a := range counts {
		frac := float64(a.n) / float64(n)
		if frac < opts.MinFrac || a.n < 2 {
			continue
		}
		est := a.n
		if !exact {
			est = int64(math.Round(frac * float64(ts.Cardinality)))
		}
		hot = append(hot, HotGroup{Values: a.vs, Count: est, Frac: frac})
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].Count != hot[j].Count {
			return hot[i].Count > hot[j].Count
		}
		return groupKeyString(hot[i].Values) < groupKeyString(hot[j].Values)
	})
	if len(hot) > opts.MaxKeys {
		hot = hot[:opts.MaxKeys]
	}
	return hot
}

// groupKeyString is the canonical tie-break string of a value vector.
func groupKeyString(vs []relation.Value) string {
	var b []byte
	for _, v := range vs {
		b = append(b, v.String()...)
		b = append(b, 0x1f)
	}
	return string(b)
}

// detectColumn finds the heavy hitters of column ci over rows. When
// exact is false, rows are a uniform sample of a relation with `card`
// tuples and counts are scaled up accordingly.
func detectColumn(rows []relation.Tuple, ci, card int, exact bool, opts Options) []relation.HotKey {
	if len(rows) == 0 || card <= 0 {
		return nil
	}
	type acc struct {
		v relation.Value
		n int64
	}
	counts := make(map[string]*acc)
	if exact {
		for _, t := range rows {
			if ci >= len(t) || t[ci].IsNull() {
				continue
			}
			k := countKey(t[ci])
			if a, ok := counts[k]; ok {
				a.n++
			} else {
				counts[k] = &acc{v: t[ci], n: 1}
			}
		}
	} else {
		sk := NewSketch(opts.SketchCapacity)
		rep := make(map[string]relation.Value, opts.SketchCapacity)
		for _, t := range rows {
			if ci >= len(t) || t[ci].IsNull() {
				continue
			}
			k := countKey(t[ci])
			if _, seen := rep[k]; !seen {
				rep[k] = t[ci]
			}
			sk.Add(k)
		}
		for _, e := range sk.Entries() {
			counts[e.Key] = &acc{v: rep[e.Key], n: e.Count}
		}
	}
	n := int64(len(rows))
	var hot []relation.HotKey
	for _, a := range counts {
		frac := float64(a.n) / float64(n)
		if frac < opts.MinFrac || a.n < 2 {
			continue
		}
		est := a.n
		if !exact {
			est = int64(math.Round(frac * float64(card)))
		}
		hot = append(hot, relation.HotKey{Value: a.v, Count: est, Frac: frac})
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].Count != hot[j].Count {
			return hot[i].Count > hot[j].Count
		}
		return hot[i].Value.String() < hot[j].Value.String()
	})
	if len(hot) > opts.MaxKeys {
		hot = hot[:opts.MaxKeys]
	}
	if len(hot) == 0 {
		// Non-nil marks "measured, found uniform" — distinct from a
		// column that was never analyzed.
		return []relation.HotKey{}
	}
	return hot
}
