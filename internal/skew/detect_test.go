package skew

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
)

func zipfRel(name string, n int, s float64, seed int64) *relation.Relation {
	r := relation.New(name, relation.MustSchema(
		relation.Column{Name: "k", Kind: relation.KindInt},
		relation.Column{Name: "v", Kind: relation.KindInt},
	))
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, 999)
	for i := 0; i < n; i++ {
		r.MustAppend(relation.Tuple{
			relation.Int(int64(z.Uint64())),
			relation.Int(int64(rng.Intn(1000))),
		})
	}
	return r
}

// TestAnnotateExactVsSampled: the sketch-over-sample path agrees with
// the exact pass on which keys are heavy and roughly on their
// fractions.
func TestAnnotateExactVsSampled(t *testing.T) {
	r := zipfRel("Z", 3000, 1.2, 5)
	opts := DefaultOptions()

	exactTS := relation.Analyze(r, 3000, rand.New(rand.NewSource(1)))
	AnnotateTable(exactTS, r, opts) // cardinality ≤ ExactThreshold → exact pass
	sampledTS := relation.Analyze(r, 600, rand.New(rand.NewSource(1)))
	AnnotateTable(sampledTS, nil, opts) // no relation → sketch over sample

	exact, sampled := exactTS.HotKeys["k"], sampledTS.HotKeys["k"]
	if len(exact) == 0 || len(sampled) == 0 {
		t.Fatalf("no hot keys detected: exact %d sampled %d", len(exact), len(sampled))
	}
	// The top key must agree, and its fraction estimate must be close.
	if exact[0].Value.String() != sampled[0].Value.String() {
		t.Errorf("top key mismatch: exact %v sampled %v", exact[0].Value, sampled[0].Value)
	}
	if d := exact[0].Frac - sampled[0].Frac; d > 0.08 || d < -0.08 {
		t.Errorf("top-key fraction: exact %.3f vs sampled %.3f", exact[0].Frac, sampled[0].Frac)
	}
	// Every exact heavy hitter above 1.5× MinFrac should be recalled by
	// the sampled pass.
	got := map[string]bool{}
	for _, hk := range sampled {
		got[hk.Value.String()] = true
	}
	for _, hk := range exact {
		if hk.Frac >= 1.5*opts.MinFrac && !got[hk.Value.String()] {
			t.Errorf("exact heavy hitter %v (frac %.3f) missed by sampled pass", hk.Value, hk.Frac)
		}
	}
}

// TestAnnotateUniformColumn: a near-uniform column yields a measured-
// but-empty report, not nil.
func TestAnnotateUniformColumn(t *testing.T) {
	r := zipfRel("U", 2000, 1.2, 9)
	ts := relation.Analyze(r, 2000, nil)
	AnnotateTable(ts, r, DefaultOptions())
	if ts.HotKeys == nil {
		t.Fatal("HotKeys nil after annotation")
	}
	v, ok := ts.HotKeys["v"]
	if !ok {
		t.Fatal("uniform column v has no report entry")
	}
	if len(v) != 0 {
		t.Errorf("uniform column v reported hot keys: %v", v)
	}
}

// TestAnnotateDeterministic: two annotations from identically seeded
// analyses produce identical reports.
func TestAnnotateDeterministic(t *testing.T) {
	r := zipfRel("D", 9000, 1.2, 13) // above ExactThreshold → sketch path
	a := relation.Analyze(r, 500, rand.New(rand.NewSource(4)))
	b := relation.Analyze(r, 500, rand.New(rand.NewSource(4)))
	opts := DefaultOptions()
	AnnotateTable(a, r, opts)
	AnnotateTable(b, r, opts)
	ha, hb := a.HotKeys["k"], b.HotKeys["k"]
	if len(ha) != len(hb) {
		t.Fatalf("report lengths differ: %d vs %d", len(ha), len(hb))
	}
	for i := range ha {
		if ha[i] != hb[i] {
			t.Errorf("entry %d differs: %+v vs %+v", i, ha[i], hb[i])
		}
	}
}
