package skew

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
)

func zipfRel(name string, n int, s float64, seed int64) *relation.Relation {
	r := relation.New(name, relation.MustSchema(
		relation.Column{Name: "k", Kind: relation.KindInt},
		relation.Column{Name: "v", Kind: relation.KindInt},
	))
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, 999)
	for i := 0; i < n; i++ {
		r.MustAppend(relation.Tuple{
			relation.Int(int64(z.Uint64())),
			relation.Int(int64(rng.Intn(1000))),
		})
	}
	return r
}

// TestAnnotateExactVsSampled: the sketch-over-sample path agrees with
// the exact pass on which keys are heavy and roughly on their
// fractions.
func TestAnnotateExactVsSampled(t *testing.T) {
	r := zipfRel("Z", 3000, 1.2, 5)
	opts := DefaultOptions()

	exactTS := relation.Analyze(r, 3000, rand.New(rand.NewSource(1)))
	AnnotateTable(exactTS, r, opts) // cardinality ≤ ExactThreshold → exact pass
	sampledTS := relation.Analyze(r, 600, rand.New(rand.NewSource(1)))
	AnnotateTable(sampledTS, nil, opts) // no relation → sketch over sample

	exact, sampled := exactTS.HotKeys["k"], sampledTS.HotKeys["k"]
	if len(exact) == 0 || len(sampled) == 0 {
		t.Fatalf("no hot keys detected: exact %d sampled %d", len(exact), len(sampled))
	}
	// The top key must agree, and its fraction estimate must be close.
	if exact[0].Value.String() != sampled[0].Value.String() {
		t.Errorf("top key mismatch: exact %v sampled %v", exact[0].Value, sampled[0].Value)
	}
	if d := exact[0].Frac - sampled[0].Frac; d > 0.08 || d < -0.08 {
		t.Errorf("top-key fraction: exact %.3f vs sampled %.3f", exact[0].Frac, sampled[0].Frac)
	}
	// Every exact heavy hitter above 1.5× MinFrac should be recalled by
	// the sampled pass.
	got := map[string]bool{}
	for _, hk := range sampled {
		got[hk.Value.String()] = true
	}
	for _, hk := range exact {
		if hk.Frac >= 1.5*opts.MinFrac && !got[hk.Value.String()] {
			t.Errorf("exact heavy hitter %v (frac %.3f) missed by sampled pass", hk.Value, hk.Frac)
		}
	}
}

// TestAnnotateUniformColumn: a near-uniform column yields a measured-
// but-empty report, not nil.
func TestAnnotateUniformColumn(t *testing.T) {
	r := zipfRel("U", 2000, 1.2, 9)
	ts := relation.Analyze(r, 2000, nil)
	AnnotateTable(ts, r, DefaultOptions())
	if ts.HotKeys == nil {
		t.Fatal("HotKeys nil after annotation")
	}
	v, ok := ts.HotKeys["v"]
	if !ok {
		t.Fatal("uniform column v has no report entry")
	}
	if len(v) != 0 {
		t.Errorf("uniform column v reported hot keys: %v", v)
	}
}

// TestAnnotateDeterministic: two annotations from identically seeded
// analyses produce identical reports.
func TestAnnotateDeterministic(t *testing.T) {
	r := zipfRel("D", 9000, 1.2, 13) // above ExactThreshold → sketch path
	a := relation.Analyze(r, 500, rand.New(rand.NewSource(4)))
	b := relation.Analyze(r, 500, rand.New(rand.NewSource(4)))
	opts := DefaultOptions()
	AnnotateTable(a, r, opts)
	AnnotateTable(b, r, opts)
	ha, hb := a.HotKeys["k"], b.HotKeys["k"]
	if len(ha) != len(hb) {
		t.Fatalf("report lengths differ: %d vs %d", len(ha), len(hb))
	}
	for i := range ha {
		if ha[i] != hb[i] {
			t.Errorf("entry %d differs: %+v vs %+v", i, ha[i], hb[i])
		}
	}
}

// compositeRel builds a relation with a hot (k1, k2) combination
// carrying hotFrac of the tuples; the remaining tuples draw both key
// columns uniformly.
func compositeRel(name string, n int, hotFrac float64, seed int64) *relation.Relation {
	r := relation.New(name, relation.MustSchema(
		relation.Column{Name: "k1", Kind: relation.KindInt},
		relation.Column{Name: "k2", Kind: relation.KindInt},
		relation.Column{Name: "v", Kind: relation.KindInt},
	))
	rng := rand.New(rand.NewSource(seed))
	hot := int(float64(n) * hotFrac)
	for i := 0; i < n; i++ {
		k1, k2 := int64(7), int64(7)
		if i >= hot {
			k1, k2 = int64(rng.Intn(50)), int64(rng.Intn(50))
		}
		r.MustAppend(relation.Tuple{
			relation.Int(k1), relation.Int(k2), relation.Int(int64(rng.Intn(1000))),
		})
	}
	return r
}

// TestJointHotKeysExact: the exact pass finds a hot value combination
// with the right fraction, in the requested column order.
func TestJointHotKeysExact(t *testing.T) {
	r := compositeRel("C", 2000, 0.3, 11)
	ts := relation.Analyze(r, 2000, rand.New(rand.NewSource(1)))
	hot := JointHotKeys(ts, r, []string{"k1", "k2"}, DefaultOptions())
	if len(hot) == 0 {
		t.Fatal("no joint heavy hitter on a 30% combination")
	}
	top := hot[0]
	if len(top.Values) != 2 || top.Values[0].String() != "7" || top.Values[1].String() != "7" {
		t.Fatalf("top group = %v, want (7, 7)", top.Values)
	}
	if top.Frac < 0.25 || top.Frac > 0.35 {
		t.Errorf("top group frac = %.3f, want ~0.3", top.Frac)
	}
	// Column order is preserved: asking (k2, k1) flips the vector.
	flipped := JointHotKeys(ts, r, []string{"k2", "k1"}, DefaultOptions())
	if len(flipped) == 0 || len(flipped[0].Values) != 2 {
		t.Fatal("flipped column order lost the group")
	}
}

// TestJointHotKeysSampled: the sketch-over-sample path recalls the
// dominant combination with a close fraction estimate.
func TestJointHotKeysSampled(t *testing.T) {
	r := compositeRel("C", 20000, 0.25, 12)
	ts := relation.Analyze(r, 800, rand.New(rand.NewSource(1)))
	hot := JointHotKeys(ts, nil, []string{"k1", "k2"}, DefaultOptions())
	if len(hot) == 0 {
		t.Fatal("sampled pass missed a 25% combination")
	}
	if d := hot[0].Frac - 0.25; d > 0.08 || d < -0.08 {
		t.Errorf("sampled frac = %.3f, want ~0.25", hot[0].Frac)
	}
	if hot[0].Count < 1000 {
		t.Errorf("scaled count = %d, want O(5000)", hot[0].Count)
	}
}

// TestJointHotKeysUnknownColumn: unknown names yield nil rather than
// a bogus report.
func TestJointHotKeysUnknownColumn(t *testing.T) {
	r := compositeRel("C", 100, 0.5, 13)
	ts := relation.Analyze(r, 100, rand.New(rand.NewSource(1)))
	if hot := JointHotKeys(ts, r, []string{"k1", "nope"}, DefaultOptions()); hot != nil {
		t.Errorf("unknown column produced %v", hot)
	}
	if hot := JointHotKeys(ts, r, nil, DefaultOptions()); hot != nil {
		t.Errorf("empty column set produced %v", hot)
	}
}

// TestJointHotKeysUniform: a relation without a dominant combination
// reports nothing.
func TestJointHotKeysUniform(t *testing.T) {
	r := compositeRel("U", 2000, 0, 14) // all-uniform keys
	ts := relation.Analyze(r, 2000, rand.New(rand.NewSource(1)))
	if hot := JointHotKeys(ts, r, []string{"k1", "k2"}, DefaultOptions()); len(hot) != 0 {
		t.Errorf("uniform data produced joint heavy hitters: %v", hot)
	}
}
