package dfs

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/relation"
)

// sealedProbeFile writes a multi-page payload and returns the sealed
// file plus its bytes.
func sealedProbeFile(t *testing.T, store *BlockStore) ([]byte, *blockFile) {
	t.Helper()
	payload := make([]byte, 2*DefaultPageSize+333)
	rng := rand.New(rand.NewSource(3))
	for i := range payload {
		payload[i] = byte(rng.Intn(256))
	}
	f, err := store.CreateSpillFile()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := f.Seal(); err != nil {
		t.Fatal(err)
	}
	return payload, f.(*blockFile)
}

// TestPageChecksumFailover: a transient page corruption (one bad disk
// read) is detected by the page CRC, absorbed by a replica re-read, and
// counted in both the store stats and the attached obs registry.
func TestPageChecksumFailover(t *testing.T) {
	store, err := NewBlockStore("", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	o := &obs.Obs{Metrics: obs.NewRegistry()}
	store.AttachObs(o)
	payload, f := sealedProbeFile(t, store)

	store.corruptFill = func(file int, page int64, attempt int, data []byte) {
		if page == 1 && attempt == 1 {
			data[17] ^= 0xFF
		}
	}
	got := make([]byte, len(payload))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("read with transient corruption failed: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("failover returned wrong bytes")
	}
	cs, fo := store.IntegrityStats()
	if cs != 1 || fo != 1 {
		t.Errorf("IntegrityStats = (%d, %d), want (1, 1)", cs, fo)
	}
	if n := o.Counter("dfs/checksum_failures").Value(); n != 1 {
		t.Errorf("obs checksum counter = %d", n)
	}
	if n := o.Counter("dfs/failover_reads").Value(); n != 1 {
		t.Errorf("obs failover counter = %d", n)
	}
}

// TestPageChecksumExhaustsReplicas: persistent corruption (every
// replica read bad) must surface an error after DFSReplication reads,
// never silently decode bad bytes.
func TestPageChecksumExhaustsReplicas(t *testing.T) {
	store, err := NewBlockStore("", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	store.SetReplication(3)
	payload, f := sealedProbeFile(t, store)

	store.corruptFill = func(file int, page int64, attempt int, data []byte) {
		if page == 0 {
			data[0] ^= 0xFF
		}
	}
	_, err = f.ReadAt(make([]byte, len(payload)), 0)
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("persistent corruption not surfaced: %v", err)
	}
	cs, fo := store.IntegrityStats()
	if cs != 3 || fo != 2 {
		t.Errorf("IntegrityStats = (%d, %d), want (3, 2)", cs, fo)
	}
}

// TestCheckpointStoreRoundTrip: a saved intermediate loads back
// bit-identically (content hash, multiplier, dictionaries), missing
// keys report ok=false, and Drop releases a plan's entries.
func TestCheckpointStoreRoundTrip(t *testing.T) {
	store, err := NewBlockStore("", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	cp := NewCheckpointStore(store)

	r := chunkProbeRelation(500)
	r.VolumeMultiplier = 2.5
	if err := cp.SaveIntermediate("plan-a", "j1", r); err != nil {
		t.Fatal(err)
	}
	got, ok, err := cp.LoadIntermediate("plan-a", "j1")
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if relation.ContentHash(got) != relation.ContentHash(r) {
		t.Fatal("restored relation differs")
	}
	if got.VolumeMultiplier != 2.5 || got.Name != r.Name {
		t.Fatalf("metadata lost: mult=%v name=%q", got.VolumeMultiplier, got.Name)
	}

	if _, ok, err := cp.LoadIntermediate("plan-a", "nope"); ok || err != nil {
		t.Fatalf("missing key: ok=%v err=%v", ok, err)
	}
	// Overwrite replaces (and releases) the previous checkpoint.
	if err := cp.SaveIntermediate("plan-a", "j1", chunkProbeRelation(10)); err != nil {
		t.Fatal(err)
	}
	got, _, err = cp.LoadIntermediate("plan-a", "j1")
	if err != nil || got.Cardinality() != 10 {
		t.Fatalf("overwrite: n=%d err=%v", got.Cardinality(), err)
	}
	cp.Drop("plan-a")
	if cp.Len() != 0 {
		t.Errorf("Drop left %d entries", cp.Len())
	}
	if _, ok, _ := cp.LoadIntermediate("plan-a", "j1"); ok {
		t.Error("dropped checkpoint still loads")
	}
}
