package dfs

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"repro/internal/mr"
	"repro/internal/relation"
)

// LoadMethod identifies one of the Fig. 11 loading paths.
type LoadMethod uint8

// The three loading paths of Fig. 11.
const (
	LoadPlain LoadMethod = iota // plain Hadoop upload
	LoadHive                    // Hive warehouse load
	LoadOurs                    // upload + sampling + index build
)

// String names the method as plotted in Fig. 11.
func (m LoadMethod) String() string {
	switch m {
	case LoadPlain:
		return "Plain Hadoop Uploading"
	case LoadHive:
		return "Hive"
	case LoadOurs:
		return "Our Method"
	default:
		return fmt.Sprintf("method(%d)", uint8(m))
	}
}

// File is a stored relation with its block layout and (for LoadOurs)
// the statistics and index gathered at load time.
type File struct {
	Name     string
	Rel      *relation.Relation
	Blocks   int
	Replicas int
	Bytes    int64 // modeled bytes, pre-replication
	Method   LoadMethod
	Stats    *relation.TableStats // LoadOurs only

	// Placement maps each block ordinal to the DataNode ordinals
	// holding its replicas (Placement[b][0] is the primary). It is a
	// pure function of the store's configuration and the upload
	// sequence — see the determinism contract in the package doc.
	Placement [][]int
}

// Store is the simulated HDFS namespace.
type Store struct {
	cfg   mr.Config
	nodes int
	files map[string]*File
	place *rand.Rand // block-placement RNG; seeded from cfg + nodes
}

// placementSeed derives the block-placement RNG seed from the store's
// configuration: the fields that shape the block layout (block size,
// replication factor) plus the cluster geometry. Two stores built from
// equal configurations place blocks identically; the seed never comes
// from wall clock or a global RNG.
func placementSeed(cfg mr.Config, nodes int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "dfs-placement|%d|%d|%d", cfg.BlockSizeMB, cfg.DFSReplication, nodes)
	return int64(h.Sum64())
}

// NewStore creates a store over the cluster described by cfg; nodes is
// the DataNode count (the paper's testbed has 12 workers + 1 master).
func NewStore(cfg mr.Config, nodes int) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nodes < 1 {
		return nil, fmt.Errorf("dfs: need >= 1 node")
	}
	return &Store{
		cfg:   cfg,
		nodes: nodes,
		files: make(map[string]*File),
		place: rand.New(rand.NewSource(placementSeed(cfg, nodes))),
	}, nil
}

// placeBlocks assigns replica nodes to each of n blocks, HDFS-style:
// the primary lands on a pseudo-random node drawn from the store's
// seeded placement RNG, and further replicas on the following distinct
// nodes. Replication is clamped to the node count — more copies than
// nodes adds nothing.
func (s *Store) placeBlocks(n, repl int) [][]int {
	if repl > s.nodes {
		repl = s.nodes
	}
	placement := make([][]int, n)
	for b := range placement {
		primary := s.place.Intn(s.nodes)
		nodes := make([]int, repl)
		for j := range nodes {
			nodes[j] = (primary + j) % s.nodes
		}
		placement[b] = nodes
	}
	return placement
}

// LoadReport describes one completed load.
type LoadReport struct {
	Method  LoadMethod
	Bytes   int64
	Blocks  int
	Seconds float64
}

// Upload stores the relation using the given method and returns the
// load-time report. Uploads run in parallel across DataNodes ("the
// uploading is performed by each DataNode from their local disk"),
// writing Replicas copies; the pipeline is write-rate bound.
func (s *Store) Upload(r *relation.Relation, method LoadMethod, sampleSize int, seed int64) (*LoadReport, error) {
	if r == nil {
		return nil, fmt.Errorf("dfs: nil relation")
	}
	if _, dup := s.files[r.Name]; dup {
		return nil, fmt.Errorf("dfs: file %q exists", r.Name)
	}
	bytes := r.ModeledSize()
	blockBytes := int64(s.cfg.BlockSizeMB) * 1e6
	blocks := int((bytes + blockBytes - 1) / blockBytes)
	if blocks < 1 {
		blocks = 1
	}
	repl := s.cfg.DFSReplication
	if repl < 1 {
		repl = 1
	}

	writeBps := s.cfg.DiskWriteMBps * 1e6
	readBps := s.cfg.DiskReadMBps * 1e6
	// Base upload: each node reads its local shard and writes repl
	// copies through the replication pipeline (replica 2 and 3 are
	// written concurrently with the first on other nodes; charge the
	// pipeline's bottleneck: one read + one write per node, plus a
	// replication overhead of (repl-1) network-priced writes spread
	// over the cluster).
	perNode := float64(bytes) / float64(s.nodes)
	base := perNode/readBps + perNode/writeBps
	replOverhead := perNode * float64(repl-1) / (s.cfg.NetworkMBps * 1e6)
	seconds := base + replOverhead

	file := &File{
		Name: r.Name, Rel: r, Blocks: blocks, Replicas: repl,
		Bytes: bytes, Method: method,
		Placement: s.placeBlocks(blocks, repl),
	}
	switch method {
	case LoadPlain:
		// Nothing extra.
	case LoadHive:
		// Hive parses and validates every record into its warehouse
		// format: a CPU-bound extra 0.6 read-pass across the nodes.
		seconds += 0.6 * float64(bytes) / readBps / float64(s.nodes)
	case LoadOurs:
		// Sampling pass: read a bounded sample (cheap) + histogram and
		// index build, then write the (small) index back.
		stats := relation.Analyze(r, sampleSize, rand.New(rand.NewSource(seed)))
		file.Stats = stats
		sampleBytes := float64(sampleSize) * stats.AvgTuple
		if sampleBytes > float64(bytes) {
			sampleBytes = float64(bytes)
		}
		// Sampling reads a bounded subset of blocks, and the index
		// build adds a 0.45 read-pass across the nodes — a little more
		// than plain uploading, converging towards Hive's cost at
		// large volumes (§6.3, Fig. 11).
		seconds += sampleBytes/readBps + 0.45*float64(bytes)/readBps/float64(s.nodes)
		indexBytes := float64(r.Schema.Len()) * 1024
		seconds += indexBytes / writeBps
	default:
		return nil, fmt.Errorf("dfs: unknown load method %v", method)
	}
	s.files[r.Name] = file
	return &LoadReport{Method: method, Bytes: bytes, Blocks: blocks, Seconds: seconds}, nil
}

// File returns a stored file.
func (s *Store) File(name string) (*File, error) {
	f, ok := s.files[name]
	if !ok {
		return nil, fmt.Errorf("dfs: no file %q", name)
	}
	return f, nil
}

// Len returns the number of stored files.
func (s *Store) Len() int { return len(s.files) }

// TotalStoredBytes returns modeled bytes including replication.
func (s *Store) TotalStoredBytes() int64 {
	var n int64
	for _, f := range s.files {
		n += f.Bytes * int64(f.Replicas)
	}
	return n
}
