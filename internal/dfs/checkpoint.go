package dfs

import (
	"fmt"
	"sync"

	"repro/internal/relation"
)

// CheckpointStore persists a plan's completed intermediate relations in
// a BlockStore so a failed cascade can resume without re-executing the
// jobs that already finished. It satisfies internal/core's Checkpointer
// contract structurally (core never imports dfs, dfs never imports
// core): SaveIntermediate stores the relation as chunk-framed columnar
// blocks — page-checksummed like every block in the store — and
// LoadIntermediate rebuilds it bit-identically.
//
// Checkpoints are keyed by (plan, job). Saving the same key again
// replaces the previous checkpoint and releases its blocks. All methods
// are safe for concurrent use.
type CheckpointStore struct {
	store *BlockStore

	mu      sync.Mutex
	entries map[string]checkpointEntry
}

type checkpointEntry struct {
	cf   *ChunkedFile
	mult float64
}

// NewCheckpointStore wraps s as a checkpoint sink. The caller keeps
// ownership of s (Close releases the checkpoints with everything else).
func NewCheckpointStore(s *BlockStore) *CheckpointStore {
	return &CheckpointStore{store: s, entries: make(map[string]checkpointEntry)}
}

func checkpointKey(plan, job string) string { return plan + "\x00" + job }

// SaveIntermediate persists job's output relation under (plan, job).
func (c *CheckpointStore) SaveIntermediate(plan, job string, r *relation.Relation) error {
	cf, err := c.store.WriteChunked(r, 0)
	if err != nil {
		return fmt.Errorf("dfs: checkpoint %s/%s: %w", plan, job, err)
	}
	key := checkpointKey(plan, job)
	c.mu.Lock()
	prev, had := c.entries[key]
	c.entries[key] = checkpointEntry{cf: cf, mult: r.VolumeMultiplier}
	c.mu.Unlock()
	if had {
		prev.cf.Release()
	}
	return nil
}

// LoadIntermediate rebuilds the checkpointed relation for (plan, job),
// reporting ok=false when none was saved. The returned relation is a
// fresh materialisation — callers own it outright.
func (c *CheckpointStore) LoadIntermediate(plan, job string) (*relation.Relation, bool, error) {
	c.mu.Lock()
	e, ok := c.entries[checkpointKey(plan, job)]
	c.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	r := e.cf.Shell(e.mult)
	if n := e.cf.Rows(); n > 0 {
		r.Tuples = make([]relation.Tuple, 0, n)
	}
	for i := 0; i < e.cf.NumChunks(); i++ {
		ch, err := e.cf.OpenChunk(i)
		if err != nil {
			return nil, false, fmt.Errorf("dfs: checkpoint %s/%s: %w", plan, job, err)
		}
		for ri := 0; ri < ch.Rows(); ri++ {
			r.Tuples = append(r.Tuples, ch.Row(ri))
		}
	}
	return r, true, nil
}

// Len reports how many checkpoints are held.
func (c *CheckpointStore) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Drop releases every checkpoint of the plan (called when a plan
// completes and its intermediates are no longer needed for recovery).
func (c *CheckpointStore) Drop(plan string) {
	prefix := plan + "\x00"
	c.mu.Lock()
	var victims []*ChunkedFile
	for k, e := range c.entries {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			victims = append(victims, e.cf)
			delete(c.entries, k)
		}
	}
	c.mu.Unlock()
	for _, cf := range victims {
		cf.Release()
	}
}
