// Package dfs is the storage layer under the MapReduce runtime. It has
// two halves: a simulated HDFS namespace that prices data loading, and
// a real block store that holds bytes on disk so executions can run
// out of core.
//
// # Simulated namespace
//
// Store models block-based storage with replication and the three
// data-loading paths compared in Fig. 11 of the paper — plain Hadoop
// upload, Hive-style load (schema validation into the warehouse), and
// the paper's method, which additionally runs the sampling pass and
// builds the per-attribute index structures the optimizer later
// exploits ("In addition to simply upload the data to HDFS, we run a
// sampling algorithm to collect rough data statistics and build the
// index structure", §6.3). Upload assigns every block a replica
// placement, HDFS-style: a pseudo-random primary node plus the
// following distinct nodes.
//
// # Real block store
//
// BlockStore is the out-of-core substrate: a directory of write-once,
// seal-then-read files whose reads are served through an in-memory LRU
// page cache with a byte budget (DefaultPageSize pages). It plugs into
// the engine in both directions:
//
//   - Spill target. BlockStore implements mr.SpillStore. A job run
//     with mr.Config.SpillBudgetBytes > 0 and Config.Spill set to a
//     BlockStore writes every map task's sorted shuffle runs here and
//     the reducers k-way stream-merge them back through the page
//     cache, so resident pair memory is bounded by the budget instead
//     of proportional to the shuffle volume.
//   - Chunk source. WriteChunked stores a relation as chunk-framed
//     columnar blocks (the RELC frame format of internal/relation) and
//     returns a ChunkedFile implementing mr.ChunkSource: map tasks
//     decode one chunk at a time and release each as consumed, so the
//     input rows never need to be resident either. ChunkedFile.Shell
//     builds the empty schema-carrying relation an mr.Input pairs with
//     the stream.
//
// With both ends plugged in, a join's data plane touches memory only
// through three bounded windows — the chunk being scanned, the map
// task's spill buffer, and the reducer's current merge heads — while
// disk holds everything else.
//
// # Bounded-memory contract and knobs
//
// The contract: results are bit-identical whether execution is
// in-memory or out-of-core. Spilled pairs round-trip through the raw
// tuple codec (dictionary code slots included), chunks decode to
// bit-identical tuples on every open, and the page cache is
// transparent — budget, page size, eviction order and concurrency
// affect only CacheStats, never a returned byte. mr.Metrics reports
// the difference instead: SpillBytes/SpillRuns count what went to
// disk, PeakLiveBytes the accounted resident high-water mark.
//
// Three knobs force or bound out-of-core execution:
//
//   - mr.Config.SpillBudgetBytes — real bytes a map task may buffer
//     before spilling; set it tiny (a few KiB) in tests to force every
//     pair through the store.
//   - NewBlockStore's cacheBudgetBytes — resident page-cache bound;
//     0 disables caching so every read hits disk.
//   - WriteChunked's rowsPerChunk — the streaming granularity of
//     inputs (and the unit of transient decode memory).
//
// # Integrity and read failover
//
// Every sealed page carries a CRC32 accumulated as the bytes are
// written (sealing costs nothing extra) and verified on every page
// fill — a read from disk, never a cache hit. A mismatch is counted
// (IntegrityStats, the dfs/checksum_failures quarantine counter of an
// attached obs registry) and the fill falls back to a replica re-read,
// up to SetReplication total reads, before the read fails. The failover
// contract mirrors the spill-frame checksums in internal/mr: transient
// corruption costs a counter tick and a dfs/failover_reads re-read and
// is otherwise invisible; only corruption of every replica surfaces an
// error, and a caller running under mr's attempt machinery retries even
// that with a fresh task attempt.
//
// CheckpointStore layers cascade recovery on the same substrate: a
// plan executor saves each completed intermediate relation as
// checksummed chunk-framed blocks and, on resume, reloads exactly the
// jobs that finished instead of re-executing them (see internal/core's
// PlanOptions.ResumeFrom).
//
// # Determinism
//
// Everything the package returns is a pure function of its inputs and
// configuration. The block-placement RNG is math/rand seeded from the
// store configuration (block size, replication, node count) — never
// from wall clock or the global RNG — so two stores built from equal
// configurations produce identical File.Placement for the same upload
// sequence, and a placement-sensitive simulation is reproducible
// run-to-run. Upload's sampling pass (LoadOurs) draws from a rand
// seeded by its explicit seed argument. BlockStore assigns file IDs in
// creation order and serves reads byte-identically under any cache
// state, so the engine's determinism guarantee (same results at any
// worker count, spill on or off) extends through this package.
package dfs
