package dfs

import (
	"bufio"
	"container/list"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/mr"
	"repro/internal/obs"
	"repro/internal/relation"
)

// DefaultPageSize is the page-cache granularity of a BlockStore: reads
// are served in pages of this size, cached under the store's byte
// budget.
const DefaultPageSize = 64 << 10

// BlockStore is the real (non-modeled) storage substrate of the
// package: a directory of append-then-sealed files whose reads are
// served through an in-memory LRU page cache with a byte budget. It is
// the out-of-core counterpart of the simulated Store namespace —
// Store prices I/O in simulated seconds, BlockStore actually holds
// bytes on disk and bounds how many of them sit in memory.
//
// It serves two roles:
//
//   - a spill target: it implements mr.SpillStore, so an engine run
//     with Config.SpillBudgetBytes set writes its sorted shuffle runs
//     here and reducers stream-merge them back through the page cache;
//   - a chunk source: WriteChunked stores a relation as chunk-framed
//     columnar blocks and returns a ChunkedFile whose chunks decode on
//     demand, so map tasks stream inputs without the relation's rows
//     ever being resident.
//
// The cache is transparent: every read returns exactly the sealed
// bytes regardless of budget, page size, eviction order or
// concurrency. Only CacheStats observes the difference. All methods
// are safe for concurrent use.
type BlockStore struct {
	mu     sync.Mutex
	dir    string
	owned  bool // store created dir and removes it on Close
	nextID int
	closed bool

	pageSize    int64
	cacheBudget int64
	cacheBytes  int64
	lru         *list.List // of *cachePage; front = most recent
	pages       map[pageKey]*list.Element
	hits        int64
	misses      int64

	// Integrity: every sealed page carries a CRC32 computed at write
	// time and verified on every cache fill; a mismatch triggers up to
	// `replicas` total disk reads (failover to a surviving replica)
	// before the read fails. Counters are quarantine telemetry.
	replicas         int
	o                *obs.Obs
	checksumFailures atomic.Int64
	failoverReads    atomic.Int64
	// corruptFill is a test hook invoked after each disk read of a page
	// fill, free to mutate data in place — the way tests model transient
	// (attempt-scoped) versus persistent corruption. nil in production.
	corruptFill func(file int, page int64, attempt int, data []byte)
}

type pageKey struct {
	file int
	page int64
}

type cachePage struct {
	key  pageKey
	data []byte
}

// NewBlockStore opens a block store rooted at dir (created as a
// temporary directory and removed on Close when dir is empty).
// cacheBudgetBytes bounds the resident page cache; 0 disables caching
// entirely — every read goes to disk — which is the cheapest way to
// force fully out-of-core execution in tests.
func NewBlockStore(dir string, cacheBudgetBytes int64) (*BlockStore, error) {
	if cacheBudgetBytes < 0 {
		return nil, fmt.Errorf("dfs: cache budget must be >= 0")
	}
	owned := dir == ""
	if owned {
		d, err := os.MkdirTemp("", "dfs-blocks-*")
		if err != nil {
			return nil, err
		}
		dir = d
	}
	return &BlockStore{
		dir:         dir,
		owned:       owned,
		pageSize:    DefaultPageSize,
		cacheBudget: cacheBudgetBytes,
		replicas:    3, // dfs.replication default (Table 1)
		lru:         list.New(),
		pages:       make(map[pageKey]*list.Element),
	}, nil
}

// SetReplication sets how many total disk reads a checksum-failed page
// fill may attempt (the replica count read failover can fall back on).
// Values below 1 are clamped to 1 — verify once, never fail over.
func (s *BlockStore) SetReplication(n int) {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	s.replicas = n
	s.mu.Unlock()
}

// AttachObs routes the store's quarantine counters
// (dfs/checksum_failures, dfs/failover_reads) to o. nil detaches.
func (s *BlockStore) AttachObs(o *obs.Obs) {
	s.mu.Lock()
	s.o = o
	s.mu.Unlock()
}

// IntegrityStats reports detected page corruptions and the successful
// replica re-reads that absorbed them.
func (s *BlockStore) IntegrityStats() (checksumFailures, failoverReads int64) {
	return s.checksumFailures.Load(), s.failoverReads.Load()
}

// CreateSpillFile implements mr.SpillStore: a new write-once file in
// the store whose post-Seal reads are page-cached.
func (s *BlockStore) CreateSpillFile() (mr.SpillFile, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("dfs: block store closed")
	}
	id := s.nextID
	s.nextID++
	s.mu.Unlock()

	f, err := os.OpenFile(filepath.Join(s.dir, fmt.Sprintf("block-%06d", id)),
		os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return nil, err
	}
	return &blockFile{store: s, id: id, f: f, bw: bufio.NewWriterSize(f, 64<<10)}, nil
}

// CacheStats reports page-cache activity: hits, misses, and currently
// resident bytes. Diagnostic only — it never affects results.
func (s *BlockStore) CacheStats() (hits, misses, residentBytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses, s.cacheBytes
}

// Close drops the cache and, if the store owns its directory, removes
// it and every stored file.
func (s *BlockStore) Close() error {
	s.mu.Lock()
	s.closed = true
	s.lru.Init()
	s.pages = make(map[pageKey]*list.Element)
	s.cacheBytes = 0
	dir, owned := s.dir, s.owned
	s.mu.Unlock()
	if owned {
		return os.RemoveAll(dir)
	}
	return nil
}

// readThrough copies [off, off+len(p)) of the sealed file into p via
// the page cache. The caller guarantees the range is within the sealed
// size.
func (s *BlockStore) readThrough(b *blockFile, off int64, p []byte) (int, error) {
	size := b.size
	if off < 0 || off >= size {
		return 0, fmt.Errorf("dfs: read at %d outside sealed file of %d bytes", off, size)
	}
	n := 0
	for n < len(p) && off+int64(n) < size {
		pos := off + int64(n)
		pageIdx := pos / s.pageSize
		data, err := s.page(pageKey{file: b.id, page: pageIdx}, b)
		if err != nil {
			return n, err
		}
		n += copy(p[n:], data[pos-pageIdx*s.pageSize:])
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// page returns the cached page, filling (and checksum-verifying) it
// from disk on a miss.
func (s *BlockStore) page(k pageKey, b *blockFile) ([]byte, error) {
	s.mu.Lock()
	if el, ok := s.pages[k]; ok {
		s.hits++
		s.lru.MoveToFront(el)
		data := el.Value.(*cachePage).data
		s.mu.Unlock()
		return data, nil
	}
	s.misses++
	replicas, o, hook := s.replicas, s.o, s.corruptFill
	s.mu.Unlock()

	// Fill outside the lock; a racing reader of the same page just
	// fills it twice, and the second insert finds it already cached.
	pageOff := k.page * s.pageSize
	pageLen := s.pageSize
	if pageOff+pageLen > b.size {
		pageLen = b.size - pageOff
	}
	data := make([]byte, pageLen)
	want, verify := b.pageCRC(k.page)
	for attempt := 1; ; attempt++ {
		if _, err := b.f.ReadAt(data, pageOff); err != nil {
			return nil, err
		}
		if hook != nil {
			hook(k.file, k.page, attempt, data)
		}
		if !verify || crc32.ChecksumIEEE(data) == want {
			break
		}
		// Corrupted page: count it, then fail over to a replica
		// re-read while any remain.
		s.checksumFailures.Add(1)
		o.Counter("dfs/checksum_failures").Add(1)
		if attempt >= replicas {
			return nil, fmt.Errorf("dfs: file %d page %d: checksum mismatch on all %d replicas",
				k.file, k.page, replicas)
		}
		s.failoverReads.Add(1)
		o.Counter("dfs/failover_reads").Add(1)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.pages[k]; ok {
		return el.Value.(*cachePage).data, nil
	}
	if s.cacheBudget > 0 && !s.closed {
		s.pages[k] = s.lru.PushFront(&cachePage{key: k, data: data})
		s.cacheBytes += int64(len(data))
		for s.cacheBytes > s.cacheBudget {
			back := s.lru.Back()
			if back == nil {
				break
			}
			pg := back.Value.(*cachePage)
			s.lru.Remove(back)
			delete(s.pages, pg.key)
			s.cacheBytes -= int64(len(pg.data))
		}
	}
	return data, nil
}

// dropFile evicts every cached page of a released file.
func (s *BlockStore) dropFile(id int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for el := s.lru.Front(); el != nil; {
		next := el.Next()
		pg := el.Value.(*cachePage)
		if pg.key.file == id {
			s.lru.Remove(el)
			delete(s.pages, pg.key)
			s.cacheBytes -= int64(len(pg.data))
		}
		el = next
	}
}

// blockFile is one write-once file in a BlockStore. Writes accumulate
// a CRC32 per store page as the bytes stream through, so sealing costs
// nothing extra and every post-seal page fill can be verified.
type blockFile struct {
	store  *BlockStore
	id     int
	f      *os.File
	bw     *bufio.Writer
	size   int64
	sealed bool

	crcs   []uint32 // per-page CRC32; the last entry covers a partial page
	cur    uint32   // running CRC of the page being written
	curLen int64    // bytes of the current page seen so far
}

func (b *blockFile) Write(p []byte) (int, error) {
	if b.sealed {
		return 0, fmt.Errorf("dfs: write to sealed block file")
	}
	n, err := b.bw.Write(p)
	for q := p[:n]; len(q) > 0; {
		take := b.store.pageSize - b.curLen
		if take > int64(len(q)) {
			take = int64(len(q))
		}
		b.cur = crc32.Update(b.cur, crc32.IEEETable, q[:take])
		b.curLen += take
		q = q[take:]
		if b.curLen == b.store.pageSize {
			b.crcs = append(b.crcs, b.cur)
			b.cur, b.curLen = 0, 0
		}
	}
	b.size += int64(n)
	return n, err
}

func (b *blockFile) Seal() error {
	if b.sealed {
		return nil
	}
	if err := b.bw.Flush(); err != nil {
		return err
	}
	if b.curLen > 0 { // finalize the trailing partial page
		b.crcs = append(b.crcs, b.cur)
		b.cur, b.curLen = 0, 0
	}
	b.sealed = true
	return nil
}

// pageCRC returns the sealed CRC of page i, when one was recorded.
func (b *blockFile) pageCRC(i int64) (uint32, bool) {
	if i < 0 || i >= int64(len(b.crcs)) {
		return 0, false
	}
	return b.crcs[i], true
}

func (b *blockFile) ReadAt(p []byte, off int64) (int, error) {
	if !b.sealed {
		return 0, fmt.Errorf("dfs: read from unsealed block file")
	}
	return b.store.readThrough(b, off, p)
}

func (b *blockFile) Release() error {
	b.store.dropFile(b.id)
	name := b.f.Name()
	if err := b.f.Close(); err != nil {
		return err
	}
	return os.Remove(name)
}

// chunkMeta locates one encoded chunk frame inside a block file.
type chunkMeta struct {
	off      int64 // frame start in the file
	len      int64 // frame length in bytes
	rows     int
	rawBytes int64 // decoded size in relation.Tuple.EncodedSize units
}

// ChunkedFile is a relation stored as chunk-framed columnar blocks in
// a BlockStore. It implements mr.ChunkSource: chunks decode on demand
// through the store's page cache and are released by the consumer, so
// feeding a job from a ChunkedFile keeps only the chunks currently
// being scanned resident. Chunks decode to bit-identical tuples on
// every open; OpenChunk is safe for concurrent use.
type ChunkedFile struct {
	name   string
	schema *relation.Schema
	dicts  []*relation.Dict
	file   mr.SpillFile
	chunks []chunkMeta
	rows   int
}

// WriteChunked stores r's rows as encoded chunks of rowsPerChunk rows
// (relation.DefaultChunkRows when <= 0) and returns the readable
// ChunkedFile. The schema and dictionaries are held by reference; the
// rows themselves live only in the store.
func (s *BlockStore) WriteChunked(r *relation.Relation, rowsPerChunk int) (*ChunkedFile, error) {
	f, err := s.CreateSpillFile()
	if err != nil {
		return nil, err
	}
	cf := &ChunkedFile{
		name:   r.Name,
		schema: r.Schema,
		dicts:  append([]*relation.Dict(nil), r.Dicts...),
		file:   f,
	}
	var off int64
	it := r.ChunkStream(rowsPerChunk)
	for {
		c, err := it.NextChunk()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		cw := countingWriter{w: f}
		if err := relation.EncodeChunk(&cw, c, cf.dicts); err != nil {
			return nil, err
		}
		cf.chunks = append(cf.chunks, chunkMeta{
			off: off, len: cw.n, rows: c.Rows(), rawBytes: c.EncodedBytes(),
		})
		off += cw.n
		cf.rows += c.Rows()
	}
	if err := f.Seal(); err != nil {
		return nil, err
	}
	return cf, nil
}

// Name returns the stored relation's name.
func (cf *ChunkedFile) Name() string { return cf.name }

// Rows returns the total stored row count.
func (cf *ChunkedFile) Rows() int { return cf.rows }

// NumChunks implements mr.ChunkSource.
func (cf *ChunkedFile) NumChunks() int { return len(cf.chunks) }

// ChunkRows implements mr.ChunkSource.
func (cf *ChunkedFile) ChunkRows(i int) int { return cf.chunks[i].rows }

// ChunkBytes implements mr.ChunkSource.
func (cf *ChunkedFile) ChunkBytes(i int) int64 { return cf.chunks[i].rawBytes }

// OpenChunk implements mr.ChunkSource: decode chunk i from the store.
func (cf *ChunkedFile) OpenChunk(i int) (*relation.Chunk, error) {
	m := cf.chunks[i]
	sr := io.NewSectionReader(cf.file, m.off, m.len)
	c, err := relation.DecodeChunk(bufio.NewReaderSize(sr, 32<<10), cf.schema, cf.dicts)
	if err != nil {
		return nil, fmt.Errorf("dfs: chunk %d of %q: %w", i, cf.name, err)
	}
	if c == nil || c.Rows() != m.rows {
		return nil, fmt.Errorf("dfs: chunk %d of %q decoded wrong shape", i, cf.name)
	}
	return c, nil
}

// Shell returns an empty relation carrying the stored schema,
// dictionaries and the given volume multiplier — the Rel side of an
// mr.Input whose rows come from this file's Stream.
func (cf *ChunkedFile) Shell(mult float64) *relation.Relation {
	r := relation.New(cf.name, cf.schema)
	r.Dicts = append([]*relation.Dict(nil), cf.dicts...)
	r.VolumeMultiplier = mult
	return r
}

// Release drops the file's blocks and cached pages.
func (cf *ChunkedFile) Release() error { return cf.file.Release() }

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
