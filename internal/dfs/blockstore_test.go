package dfs

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/mr"
	"repro/internal/relation"
)

// TestBlockStoreRoundTrip: bytes written to a sealed file read back
// identically through the page cache at any budget, including one too
// small to hold a single page and one of zero (caching disabled).
func TestBlockStoreRoundTrip(t *testing.T) {
	payload := make([]byte, 3*DefaultPageSize+257) // straddles page edges
	rng := rand.New(rand.NewSource(11))
	for i := range payload {
		payload[i] = byte(rng.Intn(256))
	}
	for _, budget := range []int64{0, 100, DefaultPageSize, 1 << 20} {
		store, err := NewBlockStore("", budget)
		if err != nil {
			t.Fatal(err)
		}
		f, err := store.CreateSpillFile()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(payload); err != nil {
			t.Fatal(err)
		}
		if _, err := f.ReadAt(make([]byte, 1), 0); err == nil {
			t.Fatal("read before Seal accepted")
		}
		if err := f.Seal(); err != nil {
			t.Fatal(err)
		}
		// Whole file, unaligned slices, and a read past EOF.
		got := make([]byte, len(payload))
		if _, err := f.ReadAt(got, 0); err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("budget %d: full read differs", budget)
		}
		slice := make([]byte, 1000)
		off := int64(DefaultPageSize - 500)
		if _, err := f.ReadAt(slice, off); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(slice, payload[off:off+1000]) {
			t.Fatalf("budget %d: unaligned read differs", budget)
		}
		tail := make([]byte, 512)
		n, err := f.ReadAt(tail, int64(len(payload))-100)
		if err != io.EOF || n != 100 {
			t.Fatalf("budget %d: tail read n=%d err=%v", budget, n, err)
		}

		hits, misses, resident := store.CacheStats()
		if budget == 0 {
			if hits != 0 || resident != 0 {
				t.Fatalf("budget 0 cached: hits=%d resident=%d", hits, resident)
			}
		} else if misses == 0 {
			t.Fatalf("budget %d: no cache activity: hits=%d misses=%d", budget, hits, misses)
		}
		if budget > int64(3*DefaultPageSize) && hits == 0 {
			// Every page fits, so the re-reads must hit.
			t.Fatalf("budget %d: re-reads did not hit the cache", budget)
		}
		if resident > budget {
			t.Fatalf("budget %d exceeded: %d resident", budget, resident)
		}
		if err := f.Release(); err != nil {
			t.Fatal(err)
		}
		if _, _, resident := store.CacheStats(); resident != 0 {
			t.Fatal("pages survive Release")
		}
		if err := store.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// chunkProbeRelation mirrors the mr spill tests' fixture: interned
// strings, NULLs and floats, so chunks carry dict slots through disk.
func chunkProbeRelation(rows int) *relation.Relation {
	r := relation.New("probe", relation.MustSchema(
		relation.Column{Name: "k", Kind: relation.KindInt},
		relation.Column{Name: "city", Kind: relation.KindString},
		relation.Column{Name: "w", Kind: relation.KindFloat},
	))
	cities := []string{"amsterdam", "beijing", "chicago", "delhi"}
	for i := 0; i < rows; i++ {
		city := relation.Str(cities[i%len(cities)])
		if i%13 == 0 {
			city = relation.Null()
		}
		r.MustAppend(relation.Tuple{
			relation.Int(int64(i % 37)),
			city,
			relation.Float(float64(i) * 1.25),
		})
	}
	relation.InternStrings(r)
	return r
}

// TestChunkedFileRoundTrip: rows stored as chunk frames decode back
// bit-identically, chunk by chunk, through a tiny page cache.
func TestChunkedFileRoundTrip(t *testing.T) {
	r := chunkProbeRelation(700)
	store, err := NewBlockStore(t.TempDir(), 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	cf, err := store.WriteChunked(r, 64)
	if err != nil {
		t.Fatal(err)
	}
	if cf.Rows() != len(r.Tuples) || cf.NumChunks() != (700+63)/64 {
		t.Fatalf("shape: rows=%d chunks=%d", cf.Rows(), cf.NumChunks())
	}
	row := 0
	var rawTotal int64
	for i := 0; i < cf.NumChunks(); i++ {
		if cf.ChunkRows(i) <= 0 || cf.ChunkBytes(i) <= 0 {
			t.Fatalf("chunk %d empty meta", i)
		}
		rawTotal += cf.ChunkBytes(i)
		c, err := cf.OpenChunk(i)
		if err != nil {
			t.Fatal(err)
		}
		for ri := 0; ri < c.Rows(); ri++ {
			got := c.Row(ri)
			for j, v := range got {
				if v != r.Tuples[row][j] {
					t.Fatalf("row %d col %d: %#v vs %#v", row, j, v, r.Tuples[row][j])
				}
			}
			row++
		}
	}
	var want int64
	for _, tp := range r.Tuples {
		want += int64(tp.EncodedSize())
	}
	if rawTotal != want {
		t.Fatalf("raw bytes %d, want %d", rawTotal, want)
	}
	// The shell carries schema + dicts but no rows.
	shell := cf.Shell(2.5)
	if shell.Schema != r.Schema || len(shell.Tuples) != 0 || shell.VolumeMultiplier != 2.5 {
		t.Fatal("shell shape wrong")
	}
	if shell.DictOf(1) == nil {
		t.Fatal("shell lost the dictionary")
	}
}

// TestFullyOutOfCoreJob is the package's end-to-end acceptance check:
// input streamed from a ChunkedFile, shuffle spilled to the same
// BlockStore under a tiny budget and a tiny page cache — and the
// result is bit-identical to the fully in-memory run.
func TestFullyOutOfCoreJob(t *testing.T) {
	in := chunkProbeRelation(1200)
	job := func(rel *relation.Relation) *mr.Job {
		return &mr.Job{
			Name:   "count",
			Inputs: []mr.Input{{Rel: rel, Map: func(tp relation.Tuple, emit mr.Emitter) { emit(uint64(tp[0].Int64()), 0, tp) }}},
			Reduce: func(key uint64, values []mr.Tagged, ctx *mr.ReduceContext) {
				ctx.Emit(relation.Tuple{values[0].Tuple[0], relation.Int(int64(len(values)))})
			},
			NumReducers: 6,
			OutputName:  "counts",
			OutputSchema: relation.MustSchema(
				relation.Column{Name: "k", Kind: relation.KindInt},
				relation.Column{Name: "n", Kind: relation.KindInt},
			),
		}
	}
	cfg := mr.DefaultConfig()
	cfg.TuplesPerMapTask = 128
	base, err := mr.Run(context.Background(), cfg, nil, job(in))
	if err != nil {
		t.Fatal(err)
	}

	store, err := NewBlockStore(t.TempDir(), 8192)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	cf, err := store.WriteChunked(in, 64)
	if err != nil {
		t.Fatal(err)
	}
	oocCfg := cfg
	oocCfg.SpillBudgetBytes = 2048
	oocCfg.Spill = store
	oocJob := job(cf.Shell(in.VolumeMultiplier))
	oocJob.Inputs[0].Stream = cf
	ooc, err := mr.Run(context.Background(), oocCfg, nil, oocJob)
	if err != nil {
		t.Fatal(err)
	}

	if relation.ContentHash(ooc.Output) != relation.ContentHash(base.Output) {
		t.Fatal("out-of-core result differs from in-memory result")
	}
	if ooc.Metrics.SpillBytes <= 0 || ooc.Metrics.SpillRuns <= 0 {
		t.Fatalf("nothing spilled: %+v", ooc.Metrics)
	}
	if ooc.Metrics.PeakLiveBytes >= base.Metrics.PeakLiveBytes {
		t.Fatalf("peak live bytes did not drop: %d vs %d",
			ooc.Metrics.PeakLiveBytes, base.Metrics.PeakLiveBytes)
	}
	if base.Metrics.InputBytes != ooc.Metrics.InputBytes ||
		base.Metrics.PairsEmitted != ooc.Metrics.PairsEmitted {
		t.Fatalf("input accounting differs:\nbase: %+v\nooc:  %+v", base.Metrics, ooc.Metrics)
	}
}

// TestPlacementStability pins the determinism contract: equal store
// configurations place blocks identically, placements are valid, and
// replicas of one block land on distinct nodes.
func TestPlacementStability(t *testing.T) {
	upload := func(t *testing.T) []*File {
		t.Helper()
		s := newStore(t)
		var files []*File
		for _, mult := range []float64{5e8, 2e9, 8e8} {
			r := sampleRelation(1000, mult)
			r.Name = r.Name + string(rune('a'+len(files)))
			if _, err := s.Upload(r, LoadPlain, 100, 1); err != nil {
				t.Fatal(err)
			}
			f, err := s.File(r.Name)
			if err != nil {
				t.Fatal(err)
			}
			files = append(files, f)
		}
		return files
	}
	first, second := upload(t), upload(t)
	for i := range first {
		if len(first[i].Placement) != first[i].Blocks {
			t.Fatalf("file %d: %d placements for %d blocks", i, len(first[i].Placement), first[i].Blocks)
		}
		if !reflect.DeepEqual(first[i].Placement, second[i].Placement) {
			t.Fatalf("file %d: placement not stable across equal stores", i)
		}
		for b, nodes := range first[i].Placement {
			if len(nodes) != first[i].Replicas {
				t.Fatalf("file %d block %d: %d replicas, want %d", i, b, len(nodes), first[i].Replicas)
			}
			seen := map[int]bool{}
			for _, n := range nodes {
				if n < 0 || n >= 12 {
					t.Fatalf("file %d block %d: node %d out of range", i, b, n)
				}
				if seen[n] {
					t.Fatalf("file %d block %d: duplicate replica node %d", i, b, n)
				}
				seen[n] = true
			}
		}
	}

	// A different cluster geometry reseeds the RNG: the placement
	// stream must still be internally deterministic.
	s13a, _ := NewStore(mr.DefaultConfig(), 13)
	s13b, _ := NewStore(mr.DefaultConfig(), 13)
	ra := sampleRelation(1000, 2e9)
	rb := sampleRelation(1000, 2e9)
	if _, err := s13a.Upload(ra, LoadPlain, 100, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s13b.Upload(rb, LoadPlain, 100, 1); err != nil {
		t.Fatal(err)
	}
	fa, _ := s13a.File("data")
	fb, _ := s13b.File("data")
	if !reflect.DeepEqual(fa.Placement, fb.Placement) {
		t.Fatal("13-node placement not stable")
	}
}
