package dfs

import (
	"testing"

	"repro/internal/mr"
	"repro/internal/relation"
)

func sampleRelation(n int, mult float64) *relation.Relation {
	r := relation.New("data", relation.MustSchema(
		relation.Column{Name: "id", Kind: relation.KindInt},
		relation.Column{Name: "v", Kind: relation.KindFloat},
	))
	for i := 0; i < n; i++ {
		r.MustAppend(relation.Tuple{relation.Int(int64(i)), relation.Float(float64(i) / 3)})
	}
	r.VolumeMultiplier = mult
	return r
}

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := NewStore(mr.DefaultConfig(), 12)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewStoreValidation(t *testing.T) {
	if _, err := NewStore(mr.DefaultConfig(), 0); err == nil {
		t.Error("0 nodes accepted")
	}
	bad := mr.DefaultConfig()
	bad.MapSlots = 0
	if _, err := NewStore(bad, 4); err == nil {
		t.Error("bad config accepted")
	}
}

func TestUploadBasics(t *testing.T) {
	s := newStore(t)
	r := sampleRelation(1000, 1e6)
	rep, err := s.Upload(r, LoadPlain, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seconds <= 0 || rep.Bytes != r.ModeledSize() || rep.Blocks < 1 {
		t.Errorf("report = %+v", rep)
	}
	if s.Len() != 1 {
		t.Errorf("store has %d files", s.Len())
	}
	f, err := s.File("data")
	if err != nil {
		t.Fatal(err)
	}
	if f.Replicas != 3 {
		t.Errorf("replicas = %d", f.Replicas)
	}
	if s.TotalStoredBytes() != rep.Bytes*3 {
		t.Error("replicated bytes wrong")
	}
	if _, err := s.Upload(r, LoadPlain, 100, 1); err == nil {
		t.Error("duplicate upload accepted")
	}
	if _, err := s.File("missing"); err == nil {
		t.Error("missing file found")
	}
	if _, err := s.Upload(nil, LoadPlain, 100, 1); err == nil {
		t.Error("nil relation accepted")
	}
}

// Fig. 11's ordering: plain upload is cheapest; our method adds the
// sampling/index pass; Hive's full parse is the most expensive at
// scale. All three scale linearly with volume.
func TestLoadMethodOrdering(t *testing.T) {
	for _, mult := range []float64{1e6, 1e7, 5e7} {
		var secs [3]float64
		for i, m := range []LoadMethod{LoadPlain, LoadHive, LoadOurs} {
			s := newStore(t)
			rep, err := s.Upload(sampleRelation(2000, mult), m, 500, 1)
			if err != nil {
				t.Fatal(err)
			}
			secs[i] = rep.Seconds
		}
		plain, hive, ours := secs[0], secs[1], secs[2]
		if !(plain < ours) {
			t.Errorf("mult %g: plain (%v) not cheaper than ours (%v)", mult, plain, ours)
		}
		if !(ours < hive) {
			t.Errorf("mult %g: ours (%v) not cheaper than hive (%v)", mult, ours, hive)
		}
	}
}

func TestLoadScalesLinearly(t *testing.T) {
	s1 := newStore(t)
	small, err := s1.Upload(sampleRelation(2000, 1e6), LoadOurs, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	s2 := newStore(t)
	big, err := s2.Upload(sampleRelation(2000, 1e7), LoadOurs, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	ratio := big.Seconds / small.Seconds
	if ratio < 5 || ratio > 15 {
		t.Errorf("10x volume gave %.1fx time", ratio)
	}
}

func TestOursBuildsStats(t *testing.T) {
	s := newStore(t)
	if _, err := s.Upload(sampleRelation(500, 1), LoadOurs, 200, 7); err != nil {
		t.Fatal(err)
	}
	f, err := s.File("data")
	if err != nil {
		t.Fatal(err)
	}
	if f.Stats == nil {
		t.Fatal("no stats built")
	}
	if f.Stats.Columns["id"] == nil || f.Stats.Columns["id"].Max.Int64() != 499 {
		t.Error("stats content wrong")
	}
	// Plain upload must not build stats.
	s2 := newStore(t)
	if _, err := s2.Upload(sampleRelation(10, 1), LoadPlain, 100, 1); err != nil {
		t.Fatal(err)
	}
	f2, _ := s2.File("data")
	if f2.Stats != nil {
		t.Error("plain upload built stats")
	}
}

func TestMethodString(t *testing.T) {
	if LoadPlain.String() == "" || LoadHive.String() != "Hive" || LoadOurs.String() != "Our Method" {
		t.Error("method names wrong")
	}
}
