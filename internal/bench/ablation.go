package bench

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/mr"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/workloads"
)

// Ablations probe the design choices DESIGN.md calls out: the Hilbert
// curve against naive linearisations (Theorem 2), one-job multi-way
// evaluation against pairwise cascades (§1's central observation),
// model-chosen k_R against Hive's max-reducers default (Eq. 10 /
// Fig. 6), and k_P-aware scheduling against oblivious serialisation
// (§4.2).

// AblationPartition compares duplication scores (Eq. 7) of the Hilbert
// partition against row-major and random cell linearisations.
func (s *Suite) AblationPartition() (*Table, error) {
	t := &Table{
		Title:   "Ablation: partition score (Eq.7), Hilbert vs row-major vs random",
		Columns: []string{"kR", "Hilbert", "RowMajor", "Random", "IdealLB"},
	}
	cards := []int{400, 400, 400}
	krs := []int{2, 4, 8, 16, 32, 64}
	if s.Quick {
		krs = []int{4, 32}
	}
	maxCells := 1 << 12
	for _, kr := range krs {
		h, err := core.ScoreForKR(cards, kr, maxCells)
		if err != nil {
			return nil, err
		}
		rm := scoreForLinearization(cards, kr, maxCells, linRowMajor)
		rnd := scoreForLinearization(cards, kr, maxCells, linRandom(kr))
		t.AddRow(fmt.Sprintf("%d", kr),
			fmt.Sprintf("%.0f", h),
			fmt.Sprintf("%.0f", rm),
			fmt.Sprintf("%.0f", rnd),
			fmt.Sprintf("%.0f", core.IdealScore(cards, kr)))
	}
	return t, nil
}

// linFunc maps grid axes to a linear order in [0, N).
type linFunc func(axes []uint32, side uint32) uint64

func linRowMajor(axes []uint32, side uint32) uint64 {
	var idx uint64
	for _, a := range axes {
		idx = idx*uint64(side) + uint64(a)
	}
	return idx
}

// linRandom shuffles cells pseudo-randomly (a hash of the axes), which
// destroys locality entirely — the worst case for duplication.
func linRandom(seed int) linFunc {
	return func(axes []uint32, side uint32) uint64 {
		x := uint64(seed) * 0x9e3779b97f4a7c15
		for _, a := range axes {
			x ^= uint64(a) + 0x9e3779b97f4a7c15 + (x << 6) + (x >> 2)
		}
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
		return x
	}
}

// scoreForLinearization computes Eq. 7 for an arbitrary cell ordering:
// cells sorted by lin() are cut into kr contiguous segments.
func scoreForLinearization(cards []int, kr, maxCells int, lin linFunc) float64 {
	m := len(cards)
	// Match the Hilbert partitioner's grid resolution.
	eta := 1
	for (m*(eta+1)) <= 62 && (uint64(1)<<uint(m*(eta+1))) <= uint64(maxCells) && eta+1 <= 16 {
		eta++
	}
	side := uint32(1) << uint(eta)
	nCells := uint64(1) << uint(m*eta)

	// Rank cells by lin value (stable on ties via cell index).
	type cell struct {
		key  uint64
		axes []uint32
	}
	cells := make([]cell, 0, nCells)
	axes := make([]uint32, m)
	var fill func(dim int)
	fill = func(dim int) {
		if dim == m {
			cp := append([]uint32(nil), axes...)
			cells = append(cells, cell{key: lin(cp, side), axes: cp})
			return
		}
		for a := uint32(0); a < side; a++ {
			axes[dim] = a
			fill(dim + 1)
		}
	}
	fill(0)
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].key != cells[j].key {
			return cells[i].key < cells[j].key
		}
		return linRowMajor(cells[i].axes, side) < linRowMajor(cells[j].axes, side)
	})
	// Distinct components per (dim, coord).
	type dc struct {
		dim   int
		coord uint32
	}
	last := map[dc]int32{}
	counts := map[dc]int{}
	for rank, c := range cells {
		comp := int32(uint64(rank) * uint64(kr) / nCells)
		for d, a := range c.axes {
			k := dc{d, a}
			if prev, ok := last[k]; !ok || prev != comp {
				last[k] = comp
				counts[k]++
			}
		}
	}
	total := 0.0
	for k, n := range counts {
		perCoord := float64(cards[k.dim]) / float64(side)
		total += float64(n) * perCoord
	}
	return total
}

// AblationSingleVsCascade reproduces the paper's central observation:
// "under certain conditions, evaluating a multi-way join with one
// MapReduce job is much more efficient than with a sequence of
// MapReduce jobs". A 3-relation chain theta-join runs (a) as the
// planner's choice, (b) forced pairwise (MaxPathLen=1), across data
// volumes — the intermediate-result I/O makes the cascade lose as
// volume grows.
func (s *Suite) AblationSingleVsCascade() (*Table, error) {
	t := &Table{
		Title:   "Ablation: one-job multiway vs pairwise+merge vs Hive cascade",
		Columns: []string{"volume", "planner(s)", "single-job(s)", "pairwise+merge(s)", "cascade(s)", "jobs(planner)"},
	}
	volumes := []float64{5, 50, 500}
	if s.Quick {
		volumes = []float64{50}
	}
	for _, gb := range volumes {
		rng := rand.New(rand.NewSource(int64(gb)))
		rels := make([]*relation.Relation, 3)
		names := []string{"A", "B", "C"}
		for i := range rels {
			rels[i] = chainRel(names[i], 220, rng)
			rels[i].VolumeMultiplier = gb * 1e9 / 3 / float64(rels[i].EncodedSize())
		}
		db, err := core.NewDB(300, 1, rels...)
		if err != nil {
			return nil, err
		}
		q := query.MustNew("chain3", names, []predicate.Condition{
			predicate.C("A", "v", predicate.LT, "B", "v"),
			predicate.C("B", "w", predicate.GE, "C", "w"),
		})
		kp := 64
		cfg := s.Cfg
		cfg.ReduceSlots = kp

		free := core.NewPlanner(cfg, kp)
		free.Opts.MaxCells = 1 << 14
		freePlan, err := free.Plan(q, db)
		if err != nil {
			return nil, err
		}
		freeRes, err := free.ExecuteContext(s.ctx(), freePlan, db)
		if err != nil {
			return nil, err
		}
		single := core.NewPlanner(cfg, kp)
		single.Opts.MaxCells = 1 << 14
		single.Opts.ForceSingleJob = true
		_, singleRes, err := single.RunContext(s.ctx(), q, db)
		if err != nil {
			return nil, err
		}
		pairwise := core.NewPlanner(cfg, kp)
		pairwise.Opts.MaxCells = 1 << 14
		pairwise.Opts.MaxPathLen = 1
		_, pairRes, err := pairwise.RunContext(s.ctx(), q, db)
		if err != nil {
			return nil, err
		}
		cascade, err := baselines.Run(s.ctx(), baselines.Hive(), cfg, s.params(), q, db, 0)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmtGB(gb), fmtSec(freeRes.Makespan), fmtSec(singleRes.Makespan),
			fmtSec(pairRes.Makespan), fmtSec(cascade.TotalTime),
			fmt.Sprintf("%d", len(freePlan.Jobs)))
	}
	return t, nil
}

func chainRel(name string, n int, rng *rand.Rand) *relation.Relation {
	r := relation.New(name, relation.MustSchema(
		relation.Column{Name: "v", Kind: relation.KindInt},
		relation.Column{Name: "w", Kind: relation.KindInt},
	))
	for i := 0; i < n; i++ {
		r.MustAppend(relation.Tuple{
			relation.Int(int64(rng.Intn(1000))),
			relation.Int(int64(rng.Intn(1000))),
		})
	}
	return r
}

// AblationFeedback probes the runtime feedback loop: a two-stage
// cascade whose second job consumes a Zipf-hot intermediate runs with
// static planning (pre-execution statistics only; the intermediate has
// none, so the downstream job hashes plainly) and with feedback
// re-planning (measured statistics re-derive its reducer count and
// hot-key splits at dispatch). Reported per mode: the downstream job's
// reducer balance, its reduce-task count, and the plan makespan — the
// two modes produce identical join output by construction.
func (s *Suite) AblationFeedback() (*Table, error) {
	t := &Table{
		Title:   "Ablation: static plan vs runtime feedback re-planning (Zipf cascade)",
		Columns: []string{"zipf s", "mode", "j2 balance", "j2 reducers", "makespan(s)", "replanned"},
	}
	shapes := []float64{1.1, 1.2, 1.4}
	if s.Quick {
		shapes = []float64{1.2}
	}
	const kr = 16
	for _, zs := range shapes {
		rng := rand.New(rand.NewSource(s.seedFor(int64(zs * 100))))
		l := zipfBenchRel("L", 1500, zs, 500, rng)
		r := zipfBenchRel("R", 400, zs, 500, rng)
		sr := uniformBenchRel("S", 400, 500, rng)
		l.VolumeMultiplier = 4e9 / float64(l.EncodedSize())
		r.VolumeMultiplier = 1e9 / float64(r.EncodedSize())
		sr.VolumeMultiplier = 1e9 / float64(sr.EncodedSize())
		db, err := core.NewDB(500, s.seedFor(1), l, r, sr)
		if err != nil {
			return nil, err
		}
		for _, mode := range []struct {
			name    string
			disable bool
		}{{"static", true}, {"feedback", false}} {
			pl := core.NewPlanner(s.Cfg, kr)
			pl.Opts.DisableReplan = mode.disable
			plan := cascadePlanFor(db, kr)
			res, err := pl.ExecuteContext(s.ctx(), plan, db)
			if err != nil {
				return nil, err
			}
			m := res.JobMetrics["casc-j2"]
			t.AddRow(fmt.Sprintf("%.1f", zs), mode.name,
				fmt.Sprintf("%.2f", m.BalanceRatio),
				fmt.Sprintf("%d", m.ReduceTasks),
				fmtSec(res.Makespan),
				fmt.Sprintf("%d", len(res.Replanned)))
		}
	}
	return t, nil
}

// cascadePlanFor hand-builds the two-stage cascade plan (the planner
// only emits jobs over base relations; cascades consuming produced
// intermediates are the executor's territory).
func cascadePlanFor(db *core.DB, kr int) *core.Plan {
	j1Conds := predicate.Conjunction{predicate.C("L", "k", predicate.EQ, "R", "k")}
	j2Conds := predicate.Conjunction{predicate.C("casc-j1", "L.k", predicate.EQ, "S", "k")}
	return &core.Plan{
		Query: &query.Query{Name: "casc"},
		Jobs: []core.PlannedJob{
			{
				Name: "casc-j1", Conds: j1Conds, RelOrder: []string{"L", "R"},
				Kind: core.KindHashEqui, Reducers: kr, Units: kr,
				Skew: core.SkewPlanFor(db.Catalog, core.KindHashEqui, j1Conds, kr, 0),
			},
			{
				Name: "casc-j2", Conds: j2Conds, RelOrder: []string{"casc-j1", "S"},
				Kind: core.KindHashEqui, Reducers: kr, Units: kr,
			},
		},
	}
}

func zipfBenchRel(name string, n int, s float64, domain int, rng *rand.Rand) *relation.Relation {
	r := relation.New(name, relation.MustSchema(
		relation.Column{Name: "k", Kind: relation.KindInt},
		relation.Column{Name: "v", Kind: relation.KindInt},
	))
	z := rand.NewZipf(rng, s, 1, uint64(domain-1))
	for i := 0; i < n; i++ {
		r.MustAppend(relation.Tuple{
			relation.Int(int64(z.Uint64())),
			relation.Int(int64(rng.Intn(1000))),
		})
	}
	return r
}

func uniformBenchRel(name string, n, domain int, rng *rand.Rand) *relation.Relation {
	r := relation.New(name, relation.MustSchema(
		relation.Column{Name: "k", Kind: relation.KindInt},
		relation.Column{Name: "v", Kind: relation.KindInt},
	))
	for i := 0; i < n; i++ {
		r.MustAppend(relation.Tuple{
			relation.Int(int64(rng.Intn(domain))),
			relation.Int(int64(rng.Intn(1000))),
		})
	}
	return r
}

// AblationKR compares the model-selected reducer count against Hive's
// max-reducers default on a theta join (the Fig. 6 inflection point in
// action).
func (s *Suite) AblationKR() (*Table, error) {
	t := &Table{
		Title:   "Ablation: model-chosen kR vs max reducers",
		Columns: []string{"volume", "chosen kR", "time@chosen(s)", "time@max(s)"},
	}
	volumes := []float64{1, 10, 100}
	if s.Quick {
		volumes = []float64{10}
	}
	kp := 96
	cfg := s.Cfg
	cfg.ReduceSlots = kp
	params := s.params()
	for _, gb := range volumes {
		rng := rand.New(rand.NewSource(int64(gb) + 7))
		a := chainRel("A", 200, rng)
		b := chainRel("B", 200, rng)
		a.VolumeMultiplier = gb * 1e9 / 2 / float64(a.EncodedSize())
		b.VolumeMultiplier = gb * 1e9 / 2 / float64(b.EncodedSize())
		db, err := core.NewDB(300, 1, a, b)
		if err != nil {
			return nil, err
		}
		ra, _ := db.Relation("A")
		rb, _ := db.Relation("B")
		conds := predicate.Conjunction{predicate.C("A", "v", predicate.LT, "B", "v")}

		timeFor := func(kr int) (float64, error) {
			job, _, err := core.BuildThetaJob(fmt.Sprintf("krab-%d", kr),
				[]*relation.Relation{ra, rb}, conds, kr, 1<<14)
			if err != nil {
				return 0, err
			}
			res, err := mr.Run(s.ctx(), cfg, params.Timer(), job)
			if err != nil {
				return 0, err
			}
			return res.Metrics.Sim.Total, nil
		}
		// Model choice: sweep via the planner profile (argmin of T(k)).
		pl := core.NewPlanner(cfg, kp)
		pl.Opts.MaxCells = 1 << 14
		q := query.MustNew("krq", []string{"A", "B"}, conds)
		plan, err := pl.Plan(q, db)
		if err != nil {
			return nil, err
		}
		chosen := plan.Jobs[0].Reducers
		tChosen, err := timeFor(chosen)
		if err != nil {
			return nil, err
		}
		tMax, err := timeFor(kp)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmtGB(gb), fmt.Sprintf("%d", chosen), fmtSec(tChosen), fmtSec(tMax))
	}
	return t, nil
}

// AblationScheduling compares the kP-aware malleable schedule against
// oblivious execution (every job at full width, serialized) for a
// multi-job plan under scarce units.
func (s *Suite) AblationScheduling() (*Table, error) {
	t := &Table{
		Title:   "Ablation: kP-aware scheduling vs oblivious serial execution",
		Columns: []string{"kP", "scheduled(s)", "serial-max-width(s)"},
	}
	kps := []int{16, 32, 64, 96}
	if s.Quick {
		kps = []int{32}
	}
	q, err := workloads.MobileQuery(1)
	if err != nil {
		return nil, err
	}
	mcfg := workloads.DefaultMobileConfig()
	mcfg.Tuples = 200
	mcfg.NominalGB = 100
	db, err := workloads.MobileDB(mcfg, 300)
	if err != nil {
		return nil, err
	}
	for _, kp := range kps {
		cfg := s.Cfg
		if cfg.MapSlots > kp {
			cfg.MapSlots = kp
		}
		cfg.ReduceSlots = kp
		pl := core.NewPlanner(cfg, kp)
		pl.Opts.MaxCells = 1 << 14
		plan, err := pl.Plan(q, db)
		if err != nil {
			return nil, err
		}
		// Oblivious: every job serialized at the full width — both
		// sides compared on the model's estimates.
		serial := 0.0
		for _, pj := range plan.Jobs {
			serial += pj.Profile[len(pj.Profile)-1]
		}
		serial += plan.MergeEstimate
		t.AddRow(fmt.Sprintf("%d", kp), fmtSec(plan.EstimatedMakespan), fmtSec(serial))
	}
	return t, nil
}
