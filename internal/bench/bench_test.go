package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func quickSuite() *Suite { return NewSuite(true) }

func TestTablePrinting(t *testing.T) {
	tbl := &Table{Title: "T", Columns: []string{"a", "bb"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "== T ==") || !strings.Contains(out, "333") {
		t.Errorf("table output:\n%s", out)
	}
}

func TestExperimentsRegistry(t *testing.T) {
	ids := Experiments()
	if len(ids) != 13 {
		t.Fatalf("got %d experiments", len(ids))
	}
	s := quickSuite()
	if err := s.Run("nope", &bytes.Buffer{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTable1(t *testing.T) {
	tbl := quickSuite().Table1()
	if len(tbl.Rows) != 6 {
		t.Errorf("Table 1 has %d rows, want 6", len(tbl.Rows))
	}
}

// parseSeconds extracts the float in a cell like "123.4".
func parseSeconds(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "s"), 64)
	if err != nil {
		t.Fatalf("bad cell %q: %v", cell, err)
	}
	return v
}

// Fig. 6's shape: for a large input, execution time decreases as kR
// grows (diminishing returns).
func TestFig6Shape(t *testing.T) {
	tbl, err := quickSuite().Fig6()
	if err != nil {
		t.Fatal(err)
	}
	// Rows for the 100GB input appear first (quick mode: 100, 1).
	var times []float64
	for _, row := range tbl.Rows {
		if row[0] == "100GB" {
			times = append(times, parseSeconds(t, row[2]))
		}
	}
	if len(times) < 3 {
		t.Fatalf("too few 100GB rows: %v", tbl.Rows)
	}
	if times[0] <= times[len(times)-1] {
		t.Errorf("100GB: kR=2 (%v) not slower than kR=64 (%v)", times[0], times[len(times)-1])
	}
}

// Fig. 7a: the best reducer count grows with map output volume.
func TestFig7aGrowth(t *testing.T) {
	tbl, err := quickSuite().Fig7a()
	if err != nil {
		t.Fatal(err)
	}
	first, err1 := strconv.Atoi(tbl.Rows[0][1])
	last, err2 := strconv.Atoi(tbl.Rows[len(tbl.Rows)-1][1])
	if err1 != nil || err2 != nil {
		t.Fatal("unparseable kR cells")
	}
	if last <= first {
		t.Errorf("best kR did not grow: %d → %d", first, last)
	}
}

// Fig. 7b: both p and q grow with volume / parallelism.
func TestFig7bMonotone(t *testing.T) {
	tbl, err := quickSuite().Fig7b()
	if err != nil {
		t.Fatal(err)
	}
	pFirst := parseSeconds(t, tbl.Rows[0][1])
	pLast := parseSeconds(t, tbl.Rows[len(tbl.Rows)-1][1])
	if pLast <= pFirst {
		t.Errorf("p did not grow: %v → %v", pFirst, pLast)
	}
}

// Fig. 8: the analytic estimate stays within 30% of the simulation.
func TestFig8Agreement(t *testing.T) {
	tbl, err := quickSuite().Fig8()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		ratio := parseSeconds(t, row[3])
		if ratio < 0.7 || ratio > 1.3 {
			t.Errorf("%s: estimate/sim ratio %v outside [0.7, 1.3]", row[0], ratio)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	tbl, err := quickSuite().Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("Table 2 rows = %d", len(tbl.Rows))
	}
	// Q1 selectivity must exceed Q3's (equality on station+day vs the
	// 3-day ordered window).
	q1 := parseSeconds(t, tbl.Rows[0][4])
	q3 := parseSeconds(t, tbl.Rows[2][4])
	if q1 <= q3 {
		t.Errorf("Q1 sel %v not above Q3 sel %v", q1, q3)
	}
}

// The headline result: our method beats every baseline on the complex
// queries and never loses badly anywhere (quick mode runs Q1 and Q3).
func TestMobileComparisonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison experiments are slow")
	}
	tbl, err := quickSuite().MobileComparison(96)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		ours := parseSeconds(t, row[2])
		ysmart := parseSeconds(t, row[3])
		hive := parseSeconds(t, row[4])
		pig := parseSeconds(t, row[5])
		if ours > ysmart*1.5 {
			t.Errorf("%s %s: ours %v much slower than YSmart %v", row[0], row[1], ours, ysmart)
		}
		if hive <= ysmart*0.9 {
			t.Errorf("%s %s: Hive %v beat YSmart %v", row[0], row[1], hive, ysmart)
		}
		if pig <= hive*0.99 {
			t.Errorf("%s %s: Pig %v not slower than Hive %v", row[0], row[1], pig, hive)
		}
		if row[0] == "Q3" && ours >= ysmart {
			t.Errorf("Q3: ours %v did not beat YSmart %v", ours, ysmart)
		}
	}
}

// kP awareness: our Q3 time must degrade less than YSmart's when
// processing units drop from 96 to 64.
func TestKPAwareness(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison experiments are slow")
	}
	s := quickSuite()
	wide, err := s.MobileComparison(96)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := s.MobileComparison(64)
	if err != nil {
		t.Fatal(err)
	}
	// Find the Q3 rows.
	var ourRatio, ysRatio float64
	for i, row := range wide.Rows {
		if row[0] == "Q3" {
			ourRatio = parseSeconds(t, narrow.Rows[i][2]) / parseSeconds(t, row[2])
			ysRatio = parseSeconds(t, narrow.Rows[i][3]) / parseSeconds(t, row[3])
		}
	}
	if ourRatio == 0 || ysRatio == 0 {
		t.Fatal("missing Q3 rows")
	}
	if ourRatio > ysRatio*1.1 {
		t.Errorf("ours degraded more than YSmart at kP=64: %.2fx vs %.2fx", ourRatio, ysRatio)
	}
}

func TestFig11Ordering(t *testing.T) {
	tbl, err := quickSuite().Fig11()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		hive := parseSeconds(t, row[1])
		plain := parseSeconds(t, row[2])
		ours := parseSeconds(t, row[3])
		if !(plain < ours && ours < hive) {
			t.Errorf("%s: ordering violated: plain %v, ours %v, hive %v", row[0], plain, ours, hive)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	tbl, err := quickSuite().Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("Table 3 rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[4] == "0.00e+00" {
			t.Errorf("%s produced an empty result", row[0])
		}
	}
}

func TestAblationPartitionShape(t *testing.T) {
	tbl, err := quickSuite().AblationPartition()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		h := parseSeconds(t, row[1])
		rm := parseSeconds(t, row[2])
		rnd := parseSeconds(t, row[3])
		if row[0] == "4" || row[0] == "32" {
			if !(h <= rm && rm <= rnd) {
				t.Errorf("kR=%s: Hilbert %v, row-major %v, random %v not ordered", row[0], h, rm, rnd)
			}
		}
	}
}

func TestAblationSchedulingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tbl, err := quickSuite().AblationScheduling()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		sched := parseSeconds(t, row[1])
		serial := parseSeconds(t, row[2])
		if sched > serial*1.01 {
			t.Errorf("kP=%s: scheduled %v worse than serial %v", row[0], sched, serial)
		}
	}
}

func TestAblationFeedbackShape(t *testing.T) {
	tbl, err := quickSuite().AblationFeedback()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("quick feedback ablation produced %d rows, want 2", len(tbl.Rows))
	}
	static, feedback := tbl.Rows[0], tbl.Rows[1]
	sBal := parseSeconds(t, static[2])
	fBal := parseSeconds(t, feedback[2])
	if fBal*1.5 > sBal {
		t.Errorf("feedback balance %v not materially better than static %v", fBal, sBal)
	}
	if static[5] != "0" || feedback[5] == "0" {
		t.Errorf("replanned counts: static %s feedback %s", static[5], feedback[5])
	}
}
