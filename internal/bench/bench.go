// Package bench regenerates every table and figure of the paper's
// evaluation section (§6) on the simulated cluster: model-calibration
// plots (Fig. 6–8), data loading (Fig. 11), the mobile benchmark
// (Table 2, Fig. 9–10), the TPC-H benchmark (Table 3, Fig. 12–13) and
// the ablation studies of the design choices DESIGN.md calls out.
//
// Each experiment returns a Table whose rows mirror the series the
// paper plots; EXPERIMENTS.md records paper-vs-measured values.
package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/cost"
	"repro/internal/mr"
	"repro/internal/obs"
	"repro/internal/relation"
)

// Table is a printable experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			pad := widths[i] - len(cell)
			fmt.Fprint(w, cell, strings.Repeat(" ", pad+2))
		}
		fmt.Fprintln(w)
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// Suite configures experiment execution. Quick mode trims sweeps for
// unit tests and testing.B iterations; full mode reproduces complete
// figure series.
type Suite struct {
	Cfg   mr.Config
	Quick bool
	// Seed offsets every experiment's data-generation and statistics-
	// sampling seed, so a whole suite run is reproducible from one
	// number. The default 1 reproduces the historical series exactly;
	// other values regenerate every experiment on fresh (but still
	// deterministic) data.
	Seed int64
	// Obs, when set, threads execution tracing and metrics through
	// every experiment's engine runs (see internal/obs). Nil disables
	// observability at zero cost.
	Obs *obs.Obs
}

// ctx returns the context experiments run under, carrying the suite's
// Obs when one is set.
func (s *Suite) ctx() context.Context {
	return obs.NewContext(context.Background(), s.Obs)
}

// NewSuite builds a suite around the paper's cluster configuration.
func NewSuite(quick bool) *Suite {
	cfg := mr.DefaultConfig()
	cfg.TuplesPerMapTask = 256
	return &Suite{Cfg: cfg, Quick: quick, Seed: 1}
}

// seedFor derives one experiment's seed from the suite seed: the
// default suite seed 1 maps x to itself (the pre-Seed behaviour), any
// other suite seed shifts every experiment deterministically.
func (s *Suite) seedFor(x int64) int64 { return x + (s.Seed-1)*1_000_003 }

func (s *Suite) params() cost.Params { return cost.FromConfig(s.Cfg) }

// fmtSec formats seconds the way the paper's axes read.
func fmtSec(v float64) string { return fmt.Sprintf("%.1f", v) }

func fmtGB(v float64) string {
	if v >= 1 {
		return fmt.Sprintf("%.0fGB", v)
	}
	return fmt.Sprintf("%.1fGB", v)
}

// Table1 prints the Hadoop parameter configuration (Table 1).
func (s *Suite) Table1() *Table {
	t := &Table{
		Title:   "Table 1: Hadoop parameter configuration",
		Columns: []string{"Parameter Name", "Default", "Set"},
	}
	c := s.Cfg
	t.AddRow("fs.blocksize", "64MB", fmt.Sprintf("%dMB", c.BlockSizeMB))
	t.AddRow("io.sort.mb", "100M", fmt.Sprintf("%dMB", c.IoSortMB))
	t.AddRow("io.sort.record.percentage", "0.05", fmt.Sprintf("%g", c.IoSortRecordPct))
	t.AddRow("io.sort.spill.percentage", "0.8", fmt.Sprintf("%g", c.IoSortSpillPct))
	t.AddRow("io.sort.factor", "100", fmt.Sprintf("%d", c.IoSortFactor))
	t.AddRow("dfs.replication", "3", fmt.Sprintf("%d", c.DFSReplication))
	return t
}

// sampleJoinInput builds the self-join sample input used by the
// Fig. 6/8 calibration jobs: an integer-keyed table whose modeled size
// is the given nominal volume.
func sampleJoinInput(name string, tuples int, keys int, gb float64) *relation.Relation {
	r := relation.New(name, relation.MustSchema(
		relation.Column{Name: "k", Kind: relation.KindInt},
		relation.Column{Name: "rid", Kind: relation.KindInt},
	))
	for i := 0; i < tuples; i++ {
		r.MustAppend(relation.Tuple{
			relation.Int(int64(i % keys)),
			relation.Int(int64(i)),
		})
	}
	if gb > 0 && r.EncodedSize() > 0 {
		r.VolumeMultiplier = gb * 1e9 / float64(r.EncodedSize())
	}
	return r
}

// selfJoinJob groups the sample input by key — the "sample Join task
// included in Hadoop's standard release" of §6.2.
func selfJoinJob(in *relation.Relation, kr int) *mr.Job {
	out := relation.MustSchema(
		relation.Column{Name: "k", Kind: relation.KindInt},
		relation.Column{Name: "pairs", Kind: relation.KindInt},
	)
	return &mr.Job{
		Name:   "sample-join",
		Inputs: []mr.Input{{Rel: in, Map: func(t relation.Tuple, emit mr.Emitter) { emit(uint64(t[0].Int64()), 0, t) }}},
		Reduce: func(key uint64, values []mr.Tagged, ctx *mr.ReduceContext) {
			n := int64(len(values))
			ctx.AddWork(n * n)
			ctx.Emit(relation.Tuple{values[0].Tuple[0], relation.Int(n * n)})
		},
		NumReducers:  kr,
		OutputName:   "sample-out",
		OutputSchema: out,
	}
}

// Fig6 sweeps the reducer count for the sample join at four input
// volumes (500/100/10/1 GB), reporting simulated execution time.
func (s *Suite) Fig6() (*Table, error) {
	t := &Table{
		Title:   "Fig 6: sample join execution time vs reduce tasks",
		Columns: []string{"input", "kR", "time(s)"},
	}
	volumes := []float64{500, 100, 10, 1}
	krs := []int{2, 4, 8, 16, 24, 32, 48, 64}
	if s.Quick {
		volumes = []float64{100, 1}
		krs = []int{2, 8, 32, 64}
	}
	timer := s.params().Timer()
	for _, gb := range volumes {
		in := sampleJoinInput("sample", 2048, 512, gb)
		for _, kr := range krs {
			res, err := mr.Run(s.ctx(), s.Cfg, timer, selfJoinJob(in, kr))
			if err != nil {
				return nil, err
			}
			t.AddRow(fmtGB(gb), fmt.Sprintf("%d", kr), fmtSec(res.Metrics.Sim.Total))
		}
	}
	return t, nil
}

// Fig7a reports the model's best reducer count for map output volumes
// 1–200 GB plus the paper's fitting-curve form kR ∝ sqrt(volume).
func (s *Suite) Fig7a() (*Table, error) {
	t := &Table{
		Title:   "Fig 7a: best kR vs map output volume",
		Columns: []string{"mapOutput", "best kR", "fit kR"},
	}
	p := s.params()
	volumes := []float64{1, 5, 10, 25, 50, 100, 150, 200}
	if s.Quick {
		volumes = []float64{1, 25, 200}
	}
	// Calibrate the fit constant on the largest volume.
	largest := volumes[len(volumes)-1]
	bigBest, err := p.BestReducers(fig7Profile(s.Cfg, largest), 512)
	if err != nil {
		return nil, err
	}
	fitC := float64(bigBest.N) / sqrt(largest)
	for _, gb := range volumes {
		best, err := p.BestReducers(fig7Profile(s.Cfg, gb), 512)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmtGB(gb), fmt.Sprintf("%d", best.N), fmt.Sprintf("%.0f", fitC*sqrt(gb)))
	}
	return t, nil
}

func fig7Profile(cfg mr.Config, outGB float64) cost.JobProfile {
	inBytes := int64(outGB * 1e9) // alpha=1 sample join: output ≈ input
	mt := int(inBytes / (int64(cfg.BlockSizeMB) * 1e6))
	if mt < 1 {
		mt = 1
	}
	return cost.JobProfile{
		InputBytes: inBytes,
		MapTasks:   mt,
		MapSlots:   cfg.MapSlots,
		Alpha:      1,
		Beta:       0.05,
	}
}

func sqrt(x float64) float64 { return math.Sqrt(x) }

// Fig7b reports the calibrated p (spill) and q (connection) variables
// across map output volumes, as the paper plots on log-log axes.
func (s *Suite) Fig7b() (*Table, error) {
	t := &Table{
		Title:   "Fig 7b: p and q vs map output volume",
		Columns: []string{"mapOutput", "p (s/MB)", "q (s/conn)"},
	}
	p := s.params()
	volumes := []float64{0.1, 0.5, 1, 5, 10, 50, 100, 500}
	if s.Quick {
		volumes = []float64{0.1, 10, 500}
	}
	for _, gb := range volumes {
		bytes := int64(gb * 1e9)
		best, err := p.BestReducers(fig7Profile(s.Cfg, gb), 512)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmtGB(gb),
			fmt.Sprintf("%.4f", p.P(bytes)*1e6),
			fmt.Sprintf("%.4f", p.Q(best.N)))
	}
	return t, nil
}

// Fig8 validates the cost model: the analytic Eq. 1–6 estimate against
// the event-driven simulated execution time of a real self-join job,
// across map output sizes.
func (s *Suite) Fig8() (*Table, error) {
	t := &Table{
		Title:   "Fig 8: cost model validation (self-join)",
		Columns: []string{"mapOutput", "simulated(s)", "estimated(s)", "ratio"},
	}
	p := s.params()
	timer := p.Timer()
	volumes := []float64{0.1, 0.5, 1, 5, 10, 50, 100}
	if s.Quick {
		volumes = []float64{0.5, 10, 100}
	}
	for _, gb := range volumes {
		in := sampleJoinInput("mob-self", 2048, 256, gb)
		kr := 16
		res, err := mr.Run(s.ctx(), s.Cfg, timer, selfJoinJob(in, kr))
		if err != nil {
			return nil, err
		}
		prof := cost.ProfileFromMetrics(res.Metrics, s.Cfg)
		est, err := p.Estimate(prof, kr)
		if err != nil {
			return nil, err
		}
		sim := res.Metrics.Sim.Total
		t.AddRow(fmtGB(gb), fmtSec(sim), fmtSec(est.T), fmt.Sprintf("%.2f", est.T/sim))
	}
	return t, nil
}

// sortRowsByFirst orders rows for deterministic output when built from
// maps.
func sortRowsByFirst(rows [][]string) {
	sort.Slice(rows, func(i, j int) bool { return rows[i][0] < rows[j][0] })
}
