package bench

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/query"
	"repro/internal/workloads"
)

// Table2 reports the mobile benchmark query statistics: relation
// count, inequality functions, join condition count and the measured
// result selectivity on the generated data.
func (s *Suite) Table2() (*Table, error) {
	t := &Table{
		Title:   "Table 2: mobile benchmark query statistics",
		Columns: []string{"Q", "Relations Cnt.", "Inequality Func.", "Join Cnt.", "Result Sel."},
	}
	tuples := 120
	if s.Quick {
		tuples = 60
	}
	for n := 1; n <= 4; n++ {
		q, err := workloads.MobileQuery(n)
		if err != nil {
			return nil, err
		}
		cfg := workloads.DefaultMobileConfig()
		cfg.Tuples = tuples
		cfg.Seed = s.seedFor(int64(n))
		db, err := workloads.MobileDB(cfg, 200)
		if err != nil {
			return nil, err
		}
		sel, err := core.ExactQuerySelectivity(q, db)
		if err != nil {
			return nil, err
		}
		t.AddRow(q.Name,
			fmt.Sprintf("%d", len(q.Relations)),
			opsString(q),
			fmt.Sprintf("%d", len(q.Conditions)),
			fmt.Sprintf("%.5f", sel))
	}
	return t, nil
}

// Table3 reports the TPC-H query statistics.
func (s *Suite) Table3() (*Table, error) {
	t := &Table{
		Title:   "Table 3: TPC-H query statistics",
		Columns: []string{"Q", "Relations Cnt.", "Inequality Func.", "Join Cnt.", "Result Sel."},
	}
	scale := 0.4
	if s.Quick {
		scale = 0.2
	}
	for _, n := range []int{7, 17, 18, 21} {
		q, err := workloads.TPCHQuery(n)
		if err != nil {
			return nil, err
		}
		cfg := workloads.DefaultTPCHConfig()
		cfg.Scale = scale
		cfg.Seed = s.seedFor(int64(n))
		db, err := workloads.TPCHDB(cfg, 200)
		if err != nil {
			return nil, err
		}
		sel, err := core.ExactQuerySelectivity(q, db)
		if err != nil {
			return nil, err
		}
		t.AddRow(q.Name,
			fmt.Sprintf("%d", len(q.Relations)),
			opsString(q),
			fmt.Sprintf("%d", len(q.Conditions)),
			fmt.Sprintf("%.2e", sel))
	}
	return t, nil
}

func opsString(q *query.Query) string {
	ops := core.InequalityFuncs(q)
	out := "{"
	for i, op := range ops {
		if i > 0 {
			out += ","
		}
		out += op.String()
	}
	return out + "}"
}

// comparisonRow runs one (query, volume) cell of Fig. 9/10/12/13:
// the paper's method plus the three baselines. The returned shuffle
// bytes are our method's total network copy volume (the interned
// string keys make this visibly smaller than the raw-string layout).
func (s *Suite) comparisonRow(q *query.Query, db *core.DB, kp int) ([]float64, int64, error) {
	cfg := s.Cfg
	if cfg.MapSlots > kp {
		cfg.MapSlots = kp
	}
	cfg.ReduceSlots = kp

	pl := core.NewPlanner(cfg, kp)
	pl.Opts.MaxCells = 1 << 14
	_, res, err := pl.RunContext(s.ctx(), q, db)
	if err != nil {
		return nil, 0, fmt.Errorf("our method on %s: %w", q.Name, err)
	}
	times := []float64{res.Makespan}
	params := pl.Params
	// Baselines request the cluster's configured reducer capacity (the
	// "as many reduce tasks as possible" policy) even when the
	// available units kP are fewer — the k_P obliviousness the paper's
	// Fig. 10/13 exposes.
	for _, st := range []baselines.Strategy{baselines.YSmart(), baselines.Hive(), baselines.Pig()} {
		bres, err := baselines.Run(s.ctx(), st, cfg, params, q, db, s.Cfg.ReduceSlots)
		if err != nil {
			return nil, 0, fmt.Errorf("%s on %s: %w", st.Name, q.Name, err)
		}
		times = append(times, bres.TotalTime)
	}
	return times, res.ShuffleBytes, nil
}

// MobileComparison is Fig. 9 (kp=96) and Fig. 10 (kp=64): execution
// time of Q1–Q4 over the mobile data at 20/100/500 GB.
func (s *Suite) MobileComparison(kp int) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Fig %s: mobile queries, kP <= %d", figNameMobile(kp), kp),
		Columns: []string{"Q", "volume", "Our Method(s)", "YSmart(s)", "Hive(s)", "Pig(s)", "Shuffle(GB)"},
	}
	volumes := []float64{20, 100, 500}
	queries := []int{1, 2, 3, 4}
	if s.Quick {
		volumes = []float64{20}
		queries = []int{1, 3}
	}
	for _, qn := range queries {
		q, err := workloads.MobileQuery(qn)
		if err != nil {
			return nil, err
		}
		for _, gb := range volumes {
			mcfg := workloads.DefaultMobileConfig()
			mcfg.Tuples = workloads.MobileTuplesFor(qn, gb)
			mcfg.NominalGB = gb
			mcfg.Seed = s.seedFor(int64(qn*1000) + int64(gb))
			db, err := workloads.MobileDB(mcfg, 300)
			if err != nil {
				return nil, err
			}
			times, shuffle, err := s.comparisonRow(q, db, kp)
			if err != nil {
				return nil, err
			}
			t.AddRow(q.Name, fmtGB(gb),
				fmtSec(times[0]), fmtSec(times[1]), fmtSec(times[2]), fmtSec(times[3]),
				fmt.Sprintf("%.2f", float64(shuffle)/1e9))
		}
	}
	return t, nil
}

func figNameMobile(kp int) string {
	if kp >= 96 {
		return "9"
	}
	return "10"
}

// TPCHComparison is Fig. 12 (kp=96) and Fig. 13 (kp=64): Q7, Q17, Q18
// and Q21 over 200/500/1000 GB TPC-H data.
func (s *Suite) TPCHComparison(kp int) (*Table, error) {
	fig := "12"
	if kp < 96 {
		fig = "13"
	}
	t := &Table{
		Title:   fmt.Sprintf("Fig %s: TPC-H queries, kP <= %d", fig, kp),
		Columns: []string{"Q", "volume", "Our Method(s)", "YSmart(s)", "Hive(s)", "Pig(s)", "Shuffle(GB)"},
	}
	volumes := []float64{200, 500, 1000}
	queries := []int{7, 17, 18, 21}
	if s.Quick {
		volumes = []float64{200}
		queries = []int{17}
	}
	for _, qn := range queries {
		q, err := workloads.TPCHQuery(qn)
		if err != nil {
			return nil, err
		}
		for _, gb := range volumes {
			tcfg := workloads.DefaultTPCHConfig()
			tcfg.Scale = workloads.TPCHRowsFor(qn, gb)
			tcfg.NominalGB = gb
			tcfg.Seed = s.seedFor(int64(qn*1000) + int64(gb))
			db, err := workloads.TPCHDB(tcfg, 300)
			if err != nil {
				return nil, err
			}
			times, shuffle, err := s.comparisonRow(q, db, kp)
			if err != nil {
				return nil, err
			}
			t.AddRow(q.Name, fmtGB(gb),
				fmtSec(times[0]), fmtSec(times[1]), fmtSec(times[2]), fmtSec(times[3]),
				fmt.Sprintf("%.2f", float64(shuffle)/1e9))
		}
	}
	return t, nil
}

// Fig11 compares data-loading time across methods and volumes.
func (s *Suite) Fig11() (*Table, error) {
	t := &Table{
		Title:   "Fig 11: data loading time",
		Columns: []string{"volume", "Hive(s)", "Plain Upload(s)", "Our Method(s)"},
	}
	volumes := []float64{1, 10, 50, 100, 250, 500}
	if s.Quick {
		volumes = []float64{1, 100, 500}
	}
	for _, gb := range volumes {
		var secs [3]float64
		for i, m := range []dfs.LoadMethod{dfs.LoadHive, dfs.LoadPlain, dfs.LoadOurs} {
			store, err := dfs.NewStore(s.Cfg, 12)
			if err != nil {
				return nil, err
			}
			mcfg := workloads.DefaultMobileConfig()
			mcfg.Tuples = 2000
			mcfg.NominalGB = gb
			rep, err := store.Upload(workloads.MobileTable(mcfg), m, 1000, 1)
			if err != nil {
				return nil, err
			}
			secs[i] = rep.Seconds
		}
		t.AddRow(fmtGB(gb), fmtSec(secs[0]), fmtSec(secs[1]), fmtSec(secs[2]))
	}
	return t, nil
}
