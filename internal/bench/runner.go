package bench

import (
	"fmt"
	"io"
	"sort"
)

// Experiment names accepted by Run, in paper order.
const (
	ExpTable1   = "table1"
	ExpFig6     = "fig6"
	ExpFig7a    = "fig7a"
	ExpFig7b    = "fig7b"
	ExpFig8     = "fig8"
	ExpTable2   = "table2"
	ExpFig9     = "fig9"
	ExpFig10    = "fig10"
	ExpFig11    = "fig11"
	ExpTable3   = "table3"
	ExpFig12    = "fig12"
	ExpFig13    = "fig13"
	ExpAblation = "ablation"
)

// Experiments lists every runnable experiment id in paper order.
func Experiments() []string {
	return []string{
		ExpTable1, ExpFig6, ExpFig7a, ExpFig7b, ExpFig8,
		ExpTable2, ExpFig9, ExpFig10, ExpFig11,
		ExpTable3, ExpFig12, ExpFig13, ExpAblation,
	}
}

// Run executes one experiment by id and prints its table(s) to w.
func (s *Suite) Run(id string, w io.Writer) error {
	tables, err := s.Tables(id)
	if err != nil {
		return err
	}
	for _, t := range tables {
		t.Fprint(w)
	}
	return nil
}

// Tables produces the result tables of one experiment.
func (s *Suite) Tables(id string) ([]*Table, error) {
	one := func(t *Table, err error) ([]*Table, error) {
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	}
	switch id {
	case ExpTable1:
		return []*Table{s.Table1()}, nil
	case ExpFig6:
		return one(s.Fig6())
	case ExpFig7a:
		return one(s.Fig7a())
	case ExpFig7b:
		return one(s.Fig7b())
	case ExpFig8:
		return one(s.Fig8())
	case ExpTable2:
		return one(s.Table2())
	case ExpFig9:
		return one(s.MobileComparison(96))
	case ExpFig10:
		return one(s.MobileComparison(64))
	case ExpFig11:
		return one(s.Fig11())
	case ExpTable3:
		return one(s.Table3())
	case ExpFig12:
		return one(s.TPCHComparison(96))
	case ExpFig13:
		return one(s.TPCHComparison(64))
	case ExpAblation:
		var out []*Table
		for _, f := range []func() (*Table, error){
			s.AblationPartition, s.AblationSingleVsCascade, s.AblationKR, s.AblationScheduling,
			s.AblationFeedback,
		} {
			t, err := f()
			if err != nil {
				return nil, err
			}
			out = append(out, t)
		}
		return out, nil
	default:
		known := Experiments()
		sort.Strings(known)
		return nil, fmt.Errorf("bench: unknown experiment %q (known: %v)", id, known)
	}
}

// RunAll executes every experiment in paper order.
func (s *Suite) RunAll(w io.Writer) error {
	for _, id := range Experiments() {
		if err := s.Run(id, w); err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
	}
	return nil
}
