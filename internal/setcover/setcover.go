// Package setcover solves the weighted set-cover instances arising in
// T_opt selection (§5.2): after G'_JP supplies candidate MapReduce
// jobs, a sufficient subset covering every join condition must be
// chosen at minimum cost. The paper uses the greedy algorithm, which
// achieves the ln(n) approximation threshold of Feige [14]; an
// exhaustive solver covers small instances (planning real queries,
// whose graphs have at most a handful of conditions, and validating
// greedy's approximation ratio in tests).
package setcover

import (
	"fmt"
	"math/bits"
	"sort"
)

// Set is one candidate: it covers Elems (1-based element IDs ≤ 63) at
// the given weight.
type Set struct {
	ID     int
	Elems  []int
	Weight float64
}

func (s Set) mask() uint64 {
	var m uint64
	for _, e := range s.Elems {
		m |= 1 << uint(e-1)
	}
	return m
}

func universeMask(universe []int) uint64 {
	var m uint64
	for _, e := range universe {
		m |= 1 << uint(e-1)
	}
	return m
}

func validate(universe []int, sets []Set) error {
	if len(universe) == 0 {
		return fmt.Errorf("setcover: empty universe")
	}
	for _, e := range universe {
		if e < 1 || e > 63 {
			return fmt.Errorf("setcover: element %d outside [1,63]", e)
		}
	}
	if len(sets) == 0 {
		return fmt.Errorf("setcover: no candidate sets")
	}
	for _, s := range sets {
		if s.Weight < 0 {
			return fmt.Errorf("setcover: set %d has negative weight", s.ID)
		}
		for _, e := range s.Elems {
			if e < 1 || e > 63 {
				return fmt.Errorf("setcover: set %d element %d outside [1,63]", s.ID, e)
			}
		}
	}
	var cover uint64
	for _, s := range sets {
		cover |= s.mask()
	}
	if want := universeMask(universe); cover&want != want {
		return fmt.Errorf("setcover: candidates cannot cover the universe")
	}
	return nil
}

// Greedy picks sets by maximum newly-covered-elements per unit weight
// until the universe is covered, returning chosen set IDs in selection
// order. Deterministic: ties break on lower weight, then lower ID.
func Greedy(universe []int, sets []Set) ([]int, error) {
	if err := validate(universe, sets); err != nil {
		return nil, err
	}
	want := universeMask(universe)
	var covered uint64
	var chosen []int
	remaining := append([]Set(nil), sets...)
	for covered&want != want {
		bestIdx := -1
		bestRatio := 0.0
		for i, s := range remaining {
			gain := bits.OnesCount64(s.mask() & want &^ covered)
			if gain == 0 {
				continue
			}
			var ratio float64
			if s.Weight == 0 {
				ratio = float64(gain) * 1e18 // free sets first
			} else {
				ratio = float64(gain) / s.Weight
			}
			if bestIdx == -1 || ratio > bestRatio ||
				(ratio == bestRatio && less(s, remaining[bestIdx])) {
				bestIdx, bestRatio = i, ratio
			}
		}
		if bestIdx == -1 {
			return nil, fmt.Errorf("setcover: greedy stalled (universe uncoverable)")
		}
		covered |= remaining[bestIdx].mask()
		chosen = append(chosen, remaining[bestIdx].ID)
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return chosen, nil
}

func less(a, b Set) bool {
	if a.Weight != b.Weight {
		return a.Weight < b.Weight
	}
	return a.ID < b.ID
}

// Exhaustive finds the minimum-total-weight cover by trying all 2^k
// subsets. It refuses instances with more than maxSets candidates
// (default 20). Returns the chosen IDs (ascending), total weight.
func Exhaustive(universe []int, sets []Set, maxSets int) ([]int, float64, error) {
	if err := validate(universe, sets); err != nil {
		return nil, 0, err
	}
	if maxSets <= 0 {
		maxSets = 20
	}
	if len(sets) > maxSets {
		return nil, 0, fmt.Errorf("setcover: %d sets exceed exhaustive limit %d", len(sets), maxSets)
	}
	want := universeMask(universe)
	masks := make([]uint64, len(sets))
	for i, s := range sets {
		masks[i] = s.mask()
	}
	bestWeight := -1.0
	var bestSubset uint64
	for sub := uint64(1); sub < uint64(1)<<uint(len(sets)); sub++ {
		var cover uint64
		var weight float64
		for i := 0; i < len(sets); i++ {
			if sub&(1<<uint(i)) != 0 {
				cover |= masks[i]
				weight += sets[i].Weight
			}
		}
		if cover&want != want {
			continue
		}
		if bestWeight < 0 || weight < bestWeight {
			bestWeight = weight
			bestSubset = sub
		}
	}
	if bestWeight < 0 {
		return nil, 0, fmt.Errorf("setcover: no cover exists")
	}
	var ids []int
	for i := 0; i < len(sets); i++ {
		if bestSubset&(1<<uint(i)) != 0 {
			ids = append(ids, sets[i].ID)
		}
	}
	sort.Ints(ids)
	return ids, bestWeight, nil
}

// TotalWeight sums the weights of the identified sets.
func TotalWeight(sets []Set, ids []int) float64 {
	byID := make(map[int]float64, len(sets))
	for _, s := range sets {
		byID[s.ID] = s.Weight
	}
	var w float64
	for _, id := range ids {
		w += byID[id]
	}
	return w
}

// Covers reports whether the identified sets cover the universe.
func Covers(universe []int, sets []Set, ids []int) bool {
	byID := make(map[int]uint64, len(sets))
	for _, s := range sets {
		byID[s.ID] = s.mask()
	}
	var cover uint64
	for _, id := range ids {
		cover |= byID[id]
	}
	want := universeMask(universe)
	return cover&want == want
}
