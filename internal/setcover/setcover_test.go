package setcover

import (
	"math"
	"math/rand"
	"testing"
)

func TestGreedyBasic(t *testing.T) {
	universe := []int{1, 2, 3, 4, 5}
	sets := []Set{
		{ID: 1, Elems: []int{1, 2, 3}, Weight: 3},
		{ID: 2, Elems: []int{4, 5}, Weight: 2},
		{ID: 3, Elems: []int{1}, Weight: 2}, // ratio 0.5: never competitive
	}
	ids, err := Greedy(universe, sets)
	if err != nil {
		t.Fatal(err)
	}
	if !Covers(universe, sets, ids) {
		t.Fatalf("greedy result %v does not cover", ids)
	}
	if len(ids) != 2 {
		t.Errorf("greedy chose %v, want 2 sets", ids)
	}
}

func TestGreedyValidation(t *testing.T) {
	sets := []Set{{ID: 1, Elems: []int{1}, Weight: 1}}
	if _, err := Greedy(nil, sets); err == nil {
		t.Error("empty universe accepted")
	}
	if _, err := Greedy([]int{1}, nil); err == nil {
		t.Error("no sets accepted")
	}
	if _, err := Greedy([]int{1, 2}, sets); err == nil {
		t.Error("uncoverable universe accepted")
	}
	if _, err := Greedy([]int{99}, sets); err == nil {
		t.Error("element out of range accepted")
	}
	if _, err := Greedy([]int{1}, []Set{{ID: 1, Elems: []int{1}, Weight: -1}}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := Greedy([]int{1}, []Set{{ID: 1, Elems: []int{70}, Weight: 1}}); err == nil {
		t.Error("set element out of range accepted")
	}
}

func TestGreedyZeroWeightPreferred(t *testing.T) {
	universe := []int{1, 2}
	sets := []Set{
		{ID: 1, Elems: []int{1, 2}, Weight: 5},
		{ID: 2, Elems: []int{1}, Weight: 0},
		{ID: 3, Elems: []int{2}, Weight: 0},
	}
	ids, err := Greedy(universe, sets)
	if err != nil {
		t.Fatal(err)
	}
	w := TotalWeight(sets, ids)
	if w != 0 {
		t.Errorf("greedy weight %v, want 0 (chose %v)", w, ids)
	}
}

func TestExhaustiveOptimal(t *testing.T) {
	universe := []int{1, 2, 3, 4}
	sets := []Set{
		{ID: 1, Elems: []int{1, 2}, Weight: 2},
		{ID: 2, Elems: []int{3, 4}, Weight: 2},
		{ID: 3, Elems: []int{1, 2, 3, 4}, Weight: 3.5},
		{ID: 4, Elems: []int{2, 3}, Weight: 1},
	}
	ids, w, err := Exhaustive(universe, sets, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w != 3.5 || len(ids) != 1 || ids[0] != 3 {
		t.Errorf("exhaustive = %v (w=%v), want set 3 at 3.5", ids, w)
	}
}

func TestExhaustiveLimits(t *testing.T) {
	universe := []int{1}
	var sets []Set
	for i := 0; i < 25; i++ {
		sets = append(sets, Set{ID: i, Elems: []int{1}, Weight: 1})
	}
	if _, _, err := Exhaustive(universe, sets, 20); err == nil {
		t.Error("oversized instance accepted")
	}
}

// Greedy is within Hn = ln(n)+1 of optimum on random instances
// (Feige's threshold); verify against exhaustive on small instances.
func TestGreedyApproximationRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 8
	universe := make([]int, n)
	for i := range universe {
		universe[i] = i + 1
	}
	hn := 0.0
	for i := 1; i <= n; i++ {
		hn += 1 / float64(i)
	}
	for trial := 0; trial < 60; trial++ {
		var sets []Set
		// Guarantee coverability with singletons, then add random sets.
		for i := 0; i < n; i++ {
			sets = append(sets, Set{ID: i + 1, Elems: []int{i + 1}, Weight: 1 + rng.Float64()*3})
		}
		for i := 0; i < 8; i++ {
			var elems []int
			for e := 1; e <= n; e++ {
				if rng.Intn(2) == 0 {
					elems = append(elems, e)
				}
			}
			if len(elems) == 0 {
				elems = []int{1}
			}
			sets = append(sets, Set{ID: 100 + i, Elems: elems, Weight: 0.5 + rng.Float64()*4})
		}
		greedyIDs, err := Greedy(universe, sets)
		if err != nil {
			t.Fatal(err)
		}
		if !Covers(universe, sets, greedyIDs) {
			t.Fatal("greedy does not cover")
		}
		_, optW, err := Exhaustive(universe, sets, 16)
		if err != nil {
			t.Fatal(err)
		}
		gw := TotalWeight(sets, greedyIDs)
		if gw > optW*hn+1e-9 {
			t.Errorf("trial %d: greedy %v exceeds Hn bound %v (opt %v)", trial, gw, optW*hn, optW)
		}
	}
}

func TestGreedyDeterministic(t *testing.T) {
	universe := []int{1, 2, 3}
	sets := []Set{
		{ID: 1, Elems: []int{1, 2}, Weight: 2},
		{ID: 2, Elems: []int{2, 3}, Weight: 2},
		{ID: 3, Elems: []int{1, 3}, Weight: 2},
	}
	first, err := Greedy(universe, sets)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		got, err := Greedy(universe, sets)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(first) {
			t.Fatal("nondeterministic cover size")
		}
		for j := range got {
			if got[j] != first[j] {
				t.Fatal("nondeterministic cover order")
			}
		}
	}
}

func TestCoversAndTotalWeight(t *testing.T) {
	universe := []int{1, 2}
	sets := []Set{
		{ID: 7, Elems: []int{1}, Weight: 1.5},
		{ID: 8, Elems: []int{2}, Weight: 2.5},
	}
	if Covers(universe, sets, []int{7}) {
		t.Error("partial cover reported complete")
	}
	if !Covers(universe, sets, []int{7, 8}) {
		t.Error("complete cover reported partial")
	}
	if w := TotalWeight(sets, []int{7, 8}); math.Abs(w-4) > 1e-12 {
		t.Errorf("TotalWeight = %v", w)
	}
}
