// Package joinpath constructs the pruned join-path graph G'_JP of the
// paper (§3.1 Definition 3, §5.2 Algorithm 2).
//
// An edge e' of the join-path graph is a no-edge-repeating path between
// two vertices of the join graph G_J: a set of theta conditions that
// one MapReduce job can evaluate together. The full G_JP is
// #P-complete to build (Theorem 1: it subsumes counting Eulerian
// trails), so Algorithm 2 builds a sufficient subgraph by enumerating
// L-hop paths in increasing length and pruning candidates that are
// dominated under Lemma 1 (a cheaper group of already-accepted edges
// covers the same conditions with fewer processing units) and Lemma 2
// (any superset of a pruned label set is pruned too).
package joinpath

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/query"
)

// PathEdge is one e' ∈ G'_JP.E: a candidate MapReduce job.
type PathEdge struct {
	U, V    string // endpoints in G_J
	EdgeIDs []int  // l'(e'): the condition IDs covered, ascending
	Weight  float64
	// Reducers is s(e'): the reduce-task count achieving Weight.
	Reducers int
	mask     uint64
}

// Label returns the condition-ID set as a canonical string, for
// debugging and test assertions.
func (e PathEdge) Label() string {
	return fmt.Sprintf("%v", e.EdgeIDs)
}

// CostFunc estimates the minimum evaluation cost w(e') and the reducer
// allotment s(e') for a MapReduce job covering the given condition IDs.
// The planner supplies this from the Eq. 1–6 model.
type CostFunc func(edgeIDs []int) (weight float64, reducers int, err error)

// Options bound the enumeration.
type Options struct {
	// MaxPathLen caps L, the number of conditions per candidate;
	// 0 means the total condition count (all lengths).
	MaxPathLen int
	// MaxCandidates aborts pathological enumerations; 0 means 100000.
	MaxCandidates int
	// DisablePruning keeps every enumerated candidate (used by tests
	// and the exhaustive small-query planner to compare against the
	// pruned graph).
	DisablePruning bool
	// DisableLemma2 keeps Lemma 1's per-candidate domination check but
	// skips the superset propagation of Lemma 2. Lemma 2 assumes the
	// conditions beyond a pruned subset can be evaluated separately at
	// no extra cost — sound when every candidate uses the same
	// partitioning scheme (the paper's pure-Hilbert setting), but
	// wrong when a superset can switch to a cheaper physical operator
	// (e.g. equality conditions making an entire candidate share-grid
	// partitionable while the pruned equi subset looked replaceable).
	DisableLemma2 bool
}

// Graph is G'_JP: the retained candidate jobs.
type Graph struct {
	Edges []PathEdge
	// PrunedCount reports how many enumerated candidates the lemmas
	// discarded (observability for the ablation experiments).
	PrunedCount int
}

// Sufficient reports whether choosing the edges indexed by idxs covers
// every condition of the join graph (Definition 4).
func (g *Graph) Sufficient(idxs []int, totalConditions int) bool {
	var mask uint64
	for _, i := range idxs {
		if i < 0 || i >= len(g.Edges) {
			return false
		}
		mask |= g.Edges[i].mask
	}
	want := fullMask(totalConditions)
	return mask == want
}

// Build runs Algorithm 2 on the join graph.
func Build(g *query.JoinGraph, cost CostFunc, opts Options) (*Graph, error) {
	n := len(g.Edges)
	if n == 0 {
		return nil, fmt.Errorf("joinpath: join graph has no edges")
	}
	if n > 63 {
		return nil, fmt.Errorf("joinpath: %d conditions exceed the 63-condition limit", n)
	}
	maxLen := opts.MaxPathLen
	if maxLen <= 0 || maxLen > n {
		maxLen = n
	}
	maxCand := opts.MaxCandidates
	if maxCand <= 0 {
		maxCand = 100000
	}

	cands, err := enumerate(g, maxLen, maxCand)
	if err != nil {
		return nil, err
	}
	// Increasing path length first (Algorithm 2's L loop), then
	// deterministic tiebreak by endpoints and mask.
	sort.Slice(cands, func(a, b int) bool {
		la, lb := bits.OnesCount64(cands[a].mask), bits.OnesCount64(cands[b].mask)
		if la != lb {
			return la < lb
		}
		if cands[a].U != cands[b].U {
			return cands[a].U < cands[b].U
		}
		if cands[a].V != cands[b].V {
			return cands[a].V < cands[b].V
		}
		return cands[a].mask < cands[b].mask
	})

	out := &Graph{}
	// WL: accepted edges sorted ascending by weight (Alg. 2's sorted list).
	var wl []PathEdge
	var prunedMasks []uint64
	for _, c := range cands {
		if !opts.DisablePruning && !opts.DisableLemma2 && supersetOfPruned(c.mask, prunedMasks) {
			// Lemma 2: contains a pruned label set.
			out.PrunedCount++
			continue
		}
		w, s, err := cost(c.EdgeIDs)
		if err != nil {
			return nil, fmt.Errorf("joinpath: costing %v: %w", c.EdgeIDs, err)
		}
		c.Weight, c.Reducers = w, s
		if !opts.DisablePruning && dominatedByGroup(c, wl) {
			// Lemma 1: a cheaper accepted group covers these conditions.
			out.PrunedCount++
			prunedMasks = append(prunedMasks, c.mask)
			continue
		}
		out.Edges = append(out.Edges, c)
		// Insert into WL keeping ascending weight order.
		pos := sort.Search(len(wl), func(i int) bool { return wl[i].Weight >= c.Weight })
		wl = append(wl, PathEdge{})
		copy(wl[pos+1:], wl[pos:])
		wl[pos] = c
	}
	if len(out.Edges) == 0 {
		return nil, fmt.Errorf("joinpath: pruning removed every candidate")
	}
	return out, nil
}

// dominatedByGroup applies Lemma 1: scan the accepted edges in
// ascending weight order, greedily collecting edges that contribute
// uncovered conditions of c. If the group covers l'(c) while every
// member is strictly cheaper (guaranteed by stopping the scan at
// weight ≥ w(c)) and the group's total reducer demand does not exceed
// s(c), the candidate is dominated.
func dominatedByGroup(c PathEdge, wl []PathEdge) bool {
	var covered uint64
	var sumReducers int
	for _, e := range wl {
		if e.Weight >= c.Weight {
			break // condition 2 of Lemma 1 would fail from here on
		}
		add := e.mask & c.mask &^ covered
		if add == 0 {
			continue
		}
		covered |= add
		sumReducers += e.Reducers
		if covered&c.mask == c.mask {
			// Condition 3: the substitute group must not demand more
			// processing units than the candidate.
			return sumReducers <= c.Reducers
		}
	}
	return false
}

func supersetOfPruned(mask uint64, pruned []uint64) bool {
	for _, p := range pruned {
		if mask&p == p && mask != p {
			return true
		}
	}
	return false
}

type dfsState struct {
	g        *query.JoinGraph
	maxLen   int
	maxCand  int
	seen     map[uint64]bool
	cands    []PathEdge
	overflow bool
}

// enumerate lists every no-edge-repeating path of length ≤ maxLen
// between every vertex pair, deduplicated by (endpoints, condition
// set) — the paper "only cares what edges are involved in a path".
func enumerate(g *query.JoinGraph, maxLen, maxCand int) ([]PathEdge, error) {
	st := &dfsState{g: g, maxLen: maxLen, maxCand: maxCand, seen: make(map[uint64]bool)}
	starts := append([]string(nil), g.Vertices...)
	sort.Strings(starts)
	for _, v := range starts {
		st.dfs(v, v, 0, 0)
		if st.overflow {
			return nil, fmt.Errorf("joinpath: candidate explosion beyond %d; raise Options.MaxCandidates", maxCand)
		}
	}
	return st.cands, nil
}

func (st *dfsState) dfs(start, cur string, mask uint64, depth int) {
	if st.overflow {
		return
	}
	if depth > 0 {
		u, v := start, cur
		if u > v {
			u, v = v, u
		}
		// Candidates are determined by their condition set alone — the
		// MRJ evaluating {θ_i} is the same regardless of which path
		// traversal discovered it — so deduplication is by mask only.
		// Circuits (u == v, e.g. two parallel conditions between the
		// same relation pair traversed out and back) are valid
		// candidates: one job evaluating both conditions.
		if !st.seen[mask] {
			st.seen[mask] = true
			st.cands = append(st.cands, PathEdge{
				U: u, V: v,
				EdgeIDs: maskToIDs(mask),
				mask:    mask,
			})
			if len(st.cands) > st.maxCand {
				st.overflow = true
				return
			}
		}
	}
	if depth == st.maxLen {
		return
	}
	for _, e := range st.g.Adjacent(cur) {
		bit := uint64(1) << uint(e.ID-1)
		if mask&bit != 0 {
			continue // no-edge-repeating
		}
		st.dfs(start, e.Other(cur), mask|bit, depth+1)
	}
}

func maskToIDs(mask uint64) []int {
	var ids []int
	for mask != 0 {
		b := bits.TrailingZeros64(mask)
		ids = append(ids, b+1)
		mask &^= 1 << uint(b)
	}
	return ids
}

func fullMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}

// IDsToMask converts condition IDs (1-based) to a bitmask; exported
// for the planner's set-cover bridge.
func IDsToMask(ids []int) uint64 {
	var m uint64
	for _, id := range ids {
		m |= 1 << uint(id-1)
	}
	return m
}
