package joinpath

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/predicate"
	"repro/internal/query"
)

// fig1 builds the Fig. 1 join graph: R1–R5 with
// θ1(R1,R2) θ2(R2,R3) θ3(R1,R3) θ4(R3,R4) θ5(R3,R5) θ6(R4,R5).
func fig1(t *testing.T) *query.JoinGraph {
	t.Helper()
	q, err := query.New("fig1",
		[]string{"R1", "R2", "R3", "R4", "R5"},
		[]predicate.Condition{
			predicate.C("R1", "a", predicate.LT, "R2", "a"),
			predicate.C("R2", "a", predicate.LT, "R3", "a"),
			predicate.C("R1", "a", predicate.LT, "R3", "a"),
			predicate.C("R3", "a", predicate.LT, "R4", "a"),
			predicate.C("R3", "a", predicate.LT, "R5", "a"),
			predicate.C("R4", "a", predicate.LT, "R5", "a"),
		})
	if err != nil {
		t.Fatal(err)
	}
	return q.JoinGraph()
}

// unitCost weights every candidate by its length so shorter paths are
// cheaper; reducers equal length.
func unitCost(ids []int) (float64, int, error) {
	return float64(len(ids)), len(ids), nil
}

func edgeSet(g *Graph) map[string]PathEdge {
	m := make(map[string]PathEdge, len(g.Edges))
	for _, e := range g.Edges {
		key := e.U + "-" + e.V + ":" + e.Label()
		m[key] = e
	}
	return m
}

func TestEnumerateNoPruning(t *testing.T) {
	g, err := Build(fig1(t), unitCost, Options{DisablePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	set := edgeSet(g)
	// Fig. 1's adjacency matrix lists specific paths; spot-check a few.
	// R1–R2 direct: {1}.
	if _, ok := set["R1-R2:[1]"]; !ok {
		t.Error("missing direct path R1-R2 {1}")
	}
	// R1–R2 via R3: {2,3}.
	if _, ok := set["R1-R2:[2 3]"]; !ok {
		t.Error("missing path R1-R2 {2,3} (via R3)")
	}
	// The paper's showcase path R1–R2 {3,4,6,5,2}: R1-θ3-R3-θ4-R4-θ6-R5-θ5-R3-θ2-R2.
	if _, ok := set["R1-R2:[2 3 4 5 6]"]; !ok {
		t.Error("missing 5-hop path R1-R2 {2,3,4,5,6}")
	}
	// R3–R4: {4}, {6,5} and the long way {4,3,1,2}? No — {3,1,2} is a
	// circuit at R3; Fig. 1 lists R3-R4 paths {4}, {6,5}, {4,3,1,2}… we
	// check {4} and {5,6}.
	if _, ok := set["R3-R4:[4]"]; !ok {
		t.Error("missing direct path R3-R4 {4}")
	}
	if _, ok := set["R3-R4:[5 6]"]; !ok {
		t.Error("missing path R3-R4 {5,6}")
	}
	// Circuits are valid candidates: the triangle {1,2,3} must appear
	// (as a self-path at some vertex) — one MRJ can evaluate a cyclic
	// condition set.
	foundTriangle := false
	for _, e := range g.Edges {
		if e.Label() == "[1 2 3]" {
			foundTriangle = true
		}
	}
	if !foundTriangle {
		t.Error("missing triangle circuit {1,2,3}")
	}
	// Every label set must be a connected path: at minimum non-empty
	// and with ≤ 6 conditions.
	for _, e := range g.Edges {
		if len(e.EdgeIDs) == 0 || len(e.EdgeIDs) > 6 {
			t.Errorf("bad label set %v", e.EdgeIDs)
		}
	}
}

func TestNoEdgeRepeating(t *testing.T) {
	g, err := Build(fig1(t), unitCost, Options{DisablePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges {
		seen := map[int]bool{}
		for _, id := range e.EdgeIDs {
			if seen[id] {
				t.Fatalf("edge repeated in %v", e.EdgeIDs)
			}
			seen[id] = true
		}
	}
}

func TestMaxPathLen(t *testing.T) {
	g, err := Build(fig1(t), unitCost, Options{MaxPathLen: 2, DisablePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges {
		if len(e.EdgeIDs) > 2 {
			t.Errorf("path %v longer than MaxPathLen", e.EdgeIDs)
		}
	}
	// All six single edges must be present.
	count1 := 0
	for _, e := range g.Edges {
		if len(e.EdgeIDs) == 1 {
			count1++
		}
	}
	if count1 != 6 {
		t.Errorf("single-edge candidates = %d, want 6", count1)
	}
}

func TestLemma1Pruning(t *testing.T) {
	// Cost function that makes multi-condition jobs very expensive and
	// resource hungry: every multi-edge path should be dominated by its
	// single-condition constituents.
	expensive := func(ids []int) (float64, int, error) {
		if len(ids) == 1 {
			return 1, 1, nil
		}
		return 1000 * float64(len(ids)), 64, nil
	}
	g, err := Build(fig1(t), expensive, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges {
		if len(e.EdgeIDs) > 2 {
			t.Errorf("expensive path %v survived pruning", e.EdgeIDs)
		}
	}
	if g.PrunedCount == 0 {
		t.Error("no candidates pruned")
	}
	// Single conditions must all survive (they are the cheapest cover).
	count1 := 0
	for _, e := range g.Edges {
		if len(e.EdgeIDs) == 1 {
			count1++
		}
	}
	if count1 != 6 {
		t.Errorf("single-edge survivors = %d, want 6", count1)
	}
}

func TestCheapMultiEdgesSurvive(t *testing.T) {
	// Opposite cost regime: longer paths are cheaper per condition and
	// use fewer reducers than the sum of their parts — Lemma 1 must
	// keep them.
	economies := func(ids []int) (float64, int, error) {
		return 10 / float64(len(ids)), 1, nil
	}
	g, err := Build(fig1(t), economies, Options{})
	if err != nil {
		t.Fatal(err)
	}
	maxLen := 0
	for _, e := range g.Edges {
		if len(e.EdgeIDs) > maxLen {
			maxLen = len(e.EdgeIDs)
		}
	}
	if maxLen < 3 {
		t.Errorf("longest surviving path %d, want >= 3", maxLen)
	}
}

func TestSufficient(t *testing.T) {
	g, err := Build(fig1(t), unitCost, Options{DisablePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	// Collect the six single-condition edges: together sufficient.
	var idx []int
	for i, e := range g.Edges {
		if len(e.EdgeIDs) == 1 {
			idx = append(idx, i)
		}
	}
	if !g.Sufficient(idx, 6) {
		t.Error("six singles not sufficient")
	}
	if g.Sufficient(idx[:5], 6) {
		t.Error("five singles reported sufficient")
	}
	if g.Sufficient([]int{-1}, 6) {
		t.Error("invalid index reported sufficient")
	}
}

func TestChainGraphPaths(t *testing.T) {
	// A simple chain A-B-C-D: paths are exactly the contiguous
	// subchains: {1},{2},{3},{1,2},{2,3},{1,2,3} → 6 edges.
	q, err := query.New("chain",
		[]string{"A", "B", "C", "D"},
		[]predicate.Condition{
			predicate.C("A", "x", predicate.LT, "B", "x"),
			predicate.C("B", "x", predicate.LT, "C", "x"),
			predicate.C("C", "x", predicate.LT, "D", "x"),
		})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(q.JoinGraph(), unitCost, Options{DisablePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) != 6 {
		var labels []string
		for _, e := range g.Edges {
			labels = append(labels, e.U+"-"+e.V+":"+e.Label())
		}
		sort.Strings(labels)
		t.Errorf("chain candidates = %d, want 6: %s", len(g.Edges), strings.Join(labels, " "))
	}
}

func TestBuildErrors(t *testing.T) {
	q, _ := query.New("q", []string{"A", "B"},
		[]predicate.Condition{predicate.C("A", "x", predicate.LT, "B", "x")})
	if _, err := Build(q.JoinGraph(), func(ids []int) (float64, int, error) {
		return 0, 0, errFake
	}, Options{}); err == nil {
		t.Error("cost error not propagated")
	}
	empty := &query.JoinGraph{Vertices: []string{"A"}}
	if _, err := Build(empty, unitCost, Options{}); err == nil {
		t.Error("empty graph accepted")
	}
}

var errFake = errFakeT{}

type errFakeT struct{}

func (errFakeT) Error() string { return "fake" }

func TestIDsToMask(t *testing.T) {
	if IDsToMask([]int{1, 3}) != 0b101 {
		t.Error("mask wrong")
	}
	if IDsToMask(nil) != 0 {
		t.Error("empty mask wrong")
	}
}

func TestDeterministicOutput(t *testing.T) {
	var prev []string
	for trial := 0; trial < 3; trial++ {
		g, err := Build(fig1(t), unitCost, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var labels []string
		for _, e := range g.Edges {
			labels = append(labels, e.U+e.V+e.Label())
		}
		if prev != nil {
			if len(prev) != len(labels) {
				t.Fatal("nondeterministic edge count")
			}
			for i := range labels {
				if labels[i] != prev[i] {
					t.Fatal("nondeterministic edge order")
				}
			}
		}
		prev = labels
	}
}

func TestCandidateOverflow(t *testing.T) {
	g := fig1(t)
	if _, err := Build(g, unitCost, Options{MaxCandidates: 3, DisablePruning: true}); err == nil {
		t.Error("overflow not reported")
	}
}

// TestFig1JoinPathGraph verifies the paper's Fig. 1 walk-through: the
// join-path graph of the 5-relation example contains the adjacency-
// matrix entries the figure lists, including the Eulerian circuit
// {1..6} (the graph has all-even degrees, so E(G_JP) exists).
func TestFig1JoinPathGraph(t *testing.T) {
	g, err := Build(fig1(t), unitCost, Options{DisablePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	set := map[string]bool{}
	for _, e := range g.Edges {
		set[e.Label()] = true
	}
	// Entries read off Fig. 1's matrix (as condition-ID sets).
	for _, want := range []string{
		"[1]",           // R1-R2 direct
		"[2 3]",         // R1-R2 via R3
		"[2 3 4 5 6]",   // R1-R2 the long way (θ3 θ4 θ6 θ5 θ2)
		"[3]",           // R1-R3 direct
		"[1 2]",         // R1-R3 via R2
		"[4]",           // R3-R4
		"[5 6]",         // R3-R4 via R5
		"[5]",           // R3-R5
		"[4 6]",         // R3-R5 via R4
		"[6]",           // R4-R5
		"[4 5]",         // R4-R5 via R3
		"[1 2 3 4 5 6]", // the Eulerian circuit E(G_JP)
	} {
		if !set[want] {
			t.Errorf("Fig. 1 entry %s missing from G_JP", want)
		}
	}
}
