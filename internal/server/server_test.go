package server

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mr"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/skew"
)

func randRel(name string, n, domain int, seed int64) *relation.Relation {
	r := relation.New(name, relation.MustSchema(
		relation.Column{Name: "a", Kind: relation.KindInt},
		relation.Column{Name: "b", Kind: relation.KindInt},
	))
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		r.MustAppend(relation.Tuple{
			relation.Int(int64(rng.Intn(domain))),
			relation.Int(int64(rng.Intn(domain))),
		})
	}
	return r
}

func testDB(t *testing.T) *core.DB {
	t.Helper()
	db, err := core.NewDB(500, 1,
		randRel("A", 60, 15, 3), randRel("B", 50, 15, 4), randRel("C", 40, 15, 5))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func testMRConfig() *mr.Config {
	cfg := mr.DefaultConfig()
	cfg.TuplesPerMapTask = 32
	cfg.MapSlots = 8
	cfg.ReduceSlots = 8
	return &cfg
}

func newTestService(t *testing.T, db *core.DB, cfg Config) *Service {
	t.Helper()
	if cfg.KP == 0 {
		cfg.KP = 8
	}
	if cfg.MR == nil {
		cfg.MR = testMRConfig()
	}
	s := New(db, cfg)
	t.Cleanup(s.Close)
	return s
}

const testSpec = "FROM A, B WHERE A.a < B.a"

// oneShotHash runs the same query through the batch path (its own
// private pool, fresh planner) and returns the result hash.
func oneShotHash(t *testing.T, db *core.DB, spec string) string {
	t.Helper()
	q, aliases, err := query.Parse("oneshot", spec)
	if err != nil {
		t.Fatal(err)
	}
	view, err := db.View(aliases)
	if err != nil {
		t.Fatal(err)
	}
	pl := core.NewPlanner(*testMRConfig(), 8)
	plan, err := pl.Plan(q, view)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pl.Execute(plan, view)
	if err != nil {
		t.Fatal(err)
	}
	return ResultHash(res)
}

// TestSubmitMatchesOneShot: a served query returns the same result
// (by content hash) as the one-shot batch path, including self-joins
// through per-query alias views.
func TestSubmitMatchesOneShot(t *testing.T) {
	db := testDB(t)
	s := newTestService(t, db, Config{})
	for _, spec := range []string{
		testSpec,
		"FROM A t1, A t2 WHERE t1.a < t2.b",
		"FROM A, B, C WHERE A.a = B.a AND B.b >= C.b",
	} {
		resp, err := s.Submit(context.Background(), Request{Spec: spec, Limit: 3})
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		if want := oneShotHash(t, db, spec); resp.ResultHash != want {
			t.Errorf("%q: served hash %s != one-shot %s", spec, resp.ResultHash, want)
		}
		if resp.Rows > 0 && len(resp.Tuples) == 0 {
			t.Errorf("%q: limit 3 returned no tuples for %d rows", spec, resp.Rows)
		}
	}
	// The self-join aliases must not have leaked into the shared DB.
	if _, err := db.Relation("t1"); err == nil {
		t.Error("alias t1 leaked into the shared DB")
	}
}

// TestPlanCacheSemantics: identical re-submission hits, a catalog
// version bump (re-analyze) misses and recompiles.
func TestPlanCacheSemantics(t *testing.T) {
	db := testDB(t)
	s := newTestService(t, db, Config{})
	reg := s.Obs().Metrics

	r1, err := s.Submit(context.Background(), Request{Spec: testSpec})
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheHit {
		t.Error("first submission hit the cache")
	}
	// Textually different, semantically identical: same canonical key.
	r2, err := s.Submit(context.Background(), Request{Spec: "from B, A where B.a > A.a"})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit {
		t.Error("identical re-submission missed the cache")
	}
	if r1.Canonical != r2.Canonical {
		t.Errorf("canonical forms differ: %q vs %q", r1.Canonical, r2.Canonical)
	}
	if r1.ResultHash != r2.ResultHash {
		t.Error("cached plan produced a different result")
	}
	if hits, misses := reg.Counter("server.plancache.hit").Value(), reg.Counter("server.plancache.miss").Value(); hits != 1 || misses != 1 {
		t.Errorf("hit/miss = %d/%d, want 1/1", hits, misses)
	}
	t.Logf("plan time: miss %dns → hit %dns", r1.PlanNs, r2.PlanNs)

	// Re-analyze: same statistics content, but the catalog version bumps
	// and the cached plan must not be reused.
	db.Analyze(500, 1)
	r3, err := s.Submit(context.Background(), Request{Spec: testSpec})
	if err != nil {
		t.Fatal(err)
	}
	if r3.CacheHit {
		t.Error("catalog version bump did not invalidate the cache")
	}
	if misses := reg.Counter("server.plancache.miss").Value(); misses != 2 {
		t.Errorf("misses = %d after version bump, want 2", misses)
	}
	if s.cache.Len() != 1 {
		t.Errorf("stale cache generation not dropped: %d entries", s.cache.Len())
	}
}

// TestPlanCacheSingleflight: N concurrent identical submissions
// compile exactly once; everyone gets the same plan and result.
func TestPlanCacheSingleflight(t *testing.T) {
	db := testDB(t)
	s := newTestService(t, db, Config{MaxConcurrent: 8})
	const n = 8
	var wg sync.WaitGroup
	hashes := make([]string, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := s.Submit(context.Background(), Request{Spec: testSpec})
			if err != nil {
				errs[i] = err
				return
			}
			hashes[i] = resp.ResultHash
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("submit %d: %v", i, errs[i])
		}
		if hashes[i] != hashes[0] {
			t.Errorf("submit %d: hash %s != %s", i, hashes[i], hashes[0])
		}
	}
	reg := s.Obs().Metrics
	if misses := reg.Counter("server.plancache.miss").Value(); misses != 1 {
		t.Errorf("%d concurrent identical submissions compiled %d times, want 1", n, misses)
	}
	if hits := reg.Counter("server.plancache.hit").Value(); hits != n-1 {
		t.Errorf("hits = %d, want %d", hits, n-1)
	}
}

// TestConcurrentQueriesSharedKP is the tentpole acceptance assertion:
// concurrent queries on a K_P-unit server never hold more than K_P
// units combined, verified through the shared pool's obs histogram
// high-water mark.
func TestConcurrentQueriesSharedKP(t *testing.T) {
	db := testDB(t)
	const kp = 6
	s := newTestService(t, db, Config{KP: kp, MaxConcurrent: 4})
	specs := []string{
		testSpec,
		"FROM A t1, A t2 WHERE t1.a < t2.b",
		"FROM B, C WHERE B.b >= C.a",
		"FROM A, C WHERE A.b = C.b",
	}
	var wg sync.WaitGroup
	errs := make([]error, len(specs))
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec string) {
			defer wg.Done()
			_, errs[i] = s.Submit(context.Background(), Request{Spec: spec})
		}(i, spec)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	snap := s.Obs().Metrics.Histogram("core.pool.inuse").Snapshot()
	if snap.Count == 0 {
		t.Fatal("shared pool recorded no acquisitions")
	}
	if snap.Max > int64(kp) {
		t.Errorf("combined unit holdings peaked at %d > K_P=%d", snap.Max, kp)
	}
	t.Logf("pool acquisitions %d, in-use high-water %d/%d", snap.Count, snap.Max, kp)
}

// TestAdmissionControl: a full queue rejects immediately, a queued
// submission times out, and draining restores admission.
func TestAdmissionControl(t *testing.T) {
	db := testDB(t)
	s := newTestService(t, db, Config{
		MaxConcurrent: 1, MaxQueue: 1, QueueTimeout: 30 * time.Millisecond,
	})
	// Occupy the single execution slot and the single queue seat.
	s.sem <- struct{}{}
	s.mu.Lock()
	s.queued = 1
	s.mu.Unlock()

	if _, err := s.Submit(context.Background(), Request{Spec: testSpec}); err != ErrQueueFull {
		t.Errorf("full queue: err = %v, want ErrQueueFull", err)
	}
	s.mu.Lock()
	s.queued = 0
	s.mu.Unlock()
	if _, err := s.Submit(context.Background(), Request{Spec: testSpec}); err != ErrTimedOut {
		t.Errorf("held slot: err = %v, want ErrTimedOut", err)
	}
	// A caller-cancelled context surfaces as its error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Submit(ctx, Request{Spec: testSpec}); err != context.Canceled {
		t.Errorf("cancelled ctx: err = %v, want context.Canceled", err)
	}
	<-s.sem // release the held slot
	if _, err := s.Submit(context.Background(), Request{Spec: testSpec}); err != nil {
		t.Errorf("after drain: %v", err)
	}
	reg := s.Obs().Metrics
	if v := reg.Counter("server.rejected.queue").Value(); v != 1 {
		t.Errorf("rejected.queue = %d, want 1", v)
	}
	if v := reg.Counter("server.rejected.timeout").Value(); v != 1 {
		t.Errorf("rejected.timeout = %d, want 1", v)
	}
}

// TestCloseDrains: Close waits for in-flight queries and rejects new
// ones.
func TestCloseDrains(t *testing.T) {
	db := testDB(t)
	s := New(db, Config{KP: 8, MR: testMRConfig()})
	var finished atomic.Bool
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		_, err := s.Submit(context.Background(), Request{Spec: testSpec})
		finished.Store(true)
		done <- err
	}()
	<-started
	// Give the submission a moment to pass admission before closing.
	time.Sleep(5 * time.Millisecond)
	s.Close()
	if !finished.Load() {
		t.Error("Close returned before the in-flight query finished")
	}
	if err := <-done; err != nil && err != ErrClosed {
		t.Errorf("in-flight query failed: %v", err)
	}
	if _, err := s.Submit(context.Background(), Request{Spec: testSpec}); err != ErrClosed {
		t.Errorf("post-Close submit: err = %v, want ErrClosed", err)
	}
}

// zipfRel mirrors the core replan fixture: Zipf(s) join keys whose
// equi-join amplifies the hot key in the intermediate.
func zipfRel(name string, n int, zs float64, domain int, seed int64) *relation.Relation {
	r := relation.New(name, relation.MustSchema(
		relation.Column{Name: "k", Kind: relation.KindInt},
		relation.Column{Name: "v", Kind: relation.KindInt},
	))
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, zs, 1, uint64(domain-1))
	for i := 0; i < n; i++ {
		r.MustAppend(relation.Tuple{
			relation.Int(int64(z.Uint64())),
			relation.Int(int64(rng.Intn(1000))),
		})
	}
	return r
}

// cascadeService builds a service over the Zipf cascade fixture with a
// registered two-stage prepared plan (the spec grammar cannot express
// cascades; the server's prepared-plan registry can).
func cascadeService(t *testing.T, cfg Config) *Service {
	t.Helper()
	const kr = 16
	l := zipfRel("L", 1500, 1.2, 500, 71)
	r := zipfRel("R", 400, 1.2, 500, 72)
	sRel := randRel("S", 400, 500, 73)
	l.VolumeMultiplier = 4e9 / float64(l.EncodedSize())
	r.VolumeMultiplier = 1e9 / float64(r.EncodedSize())
	sRel.VolumeMultiplier = 1e9 / float64(sRel.EncodedSize())
	db, err := core.NewDB(500, 1, l, r, sRel)
	if err != nil {
		t.Fatal(err)
	}
	cfg.KP = kr
	s := newTestService(t, db, cfg)
	j1Conds := predicate.Conjunction{predicate.C("L", "k", predicate.EQ, "R", "k")}
	j2Conds := predicate.Conjunction{predicate.C("casc-j1", "L.k", predicate.EQ, "S", "a")}
	plan := &core.Plan{
		Query: &query.Query{Name: "casc"},
		Jobs: []core.PlannedJob{
			{Name: "casc-j1", Conds: j1Conds, RelOrder: []string{"L", "R"},
				Kind: core.KindHashEqui, Reducers: kr, Units: kr,
				Skew: core.SkewPlanFor(db.Catalog, core.KindHashEqui, j1Conds, kr, skew.DefaultThreshold)},
			{Name: "casc-j2", Conds: j2Conds, RelOrder: []string{"casc-j1", "S"},
				Kind: core.KindHashEqui, Reducers: kr, Units: kr},
		},
	}
	if err := s.RegisterPlan("casc", plan); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestWarmStartCascade: the first execution of a cascade behaves
// exactly like a one-shot run (dispatch-time replan, nothing warm);
// the second is revised BEFORE execution from the persisted measured
// statistics and reaches the same balanced outcome.
func TestWarmStartCascade(t *testing.T) {
	s := cascadeService(t, Config{})
	first, err := s.Submit(context.Background(), Request{Prepared: "casc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(first.WarmRevised) != 0 {
		t.Errorf("cold run warm-revised %v", first.WarmRevised)
	}
	if len(first.Replanned) != 1 || first.Replanned[0] != "casc-j2" {
		t.Errorf("cold run replanned %v, want [casc-j2]", first.Replanned)
	}
	if s.stats.size() == 0 {
		t.Fatal("no measured statistics persisted after the cold run")
	}

	second, err := s.Submit(context.Background(), Request{Prepared: "casc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(second.WarmRevised) != 1 || second.WarmRevised[0] != "casc-j2" {
		t.Errorf("warm run revised %v, want [casc-j2]", second.WarmRevised)
	}
	if second.ResultHash != first.ResultHash {
		t.Error("warm-started run changed the result")
	}
	// The warm-revised downstream job must be as balanced as the
	// dispatch-replanned one — measured-stat reducer derivation, not
	// the static model that produced ~10x imbalance on this fixture.
	fb, wb := first.JobBalance["casc-j2"], second.JobBalance["casc-j2"]
	if wb > 1.5*fb {
		t.Errorf("warm balance %.2f much worse than feedback balance %.2f", wb, fb)
	}
	t.Logf("downstream balance: cold(replanned) %.2f, warm-started %.2f", fb, wb)

	// Warm-start disabled: the second run revises nothing.
	s2 := cascadeService(t, Config{DisableWarmStart: true})
	if _, err := s2.Submit(context.Background(), Request{Prepared: "casc"}); err != nil {
		t.Fatal(err)
	}
	r2, err := s2.Submit(context.Background(), Request{Prepared: "casc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.WarmRevised) != 0 {
		t.Errorf("DisableWarmStart still revised %v", r2.WarmRevised)
	}
}

// TestStatsStoreVersionGuard: measured statistics from an old catalog
// version never warm-start plans over new statistics.
func TestStatsStoreVersionGuard(t *testing.T) {
	st := newStatsStore()
	st.ingest(1, map[string]core.MeasuredStat{"j1": {BalanceRatio: 2}})
	if got := st.snapshot(1); len(got) != 1 {
		t.Fatalf("snapshot(same version) = %v", got)
	}
	if got := st.snapshot(2); got != nil {
		t.Errorf("snapshot(new version) = %v, want nil", got)
	}
	st.ingest(2, map[string]core.MeasuredStat{"j2": {BalanceRatio: 3}})
	snap := st.snapshot(2)
	if len(snap) != 1 {
		t.Fatalf("snapshot after version change = %v, want just j2", snap)
	}
	if _, stale := snap["j1"]; stale {
		t.Error("stale j1 survived the version change")
	}
}

// BenchmarkConcurrentQueries drives the full serving path — admission,
// plan cache, shared-pool execution — with parallel submissions of a
// small mixed workload.
func BenchmarkConcurrentQueries(b *testing.B) {
	db, err := core.NewDB(500, 1,
		randRel("A", 60, 15, 3), randRel("B", 50, 15, 4), randRel("C", 40, 15, 5))
	if err != nil {
		b.Fatal(err)
	}
	s := New(db, Config{KP: 8, MaxConcurrent: 4, MR: testMRConfig()})
	defer s.Close()
	specs := []string{
		testSpec,
		"FROM B, C WHERE B.b >= C.a",
		"FROM A, C WHERE A.b = C.b",
	}
	var i atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			spec := specs[int(i.Add(1))%len(specs)]
			if _, err := s.Submit(context.Background(), Request{Spec: spec}); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
