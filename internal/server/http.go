package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/mr"
	"repro/internal/relation"
)

// ResultHash renders the order-insensitive content hash of an
// execution's output — the value both the daemon and one-shot
// thetajoin print, so results are comparable across entry points.
func ResultHash(res *core.ExecResult) string {
	return fmt.Sprintf("%016x", relation.ContentHash(res.Output))
}

// Handler returns the service's HTTP API:
//
//	POST /query    {"name","spec"|"prepared","limit"} → Response JSON
//	GET  /healthz  liveness (200 "ok")
//	GET  /metrics  the obs metrics registry as JSON
//
// The error contract separates the caller's fault from the service's
// state:
//
//	429 + Retry-After  queue full — the client sent too much; back off
//	                   and retry unchanged.
//	503 + Retry-After  transient service degradation worth retrying:
//	                   admission-queue timeout, a query whose task
//	                   retries were exhausted (mr.TaskError), or a
//	                   query past Config.QueryTimeout.
//	503 (no header)    shutting down — retry against another instance.
//	400                malformed request or a query error retries
//	                   cannot fix.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := s.o.Metrics.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := s.Submit(r.Context(), req)
	if err != nil {
		var te *mr.TaskError
		switch {
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			http.Error(w, err.Error(), http.StatusTooManyRequests)
		case errors.Is(err, ErrTimedOut):
			w.Header().Set("Retry-After", "1")
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		case errors.As(err, &te), errors.Is(err, context.DeadlineExceeded):
			// Degraded service, not a bad query: a task exhausted its
			// attempt budget, or the per-query deadline expired. The
			// same request may well succeed once the pressure passes.
			w.Header().Set("Retry-After", "1")
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		case errors.Is(err, ErrClosed):
			// Shutdown: no Retry-After — THIS instance won't recover;
			// clients should fail over, not wait.
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		default:
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(resp); err != nil {
		// Headers are gone; nothing to do but log the encode failure.
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
