package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/relation"
)

// ResultHash renders the order-insensitive content hash of an
// execution's output — the value both the daemon and one-shot
// thetajoin print, so results are comparable across entry points.
func ResultHash(res *core.ExecResult) string {
	return fmt.Sprintf("%016x", relation.ContentHash(res.Output))
}

// Handler returns the service's HTTP API:
//
//	POST /query    {"name","spec"|"prepared","limit"} → Response JSON
//	GET  /healthz  liveness (200 "ok")
//	GET  /metrics  the obs metrics registry as JSON
//
// Admission rejections map to 429 (queue full — retryable with
// backoff) and 503 (queue timeout or shutdown); malformed or failing
// queries to 400.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := s.o.Metrics.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := s.Submit(r.Context(), req)
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			http.Error(w, err.Error(), http.StatusTooManyRequests)
		case errors.Is(err, ErrTimedOut), errors.Is(err, ErrClosed):
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		default:
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(resp); err != nil {
		// Headers are gone; nothing to do but log the encode failure.
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
