package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mr"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/schedule"
)

// Admission rejections, distinguishable so the HTTP layer can map them
// to 429 (back off and retry) versus 503 (unavailable).
var (
	ErrQueueFull = errors.New("server: admission queue full")
	ErrTimedOut  = errors.New("server: timed out waiting for admission")
	ErrClosed    = errors.New("server: shutting down")
)

// Config tunes a Service. Zero values take the stated defaults.
type Config struct {
	// KP is the machine-wide processing-unit count every concurrent
	// plan shares. Default 96.
	KP int
	// MaxConcurrent bounds the queries executing at once; further
	// admitted queries wait in the queue. Default 4.
	MaxConcurrent int
	// MaxQueue bounds the queries waiting for an execution slot beyond
	// MaxConcurrent; submissions past it are rejected with
	// ErrQueueFull. Default 16; negative means 0 (no queue).
	MaxQueue int
	// QueueTimeout bounds how long a queued query waits before
	// rejection with ErrTimedOut. Default 10s.
	QueueTimeout time.Duration
	// QueryTimeout bounds one admitted query's EXECUTION (planning and
	// queueing excluded): past the deadline the plan's context cancels,
	// every in-flight job aborts promptly (between tasks and mid-merge)
	// and the submission fails with context.DeadlineExceeded — graceful
	// degradation, mapped to 503 + Retry-After by the HTTP layer.
	// 0 (the default) means no per-query deadline.
	QueryTimeout time.Duration
	// MinBudget floors the per-query unit budget the arbiter assigns
	// under load. Default 1.
	MinBudget int
	// MR overrides the MapReduce engine configuration; nil uses
	// mr.DefaultConfig() with slots clamped to KP (matching
	// cmd/thetajoin).
	MR *mr.Config
	// Obs receives the service's counters, histograms and spans (and
	// the shared pool's in-use histogram). Nil allocates a private
	// metrics registry — Service.Obs exposes it.
	Obs *obs.Obs
	// DisableWarmStart turns off the measured-statistics store:
	// every submission plans purely from catalog statistics.
	DisableWarmStart bool
}

func (c Config) withDefaults() Config {
	if c.KP <= 0 {
		c.KP = 96
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 16
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 10 * time.Second
	}
	if c.MinBudget <= 0 {
		c.MinBudget = 1
	}
	if c.MR == nil {
		cfg := mr.DefaultConfig()
		if cfg.MapSlots > c.KP {
			cfg.MapSlots = c.KP
		}
		cfg.ReduceSlots = c.KP
		c.MR = &cfg
	}
	if c.Obs == nil {
		c.Obs = &obs.Obs{Metrics: obs.NewRegistry()}
	}
	return c
}

// Request is one query submission: either a Spec in the
// internal/query.Parse grammar, or the name of a plan previously
// registered with RegisterPlan (cascade plans the spec language cannot
// express).
type Request struct {
	// Name labels the query in spans and reports; empty derives one.
	Name string `json:"name,omitempty"`
	// Spec is the query text, e.g.
	// "FROM calls t1, calls t2 WHERE t1.bt <= t2.bt".
	Spec string `json:"spec,omitempty"`
	// Prepared names a registered plan instead of a Spec.
	Prepared string `json:"prepared,omitempty"`
	// Limit bounds the rendered result rows returned inline; 0 returns
	// none (the content hash always identifies the full result).
	Limit int `json:"limit,omitempty"`
}

// Response reports one executed submission.
type Response struct {
	Name      string `json:"name"`
	Canonical string `json:"canonical,omitempty"`
	// CacheHit is true when the plan came out of the plan cache; PlanNs
	// is the time spent obtaining the plan (≈0 on a hit).
	CacheHit bool  `json:"cacheHit"`
	PlanNs   int64 `json:"planNs"`
	ExecNs   int64 `json:"execNs"`
	// Budget is the unit budget the arbiter granted this execution.
	Budget int `json:"budget"`
	Rows   int `json:"rows"`
	// ResultHash is relation.ContentHash of the full result, printed
	// %016x — order-insensitive, so any client can compare against a
	// one-shot run.
	ResultHash        string   `json:"resultHash"`
	Makespan          float64  `json:"makespan"`
	ShuffleBytes      int64    `json:"shuffleBytes"`
	MaxConcurrentJobs int      `json:"maxConcurrentJobs"`
	Replanned         []string `json:"replanned,omitempty"`
	// WarmRevised lists jobs revised before execution from persisted
	// measured statistics (empty on cold runs).
	WarmRevised []string `json:"warmRevised,omitempty"`
	// JobBalance maps job name → measured reducer balance ratio.
	JobBalance map[string]float64 `json:"jobBalance,omitempty"`
	// Tuples renders up to Request.Limit result rows.
	Tuples []string `json:"tuples,omitempty"`
}

// Service is the resident multi-query join engine. Construct with New,
// submit with Submit (or the HTTP handler), stop with Close.
type Service struct {
	cfg     Config
	db      *core.DB
	pool    *core.SharedUnitPool
	arbiter *schedule.Arbiter
	o       *obs.Obs

	// sem holds one token per executing query; queued counts waiters.
	sem    chan struct{}
	mu     sync.Mutex
	queued int
	closed bool
	wg     sync.WaitGroup

	cache    *planCache
	stats    *statsStore
	prepared map[string]*core.Plan
	submits  int64 // monotone label for unnamed submissions (under mu)
}

// New builds a Service over the database. The db's relations and
// catalog are shared read-only across queries; self-join aliases go
// through per-query views, never the shared DB.
func New(db *core.DB, cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:      cfg,
		db:       db,
		pool:     core.NewSharedUnitPool(cfg.KP, cfg.Obs),
		arbiter:  schedule.NewArbiter(cfg.KP, cfg.MinBudget),
		o:        cfg.Obs,
		sem:      make(chan struct{}, cfg.MaxConcurrent),
		cache:    newPlanCache(cfg.Obs),
		stats:    newStatsStore(),
		prepared: make(map[string]*core.Plan),
	}
	return s
}

// Obs exposes the service's observability sinks (metrics registry,
// tracer) for export endpoints and tests.
func (s *Service) Obs() *obs.Obs { return s.o }

// RegisterPlan installs a pre-built plan under a name, submittable as
// Request.Prepared. This is the entry point for cascade plans — shapes
// the spec grammar cannot express — and therefore the path that
// exercises warm-started re-planning end to end.
func (s *Service) RegisterPlan(name string, plan *core.Plan) error {
	if name == "" || plan == nil || len(plan.Jobs) == 0 {
		return fmt.Errorf("server: RegisterPlan needs a name and a non-empty plan")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.prepared[name]; dup {
		return fmt.Errorf("server: plan %q already registered", name)
	}
	s.prepared[name] = plan
	return nil
}

// Close stops admission and drains: it returns once every in-flight
// query has finished. Subsequent Submits fail with ErrClosed.
func (s *Service) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.wg.Wait()
}

// admit takes an execution slot, respecting the queue bound and
// timeout. On success the caller owns one sem token and one wg count.
func (s *Service) admit(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.o.Counter("server.rejected.closed").Add(1)
		return ErrClosed
	}
	// Fast path: a free slot skips the queue entirely.
	select {
	case s.sem <- struct{}{}:
		s.wg.Add(1)
		s.mu.Unlock()
		return nil
	default:
	}
	if s.queued >= s.cfg.MaxQueue {
		s.mu.Unlock()
		s.o.Counter("server.rejected.queue").Add(1)
		return ErrQueueFull
	}
	s.queued++
	s.wg.Add(1)
	s.mu.Unlock()

	timer := time.NewTimer(s.cfg.QueueTimeout)
	defer timer.Stop()
	var err error
	select {
	case s.sem <- struct{}{}:
	case <-timer.C:
		s.o.Counter("server.rejected.timeout").Add(1)
		err = ErrTimedOut
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.mu.Lock()
	s.queued--
	s.mu.Unlock()
	if err != nil {
		s.wg.Done()
		return err
	}
	return nil
}

// Submit runs one query to completion: admission, plan (cached),
// warm-start revision, execution on the shared pool under the
// arbiter's budget. Safe for concurrent use.
func (s *Service) Submit(ctx context.Context, req Request) (*Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if (req.Spec == "") == (req.Prepared == "") {
		return nil, fmt.Errorf("server: exactly one of spec or prepared required")
	}
	name := req.Name
	if name == "" {
		s.mu.Lock()
		s.submits++
		name = fmt.Sprintf("q%d", s.submits)
		s.mu.Unlock()
	}
	shard := s.o.Shard("server:" + name)

	if err := s.admit(ctx); err != nil {
		shard.Instant("reject", obs.A("err", err.Error()))
		return nil, err
	}
	defer func() {
		<-s.sem
		s.wg.Done()
	}()
	s.o.Counter("server.queries").Add(1)

	version := s.db.CatalogVersion()
	resp := &Response{Name: name}

	// Resolve the plan: prepared registry, or parse + plan cache.
	var plan *core.Plan
	var execDB *core.DB
	planStart := time.Now()
	if req.Prepared != "" {
		s.mu.Lock()
		plan = s.prepared[req.Prepared]
		s.mu.Unlock()
		if plan == nil {
			return nil, fmt.Errorf("server: no prepared plan %q", req.Prepared)
		}
		execDB = s.db
	} else {
		q, aliases, err := query.Parse(name, req.Spec)
		if err != nil {
			return nil, err
		}
		canonical := query.Canonical(q, aliases)
		resp.Canonical = canonical
		plan, execDB, resp.CacheHit, err = s.cache.get(canonical, version, func() (*core.Plan, *core.DB, error) {
			// Compile from the canonical form, so every spec mapping to
			// this key gets the identical plan.
			cq, caliases, err := query.Parse(name, canonical)
			if err != nil {
				return nil, nil, fmt.Errorf("server: canonical re-parse: %w", err)
			}
			view, err := s.db.View(caliases)
			if err != nil {
				return nil, nil, err
			}
			pl := s.newPlanner()
			p, err := pl.Plan(cq, view)
			if err != nil {
				return nil, nil, err
			}
			return p, view, nil
		})
		if err != nil {
			return nil, err
		}
	}
	resp.PlanNs = time.Since(planStart).Nanoseconds()
	s.o.Histogram("server.plan.ns").Observe(resp.PlanNs)

	// Warm-start: layer persisted measured statistics (same catalog
	// version only) under the plan before execution.
	pl := s.newPlanner()
	if !s.cfg.DisableWarmStart {
		if warm := s.stats.snapshot(version); len(warm) > 0 {
			var revised []string
			plan, revised = pl.WarmRevise(plan, execDB, warm)
			resp.WarmRevised = revised
			if len(revised) > 0 {
				s.o.Counter("server.warm.revised").Add(int64(len(revised)))
				shard.Instant("warm-revise", obs.A("jobs", strings.Join(revised, ",")))
			}
		}
	}

	// Execute under the shared pool, budget-capped by the arbiter.
	budget := s.arbiter.Admit()
	defer s.arbiter.Done()
	resp.Budget = budget
	pl.Pool = core.WithBudget(s.pool, budget)
	shard.Instant("execute", obs.A("budget", budget), obs.A("cacheHit", resp.CacheHit))
	execStart := time.Now()
	execCtx := obs.NewContext(ctx, s.o)
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		execCtx, cancel = context.WithTimeout(execCtx, s.cfg.QueryTimeout)
		defer cancel()
	}
	res, err := pl.ExecuteContext(execCtx, plan, execDB)
	if err != nil {
		s.o.Counter("server.exec.errors").Add(1)
		// Classify for telemetry: retry exhaustion (a task burned its
		// whole attempt budget) and deadline expiry are the two
		// degraded-service classes the HTTP layer maps to 503.
		var te *mr.TaskError
		switch {
		case errors.As(err, &te):
			s.o.Counter("server.exec.retry_exhausted").Add(1)
		case errors.Is(err, context.DeadlineExceeded):
			s.o.Counter("server.exec.deadline").Add(1)
		}
		return nil, err
	}
	resp.ExecNs = time.Since(execStart).Nanoseconds()
	s.o.Histogram("server.exec.ns").Observe(resp.ExecNs)
	if !s.cfg.DisableWarmStart && len(res.Measured) > 0 {
		s.stats.ingest(version, res.Measured)
	}

	fillResult(resp, res, req.Limit)
	shard.Instant("complete", obs.A("rows", resp.Rows), obs.A("hash", resp.ResultHash))
	return resp, nil
}

// newPlanner builds the per-submission planner over the shared engine
// configuration. Plans are always compiled at the full KP — budgets
// cap execution-time concurrency, not the plan shape — so the plan
// cache never needs a budget component in its key.
func (s *Service) newPlanner() *core.Planner {
	return core.NewPlanner(*s.cfg.MR, s.cfg.KP)
}

// fillResult renders the execution outcome into the response.
func fillResult(resp *Response, res *core.ExecResult, limit int) {
	resp.Rows = res.Output.Cardinality()
	resp.ResultHash = ResultHash(res)
	resp.Makespan = res.Makespan
	resp.ShuffleBytes = res.ShuffleBytes
	resp.MaxConcurrentJobs = res.MaxConcurrentJobs
	resp.Replanned = res.Replanned
	if len(res.JobMetrics) > 0 {
		resp.JobBalance = make(map[string]float64, len(res.JobMetrics))
		names := make([]string, 0, len(res.JobMetrics))
		for n := range res.JobMetrics {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			resp.JobBalance[n] = res.JobMetrics[n].BalanceRatio
		}
	}
	if limit > 0 {
		n := len(res.Output.Tuples)
		if n > limit {
			n = limit
		}
		resp.Tuples = make([]string, n)
		for i := 0; i < n; i++ {
			resp.Tuples[i] = res.Output.Tuples[i].String()
		}
	}
}
