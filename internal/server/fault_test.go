package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/mr"
)

// postQuery drives the HTTP handler with one request body and returns
// the recorded response.
func postQuery(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestRetryExhaustedMapsTo503: a query whose task retries are
// exhausted is degraded service (503 + Retry-After and the
// retry_exhausted counter), not a client error — and a fault-free
// resubmission of the same query succeeds.
func TestRetryExhaustedMapsTo503(t *testing.T) {
	db := testDB(t)
	cfg := testMRConfig()
	cfg.MaxTaskAttempts = 2
	cfg.Faults = &mr.FaultPlan{Faults: []mr.Fault{
		{Kind: mr.FaultKillMap, Task: 0, Attempt: -1}, // every attempt: exhausts the budget
	}}
	s := newTestService(t, db, Config{MR: cfg})
	h := s.Handler()

	rec := postQuery(t, h, `{"spec": "FROM A, B WHERE A.a < B.a"}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503; body %q", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 for retry exhaustion must carry Retry-After")
	}
	if n := s.Obs().Counter("server.exec.retry_exhausted").Value(); n != 1 {
		t.Errorf("retry_exhausted counter = %d", n)
	}

	// The same service without faults keeps serving.
	s2 := newTestService(t, db, Config{})
	rec = postQuery(t, s2.Handler(), `{"spec": "FROM A, B WHERE A.a < B.a"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("fault-free resubmission: status %d, body %q", rec.Code, rec.Body.String())
	}
	var resp Response
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ResultHash == "" {
		t.Error("response missing result hash")
	}
}

// TestQueryTimeoutMapsTo503: Config.QueryTimeout cancels an admitted
// execution at its deadline; the submission fails with
// context.DeadlineExceeded (503 + Retry-After over HTTP) and the
// service keeps serving subsequent queries.
func TestQueryTimeoutMapsTo503(t *testing.T) {
	db := testDB(t)
	cfg := testMRConfig()
	// A straggler far beyond the deadline on every map attempt keeps
	// the execution alive until the deadline fires.
	cfg.Faults = &mr.FaultPlan{Faults: []mr.Fault{
		{Kind: mr.FaultDelayMap, Task: -1, Attempt: -1, Delay: 30 * time.Second},
	}}
	s := newTestService(t, db, Config{MR: cfg, QueryTimeout: 50 * time.Millisecond})

	start := time.Now()
	_, err := s.Submit(context.Background(), Request{Spec: testSpec})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Submit error = %v, want DeadlineExceeded", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Errorf("deadline did not cancel promptly: took %v", took)
	}
	if n := s.Obs().Counter("server.exec.deadline").Value(); n != 1 {
		t.Errorf("deadline counter = %d", n)
	}

	rec := postQuery(t, s.Handler(), `{"spec": "FROM A, B WHERE A.a < B.a"}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("HTTP status = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 for deadline expiry must carry Retry-After")
	}

	// Degradation is per query: a fault-free service still serves.
	s2 := newTestService(t, db, Config{QueryTimeout: 10 * time.Second})
	if _, err := s2.Submit(context.Background(), Request{Spec: testSpec}); err != nil {
		t.Fatalf("healthy query after timeouts: %v", err)
	}
}
