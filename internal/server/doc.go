// Package server turns the one-shot theta-join stack into a resident
// multi-query service: a long-lived Service accepts concurrent query
// submissions, compiles them through core.Planner and executes their
// jobs against one machine-wide K_P-unit scheduler.
//
// Three concerns distinguish serving from batch execution, and the
// Service owns all three:
//
//   - Cross-plan scheduling. A one-shot run gives its plan a private
//     K_P-unit semaphore; two such runs side by side would oversubscribe
//     the machine 2×. The Service installs one core.SharedUnitPool for
//     every execution, so the combined unit holdings of all in-flight
//     plans never exceed K_P, and a schedule.Arbiter assigns each
//     admitted query an equal-share unit budget (core.WithBudget) so a
//     wide plan cannot starve the rest. Admission is a bounded queue:
//     beyond MaxConcurrent executing queries, up to MaxQueue wait, and
//     the rest are rejected immediately; waiters time out after
//     QueueTimeout.
//
//   - Plan caching. Submissions are canonicalized (query.Canonical) and
//     compiled plans cached under (canonical string, catalog version),
//     so a repeated query skips joinpath/setcover/schedule entirely.
//     Identical in-flight submissions compile once (singleflight);
//     hits, misses and planning times land in the obs registry. The
//     catalog version (core.DB.CatalogVersion) ties every entry to the
//     statistics it was planned from: re-analyzing or reloading
//     relations invalidates the cache wholesale.
//
//   - Warm-start statistics. Each execution exports the measured
//     statistics of its cascade intermediates (core.ExecResult.Measured);
//     the Service persists them across executions — keyed to the
//     catalog version — and layers them under later plans via
//     core.Planner.WarmRevise, so the second run of a cascade derives
//     downstream reducer counts and skew handling from observed rather
//     than modeled cardinalities before anything dispatches.
//
// cmd/thetad wraps the Service in an HTTP/JSON daemon; cmd/thetajoin's
// -server flag is the matching client.
package server
