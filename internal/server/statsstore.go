package server

import (
	"sync"

	"repro/internal/core"
)

// statsStore is the warm-start catalog: measured intermediate
// statistics exported by past executions (core.ExecResult.Measured),
// persisted across submissions and layered under new plans via
// core.Planner.WarmRevise. Entries are keyed to the catalog version
// they were measured against — statistics observed on old data must
// not warm-start plans over new data, so a version change clears the
// store.
type statsStore struct {
	mu      sync.Mutex
	version uint64
	stats   map[string]core.MeasuredStat
}

func newStatsStore() *statsStore {
	return &statsStore{stats: make(map[string]core.MeasuredStat)}
}

// ingest merges one execution's measured statistics. Re-measurements
// of the same intermediate overwrite — executions are deterministic,
// so the values agree; overwriting simply keeps the newest.
func (st *statsStore) ingest(version uint64, m map[string]core.MeasuredStat) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.version != version {
		st.stats = make(map[string]core.MeasuredStat, len(m))
		st.version = version
	}
	for name, ms := range m {
		st.stats[name] = ms
	}
}

// snapshot returns the stored statistics if they were measured against
// the given catalog version, nil otherwise. The returned map is a
// copy; callers may not mutate MeasuredStat contents (shared with
// concurrent submissions).
func (st *statsStore) snapshot(version uint64) map[string]core.MeasuredStat {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.version != version || len(st.stats) == 0 {
		return nil
	}
	out := make(map[string]core.MeasuredStat, len(st.stats))
	for name, ms := range st.stats {
		out[name] = ms
	}
	return out
}

// size reports the stored intermediate count (for tests).
func (st *statsStore) size() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.stats)
}
