package server

import (
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
)

// planCache memoizes compiled plans under (canonical query string,
// catalog version). The version component ties each entry to the
// statistics it was planned from: a re-analyze bumps the version, so
// stale entries simply stop being addressable (and are dropped lazily
// on the next miss for their canonical string).
//
// Lookups singleflight: the first submission of a key compiles while
// later identical submissions wait on its ready channel, so N
// concurrent identical queries run joinpath/setcover/schedule exactly
// once. Compile errors propagate to every waiter but are never cached —
// the entry is removed before it is published as failed.
type planCache struct {
	mu      sync.Mutex
	entries map[planKey]*planEntry
	hits    *obs.Counter
	misses  *obs.Counter
}

type planKey struct {
	canonical string
	version   uint64
}

type planEntry struct {
	ready chan struct{} // closed when plan/err are set
	plan  *core.Plan
	db    *core.DB // the per-query view the plan was compiled against
	err   error
}

func newPlanCache(o *obs.Obs) *planCache {
	return &planCache{
		entries: make(map[planKey]*planEntry),
		hits:    o.Counter("server.plancache.hit"),
		misses:  o.Counter("server.plancache.miss"),
	}
}

// get returns the cached plan for the key, compiling it via compile on
// a miss. hit reports whether the plan existed (or was already being
// compiled by another submission — which still skips this caller's
// compile).
func (c *planCache) get(canonical string, version uint64, compile func() (*core.Plan, *core.DB, error)) (plan *core.Plan, db *core.DB, hit bool, err error) {
	key := planKey{canonical: canonical, version: version}
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		<-e.ready
		return e.plan, e.db, true, e.err
	}
	e := &planEntry{ready: make(chan struct{})}
	c.entries[key] = e
	// A version bump orphans every entry of older versions; drop the
	// stale generation for this canonical string eagerly (full sweeps
	// are unnecessary — other stale keys fall out the same way when
	// next addressed).
	for k := range c.entries {
		if k.canonical == canonical && k.version != version {
			delete(c.entries, k)
		}
	}
	c.mu.Unlock()
	c.misses.Add(1)

	e.plan, e.db, e.err = compile()
	if e.err != nil {
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
	}
	close(e.ready)
	return e.plan, e.db, false, e.err
}

// Len reports the live entry count (for tests).
func (c *planCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
