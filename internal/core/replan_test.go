package core

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/mr"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/skew"
)

// cascadeDB builds the cascaded-skew fixture: L and R carry Zipf(1.2)
// join keys (so their join's output amplifies the hot key), S is a
// uniform probe side joined against the intermediate. The relations
// model multi-GB volumes so the cost model wants enough reducers for
// hot keys to cross the split threshold.
func cascadeDB(t *testing.T) *DB {
	t.Helper()
	l := zipfKeyRelation("L", 1500, 1.2, 500, 71)
	r := zipfKeyRelation("R", 400, 1.2, 500, 72)
	s := randRelation("S", 400, 500, rand.New(rand.NewSource(73)))
	l.VolumeMultiplier = 4e9 / float64(l.EncodedSize())
	r.VolumeMultiplier = 1e9 / float64(r.EncodedSize())
	s.VolumeMultiplier = 1e9 / float64(s.EncodedSize())
	return newTestDB(t, l, r, s)
}

// cascadePlan hand-builds the two-stage plan the planner cannot emit
// from catalog statistics alone: j2 consumes j1's produced output, so
// at plan time no statistics exist for its left input — exactly the
// gap the runtime feedback loop closes.
func cascadePlan(t *testing.T, db *DB, kr int) *Plan {
	t.Helper()
	j1Conds := predicate.Conjunction{predicate.C("L", "k", predicate.EQ, "R", "k")}
	j2Conds := predicate.Conjunction{predicate.C("casc-j1", "L.k", predicate.EQ, "S", "a")}
	return &Plan{
		Query: &query.Query{Name: "casc"},
		Jobs: []PlannedJob{
			{
				Name:     "casc-j1",
				Conds:    j1Conds,
				RelOrder: []string{"L", "R"},
				Kind:     KindHashEqui,
				Reducers: kr,
				Units:    kr,
				Skew:     SkewPlanFor(db.Catalog, KindHashEqui, j1Conds, kr, skew.DefaultThreshold),
			},
			{
				Name:     "casc-j2",
				Conds:    j2Conds,
				RelOrder: []string{"casc-j1", "S"},
				Kind:     KindHashEqui,
				Reducers: kr,
				Units:    kr,
				// Skew nil: the static plan has no statistics for the
				// intermediate to derive one from.
			},
		},
	}
}

// TestFeedbackReplanCascade is the tentpole acceptance criterion: on a
// Zipf(1.2) cascade, feedback re-planning reduces the downstream job's
// BalanceRatio versus the static plan while the sorted output stays
// bit-identical, and the downstream job is reported as replanned.
func TestFeedbackReplanCascade(t *testing.T) {
	const kr = 16
	db := cascadeDB(t)

	run := func(disable bool) *ExecResult {
		pl := testPlanner(kr)
		pl.Opts.DisableReplan = disable
		res, err := pl.Execute(cascadePlan(t, db, kr), db)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	static := run(true)
	feedback := run(false)

	if got := static.Replanned; len(got) != 0 {
		t.Errorf("static run replanned %v", got)
	}
	if got := feedback.Replanned; len(got) != 1 || got[0] != "casc-j2" {
		t.Errorf("feedback run replanned %v, want [casc-j2]", got)
	}
	if !reflect.DeepEqual(sortedTuples(static.Output), sortedTuples(feedback.Output)) {
		t.Errorf("outputs differ: static %d tuples, feedback %d tuples",
			len(static.Output.Tuples), len(feedback.Output.Tuples))
	}
	sRatio := static.JobMetrics["casc-j2"].BalanceRatio
	fRatio := feedback.JobMetrics["casc-j2"].BalanceRatio
	if sRatio < 1.5*fRatio {
		t.Errorf("downstream balance: static %.2f vs feedback %.2f — want >= 1.5x reduction", sRatio, fRatio)
	}
	t.Logf("downstream balance ratio: static %.2f → feedback %.2f (reducers %d→, %d output tuples)",
		sRatio, fRatio, kr, len(feedback.Output.Tuples))
}

// TestFeedbackReplanDeterminism: the feedback loop preserves the
// executor's core invariant — identical output and per-job metrics for
// any worker count, because replanning reads only the measured stats
// of a job's own (always-completed-first) inputs.
func TestFeedbackReplanDeterminism(t *testing.T) {
	const kr = 12
	db := cascadeDB(t)
	var ref *ExecResult
	for _, w := range []int{1, 2, runtime.NumCPU()} {
		pl := testPlanner(kr)
		pl.Config.MaxParallelWorkers = w
		res, err := pl.Execute(cascadePlan(t, db, kr), db)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res.Output.Tuples, ref.Output.Tuples) {
			t.Fatalf("workers=%d: output tuples differ from reference", w)
		}
		if !reflect.DeepEqual(zeroWallMap(res.JobMetrics), zeroWallMap(ref.JobMetrics)) {
			t.Errorf("workers=%d: job metrics differ", w)
		}
		if !reflect.DeepEqual(res.Replanned, ref.Replanned) {
			t.Errorf("workers=%d: replanned set differs: %v vs %v", w, res.Replanned, ref.Replanned)
		}
	}
	if len(ref.Replanned) == 0 {
		t.Error("feedback never fired on the cascade fixture")
	}
}

// TestWarmReviseFromMeasured covers the warm-start path end to end: an
// execution exports its measured intermediate statistics, WarmRevise
// layers them under a fresh static plan, and the revised plan — run
// with the dispatch-time feedback loop disabled — reaches the same
// downstream balance improvement the live loop achieves. An empty warm
// store must leave the plan untouched (cold first runs are unchanged).
func TestWarmReviseFromMeasured(t *testing.T) {
	const kr = 16
	db := cascadeDB(t)

	// Cold feedback run: measure the cascade intermediate.
	pl := testPlanner(kr)
	cold, err := pl.Execute(cascadePlan(t, db, kr), db)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cold.Measured["casc-j1"]; !ok || len(cold.Measured) != 1 {
		t.Fatalf("Measured = %v, want exactly casc-j1", cold.Measured)
	}
	if m := cold.Measured["casc-j1"]; m.Stats == nil || m.VolumeMultiplier <= 0 {
		t.Fatalf("casc-j1 measured stat incomplete: %+v", m)
	}

	// Empty warm store: identity, same plan pointer.
	static := cascadePlan(t, db, kr)
	if got, names := pl.WarmRevise(static, db, nil); got != static || names != nil {
		t.Errorf("WarmRevise(nil warm) revised %v", names)
	}

	// Warm revision: the downstream job is revised statically.
	warmPlan, names := pl.WarmRevise(static, db, cold.Measured)
	if len(names) != 1 || names[0] != "casc-j2" {
		t.Fatalf("WarmRevise revised %v, want [casc-j2]", names)
	}
	if warmPlan == static {
		t.Fatal("WarmRevise mutated the input plan instead of copying")
	}
	if reflect.DeepEqual(warmPlan.Jobs[1], static.Jobs[1]) {
		t.Error("revised casc-j2 identical to static job")
	}
	if static.Jobs[1].Skew != nil {
		t.Error("WarmRevise mutated the static plan's jobs")
	}

	// A warm-revised plan executed WITHOUT the runtime loop must beat
	// the static plan's downstream balance the way the live loop does.
	runStatic := func(p *Plan) *ExecResult {
		spl := testPlanner(kr)
		spl.Opts.DisableReplan = true
		res, err := spl.Execute(p, db)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	staticRes := runStatic(cascadePlan(t, db, kr))
	warmRes := runStatic(warmPlan)
	if !reflect.DeepEqual(sortedTuples(staticRes.Output), sortedTuples(warmRes.Output)) {
		t.Errorf("outputs differ: static %d tuples, warm %d tuples",
			len(staticRes.Output.Tuples), len(warmRes.Output.Tuples))
	}
	sRatio := staticRes.JobMetrics["casc-j2"].BalanceRatio
	wRatio := warmRes.JobMetrics["casc-j2"].BalanceRatio
	if sRatio < 1.5*wRatio {
		t.Errorf("downstream balance: static %.2f vs warm %.2f — want >= 1.5x reduction", sRatio, wRatio)
	}
	t.Logf("downstream balance ratio: static %.2f → warm-start %.2f", sRatio, wRatio)
}

// compositeKeyRelation: tuples whose (k1, k2) combination is hot with
// fraction hotFrac; the rest draw both keys uniformly from [0, 50).
func compositeKeyRelation(name string, n int, hotFrac float64, seed int64) *relation.Relation {
	r := relation.New(name, relation.MustSchema(
		relation.Column{Name: "k1", Kind: relation.KindInt},
		relation.Column{Name: "k2", Kind: relation.KindInt},
		relation.Column{Name: "v", Kind: relation.KindInt},
	))
	rng := rand.New(rand.NewSource(seed))
	hot := int(float64(n) * hotFrac)
	for i := 0; i < n; i++ {
		k1, k2 := int64(7), int64(7)
		if i >= hot {
			k1, k2 = int64(rng.Intn(50)), int64(rng.Intn(50))
		}
		r.MustAppend(relation.Tuple{
			relation.Int(k1), relation.Int(k2), relation.Int(int64(rng.Intn(1000))),
		})
	}
	return r
}

// TestCompositeSkewSplit is the composite-key acceptance criterion: a
// two-condition equi join with a hot composite value gets a split plan
// (it no longer falls back to plain hashing), with identical output
// and a materially better balance ratio.
func TestCompositeSkewSplit(t *testing.T) {
	const kr = 16
	l := compositeKeyRelation("L", 3000, 0.3, 81)
	r := compositeKeyRelation("R", 600, 0.3, 82)
	db := newTestDB(t, l, r)
	conds := predicate.Conjunction{
		predicate.C("L", "k1", predicate.EQ, "R", "k1"),
		predicate.C("L", "k2", predicate.EQ, "R", "k2"),
	}
	rel := func(name string) *relation.Relation {
		rr, err := db.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		return rr
	}
	plan := SkewPlanFor(db.Catalog, KindHashEqui, conds, kr, skew.DefaultThreshold)
	if plan == nil {
		t.Fatal("composite-key equi join got no skew plan — still falling back to plain hashing")
	}
	base, err := BuildHashEquiJob("comp-base", rel("L"), rel("R"), conds, kr)
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := BuildHashEquiJobSkew("comp-skew", rel("L"), rel("R"), conds, kr, plan)
	if err != nil {
		t.Fatal(err)
	}
	if skewed.Partitioner == nil {
		t.Fatal("composite skew plan produced no partitioner")
	}
	bres, sres := runJob(t, base), runJob(t, skewed)
	if !reflect.DeepEqual(sortedTuples(bres.Output), sortedTuples(sres.Output)) {
		t.Errorf("outputs differ: baseline %d tuples, skew-aware %d tuples",
			len(bres.Output.Tuples), len(sres.Output.Tuples))
	}
	if bres.Metrics.BalanceRatio < 2*sres.Metrics.BalanceRatio {
		t.Errorf("balance ratio: baseline %.2f vs composite-split %.2f — want >= 2x reduction",
			bres.Metrics.BalanceRatio, sres.Metrics.BalanceRatio)
	}
	t.Logf("composite balance: baseline %.2f → split %.2f (%d output tuples)",
		bres.Metrics.BalanceRatio, sres.Metrics.BalanceRatio, len(sres.Output.Tuples))
}

// TestCompositeSkewPlanGates: uniform composite keys produce no plan.
func TestCompositeSkewPlanGates(t *testing.T) {
	l := compositeKeyRelation("L", 2000, 0, 91)
	r := compositeKeyRelation("R", 500, 0, 92)
	db := newTestDB(t, l, r)
	conds := predicate.Conjunction{
		predicate.C("L", "k1", predicate.EQ, "R", "k1"),
		predicate.C("L", "k2", predicate.EQ, "R", "k2"),
	}
	if p := SkewPlanFor(db.Catalog, KindHashEqui, conds, 16, 0); p != nil {
		t.Errorf("uniform composite keys produced a skew plan: %+v", p)
	}
}

// TestMergeTreeAccounting is the merge-cost regression: the measured
// makespan's merge component must equal MergeCost summed over the
// merge tree MergeAll actually performs — not a plan-order chain.
func TestMergeTreeAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	a := randRelation("A", 60, 12, rng)
	b := randRelation("B", 50, 12, rng)
	c := randRelation("C", 40, 12, rng)
	d := randRelation("D", 30, 12, rng)
	db := newTestDB(t, a, b, c, d)
	rel := func(name string) *relation.Relation {
		rr, err := db.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		return rr
	}
	mkJob := func(name, l, r string) PlannedJob {
		return PlannedJob{
			Name:     name,
			Conds:    predicate.Conjunction{predicate.C(l, "a", predicate.EQ, r, "a")},
			RelOrder: []string{l, r},
			Kind:     KindHashEqui,
			Reducers: 4,
			Units:    4,
		}
	}
	plan := &Plan{
		Query: &query.Query{Name: "mtree"},
		Jobs: []PlannedJob{
			mkJob("mtree-j1", "A", "B"),
			mkJob("mtree-j2", "B", "C"),
			mkJob("mtree-j3", "C", "D"),
		},
	}
	pl := testPlanner(12)
	res, err := pl.Execute(plan, db)
	if err != nil {
		t.Fatal(err)
	}

	// Reproduce the outputs independently (the engine is deterministic
	// for a fixed job spec) and walk MergeAll's tree.
	var outputs []*relation.Relation
	for _, pj := range plan.Jobs {
		job, err := BuildHashEquiJob(pj.Name, rel(pj.RelOrder[0]), rel(pj.RelOrder[1]), pj.Conds, pj.Reducers)
		if err != nil {
			t.Fatal(err)
		}
		run, err := mr.Run(context.Background(), testConfig(), nil, job)
		if err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, run.Output)
	}
	_, steps, err := MergeAll("mtree", outputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 2 {
		t.Fatalf("merge steps = %d, want 2", len(steps))
	}
	var want float64
	for _, st := range steps {
		want += pl.Params.MergeCost(st.LeftBytes, st.RightBytes)
	}
	if res.MergeCount != len(steps) {
		t.Errorf("MergeCount = %d, want %d", res.MergeCount, len(steps))
	}
	if res.MergeTime != want {
		t.Errorf("MergeTime = %v, want tree-charged %v", res.MergeTime, want)
	}
	if res.Makespan < res.MergeTime {
		t.Errorf("Makespan %v excludes merge component %v", res.Makespan, res.MergeTime)
	}
}

// TestCascadeMergeSubsumption: a consumed intermediate must not
// re-enter the final merge — the cascade's last output IS the result.
func TestCascadeMergeSubsumption(t *testing.T) {
	db := cascadeDB(t)
	pl := testPlanner(8)
	res, err := pl.Execute(cascadePlan(t, db, 8), db)
	if err != nil {
		t.Fatal(err)
	}
	if res.MergeCount != 0 {
		t.Errorf("cascade merged %d times, want 0 (j2 subsumes j1)", res.MergeCount)
	}
	if res.MergeTime != 0 {
		t.Errorf("cascade charged merge time %v", res.MergeTime)
	}
	// The output schema is the consumer's: prefixed j1 columns plus S.
	if _, ok := res.Output.Schema.Lookup("casc-j1.L.k"); !ok {
		t.Error("cascade output lacks the intermediate's columns")
	}
}
