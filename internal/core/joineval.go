package core

import (
	"sort"

	"repro/internal/mr"
	"repro/internal/predicate"
	"repro/internal/relation"
)

// Indexed reducer-side join evaluation, shared by the theta (hyper-
// cube) and share-grid reducers. Both operators backtrack over per-
// relation groups inside a reduce call, extending a partial
// combination one relation at a time and checking the conditions whose
// later side just became bound. The evaluator compiles those checks
// once per job (newJoinEval) and, per reduce group, builds lightweight
// indexes lazily the first time an extension step is probed
// (groupEval):
//
//   - every numeric condition gets a normalized sort key per candidate
//     tuple — an int64 extracted once (relation.SortKeyInt/SortKeyFloat,
//     mode from predicate.CondKeyMode) — so the inner loop compares raw
//     integers instead of calling relation.Compare(Value.Add(...), ...)
//     per candidate;
//   - string conditions ride the same indexes when a side's column
//     carries an order-preserving dictionary (predicate.KeyDict):
//     interned values key on their embedded codes, the other side
//     probes the reference dictionary (see keycolumns.go and
//     relation.Dict);
//   - per step, candidate keys are extracted once per distinct
//     (column, offset, mode, dict) recipe into contiguous []int64
//     columns shared by all conditions reading them (the struct-of-
//     arrays cache of keycolumns.go);
//   - an equality condition indexes the step's candidates in a hash
//     table keyed on the normalized key: a probe examines only the
//     matching bucket;
//   - range conditions keep the candidates key-sorted; all range
//     conditions anchored on the same column (and offset) narrow the
//     scan by binary search and intersect into a single subrange, so a
//     band predicate (lo < x AND x < hi) costs two searches, not a scan;
//   - remaining non-keyable conditions (dictionary-less strings, mixed
//     kinds) fall back to relation.Compare, with a Compare-sorted run
//     (anchorRange) when they are the only handle on a step.
//
// Candidate iteration order is deterministic (original group order for
// hash probes and linear scans; stable key order for sorted runs), so
// the engine's cross-worker determinism guarantee is preserved.
//
// Work accounting: one ReduceContext.AddWork unit per candidate
// examined at a step that carries conditions. Steps without conditions
// (always the backtracker's root) enumerate without charging, matching
// the previous theta reducer; indexing therefore strictly lowers
// CombinationsChecked whenever it prunes candidates the nested loop
// used to enumerate.

// IndexedJoinEval toggles the per-group indexes (hash tables, sorted
// runs, subrange intersection). When false, every step scans its full
// candidate list and verifies conditions tuple-by-tuple — the nested-
// loop baseline, kept as an ablation for benchmarks and tests. The
// flag is snapshotted when a job is built (newJoinEval); flipping it
// while jobs run has no effect on them. Both settings produce the same
// output combinations.
var IndexedJoinEval = true

// ccond is one compiled condition: a boundCond, its key mode and the
// two key-extraction recipes (probe side lo, candidate side hi). hiSlot
// indexes the candidate extractor within its step's shared key-column
// cache. The extractors are unset for KeyGeneric conditions.
type ccond struct {
	bc     boundCond
	mode   predicate.KeyMode
	lo, hi keyExtractor
	hiSlot int
}

// loKey extracts the probe-side normalized key from the bound partial
// tuple.
func (c *ccond) loKey(t relation.Tuple) int64 { return c.lo.key(t) }

// hiKey extracts the candidate-side normalized key.
func (c *ccond) hiKey(t relation.Tuple) int64 { return c.hi.key(t) }

// evalKeys applies the condition's operator to two normalized keys.
func (c *ccond) evalKeys(lo, hi int64) bool {
	cmp := 0
	if lo < hi {
		cmp = -1
	} else if lo > hi {
		cmp = 1
	}
	return c.bc.op.Eval(cmp)
}

// joinStep is the compiled check set of one extension step: the
// conditions whose later relation ordinal is this step, split by
// evaluation strategy.
type joinStep struct {
	eq  []ccond // fast equalities: hash index on eq[0]
	rng []ccond // fast ranges: sorted run on rng[0]'s column
	ne  []ccond // fast inequalities (<>): key comparison only
	gen []ccond // generic: relation.Compare fallback
	// genAnchor indexes the first range-comparable generic condition
	// (usable with anchorRange when no fast index exists); -1 if none.
	genAnchor int
	// exts are the step's deduplicated candidate-side key extractors;
	// ccond.hiSlot indexes into them (and into the per-group key
	// columns built from them).
	exts []keyExtractor
	// schema is the step relation's schema, kept so large candidate
	// groups can be unboxed into a chunk view for vectorized key
	// extraction (see buildStep).
	schema *relation.Schema
}

func (st *joinStep) empty() bool {
	return len(st.eq) == 0 && len(st.rng) == 0 && len(st.ne) == 0 && len(st.gen) == 0
}

// slotFor registers a candidate-side extractor, returning the slot of
// an existing equivalent one when the key column can be shared.
func (st *joinStep) slotFor(e keyExtractor) int {
	for i := range st.exts {
		if st.exts[i].sameKey(&e) {
			return i
		}
	}
	st.exts = append(st.exts, e)
	return len(st.exts) - 1
}

// joinEval is the per-job compiled plan: one joinStep per relation
// ordinal. It is immutable and shared by all reduce calls of the job.
type joinEval struct {
	m       int
	steps   []joinStep
	indexed bool
}

// newJoinEval compiles the bound conditions of a job over its ordered
// relations. Column kinds come from the relation schemas; a condition
// between numeric columns gets a fast key mode, string conditions get
// dictionary keys when either side's column carries a dictionary
// (which then covers that whole side, making it a sound reference for
// both), and everything else goes through the generic path.
func newJoinEval(rels []*relation.Relation, bound []boundCond) *joinEval {
	je := &joinEval{m: len(rels), steps: make([]joinStep, len(rels)), indexed: IndexedJoinEval}
	for i := range je.steps {
		je.steps[i].genAnchor = -1
		je.steps[i].schema = rels[i].Schema
	}
	for _, bc := range bound {
		st := &je.steps[bc.hi]
		loKind := rels[bc.lo].Schema.Column(bc.loCol).Kind
		hiKind := rels[bc.hi].Schema.Column(bc.hiCol).Kind
		loDict := rels[bc.lo].DictOf(bc.loCol)
		hiDict := rels[bc.hi].DictOf(bc.hiCol)
		// The candidate side's dictionary is the preferred reference:
		// it makes every candidate key a direct code read.
		ref := hiDict
		if ref == nil {
			ref = loDict
		}
		mode := predicate.CondKeyModeDict(loKind, bc.loOff, hiKind, bc.hiOff, ref != nil)
		c := ccond{bc: bc, mode: mode}
		if mode != predicate.KeyGeneric {
			c.lo = keyExtractor{mode: mode, col: bc.loCol, off: bc.loOff}
			c.hi = keyExtractor{mode: mode, col: bc.hiCol, off: bc.hiOff}
			if mode == predicate.KeyDict {
				c.lo.dict, c.lo.direct = ref, loDict == ref
				c.hi.dict, c.hi.direct = ref, hiDict == ref
			}
			c.hiSlot = st.slotFor(c.hi)
		}
		switch {
		case mode == predicate.KeyGeneric:
			if bc.op != predicate.NE && st.genAnchor < 0 {
				st.genAnchor = len(st.gen)
			}
			st.gen = append(st.gen, c)
		case bc.op == predicate.EQ:
			st.eq = append(st.eq, c)
		case bc.op == predicate.NE:
			st.ne = append(st.ne, c)
		default:
			st.rng = append(st.rng, c)
		}
	}
	return je
}

// matchPair reports whether (l, r) satisfies every condition of a
// two-relation evaluator, comparing normalized keys pair-by-pair
// without any per-group setup. It is the cheap path for the tiny
// reduce groups a high-cardinality equi-join produces, where building
// key arrays and indexes would dominate the handful of comparisons.
func (je *joinEval) matchPair(l, r relation.Tuple) bool {
	st := &je.steps[1]
	for ci := range st.eq {
		c := &st.eq[ci]
		if c.loKey(l) != c.hiKey(r) {
			return false
		}
	}
	for ci := range st.rng {
		c := &st.rng[ci]
		if !c.evalKeys(c.loKey(l), c.hiKey(r)) {
			return false
		}
	}
	for ci := range st.ne {
		c := &st.ne[ci]
		if c.loKey(l) == c.hiKey(r) {
			return false
		}
	}
	for ci := range st.gen {
		bc := &st.gen[ci].bc
		if !bc.op.Eval(relation.Compare(l[bc.loCol].Add(bc.loOff), r[bc.hiCol].Add(bc.hiOff))) {
			return false
		}
	}
	return true
}

// stepIndex is the lazily built per-reduce-group index of one step.
type stepIndex struct {
	built bool
	// cols[x] is the contiguous key column of step extractor slot x
	// (see keycolumns.go); all backed by one allocation.
	cols [][]int64
	// Per-condition views into cols, aligned with the step's cond
	// lists — conditions sharing a slot alias the same column.
	eqKeys  [][]int64
	rngKeys [][]int64
	neKeys  [][]int64
	// genVals[ci][i] is candidate i's hi-side value with the generic
	// condition's offset applied (what relation.Compare sees).
	genVals [][]relation.Value
	all     []int32 // identity candidate list, for condition-free steps
	// Hash index on eqKeys[0] (bucket lists keep candidate order).
	hash map[int64][]int32
	// Sorted run on rngKeys[0]: order is the stable key-sorted
	// candidate permutation, skeys the keys in that order.
	order []int32
	skeys []int64
	// Compare-sorted run on genVals[genAnchor].
	gorder  []int32
	gsorted []relation.Value
	// Probe-side buffers, reused across probes of this step (safe: the
	// depth-first backtracker probes one partial per depth at a time).
	pkEq, pkRng, pkNe []int64
	pvGen             []relation.Value
}

// indexMinSize is the group size below which building a hash table or
// sorted run costs more than linear scans over the extracted keys.
const indexMinSize = 8

// chunkKeyMinRows is the candidate-group size from which buildStep
// unboxes the group into a chunk view before key extraction: below it
// the single columnar pass costs more than it saves across the step's
// extractors.
const chunkKeyMinRows = 256

// directPairVerify is the |ls|×|rs| bound below which a two-relation
// reduce group verifies pairs directly (matchPair) instead of paying
// groupEval's per-group slice setup.
const directPairVerify = 16

// groupEval evaluates one reduce group: the per-relation candidate
// groups plus lazily built step indexes and per-depth scratch buffers.
type groupEval struct {
	je      *joinEval
	groups  [][]relation.Tuple
	idx     []stepIndex
	scratch [][]int32 // per-depth surviving-candidate buffers
	sel     []int32
}

// newGroupEval prepares evaluation over the group's relations. Every
// groups[i] must be non-empty (callers return early otherwise).
func (je *joinEval) newGroupEval(groups [][]relation.Tuple) *groupEval {
	return &groupEval{
		je:      je,
		groups:  groups,
		idx:     make([]stepIndex, je.m),
		scratch: make([][]int32, je.m),
		sel:     make([]int32, je.m),
	}
}

// run backtracks over the groups and invokes onMatch with the selected
// candidate ordinals (sel[i] indexes groups[i]) for every combination
// satisfying all compiled conditions. sel is reused across calls; the
// callback must not retain it.
func (ge *groupEval) run(ctx *mr.ReduceContext, onMatch func(sel []int32)) {
	m := ge.je.m
	var rec func(j int)
	rec = func(j int) {
		if j == m {
			onMatch(ge.sel)
			return
		}
		for _, idx := range ge.candidates(j, ctx) {
			ge.sel[j] = idx
			rec(j + 1)
		}
	}
	rec(0)
}

// buildStep extracts the step's normalized keys and builds its index.
// Called on the first probe of the step, so steps pruned away upstream
// cost nothing.
func (ge *groupEval) buildStep(j int) {
	st := &ge.je.steps[j]
	si := &ge.idx[j]
	si.built = true
	cands := ge.groups[j]
	n := len(cands)
	if st.empty() {
		si.all = make([]int32, n)
		for i := range si.all {
			si.all[i] = int32(i)
		}
		return
	}
	// Materialise each distinct extractor once (keycolumns.go), then
	// alias the per-condition views into the shared columns. Groups
	// large enough to amortise the unbox go through a chunk view: one
	// columnar pass over the tuples, then every extractor reads dense
	// arrays instead of re-deriving keys from boxed values. Key values
	// are bit-identical either way.
	if len(st.exts) >= 2 && n >= chunkKeyMinRows &&
		st.schema != nil && st.schema.Len() == len(cands[0]) {
		chunk := relation.PackChunk(st.schema, cands)
		si.cols = buildKeyColumnsChunks(st.exts, []*relation.Chunk{chunk})
	} else {
		si.cols = buildKeyColumns(st.exts, cands)
	}
	view := func(cs []ccond) [][]int64 {
		if len(cs) == 0 {
			return nil
		}
		out := make([][]int64, len(cs))
		for ci := range cs {
			out[ci] = si.cols[cs[ci].hiSlot]
		}
		return out
	}
	si.eqKeys = view(st.eq)
	si.rngKeys = view(st.rng)
	si.neKeys = view(st.ne)
	if len(st.gen) > 0 {
		si.genVals = make([][]relation.Value, len(st.gen))
		for ci := range st.gen {
			bc := &st.gen[ci].bc
			vs := make([]relation.Value, n)
			for i, t := range cands {
				vs[i] = t[bc.hiCol].Add(bc.hiOff)
			}
			si.genVals[ci] = vs
		}
	}
	si.pkEq = make([]int64, len(st.eq))
	si.pkRng = make([]int64, len(st.rng))
	si.pkNe = make([]int64, len(st.ne))
	si.pvGen = make([]relation.Value, len(st.gen))
	if !ge.je.indexed || n < indexMinSize {
		return
	}
	switch {
	case len(st.eq) > 0:
		h := make(map[int64][]int32, n)
		for i, k := range si.eqKeys[0] {
			h[k] = append(h[k], int32(i))
		}
		si.hash = h
	case len(st.rng) > 0:
		si.order = stableKeyOrder(si.rngKeys[0])
		si.skeys = make([]int64, n)
		for x, i := range si.order {
			si.skeys[x] = si.rngKeys[0][i]
		}
	case st.genAnchor >= 0:
		vals := si.genVals[st.genAnchor]
		order := make([]int32, n)
		for i := range order {
			order[i] = int32(i)
		}
		sort.SliceStable(order, func(a, b int) bool {
			return relation.Compare(vals[order[a]], vals[order[b]]) < 0
		})
		si.gorder = order
		si.gsorted = make([]relation.Value, n)
		for x, i := range order {
			si.gsorted[x] = vals[i]
		}
	}
}

// stableKeyOrder returns the candidate permutation sorted ascending by
// key, equal keys keeping their original order.
func stableKeyOrder(keys []int64) []int32 {
	order := make([]int32, len(keys))
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	return order
}

// candidates returns the ordinals of the step-j candidates compatible
// with the bound partial (ge.sel[:j]), charging one work unit per
// candidate examined. The returned slice is valid until the next
// candidates call at the same depth.
func (ge *groupEval) candidates(j int, ctx *mr.ReduceContext) []int32 {
	st := &ge.je.steps[j]
	si := &ge.idx[j]
	if !si.built {
		ge.buildStep(j)
	}
	if st.empty() {
		return si.all
	}
	// Probe-side values, computed once per partial into the step's
	// reusable buffers.
	eqPK, rngPK, nePK, genPV := si.pkEq, si.pkRng, si.pkNe, si.pvGen
	ge.fillProbeKeys(st.eq, eqPK)
	ge.fillProbeKeys(st.rng, rngPK)
	ge.fillProbeKeys(st.ne, nePK)
	for ci := range st.gen {
		bc := &st.gen[ci].bc
		genPV[ci] = ge.groups[bc.lo][ge.sel[bc.lo]][bc.loCol].Add(bc.loOff)
	}
	// verify checks every condition of the step except the skipped
	// ones (already guaranteed by the index probe).
	verify := func(i int32, skipEq0, skipRng bool) bool {
		for ci := range st.eq {
			if ci == 0 && skipEq0 {
				continue
			}
			if si.eqKeys[ci][i] != eqPK[ci] {
				return false
			}
		}
		for ci := range st.rng {
			if skipRng {
				continue
			}
			if !st.rng[ci].evalKeys(rngPK[ci], si.rngKeys[ci][i]) {
				return false
			}
		}
		for ci := range st.ne {
			if si.neKeys[ci][i] == nePK[ci] {
				return false
			}
		}
		for ci := range st.gen {
			if !st.gen[ci].bc.op.Eval(relation.Compare(genPV[ci], si.genVals[ci][i])) {
				return false
			}
		}
		return true
	}
	out := ge.scratch[j][:0]
	switch {
	case si.hash != nil:
		bucket := si.hash[eqPK[0]]
		ctx.AddWork(int64(len(bucket)))
		if len(st.eq) == 1 && len(st.rng) == 0 && len(st.ne) == 0 && len(st.gen) == 0 {
			return bucket // single equality: the bucket is the answer
		}
		for _, i := range bucket {
			if verify(i, true, false) {
				out = append(out, i)
			}
		}
	case si.order != nil:
		// Intersect the subranges of every range condition anchored on
		// the sorted column; the rest verify per candidate.
		a := &st.rng[0]
		lo, hi := 0, len(si.order)
		folded := true
		for ci := range st.rng {
			c := &st.rng[ci]
			pk := rngPK[ci]
			if !c.hi.sameKey(&a.hi) {
				// Same sorted integer column, different candidate
				// offset — the usual shape of a band predicate
				// (x < c AND x > c-w). The fold stays sound by shifting
				// the probe key instead (exact arithmetic; NULL keys
				// sit at the sentinel in both encodings, and a NULL
				// probe must not shift off it). Float keys are
				// bit-remapped, so an additive shift does not commute
				// with the encoding; dictionary keys have no arithmetic
				// at all but also no distinct offsets (sameKey ignores
				// nothing they can differ by except the dictionary
				// itself, which must match for keys to be comparable).
				if c.mode != predicate.KeyInt || a.mode != predicate.KeyInt || c.bc.hiCol != a.bc.hiCol {
					folded = false
					continue
				}
				if pk != relation.NullSortKey {
					pk += int64(a.bc.hiOff) - int64(c.bc.hiOff)
				}
			}
			l, h := keyRange(si.skeys, c.bc.op, pk)
			if l > lo {
				lo = l
			}
			if h < hi {
				hi = h
			}
		}
		if hi < lo {
			hi = lo
		}
		ctx.AddWork(int64(hi - lo))
		if folded && len(st.eq) == 0 && len(st.ne) == 0 && len(st.gen) == 0 {
			return si.order[lo:hi] // anchors cover every condition
		}
		for _, i := range si.order[lo:hi] {
			if verify(i, false, folded) {
				out = append(out, i)
			}
		}
	case si.gorder != nil:
		a := &st.gen[st.genAnchor]
		pv := genPV[st.genAnchor]
		lo, hi := anchorRange(si.gsorted, a.bc.op, pv)
		ctx.AddWork(int64(hi - lo))
		for _, i := range si.gorder[lo:hi] {
			if verify(i, false, false) {
				out = append(out, i)
			}
		}
	default:
		n := int32(len(ge.groups[j]))
		ctx.AddWork(int64(n))
		for i := int32(0); i < n; i++ {
			if verify(i, false, false) {
				out = append(out, i)
			}
		}
	}
	ge.scratch[j] = out
	return out
}

// fillProbeKeys extracts the partial-side normalized key of each fast
// condition for the current selection into dst.
func (ge *groupEval) fillProbeKeys(cs []ccond, dst []int64) {
	for ci := range cs {
		bc := &cs[ci].bc
		dst[ci] = cs[ci].loKey(ge.groups[bc.lo][ge.sel[bc.lo]])
	}
}

// keyRange returns the subrange [lo, hi) of the ascending keys
// satisfying "pk op key" (the condition oriented probe→candidate).
// Only the four range operators reach it: EQ conditions take the hash
// index and NE the key-inequality check.
func keyRange(keys []int64, op predicate.Op, pk int64) (int, int) {
	n := len(keys)
	switch op {
	case predicate.LT: // pk < key: suffix of keys > pk
		return sort.Search(n, func(i int) bool { return keys[i] > pk }), n
	case predicate.LE:
		return sort.Search(n, func(i int) bool { return keys[i] >= pk }), n
	case predicate.GT: // pk > key: prefix of keys < pk
		return 0, sort.Search(n, func(i int) bool { return keys[i] >= pk })
	default: // GE
		return 0, sort.Search(n, func(i int) bool { return keys[i] > pk })
	}
}
