package core

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/obs"
	"repro/internal/predicate"
	"repro/internal/query"
)

// tracedPlan builds the multi-wave cascade fixture: job 2 reads job 1's
// output (a data dependency forcing a second wave) while job 3 is
// independent and free to overlap wave 1.
func tracedPlan(q *query.Query) *Plan {
	return &Plan{
		Query: q,
		Jobs: []PlannedJob{
			{Name: "tr-j1", Conds: predicate.Conjunction{q.Conditions[0]}, RelOrder: []string{"A", "B"},
				Kind: KindHilbertTheta, Reducers: 3, Units: 4},
			{Name: "tr-j2", Conds: predicate.Conjunction{
				predicate.C("tr-j1", "A.a", predicate.LE, "B", "b"),
			}, RelOrder: []string{"tr-j1", "B"}, Kind: KindHilbertTheta, Reducers: 3, Units: 4},
			{Name: "tr-j3", Conds: predicate.Conjunction{q.Conditions[1]}, RelOrder: []string{"B", "C"},
				Kind: KindHilbertTheta, Reducers: 2, Units: 4},
		},
	}
}

// TestTracedExecutionDeterminism asserts the determinism guarantee
// documented in package obs: enabling tracing changes no relation
// output, at any worker count. A multi-wave cascade plan runs with a
// live tracer at MaxParallelWorkers 1 and NumCPU; the outputs must be
// bit-identical, and each run's trace must be a well-formed, monotonic
// span stream covering every pipeline phase. Run it under -race: the
// per-worker shard arrangement is exactly what it stresses.
func TestTracedExecutionDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randRelation("A", 35, 12, rng)
	b := randRelation("B", 28, 12, rng)
	c := randRelation("C", 20, 12, rng)
	db := newTestDB(t, a, b, c)
	q := query.MustNew("traced", []string{"A", "B", "C"}, []predicate.Condition{
		predicate.C("A", "a", predicate.LT, "B", "a"),
		predicate.C("B", "b", predicate.GE, "C", "b"),
	})

	var ref *ExecResult
	var refWorkers int
	for _, w := range []int{1, runtime.NumCPU()} {
		o := &obs.Obs{Tracer: obs.NewTracer(), Metrics: obs.NewRegistry()}
		pl := testPlanner(8)
		pl.Config.MaxParallelWorkers = w
		res, err := pl.ExecuteContext(obs.NewContext(context.Background(), o), tracedPlan(q), db)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}

		// Output identical across worker counts, tracing on.
		if ref == nil {
			ref, refWorkers = res, w
		} else {
			if got, want := len(res.Output.Tuples), len(ref.Output.Tuples); got != want {
				t.Fatalf("workers=%d vs %d: %d vs %d output tuples", w, refWorkers, got, want)
			}
			for i := range res.Output.Tuples {
				if !reflect.DeepEqual(res.Output.Tuples[i], ref.Output.Tuples[i]) {
					t.Fatalf("workers=%d vs %d: tuple %d differs: %v vs %v",
						w, refWorkers, i, res.Output.Tuples[i], ref.Output.Tuples[i])
				}
			}
			if !reflect.DeepEqual(zeroWallMap(res.JobMetrics), zeroWallMap(ref.JobMetrics)) {
				t.Errorf("workers=%d: job metrics differ with tracing on", w)
			}
		}

		// Span stream: non-empty, named, monotonic, non-negative.
		events := o.Tracer.Events()
		if len(events) == 0 {
			t.Fatalf("workers=%d: tracer recorded no events", w)
		}
		seen := map[string]bool{}
		lastTs := int64(-1)
		for i, e := range events {
			if e.Name == "" {
				t.Fatalf("workers=%d: event %d unnamed", w, i)
			}
			if e.Ts < 0 || e.Dur < 0 {
				t.Fatalf("workers=%d: event %d (%s) negative time ts=%d dur=%d", w, i, e.Name, e.Ts, e.Dur)
			}
			if e.Ts < lastTs {
				t.Fatalf("workers=%d: event %d (%s) breaks monotonicity: %d after %d", w, i, e.Name, e.Ts, lastTs)
			}
			lastTs = e.Ts
			seen[e.Name] = true
		}
		// Phase coverage: every pipeline stage must have traced.
		// (the streaming shuffle merge traces inside the "reduce" span;
		// the gather is "shuffle-copy")
		for _, want := range []string{"execute", "dispatch", "map", "shuffle-copy", "reduce", "assemble", "plan-merge", "merge-step"} {
			if !seen[want] {
				t.Errorf("workers=%d: no %q span in trace", w, want)
			}
		}

		// The export must be valid trace-event JSON.
		var buf bytes.Buffer
		if err := o.Tracer.WriteJSON(&buf); err != nil {
			t.Fatalf("workers=%d: WriteJSON: %v", w, err)
		}
		var doc struct {
			TraceEvents []struct {
				Name string `json:"name"`
				Ph   string `json:"ph"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("workers=%d: exported trace not valid JSON: %v", w, err)
		}
		if len(doc.TraceEvents) <= len(events) {
			t.Errorf("workers=%d: export holds %d events, want > %d (thread metadata + spans)",
				w, len(doc.TraceEvents), len(events))
		}
	}

	// The same plan with tracing disabled must also agree: observers
	// are write-only and cannot steer execution.
	pl := testPlanner(8)
	plain, err := pl.Execute(tracedPlan(q), db)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Output.Tuples, ref.Output.Tuples) {
		t.Errorf("tracing changed the relation output")
	}
}
