// Package core implements the paper's query processor: planning a
// multi-way theta-join as a set of MapReduce jobs over the pruned
// join-path graph, evaluating several theta conditions in ONE job via
// Hilbert-curve partitioning of the cross-product hyper-cube (§5.1,
// Algorithm 1, Theorem 2), selecting the job set by weighted set cover
// and scheduling it on k_P bounded processing units (§4.2, §5.2).
package core

import (
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/hilbert"
	"repro/internal/relation"
)

// Partitioner maps the m-dimensional hyper-cube S = R_1 × … × R_m onto
// kR components, each a contiguous segment of a Hilbert curve over the
// η-times-recursively-halved cube (Theorem 2's perfect partition
// function f). It provides the two operations Algorithm 1 needs:
//
//   - ComponentsOf(dim, globalID): the set of components a tuple must
//     be replicated to (every component containing at least one cell
//     whose dim-th coordinate equals the tuple's cell coordinate);
//   - ComponentOfCell(axes): the single component owning a full
//     combination, so exactly one reducer emits each join result.
type Partitioner struct {
	curve  *hilbert.Curve
	cards  []int // relation cardinalities (hyper-cube side lengths)
	kr     int   // number of components (reduce tasks)
	nCells uint64

	// comps[i][v] lists the components containing any cell with
	// axes[i] == v, ascending.
	comps [][][]int32
}

// MaxCellsDefault bounds the enumerated cell count; η is chosen as the
// largest recursion depth with 2^(m·η) ≤ MaxCells.
const MaxCellsDefault = 1 << 18

// NewPartitioner builds the partition for the given relation
// cardinalities and reducer count. maxCells ≤ 0 uses MaxCellsDefault.
func NewPartitioner(cards []int, kr int, maxCells int) (*Partitioner, error) {
	m := len(cards)
	if m < 1 {
		return nil, fmt.Errorf("core: partitioner needs at least 1 dimension")
	}
	if kr < 1 {
		return nil, fmt.Errorf("core: partitioner needs kr >= 1, got %d", kr)
	}
	for i, c := range cards {
		if c < 1 {
			return nil, fmt.Errorf("core: dimension %d has cardinality %d", i, c)
		}
	}
	if maxCells <= 0 {
		maxCells = MaxCellsDefault
	}
	eta := etaFor(m, maxCells)
	curve, err := hilbert.New(m, eta)
	if err != nil {
		return nil, err
	}
	p := &Partitioner{
		curve:  curve,
		cards:  append([]int(nil), cards...),
		kr:     kr,
		nCells: curve.NumCells(),
	}
	p.buildMapping()
	return p, nil
}

// etaFor picks the recursion depth: the largest η ≥ 1 with 2^(m·η) ≤
// maxCells, capped at 16 bits per dimension.
func etaFor(m, maxCells int) int {
	eta := 1
	for (m*(eta+1)) <= 62 && (uint64(1)<<uint(m*(eta+1))) <= uint64(maxCells) && eta+1 <= 16 {
		eta++
	}
	return eta
}

// buildMapping enumerates every cell once, recording for each
// (dimension, coordinate) the components that touch it.
func (p *Partitioner) buildMapping() {
	m := p.curve.Dims()
	side := int(p.curve.CellsPerDim())
	seen := make([][]int32, m)
	for i := range seen {
		seen[i] = make([]int32, side)
		for v := range seen[i] {
			seen[i][v] = -1
		}
	}
	p.comps = make([][][]int32, m)
	for i := range p.comps {
		p.comps[i] = make([][]int32, side)
	}
	for h := uint64(0); h < p.nCells; h++ {
		comp := p.componentOfIndex(h)
		axes := p.curve.IndexToAxes(h)
		for i, v := range axes {
			// The curve is contiguous per component; avoid duplicate
			// appends by remembering the last component seen per (i,v).
			if seen[i][v] != comp {
				seen[i][v] = comp
				p.comps[i][v] = append(p.comps[i][v], comp)
			}
		}
	}
}

// componentOfIndex assigns Hilbert position h to one of kr balanced
// contiguous segments.
func (p *Partitioner) componentOfIndex(h uint64) int32 {
	// Balanced split: component s owns [s·N/kr, (s+1)·N/kr).
	return int32(h * uint64(p.kr) / p.nCells)
}

// Components returns the number of components (= reduce tasks).
func (p *Partitioner) Components() int { return p.kr }

// Eta returns the recursion depth η.
func (p *Partitioner) Eta() int { return p.curve.Bits() }

// CellCoord maps a tuple's global ID in dimension dim to its cell
// coordinate: IDs are spread uniformly over the 2^η cells.
func (p *Partitioner) CellCoord(dim int, globalID uint64) uint32 {
	card := uint64(p.cards[dim])
	if globalID >= card {
		globalID = card - 1
	}
	side := uint64(p.curve.CellsPerDim())
	return uint32(globalID * side / card)
}

// ComponentsOf returns the components tuple (dim, globalID) must be
// copied to. The returned slice is shared; callers must not modify it.
func (p *Partitioner) ComponentsOf(dim int, globalID uint64) []int32 {
	return p.comps[dim][p.CellCoord(dim, globalID)]
}

// ComponentOfCombination returns the unique component owning the cell
// addressed by the given per-dimension global IDs.
func (p *Partitioner) ComponentOfCombination(globalIDs []uint64) int32 {
	axes := make([]uint32, len(globalIDs))
	for i, g := range globalIDs {
		axes[i] = p.CellCoord(i, g)
	}
	return p.componentOfIndex(p.curve.AxesToIndex(axes))
}

// componentOfAxes is ComponentOfCombination on precomputed coordinates.
func (p *Partitioner) componentOfAxes(axes []uint32) int32 {
	return p.componentOfIndex(p.curve.AxesToIndex(axes))
}

// Score computes the partition score of Eq. 7: the total number of
// tuple copies across components, Σ_i Σ_j Cnt(t_j^{R_i}, C). With IDs
// uniform over cells, every coordinate of dimension i carries
// |R_i|/2^η tuples.
func (p *Partitioner) Score() float64 {
	side := int(p.curve.CellsPerDim())
	total := 0.0
	for i := range p.comps {
		perCoord := float64(p.cards[i]) / float64(side)
		for v := 0; v < side; v++ {
			total += float64(len(p.comps[i][v])) * perCoord
		}
	}
	return total
}

// ScoreForKR estimates Eq. 7's score for a hypothetical component
// count without materialising the mapping: it re-scans the cells and
// counts distinct segments per (dimension, coordinate). Used by the
// Δ(k_R) sweep of Eq. 10.
func ScoreForKR(cards []int, kr int, maxCells int) (float64, error) {
	p, err := NewPartitioner(cards, kr, maxCells)
	if err != nil {
		return 0, err
	}
	return p.Score(), nil
}

// IdealScore is the analytic lower bound of the duplication volume for
// kr components (Eq. 9's fair-duplication form): each component holds
// an ε = 1/kr share of every dimension under perfect fairness, so each
// tuple of R_i is duplicated kr^((m-1)/m) times in expectation.
func IdealScore(cards []int, kr int) float64 {
	m := len(cards)
	if m == 0 || kr < 1 {
		return 0
	}
	dup := math.Pow(float64(kr), float64(m-1)/float64(m))
	total := 0.0
	for _, c := range cards {
		total += float64(c) * dup
	}
	return total
}

// GlobalID deterministically assigns a tuple its "random" global ID in
// [0, card): Algorithm 1 randomises because map tasks lack a global
// view; a salted hash gives the same decorrelation while keeping runs
// reproducible and, critically, assigning the same ID to the same
// tuple in both the map (routing) and reduce (membership check)
// phases.
func GlobalID(t relation.Tuple, card int, salt uint64) uint64 {
	if card <= 1 {
		return 0
	}
	h := fnv.New64a()
	var buf [8]byte
	buf[0] = byte(salt)
	buf[1] = byte(salt >> 8)
	buf[2] = byte(salt >> 16)
	buf[3] = byte(salt >> 24)
	h.Write(buf[:4])
	for _, v := range t {
		h.Write([]byte{byte(v.Kind())})
		h.Write([]byte(v.String()))
		h.Write([]byte{0x1f})
	}
	return h.Sum64() % uint64(card)
}
