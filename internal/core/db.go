package core

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/relation"
	"repro/internal/skew"
)

// RowIDColumn is the synthetic unique row identifier column added to
// every registered base relation. The paper's merge steps combine job
// outputs "using the primary keys … only output keys or data IDs
// involved" (§4.2); RowIDColumn is that data ID.
const RowIDColumn = "rid"

// DB registers the base relations a query runs against, together with
// the sampled statistics catalog the optimizer consumes.
type DB struct {
	rels    map[string]*relation.Relation
	aliasOf map[string]string
	Catalog *relation.Catalog

	// analyzeGen counts Analyze runs and version caches the catalog
	// version computed by the last one (see CatalogVersion).
	analyzeGen uint64
	version    uint64
}

// BaseName resolves an alias to the relation it was created from;
// non-alias names map to themselves. Baseline planners use this to
// recognise self-joins scanning the same physical table (YSmart's
// input correlation).
func (db *DB) BaseName(name string) string {
	if base, ok := db.aliasOf[name]; ok {
		return base
	}
	return name
}

// NewDB registers relations, adding a unique RowIDColumn to any
// relation lacking one, and analyzes them (sample size and seed as
// given; sampleSize <= 0 uses 1000).
func NewDB(sampleSize int, seed int64, rels ...*relation.Relation) (*DB, error) {
	db := &DB{
		rels:    make(map[string]*relation.Relation, len(rels)),
		aliasOf: make(map[string]string),
	}
	for _, r := range rels {
		if r == nil {
			return nil, fmt.Errorf("core: nil relation")
		}
		if _, dup := db.rels[r.Name]; dup {
			return nil, fmt.Errorf("core: duplicate relation %q", r.Name)
		}
		withID, err := EnsureRowIDs(r)
		if err != nil {
			return nil, err
		}
		db.rels[r.Name] = withID
	}
	db.Analyze(sampleSize, seed)
	return db, nil
}

// StringInterning toggles order-preserving dictionary construction for
// string columns at DB.Analyze time (relation.InternStrings). When
// false, string values stay plain, string conditions take the generic
// relation.Compare path and the shuffle carries full string bytes —
// the ablation baseline for benchmarks and tests. Like
// IndexedJoinEval, the setting is consumed when a DB is built; both
// settings produce the same join results.
var StringInterning = true

// Analyze (re)builds the statistics catalog, including the per-column
// heavy-hitter reports the skew subsystem consumes. The explicit seed
// makes sampling — and therefore the hot-key reports and every plan
// derived from them — deterministic across runs. String columns are
// interned first (see StringInterning), so the retained sample rows
// and hot-key values carry dictionary codes consistent with the
// relation's.
func (db *DB) Analyze(sampleSize int, seed int64) {
	all := make([]*relation.Relation, 0, len(db.rels))
	for _, r := range db.rels {
		all = append(all, r)
	}
	// The catalog rng is shared across relations in slice order; sort
	// by name so each relation draws the same sample every run (map
	// iteration order would otherwise leak into the statistics).
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	if StringInterning {
		for _, r := range all {
			relation.InternStrings(r)
		}
	}
	db.Catalog = relation.NewCatalog(all, sampleSize, rand.New(rand.NewSource(seed)))
	skew.AnnotateCatalog(db.Catalog, all, skew.DefaultOptions())
	db.analyzeGen++
	db.version = catalogVersion(db.Catalog.Fingerprint(), db.analyzeGen)
}

// catalogVersion mixes the statistics fingerprint with the analyze
// generation into one cache-key component.
func catalogVersion(fingerprint, gen uint64) uint64 {
	const prime64 = 1099511628211 // FNV-1a prime
	v := fingerprint
	v ^= gen
	v *= prime64
	return v
}

// CatalogVersion identifies the statistics state plans are built from:
// a content fingerprint of the catalog (schemas, cardinalities,
// histograms, hot keys, samples — see relation.Catalog.Fingerprint)
// mixed with the analyze generation. Any Analyze re-run bumps it, and
// reloading relations with different content changes the fingerprint —
// either way, plan-cache entries keyed on the old version stop
// matching, so a cached plan can never outlive the statistics that
// justified it.
func (db *DB) CatalogVersion() uint64 { return db.version }

// View returns a shallow per-query copy of the database with the given
// aliases applied: the relation and catalog maps are copied (sharing
// the underlying immutable relations and statistics), so concurrent
// queries can register self-join aliases without mutating the shared
// DB. The view keeps the base CatalogVersion — aliases are query
// naming, not a statistics change; cache keys distinguish them through
// the canonical query string instead.
func (db *DB) View(aliases map[string]string) (*DB, error) {
	v := &DB{
		rels:       make(map[string]*relation.Relation, len(db.rels)+len(aliases)),
		aliasOf:    make(map[string]string, len(db.aliasOf)+len(aliases)),
		Catalog:    &relation.Catalog{Tables: make(map[string]*relation.TableStats, len(db.Catalog.Tables)+len(aliases))},
		analyzeGen: db.analyzeGen,
		version:    db.version,
	}
	for n, r := range db.rels {
		v.rels[n] = r
	}
	for n, b := range db.aliasOf {
		v.aliasOf[n] = b
	}
	for n, ts := range db.Catalog.Tables {
		v.Catalog.Tables[n] = ts
	}
	// Alias in sorted order so error selection is deterministic when
	// several aliases conflict.
	names := make([]string, 0, len(aliases))
	for a := range aliases {
		names = append(names, a)
	}
	sort.Strings(names)
	for _, a := range names {
		if a == aliases[a] {
			if _, ok := v.rels[a]; !ok {
				return nil, fmt.Errorf("core: unknown relation %q", a)
			}
			continue
		}
		if err := v.Alias(a, aliases[a]); err != nil {
			return nil, err
		}
	}
	return v, nil
}

// Relation returns a registered relation.
func (db *DB) Relation(name string) (*relation.Relation, error) {
	r, ok := db.rels[name]
	if !ok {
		return nil, fmt.Errorf("core: no relation %q", name)
	}
	return r, nil
}

// Names returns the registered relation names (unordered).
func (db *DB) Names() []string {
	out := make([]string, 0, len(db.rels))
	for n := range db.rels {
		out = append(out, n)
	}
	return out
}

// Alias registers newName as a second handle on an existing relation's
// tuples — how self-joins ("FROM table t1, table t2") enter the
// planner, which requires distinct relation names per query vertex.
func (db *DB) Alias(newName, existing string) error {
	if _, dup := db.rels[newName]; dup {
		return fmt.Errorf("core: alias %q already registered", newName)
	}
	src, ok := db.rels[existing]
	if !ok {
		return fmt.Errorf("core: alias target %q not registered", existing)
	}
	cp := *src
	cp.Name = newName
	db.rels[newName] = &cp
	db.aliasOf[newName] = db.BaseName(existing)
	if db.Catalog != nil {
		if ts, ok := db.Catalog.Tables[existing]; ok {
			tsCopy := *ts
			tsCopy.Relation = newName
			db.Catalog.Tables[newName] = &tsCopy
		}
	}
	return nil
}

// EnsureRowIDs returns a relation guaranteed to carry a unique integer
// RowIDColumn. If the column exists it is validated for uniqueness;
// otherwise a copy with an appended sequence column is returned.
func EnsureRowIDs(r *relation.Relation) (*relation.Relation, error) {
	if idx, ok := r.Schema.Lookup(RowIDColumn); ok {
		seen := make(map[int64]bool, len(r.Tuples))
		for _, t := range r.Tuples {
			id := t[idx].Int64()
			if seen[id] {
				return nil, fmt.Errorf("core: relation %s has duplicate %s %d", r.Name, RowIDColumn, id)
			}
			seen[id] = true
		}
		return r, nil
	}
	cols := append(r.Schema.Columns(), relation.Column{Name: RowIDColumn, Kind: relation.KindInt})
	schema, err := relation.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	out := relation.New(r.Name, schema)
	out.VolumeMultiplier = r.VolumeMultiplier
	out.Tuples = make([]relation.Tuple, len(r.Tuples))
	for i, t := range r.Tuples {
		nt := make(relation.Tuple, 0, len(t)+1)
		nt = append(nt, t...)
		nt = append(nt, relation.Int(int64(i)))
		out.Tuples[i] = nt
	}
	return out, nil
}
