package core

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
)

func TestNewPartitionerValidation(t *testing.T) {
	if _, err := NewPartitioner(nil, 4, 0); err == nil {
		t.Error("no dims accepted")
	}
	if _, err := NewPartitioner([]int{10}, 0, 0); err == nil {
		t.Error("kr=0 accepted")
	}
	if _, err := NewPartitioner([]int{10, 0}, 4, 0); err == nil {
		t.Error("zero cardinality accepted")
	}
	p, err := NewPartitioner([]int{100, 200, 300}, 8, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	if p.Components() != 8 {
		t.Errorf("components = %d", p.Components())
	}
	if p.Eta() < 1 {
		t.Errorf("eta = %d", p.Eta())
	}
}

func TestEtaFor(t *testing.T) {
	// 3 dims, max 2^18 cells → eta = 6 (2^18 exactly).
	if got := etaFor(3, 1<<18); got != 6 {
		t.Errorf("etaFor(3, 2^18) = %d, want 6", got)
	}
	// 2 dims → eta = 9.
	if got := etaFor(2, 1<<18); got != 9 {
		t.Errorf("etaFor(2, 2^18) = %d, want 9", got)
	}
	if got := etaFor(5, 4); got != 1 {
		t.Errorf("etaFor(5, 4) = %d, want 1", got)
	}
	// Cap at 16 bits per dim.
	if got := etaFor(1, 1<<30); got != 16 {
		t.Errorf("etaFor(1, 2^30) = %d, want 16", got)
	}
}

// Every cell belongs to exactly one component, and ComponentsOf is
// consistent: the owner of any cell appears in the ComponentsOf set of
// every dimension coordinate of that cell.
func TestPartitionCoverage(t *testing.T) {
	cards := []int{50, 70, 90}
	p, err := NewPartitioner(cards, 7, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, p.Components())
	for h := uint64(0); h < p.nCells; h++ {
		comp := p.componentOfIndex(h)
		if comp < 0 || int(comp) >= p.Components() {
			t.Fatalf("cell %d in component %d", h, comp)
		}
		counts[comp]++
		axes := p.curve.IndexToAxes(h)
		for i, v := range axes {
			found := false
			for _, c := range p.comps[i][v] {
				if c == comp {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("component %d missing from comps[%d][%d]", comp, i, v)
			}
		}
	}
	// Balanced segments: max/min cell counts within 1 of each other
	// after integer division.
	min, max := counts[0], counts[0]
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max-min > 1 {
		t.Errorf("unbalanced components: min %d max %d", min, max)
	}
}

// The joinability guarantee behind Algorithm 1: for any combination of
// global IDs, the owning component appears in every participating
// tuple's ComponentsOf set — so all m tuples meet at that reducer.
func TestCombinationMeetsAtOwner(t *testing.T) {
	cards := []int{40, 60, 25}
	p, err := NewPartitioner(cards, 11, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 3000; trial++ {
		ids := []uint64{
			uint64(rng.Intn(cards[0])),
			uint64(rng.Intn(cards[1])),
			uint64(rng.Intn(cards[2])),
		}
		owner := p.ComponentOfCombination(ids)
		for dim, id := range ids {
			found := false
			for _, c := range p.ComponentsOf(dim, id) {
				if c == owner {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: owner %d not in ComponentsOf(%d, %d)", trial, owner, dim, id)
			}
		}
	}
}

// Theorem 2 consequence: the Hilbert partition's duplication score
// stays close to the analytic fair-duplication lower bound, and far
// below the worst case (every tuple to every component).
func TestScoreNearIdeal(t *testing.T) {
	cards := []int{500, 500, 500}
	for _, kr := range []int{2, 4, 8, 16, 32} {
		p, err := NewPartitioner(cards, kr, 1<<15)
		if err != nil {
			t.Fatal(err)
		}
		score := p.Score()
		ideal := IdealScore(cards, kr)
		worst := float64(kr) * 1500
		if score < float64(1500) {
			t.Errorf("kr=%d: score %v below tuple count", kr, score)
		}
		if score > 3*ideal {
			t.Errorf("kr=%d: score %v far above ideal %v", kr, score, ideal)
		}
		if score >= worst && kr > 2 {
			t.Errorf("kr=%d: score %v at worst case %v", kr, score, worst)
		}
	}
}

// Fig. 5's monotonicity: the network volume (score) grows with the
// number of reduce tasks.
func TestScoreGrowsWithKR(t *testing.T) {
	cards := []int{300, 300, 300}
	prev := 0.0
	for _, kr := range []int{1, 2, 4, 8, 16, 32, 64} {
		s, err := ScoreForKR(cards, kr, 1<<15)
		if err != nil {
			t.Fatal(err)
		}
		if s < prev {
			t.Errorf("score decreased at kr=%d: %v < %v", kr, s, prev)
		}
		prev = s
	}
	// kr=1: every tuple copied exactly once.
	s1, _ := ScoreForKR(cards, 1, 1<<15)
	if s1 != 900 {
		t.Errorf("score at kr=1 = %v, want 900", s1)
	}
}

func TestCellCoordRange(t *testing.T) {
	p, err := NewPartitioner([]int{10, 1000}, 4, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	side := p.curve.CellsPerDim()
	for dim, card := range []int{10, 1000} {
		for id := 0; id < card; id++ {
			c := p.CellCoord(dim, uint64(id))
			if c >= side {
				t.Fatalf("coord %d out of range for dim %d id %d", c, dim, id)
			}
		}
		// Out-of-range IDs clamp.
		if c := p.CellCoord(dim, uint64(card+100)); c >= side {
			t.Fatalf("clamped coord out of range")
		}
	}
	// Coordinates cover the full range for the large dimension.
	seen := map[uint32]bool{}
	for id := 0; id < 1000; id++ {
		seen[p.CellCoord(1, uint64(id))] = true
	}
	if len(seen) != int(side) {
		t.Errorf("dim 1 covers %d of %d coordinates", len(seen), side)
	}
}

func TestGlobalIDProperties(t *testing.T) {
	tup := relation.Tuple{relation.Int(42), relation.Str("x")}
	// Deterministic.
	a := GlobalID(tup, 1000, 7)
	b := GlobalID(tup, 1000, 7)
	if a != b {
		t.Error("GlobalID not deterministic")
	}
	// Salt changes the assignment (decorrelation).
	c := GlobalID(tup, 1000, 8)
	if a == c {
		t.Log("salt collision (possible but unlikely)")
	}
	if GlobalID(tup, 1, 7) != 0 {
		t.Error("card=1 must map to 0")
	}
	// Range.
	for card := 2; card < 50; card += 7 {
		if id := GlobalID(tup, card, 3); id >= uint64(card) {
			t.Errorf("id %d out of range %d", id, card)
		}
	}
	// Roughly uniform over many tuples.
	buckets := make([]int, 10)
	for i := 0; i < 10000; i++ {
		tt := relation.Tuple{relation.Int(int64(i))}
		buckets[GlobalID(tt, 10, 1)]++
	}
	for b, n := range buckets {
		if n < 700 || n > 1300 {
			t.Errorf("bucket %d has %d of 10000 (want ~1000)", b, n)
		}
	}
}

func TestTupleGlobalIDUniform(t *testing.T) {
	buckets := make([]int, 8)
	for i := 0; i < 8000; i++ {
		id := tupleGlobalID(relation.Int(int64(i)), 8, 99, 2)
		buckets[id]++
	}
	for b, n := range buckets {
		if n < 700 || n > 1300 {
			t.Errorf("bucket %d has %d of 8000", b, n)
		}
	}
	if tupleGlobalID(relation.Int(5), 1, 0, 0) != 0 {
		t.Error("card=1 id != 0")
	}
}
