package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/mr"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/relation"
)

// mixedRelation builds a relation exercising every key mode: int (i),
// float (f), string (s) and time (t) columns.
func mixedRelation(name string, n, domain int, rng *rand.Rand) *relation.Relation {
	r := relation.New(name, relation.MustSchema(
		relation.Column{Name: "i", Kind: relation.KindInt},
		relation.Column{Name: "f", Kind: relation.KindFloat},
		relation.Column{Name: "s", Kind: relation.KindString},
		relation.Column{Name: "t", Kind: relation.KindTime},
	))
	for k := 0; k < n; k++ {
		r.MustAppend(relation.Tuple{
			relation.Int(int64(rng.Intn(domain))),
			relation.Float(float64(rng.Intn(4*domain)) / 4),
			relation.Str(string(rune('a' + rng.Intn(domain%26+1)))),
			relation.TimeUnix(int64(rng.Intn(domain))),
		})
	}
	return r
}

// runJob executes a job single-threaded with the shared test config.
func runEvalJob(t *testing.T, job *mr.Job) *mr.Result {
	t.Helper()
	res, err := mr.Run(context.Background(), testConfig(), nil, job)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestJoinEvalThetaEquivalence checks the indexed theta reducer
// against the Naive oracle across every condition shape the evaluator
// compiles differently: equalities, single and band ranges, NE,
// fractional offsets (int→float promotion), string columns (the
// generic path) and time columns.
func TestJoinEvalThetaEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := mixedRelation("A", 70, 12, rng)
	b := mixedRelation("B", 60, 12, rng)
	c := mixedRelation("C", 50, 12, rng)
	db := newTestDB(t, a, b, c)
	cases := []struct {
		name  string
		rels  []string
		conds []predicate.Condition
	}{
		{"eq-int", []string{"A", "B"}, []predicate.Condition{
			predicate.C("A", "i", predicate.EQ, "B", "i"),
		}},
		{"range-int", []string{"A", "B"}, []predicate.Condition{
			predicate.C("A", "i", predicate.LT, "B", "i"),
		}},
		{"band-int", []string{"A", "B"}, []predicate.Condition{
			predicate.C("A", "i", predicate.LT, "B", "i"),
			predicate.C("A", "i", predicate.GT, "B", "i").WithOffsets(0, -4),
		}},
		{"band-float", []string{"A", "B"}, []predicate.Condition{
			// Different candidate-side offsets in float mode: not
			// foldable into one subrange, verified per candidate.
			predicate.C("A", "f", predicate.LT, "B", "f"),
			predicate.C("A", "f", predicate.GT, "B", "f").WithOffsets(0, -2.5),
		}},
		{"band-time", []string{"A", "B"}, []predicate.Condition{
			// Integer mode with differing offsets: folds by shifting
			// the probe key (time offsets truncate, as Value.Add does).
			predicate.C("A", "t", predicate.LE, "B", "t"),
			predicate.C("A", "t", predicate.GE, "B", "t").WithOffsets(0, -3),
		}},
		{"eq-plus-range", []string{"A", "B"}, []predicate.Condition{
			predicate.C("A", "i", predicate.EQ, "B", "i"),
			predicate.C("A", "f", predicate.LE, "B", "f"),
		}},
		{"ne", []string{"A", "B"}, []predicate.Condition{
			predicate.C("A", "i", predicate.GE, "B", "i"),
			predicate.C("A", "t", predicate.NE, "B", "t"),
		}},
		{"float-offset-promotion", []string{"A", "B"}, []predicate.Condition{
			predicate.C("A", "i", predicate.LT, "B", "i").WithOffsets(0.5, 0),
		}},
		{"int-vs-float", []string{"A", "B"}, []predicate.Condition{
			predicate.C("A", "i", predicate.GE, "B", "f"),
		}},
		{"string-generic", []string{"A", "B"}, []predicate.Condition{
			predicate.C("A", "s", predicate.LE, "B", "s"),
			predicate.C("A", "i", predicate.LT, "B", "i").WithOffsets(-2, 0),
		}},
		{"string-only", []string{"A", "B"}, []predicate.Condition{
			predicate.C("A", "s", predicate.EQ, "B", "s"),
		}},
		{"time-range", []string{"A", "B"}, []predicate.Condition{
			predicate.C("A", "t", predicate.LE, "B", "t").WithOffsets(3, 0),
		}},
		{"three-way-mixed", []string{"A", "B", "C"}, []predicate.Condition{
			predicate.C("A", "i", predicate.EQ, "B", "i"),
			predicate.C("B", "f", predicate.LT, "C", "f"),
			predicate.C("A", "t", predicate.GE, "C", "t").WithOffsets(0, -2),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := query.MustNew("q-"+tc.name, tc.rels, tc.conds)
			want, err := Naive(q, db)
			if err != nil {
				t.Fatal(err)
			}
			order, err := OrderRelations(q.Conditions)
			if err != nil {
				t.Fatal(err)
			}
			rels := make([]*relation.Relation, len(order))
			for i, name := range order {
				r, err := db.Relation(name)
				if err != nil {
					t.Fatal(err)
				}
				rels[i] = r
			}
			job, _, err := BuildThetaJob("theta-"+tc.name, rels, q.Conditions, 5, 1<<12)
			if err != nil {
				t.Fatal(err)
			}
			got := resultSet(runEvalJob(t, job).Output)
			wantRS := resultSet(want)
			if !wantRS.Equal(got) {
				t.Errorf("result mismatch: got %d rows, want %d\ndiff: %v",
					got.Len(), wantRS.Len(), wantRS.Diff(got, 5))
			}
		})
	}
}

// TestJoinEvalShareGridEquivalence does the same for the share-grid
// reducer, whose equality conditions now probe hash indexes and whose
// theta residuals ride the range path.
func TestJoinEvalShareGridEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := mixedRelation("A", 60, 8, rng)
	b := mixedRelation("B", 50, 8, rng)
	c := mixedRelation("C", 40, 8, rng)
	db := newTestDB(t, a, b, c)
	cases := []struct {
		name  string
		rels  []string
		conds []predicate.Condition
	}{
		{"equi-pair", []string{"A", "B"}, []predicate.Condition{
			predicate.C("A", "i", predicate.EQ, "B", "i"),
		}},
		{"equi-chain", []string{"A", "B", "C"}, []predicate.Condition{
			predicate.C("A", "i", predicate.EQ, "B", "i"),
			predicate.C("B", "t", predicate.EQ, "C", "t"),
		}},
		{"equi-with-residual", []string{"A", "B", "C"}, []predicate.Condition{
			predicate.C("A", "i", predicate.EQ, "B", "i"),
			predicate.C("B", "i", predicate.EQ, "C", "i"),
			predicate.C("A", "f", predicate.LT, "C", "f"),
			predicate.C("A", "s", predicate.NE, "C", "s"),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := query.MustNew("q-"+tc.name, tc.rels, tc.conds)
			want, err := Naive(q, db)
			if err != nil {
				t.Fatal(err)
			}
			rels := make([]*relation.Relation, len(tc.rels))
			for i, name := range tc.rels {
				r, err := db.Relation(name)
				if err != nil {
					t.Fatal(err)
				}
				rels[i] = r
			}
			job, err := BuildShareGridJob("grid-"+tc.name, rels, q.Conditions, 8, 1<<12)
			if err != nil {
				t.Fatal(err)
			}
			got := resultSet(runEvalJob(t, job).Output)
			wantRS := resultSet(want)
			if !wantRS.Equal(got) {
				t.Errorf("result mismatch: got %d rows, want %d\ndiff: %v",
					got.Len(), wantRS.Len(), wantRS.Diff(got, 5))
			}
		})
	}
}

// TestJoinEvalIndexingPrunes runs the same jobs with and without the
// per-group indexes: the output multiset must be identical, and on the
// share-grid workload the indexed evaluator must examine strictly
// fewer candidate combinations than the nested-loop baseline.
func TestJoinEvalIndexingPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	a := randRelation("A", 120, 15, rng)
	b := randRelation("B", 100, 15, rng)
	c := randRelation("C", 80, 15, rng)
	db := newTestDB(t, a, b, c)
	rel := func(name string) *relation.Relation {
		r, err := db.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	gridConds := predicate.Conjunction{
		predicate.C("A", "a", predicate.EQ, "B", "a"),
		predicate.C("B", "b", predicate.EQ, "C", "b"),
	}
	thetaConds := predicate.Conjunction{
		predicate.C("A", "a", predicate.LT, "B", "a"),
		predicate.C("A", "a", predicate.GT, "B", "a").WithOffsets(0, -5),
	}
	run := func(indexed bool, build func(suffix string) (*mr.Job, error)) *mr.Result {
		t.Helper()
		defer func(prev bool) { IndexedJoinEval = prev }(IndexedJoinEval)
		IndexedJoinEval = indexed
		job, err := build(fmt.Sprintf("idx=%v", indexed))
		if err != nil {
			t.Fatal(err)
		}
		return runEvalJob(t, job)
	}
	t.Run("share-grid", func(t *testing.T) {
		build := func(suffix string) (*mr.Job, error) {
			return BuildShareGridJob("grid-"+suffix, []*relation.Relation{rel("A"), rel("B"), rel("C")}, gridConds, 8, 1<<12)
		}
		linear, indexed := run(false, build), run(true, build)
		if got, want := resultSet(indexed.Output), resultSet(linear.Output); !want.Equal(got) {
			t.Errorf("indexing changed the result: %d vs %d rows", got.Len(), want.Len())
		}
		li, ix := linear.Metrics.CombinationsChecked, indexed.Metrics.CombinationsChecked
		if ix >= li {
			t.Errorf("indexing did not prune: %d checked with indexes, %d without", ix, li)
		}
	})
	t.Run("theta-band", func(t *testing.T) {
		build := func(suffix string) (*mr.Job, error) {
			job, _, err := BuildThetaJob("theta-"+suffix, []*relation.Relation{rel("A"), rel("B")}, thetaConds, 5, 1<<12)
			return job, err
		}
		linear, indexed := run(false, build), run(true, build)
		if got, want := resultSet(indexed.Output), resultSet(linear.Output); !want.Equal(got) {
			t.Errorf("indexing changed the result: %d vs %d rows", got.Len(), want.Len())
		}
		li, ix := linear.Metrics.CombinationsChecked, indexed.Metrics.CombinationsChecked
		if ix >= li {
			t.Errorf("indexing did not prune: %d checked with indexes, %d without", ix, li)
		}
	})
}
