package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/relation"
)

func testPlanner(kp int) *Planner {
	pl := NewPlanner(testConfig(), kp)
	pl.Opts.MaxCells = 1 << 12
	return pl
}

func TestPlanAndExecuteChain(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := randRelation("A", 50, 15, rng)
	b := randRelation("B", 40, 15, rng)
	c := randRelation("C", 30, 15, rng)
	db := newTestDB(t, a, b, c)
	q := query.MustNew("chain", []string{"A", "B", "C"}, []predicate.Condition{
		predicate.C("A", "a", predicate.LT, "B", "a"),
		predicate.C("B", "b", predicate.GE, "C", "b"),
	})
	pl := testPlanner(16)
	plan, err := pl.Plan(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Jobs) == 0 || plan.EstimatedMakespan <= 0 {
		t.Fatalf("degenerate plan: %+v", plan)
	}
	// Every condition covered exactly by the union of job edges.
	covered := map[int]bool{}
	for _, j := range plan.Jobs {
		for _, id := range j.EdgeIDs {
			covered[id] = true
		}
		if j.Reducers < 1 || j.Reducers > 16 {
			t.Errorf("job %s reducers %d out of range", j.Name, j.Reducers)
		}
		if j.Units < j.Reducers {
			t.Errorf("job %s units %d < reducers %d", j.Name, j.Units, j.Reducers)
		}
	}
	for _, id := range q.ConditionIDs() {
		if !covered[id] {
			t.Errorf("condition %d uncovered", id)
		}
	}
	res, err := pl.Execute(plan, db)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Naive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	got, wantRS := resultSet(res.Output), resultSet(want)
	if !wantRS.Equal(got) {
		t.Errorf("executed result mismatch: %d vs %d rows: %v",
			got.Len(), wantRS.Len(), wantRS.Diff(got, 3))
	}
	if res.Makespan <= 0 {
		t.Error("no measured makespan")
	}
	if res.ShuffleBytes <= 0 {
		t.Error("no shuffle accounting")
	}
}

// Random end-to-end property: Plan+Execute equals Naive for random
// query shapes (chains, extra conditions forming cycles) and kP values.
func TestPlannerRandomEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	ops := []predicate.Op{predicate.LT, predicate.LE, predicate.EQ, predicate.GE, predicate.GT, predicate.NE}
	for trial := 0; trial < 10; trial++ {
		m := 2 + rng.Intn(2)
		names := []string{"A", "B", "C"}[:m]
		rels := make([]*relation.Relation, m)
		for i := range rels {
			rels[i] = randRelation(names[i], 15+rng.Intn(20), 8, rng)
		}
		var conds []predicate.Condition
		for i := 0; i+1 < m; i++ {
			conds = append(conds, predicate.Condition{
				Left: names[i], LeftColumn: "a",
				Op:    ops[rng.Intn(len(ops))],
				Right: names[i+1], RightColumn: "a",
			})
		}
		if m == 3 && rng.Intn(2) == 0 { // close the triangle
			conds = append(conds, predicate.Condition{
				Left: names[0], LeftColumn: "b", Op: ops[rng.Intn(len(ops))],
				Right: names[2], RightColumn: "b",
			})
		}
		db := newTestDB(t, rels...)
		q, err := query.New("rq", names, conds)
		if err != nil {
			t.Fatal(err)
		}
		kp := 2 + rng.Intn(14)
		pl := testPlanner(kp)
		plan, res, err := pl.Run(q, db)
		if err != nil {
			t.Fatalf("trial %d (%s, kp=%d): %v", trial, q, kp, err)
		}
		want, err := Naive(q, db)
		if err != nil {
			t.Fatal(err)
		}
		got, wantRS := resultSet(res.Output), resultSet(want)
		if !wantRS.Equal(got) {
			t.Fatalf("trial %d (%s, kp=%d, %d jobs): mismatch %d vs %d: %v",
				trial, q, kp, len(plan.Jobs), got.Len(), wantRS.Len(), wantRS.Diff(got, 3))
		}
	}
}

func TestPlannerSelfJoinAliases(t *testing.T) {
	// Q1-style self-join: three aliases of one table.
	rng := rand.New(rand.NewSource(41))
	base := randRelation("calls", 25, 10, rng)
	db := newTestDB(t, base)
	if err := db.Alias("t1", "calls"); err != nil {
		t.Fatal(err)
	}
	if err := db.Alias("t2", "calls"); err != nil {
		t.Fatal(err)
	}
	q := query.MustNew("self", []string{"t1", "t2"}, []predicate.Condition{
		predicate.C("t1", "a", predicate.LE, "t2", "a"),
		predicate.C("t1", "b", predicate.GE, "t2", "b"),
	})
	pl := testPlanner(8)
	_, res, err := pl.Run(q, db)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Naive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	got, wantRS := resultSet(res.Output), resultSet(want)
	if !wantRS.Equal(got) {
		t.Errorf("self-join mismatch: %d vs %d rows", got.Len(), wantRS.Len())
	}
}

func TestPlanEquiShortcut(t *testing.T) {
	// A pure equi pair should plan as hash-equi, not Hilbert.
	rng := rand.New(rand.NewSource(43))
	a := randRelation("A", 60, 10, rng)
	b := randRelation("B", 60, 10, rng)
	db := newTestDB(t, a, b)
	q := query.MustNew("eq", []string{"A", "B"}, []predicate.Condition{
		predicate.C("A", "a", predicate.EQ, "B", "a"),
	})
	pl := testPlanner(8)
	plan, err := pl.Plan(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Jobs) != 1 {
		t.Fatalf("jobs = %d", len(plan.Jobs))
	}
	if plan.Jobs[0].Kind != KindHashEqui {
		t.Errorf("kind = %v, want hash-equi", plan.Jobs[0].Kind)
	}
}

func TestPlanString(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	db := newTestDB(t, randRelation("A", 10, 5, rng), randRelation("B", 10, 5, rng))
	q := query.MustNew("s", []string{"A", "B"}, []predicate.Condition{
		predicate.C("A", "a", predicate.LT, "B", "a"),
	})
	plan, err := testPlanner(4).Plan(q, db)
	if err != nil {
		t.Fatal(err)
	}
	s := plan.String()
	if !strings.Contains(s, "plan for s") || !strings.Contains(s, "kR=") {
		t.Errorf("String() = %q", s)
	}
}

func TestPlannerValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	db := newTestDB(t, randRelation("A", 5, 5, rng), randRelation("B", 5, 5, rng))
	q := query.MustNew("v", []string{"A", "B"}, []predicate.Condition{
		predicate.C("A", "a", predicate.LT, "B", "a"),
	})
	pl := testPlanner(0)
	if _, err := pl.Plan(q, db); err == nil {
		t.Error("kp=0 accepted")
	}
	pl = testPlanner(4)
	if _, err := pl.Execute(&Plan{Query: q}, db); err == nil {
		t.Error("empty plan accepted")
	}
	// Unknown relation in query.
	q2 := query.MustNew("v2", []string{"A", "Z"}, []predicate.Condition{
		predicate.C("A", "a", predicate.LT, "Z", "a"),
	})
	if _, err := pl.Plan(q2, db); err == nil {
		t.Error("unknown relation accepted")
	}
}

// Resource awareness: with fewer processing units the estimated
// makespan must not improve.
func TestPlanKPMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	a := randRelation("A", 80, 20, rng)
	b := randRelation("B", 80, 20, rng)
	c := randRelation("C", 80, 20, rng)
	for _, r := range []*relation.Relation{a, b, c} {
		r.VolumeMultiplier = 1e5
	}
	db := newTestDB(t, a, b, c)
	q := query.MustNew("kp", []string{"A", "B", "C"}, []predicate.Condition{
		predicate.C("A", "a", predicate.LT, "B", "a"),
		predicate.C("B", "b", predicate.GE, "C", "b"),
	})
	wide, err := testPlanner(32).Plan(q, db)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := testPlanner(4).Plan(q, db)
	if err != nil {
		t.Fatal(err)
	}
	// Cover selection (greedy set cover by weight) precedes scheduling,
	// as in the paper's two-phase pipeline, so strict monotonicity in
	// kP is not guaranteed — but a narrow cluster must never appear
	// substantially faster.
	if narrow.EstimatedMakespan < wide.EstimatedMakespan*0.75 {
		t.Errorf("narrow kP estimated much faster: %v vs %v",
			narrow.EstimatedMakespan, wide.EstimatedMakespan)
	}
}

func TestCanonicalizeResult(t *testing.T) {
	r := relation.New("x", relation.MustSchema(
		relation.Column{Name: "b.v", Kind: relation.KindInt},
		relation.Column{Name: "a.v", Kind: relation.KindInt},
	))
	r.MustAppend(relation.Tuple{relation.Int(1), relation.Int(2)})
	c := CanonicalizeResult(r)
	if c.Schema.Column(0).Name != "a.v" {
		t.Errorf("first column = %s", c.Schema.Column(0).Name)
	}
	if c.Tuples[0][0].Int64() != 2 || c.Tuples[0][1].Int64() != 1 {
		t.Error("values not permuted with columns")
	}
}

func TestExactQuerySelectivity(t *testing.T) {
	a := relation.New("A", relation.MustSchema(relation.Column{Name: "v", Kind: relation.KindInt}))
	b := relation.New("B", relation.MustSchema(relation.Column{Name: "v", Kind: relation.KindInt}))
	for i := 0; i < 10; i++ {
		a.MustAppend(relation.Tuple{relation.Int(int64(i))})
		b.MustAppend(relation.Tuple{relation.Int(int64(i))})
	}
	db := newTestDB(t, a, b)
	q := query.MustNew("sel", []string{"A", "B"}, []predicate.Condition{
		predicate.C("A", "v", predicate.EQ, "B", "v"),
	})
	sel, err := ExactQuerySelectivity(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if sel != 0.1 {
		t.Errorf("selectivity = %v, want 0.1", sel)
	}
	ops := InequalityFuncs(q)
	if len(ops) != 0 {
		t.Errorf("equality query reports inequality funcs %v", ops)
	}
	q2 := query.MustNew("sel2", []string{"A", "B"}, []predicate.Condition{
		predicate.C("A", "v", predicate.LT, "B", "v"),
		predicate.C("A", "v", predicate.NE, "B", "v"),
	})
	ops = InequalityFuncs(q2)
	if len(ops) != 2 {
		t.Errorf("ops = %v", ops)
	}
}
