package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/mr"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/relation"
)

func testConfig() mr.Config {
	cfg := mr.DefaultConfig()
	cfg.TuplesPerMapTask = 32
	cfg.MapSlots = 8
	cfg.ReduceSlots = 8
	return cfg
}

// randRelation builds a relation of n tuples with integer columns a, b
// drawn from [0, domain).
func randRelation(name string, n, domain int, rng *rand.Rand) *relation.Relation {
	r := relation.New(name, relation.MustSchema(
		relation.Column{Name: "a", Kind: relation.KindInt},
		relation.Column{Name: "b", Kind: relation.KindInt},
	))
	for i := 0; i < n; i++ {
		r.MustAppend(relation.Tuple{
			relation.Int(int64(rng.Intn(domain))),
			relation.Int(int64(rng.Intn(domain))),
		})
	}
	return r
}

func newTestDB(t *testing.T, rels ...*relation.Relation) *DB {
	t.Helper()
	db, err := NewDB(500, 1, rels...)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func resultSet(r *relation.Relation) *relation.ResultSet {
	rs := relation.NewResultSet()
	rs.AddAll(CanonicalizeResult(r).Tuples)
	return rs
}

func TestDBRowIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := newTestDB(t, randRelation("A", 10, 5, rng))
	a, err := db.Relation("A")
	if err != nil {
		t.Fatal(err)
	}
	idx, ok := a.Schema.Lookup(RowIDColumn)
	if !ok {
		t.Fatal("rid column missing")
	}
	seen := map[int64]bool{}
	for _, tup := range a.Tuples {
		id := tup[idx].Int64()
		if seen[id] {
			t.Fatal("duplicate rid")
		}
		seen[id] = true
	}
}

func TestDBValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randRelation("A", 5, 5, rng)
	if _, err := NewDB(100, 1, a, a); err == nil {
		t.Error("duplicate relation accepted")
	}
	if _, err := NewDB(100, 1, nil); err == nil {
		t.Error("nil relation accepted")
	}
	// Pre-existing rid column with duplicates must be rejected.
	bad := relation.New("B", relation.MustSchema(relation.Column{Name: "rid", Kind: relation.KindInt}))
	bad.MustAppend(relation.Tuple{relation.Int(1)})
	bad.MustAppend(relation.Tuple{relation.Int(1)})
	if _, err := NewDB(100, 1, bad); err == nil {
		t.Error("duplicate rid accepted")
	}
}

func TestDBAlias(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := newTestDB(t, randRelation("A", 10, 5, rng))
	if err := db.Alias("A2", "A"); err != nil {
		t.Fatal(err)
	}
	a2, err := db.Relation("A2")
	if err != nil {
		t.Fatal(err)
	}
	if a2.Name != "A2" || a2.Cardinality() != 10 {
		t.Error("alias shape wrong")
	}
	if err := db.Alias("A2", "A"); err == nil {
		t.Error("duplicate alias accepted")
	}
	if err := db.Alias("A3", "nope"); err == nil {
		t.Error("alias of unknown relation accepted")
	}
	if _, err := db.Catalog.Stats("A2"); err != nil {
		t.Error("alias missing from catalog")
	}
}

func TestOrderRelationsChain(t *testing.T) {
	conds := predicate.Conjunction{
		predicate.C("B", "a", predicate.LT, "C", "a"),
		predicate.C("A", "a", predicate.LT, "B", "a"),
	}
	order, err := OrderRelations(conds)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	if order[0] != "A" || order[1] != "B" || order[2] != "C" {
		t.Errorf("chain order = %v, want A B C", order)
	}
}

func TestOrderRelationsDisconnected(t *testing.T) {
	conds := predicate.Conjunction{
		predicate.C("A", "a", predicate.LT, "B", "a"),
		predicate.C("C", "a", predicate.LT, "D", "a"),
	}
	if _, err := OrderRelations(conds); err == nil {
		t.Error("disconnected conjunction accepted")
	}
	if _, err := OrderRelations(nil); err == nil {
		t.Error("empty conjunction accepted")
	}
}

func TestAllEquiSamePair(t *testing.T) {
	if !AllEquiSamePair(predicate.Conjunction{
		predicate.C("A", "a", predicate.EQ, "B", "a"),
		predicate.C("A", "b", predicate.EQ, "B", "b"),
	}) {
		t.Error("two-EQ same pair not recognized")
	}
	if AllEquiSamePair(predicate.Conjunction{
		predicate.C("A", "a", predicate.EQ, "B", "a"),
		predicate.C("B", "b", predicate.EQ, "C", "b"),
	}) {
		t.Error("three relations recognized as same pair")
	}
	if AllEquiSamePair(predicate.Conjunction{
		predicate.C("A", "a", predicate.LT, "B", "a"),
	}) {
		t.Error("LT recognized as equi")
	}
	if AllEquiSamePair(nil) {
		t.Error("empty recognized")
	}
}

// The central correctness theorem: a single Hilbert-partitioned MRJ
// produces exactly the naive join result — every joinable combination
// meets at exactly one reducer.
func TestThetaJobMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randRelation("A", 60, 20, rng)
	b := randRelation("B", 50, 20, rng)
	c := randRelation("C", 40, 20, rng)
	db := newTestDB(t, a, b, c)
	q := query.MustNew("q", []string{"A", "B", "C"}, []predicate.Condition{
		predicate.C("A", "a", predicate.LT, "B", "a"),
		predicate.C("B", "b", predicate.GE, "C", "b"),
	})
	want, err := Naive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, kr := range []int{1, 3, 8, 16} {
		rels := make([]*relation.Relation, 3)
		for i, n := range []string{"A", "B", "C"} {
			rels[i], _ = db.Relation(n)
		}
		job, _, err := BuildThetaJob("t", rels, q.Conditions, kr, 1<<12)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mr.Run(context.Background(), testConfig(), nil, job)
		if err != nil {
			t.Fatal(err)
		}
		got, wantRS := resultSet(res.Output), resultSet(want)
		if !wantRS.Equal(got) {
			t.Errorf("kr=%d: result mismatch (%d vs %d rows): %v",
				kr, got.Len(), wantRS.Len(), wantRS.Diff(got, 3))
		}
	}
}

// Property test: random small relations, random conditions with every
// theta operator, random reducer counts — single-MRJ result must equal
// naive every time.
func TestThetaJobRandomQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ops := []predicate.Op{predicate.LT, predicate.LE, predicate.EQ, predicate.GE, predicate.GT, predicate.NE}
	for trial := 0; trial < 25; trial++ {
		m := 2 + rng.Intn(2) // 2 or 3 relations
		names := []string{"A", "B", "C"}[:m]
		rels := make([]*relation.Relation, m)
		for i := range rels {
			rels[i] = randRelation(names[i], 15+rng.Intn(25), 6+rng.Intn(10), rng)
		}
		var conds []predicate.Condition
		for i := 0; i+1 < m; i++ {
			conds = append(conds, predicate.Condition{
				Left: names[i], LeftColumn: []string{"a", "b"}[rng.Intn(2)],
				Op:    ops[rng.Intn(len(ops))],
				Right: names[i+1], RightColumn: []string{"a", "b"}[rng.Intn(2)],
				LeftOffset: float64(rng.Intn(5) - 2),
			})
		}
		// Sometimes add a second condition on the first pair.
		if rng.Intn(2) == 0 {
			conds = append(conds, predicate.Condition{
				Left: names[0], LeftColumn: "b", Op: ops[rng.Intn(len(ops))],
				Right: names[1], RightColumn: "a",
			})
		}
		db := newTestDB(t, rels...)
		q, err := query.New("rq", names, conds)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Naive(q, db)
		if err != nil {
			t.Fatal(err)
		}
		order, err := OrderRelations(q.Conditions)
		if err != nil {
			t.Fatal(err)
		}
		ordered := make([]*relation.Relation, len(order))
		for i, n := range order {
			ordered[i], _ = db.Relation(n)
		}
		kr := 1 + rng.Intn(12)
		job, _, err := BuildThetaJob("t", ordered, q.Conditions, kr, 1<<10)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mr.Run(context.Background(), testConfig(), nil, job)
		if err != nil {
			t.Fatal(err)
		}
		got, wantRS := resultSet(res.Output), resultSet(want)
		if !wantRS.Equal(got) {
			t.Fatalf("trial %d (%s, kr=%d): mismatch %d vs %d rows: %v",
				trial, q, kr, got.Len(), wantRS.Len(), wantRS.Diff(got, 3))
		}
	}
}

func TestThetaJobEmptyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randRelation("A", 0, 5, rng)
	b := randRelation("B", 10, 5, rng)
	db := newTestDB(t, a, b)
	ra, _ := db.Relation("A")
	rb, _ := db.Relation("B")
	conds := predicate.Conjunction{predicate.C("A", "a", predicate.LT, "B", "a")}
	job, _, err := BuildThetaJob("t", []*relation.Relation{ra, rb}, conds, 4, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mr.Run(context.Background(), testConfig(), nil, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Cardinality() != 0 {
		t.Error("nonempty join with empty input")
	}
}

func TestHashEquiJobMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randRelation("A", 80, 12, rng)
	b := randRelation("B", 70, 12, rng)
	db := newTestDB(t, a, b)
	q := query.MustNew("eq", []string{"A", "B"}, []predicate.Condition{
		predicate.C("A", "a", predicate.EQ, "B", "a"),
		predicate.C("A", "b", predicate.EQ, "B", "b"),
	})
	want, err := Naive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := db.Relation("A")
	rb, _ := db.Relation("B")
	job, err := BuildHashEquiJob("he", ra, rb, q.Conditions, 6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mr.Run(context.Background(), testConfig(), nil, job)
	if err != nil {
		t.Fatal(err)
	}
	got, wantRS := resultSet(res.Output), resultSet(want)
	if !wantRS.Equal(got) {
		t.Errorf("hash equi mismatch: %d vs %d rows", got.Len(), wantRS.Len())
	}
	// No duplication: shuffle pairs = total input tuples.
	if res.Metrics.PairsEmitted != int64(ra.Cardinality()+rb.Cardinality()) {
		t.Errorf("equi join duplicated tuples: %d pairs", res.Metrics.PairsEmitted)
	}
}

func TestHashEquiJobRejectsTheta(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	db := newTestDB(t, randRelation("A", 5, 5, rng), randRelation("B", 5, 5, rng))
	ra, _ := db.Relation("A")
	rb, _ := db.Relation("B")
	if _, err := BuildHashEquiJob("he", ra, rb,
		predicate.Conjunction{predicate.C("A", "a", predicate.LT, "B", "a")}, 2); err == nil {
		t.Error("theta condition accepted by hash equi join")
	}
}

func TestMergeOutputs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randRelation("A", 30, 8, rng)
	b := randRelation("B", 30, 8, rng)
	c := randRelation("C", 30, 8, rng)
	db := newTestDB(t, a, b, c)
	q := query.MustNew("m3", []string{"A", "B", "C"}, []predicate.Condition{
		predicate.C("A", "a", predicate.LE, "B", "a"),
		predicate.C("B", "b", predicate.GT, "C", "a"),
	})
	want, err := Naive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate the two conditions as separate jobs, then merge on B.
	ra, _ := db.Relation("A")
	rb, _ := db.Relation("B")
	rc, _ := db.Relation("C")
	j1, _, err := BuildThetaJob("j1", []*relation.Relation{ra, rb},
		predicate.Conjunction{q.Conditions[0]}, 4, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	j2, _, err := BuildThetaJob("j2", []*relation.Relation{rb, rc},
		predicate.Conjunction{q.Conditions[1]}, 4, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := mr.Run(context.Background(), testConfig(), nil, j1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := mr.Run(context.Background(), testConfig(), nil, j2)
	if err != nil {
		t.Fatal(err)
	}
	merged, steps, err := MergeAll("m3", []*relation.Relation{r1.Output, r2.Output})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 1 {
		t.Errorf("merge count = %d", len(steps))
	}
	got, wantRS := resultSet(merged), resultSet(want)
	if !wantRS.Equal(got) {
		t.Errorf("merged result mismatch: %d vs %d rows: %v",
			got.Len(), wantRS.Len(), wantRS.Diff(got, 3))
	}
}

func TestMergeNoSharedRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	a := randRelation("A", 5, 5, rng)
	b := randRelation("B", 5, 5, rng)
	db := newTestDB(t, a, b)
	ra, _ := db.Relation("A")
	rb, _ := db.Relation("B")
	oa := relation.New("oa", prefixedSchema([]*relation.Relation{ra}))
	ob := relation.New("ob", prefixedSchema([]*relation.Relation{rb}))
	if _, err := MergeOutputs("x", oa, ob); err == nil {
		t.Error("disjoint merge accepted")
	}
	if _, _, err := MergeAll("x", nil); err == nil {
		t.Error("empty merge accepted")
	}
}

func TestNaiveDuplicateTuples(t *testing.T) {
	// Duplicate rows in a base relation must yield duplicate join rows,
	// and the theta job must reproduce the multiplicity exactly (row
	// IDs distinguish the physical tuples).
	a := relation.New("A", relation.MustSchema(relation.Column{Name: "a", Kind: relation.KindInt}))
	a.MustAppend(relation.Tuple{relation.Int(1)})
	a.MustAppend(relation.Tuple{relation.Int(1)}) // duplicate value
	b := relation.New("B", relation.MustSchema(relation.Column{Name: "a", Kind: relation.KindInt}))
	b.MustAppend(relation.Tuple{relation.Int(2)})
	db := newTestDB(t, a, b)
	q := query.MustNew("dup", []string{"A", "B"}, []predicate.Condition{
		predicate.C("A", "a", predicate.LT, "B", "a"),
	})
	want, err := Naive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if want.Cardinality() != 2 {
		t.Fatalf("naive rows = %d, want 2", want.Cardinality())
	}
	ra, _ := db.Relation("A")
	rb, _ := db.Relation("B")
	job, _, err := BuildThetaJob("dup", []*relation.Relation{ra, rb}, q.Conditions, 3, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mr.Run(context.Background(), testConfig(), nil, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Cardinality() != 2 {
		t.Errorf("theta job rows = %d, want 2", res.Output.Cardinality())
	}
}
