package core

// Named reproductions of the paper's illustrative figures (DESIGN.md's
// experiment index): Fig. 5's network-volume growth with reducer count
// and Fig. 4's merge plan live here; Fig. 1's join-path graph is
// covered in internal/joinpath.

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/mr"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/relation"
)

// TestFig5NetworkVolume reproduces Fig. 5's walk-through: partitioning
// the |R_i|×|R_j|×|R_k| cube with more reduce tasks increases the
// copied network volume, starting from exactly |R_i|+|R_j|+|R_k| at a
// single reducer. With |R_i|=|R_j|=|R_k|, the figure's 2-component
// split copies (2+2+1)/3 of the single-component volume for the best
// axis-aligned cut; the Hilbert partition must stay within the
// figure's 4-component spread (≤ 3× the single-component volume).
func TestFig5NetworkVolume(t *testing.T) {
	const n = 240
	cards := []int{n, n, n}
	base, err := ScoreForKR(cards, 1, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	if base != float64(3*n) {
		t.Fatalf("1 reducer copies %v tuples, want %d", base, 3*n)
	}
	two, err := ScoreForKR(cards, 2, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 5(b/c): the 2-component cut duplicates one dimension:
	// volume between 4n/3·... and 5n/3 of base — loosely, strictly
	// above base and at most 2× base.
	if two <= base || two > 2*base {
		t.Errorf("2 reducers copy %v, want in (%v, %v]", two, base, 2*base)
	}
	four, err := ScoreForKR(cards, 4, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 5(d/e): 4 components spread between 2× and 3× base.
	if four <= two || four > 3*base {
		t.Errorf("4 reducers copy %v, want in (%v, %v]", four, two, 3*base)
	}
}

// TestFig4MergePlan executes the §4.2 walk-through end to end: three
// jobs over shared relations merge pairwise on row IDs, and the final
// result matches the one-shot join.
func TestFig4MergePlan(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	mk := func(name string) *relation.Relation {
		r := relation.New(name, relation.MustSchema(
			relation.Column{Name: "v", Kind: relation.KindInt},
		))
		for i := 0; i < 18; i++ {
			r.MustAppend(relation.Tuple{relation.Int(int64(rng.Intn(10)))})
		}
		return r
	}
	db, err := NewDB(200, 1, mk("R1"), mk("R2"), mk("R3"), mk("R4"), mk("R5"))
	if err != nil {
		t.Fatal(err)
	}
	// A 5-relation chain query evaluated as three jobs:
	// e'_i = {θ1,θ2} over R1,R2,R3; e'_j = {θ3} over R3,R4;
	// e'_k = {θ4} over R4,R5 — then merged as in Fig. 4.
	q := query.MustNew("fig4", []string{"R1", "R2", "R3", "R4", "R5"},
		[]predicate.Condition{
			predicate.C("R1", "v", predicate.LE, "R2", "v"),
			predicate.C("R2", "v", predicate.LT, "R3", "v"),
			predicate.C("R3", "v", predicate.GE, "R4", "v"),
			predicate.C("R4", "v", predicate.NE, "R5", "v"),
		})
	want, err := Naive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	runJob := func(name string, relNames []string, conds predicate.Conjunction) *relation.Relation {
		rels := make([]*relation.Relation, len(relNames))
		for i, n := range relNames {
			rels[i], _ = db.Relation(n)
		}
		job, _, err := BuildThetaJob(name, rels, conds, 4, 1<<10)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mr.Run(context.Background(), cfg, nil, job)
		if err != nil {
			t.Fatal(err)
		}
		return res.Output
	}
	ei := runJob("ei", []string{"R1", "R2", "R3"}, predicate.Conjunction{q.Conditions[0], q.Conditions[1]})
	ej := runJob("ej", []string{"R3", "R4"}, predicate.Conjunction{q.Conditions[2]})
	ek := runJob("ek", []string{"R4", "R5"}, predicate.Conjunction{q.Conditions[3]})

	merged, steps, err := MergeAll("fig4", []*relation.Relation{ei, ej, ek})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 2 {
		t.Errorf("merge steps = %d, want 2 (as in Fig. 4)", len(steps))
	}
	got, wantRS := resultSet(merged), resultSet(want)
	if !wantRS.Equal(got) {
		t.Errorf("Fig. 4 plan result mismatch: %d vs %d rows: %v",
			got.Len(), wantRS.Len(), wantRS.Diff(got, 3))
	}
}
