package core

import "repro/internal/relation"

// Checkpointer persists a cascade's completed intermediate relations
// so a failed plan can resume without re-executing the jobs that
// already finished. internal/dfs's CheckpointStore implements it
// (structurally — neither package imports the other); tests may plug
// in anything.
//
// The executor saves every CONSUMED intermediate (a planned job whose
// output another planned job reads) under (plan key, job name) the
// moment the job completes, and on resume (PlanOptions.ResumeFrom)
// loads whatever the store still holds, re-executing only the rest.
// Terminal job outputs are never checkpointed — they feed the final
// merge directly and re-deriving them is exactly the work a resumed
// plan must redo.
//
// Implementations must return bit-identical relations from
// LoadIntermediate (content, dictionaries, volume multiplier) and be
// safe for concurrent use; save and load run from the executor's
// dispatch goroutine but multiple plans may share one store.
type Checkpointer interface {
	// SaveIntermediate persists job's output under (plan, job),
	// replacing any previous checkpoint for the key.
	SaveIntermediate(plan, job string, r *relation.Relation) error
	// LoadIntermediate rebuilds the checkpoint for (plan, job),
	// reporting ok=false when none is held.
	LoadIntermediate(plan, job string) (*relation.Relation, bool, error)
}
