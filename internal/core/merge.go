package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/relation"
)

// Merging (§4.2, Fig. 4): when two jobs of T share input relations,
// their outputs combine on the shared relations' row IDs — "such a
// merge operation only has output keys or data IDs involved, therefore
// it can be done very efficiently". The full query result is obtained
// by merging every job output into one relation.

// relationsOfOutput recovers the set of base-relation names whose
// columns appear in a join output (the prefixes of its column names).
func relationsOfOutput(r *relation.Relation) []string {
	seen := map[string]bool{}
	var out []string
	for i := 0; i < r.Schema.Len(); i++ {
		name := r.Schema.Column(i).Name
		if dot := strings.IndexByte(name, '.'); dot > 0 {
			rel := name[:dot]
			if !seen[rel] {
				seen[rel] = true
				out = append(out, rel)
			}
		}
	}
	return out
}

// sharedRelations intersects the base-relation sets of two outputs.
func sharedRelations(a, b *relation.Relation) []string {
	inA := map[string]bool{}
	for _, r := range relationsOfOutput(a) {
		inA[r] = true
	}
	var out []string
	for _, r := range relationsOfOutput(b) {
		if inA[r] {
			out = append(out, r)
		}
	}
	sort.Strings(out)
	return out
}

// MergeOutputs joins two job outputs on the row IDs of their shared
// base relations, producing a relation whose columns are the union
// (right's shared-relation columns are dropped; they duplicate the
// left's). Returns an error when the outputs share no relation — the
// planner's merge ordering guarantees they always do.
func MergeOutputs(name string, left, right *relation.Relation) (*relation.Relation, error) {
	shared := sharedRelations(left, right)
	if len(shared) == 0 {
		return nil, fmt.Errorf("core: merge %s: outputs %s and %s share no relation", name, left.Name, right.Name)
	}
	// Key columns: shared relations' rid columns on both sides.
	var lKey, rKey []int
	for _, rel := range shared {
		li, ok := left.Schema.Lookup(rel + "." + RowIDColumn)
		if !ok {
			return nil, fmt.Errorf("core: merge %s: %s lacks %s.%s", name, left.Name, rel, RowIDColumn)
		}
		ri, ok := right.Schema.Lookup(rel + "." + RowIDColumn)
		if !ok {
			return nil, fmt.Errorf("core: merge %s: %s lacks %s.%s", name, right.Name, rel, RowIDColumn)
		}
		lKey = append(lKey, li)
		rKey = append(rKey, ri)
	}
	// Right columns to keep: those of relations not shared.
	sharedSet := map[string]bool{}
	for _, s := range shared {
		sharedSet[s] = true
	}
	var rKeep []int
	var cols []relation.Column
	cols = append(cols, left.Schema.Columns()...)
	for i := 0; i < right.Schema.Len(); i++ {
		c := right.Schema.Column(i)
		dot := strings.IndexByte(c.Name, '.')
		if dot > 0 && sharedSet[c.Name[:dot]] {
			continue
		}
		rKeep = append(rKeep, i)
		cols = append(cols, c)
	}
	schema, err := relation.NewSchema(cols...)
	if err != nil {
		return nil, fmt.Errorf("core: merge %s: %w", name, err)
	}
	out := relation.New(name, schema)
	if left.VolumeMultiplier > right.VolumeMultiplier {
		out.VolumeMultiplier = left.VolumeMultiplier
	} else {
		out.VolumeMultiplier = right.VolumeMultiplier
	}
	// Column dictionaries follow their columns: left's in place, then
	// the kept right columns' (see relation.Relation.Dicts).
	{
		dicts := make([]*relation.Dict, 0, schema.Len())
		any := false
		for i := 0; i < left.Schema.Len(); i++ {
			d := left.DictOf(i)
			if d != nil {
				any = true
			}
			dicts = append(dicts, d)
		}
		for _, ri := range rKeep {
			d := right.DictOf(ri)
			if d != nil {
				any = true
			}
			dicts = append(dicts, d)
		}
		if any {
			out.Dicts = dicts
		}
	}

	// Hash join on the composite rid key.
	index := make(map[string][]int, len(right.Tuples))
	var kb strings.Builder
	keyOf := func(t relation.Tuple, colIdx []int) string {
		kb.Reset()
		for _, c := range colIdx {
			kb.WriteString(t[c].String())
			kb.WriteByte(0x1f)
		}
		return kb.String()
	}
	for i, t := range right.Tuples {
		k := keyOf(t, rKey)
		index[k] = append(index[k], i)
	}
	for _, lt := range left.Tuples {
		for _, ri := range index[keyOf(lt, lKey)] {
			rt := right.Tuples[ri]
			row := make(relation.Tuple, 0, len(cols))
			row = append(row, lt...)
			for _, c := range rKeep {
				row = append(row, rt[c])
			}
			out.Tuples = append(out.Tuples, row)
		}
	}
	return out, nil
}

// MergeStep records one pair-merge of the tree: the modeled byte
// sizes of its two operands, in selection order. The executor charges
// the measured merge makespan off these steps, and the planner's
// estimate (estimateMergeSteps) walks the same selection policy, so
// estimate and measurement price the same tree instead of the
// plan-order chain they historically disagreed on.
type MergeStep struct {
	LeftBytes, RightBytes int64
}

// mergeOperand is the pair-selection view of one partial result:
// which base relations its columns cover, its cardinality, and its
// modeled bytes. MergeAll builds operands from real relations; the
// planner's merge estimate builds them from candidate estimates, so
// both sides walk the same tree-selection policy (pickMergePair).
type mergeOperand struct {
	rels  map[string]bool
	card  int
	bytes int64
}

func operandOf(r *relation.Relation) mergeOperand {
	rels := make(map[string]bool)
	for _, n := range relationsOfOutput(r) {
		rels[n] = true
	}
	return mergeOperand{rels: rels, card: r.Cardinality(), bytes: r.ModeledSize()}
}

func sharedCount(a, b map[string]bool) int {
	n := 0
	for k := range a {
		if b[k] {
			n++
		}
	}
	return n
}

// pickMergePair returns the operand pair sharing the most relations
// (ties: smaller combined cardinality first, then first in index
// order), or ok=false when no pair shares a relation.
func pickMergePair(ops []mergeOperand) (bi, bj int, ok bool) {
	bi, bj = -1, -1
	bestShared, bestCard := 0, 0
	for i := 0; i < len(ops); i++ {
		for j := i + 1; j < len(ops); j++ {
			s := sharedCount(ops[i].rels, ops[j].rels)
			if s == 0 {
				continue
			}
			card := ops[i].card + ops[j].card
			if s > bestShared || (s == bestShared && (bi < 0 || card < bestCard)) {
				bi, bj, bestShared, bestCard = i, j, s, card
			}
		}
	}
	return bi, bj, bi >= 0
}

// MergeAll combines every job output into the final query result,
// repeatedly merging the pair of partial results sharing the most
// relations (pickMergePair). Section 3.2's connectivity argument
// guarantees a sharing pair always exists for a sufficient T over a
// connected join graph. The returned steps record the operand sizes
// of every merge actually performed, for tree-true cost accounting:
// a merged node re-enters later steps priced at the sum of its
// constituents — the ID payload it carries forward, per the paper's
// "only output keys or data IDs involved" merge argument — not at its
// materialized width, mirroring estimateMergeSteps' recurrence.
func MergeAll(name string, outputs []*relation.Relation) (*relation.Relation, []MergeStep, error) {
	return mergeAll(name, outputs, nil)
}

// mergeAll is MergeAll with a tracing shard: each executed pair-merge
// records a "merge-step" span carrying operand names and sizes. The
// executor passes its own shard; the exported MergeAll passes nil.
func mergeAll(name string, outputs []*relation.Relation, sh *obs.Shard) (*relation.Relation, []MergeStep, error) {
	if len(outputs) == 0 {
		return nil, nil, fmt.Errorf("core: nothing to merge")
	}
	work := append([]*relation.Relation(nil), outputs...)
	ops := make([]mergeOperand, len(work))
	for i, r := range work {
		ops[i] = operandOf(r)
	}
	var steps []MergeStep
	for len(work) > 1 {
		bi, bj, ok := pickMergePair(ops)
		if !ok {
			return nil, steps, fmt.Errorf("core: merge stalled; no pair of outputs shares a relation")
		}
		stepName := name
		if len(work) > 2 {
			stepName = fmt.Sprintf("%s~m%d", name, len(steps))
		}
		steps = append(steps, MergeStep{LeftBytes: ops[bi].bytes, RightBytes: ops[bj].bytes})
		sp := sh.Start("merge-step",
			obs.A("left", work[bi].Name), obs.A("right", work[bj].Name),
			obs.A("leftBytes", ops[bi].bytes), obs.A("rightBytes", ops[bj].bytes))
		merged, err := MergeOutputs(stepName, work[bi], work[bj])
		if err != nil {
			sp.End(obs.A("error", err.Error()))
			return nil, steps, err
		}
		sp.End(obs.A("outTuples", merged.Cardinality()))
		mergedOp := mergeOperand{
			rels:  operandOf(merged).rels,
			card:  merged.Cardinality(),
			bytes: ops[bi].bytes + ops[bj].bytes,
		}
		// Remove j first (j > i), then i; append merged.
		work = append(work[:bj], work[bj+1:]...)
		work = append(work[:bi], work[bi+1:]...)
		work = append(work, merged)
		ops = append(ops[:bj], ops[bj+1:]...)
		ops = append(ops[:bi], ops[bi+1:]...)
		ops = append(ops, mergedOp)
	}
	work[0].Name = name
	return work[0], steps, nil
}

// estimateMergeSteps predicts MergeAll's tree on estimated operands:
// the same pair selection, with the merged operand approximated as the
// relation-set union carrying the summed bytes and the smaller
// cardinality (an ID-keyed merge keeps at most the matching rows of
// either side). Stops early if no pair shares a relation — execution
// would fail there too.
func estimateMergeSteps(ops []mergeOperand) []MergeStep {
	ops = append([]mergeOperand(nil), ops...)
	var steps []MergeStep
	for len(ops) > 1 {
		bi, bj, ok := pickMergePair(ops)
		if !ok {
			return steps
		}
		l, r := ops[bi], ops[bj]
		steps = append(steps, MergeStep{LeftBytes: l.bytes, RightBytes: r.bytes})
		union := make(map[string]bool, len(l.rels)+len(r.rels))
		for k := range l.rels {
			union[k] = true
		}
		for k := range r.rels {
			union[k] = true
		}
		card := l.card
		if r.card < card {
			card = r.card
		}
		merged := mergeOperand{rels: union, card: card, bytes: l.bytes + r.bytes}
		ops = append(ops[:bj], ops[bj+1:]...)
		ops = append(ops[:bi], ops[bi+1:]...)
		ops = append(ops, merged)
	}
	return steps
}
