package core

import (
	"fmt"

	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/relation"
)

// Naive evaluates the query by in-memory backtracking nested-loop join
// — no MapReduce, no partitioning. It is the correctness oracle every
// planner (ours and the baselines) is tested against, and doubles as
// the executor for Table 2/3's exact result selectivities.
func Naive(q *query.Query, db *DB) (*relation.Relation, error) {
	order, err := OrderRelations(q.Conditions)
	if err != nil {
		return nil, err
	}
	if len(order) != len(q.Relations) {
		return nil, fmt.Errorf("core: conditions cover %d of %d relations", len(order), len(q.Relations))
	}
	rels := make([]*relation.Relation, len(order))
	for i, name := range order {
		r, err := db.Relation(name)
		if err != nil {
			return nil, err
		}
		rels[i] = r
	}
	bound, err := bindConditions(q.Conditions, rels)
	if err != nil {
		return nil, err
	}
	m := len(rels)
	checksAt := make([][]boundCond, m)
	for _, bc := range bound {
		checksAt[bc.hi] = append(checksAt[bc.hi], bc)
	}
	out := relation.New(q.Name, prefixedSchema(rels))
	partial := make([]relation.Tuple, m)
	var rec func(j int)
	rec = func(j int) {
		if j == m {
			row := make(relation.Tuple, 0, totalArity(rels))
			for _, t := range partial {
				row = append(row, t...)
			}
			out.Tuples = append(out.Tuples, row)
			return
		}
		for _, t := range rels[j].Tuples {
			ok := true
			for _, bc := range checksAt[j] {
				lv := partial[bc.lo][bc.loCol].Add(bc.loOff)
				rv := t[bc.hiCol].Add(bc.hiOff)
				if !bc.op.Eval(relation.Compare(lv, rv)) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			partial[j] = t
			rec(j + 1)
		}
	}
	if m > 0 && allNonEmpty(rels) {
		rec(0)
	}
	return out, nil
}

func allNonEmpty(rels []*relation.Relation) bool {
	for _, r := range rels {
		if r.Cardinality() == 0 {
			return false
		}
	}
	return true
}

// CanonicalizeResult reorders a join output's columns into ascending
// column-name order so results computed with different relation orders
// compare equal. Returns a new relation.
func CanonicalizeResult(r *relation.Relation) *relation.Relation {
	n := r.Schema.Len()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = r.Schema.Column(i).Name
	}
	sortIdxByName(idx, names)
	cols := make([]relation.Column, n)
	for i, j := range idx {
		cols[i] = r.Schema.Column(j)
	}
	out := relation.New(r.Name, relation.MustSchema(cols...))
	out.VolumeMultiplier = r.VolumeMultiplier
	out.Tuples = make([]relation.Tuple, len(r.Tuples))
	for ti, t := range r.Tuples {
		nt := make(relation.Tuple, n)
		for i, j := range idx {
			nt[i] = t[j]
		}
		out.Tuples[ti] = nt
	}
	return out
}

func sortIdxByName(idx []int, names []string) {
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && names[idx[j]] < names[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}

// ExactQuerySelectivity computes |result| / Π|R_i| by running Naive —
// the "Result Sel." column of Tables 2 and 3.
func ExactQuerySelectivity(q *query.Query, db *DB) (float64, error) {
	res, err := Naive(q, db)
	if err != nil {
		return 0, err
	}
	denom := 1.0
	for _, name := range q.Relations {
		r, err := db.Relation(name)
		if err != nil {
			return 0, err
		}
		if r.Cardinality() == 0 {
			return 0, nil
		}
		denom *= float64(r.Cardinality())
	}
	return float64(res.Cardinality()) / denom, nil
}

// InequalityFuncs lists the distinct non-equality operators a query
// uses (the "Inequality Func." column of Tables 2 and 3).
func InequalityFuncs(q *query.Query) []predicate.Op {
	seen := map[predicate.Op]bool{}
	var out []predicate.Op
	for _, c := range q.Conditions {
		if c.Op != predicate.EQ && !seen[c.Op] {
			seen[c.Op] = true
			out = append(out, c.Op)
		}
	}
	return out
}
