package core

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
)

// TestCatalogVersionChanges proves the plan-cache key component moves
// exactly when it must: identical construction gives identical
// versions, while re-analyzing (any seed), reloading with different
// content, or changing schema all produce new versions.
func TestCatalogVersionChanges(t *testing.T) {
	build := func(seed int64, n int) *DB {
		rng := rand.New(rand.NewSource(9))
		return newTestDB(t, randRelation("A", n, 12, rng), randRelation("B", 40, 12, rng))
	}
	db1 := build(1, 50)
	db2 := build(1, 50)
	if db1.CatalogVersion() != db2.CatalogVersion() {
		t.Error("identical databases disagree on CatalogVersion")
	}
	if db1.CatalogVersion() == 0 {
		t.Error("CatalogVersion is zero after NewDB")
	}

	// Analyze re-run: version must bump even with identical statistics.
	v0 := db1.CatalogVersion()
	fp0 := db1.Catalog.Fingerprint()
	db1.Analyze(500, 1)
	if db1.CatalogVersion() == v0 {
		t.Error("Analyze re-run kept the old CatalogVersion")
	}
	if db1.Catalog.Fingerprint() != fp0 {
		t.Error("identical re-analysis changed the statistics fingerprint")
	}

	// Different sampling parameters: the fingerprint itself moves (a
	// sub-cardinality sample makes the retained rows seed-dependent).
	db1.Analyze(20, 2)
	if db1.Catalog.Fingerprint() == fp0 {
		t.Error("different sampling parameters left the fingerprint unchanged")
	}

	// Reloaded relation with different content: different version from
	// the start.
	db3 := build(1, 60)
	if db3.CatalogVersion() == db2.CatalogVersion() {
		t.Error("different relation content has equal CatalogVersion")
	}
}

// TestCatalogFingerprintSensitivity exercises the fingerprint directly
// on hand-built catalogs: equal content hashes equal; cardinality,
// hot-key and schema deltas all perturb it.
func TestCatalogFingerprintSensitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := randRelation("R", 30, 10, rng)
	base := func() *relation.Catalog {
		return relation.NewCatalog([]*relation.Relation{r}, 100, rand.New(rand.NewSource(5)))
	}
	c1, c2 := base(), base()
	if c1.Fingerprint() != c2.Fingerprint() {
		t.Error("identical catalogs disagree")
	}
	c2.Tables["R"].Cardinality++
	if c1.Fingerprint() == c2.Fingerprint() {
		t.Error("cardinality change not reflected")
	}
	c3 := base()
	c3.Tables["R"].HotKeys = map[string][]relation.HotKey{
		"a": {{Value: relation.Int(7), Count: 10, Frac: 0.3}},
	}
	if c1.Fingerprint() == c3.Fingerprint() {
		t.Error("hot-key change not reflected")
	}
	c4 := base()
	c4.Tables["S"] = c4.Tables["R"]
	if c1.Fingerprint() == c4.Fingerprint() {
		t.Error("added table not reflected")
	}
}

// TestDBViewIsolation: a View applies aliases without touching the
// shared DB, shares the base catalog version, and resolves relations
// like Alias would have.
func TestDBViewIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	db := newTestDB(t, randRelation("A", 30, 10, rng))
	before := len(db.Catalog.Tables)

	v, err := db.View(map[string]string{"t1": "A", "t2": "A", "A": "A"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Relation("t1"); err != nil {
		t.Fatal(err)
	}
	if v.BaseName("t2") != "A" {
		t.Errorf("BaseName(t2) = %q, want A", v.BaseName("t2"))
	}
	if v.CatalogVersion() != db.CatalogVersion() {
		t.Error("view changed the catalog version")
	}
	if len(db.Catalog.Tables) != before {
		t.Error("View mutated the shared catalog")
	}
	if _, err := db.Relation("t1"); err == nil {
		t.Error("View leaked an alias into the shared DB")
	}
	if _, err := db.View(map[string]string{"x": "missing"}); err == nil {
		t.Error("View accepted an alias to a missing relation")
	}
	if _, err := db.View(map[string]string{"missing": "missing"}); err == nil {
		t.Error("View accepted an unknown self-named relation")
	}
}
