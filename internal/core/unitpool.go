package core

import (
	"sync"

	"repro/internal/obs"
)

// UnitPool arbitrates the K_P processing units job dispatches run
// under. The executor acquires a job's whole unit allotment before
// starting it and releases it on completion, so the units in flight
// never exceed the pool's capacity.
//
// A plan-private pool (the default when Planner.Pool is nil) scopes
// the K_P budget to one plan, reproducing the historical semaphore
// bit-for-bit. A SharedUnitPool spans plans: a resident service hands
// the same pool to every concurrent query so their combined holdings
// respect one machine-wide K_P, and WithBudget further caps a single
// query's share.
//
// The executor's dispatch loop is all-or-nothing and non-blocking: it
// calls TryAcquire once per ready job and never holds a partial
// allotment while waiting, so pools cannot deadlock against each
// other. Freed exists because a shared pool's capacity can be
// returned by a *different* plan's completion: the executor fetches
// the channel before a dispatch scan and waits on it when nothing
// could start, guaranteeing a release between the fetch and the wait
// is never missed.
type UnitPool interface {
	// Capacity is the total unit count; dispatch clamps a job's
	// allotment to it so every job is eventually admissible.
	Capacity() int
	// TryAcquire takes n units if (and only if) they are all free.
	TryAcquire(n int) bool
	// Release returns n previously acquired units.
	Release(n int)
	// Freed returns a channel closed after the next Release, or nil
	// when external releases cannot occur (plan-private pools): the
	// executor then waits only on its own jobs.
	Freed() <-chan struct{}
}

// privatePool is the plan-scoped default: plain integer accounting,
// touched only by the dispatch goroutine. Its capacity can only free
// when one of the plan's own jobs completes, which wakes the dispatch
// loop through the done channel, so Freed is nil.
type privatePool struct{ capacity, free int }

func newPrivatePool(capacity int) *privatePool {
	return &privatePool{capacity: capacity, free: capacity}
}

func (p *privatePool) Capacity() int { return p.capacity }

func (p *privatePool) TryAcquire(n int) bool {
	if n > p.free {
		return false
	}
	p.free -= n
	return true
}

func (p *privatePool) Release(n int)          { p.free += n }
func (p *privatePool) Freed() <-chan struct{} { return nil }

// SharedUnitPool is a cross-plan K_P semaphore: every concurrent
// query's executor acquires from the same instance, so two plans on a
// K_P-unit server never hold more than K_P units combined. Safe for
// concurrent use.
type SharedUnitPool struct {
	mu       sync.Mutex
	capacity int
	free     int
	gen      chan struct{}

	// inuse observes the held-unit count after every acquire; its Max
	// is the high-water mark of combined holdings across all plans
	// (asserted ≤ capacity by the server tests).
	inuse    *obs.Histogram
	acquires *obs.Counter
}

// NewSharedUnitPool builds a pool of capacity units. The optional Obs
// records "core.pool.inuse" (histogram of held units after each
// acquire) and "core.pool.acquires" into its metrics registry.
func NewSharedUnitPool(capacity int, o *obs.Obs) *SharedUnitPool {
	if capacity < 1 {
		capacity = 1
	}
	return &SharedUnitPool{
		capacity: capacity,
		free:     capacity,
		gen:      make(chan struct{}),
		inuse:    o.Histogram("core.pool.inuse"),
		acquires: o.Counter("core.pool.acquires"),
	}
}

// Capacity returns the pool's total unit count.
func (p *SharedUnitPool) Capacity() int { return p.capacity }

// TryAcquire takes n units when all are free right now.
func (p *SharedUnitPool) TryAcquire(n int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n > p.free {
		return false
	}
	p.free -= n
	p.acquires.Add(1)
	p.inuse.Observe(int64(p.capacity - p.free))
	return true
}

// Release returns n units and wakes every waiter (the generation
// channel closes; the next Freed call hands out a fresh one).
func (p *SharedUnitPool) Release(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free += n
	if p.free > p.capacity {
		p.free = p.capacity
	}
	close(p.gen)
	p.gen = make(chan struct{})
}

// Freed returns the current generation channel; it closes on the next
// Release by any holder.
func (p *SharedUnitPool) Freed() <-chan struct{} {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gen
}

// InUse reports the units currently held.
func (p *SharedUnitPool) InUse() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.capacity - p.free
}

// budgetPool caps one query's concurrent holdings of a parent pool:
// acquisitions draw from both the local budget and the parent, so the
// query never holds more than budget units while the parent still
// bounds the machine-wide total.
type budgetPool struct {
	parent UnitPool

	mu   sync.Mutex
	free int
	cap  int
}

// WithBudget wraps pool so at most budget units are held through the
// returned view at any moment. A budget ≥ the parent capacity (or
// < 1) returns the parent unchanged.
func WithBudget(pool UnitPool, budget int) UnitPool {
	if budget < 1 || budget >= pool.Capacity() {
		return pool
	}
	return &budgetPool{parent: pool, free: budget, cap: budget}
}

func (b *budgetPool) Capacity() int {
	if pc := b.parent.Capacity(); pc < b.cap {
		return pc
	}
	return b.cap
}

func (b *budgetPool) TryAcquire(n int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n > b.free {
		return false
	}
	if !b.parent.TryAcquire(n) {
		return false
	}
	b.free -= n
	return true
}

func (b *budgetPool) Release(n int) {
	b.mu.Lock()
	b.free += n
	if b.free > b.cap {
		b.free = b.cap
	}
	b.mu.Unlock()
	b.parent.Release(n)
}

func (b *budgetPool) Freed() <-chan struct{} { return b.parent.Freed() }
