package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/mr"
	"repro/internal/predicate"
	"repro/internal/query"
)

// TestReportModeledVsMeasured asserts that an executed plan carries
// both time axes — the modeled Makespan (simulated cluster seconds)
// and the measured Wall (real time on this machine), per job and in
// total — and that Report keeps them explicitly apart in its output.
func TestReportModeledVsMeasured(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a := randRelation("A", 60, 16, rng)
	b := randRelation("B", 50, 16, rng)
	db := newTestDB(t, a, b)
	q := query.MustNew("rep", []string{"A", "B"}, []predicate.Condition{
		predicate.C("A", "a", predicate.LT, "B", "a"),
	})
	pl := testPlanner(8)
	plan, err := pl.Plan(q, db)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pl.Execute(plan, db)
	if err != nil {
		t.Fatal(err)
	}

	// Both axes populated, at every level.
	if res.Makespan <= 0 {
		t.Errorf("modeled Makespan not populated: %v", res.Makespan)
	}
	if res.Wall <= 0 {
		t.Errorf("measured Wall not populated: %v", res.Wall)
	}
	for name, m := range res.JobMetrics {
		if m.Sim.Total <= 0 {
			t.Errorf("job %s: modeled Sim.Total not populated: %v", name, m.Sim.Total)
		}
		if m.Wall.Total <= 0 {
			t.Errorf("job %s: measured Wall.Total not populated: %v", name, m.Wall.Total)
		}
		if m.Wall.Map <= 0 || m.Wall.Reduce <= 0 {
			t.Errorf("job %s: phase walls not populated: %+v", name, m.Wall)
		}
	}

	rep := res.Report()
	// The two time axes must be labelled apart, never as one number.
	if !strings.Contains(rep, "MODELED") {
		t.Errorf("report does not mark the modeled makespan:\n%s", rep)
	}
	if !strings.Contains(rep, "MEASURED") {
		t.Errorf("report does not mark the measured wall time:\n%s", rep)
	}
	for _, col := range []string{"plan kR", "ran kR", "model(s)", "wall", "shuffle", "balance"} {
		if !strings.Contains(rep, col) {
			t.Errorf("report lacks column %q:\n%s", col, rep)
		}
	}
	for _, pj := range plan.Jobs {
		if !strings.Contains(rep, pj.Name) {
			t.Errorf("report lacks job %s:\n%s", pj.Name, rep)
		}
	}
}

// TestReportWithoutPlan asserts the degraded path: a hand-assembled
// result (no retained plan) still renders, with measured columns only.
func TestReportWithoutPlan(t *testing.T) {
	res := &ExecResult{
		Makespan:     12.5,
		ShuffleBytes: 1 << 20,
		JobMetrics: map[string]mr.Metrics{
			"solo": {ReduceTasks: 4},
		},
	}
	rep := res.Report()
	if !strings.Contains(rep, "solo") || !strings.Contains(rep, "MODELED") {
		t.Errorf("degraded report malformed:\n%s", rep)
	}
}
