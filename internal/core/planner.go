package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/cost"
	"repro/internal/joinpath"
	"repro/internal/mr"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/schedule"
	"repro/internal/setcover"
	"repro/internal/skew"
)

// PlanOptions tune the planner.
type PlanOptions struct {
	// Lambda is the Δ(k_R) mixing coefficient of Eq. 10 (default 0.4,
	// the paper's calibrated value).
	Lambda float64
	// MaxPathLen caps candidate path lengths in G'_JP (0 = all).
	MaxPathLen int
	// MaxCells bounds the Hilbert grid (0 = MaxCellsDefault).
	MaxCells int
	// ExhaustiveCover additionally evaluates the exhaustive minimum-
	// weight cover when G'_JP is small, picking whichever cover
	// schedules faster.
	ExhaustiveCover bool
	// ForceSingleJob restricts the cover to the single candidate
	// evaluating every condition in one MapReduce job (used by the
	// single-vs-multi ablation; errors if no such candidate survives).
	ForceSingleJob bool
	// SkewThreshold triggers hot-key handling: a join-key value is
	// treated as hot when its estimated tuple fraction times the job's
	// reducer count exceeds it (its load passes Threshold × the mean
	// reducer load). <= 0 uses skew.DefaultThreshold.
	SkewThreshold float64
	// DisableSkew turns off heavy-hitter-aware costing and routing,
	// reverting to the constant sigma fudge factors and plain hash
	// partitioning (the pre-skew baseline, kept for ablations).
	DisableSkew bool
	// DisableReplan turns off the runtime feedback loop: jobs that
	// consume produced intermediates keep the reducer count and skew
	// handling the static plan chose instead of re-deriving them from
	// measured statistics at dispatch time (see replan.go; kept for
	// the static-vs-feedback ablation).
	DisableReplan bool
	// Checkpoint, when set, persists every completed cascade
	// intermediate under (query name, job name) so a failed plan can be
	// resumed (see Checkpointer). Save failures degrade gracefully: the
	// run continues un-checkpointed and counts the error under
	// core/checkpoint_errors.
	Checkpoint Checkpointer
	// ResumeFrom names the plan key (normally the query name of the
	// failed run) whose checkpoints ExecuteContext should restore
	// before dispatching: intermediates found in Checkpoint are not
	// re-executed — their jobs complete instantly with synthetic zero
	// metrics — and only un-checkpointed jobs run. Empty disables
	// restore. Restored jobs bypass the feedback loop (there are no
	// measured statistics), so downstream replanning falls back to the
	// static plan.
	ResumeFrom string
}

// skewThreshold resolves the effective hot-key trigger.
func (pl *Planner) skewThreshold() float64 {
	if pl.Opts.SkewThreshold > 0 {
		return pl.Opts.SkewThreshold
	}
	return skew.DefaultThreshold
}

// Planner maps an N-join query onto a scheduled set of MapReduce jobs
// (the paper's T_opt and execution plan P).
type Planner struct {
	Config mr.Config
	Params cost.Params
	KP     int // available processing units
	Opts   PlanOptions

	// Pool arbitrates the processing units at execution time. Nil (the
	// default) gives the plan a private K_P-unit pool — the one-shot
	// batch behavior. A server installs a SharedUnitPool (optionally
	// budget-capped per query via WithBudget) so concurrent plans
	// contend for one machine-wide K_P instead of each assuming it owns
	// the cluster.
	Pool UnitPool
}

// NewPlanner builds a planner with kP processing units.
func NewPlanner(cfg mr.Config, kp int) *Planner {
	return &Planner{
		Config: cfg,
		Params: cost.FromConfig(cfg),
		KP:     kp,
		Opts:   PlanOptions{Lambda: 0.4, ExhaustiveCover: true},
	}
}

// PlannedJob is one selected MRJ(e′).
type PlannedJob struct {
	Name     string
	EdgeIDs  []int
	Conds    predicate.Conjunction
	RelOrder []string
	Kind     JobKind
	Reducers int // k_R to execute with (allotment-capped argmin of T(k))
	Units    int // scheduler allotment
	EstTime  float64
	Profile  []float64 // T(k) for k = 1..KP

	// SigmaFrac is the reducer-input variation coefficient the cost
	// model charged this job (σ as a fraction of the mean reducer
	// load), resolved at the final reducer count. Report prints it next
	// to the measured balance ratio.
	SigmaFrac float64

	// Skew is the hot-key handling chosen for this job from the
	// catalog's heavy-hitter reports; nil when no key is hot enough
	// (or skew handling is disabled). The physical operators derive
	// their split layout from it at build time.
	Skew *skew.JobPlan
}

// Plan is the optimizer's output: the chosen job set with its schedule.
type Plan struct {
	Query             *query.Query
	Jobs              []PlannedJob
	EstimatedMakespan float64
	MergeEstimate     float64 // estimated total merge time appended after jobs
	CandidateEdges    int     // |G'_JP.E|
	PrunedCandidates  int

	// Schedule is the executable K_P placement of the jobs: dispatch
	// order, unit assignments, waves and dependencies. Execute drives
	// it for real; a nil schedule (hand-built plans) falls back to
	// plan-order dispatch.
	Schedule *schedule.Plan
}

// String renders a compact plan description.
func (p *Plan) String() string {
	s := fmt.Sprintf("plan for %s: %d jobs, est %.1fs", p.Query.Name, len(p.Jobs), p.EstimatedMakespan)
	for _, j := range p.Jobs {
		s += fmt.Sprintf("\n  %s [%s] conds=%v kR=%d units=%d est=%.1fs",
			j.Name, j.Kind, j.EdgeIDs, j.Reducers, j.Units, j.EstTime)
	}
	return s
}

// candidate carries the costing of one G'_JP edge during planning.
type candidate struct {
	edge     joinpath.PathEdge
	conds    predicate.Conjunction
	relOrder []string
	kind     JobKind
	profile  []float64
	bestK    int
	bestT    float64
	outBytes int64
	estRows  float64
}

// Plan runs the full §5 pipeline: construct G'_JP with the cost model,
// select a sufficient T by weighted set cover, and schedule it on K_P
// units.
func (pl *Planner) Plan(q *query.Query, db *DB) (*Plan, error) {
	if pl.KP < 1 {
		return nil, fmt.Errorf("core: planner needs KP >= 1")
	}
	g := q.JoinGraph()
	cands := make(map[string]*candidate)
	costFn := func(edgeIDs []int) (float64, int, error) {
		c, err := pl.costEdge(q, g, db, edgeIDs)
		if err != nil {
			return 0, 0, err
		}
		cands[keyOfIDs(edgeIDs)] = c
		return c.bestT, c.bestK, nil
	}
	// Lemma 2 is disabled: with the mixed operator family (hash-equi,
	// share-grid, Hilbert cube) a superset candidate can be cheaper
	// than its pruned subset, which breaks the lemma's monotonicity
	// assumption (see joinpath.Options.DisableLemma2).
	jp, err := joinpath.Build(g, costFn, joinpath.Options{MaxPathLen: pl.Opts.MaxPathLen, DisableLemma2: true})
	if err != nil {
		return nil, err
	}

	// Weighted set cover over the surviving candidates.
	universe := q.ConditionIDs()
	sets := make([]setcover.Set, len(jp.Edges))
	for i, e := range jp.Edges {
		sets[i] = setcover.Set{ID: i, Elems: e.EdgeIDs, Weight: e.Weight}
	}
	var covers [][]int
	if pl.Opts.ForceSingleJob {
		full := joinpath.IDsToMask(universe)
		found := -1
		for i, e := range jp.Edges {
			if joinpath.IDsToMask(e.EdgeIDs) == full {
				found = i
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("core: no single-job candidate covers all conditions of %s", q.Name)
		}
		covers = append(covers, []int{found})
	} else {
		greedyIDs, err := setcover.Greedy(universe, sets)
		if err != nil {
			return nil, err
		}
		covers = append(covers, greedyIDs)
		if pl.Opts.ExhaustiveCover && len(sets) <= 16 {
			if exIDs, _, err := setcover.Exhaustive(universe, sets, 16); err == nil {
				covers = append(covers, exIDs)
			}
		}
	}

	var best *Plan
	for _, cover := range covers {
		plan, err := pl.scheduleCover(q, jp, cands, cover, db)
		if err != nil {
			return nil, err
		}
		if best == nil || plan.EstimatedMakespan < best.EstimatedMakespan {
			best = plan
		}
	}
	best.CandidateEdges = len(jp.Edges)
	best.PrunedCandidates = jp.PrunedCount
	return best, nil
}

func keyOfIDs(ids []int) string {
	sorted := append([]int(nil), ids...)
	sort.Ints(sorted)
	return fmt.Sprint(sorted)
}

// costEdge profiles one candidate edge: T(k) for k = 1..KP using the
// Eq. 1–6 model with duplication-aware α for Hilbert jobs.
func (pl *Planner) costEdge(q *query.Query, g *query.JoinGraph, db *DB, edgeIDs []int) (*candidate, error) {
	conds, err := g.SubgraphConditions(edgeIDs)
	if err != nil {
		return nil, err
	}
	relOrder, err := OrderRelations(conds)
	if err != nil {
		return nil, err
	}
	m := len(relOrder)
	kind := KindHilbertTheta
	if AllEquiSamePair(conds) {
		kind = KindHashEqui
	} else if ShareGridApplicable(conds) {
		kind = KindShareGrid
	}
	orderedRels := make([]*relation.Relation, m)
	relByName := make(map[string]*relation.Relation, m)
	for i, name := range relOrder {
		r, err := db.Relation(name)
		if err != nil {
			return nil, err
		}
		orderedRels[i] = r
		relByName[name] = r
	}
	inputBytes, mapTasks, outBytes, estRows, err := pl.sizeJob(db.Catalog, relOrder, conds,
		func(name string) float64 { return relByName[name].VolumeMultiplier })
	if err != nil {
		return nil, err
	}
	// Reducer skew: the Hilbert cube balances by construction
	// (Theorem 2: tuples route by salted-hash global IDs, immune to
	// value skew), while hash and share-grid partitioning follow the
	// key distribution. When the catalog carries a heavy-hitter report
	// the constant fudge factors are replaced by an estimate derived
	// from the hottest detected key (capped at the threshold beyond
	// which the runtime splits the key across sub-reducers); without a
	// report the historical constants apply.
	pmax, skewKnown := 0.0, false
	if !pl.Opts.DisableSkew && kind != KindHilbertTheta {
		pmax, skewKnown = maxJoinHotFrac(db.Catalog, conds, kind)
	}
	profile, bestK, bestT, err := pl.sweepReducers(costSweepInputs{
		kind:       kind,
		inputBytes: inputBytes,
		mapTasks:   mapTasks,
		outBytes:   outBytes,
		numRels:    m,
		pmax:       pmax,
		skewKnown:  skewKnown,
		conds:      conds,
		rels:       orderedRels,
	}, pl.KP)
	if err != nil {
		return nil, err
	}
	return &candidate{
		conds:    conds,
		relOrder: relOrder,
		kind:     kind,
		profile:  profile,
		bestK:    bestK,
		bestT:    bestT,
		outBytes: outBytes,
		estRows:  estRows,
	}, nil
}

// sizeJob accumulates the cost model's input quantities for a job
// over the given catalog: total modeled input, map task count, the
// selectivity-estimated output volume (after mirroring the engine's
// output cap, so β and the merge estimates see the volumes execution
// will produce), and the estimated result rows. multOf resolves a
// relation's VolumeMultiplier — from base relations at plan time,
// from produced intermediates at replan time — so static costing and
// runtime re-planning share one size model.
func (pl *Planner) sizeJob(cat *relation.Catalog, relOrder []string, conds predicate.Conjunction, multOf func(string) float64) (inputBytes int64, mapTasks int, outBytes int64, estRows float64, err error) {
	blockBytes := int64(pl.Config.BlockSizeMB) * 1e6
	var rowBytes float64
	cardProd := 1.0
	maxMult := 1.0
	for _, name := range relOrder {
		ts, err := cat.Stats(name)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		inputBytes += ts.ModeledSize
		mt := int((ts.ModeledSize + blockBytes - 1) / blockBytes)
		if mt < 1 {
			mt = 1
		}
		mapTasks += mt
		rowBytes += ts.AvgTuple
		cardProd *= math.Max(1, float64(ts.Cardinality))
		if m := multOf(name); m > maxMult {
			maxMult = m
		}
	}
	sel, err := predicate.EstimateConjunction(conds, cat)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	estRows = cardProd * sel
	outBytes = int64(estRows * rowBytes * maxMult)
	if ratio := pl.Config.OutputCapRatio; ratio > 0 {
		if cap := int64(ratio * float64(inputBytes)); outBytes > cap {
			outBytes = cap
		}
	}
	return inputBytes, mapTasks, outBytes, estRows, nil
}

// costSweepInputs carries the size quantities the Eq. 1–6 reducer
// sweep consumes — produced from catalog statistics by costEdge and
// from measured intermediate statistics by the runtime replan step,
// so static and feedback planning share one cost path.
type costSweepInputs struct {
	kind       JobKind
	inputBytes int64
	mapTasks   int
	outBytes   int64
	numRels    int     // m, for the Hilbert duplication exponent
	pmax       float64 // hottest join-key fraction, when measured
	skewKnown  bool
	// Share-grid geometry hooks; only consulted for KindShareGrid.
	conds predicate.Conjunction
	rels  []*relation.Relation
}

// sweepReducers evaluates the T(k) profile for k = 1..maxK and
// returns it with the argmin.
func (pl *Planner) sweepReducers(in costSweepInputs, maxK int) ([]float64, int, float64, error) {
	profile := make([]float64, maxK)
	bestK, bestT := 1, math.Inf(1)
	for k := 1; k <= maxK; k++ {
		var shuffle float64
		effectiveN := k
		switch in.kind {
		case KindHashEqui:
			shuffle = float64(in.inputBytes)
		case KindShareGrid:
			rep, err := ReplicationFactor(in.conds, in.rels, k)
			if err != nil {
				return nil, 0, 0, err
			}
			shuffle = float64(in.inputBytes) * rep
			grid, err := ShareGridSize(in.conds, in.rels, k)
			if err != nil {
				return nil, 0, 0, err
			}
			effectiveN = grid
		default:
			// Hilbert duplication: each tuple is copied ~k^((m-1)/m)
			// times (Eq. 9's fair-duplication factor).
			dup := math.Pow(float64(k), float64(in.numRels-1)/float64(in.numRels))
			shuffle = float64(in.inputBytes) * dup
		}
		alpha := 1.0
		if in.inputBytes > 0 {
			alpha = shuffle / float64(in.inputBytes)
		}
		beta := 0.0
		if shuffle > 0 {
			beta = float64(in.outBytes) / shuffle
		}
		prof := cost.JobProfile{
			InputBytes: in.inputBytes,
			MapTasks:   in.mapTasks,
			// k allotted units run map AND reduce tasks (§3.1), so the
			// map wave width shrinks with the allotment too.
			MapSlots: minInt(pl.Config.MapSlots, k),
			Alpha:    alpha,
			Beta:     beta,
			Sigma:    pl.sigmaFracFor(in.kind, effectiveN, in.pmax, in.skewKnown) * shuffle / float64(effectiveN),
		}
		est, err := pl.Params.Estimate(prof, effectiveN)
		if err != nil {
			return nil, 0, 0, err
		}
		profile[k-1] = est.T
		if est.T < bestT {
			bestT, bestK = est.T, k
		}
	}
	return profile, bestK, bestT, nil
}

// sigmaFracFor resolves the reducer-input variation coefficient: the
// measured-skew estimate when a heavy-hitter report exists, else the
// historical per-kind constants.
func (pl *Planner) sigmaFracFor(kind JobKind, parallelism int, pmax float64, known bool) float64 {
	switch kind {
	case KindHashEqui:
		if known {
			return skew.SigmaFrac(pmax, parallelism, pl.skewThreshold())
		}
		return 0.3 // key-value hash distribution skews
	case KindShareGrid:
		if known {
			return skew.SigmaFrac(pmax, parallelism, pl.skewThreshold())
		}
		return 0.15 // attribute-class hashing, moderate skew
	default:
		return 0.08
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// maxJoinHotFrac scans the heavy-hitter reports of the conjunction's
// equality endpoints and returns the hottest detected key fraction.
// known reports whether any endpoint carried a (possibly empty)
// report: an analyzed-but-uniform column legitimately yields pmax 0,
// which SigmaFrac maps to a small residual-variance floor, whereas an
// unanalyzed catalog keeps the pessimistic constants.
func maxJoinHotFrac(cat *relation.Catalog, conds predicate.Conjunction, kind JobKind) (pmax float64, known bool) {
	if cat == nil {
		return 0, false
	}
	for _, c := range conds {
		if !c.Op.IsEquality() {
			continue
		}
		if kind == KindShareGrid && (c.LeftOffset != 0 || c.RightOffset != 0) {
			continue // only zero-offset equalities form grid dimensions
		}
		for _, end := range [][2]string{{c.Left, c.LeftColumn}, {c.Right, c.RightColumn}} {
			ts, err := cat.Stats(end[0])
			if err != nil || ts.HotKeys == nil {
				continue
			}
			hks, ok := ts.HotKeys[end[1]]
			if !ok {
				continue
			}
			known = true
			if len(hks) > 0 && hks[0].Frac > pmax {
				pmax = hks[0].Frac
			}
		}
	}
	return pmax, known
}

// SkewPlanFor consults the catalog's heavy-hitter reports and returns
// the hot-key handling a job of this kind should run with, or nil when
// no join-key value is hot enough at the given reducer count (or the
// kind is skew-immune). Hash-equi jobs split single-column keys from
// the per-column reports and composite (multi-condition) keys from
// joint detection over the column set; share-grid jobs refine any
// grid dimension whose class columns carry hot keys.
func SkewPlanFor(cat *relation.Catalog, kind JobKind, conds predicate.Conjunction, reducers int, threshold float64) *skew.JobPlan {
	if cat == nil || reducers < 2 {
		return nil
	}
	if threshold <= 0 {
		threshold = skew.DefaultThreshold
	}
	switch kind {
	case KindHashEqui:
		if len(conds) != 1 {
			return compositeSkewPlan(cat, conds, reducers, threshold)
		}
	case KindShareGrid:
	default:
		return nil // the Hilbert cube routes by salted random IDs
	}
	plan := skew.NewJobPlan(threshold)
	hotEnough := false
	for _, c := range conds {
		if !c.Op.IsEquality() {
			continue
		}
		if kind == KindShareGrid && (c.LeftOffset != 0 || c.RightOffset != 0) {
			continue
		}
		for _, end := range [][2]string{{c.Left, c.LeftColumn}, {c.Right, c.RightColumn}} {
			ts, err := cat.Stats(end[0])
			if err != nil || len(ts.HotKeys[end[1]]) == 0 {
				continue
			}
			hks := ts.HotKeys[end[1]]
			plan.Add(end[0], end[1], hks)
			if hks[0].Frac*float64(reducers) > threshold {
				hotEnough = true
			}
		}
	}
	if !hotEnough {
		return nil
	}
	return plan
}

// compositeSkewPlan is SkewPlanFor's multi-condition hash-equi path:
// per SharesSkew, what overloads a reducer under a composite key is a
// hot value COMBINATION, which per-column reports cannot see (two
// individually near-uniform columns can still share one dominant
// pair). Each side's column vector — in condition order, the order
// the operator hashes them — runs joint heavy-hitter detection over
// the catalog's retained sample (exactly, when the sample holds the
// whole relation), and the resulting HotGroups are stored on the
// plan for BuildHashEquiJobSkew to derive splits from the composite
// key hash it already shuffles on.
func compositeSkewPlan(cat *relation.Catalog, conds predicate.Conjunction, reducers int, threshold float64) *skew.JobPlan {
	if !AllEquiSamePair(conds) {
		return nil
	}
	rels := conds.Relations()
	cols := make(map[string][]string, 2)
	for _, c := range conds {
		oc := c
		if oc.Left != rels[0] {
			oc = c.Reversed()
		}
		if oc.Left != rels[0] || oc.Right != rels[1] {
			return nil
		}
		cols[rels[0]] = append(cols[rels[0]], oc.LeftColumn)
		cols[rels[1]] = append(cols[rels[1]], oc.RightColumn)
	}
	plan := skew.NewJobPlan(threshold)
	hotEnough := false
	for _, rel := range rels {
		ts, err := cat.Stats(rel)
		if err != nil {
			continue
		}
		hot := skew.JointHotKeys(ts, nil, cols[rel], skew.DefaultOptions())
		if len(hot) == 0 {
			continue
		}
		plan.AddJoint(rel, cols[rel], hot)
		if hot[0].Frac*float64(reducers) > threshold {
			hotEnough = true
		}
	}
	if !hotEnough {
		return nil
	}
	return plan
}

// scheduleCover turns one sufficient cover into a scheduled plan.
func (pl *Planner) scheduleCover(q *query.Query, jp *joinpath.Graph, cands map[string]*candidate, cover []int, db *DB) (*Plan, error) {
	var jobs []PlannedJob
	var tasks []schedule.Task
	var mergeOps []mergeOperand
	for i, setID := range cover {
		e := jp.Edges[setID]
		c, ok := cands[keyOfIDs(e.EdgeIDs)]
		if !ok {
			return nil, fmt.Errorf("core: no costing cached for edge %v", e.EdgeIDs)
		}
		name := fmt.Sprintf("%s-j%d", q.Name, i+1)
		jobs = append(jobs, PlannedJob{
			Name:     name,
			EdgeIDs:  append([]int(nil), e.EdgeIDs...),
			Conds:    c.conds,
			RelOrder: append([]string(nil), c.relOrder...),
			Kind:     c.kind,
			Reducers: c.bestK,
			EstTime:  c.bestT,
			Profile:  append([]float64(nil), c.profile...),
		})
		tasks = append(tasks, schedule.Task{ID: name, Profile: c.profile})
		rels := make(map[string]bool, len(c.relOrder))
		for _, r := range c.relOrder {
			rels[r] = true
		}
		card := int(math.Min(c.estRows, float64(math.MaxInt32)))
		mergeOps = append(mergeOps, mergeOperand{rels: rels, card: card, bytes: c.outBytes})
	}
	// Estimate the merge phase over the same pair-selection tree the
	// executor's MergeAll will walk, rather than a plan-order chain.
	var mergeEst float64
	for _, st := range estimateMergeSteps(mergeOps) {
		mergeEst += pl.Params.MergeCost(st.LeftBytes, st.RightBytes)
	}
	sched, err := schedule.Schedule(tasks, pl.KP)
	if err != nil {
		return nil, err
	}
	for i := range jobs {
		p, ok := sched.Placement(jobs[i].Name)
		if !ok {
			return nil, fmt.Errorf("core: schedule lost job %s", jobs[i].Name)
		}
		jobs[i].Units = p.Units
		if jobs[i].Reducers > p.Units {
			jobs[i].Reducers = p.Units
		}
		jobs[i].EstTime = p.Finish - p.Start
	}
	// A lone job owns the whole cluster: granting it every unit widens
	// its map waves for free even when its reducer optimum is lower.
	if len(jobs) == 1 && jobs[0].Units < pl.KP {
		jobs[0].Units = pl.KP
	}
	// Share-grid jobs round their reducer grid down to a feasible share
	// product, so ask with the full allotment: the operator itself
	// derives the largest grid that fits, keeping reduce slots busy.
	for i := range jobs {
		if jobs[i].Kind == KindShareGrid {
			jobs[i].Reducers = jobs[i].Units
		}
	}
	// With the reducer counts final, decide per-job hot-key handling
	// from the catalog's heavy-hitter reports.
	if !pl.Opts.DisableSkew && db != nil {
		for i := range jobs {
			jobs[i].Skew = SkewPlanFor(db.Catalog, jobs[i].Kind, jobs[i].Conds, jobs[i].Reducers, pl.skewThreshold())
		}
	}
	// Record the σ fraction the cost model charged at the final reducer
	// count, so the execution report can print planned σ next to the
	// measured balance ratio.
	for i := range jobs {
		pmax, known := 0.0, false
		if !pl.Opts.DisableSkew && db != nil && jobs[i].Kind != KindHilbertTheta {
			pmax, known = maxJoinHotFrac(db.Catalog, jobs[i].Conds, jobs[i].Kind)
		}
		jobs[i].SigmaFrac = pl.sigmaFracFor(jobs[i].Kind, jobs[i].Reducers, pmax, known)
	}
	return &Plan{
		Query:             q,
		Jobs:              jobs,
		EstimatedMakespan: sched.Makespan + mergeEst,
		MergeEstimate:     mergeEst,
		Schedule:          sched,
	}, nil
}

func maxIntc(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Run is the one-call convenience: plan then execute.
func (pl *Planner) Run(q *query.Query, db *DB) (*Plan, *ExecResult, error) {
	return pl.RunContext(context.Background(), q, db)
}

// RunContext is Run under a caller context: cancellation propagates
// into the executor, and an obs.Obs attached to ctx traces the whole
// plan-and-execute pipeline.
func (pl *Planner) RunContext(ctx context.Context, q *query.Query, db *DB) (*Plan, *ExecResult, error) {
	plan, err := pl.Plan(q, db)
	if err != nil {
		return nil, nil, err
	}
	res, err := pl.ExecuteContext(ctx, plan, db)
	if err != nil {
		return plan, nil, err
	}
	return plan, res, nil
}

// CostEdgeForDebug exposes costEdge for diagnostic tools.
func (pl *Planner) CostEdgeForDebug(q *query.Query, g *query.JoinGraph, db *DB, edgeIDs []int) (float64, int, error) {
	c, err := pl.costEdge(q, g, db, edgeIDs)
	if err != nil {
		return 0, 0, err
	}
	return c.bestT, c.bestK, nil
}
