package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cost"
	"repro/internal/joinpath"
	"repro/internal/mr"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/schedule"
	"repro/internal/setcover"
	"repro/internal/skew"
)

// PlanOptions tune the planner.
type PlanOptions struct {
	// Lambda is the Δ(k_R) mixing coefficient of Eq. 10 (default 0.4,
	// the paper's calibrated value).
	Lambda float64
	// MaxPathLen caps candidate path lengths in G'_JP (0 = all).
	MaxPathLen int
	// MaxCells bounds the Hilbert grid (0 = MaxCellsDefault).
	MaxCells int
	// ExhaustiveCover additionally evaluates the exhaustive minimum-
	// weight cover when G'_JP is small, picking whichever cover
	// schedules faster.
	ExhaustiveCover bool
	// ForceSingleJob restricts the cover to the single candidate
	// evaluating every condition in one MapReduce job (used by the
	// single-vs-multi ablation; errors if no such candidate survives).
	ForceSingleJob bool
	// SkewThreshold triggers hot-key handling: a join-key value is
	// treated as hot when its estimated tuple fraction times the job's
	// reducer count exceeds it (its load passes Threshold × the mean
	// reducer load). <= 0 uses skew.DefaultThreshold.
	SkewThreshold float64
	// DisableSkew turns off heavy-hitter-aware costing and routing,
	// reverting to the constant sigma fudge factors and plain hash
	// partitioning (the pre-skew baseline, kept for ablations).
	DisableSkew bool
}

// skewThreshold resolves the effective hot-key trigger.
func (pl *Planner) skewThreshold() float64 {
	if pl.Opts.SkewThreshold > 0 {
		return pl.Opts.SkewThreshold
	}
	return skew.DefaultThreshold
}

// Planner maps an N-join query onto a scheduled set of MapReduce jobs
// (the paper's T_opt and execution plan P).
type Planner struct {
	Config mr.Config
	Params cost.Params
	KP     int // available processing units
	Opts   PlanOptions
}

// NewPlanner builds a planner with kP processing units.
func NewPlanner(cfg mr.Config, kp int) *Planner {
	return &Planner{
		Config: cfg,
		Params: cost.FromConfig(cfg),
		KP:     kp,
		Opts:   PlanOptions{Lambda: 0.4, ExhaustiveCover: true},
	}
}

// PlannedJob is one selected MRJ(e′).
type PlannedJob struct {
	Name     string
	EdgeIDs  []int
	Conds    predicate.Conjunction
	RelOrder []string
	Kind     JobKind
	Reducers int // k_R to execute with (allotment-capped argmin of T(k))
	Units    int // scheduler allotment
	EstTime  float64
	Profile  []float64 // T(k) for k = 1..KP

	// Skew is the hot-key handling chosen for this job from the
	// catalog's heavy-hitter reports; nil when no key is hot enough
	// (or skew handling is disabled). The physical operators derive
	// their split layout from it at build time.
	Skew *skew.JobPlan
}

// Plan is the optimizer's output: the chosen job set with its schedule.
type Plan struct {
	Query             *query.Query
	Jobs              []PlannedJob
	EstimatedMakespan float64
	MergeEstimate     float64 // estimated total merge time appended after jobs
	CandidateEdges    int     // |G'_JP.E|
	PrunedCandidates  int

	// Schedule is the executable K_P placement of the jobs: dispatch
	// order, unit assignments, waves and dependencies. Execute drives
	// it for real; a nil schedule (hand-built plans) falls back to
	// plan-order dispatch.
	Schedule *schedule.Plan
}

// String renders a compact plan description.
func (p *Plan) String() string {
	s := fmt.Sprintf("plan for %s: %d jobs, est %.1fs", p.Query.Name, len(p.Jobs), p.EstimatedMakespan)
	for _, j := range p.Jobs {
		s += fmt.Sprintf("\n  %s [%s] conds=%v kR=%d units=%d est=%.1fs",
			j.Name, j.Kind, j.EdgeIDs, j.Reducers, j.Units, j.EstTime)
	}
	return s
}

// candidate carries the costing of one G'_JP edge during planning.
type candidate struct {
	edge     joinpath.PathEdge
	conds    predicate.Conjunction
	relOrder []string
	kind     JobKind
	profile  []float64
	bestK    int
	bestT    float64
	outBytes int64
}

// Plan runs the full §5 pipeline: construct G'_JP with the cost model,
// select a sufficient T by weighted set cover, and schedule it on K_P
// units.
func (pl *Planner) Plan(q *query.Query, db *DB) (*Plan, error) {
	if pl.KP < 1 {
		return nil, fmt.Errorf("core: planner needs KP >= 1")
	}
	g := q.JoinGraph()
	cands := make(map[string]*candidate)
	costFn := func(edgeIDs []int) (float64, int, error) {
		c, err := pl.costEdge(q, g, db, edgeIDs)
		if err != nil {
			return 0, 0, err
		}
		cands[keyOfIDs(edgeIDs)] = c
		return c.bestT, c.bestK, nil
	}
	// Lemma 2 is disabled: with the mixed operator family (hash-equi,
	// share-grid, Hilbert cube) a superset candidate can be cheaper
	// than its pruned subset, which breaks the lemma's monotonicity
	// assumption (see joinpath.Options.DisableLemma2).
	jp, err := joinpath.Build(g, costFn, joinpath.Options{MaxPathLen: pl.Opts.MaxPathLen, DisableLemma2: true})
	if err != nil {
		return nil, err
	}

	// Weighted set cover over the surviving candidates.
	universe := q.ConditionIDs()
	sets := make([]setcover.Set, len(jp.Edges))
	for i, e := range jp.Edges {
		sets[i] = setcover.Set{ID: i, Elems: e.EdgeIDs, Weight: e.Weight}
	}
	var covers [][]int
	if pl.Opts.ForceSingleJob {
		full := joinpath.IDsToMask(universe)
		found := -1
		for i, e := range jp.Edges {
			if joinpath.IDsToMask(e.EdgeIDs) == full {
				found = i
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("core: no single-job candidate covers all conditions of %s", q.Name)
		}
		covers = append(covers, []int{found})
	} else {
		greedyIDs, err := setcover.Greedy(universe, sets)
		if err != nil {
			return nil, err
		}
		covers = append(covers, greedyIDs)
		if pl.Opts.ExhaustiveCover && len(sets) <= 16 {
			if exIDs, _, err := setcover.Exhaustive(universe, sets, 16); err == nil {
				covers = append(covers, exIDs)
			}
		}
	}

	var best *Plan
	for _, cover := range covers {
		plan, err := pl.scheduleCover(q, jp, cands, cover, db)
		if err != nil {
			return nil, err
		}
		if best == nil || plan.EstimatedMakespan < best.EstimatedMakespan {
			best = plan
		}
	}
	best.CandidateEdges = len(jp.Edges)
	best.PrunedCandidates = jp.PrunedCount
	return best, nil
}

func keyOfIDs(ids []int) string {
	sorted := append([]int(nil), ids...)
	sort.Ints(sorted)
	return fmt.Sprint(sorted)
}

// costEdge profiles one candidate edge: T(k) for k = 1..KP using the
// Eq. 1–6 model with duplication-aware α for Hilbert jobs.
func (pl *Planner) costEdge(q *query.Query, g *query.JoinGraph, db *DB, edgeIDs []int) (*candidate, error) {
	conds, err := g.SubgraphConditions(edgeIDs)
	if err != nil {
		return nil, err
	}
	relOrder, err := OrderRelations(conds)
	if err != nil {
		return nil, err
	}
	m := len(relOrder)
	kind := KindHilbertTheta
	if AllEquiSamePair(conds) {
		kind = KindHashEqui
	} else if ShareGridApplicable(conds) {
		kind = KindShareGrid
	}
	orderedRels := make([]*relation.Relation, m)
	for i, name := range relOrder {
		r, err := db.Relation(name)
		if err != nil {
			return nil, err
		}
		orderedRels[i] = r
	}
	var inputBytes int64
	var mapTasks int
	var rowBytes float64
	cardProd := 1.0
	maxMult := 1.0
	blockBytes := int64(pl.Config.BlockSizeMB) * 1e6
	for _, name := range relOrder {
		ts, err := db.Catalog.Stats(name)
		if err != nil {
			return nil, err
		}
		inputBytes += ts.ModeledSize
		mt := int((ts.ModeledSize + blockBytes - 1) / blockBytes)
		if mt < 1 {
			mt = 1
		}
		mapTasks += mt
		rowBytes += ts.AvgTuple
		cardProd *= math.Max(1, float64(ts.Cardinality))
		r, err := db.Relation(name)
		if err != nil {
			return nil, err
		}
		if r.VolumeMultiplier > maxMult {
			maxMult = r.VolumeMultiplier
		}
	}
	sel, err := predicate.EstimateConjunction(conds, db.Catalog)
	if err != nil {
		return nil, err
	}
	estRows := cardProd * sel
	outBytes := int64(estRows * rowBytes * maxMult)
	// Mirror the engine's output-volume cap so β and the merge-cost
	// estimates see the same volumes execution will produce.
	if ratio := pl.Config.OutputCapRatio; ratio > 0 {
		if cap := int64(ratio * float64(inputBytes)); outBytes > cap {
			outBytes = cap
		}
	}
	// Reducer skew: the Hilbert cube balances by construction
	// (Theorem 2: tuples route by salted-hash global IDs, immune to
	// value skew), while hash and share-grid partitioning follow the
	// key distribution. When the catalog carries a heavy-hitter report
	// the constant fudge factors are replaced by an estimate derived
	// from the hottest detected key (capped at the threshold beyond
	// which the runtime splits the key across sub-reducers); without a
	// report the historical constants apply.
	pmax, skewKnown := 0.0, false
	if !pl.Opts.DisableSkew && kind != KindHilbertTheta {
		pmax, skewKnown = maxJoinHotFrac(db.Catalog, conds, kind)
	}
	sigmaFracAt := func(kind JobKind, parallelism int) float64 {
		switch kind {
		case KindHashEqui:
			if skewKnown {
				return skew.SigmaFrac(pmax, parallelism, pl.skewThreshold())
			}
			return 0.3 // key-value hash distribution skews
		case KindShareGrid:
			if skewKnown {
				return skew.SigmaFrac(pmax, parallelism, pl.skewThreshold())
			}
			return 0.15 // attribute-class hashing, moderate skew
		default:
			return 0.08
		}
	}

	profile := make([]float64, pl.KP)
	bestK, bestT := 1, math.Inf(1)
	for k := 1; k <= pl.KP; k++ {
		var shuffle float64
		effectiveN := k
		switch kind {
		case KindHashEqui:
			shuffle = float64(inputBytes)
		case KindShareGrid:
			rep, err := ReplicationFactor(conds, orderedRels, k)
			if err != nil {
				return nil, err
			}
			shuffle = float64(inputBytes) * rep
			grid, err := ShareGridSize(conds, orderedRels, k)
			if err != nil {
				return nil, err
			}
			effectiveN = grid
		default:
			// Hilbert duplication: each tuple is copied ~k^((m-1)/m)
			// times (Eq. 9's fair-duplication factor).
			dup := math.Pow(float64(k), float64(m-1)/float64(m))
			shuffle = float64(inputBytes) * dup
		}
		alpha := 1.0
		if inputBytes > 0 {
			alpha = shuffle / float64(inputBytes)
		}
		beta := 0.0
		if shuffle > 0 {
			beta = float64(outBytes) / shuffle
		}
		prof := cost.JobProfile{
			InputBytes: inputBytes,
			MapTasks:   mapTasks,
			// k allotted units run map AND reduce tasks (§3.1), so the
			// map wave width shrinks with the allotment too.
			MapSlots: minInt(pl.Config.MapSlots, k),
			Alpha:    alpha,
			Beta:     beta,
			Sigma:    sigmaFracAt(kind, effectiveN) * shuffle / float64(effectiveN),
		}
		est, err := pl.Params.Estimate(prof, effectiveN)
		if err != nil {
			return nil, err
		}
		profile[k-1] = est.T
		if est.T < bestT {
			bestT, bestK = est.T, k
		}
	}
	return &candidate{
		conds:    conds,
		relOrder: relOrder,
		kind:     kind,
		profile:  profile,
		bestK:    bestK,
		bestT:    bestT,
		outBytes: outBytes,
	}, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// maxJoinHotFrac scans the heavy-hitter reports of the conjunction's
// equality endpoints and returns the hottest detected key fraction.
// known reports whether any endpoint carried a (possibly empty)
// report: an analyzed-but-uniform column legitimately yields pmax 0,
// which SigmaFrac maps to a small residual-variance floor, whereas an
// unanalyzed catalog keeps the pessimistic constants.
func maxJoinHotFrac(cat *relation.Catalog, conds predicate.Conjunction, kind JobKind) (pmax float64, known bool) {
	if cat == nil {
		return 0, false
	}
	for _, c := range conds {
		if !c.Op.IsEquality() {
			continue
		}
		if kind == KindShareGrid && (c.LeftOffset != 0 || c.RightOffset != 0) {
			continue // only zero-offset equalities form grid dimensions
		}
		for _, end := range [][2]string{{c.Left, c.LeftColumn}, {c.Right, c.RightColumn}} {
			ts, err := cat.Stats(end[0])
			if err != nil || ts.HotKeys == nil {
				continue
			}
			hks, ok := ts.HotKeys[end[1]]
			if !ok {
				continue
			}
			known = true
			if len(hks) > 0 && hks[0].Frac > pmax {
				pmax = hks[0].Frac
			}
		}
	}
	return pmax, known
}

// SkewPlanFor consults the catalog's heavy-hitter reports and returns
// the hot-key handling a job of this kind should run with, or nil when
// no join-key value is hot enough at the given reducer count (or the
// kind is skew-immune). Hash-equi jobs currently split only
// single-condition (single-column) keys; share-grid jobs refine any
// grid dimension whose class columns carry hot keys.
func SkewPlanFor(cat *relation.Catalog, kind JobKind, conds predicate.Conjunction, reducers int, threshold float64) *skew.JobPlan {
	if cat == nil || reducers < 2 {
		return nil
	}
	if threshold <= 0 {
		threshold = skew.DefaultThreshold
	}
	switch kind {
	case KindHashEqui:
		if len(conds) != 1 {
			return nil
		}
	case KindShareGrid:
	default:
		return nil // the Hilbert cube routes by salted random IDs
	}
	plan := skew.NewJobPlan(threshold)
	hotEnough := false
	for _, c := range conds {
		if !c.Op.IsEquality() {
			continue
		}
		if kind == KindShareGrid && (c.LeftOffset != 0 || c.RightOffset != 0) {
			continue
		}
		for _, end := range [][2]string{{c.Left, c.LeftColumn}, {c.Right, c.RightColumn}} {
			ts, err := cat.Stats(end[0])
			if err != nil || len(ts.HotKeys[end[1]]) == 0 {
				continue
			}
			hks := ts.HotKeys[end[1]]
			plan.Add(end[0], end[1], hks)
			if hks[0].Frac*float64(reducers) > threshold {
				hotEnough = true
			}
		}
	}
	if !hotEnough {
		return nil
	}
	return plan
}

// scheduleCover turns one sufficient cover into a scheduled plan.
func (pl *Planner) scheduleCover(q *query.Query, jp *joinpath.Graph, cands map[string]*candidate, cover []int, db *DB) (*Plan, error) {
	var jobs []PlannedJob
	var tasks []schedule.Task
	var mergeEst float64
	var prevOut int64
	for i, setID := range cover {
		e := jp.Edges[setID]
		c, ok := cands[keyOfIDs(e.EdgeIDs)]
		if !ok {
			return nil, fmt.Errorf("core: no costing cached for edge %v", e.EdgeIDs)
		}
		name := fmt.Sprintf("%s-j%d", q.Name, i+1)
		jobs = append(jobs, PlannedJob{
			Name:     name,
			EdgeIDs:  append([]int(nil), e.EdgeIDs...),
			Conds:    c.conds,
			RelOrder: append([]string(nil), c.relOrder...),
			Kind:     c.kind,
			Reducers: c.bestK,
			EstTime:  c.bestT,
			Profile:  append([]float64(nil), c.profile...),
		})
		tasks = append(tasks, schedule.Task{ID: name, Profile: c.profile})
		if i > 0 {
			mergeEst += pl.Params.MergeCost(prevOut, c.outBytes)
		}
		prevOut += c.outBytes
	}
	sched, err := schedule.Schedule(tasks, pl.KP)
	if err != nil {
		return nil, err
	}
	for i := range jobs {
		p, ok := sched.Placement(jobs[i].Name)
		if !ok {
			return nil, fmt.Errorf("core: schedule lost job %s", jobs[i].Name)
		}
		jobs[i].Units = p.Units
		if jobs[i].Reducers > p.Units {
			jobs[i].Reducers = p.Units
		}
		jobs[i].EstTime = p.Finish - p.Start
	}
	// A lone job owns the whole cluster: granting it every unit widens
	// its map waves for free even when its reducer optimum is lower.
	if len(jobs) == 1 && jobs[0].Units < pl.KP {
		jobs[0].Units = pl.KP
	}
	// Share-grid jobs round their reducer grid down to a feasible share
	// product, so ask with the full allotment: the operator itself
	// derives the largest grid that fits, keeping reduce slots busy.
	for i := range jobs {
		if jobs[i].Kind == KindShareGrid {
			jobs[i].Reducers = jobs[i].Units
		}
	}
	// With the reducer counts final, decide per-job hot-key handling
	// from the catalog's heavy-hitter reports.
	if !pl.Opts.DisableSkew && db != nil {
		for i := range jobs {
			jobs[i].Skew = SkewPlanFor(db.Catalog, jobs[i].Kind, jobs[i].Conds, jobs[i].Reducers, pl.skewThreshold())
		}
	}
	return &Plan{
		Query:             q,
		Jobs:              jobs,
		EstimatedMakespan: sched.Makespan + mergeEst,
		MergeEstimate:     mergeEst,
		Schedule:          sched,
	}, nil
}

func maxIntc(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Run is the one-call convenience: plan then execute.
func (pl *Planner) Run(q *query.Query, db *DB) (*Plan, *ExecResult, error) {
	plan, err := pl.Plan(q, db)
	if err != nil {
		return nil, nil, err
	}
	res, err := pl.Execute(plan, db)
	if err != nil {
		return plan, nil, err
	}
	return plan, res, nil
}

// CostEdgeForDebug exposes costEdge for diagnostic tools.
func (pl *Planner) CostEdgeForDebug(q *query.Query, g *query.JoinGraph, db *DB, edgeIDs []int) (float64, int, error) {
	c, err := pl.costEdge(q, g, db, edgeIDs)
	if err != nil {
		return 0, 0, err
	}
	return c.bestT, c.bestK, nil
}
