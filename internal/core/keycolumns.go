package core

import (
	"repro/internal/obs"
	"repro/internal/predicate"
	"repro/internal/relation"
)

// Struct-of-arrays key cache for the reducer-side join evaluator.
//
// Each compiled condition side is a keyExtractor: the recipe deriving
// one tuple's normalized int64 sort key. At compile time (newJoinEval)
// every step deduplicates its candidate-side extractors into slots, so
// two conditions reading the same column with the same offset and mode
// share one extraction; at group-build time (groupEval.buildStep) the
// step's slots are materialised once into contiguous []int64 columns
// backed by a single allocation. Probe loops and binary searches then
// read sequential memory instead of re-deriving keys from boxed
// tuples. The cache is shared by the theta, share-grid and hash-equi
// reducers, which all evaluate through joineval.go.

// keyExtractor derives the normalized sort key of one condition side:
// column ordinal, additive offset and key mode, plus — in dictionary
// mode — the reference dictionary keys are computed against. direct
// marks the side whose values are interned against that exact
// dictionary: its keys come straight from the embedded codes
// (relation.CodeKey); the other side probes by string
// (Dict.ProbeKey), which also covers the rare un-interned value.
type keyExtractor struct {
	mode   predicate.KeyMode
	col    int
	off    float64
	dict   *relation.Dict
	direct bool
}

// key extracts the normalized sort key of t under this recipe.
func (e *keyExtractor) key(t relation.Tuple) int64 {
	v := t[e.col]
	switch e.mode {
	case predicate.KeyInt:
		return relation.SortKeyInt(v, e.off)
	case predicate.KeyFloat:
		return relation.SortKeyFloat(v, e.off)
	default: // predicate.KeyDict
		if v.IsNull() {
			return relation.NullSortKey
		}
		if e.direct {
			if c, ok := v.DictCode(); ok {
				return relation.CodeKey(c)
			}
		}
		return e.dict.ProbeKey(v.Str())
	}
}

// sameKey reports whether two extractors produce identical, mutually
// comparable keys for every tuple.
func (e *keyExtractor) sameKey(o *keyExtractor) bool {
	return e.mode == o.mode && e.col == o.col && e.off == o.off && e.dict == o.dict
}

// buildKeyColumns materialises every extractor's keys over the
// candidate list into per-slot columns sharing one contiguous backing
// array. Dictionary-mode extraction counts into the process-wide
// metrics registry (obs.Default), batched per column so the per-tuple
// loop stays atomic-free: "direct" hits read the embedded code,
// "probe" extractions fall back to a string lookup in the dictionary.
func buildKeyColumns(exts []keyExtractor, cands []relation.Tuple) [][]int64 {
	if len(exts) == 0 {
		return nil
	}
	n := len(cands)
	flat := make([]int64, len(exts)*n)
	cols := make([][]int64, len(exts))
	var directKeys, probeKeys int64
	for x := range exts {
		col := flat[x*n : (x+1)*n : (x+1)*n]
		e := &exts[x]
		for i, t := range cands {
			col[i] = e.key(t)
		}
		cols[x] = col
		if e.mode == predicate.KeyDict {
			if e.direct {
				directKeys += int64(n)
			} else {
				probeKeys += int64(n)
			}
		}
	}
	obs.Default().Counter("joineval/key_columns_built").Add(int64(len(exts)))
	if directKeys > 0 {
		obs.Default().Counter("joineval/dict_code_keys").Add(directKeys)
	}
	if probeKeys > 0 {
		obs.Default().Counter("joineval/dict_probe_keys").Add(probeKeys)
	}
	return cols
}

// buildKeyColumnsChunks materialises every extractor's keys over a
// sequence of chunk views into per-slot columns sharing one backing
// array — the chunk-view counterpart of buildKeyColumns. Instead of
// re-boxing each row into a Tuple and deriving keys value by value, it
// drives the chunks' vectorized extractors (AppendIntKeys /
// AppendFloatKeys / AppendDictKeys), which read the columnar arrays
// directly; rows that fell off a column's dense path fall back to the
// scalar key derivation inside the chunk. Key values are bit-identical
// to the tuple path.
func buildKeyColumnsChunks(exts []keyExtractor, chunks []*relation.Chunk) [][]int64 {
	if len(exts) == 0 {
		return nil
	}
	n := 0
	for _, c := range chunks {
		n += c.Rows()
	}
	flat := make([]int64, 0, len(exts)*n)
	cols := make([][]int64, len(exts))
	var directKeys, probeKeys int64
	for x := range exts {
		e := &exts[x]
		start := len(flat)
		for _, c := range chunks {
			switch e.mode {
			case predicate.KeyInt:
				flat = c.AppendIntKeys(e.col, e.off, flat)
			case predicate.KeyFloat:
				flat = c.AppendFloatKeys(e.col, e.off, flat)
			default:
				flat = c.AppendDictKeys(e.col, e.dict, e.direct, flat)
			}
		}
		cols[x] = flat[start:len(flat):len(flat)]
		if e.mode == predicate.KeyDict {
			if e.direct {
				directKeys += int64(n)
			} else {
				probeKeys += int64(n)
			}
		}
	}
	obs.Default().Counter("joineval/key_columns_built").Add(int64(len(exts)))
	if directKeys > 0 {
		obs.Default().Counter("joineval/dict_code_keys").Add(directKeys)
	}
	if probeKeys > 0 {
		obs.Default().Counter("joineval/dict_probe_keys").Add(probeKeys)
	}
	return cols
}
