package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/mr"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/relation"
)

func TestShareGridApplicable(t *testing.T) {
	// Q17 shape: two EQ conditions through part link all three relations.
	q17 := predicate.Conjunction{
		predicate.C("l", "pk", predicate.EQ, "p", "pk"),
		predicate.C("l2", "pk", predicate.EQ, "p", "pk"),
		predicate.C("l", "q", predicate.LE, "l2", "q"),
	}
	if !ShareGridApplicable(q17) {
		t.Error("Q17 shape not applicable")
	}
	// Theta-only: not applicable.
	if ShareGridApplicable(predicate.Conjunction{
		predicate.C("a", "x", predicate.LT, "b", "x"),
	}) {
		t.Error("theta-only accepted")
	}
	// EQ connects a-b but c only via theta: not applicable.
	if ShareGridApplicable(predicate.Conjunction{
		predicate.C("a", "x", predicate.EQ, "b", "x"),
		predicate.C("b", "y", predicate.LT, "c", "y"),
	}) {
		t.Error("partially-equi accepted")
	}
	// EQ with offsets is not hashable.
	if ShareGridApplicable(predicate.Conjunction{
		predicate.C("a", "x", predicate.EQ, "b", "x").WithOffsets(1, 0),
	}) {
		t.Error("offset EQ accepted")
	}
	if ShareGridApplicable(nil) {
		t.Error("empty accepted")
	}
}

// Single-class grid (Q17 shape): replication factor must be 1 — every
// relation knows the only dimension.
func TestShareGridNoReplicationWhenFullyLinked(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := randRelation("l", 60, 10, rng)
	p := randRelation("p", 20, 10, rng)
	l2 := randRelation("l2", 60, 10, rng)
	db := newTestDB(t, l, p, l2)
	conds := predicate.Conjunction{
		predicate.C("l", "a", predicate.EQ, "p", "a"),
		predicate.C("l2", "a", predicate.EQ, "p", "a"),
		predicate.C("l", "b", predicate.LE, "l2", "b"),
	}
	rl, _ := db.Relation("l")
	rp, _ := db.Relation("p")
	rl2, _ := db.Relation("l2")
	rels := []*relation.Relation{rl, rp, rl2}
	rep, err := ReplicationFactor(conds, rels, 32)
	if err != nil {
		t.Fatal(err)
	}
	if rep != 1 {
		t.Errorf("replication = %v, want 1", rep)
	}
	job, err := BuildShareGridJob("sg", rels, conds, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mr.Run(context.Background(), testConfig(), nil, job)
	if err != nil {
		t.Fatal(err)
	}
	// No duplication: pairs emitted == total input tuples.
	if res.Metrics.PairsEmitted != int64(rl.Cardinality()+rp.Cardinality()+rl2.Cardinality()) {
		t.Errorf("pairs emitted = %d (input %d)", res.Metrics.PairsEmitted,
			rl.Cardinality()+rp.Cardinality()+rl2.Cardinality())
	}
	// Correctness against naive.
	q := query.MustNew("sg", []string{"l", "p", "l2"}, conds)
	want, err := Naive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	got, wantRS := resultSet(res.Output), resultSet(want)
	if !wantRS.Equal(got) {
		t.Errorf("share grid mismatch: %d vs %d rows: %v",
			got.Len(), wantRS.Len(), wantRS.Diff(got, 3))
	}
}

// Two-class grid (Q18 shape): c—o on custkey, o—l/l2 on orderkey.
func TestShareGridTwoDimensions(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c := randRelation("c", 25, 8, rng)
	o := randRelation("o", 40, 8, rng)
	l := randRelation("l", 50, 8, rng)
	db := newTestDB(t, c, o, l)
	conds := predicate.Conjunction{
		predicate.C("c", "a", predicate.EQ, "o", "a"),
		predicate.C("o", "b", predicate.EQ, "l", "b"),
		predicate.C("c", "b", predicate.GE, "l", "a"),
	}
	rc, _ := db.Relation("c")
	ro, _ := db.Relation("o")
	rl, _ := db.Relation("l")
	rels := []*relation.Relation{rc, ro, rl}
	for _, kr := range []int{1, 4, 9, 16} {
		job, err := BuildShareGridJob("sg2", rels, conds, kr, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mr.Run(context.Background(), testConfig(), nil, job)
		if err != nil {
			t.Fatal(err)
		}
		q := query.MustNew("sg2", []string{"c", "o", "l"}, conds)
		want, err := Naive(q, db)
		if err != nil {
			t.Fatal(err)
		}
		got, wantRS := resultSet(res.Output), resultSet(want)
		if !wantRS.Equal(got) {
			t.Fatalf("kr=%d: share grid mismatch %d vs %d: %v",
				kr, got.Len(), wantRS.Len(), wantRS.Diff(got, 3))
		}
	}
}

// Random equi-connected queries with theta residuals: share grid must
// equal naive for every reducer count.
func TestShareGridRandomQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	thetaOps := []predicate.Op{predicate.LT, predicate.LE, predicate.GE, predicate.GT, predicate.NE}
	for trial := 0; trial < 15; trial++ {
		m := 2 + rng.Intn(2)
		names := []string{"X", "Y", "Z"}[:m]
		rels := make([]*relation.Relation, m)
		for i := range rels {
			rels[i] = randRelation(names[i], 20+rng.Intn(20), 5+rng.Intn(5), rng)
		}
		var conds predicate.Conjunction
		for i := 0; i+1 < m; i++ {
			conds = append(conds, predicate.C(names[i], "a", predicate.EQ, names[i+1], "a"))
		}
		// Theta residual on a random pair.
		a, b := rng.Intn(m), rng.Intn(m)
		if a != b {
			conds = append(conds, predicate.C(names[min2(a, b)], "b",
				thetaOps[rng.Intn(len(thetaOps))], names[max2(a, b)], "b"))
		}
		db := newTestDB(t, rels...)
		ordered := make([]*relation.Relation, m)
		for i, n := range names {
			ordered[i], _ = db.Relation(n)
		}
		kr := 1 + rng.Intn(12)
		job, err := BuildShareGridJob("sgr", ordered, conds, kr, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mr.Run(context.Background(), testConfig(), nil, job)
		if err != nil {
			t.Fatal(err)
		}
		q, err := query.New("sgr", names, conds)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Naive(q, db)
		if err != nil {
			t.Fatal(err)
		}
		got, wantRS := resultSet(res.Output), resultSet(want)
		if !wantRS.Equal(got) {
			t.Fatalf("trial %d (%s, kr=%d): mismatch %d vs %d", trial, q, kr, got.Len(), wantRS.Len())
		}
	}
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}
func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestShareGridValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	db := newTestDB(t, randRelation("A", 10, 5, rng), randRelation("B", 10, 5, rng))
	ra, _ := db.Relation("A")
	rb, _ := db.Relation("B")
	theta := predicate.Conjunction{predicate.C("A", "a", predicate.LT, "B", "a")}
	if _, err := BuildShareGridJob("x", []*relation.Relation{ra, rb}, theta, 4, 0); err == nil {
		t.Error("theta-only conjunction accepted")
	}
	if _, err := BuildShareGridJob("x", []*relation.Relation{ra}, nil, 4, 0); err == nil {
		t.Error("single relation accepted")
	}
}

func TestShareGridEmptyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := randRelation("A", 0, 5, rng)
	b := randRelation("B", 10, 5, rng)
	db := newTestDB(t, a, b)
	ra, _ := db.Relation("A")
	rb, _ := db.Relation("B")
	conds := predicate.Conjunction{predicate.C("A", "a", predicate.EQ, "B", "a")}
	job, err := BuildShareGridJob("e", []*relation.Relation{ra, rb}, conds, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mr.Run(context.Background(), testConfig(), nil, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Cardinality() != 0 {
		t.Error("nonempty output from empty input")
	}
}

// The planner must pick the share grid for an equi-connected TPC-H-like
// query rather than the Hilbert cube.
func TestPlannerPicksShareGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	l := randRelation("l", 60, 10, rng)
	p := randRelation("p", 20, 10, rng)
	l2 := randRelation("l2", 60, 10, rng)
	for _, r := range []*relation.Relation{l, p, l2} {
		r.VolumeMultiplier = 1e6
	}
	db := newTestDB(t, l, p, l2)
	q := query.MustNew("q17ish", []string{"l", "p", "l2"}, []predicate.Condition{
		predicate.C("l", "a", predicate.EQ, "p", "a"),
		predicate.C("l2", "a", predicate.EQ, "p", "a"),
		predicate.C("l", "b", predicate.LE, "l2", "b"),
	})
	pl := testPlanner(32)
	plan, err := pl.Plan(q, db)
	if err != nil {
		t.Fatal(err)
	}
	hasShareGrid := false
	for _, j := range plan.Jobs {
		if j.Kind == KindShareGrid {
			hasShareGrid = true
		}
		if j.Kind == KindHilbertTheta {
			t.Errorf("planner used hilbert cube for equi-connected query: %v", plan)
		}
	}
	if !hasShareGrid && len(plan.Jobs) == 1 {
		t.Errorf("expected a share-grid job in %v", plan)
	}
	// End-to-end correctness.
	res, err := pl.Execute(plan, db)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Naive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !resultSet(want).Equal(resultSet(res.Output)) {
		t.Error("share-grid plan result mismatch")
	}
}
