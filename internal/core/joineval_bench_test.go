package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/mr"
	"repro/internal/predicate"
	"repro/internal/relation"
)

// benchStationRelation builds a relation of mobile station names (the
// workloads.StationName shape: city segment before the zero-padded
// code, so name order differs from code order) plus an int column.
func benchStationRelation(name string, n, stations int, seed int64) *relation.Relation {
	regions := []string{"guangzhou", "shenzhen", "dongguan", "foshan"}
	rng := rand.New(rand.NewSource(seed))
	r := relation.New(name, relation.MustSchema(
		relation.Column{Name: "bs", Kind: relation.KindString},
		relation.Column{Name: "bt", Kind: relation.KindInt},
	))
	for i := 0; i < n; i++ {
		c := rng.Intn(stations)
		r.MustAppend(relation.Tuple{
			relation.Str(fmt.Sprintf("base-station-%s-%06d", regions[c%len(regions)], c)),
			relation.Int(int64(rng.Intn(1 << 20))),
		})
	}
	return r
}

// BenchmarkStringJoin measures the dictionary-keyed string condition
// fast path against the pre-interning relation.Compare path, on the
// reduce-side join evaluation itself: one reduce group per iteration,
// matches counted rather than materialised, so condition evaluation —
// not output construction — dominates the timing. string-equi is a
// station-name equality probe; string-band anchors two range
// conditions on one relation (strings admit no offsets, so a band
// needs a third relation: t1.bs ≤ t3.bs AND t2.bs ≥ t3.bs). The
// fallback variants skip InternStrings, so the string conditions
// compile to the generic Compare path exactly as before interning.
func BenchmarkStringJoin(b *testing.B) {
	equiConds := predicate.Conjunction{
		predicate.C("A", "bs", predicate.EQ, "B", "bs"),
	}
	bandConds := predicate.Conjunction{
		predicate.C("A", "bs", predicate.LE, "C", "bs"),
		predicate.C("B", "bs", predicate.GE, "C", "bs"),
	}
	for _, v := range []struct {
		name     string
		interned bool
		n        int
		rels     []string
		conds    predicate.Conjunction
	}{
		// The band scans cubically many combinations, so it runs on
		// smaller groups than the equi probe.
		{"string-equi/interned", true, 4000, []string{"A", "B"}, equiConds},
		{"string-equi/fallback", false, 4000, []string{"A", "B"}, equiConds},
		{"string-band/interned", true, 250, []string{"A", "B", "C"}, bandConds},
		{"string-band/fallback", false, 250, []string{"A", "B", "C"}, bandConds},
	} {
		b.Run(v.name, func(b *testing.B) {
			rels := make([]*relation.Relation, len(v.rels))
			groups := make([][]relation.Tuple, len(v.rels))
			for i, name := range v.rels {
				r := benchStationRelation(name, v.n, 500, int64(i+1))
				if v.interned {
					relation.InternStrings(r)
				}
				rels[i] = r
				groups[i] = r.Tuples
			}
			bound, err := bindConditions(v.conds, rels)
			if err != nil {
				b.Fatal(err)
			}
			je := newJoinEval(rels, bound)
			var matches int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				matches = 0
				ge := je.newGroupEval(groups)
				ge.run(&mr.ReduceContext{}, func([]int32) { matches++ })
			}
			b.ReportMetric(float64(matches), "matches")
		})
	}
}
