package core

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"testing"

	"repro/internal/mr"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/skew"
)

// zipfKeyRelation builds a relation whose k column follows a Zipf(s)
// distribution — the skewed join-key shape the skew subsystem targets.
func zipfKeyRelation(name string, n int, s float64, domain int, seed int64) *relation.Relation {
	r := relation.New(name, relation.MustSchema(
		relation.Column{Name: "k", Kind: relation.KindInt},
		relation.Column{Name: "v", Kind: relation.KindInt},
	))
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(domain-1))
	for i := 0; i < n; i++ {
		r.MustAppend(relation.Tuple{
			relation.Int(int64(z.Uint64())),
			relation.Int(int64(rng.Intn(1000))),
		})
	}
	return r
}

// sortedTuples returns a canonically ordered copy of the output for
// set comparison across partitioning strategies (which place the same
// result tuples on different reducers, hence in different order).
func sortedTuples(r *relation.Relation) []relation.Tuple {
	out := append([]relation.Tuple(nil), r.Tuples...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for x := 0; x < len(a) && x < len(b); x++ {
			if c := relation.Compare(a[x], b[x]); c != 0 {
				return c < 0
			}
		}
		return len(a) < len(b)
	})
	return out
}

func runJob(t *testing.T, job *mr.Job) *mr.Result {
	t.Helper()
	res, err := mr.Run(context.Background(), testConfig(), nil, job)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSkewEquiJoinBalance is the equi-join acceptance criterion: on a
// Zipf(1.2)-skewed join key, the skew-aware partitioner cuts the
// reducer balance ratio (MaxReducerInput / mean) by at least 2× versus
// the plain hash partition at equal reducer count, with identical join
// output.
func TestSkewEquiJoinBalance(t *testing.T) {
	const kr = 16
	l := zipfKeyRelation("L", 4000, 1.2, 1000, 21)
	r := zipfKeyRelation("R", 800, 1.2, 1000, 22)
	db := newTestDB(t, l, r)
	conds := predicate.Conjunction{predicate.C("L", "k", predicate.EQ, "R", "k")}

	rel := func(name string) *relation.Relation {
		rr, err := db.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		return rr
	}
	base, err := BuildHashEquiJob("equi-base", rel("L"), rel("R"), conds, kr)
	if err != nil {
		t.Fatal(err)
	}
	plan := SkewPlanFor(db.Catalog, KindHashEqui, conds, kr, skew.DefaultThreshold)
	if plan == nil {
		t.Fatal("no skew plan for a Zipf(1.2) key — detection or planning broken")
	}
	skewed, err := BuildHashEquiJobSkew("equi-skew", rel("L"), rel("R"), conds, kr, plan)
	if err != nil {
		t.Fatal(err)
	}
	if skewed.Partitioner == nil {
		t.Fatal("skew plan produced no partitioner")
	}

	bres, sres := runJob(t, base), runJob(t, skewed)
	if bres.Metrics.BalanceRatio < 2*sres.Metrics.BalanceRatio {
		t.Errorf("balance ratio: baseline %.2f vs skew-aware %.2f — want >= 2x reduction",
			bres.Metrics.BalanceRatio, sres.Metrics.BalanceRatio)
	}
	if !reflect.DeepEqual(sortedTuples(bres.Output), sortedTuples(sres.Output)) {
		t.Errorf("outputs differ: baseline %d tuples, skew-aware %d tuples",
			len(bres.Output.Tuples), len(sres.Output.Tuples))
	}
	t.Logf("equi balance: baseline %.2f → skew-aware %.2f (%d output tuples)",
		bres.Metrics.BalanceRatio, sres.Metrics.BalanceRatio, len(sres.Output.Tuples))
}

// TestSkewShareGridBalance is the share-grid acceptance criterion: a
// theta-join whose equality backbone is Zipf-skewed gets hot rows of
// the grid refined into finer cells, again a >= 2x balance improvement
// with identical output.
func TestSkewShareGridBalance(t *testing.T) {
	const kr = 16
	l := zipfKeyRelation("L", 3000, 1.2, 1000, 31)
	r := zipfKeyRelation("R", 600, 1.2, 1000, 32)
	db := newTestDB(t, l, r)
	// Equality backbone + theta residual: a share-grid theta-join.
	conds := predicate.Conjunction{
		predicate.C("L", "k", predicate.EQ, "R", "k"),
		predicate.C("L", "v", predicate.LE, "R", "v"),
	}
	rel := func(name string) *relation.Relation {
		rr, err := db.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		return rr
	}
	rels := []*relation.Relation{rel("L"), rel("R")}
	base, err := BuildShareGridJob("grid-base", rels, conds, kr, 0)
	if err != nil {
		t.Fatal(err)
	}
	plan := SkewPlanFor(db.Catalog, KindShareGrid, conds, kr, skew.DefaultThreshold)
	if plan == nil {
		t.Fatal("no skew plan for the Zipf-skewed grid dimension")
	}
	skewed, err := BuildShareGridJobSkew("grid-skew", rels, conds, kr, 0, plan)
	if err != nil {
		t.Fatal(err)
	}

	bres, sres := runJob(t, base), runJob(t, skewed)
	if bres.Metrics.BalanceRatio < 2*sres.Metrics.BalanceRatio {
		t.Errorf("balance ratio: baseline %.2f vs skew-aware %.2f — want >= 2x reduction",
			bres.Metrics.BalanceRatio, sres.Metrics.BalanceRatio)
	}
	if !reflect.DeepEqual(sortedTuples(bres.Output), sortedTuples(sres.Output)) {
		t.Errorf("outputs differ: baseline %d tuples, skew-aware %d tuples",
			len(bres.Output.Tuples), len(sres.Output.Tuples))
	}
	t.Logf("grid balance: baseline %.2f → skew-aware %.2f (%d output tuples)",
		bres.Metrics.BalanceRatio, sres.Metrics.BalanceRatio, len(sres.Output.Tuples))
}

// TestSkewExecutionDeterminism extends the engine's core invariant to
// skew-aware partitioning: identical output and metrics across worker
// counts for both the hot-key-split equi-join and the refined grid.
func TestSkewExecutionDeterminism(t *testing.T) {
	const kr = 12
	l := zipfKeyRelation("L", 1500, 1.3, 500, 41)
	r := zipfKeyRelation("R", 400, 1.3, 500, 42)
	db := newTestDB(t, l, r)
	rel := func(name string) *relation.Relation {
		rr, err := db.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		return rr
	}
	equiConds := predicate.Conjunction{predicate.C("L", "k", predicate.EQ, "R", "k")}
	gridConds := predicate.Conjunction{
		predicate.C("L", "k", predicate.EQ, "R", "k"),
		predicate.C("L", "v", predicate.GE, "R", "v"),
	}
	cases := []struct {
		name  string
		build func() (*mr.Job, error)
	}{
		{"equi-skew", func() (*mr.Job, error) {
			plan := SkewPlanFor(db.Catalog, KindHashEqui, equiConds, kr, skew.DefaultThreshold)
			if plan == nil {
				t.Fatal("no equi skew plan")
			}
			return BuildHashEquiJobSkew("dequi", rel("L"), rel("R"), equiConds, kr, plan)
		}},
		{"grid-skew", func() (*mr.Job, error) {
			plan := SkewPlanFor(db.Catalog, KindShareGrid, gridConds, kr, skew.DefaultThreshold)
			if plan == nil {
				t.Fatal("no grid skew plan")
			}
			return BuildShareGridJobSkew("dgrid", []*relation.Relation{rel("L"), rel("R")}, gridConds, kr, 0, plan)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var ref *mr.Result
			for _, w := range []int{1, 2, runtime.NumCPU()} {
				job, err := tc.build()
				if err != nil {
					t.Fatal(err)
				}
				cfg := testConfig()
				cfg.MaxParallelWorkers = w
				res, err := mr.Run(context.Background(), cfg, nil, job)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if ref == nil {
					ref = res
					continue
				}
				if !reflect.DeepEqual(res.Output.Tuples, ref.Output.Tuples) {
					t.Fatalf("workers=%d: output tuples differ from reference", w)
				}
				if !reflect.DeepEqual(zeroWall(res.Metrics), zeroWall(ref.Metrics)) {
					t.Errorf("workers=%d: metrics differ:\n%+v\n%+v", w, res.Metrics, ref.Metrics)
				}
			}
		})
	}
}

// TestPlannerAttachesSkewPlan: the end-to-end planner path on skewed
// data chooses a skew plan for hash-equi jobs and still matches the
// naive reference result.
func TestPlannerAttachesSkewPlan(t *testing.T) {
	l := zipfKeyRelation("L", 600, 1.3, 300, 51)
	r := zipfKeyRelation("R", 200, 1.3, 300, 52)
	// Model multi-GB inputs so the cost model wants enough reducers for
	// the hot key to cross the split threshold.
	l.VolumeMultiplier = 4e9 / float64(l.EncodedSize())
	r.VolumeMultiplier = 1e9 / float64(r.EncodedSize())
	db := newTestDB(t, l, r)
	q := query.MustNew("skewq", []string{"L", "R"}, []predicate.Condition{
		predicate.C("L", "k", predicate.EQ, "R", "k"),
	})
	pl := testPlanner(8)
	plan, err := pl.Plan(q, db)
	if err != nil {
		t.Fatal(err)
	}
	attached := false
	for _, pj := range plan.Jobs {
		if pj.Skew != nil {
			attached = true
		}
	}
	if !attached {
		t.Error("planner attached no skew plan on Zipf(1.3) data")
	}
	res, err := pl.Execute(plan, db)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Naive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	got, wantRS := resultSet(res.Output), resultSet(want)
	if !wantRS.Equal(got) {
		t.Errorf("skew-planned result mismatch: %d vs %d rows", got.Len(), wantRS.Len())
	}
}

// TestSkewPlanForGates: no plan on uniform data, none for Hilbert
// jobs, none below two reducers.
func TestSkewPlanForGates(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	u := randRelation("U", 400, 390, rng) // near-unique keys
	v := randRelation("V", 400, 390, rng)
	db := newTestDB(t, u, v)
	conds := predicate.Conjunction{predicate.C("U", "a", predicate.EQ, "V", "a")}
	if p := SkewPlanFor(db.Catalog, KindHashEqui, conds, 16, 0); p != nil {
		t.Errorf("uniform data produced a skew plan: %+v", p)
	}
	l := zipfKeyRelation("L", 1000, 1.3, 500, 62)
	r := zipfKeyRelation("R", 300, 1.3, 500, 63)
	db2 := newTestDB(t, l, r)
	hot := predicate.Conjunction{predicate.C("L", "k", predicate.EQ, "R", "k")}
	if p := SkewPlanFor(db2.Catalog, KindHilbertTheta, hot, 16, 0); p != nil {
		t.Error("Hilbert job got a skew plan")
	}
	if p := SkewPlanFor(db2.Catalog, KindHashEqui, hot, 1, 0); p != nil {
		t.Error("single-reducer job got a skew plan")
	}
	if p := SkewPlanFor(db2.Catalog, KindHashEqui, hot, 16, 0); p == nil {
		t.Error("hot single-condition equi job got no plan")
	}
}
