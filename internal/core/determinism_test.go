package core

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/mr"
	"repro/internal/obs"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/relation"
)

// zeroWall strips the measured wall-clock fields from a metrics value
// before a determinism comparison: wall times legitimately vary across
// runs and worker counts; the determinism contract covers byte-level
// metrics only (see mr.WallTime).
func zeroWall(m mr.Metrics) mr.Metrics {
	m.Wall = mr.WallTime{}
	// Attempt and speculation counts are wall-clock dependent (retry
	// and straggler scheduling follow real time); strip them like Wall.
	m.MapAttempts = 0
	m.ReduceAttempts = 0
	m.SpeculativeLaunched = 0
	m.SpeculativeWins = 0
	return m
}

// zeroWallMap is zeroWall over a JobMetrics map.
func zeroWallMap(ms map[string]mr.Metrics) map[string]mr.Metrics {
	out := make(map[string]mr.Metrics, len(ms))
	for k, v := range ms {
		out[k] = zeroWall(v)
	}
	return out
}

// TestExecutionDeterminism asserts the engine's core invariant: for a
// fixed job specification, Result.Output and the byte-level Metrics
// are identical across worker counts — the parallel partitioned
// shuffle must not let goroutine interleaving leak into results. Run
// under -race this also exercises the engine's synchronisation.
func TestExecutionDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	a := randRelation("A", 90, 25, rng)
	b := randRelation("B", 70, 25, rng)
	c := randRelation("C", 50, 25, rng)
	db := newTestDB(t, a, b, c)
	rel := func(name string) *relation.Relation {
		r, err := db.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	cases := []struct {
		name  string
		build func() (*mr.Job, error)
	}{
		{"theta", func() (*mr.Job, error) {
			job, _, err := BuildThetaJob("theta", []*relation.Relation{rel("A"), rel("B")},
				predicate.Conjunction{predicate.C("A", "a", predicate.LT, "B", "a")}, 6, 1<<12)
			return job, err
		}},
		{"hash-equi", func() (*mr.Job, error) {
			return BuildHashEquiJob("hashequi", rel("A"), rel("B"),
				predicate.Conjunction{predicate.C("A", "a", predicate.EQ, "B", "a")}, 6)
		}},
		{"share-grid", func() (*mr.Job, error) {
			return BuildShareGridJob("sharegrid", []*relation.Relation{rel("A"), rel("B"), rel("C")},
				predicate.Conjunction{
					predicate.C("A", "a", predicate.EQ, "B", "a"),
					predicate.C("B", "b", predicate.EQ, "C", "b"),
				}, 6, 1<<12)
		}},
	}
	workerCounts := []int{1, 2, runtime.NumCPU()}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var ref *mr.Result
			var refWorkers int
			for _, w := range workerCounts {
				job, err := tc.build()
				if err != nil {
					t.Fatal(err)
				}
				cfg := testConfig()
				cfg.MaxParallelWorkers = w
				res, err := mr.Run(context.Background(), cfg, nil, job)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if ref == nil {
					ref, refWorkers = res, w
					continue
				}
				if got, want := len(res.Output.Tuples), len(ref.Output.Tuples); got != want {
					t.Fatalf("workers=%d vs %d: %d vs %d output tuples", w, refWorkers, got, want)
				}
				for i := range res.Output.Tuples {
					if !reflect.DeepEqual(res.Output.Tuples[i], ref.Output.Tuples[i]) {
						t.Fatalf("workers=%d vs %d: tuple %d differs: %v vs %v",
							w, refWorkers, i, res.Output.Tuples[i], ref.Output.Tuples[i])
					}
				}
				if res.Metrics.PairsEmitted != ref.Metrics.PairsEmitted {
					t.Errorf("workers=%d: PairsEmitted %d != %d", w, res.Metrics.PairsEmitted, ref.Metrics.PairsEmitted)
				}
				if res.Metrics.ShuffleBytes != ref.Metrics.ShuffleBytes {
					t.Errorf("workers=%d: ShuffleBytes %d != %d", w, res.Metrics.ShuffleBytes, ref.Metrics.ShuffleBytes)
				}
				if res.Metrics.MaxReducerInput != ref.Metrics.MaxReducerInput {
					t.Errorf("workers=%d: MaxReducerInput %d != %d", w, res.Metrics.MaxReducerInput, ref.Metrics.MaxReducerInput)
				}
				if !reflect.DeepEqual(zeroWall(res.Metrics), zeroWall(ref.Metrics)) {
					t.Errorf("workers=%d: full metrics differ:\n%+v\n%+v", w, res.Metrics, ref.Metrics)
				}
			}
		})
	}
}

// TestExecutionDeterminismSpill re-asserts the worker-count invariant
// with out-of-core execution forced on: a tiny SpillBudgetBytes pushes
// every map task's shuffle output through the spill store, and the
// output plus all byte-level metrics must still be bit-identical to
// the fully in-memory run, at every worker count. Run under -race this
// also exercises the spill/merge synchronisation.
func TestExecutionDeterminismSpill(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	a := randRelation("A", 90, 25, rng)
	b := randRelation("B", 70, 25, rng)
	db := newTestDB(t, a, b)
	rel := func(name string) *relation.Relation {
		r, err := db.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	cases := []struct {
		name  string
		build func() (*mr.Job, error)
	}{
		{"theta", func() (*mr.Job, error) {
			job, _, err := BuildThetaJob("theta-sp", []*relation.Relation{rel("A"), rel("B")},
				predicate.Conjunction{predicate.C("A", "a", predicate.LT, "B", "a")}, 6, 1<<12)
			return job, err
		}},
		{"hash-equi", func() (*mr.Job, error) {
			return BuildHashEquiJob("hashequi-sp", rel("A"), rel("B"),
				predicate.Conjunction{predicate.C("A", "a", predicate.EQ, "B", "a")}, 6)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			job, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			inMem, err := mr.Run(context.Background(), testConfig(), nil, job)
			if err != nil {
				t.Fatal(err)
			}
			var ref *mr.Result
			for _, w := range []int{1, 2, runtime.NumCPU()} {
				job, err := tc.build()
				if err != nil {
					t.Fatal(err)
				}
				cfg := testConfig()
				cfg.MaxParallelWorkers = w
				cfg.SpillBudgetBytes = 2048
				res, err := mr.Run(context.Background(), cfg, nil, job)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if res.Metrics.SpillBytes <= 0 {
					t.Fatalf("workers=%d: budget did not force a spill", w)
				}
				// Bit-identical to the in-memory run, including order.
				if got, want := len(res.Output.Tuples), len(inMem.Output.Tuples); got != want {
					t.Fatalf("workers=%d: %d vs %d output tuples vs in-memory", w, got, want)
				}
				for i := range res.Output.Tuples {
					if !reflect.DeepEqual(res.Output.Tuples[i], inMem.Output.Tuples[i]) {
						t.Fatalf("workers=%d: tuple %d differs from in-memory run", w, i)
					}
				}
				if ref == nil {
					ref = res
					continue
				}
				if !reflect.DeepEqual(zeroWall(res.Metrics), zeroWall(ref.Metrics)) {
					t.Errorf("workers=%d: metrics differ with spill on:\n%+v\n%+v",
						w, zeroWall(res.Metrics), zeroWall(ref.Metrics))
				}
			}
		})
	}
}

// TestExecutionDeterminismUnitPools asserts the UnitPool extraction
// changed nothing observable: a full planned execution produces
// bit-identical output and byte-level metrics whether the units come
// from the default plan-private pool, a SharedUnitPool, or a
// budget-capped view of a shared pool (which forces different dispatch
// interleavings by admitting fewer jobs at once).
func TestExecutionDeterminismUnitPools(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	a := randRelation("A", 80, 20, rng)
	b := randRelation("B", 60, 20, rng)
	c := randRelation("C", 40, 20, rng)
	db := newTestDB(t, a, b, c)
	q := query.MustNew("pools", []string{"A", "B", "C"}, []predicate.Condition{
		predicate.C("A", "a", predicate.LT, "B", "a"),
		predicate.C("B", "b", predicate.GE, "C", "b"),
	})
	const kp = 8
	plan, err := testPlanner(kp).Plan(q, db)
	if err != nil {
		t.Fatal(err)
	}
	pools := []struct {
		name string
		pool UnitPool
	}{
		{"private", nil},
		{"shared", NewSharedUnitPool(kp, nil)},
		{"budget", WithBudget(NewSharedUnitPool(kp, nil), kp/2)},
	}
	var ref *ExecResult
	var refName string
	for _, tc := range pools {
		pl := testPlanner(kp)
		pl.Pool = tc.pool
		res, err := pl.Execute(plan, db)
		if err != nil {
			t.Fatalf("%s pool: %v", tc.name, err)
		}
		if ref == nil {
			ref, refName = res, tc.name
			continue
		}
		if !resultSet(ref.Output).Equal(resultSet(res.Output)) {
			t.Errorf("%s vs %s pool: result sets differ (%d vs %d rows)",
				tc.name, refName, res.Output.Cardinality(), ref.Output.Cardinality())
		}
		if got, want := zeroWallMap(res.JobMetrics), zeroWallMap(ref.JobMetrics); !reflect.DeepEqual(got, want) {
			t.Errorf("%s vs %s pool: job metrics differ:\n%+v\n%+v", tc.name, refName, got, want)
		}
		if res.ShuffleBytes != ref.ShuffleBytes {
			t.Errorf("%s vs %s pool: ShuffleBytes %d != %d", tc.name, refName, res.ShuffleBytes, ref.ShuffleBytes)
		}
	}
	// The shared pools must have drained back to empty.
	for _, tc := range pools[1:] {
		var shared *SharedUnitPool
		switch p := tc.pool.(type) {
		case *SharedUnitPool:
			shared = p
		default:
			continue
		}
		if n := shared.InUse(); n != 0 {
			t.Errorf("%s pool leaked %d units", tc.name, n)
		}
	}
}

// TestSharedPoolCrossPlanCap executes two plans concurrently against
// one shared pool and asserts (via the pool's obs histogram) that
// their combined unit holdings never exceeded the pool capacity —
// the invariant the resident server depends on.
func TestSharedPoolCrossPlanCap(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	a := randRelation("A", 80, 20, rng)
	b := randRelation("B", 60, 20, rng)
	db := newTestDB(t, a, b)
	q := query.MustNew("cap", []string{"A", "B"}, []predicate.Condition{
		predicate.C("A", "a", predicate.LT, "B", "a"),
	})
	const kp = 6
	plan, err := testPlanner(kp).Plan(q, db)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	pool := NewSharedUnitPool(kp, &obs.Obs{Metrics: reg})
	var ref *ExecResult
	if ref, err = testPlanner(kp).Execute(plan, db); err != nil {
		t.Fatal(err)
	}
	const plans = 4
	results := make([]*ExecResult, plans)
	errs := make([]error, plans)
	var wg sync.WaitGroup
	for i := 0; i < plans; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pl := testPlanner(kp)
			pl.Pool = WithBudget(pool, kp-1)
			results[i], errs[i] = pl.Execute(plan, db)
		}(i)
	}
	wg.Wait()
	for i := 0; i < plans; i++ {
		if errs[i] != nil {
			t.Fatalf("plan %d: %v", i, errs[i])
		}
		if !resultSet(ref.Output).Equal(resultSet(results[i].Output)) {
			t.Errorf("plan %d: result differs from solo execution", i)
		}
	}
	snap := reg.Histogram("core.pool.inuse").Snapshot()
	if snap.Count == 0 {
		t.Fatal("pool histogram recorded no acquisitions")
	}
	if snap.Max > int64(kp) {
		t.Errorf("combined unit holdings peaked at %d, exceeding K_P=%d", snap.Max, kp)
	}
	if n := pool.InUse(); n != 0 {
		t.Errorf("pool leaked %d units", n)
	}
}

// TestExecuteConcurrentIndependentJobs asserts that Execute overlaps
// independent planned jobs on the K_P units instead of running the
// plan as a serial cascade, and that the concurrent execution still
// matches the Naive reference result.
func TestExecuteConcurrentIndependentJobs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randRelation("A", 60, 18, rng)
	b := randRelation("B", 50, 18, rng)
	c := randRelation("C", 40, 18, rng)
	db := newTestDB(t, a, b, c)
	q := query.MustNew("pair", []string{"A", "B", "C"}, []predicate.Condition{
		predicate.C("A", "a", predicate.LT, "B", "a"),
		predicate.C("B", "b", predicate.GE, "C", "b"),
	})
	pl := testPlanner(8)
	plan := &Plan{
		Query: q,
		Jobs: []PlannedJob{
			{Name: "pair-j1", Conds: predicate.Conjunction{q.Conditions[0]}, RelOrder: []string{"A", "B"},
				Kind: KindHilbertTheta, Reducers: 3, Units: 4},
			{Name: "pair-j2", Conds: predicate.Conjunction{q.Conditions[1]}, RelOrder: []string{"B", "C"},
				Kind: KindHilbertTheta, Reducers: 3, Units: 4},
		},
	}
	res, err := pl.Execute(plan, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxConcurrentJobs < 2 {
		t.Errorf("independent 2-job plan ran serially: MaxConcurrentJobs = %d", res.MaxConcurrentJobs)
	}
	want, err := Naive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	got, wantRS := resultSet(res.Output), resultSet(want)
	if !wantRS.Equal(got) {
		t.Errorf("concurrent result mismatch: %d vs %d rows", got.Len(), wantRS.Len())
	}
}

// TestExecuteDependentJobsGate asserts that a job reading another
// planned job's output is gated on its completion and consumes the
// produced intermediate relation.
func TestExecuteDependentJobsGate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randRelation("A", 40, 12, rng)
	b := randRelation("B", 30, 12, rng)
	db := newTestDB(t, a, b)
	q := query.MustNew("casc", []string{"A", "B"}, []predicate.Condition{
		predicate.C("A", "a", predicate.LT, "B", "a"),
	})
	pl := testPlanner(8)
	// Job 2 joins job 1's output back against B — a cascade whose
	// second step can only run once the intermediate relation exists.
	plan := &Plan{
		Query: q,
		Jobs: []PlannedJob{
			{Name: "casc-j1", Conds: predicate.Conjunction{q.Conditions[0]}, RelOrder: []string{"A", "B"},
				Kind: KindHilbertTheta, Reducers: 2, Units: 8},
			{Name: "casc-j2", Conds: predicate.Conjunction{
				predicate.C("casc-j1", "A.a", predicate.LE, "B", "b"),
			}, RelOrder: []string{"casc-j1", "B"}, Kind: KindHilbertTheta, Reducers: 2, Units: 8},
		},
	}
	res, err := pl.Execute(plan, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxConcurrentJobs != 1 {
		t.Errorf("dependent jobs overlapped: MaxConcurrentJobs = %d", res.MaxConcurrentJobs)
	}
	if len(res.JobMetrics) != 2 {
		t.Fatalf("expected 2 job metrics, got %d", len(res.JobMetrics))
	}
}
