package core

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Report renders a human-readable per-job execution report: planned
// values (reducer count, σ fraction, estimated time) next to measured
// ones (reduce tasks run, simulated makespan, real wall time, shuffle
// bytes, balance ratio), with replan deltas where the runtime feedback
// loop revised a job. The footer separates the MODELED makespan (the
// paper's simulated cluster seconds) from the MEASURED wall time (real
// seconds on this machine) explicitly — the two answer different
// questions and must never be read as one number.
//
// A result built without ExecuteContext (no retained plan) degrades to
// the measured-only columns.
func (r *ExecResult) Report() string {
	var b strings.Builder
	var names []string
	planned := make(map[string]*PlannedJob)
	if r.plan != nil {
		fmt.Fprintf(&b, "execution report: %s (%d jobs", r.plan.Query.Name, len(r.plan.Jobs))
		if r.MaxConcurrentJobs > 1 {
			fmt.Fprintf(&b, ", up to %d concurrent", r.MaxConcurrentJobs)
		}
		b.WriteString(")\n")
		for i := range r.plan.Jobs {
			pj := &r.plan.Jobs[i]
			names = append(names, pj.Name)
			planned[pj.Name] = pj
		}
	} else {
		fmt.Fprintf(&b, "execution report: %d jobs\n", len(r.JobMetrics))
		for name := range r.JobMetrics {
			names = append(names, name)
		}
		sort.Strings(names)
	}
	w := 4
	for _, n := range names {
		if len(n) > w {
			w = len(n)
		}
	}
	fmt.Fprintf(&b, "  %-*s  %-13s  %9s  %9s  %9s  %10s  %8s  %7s\n",
		w, "job", "kind", "plan kR", "ran kR", "model(s)", "wall", "shuffle", "balance")
	for _, name := range names {
		m, ok := r.JobMetrics[name]
		if !ok {
			continue
		}
		kind, planKR, sigma := "?", "?", ""
		if pj := planned[name]; pj != nil {
			kind = pj.Kind.String()
			planKR = fmt.Sprintf("%d", pj.Reducers)
			sigma = fmt.Sprintf("  σ=%.2f", pj.SigmaFrac)
		}
		fmt.Fprintf(&b, "  %-*s  %-13s  %9s  %9d  %9.1f  %10s  %8s  %7.2f%s\n",
			w, name, kind, planKR, m.ReduceTasks, m.Sim.Total,
			fmtDur(m.Wall.Total), fmtBytes(m.ShuffleBytes), m.BalanceRatio, sigma)
		if rj := r.replanJobs[name]; rj != nil && planned[name] != nil {
			pj := planned[name]
			fmt.Fprintf(&b, "  %-*s  replanned: kR %d -> %d, σ %.2f -> %.2f\n",
				w, "", pj.Reducers, rj.Reducers, pj.SigmaFrac, rj.SigmaFrac)
		}
	}
	fmt.Fprintf(&b, "  merge: %d steps, modeled %.1fs, measured %s\n",
		r.MergeCount, r.MergeTime, fmtDur(r.MergeWall))
	fmt.Fprintf(&b, "  total shuffle: %s\n", fmtBytes(r.ShuffleBytes))
	if r.SpillBytes > 0 || r.PeakLiveBytes > 0 {
		fmt.Fprintf(&b, "  spill: %s in %d runs; peak live pair bytes: %s\n",
			fmtBytes(r.SpillBytes), r.SpillRuns, fmtBytes(r.PeakLiveBytes))
	}
	if r.TaskAttempts > 0 || r.TaskFailures > 0 || r.ChecksumFailures > 0 {
		fmt.Fprintf(&b, "  fault tolerance: %d task attempts, %d retried failures, %d speculative (%d won), %d checksum failures (%d failover reads)\n",
			r.TaskAttempts, r.TaskFailures, r.SpeculativeLaunched, r.SpeculativeWins,
			r.ChecksumFailures, r.FailoverReads)
	}
	if len(r.CheckpointRestored) > 0 {
		fmt.Fprintf(&b, "  checkpoint restore: %d jobs skipped (%s)\n",
			len(r.CheckpointRestored), strings.Join(r.CheckpointRestored, ", "))
	}
	if len(r.CheckpointSaved) > 0 {
		fmt.Fprintf(&b, "  checkpoints saved: %s\n", strings.Join(r.CheckpointSaved, ", "))
	}
	fmt.Fprintf(&b, "  makespan (MODELED cluster seconds): %.1f\n", r.Makespan)
	fmt.Fprintf(&b, "  wall time (MEASURED on this machine): %s\n", fmtDur(r.Wall))
	return b.String()
}

// fmtDur prints a duration rounded to a readable precision.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Microsecond).String()
	}
}

// fmtBytes prints modeled byte volumes in human units.
func fmtBytes(n int64) string {
	switch {
	case n >= 1e12:
		return fmt.Sprintf("%.1fTB", float64(n)/1e12)
	case n >= 1e9:
		return fmt.Sprintf("%.1fGB", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.1fMB", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1fkB", float64(n)/1e3)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
