package core

import (
	"math/rand"
	"testing"

	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/relation"
)

// stringRelation draws station-like names from a pool window, so two
// relations built over shifted windows overlap partially: shared names
// take the member fast path, exclusive ones exercise absent-string
// probes against the other side's dictionary. A sprinkle of NULLs
// checks the NullSortKey handling.
func stringRelation(name string, n, lo, hi int, rng *rand.Rand) *relation.Relation {
	r := relation.New(name, relation.MustSchema(
		relation.Column{Name: "s", Kind: relation.KindString},
		relation.Column{Name: "d", Kind: relation.KindInt},
	))
	pool := []string{
		"ant", "bee", "cat", "dog", "eel", "fox", "gnu", "hen",
		"ibis", "jay", "kiwi", "lynx", "mole", "newt", "owl", "pug",
	}
	for k := 0; k < n; k++ {
		var sv relation.Value
		if rng.Intn(12) == 0 {
			sv = relation.Null()
		} else {
			sv = relation.Str(pool[lo+rng.Intn(hi-lo)])
		}
		r.MustAppend(relation.Tuple{sv, relation.Int(int64(rng.Intn(4)))})
	}
	return r
}

// TestJoinEvalStringEquivalence checks the dictionary-keyed string
// fast path against the Naive oracle for every condition kind the
// KeyDict mode compiles — equality, inequality, range and a 3-way
// band — and repeats each case with interning disabled, so the
// KeyDict path and the generic Compare fallback provably agree.
// Flips the global StringInterning, so no t.Parallel.
func TestJoinEvalStringEquivalence(t *testing.T) {
	cases := []struct {
		name  string
		rels  []string
		conds []predicate.Condition
	}{
		{"string-eq", []string{"A", "B"}, []predicate.Condition{
			predicate.C("A", "s", predicate.EQ, "B", "s"),
		}},
		{"string-ne", []string{"A", "B"}, []predicate.Condition{
			predicate.C("A", "s", predicate.NE, "B", "s"),
			predicate.C("A", "d", predicate.EQ, "B", "d"),
		}},
		{"string-range", []string{"A", "B"}, []predicate.Condition{
			predicate.C("A", "s", predicate.LT, "B", "s"),
		}},
		{"string-range-ge", []string{"A", "B"}, []predicate.Condition{
			predicate.C("A", "s", predicate.GE, "B", "s"),
			predicate.C("A", "d", predicate.LE, "B", "d"),
		}},
		// Strings admit no offsets, so a two-sided band anchors two
		// range conditions on one relation's column: A.s ≤ C.s ≤ B.s.
		{"string-band", []string{"A", "B", "C"}, []predicate.Condition{
			predicate.C("A", "s", predicate.LE, "C", "s"),
			predicate.C("B", "s", predicate.GE, "C", "s"),
			predicate.C("A", "d", predicate.EQ, "B", "d"),
		}},
	}
	for _, interned := range []bool{true, false} {
		prev := StringInterning
		StringInterning = interned
		rng := rand.New(rand.NewSource(99))
		a := stringRelation("A", 60, 0, 10, rng)
		b := stringRelation("B", 50, 5, 16, rng) // overlaps A on pool[5:10]
		c := stringRelation("C", 40, 2, 13, rng)
		db := newTestDB(t, a, b, c)
		StringInterning = prev

		ra, _ := db.Relation("A")
		if got := ra.DictOf(0) != nil; got != interned {
			t.Fatalf("interned=%v but dict present=%v", interned, got)
		}
		label := "interned"
		if !interned {
			label = "fallback"
		}
		for _, tc := range cases {
			t.Run(label+"/"+tc.name, func(t *testing.T) {
				q := query.MustNew("q-"+tc.name, tc.rels, tc.conds)
				want, err := Naive(q, db)
				if err != nil {
					t.Fatal(err)
				}
				rels := make([]*relation.Relation, len(tc.rels))
				for i, name := range tc.rels {
					r, err := db.Relation(name)
					if err != nil {
						t.Fatal(err)
					}
					rels[i] = r
				}
				job, _, err := BuildThetaJob("theta-"+tc.name, rels, q.Conditions, 5, 1<<12)
				if err != nil {
					t.Fatal(err)
				}
				got := resultSet(runEvalJob(t, job).Output)
				wantRS := resultSet(want)
				if !wantRS.Equal(got) {
					t.Errorf("result mismatch: got %d rows, want %d\ndiff: %v",
						got.Len(), wantRS.Len(), wantRS.Diff(got, 5))
				}
			})
		}
	}
}

// TestStringConditionsCompileToDictMode asserts the fast path actually
// engages on interned inputs: every string condition of the band case
// classifies KeyDict, none fall back to the generic bucket.
func TestStringConditionsCompileToDictMode(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := stringRelation("A", 30, 0, 10, rng)
	b := stringRelation("B", 30, 5, 16, rng)
	db := newTestDB(t, a, b)
	ra, _ := db.Relation("A")
	rb, _ := db.Relation("B")
	conds := predicate.Conjunction{
		predicate.C("A", "s", predicate.EQ, "B", "s"),
		predicate.C("A", "s", predicate.LT, "B", "s"),
		predicate.C("A", "s", predicate.NE, "B", "s"),
	}
	bound, err := bindConditions(conds, []*relation.Relation{ra, rb})
	if err != nil {
		t.Fatal(err)
	}
	je := newJoinEval([]*relation.Relation{ra, rb}, bound)
	st := je.steps[1]
	if len(st.gen) != 0 {
		t.Fatalf("%d string conditions fell back to the generic path", len(st.gen))
	}
	if len(st.eq) != 1 || st.eq[0].mode != predicate.KeyDict {
		t.Errorf("eq condition mode = %v", st.eq)
	}
	if len(st.rng) != 1 || st.rng[0].mode != predicate.KeyDict {
		t.Errorf("range condition mode = %v", st.rng)
	}
	if len(st.ne) != 1 || st.ne[0].mode != predicate.KeyDict {
		t.Errorf("ne condition mode = %v", st.ne)
	}
}
