package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"runtime"
	"sort"
	"time"

	"repro/internal/mr"
	"repro/internal/obs"
	"repro/internal/predicate"
	"repro/internal/relation"
	"repro/internal/schedule"
	"repro/internal/skew"
)

// ExecResult is the outcome of executing a plan.
type ExecResult struct {
	Output *relation.Relation
	// Makespan is the measured evaluation time: the job set re-timed
	// with simulated durations plus the merge tree (Fig. 4 layout).
	Makespan   float64
	JobMetrics map[string]mr.Metrics
	MergeCount int
	// MergeTime is the merge component of Makespan, charged per
	// MergeAll's actual pair-merge tree (one MergeCost per executed
	// step over that step's real operand sizes).
	MergeTime float64
	// ShuffleBytes totals network copy volume across jobs.
	ShuffleBytes int64
	// SpillBytes and SpillRuns total the REAL bytes and sorted runs the
	// jobs' map tasks wrote to the spill store (0 unless the mr config
	// sets SpillBudgetBytes); PeakLiveBytes is the largest accounted
	// resident pair high-water mark of any job (see
	// mr.Metrics.PeakLiveBytes) — reported next to the modeled spill
	// cost so the real memory bound sits beside the simulated I/O price.
	// All three are worker-count deterministic.
	SpillBytes    int64
	SpillRuns     int
	PeakLiveBytes int64
	// MaxConcurrentJobs is the high-water mark of planned jobs in
	// flight at once: 1 when everything serialised, >= 2 when the
	// placement overlapped independent jobs on the K_P units.
	MaxConcurrentJobs int
	// Replanned lists (sorted) the jobs whose reducer count or skew
	// handling was re-derived at dispatch time from measured upstream
	// statistics by the runtime feedback loop (see replan.go).
	Replanned []string
	// Measured exports the per-intermediate statistics the feedback
	// loop synthesized during this execution (keyed by producing job
	// name): a resident server persists them and warm-starts later
	// plans via Planner.WarmRevise. Nil when nothing was observed.
	Measured map[string]MeasuredStat
	// Fault-tolerance telemetry aggregated across jobs. TaskAttempts
	// totals map+reduce attempts launched (wall-clock dependent — retry
	// and speculation scheduling follow real time — so determinism
	// assertions must ignore it, like Wall); TaskFailures totals the
	// deterministically charged task failures (legacy sim injection plus
	// planned fault-plan kills); SpeculativeLaunched/SpeculativeWins
	// count straggler backups (also wall-clock dependent).
	// ChecksumFailures and FailoverReads count detected spill-frame
	// corruptions and the replica re-reads that absorbed them — both
	// deterministic.
	TaskAttempts        int
	TaskFailures        int
	SpeculativeLaunched int
	SpeculativeWins     int
	ChecksumFailures    int64
	FailoverReads       int64
	// CheckpointSaved lists (sorted) the intermediates persisted via
	// PlanOptions.Checkpoint; CheckpointRestored lists the jobs that
	// were NOT executed because PlanOptions.ResumeFrom found their
	// checkpoint. A restored job's JobMetrics entry is synthetic zero.
	CheckpointSaved    []string
	CheckpointRestored []string
	// Wall is the MEASURED wall-clock duration of the whole execution
	// (jobs + merge) on this machine — the real-time counterpart of the
	// modeled Makespan. Per-job measured breakdowns live in
	// JobMetrics[name].Wall. Wall varies between runs; determinism
	// assertions must ignore it.
	Wall time.Duration
	// MergeWall is the measured wall-clock share of Wall spent in the
	// final merge tree (modeled counterpart: MergeTime).
	MergeWall time.Duration

	// plan is the executed plan, retained so Report can print planned
	// vs. measured values side by side. Nil for hand-built results;
	// Report degrades gracefully.
	plan *Plan
	// replanJobs holds the feedback-revised copy of each replanned job
	// (keyed by name), so Report can print the static → revised deltas.
	replanJobs map[string]*PlannedJob
}

// Execute runs the plan under a background context; see ExecuteContext.
func (pl *Planner) Execute(plan *Plan, db *DB) (*ExecResult, error) {
	return pl.ExecuteContext(context.Background(), plan, db)
}

// execSlot is one dispatchable planned job: its index in plan.Jobs,
// its unit allotment on the K_P semaphore, and the names of the jobs
// that must complete first (schedule dependencies plus any planned job
// whose output this job reads).
type execSlot struct {
	idx   int
	units int
	deps  []string
}

// anyReady reports whether some unstarted placement has every
// dependency completed — i.e. the plan is blocked on pool capacity,
// not on its own jobs.
func anyReady(order []execSlot, started []bool, completed map[string]bool, plan *Plan) bool {
	for _, s := range order {
		if started[s.idx] {
			continue
		}
		ready := true
		for _, d := range s.deps {
			if !completed[d] {
				ready = false
				break
			}
		}
		if ready {
			return true
		}
	}
	return false
}

// effectiveUnits is the job's unit allotment with the shared fallback:
// Units when set, else Reducers, clamped to >= 1. Every execution-side
// consumer (dispatch, config derivation, re-timing) must agree on it.
func (pj *PlannedJob) effectiveUnits() int {
	u := pj.Units
	if u < 1 {
		u = pj.Reducers
	}
	if u < 1 {
		u = 1
	}
	return u
}

// ExecuteContext drives the planned jobs through the schedule
// placement for real, concurrently. Placements are dispatched in
// execution order; each job waits until its dependencies have
// completed and its unit allotment fits in the free capacity of the
// K_P-unit semaphore, then runs on its own goroutine with map/reduce
// slot budgets (and a proportional share of the machine's real
// worker goroutines) taken from its assigned units. The first job
// error cancels the context and aborts the remaining jobs.
//
// Execution is deterministic for a fixed plan: job outputs and metrics
// are collected by plan position, outputs merge in plan order, and
// each mr.Run is itself deterministic — so the result relation and the
// byte-level metrics are identical regardless of how the jobs
// interleave on the wall clock.
func (pl *Planner) ExecuteContext(ctx context.Context, plan *Plan, db *DB) (*ExecResult, error) {
	if len(plan.Jobs) == 0 {
		return nil, fmt.Errorf("core: empty plan")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	jobIdx := make(map[string]int, len(plan.Jobs))
	for i, pj := range plan.Jobs {
		jobIdx[pj.Name] = i
	}
	order, err := execOrder(plan, jobIdx)
	if err != nil {
		return nil, err
	}

	// Observability: the dispatch loop below runs entirely on this
	// goroutine, so one shard serves every plan-level instant/span;
	// each mr.Run picks the Obs up from ctx and shards per worker.
	o := obs.FromContext(ctx)
	execStart := time.Now()
	execShard := o.Shard("core:" + plan.Query.Name)
	execSpan := execShard.Start("execute",
		obs.A("query", plan.Query.Name), obs.A("jobs", len(plan.Jobs)))
	wave := make(map[string]int, len(plan.Jobs))
	if plan.Schedule != nil {
		for _, p := range plan.Schedule.ExecutionOrder() {
			wave[p.TaskID] = p.Wave
		}
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// consumed[name] marks a planned job whose output another planned
	// job reads (a cascade intermediate): the only jobs worth measuring
	// for feedback re-planning, and the outputs that must not re-enter
	// the final merge (their consumer's output subsumes them).
	consumed := make(map[string]bool, len(plan.Jobs))
	for i := range plan.Jobs {
		for _, rel := range plan.Jobs[i].RelOrder {
			if _, ok := jobIdx[rel]; ok {
				consumed[rel] = true
			}
		}
	}
	fb := newFeedback(pl, db)
	replanned := make(map[string]bool)
	replanJobs := make(map[string]*PlannedJob)

	type doneMsg struct {
		idx   int
		units int
		res   *mr.Result
		err   error
	}
	done := make(chan doneMsg)
	results := make([]*mr.Result, len(plan.Jobs))
	completed := make(map[string]bool, len(plan.Jobs))
	started := make([]bool, len(plan.Jobs))
	produced := make(map[string]*relation.Relation, len(plan.Jobs))
	// The unit pool arbitrates the K_P processing units. The default is
	// plan-private (the historical semaphore); a server installs a
	// SharedUnitPool so concurrent plans contend for one machine-wide
	// K_P budget.
	pool := pl.Pool
	if pool == nil {
		pool = newPrivatePool(pl.KP)
	}
	inflight, maxInflight, nDone := 0, 0, 0
	var firstErr error

	// Cascade resume: restore whatever intermediates the checkpoint
	// store still holds for the failed run before dispatching anything,
	// so only un-checkpointed jobs re-execute. A restored job completes
	// instantly with synthetic zero metrics and a nil trace; only
	// consumed intermediates are ever checkpointed, so terminal jobs
	// always re-run.
	var restoredJobs, savedJobs []string
	if pl.Opts.Checkpoint != nil && pl.Opts.ResumeFrom != "" {
		for i := range plan.Jobs {
			pj := &plan.Jobs[i]
			if !consumed[pj.Name] {
				continue
			}
			r, ok, err := pl.Opts.Checkpoint.LoadIntermediate(pl.Opts.ResumeFrom, pj.Name)
			if err != nil {
				return nil, fmt.Errorf("core: restore checkpoint %s/%s: %w", pl.Opts.ResumeFrom, pj.Name, err)
			}
			if !ok {
				continue
			}
			results[i] = &mr.Result{Output: r}
			started[i] = true
			completed[pj.Name] = true
			produced[pj.Name] = r
			restoredJobs = append(restoredJobs, pj.Name)
			nDone++
			execShard.Instant("checkpoint-restore", obs.A("job", pj.Name),
				obs.A("tuples", r.Cardinality()))
		}
	}

	for nDone < len(order) {
		// Fetch the pool's wake-up channel BEFORE scanning: any release
		// by another plan after this point closes exactly this channel,
		// so waiting on it below cannot miss a freed unit. Nil for
		// private pools (capacity only frees via our own done channel).
		freed := pool.Freed()
		if firstErr == nil {
			// Start every dispatchable placement, front to back: deps
			// satisfied and allotment acquired from the pool. A job whose
			// allotment exceeds the pool capacity is clamped, so the
			// cluster-wide semaphore can always eventually admit it.
			for _, s := range order {
				if started[s.idx] {
					continue
				}
				units := minInt(s.units, pool.Capacity())
				ready := true
				for _, d := range s.deps {
					if !completed[d] {
						ready = false
						break
					}
				}
				if !ready {
					continue
				}
				if !pool.TryAcquire(units) {
					continue
				}
				pj := &plan.Jobs[s.idx]
				// Runtime feedback: when the job reads produced
				// intermediates, re-derive its reducer count and skew
				// handling from their measured statistics (the shared
				// plan is never mutated — replan returns a copy).
				runJob := pj
				if !pl.Opts.DisableReplan {
					if rj, ok := fb.replan(pj); ok {
						runJob = rj
						replanned[pj.Name] = true
						replanJobs[pj.Name] = rj
						execShard.Instant("replan", obs.A("job", pj.Name),
							obs.A("reducers", pj.Reducers), obs.A("newReducers", rj.Reducers))
					}
				}
				job, cfg, err := pl.buildPlannedJob(runJob, db, produced)
				if err != nil {
					pool.Release(units)
					firstErr = err
					cancel()
					break
				}
				// Hot-key routing decisions surface on the partitioner's
				// own shard: the lazy grid layout runs under sync.Once
				// inside one mr worker, so a dedicated shard stays
				// single-writer (see skew.EquiPartitioner.Obs).
				if ep, ok := job.Partitioner.(*skew.EquiPartitioner); ok && o.Tracing() {
					ep.Obs = o.Shard("skew:" + pj.Name)
				}
				execShard.Instant("dispatch", obs.A("job", pj.Name),
					obs.A("units", units), obs.A("wave", wave[pj.Name]))
				started[s.idx] = true
				inflight++
				if inflight > maxInflight {
					maxInflight = inflight
				}
				go func(idx, units int, cfg mr.Config, job *mr.Job) {
					res, err := mr.Run(ctx, cfg, pl.Params.Timer(), job)
					done <- doneMsg{idx: idx, units: units, res: res, err: err}
				}(s.idx, units, cfg, job)
			}
		}
		if inflight == 0 {
			if firstErr != nil {
				return nil, firstErr
			}
			// A ready-but-undispatched job with nothing of ours in flight
			// means a shared pool's capacity is held by other plans: wait
			// for any release, then rescan. A private pool can't get here
			// with a ready job (idle capacity always admits the clamped
			// allotment), so freed == nil falls through to the stall error.
			if freed != nil && anyReady(order, started, completed, plan) {
				select {
				case <-freed:
					continue
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			return nil, fmt.Errorf("core: plan %s stalled with %d/%d jobs done (dependency cycle?)",
				plan.Query.Name, nDone, len(order))
		}
		var msg doneMsg
		select {
		case msg = <-done:
		case <-freed:
			// Another plan released units (freed is nil — blocking forever
			// — for private pools): rescan for newly admissible jobs.
			continue
		}
		inflight--
		pool.Release(msg.units)
		if msg.err != nil {
			if firstErr == nil {
				firstErr = msg.err
				cancel()
			}
			continue
		}
		results[msg.idx] = msg.res
		pj := &plan.Jobs[msg.idx]
		completed[pj.Name] = true
		produced[pj.Name] = msg.res.Output
		execShard.Instant("complete", obs.A("job", pj.Name),
			obs.A("shuffleBytes", msg.res.Metrics.ShuffleBytes),
			obs.A("outTuples", msg.res.Output.Cardinality()))
		// Measure only outputs a downstream job will actually read —
		// the statistics pass is O(output) and pointless otherwise.
		if !pl.Opts.DisableReplan && consumed[pj.Name] {
			fb.observe(pj.Name, msg.res)
		}
		// Checkpoint completed intermediates so a later failure in the
		// cascade can resume from here. Save errors degrade gracefully:
		// the run proceeds un-checkpointed (resume just re-executes).
		if pl.Opts.Checkpoint != nil && consumed[pj.Name] {
			if err := pl.Opts.Checkpoint.SaveIntermediate(plan.Query.Name, pj.Name, msg.res.Output); err != nil {
				o.Counter("core/checkpoint_errors").Add(1)
				execShard.Instant("checkpoint-error", obs.A("job", pj.Name), obs.A("error", err.Error()))
			} else {
				savedJobs = append(savedJobs, pj.Name)
				execShard.Instant("checkpoint-save", obs.A("job", pj.Name))
			}
		}
		nDone++
	}
	if firstErr != nil {
		return nil, firstErr
	}

	// Assemble deterministically in plan order.
	res := &ExecResult{
		JobMetrics:        make(map[string]mr.Metrics, len(plan.Jobs)),
		MaxConcurrentJobs: maxInflight,
		Measured:          fb.measured(),
	}
	outputs := make([]*relation.Relation, len(plan.Jobs))
	tasks := make([]schedule.Task, 0, len(plan.Jobs))
	depsOf := make(map[string][]string, len(order))
	for _, s := range order {
		depsOf[plan.Jobs[s.idx].Name] = s.deps
	}
	for i := range plan.Jobs {
		pj := &plan.Jobs[i]
		run := results[i]
		res.JobMetrics[pj.Name] = run.Metrics
		res.ShuffleBytes += run.Metrics.ShuffleBytes
		res.SpillBytes += run.Metrics.SpillBytes
		res.SpillRuns += run.Metrics.SpillRuns
		if run.Metrics.PeakLiveBytes > res.PeakLiveBytes {
			res.PeakLiveBytes = run.Metrics.PeakLiveBytes
		}
		res.TaskAttempts += run.Metrics.MapAttempts + run.Metrics.ReduceAttempts
		res.TaskFailures += run.Metrics.MapFailures + run.Metrics.ReduceFailures
		res.SpeculativeLaunched += run.Metrics.SpeculativeLaunched
		res.SpeculativeWins += run.Metrics.SpeculativeWins
		res.ChecksumFailures += run.Metrics.ChecksumFailures
		res.FailoverReads += run.Metrics.FailoverReads
		outputs[i] = run.Output
		// Measured duration at the allotted units, scaled for the
		// re-scheduling pass.
		units := pj.effectiveUnits()
		dur := run.Metrics.Sim.Total
		prof := make([]float64, pl.KP)
		for k := 1; k <= pl.KP; k++ {
			scale := 1.0
			if k < units {
				scale = float64(units) / float64(k)
			}
			prof[k-1] = dur * scale
		}
		tasks = append(tasks, schedule.Task{ID: pj.Name, Profile: prof, DependsOn: depsOf[pj.Name]})
	}
	sched, err := schedule.Schedule(tasks, pl.KP)
	if err != nil {
		return nil, err
	}
	// Merge the job outputs that are genuine partial results: a
	// consumed intermediate is already folded into its consumer's
	// output — it carries prefixed, not base-relation, rid columns and
	// must not re-enter the merge.
	var mergeInputs []*relation.Relation
	for i := range plan.Jobs {
		if !consumed[plan.Jobs[i].Name] {
			mergeInputs = append(mergeInputs, outputs[i])
		}
	}
	mergeStart := time.Now()
	mergeSpan := execShard.Start("plan-merge", obs.A("inputs", len(mergeInputs)))
	final, steps, err := mergeAll(plan.Query.Name, mergeInputs, execShard)
	if err != nil {
		mergeSpan.End(obs.A("error", err.Error()))
		return nil, err
	}
	mergeSpan.End(obs.A("steps", len(steps)), obs.A("outTuples", final.Cardinality()))
	res.MergeWall = time.Since(mergeStart)
	// Charge the merge off the tree MergeAll actually performed, step
	// by step over the real operand sizes — matching the planner's
	// estimateMergeSteps policy rather than a plan-order chain.
	var mergeTime float64
	for _, st := range steps {
		mergeTime += pl.Params.MergeCost(st.LeftBytes, st.RightBytes)
	}
	for name := range replanned {
		res.Replanned = append(res.Replanned, name)
	}
	sort.Strings(res.Replanned)
	res.CheckpointSaved = savedJobs
	sort.Strings(res.CheckpointSaved)
	res.CheckpointRestored = restoredJobs
	sort.Strings(res.CheckpointRestored)
	res.Output = final
	res.MergeCount = len(steps)
	res.MergeTime = mergeTime
	res.Makespan = sched.Makespan + mergeTime
	res.Wall = time.Since(execStart)
	res.plan = plan
	res.replanJobs = replanJobs
	execSpan.End(obs.A("makespan", res.Makespan), obs.A("outTuples", final.Cardinality()))
	return res, nil
}

// execOrder flattens the plan's schedule into dispatch order. Each
// slot carries its unit allotment and dependency set: the schedule's
// explicit DependsOn plus data dependencies inferred from a job whose
// relation order names another planned job's output (cascades sharing
// intermediate results). Plans without a schedule dispatch in plan
// order with data dependencies only.
func execOrder(plan *Plan, jobIdx map[string]int) ([]execSlot, error) {
	slotFor := func(i int, schedDeps []string) execSlot {
		pj := &plan.Jobs[i]
		units := pj.effectiveUnits()
		deps := append([]string(nil), schedDeps...)
		seen := make(map[string]bool, len(deps))
		for _, d := range deps {
			seen[d] = true
		}
		for _, rel := range pj.RelOrder {
			if j, ok := jobIdx[rel]; ok && j != i && !seen[rel] {
				deps = append(deps, rel)
				seen[rel] = true
			}
		}
		return execSlot{idx: i, units: units, deps: deps}
	}
	if plan.Schedule == nil {
		order := make([]execSlot, 0, len(plan.Jobs))
		for i := range plan.Jobs {
			order = append(order, slotFor(i, nil))
		}
		return order, nil
	}
	placements := plan.Schedule.ExecutionOrder()
	if len(placements) != len(plan.Jobs) {
		return nil, fmt.Errorf("core: schedule places %d tasks for %d planned jobs", len(placements), len(plan.Jobs))
	}
	order := make([]execSlot, 0, len(placements))
	for _, p := range placements {
		i, ok := jobIdx[p.TaskID]
		if !ok {
			return nil, fmt.Errorf("core: schedule places unknown job %q", p.TaskID)
		}
		order = append(order, slotFor(i, p.DependsOn))
	}
	return order, nil
}

// buildPlannedJob materialises one planned job against the database,
// resolving inputs against already-produced intermediate outputs
// first, and derives the job's engine configuration: map/reduce slot
// budgets capped at the unit allotment and a proportional share of the
// real worker goroutines (units/K_P of the machine).
func (pl *Planner) buildPlannedJob(pj *PlannedJob, db *DB, produced map[string]*relation.Relation) (*mr.Job, mr.Config, error) {
	rels := make([]*relation.Relation, len(pj.RelOrder))
	for i, name := range pj.RelOrder {
		if r, ok := produced[name]; ok {
			rels[i] = r
			continue
		}
		r, err := db.Relation(name)
		if err != nil {
			return nil, mr.Config{}, err
		}
		rels[i] = r
	}
	var job *mr.Job
	var err error
	switch pj.Kind {
	case KindHashEqui:
		job, err = BuildHashEquiJobSkew(pj.Name, rels[0], rels[1], pj.Conds, pj.Reducers, pj.Skew)
	case KindShareGrid:
		job, err = BuildShareGridJobSkew(pj.Name, rels, pj.Conds, pj.Reducers, pl.Opts.MaxCells, pj.Skew)
	default:
		job, _, err = BuildThetaJob(pj.Name, rels, pj.Conds, pj.Reducers, pl.Opts.MaxCells)
	}
	if err != nil {
		return nil, mr.Config{}, err
	}
	cfg := pl.Config
	units := pj.effectiveUnits()
	cfg.MapSlots = minInt(cfg.MapSlots, units)
	cfg.ReduceSlots = minInt(cfg.ReduceSlots, units)
	// Real goroutine budget: the job's share of the machine, scaled by
	// its share of the K_P units, so concurrent jobs split the CPUs the
	// way the schedule splits the cluster.
	base := cfg.MaxParallelWorkers
	if base <= 0 {
		base = runtime.NumCPU()
	}
	if pl.KP > 0 && units < pl.KP {
		if w := base * units / pl.KP; w < base {
			base = maxIntc(1, w)
		}
	}
	cfg.MaxParallelWorkers = base
	return job, cfg, nil
}

// JobKind distinguishes the physical operators a planned job can use.
type JobKind uint8

const (
	// KindHilbertTheta is Algorithm 1: the cross-product hyper-cube of
	// the job's relations partitioned by a Hilbert curve; handles any
	// theta conditions.
	KindHilbertTheta JobKind = iota
	// KindHashEqui is the classic repartition equi-join: usable when
	// every condition of the job is an equality between the same two
	// relations — the join key becomes the (composite) partition key
	// with no tuple duplication.
	KindHashEqui
	// KindShareGrid is the Afrati–Ullman share-based one-job multiway
	// join [2] with reducer-side theta residuals: usable when the
	// job's equality conditions connect all of its relations.
	KindShareGrid
)

// String names the kind.
func (k JobKind) String() string {
	switch k {
	case KindHilbertTheta:
		return "hilbert-theta"
	case KindHashEqui:
		return "hash-equi"
	case KindShareGrid:
		return "share-grid"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// OrderRelations produces a join order for the relations of a
// conjunction in which every relation after the first shares at least
// one condition with an earlier relation, so the reduce-side
// backtracking join can prune as it extends. Chain-shaped condition
// sets yield the chain order.
func OrderRelations(conds predicate.Conjunction) ([]string, error) {
	if len(conds) == 0 {
		return nil, fmt.Errorf("core: empty conjunction")
	}
	rels := conds.Relations()
	deg := make(map[string]int, len(rels))
	for _, c := range conds {
		deg[c.Left]++
		deg[c.Right]++
	}
	// Start from a minimum-degree relation (a chain endpoint when the
	// set is a chain), breaking ties lexicographically.
	start := rels[0]
	for _, r := range rels {
		if deg[r] < deg[start] || (deg[r] == deg[start] && r < start) {
			start = r
		}
	}
	order := []string{start}
	placed := map[string]bool{start: true}
	for len(order) < len(rels) {
		// Next: an unplaced relation connected to a placed one,
		// preferring the one with most conditions into the placed set.
		bestRel, bestLinks := "", 0
		for _, r := range rels {
			if placed[r] {
				continue
			}
			links := 0
			for _, c := range conds {
				if other, ok := c.Other(r); ok && placed[other] {
					links++
				}
			}
			if links > bestLinks || (links == bestLinks && links > 0 && (bestRel == "" || r < bestRel)) {
				bestRel, bestLinks = r, links
			}
		}
		if bestRel == "" {
			return nil, fmt.Errorf("core: conjunction %s is not connected", conds)
		}
		order = append(order, bestRel)
		placed[bestRel] = true
	}
	return order, nil
}

// AllEquiSamePair reports whether every condition is an equality
// between the same two relations — the KindHashEqui precondition.
func AllEquiSamePair(conds predicate.Conjunction) bool {
	if len(conds) == 0 {
		return false
	}
	rels := conds.Relations()
	if len(rels) != 2 {
		return false
	}
	for _, c := range conds {
		if !c.Op.IsEquality() {
			return false
		}
	}
	return true
}

// prefixedSchema concatenates relation schemas with "rel." prefixes,
// the output schema of a join job over the ordered relations.
func prefixedSchema(rels []*relation.Relation) *relation.Schema {
	var cols []relation.Column
	for _, r := range rels {
		for i := 0; i < r.Schema.Len(); i++ {
			c := r.Schema.Column(i)
			cols = append(cols, relation.Column{Name: r.Name + "." + c.Name, Kind: c.Kind})
		}
	}
	return relation.MustSchema(cols...)
}

// prefixedDicts concatenates the relations' per-column dictionaries in
// prefixedSchema's column order — the OutputDicts of a join job over
// the ordered relations. Returns nil when no input column has one.
func prefixedDicts(rels []*relation.Relation) []*relation.Dict {
	var out []*relation.Dict
	any := false
	for _, r := range rels {
		for i := 0; i < r.Schema.Len(); i++ {
			d := r.DictOf(i)
			if d != nil {
				any = true
			}
			out = append(out, d)
		}
	}
	if !any {
		return nil
	}
	return out
}

// resolveColumn finds "relName.col" inside r: either r IS relName (a
// base relation, bare column names) or r is a join output carrying
// prefixed columns.
func resolveColumn(r *relation.Relation, relName, col string) (int, bool) {
	if idx, ok := r.Schema.Lookup(relName + "." + col); ok {
		return idx, true
	}
	if r.Name == relName {
		if idx, ok := r.Schema.Lookup(col); ok {
			return idx, true
		}
	}
	return 0, false
}

// boundCond is a condition compiled against the job's relation order:
// hi is the later ordinal (the extension step that can evaluate it),
// lo the earlier.
type boundCond struct {
	cond   predicate.Condition
	lo, hi int
	loCol  int // column ordinal in relation lo
	hiCol  int // column ordinal in relation hi
	// loOff/hiOff are the additive constants on each side, oriented so
	// that the predicate reads: lo.val+loOff op hi.val+hiOff with op
	// oriented lo→hi.
	loOff, hiOff float64
	op           predicate.Op
}

func bindConditions(conds predicate.Conjunction, rels []*relation.Relation) ([]boundCond, error) {
	ordinal := make(map[string]int, len(rels))
	for i, r := range rels {
		ordinal[r.Name] = i
	}
	var out []boundCond
	for _, c := range conds {
		li, ok := ordinal[c.Left]
		if !ok {
			return nil, fmt.Errorf("core: condition %s references %q outside the job", c, c.Left)
		}
		ri, ok := ordinal[c.Right]
		if !ok {
			return nil, fmt.Errorf("core: condition %s references %q outside the job", c, c.Right)
		}
		oriented := c
		lo, hi := li, ri
		if li > ri {
			oriented = c.Reversed()
			lo, hi = ri, li
		}
		loCol, ok := resolveColumn(rels[lo], oriented.Left, oriented.LeftColumn)
		if !ok {
			return nil, fmt.Errorf("core: condition %s: no column %s.%s", c, oriented.Left, oriented.LeftColumn)
		}
		hiCol, ok := resolveColumn(rels[hi], oriented.Right, oriented.RightColumn)
		if !ok {
			return nil, fmt.Errorf("core: condition %s: no column %s.%s", c, oriented.Right, oriented.RightColumn)
		}
		out = append(out, boundCond{
			cond: c, lo: lo, hi: hi,
			loCol: loCol, hiCol: hiCol,
			loOff: oriented.LeftOffset, hiOff: oriented.RightOffset,
			op: oriented.Op,
		})
	}
	return out, nil
}

// ridOrdinal returns the RowIDColumn ordinal for a base or prefixed
// relation.
func ridOrdinal(r *relation.Relation) (int, error) {
	if idx, ok := resolveColumn(r, r.Name, RowIDColumn); ok {
		return idx, nil
	}
	// Join outputs: any column ending in ".rid" — prefer the first.
	for i := 0; i < r.Schema.Len(); i++ {
		name := r.Schema.Column(i).Name
		if len(name) > len(RowIDColumn) && name[len(name)-len(RowIDColumn)-1:] == "."+RowIDColumn {
			return i, nil
		}
	}
	return 0, fmt.Errorf("core: relation %s lacks a %s column", r.Name, RowIDColumn)
}

// BuildThetaJob constructs the Algorithm 1 MapReduce job: every tuple
// is routed to the components its cell coordinate touches; reducers
// backtrack over the per-relation groups, verify the conditions, and
// emit exactly the combinations whose hyper-cube cell falls inside
// their own component.
func BuildThetaJob(name string, rels []*relation.Relation, conds predicate.Conjunction, kr, maxCells int) (*mr.Job, *Partitioner, error) {
	if len(rels) < 2 {
		return nil, nil, fmt.Errorf("core: theta job needs >= 2 relations")
	}
	cards := make([]int, len(rels))
	ridIdx := make([]int, len(rels))
	for i, r := range rels {
		if r.Cardinality() == 0 {
			// An empty input empties the join; return a trivial job.
			return emptyJob(name, rels, kr), nil, nil
		}
		cards[i] = r.Cardinality()
		ri, err := ridOrdinal(r)
		if err != nil {
			return nil, nil, err
		}
		ridIdx[i] = ri
	}
	part, err := NewPartitioner(cards, kr, maxCells)
	if err != nil {
		return nil, nil, err
	}
	bound, err := bindConditions(conds, rels)
	if err != nil {
		return nil, nil, err
	}
	salt := jobSalt(name)

	inputs := make([]mr.Input, len(rels))
	for i := range rels {
		dim := i
		rid := ridIdx[i]
		card := cards[i]
		inputs[i] = mr.Input{
			Rel: rels[i],
			Map: func(t relation.Tuple, emit mr.Emitter) {
				id := tupleGlobalID(t[rid], card, salt, dim)
				for _, comp := range part.ComponentsOf(dim, id) {
					emit(uint64(comp), uint8(dim), t)
				}
			},
		}
	}
	reduce := makeThetaReducer(rels, bound, part, ridIdx, cards, salt)
	return &mr.Job{
		Name:         name,
		Inputs:       inputs,
		Reduce:       reduce,
		NumReducers:  kr,
		Partition:    mr.IdentityPartition,
		OutputName:   name,
		OutputSchema: prefixedSchema(rels),
		OutputDicts:  prefixedDicts(rels),
	}, part, nil
}

func emptyJob(name string, rels []*relation.Relation, kr int) *mr.Job {
	inputs := make([]mr.Input, len(rels))
	for i := range rels {
		inputs[i] = mr.Input{Rel: rels[i], Map: func(t relation.Tuple, emit mr.Emitter) {}}
	}
	return &mr.Job{
		Name:         name,
		Inputs:       inputs,
		Reduce:       func(key uint64, values []mr.Tagged, ctx *mr.ReduceContext) {},
		NumReducers:  kr,
		Partition:    mr.IdentityPartition,
		OutputName:   name,
		OutputSchema: prefixedSchema(rels),
		OutputDicts:  prefixedDicts(rels),
	}
}

// jobSalt derives the ID-randomisation salt from the job name.
func jobSalt(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// tupleGlobalID implements Algorithm 1's "GlobalID ← unified random
// selection": a salted hash of the row ID, uniform over [0, card) and
// identical in map and reduce phases.
func tupleGlobalID(rid relation.Value, card int, salt uint64, dim int) uint64 {
	if card <= 1 {
		return 0
	}
	h := fnv.New64a()
	var buf [10]byte
	v := uint64(rid.Int64())
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	buf[8] = byte(salt)
	buf[9] = byte(dim)
	h.Write(buf[:])
	x := h.Sum64() ^ (salt * 0x9e3779b97f4a7c15)
	return x % uint64(card)
}

// makeThetaReducer compiles the backtracking join executed inside each
// component. Condition evaluation is delegated to the shared indexed
// evaluator (joineval.go): per reduce group, extension steps probe
// hash indexes on equality conditions and intersected sorted-run
// ranges on inequality conditions, comparing normalized int64 sort
// keys instead of boxed values. The final membership check (does the
// combination's cell belong to this component?) guarantees each result
// is emitted by exactly one reducer.
func makeThetaReducer(rels []*relation.Relation, bound []boundCond, part *Partitioner, ridIdx, cards []int, salt uint64) mr.ReduceFunc {
	m := len(rels)
	je := newJoinEval(rels, bound)
	arity := totalArity(rels)
	return func(key uint64, values []mr.Tagged, ctx *mr.ReduceContext) {
		comp := int32(key)
		groups := make([][]relation.Tuple, m)
		coords := make([][]uint32, m)
		for _, v := range values {
			dim := int(v.Tag)
			id := tupleGlobalID(v.Tuple[ridIdx[dim]], cards[dim], salt, dim)
			groups[dim] = append(groups[dim], v.Tuple)
			coords[dim] = append(coords[dim], part.CellCoord(dim, id))
		}
		for _, g := range groups {
			if len(g) == 0 {
				return // some dimension absent: no combination possible
			}
		}
		axes := make([]uint32, m)
		ge := je.newGroupEval(groups)
		ge.run(ctx, func(sel []int32) {
			// Ownership check: emit only when this component owns the
			// combination's cell.
			for i := 0; i < m; i++ {
				axes[i] = coords[i][sel[i]]
			}
			if part.componentOfAxes(axes) != comp {
				return
			}
			out := make(relation.Tuple, 0, arity)
			for i := 0; i < m; i++ {
				out = append(out, groups[i][sel[i]]...)
			}
			ctx.Emit(out)
		})
	}
}

// anchorRange narrows a Compare-sorted candidate value list (each with
// the anchor condition's offset already applied) to the subrange
// satisfying "pv op vals[i]" (op oriented lo→hi). It is the generic-
// path counterpart of keyRange, used when a step's only range handle
// is a non-numeric condition.
func anchorRange(vals []relation.Value, op predicate.Op, pv relation.Value) (int, int) {
	cmpAt := func(i int) int { return relation.Compare(pv, vals[i]) }
	n := len(vals)
	switch op {
	case predicate.LT: // pv < cand: suffix where cand > pv
		return sort.Search(n, func(i int) bool { return cmpAt(i) < 0 }), n
	case predicate.LE:
		return sort.Search(n, func(i int) bool { return cmpAt(i) <= 0 }), n
	case predicate.GT: // pv > cand: prefix where cand < pv
		return 0, sort.Search(n, func(i int) bool { return cmpAt(i) <= 0 })
	case predicate.GE:
		return 0, sort.Search(n, func(i int) bool { return cmpAt(i) < 0 })
	case predicate.EQ:
		lo := sort.Search(n, func(i int) bool { return cmpAt(i) <= 0 })
		hi := sort.Search(n, func(i int) bool { return cmpAt(i) < 0 })
		return lo, hi
	default: // NE is never installed as an anchor
		return 0, n
	}
}

func totalArity(rels []*relation.Relation) int {
	n := 0
	for _, r := range rels {
		n += r.Schema.Len()
	}
	return n
}

// BuildHashEquiJob constructs the classic repartition equi-join for a
// conjunction of equalities between exactly two relations: tuples hash
// on the composite key, no duplication.
func BuildHashEquiJob(name string, left, right *relation.Relation, conds predicate.Conjunction, kr int) (*mr.Job, error) {
	return BuildHashEquiJobSkew(name, left, right, conds, kr, nil)
}

// BuildHashEquiJobSkew is BuildHashEquiJob with optional heavy-hitter
// handling: for each hot join-key value in the plan, the left side's
// tuples split across a Rows sub-grid of reducers by content hash and
// the right side replicates across it (and symmetrically with Cols
// when the right side is hot), per SharesSkew. Reducer-side logic is
// unchanged — each sub-reducer joins its fragment against the
// replicated side, and fragments are disjoint, so the output is the
// same set of tuples with the hot key's work spread evenly.
// Single-condition keys take their splits from the plan's per-column
// reports; composite (multi-condition) keys from its joint HotGroups,
// hashed with the same composite key the map side shuffles on. A nil
// plan reproduces BuildHashEquiJob exactly.
func BuildHashEquiJobSkew(name string, left, right *relation.Relation, conds predicate.Conjunction, kr int, plan *skew.JobPlan) (*mr.Job, error) {
	if !AllEquiSamePair(conds) {
		return nil, fmt.Errorf("core: conditions %s are not a two-relation equi conjunction", conds)
	}
	// Orient every condition left→right.
	type keyCol struct {
		col int
		off float64
	}
	var lCols, rCols []keyCol
	var codeKeys []bool
	var oriented []predicate.Condition
	for _, c := range conds {
		oc := c
		if oc.Left != left.Name {
			oc = c.Reversed()
		}
		lc, ok := resolveColumn(left, oc.Left, oc.LeftColumn)
		if !ok {
			return nil, fmt.Errorf("core: no column %s.%s", oc.Left, oc.LeftColumn)
		}
		rc, ok := resolveColumn(right, oc.Right, oc.RightColumn)
		if !ok {
			return nil, fmt.Errorf("core: no column %s.%s", oc.Right, oc.RightColumn)
		}
		lCols = append(lCols, keyCol{lc, oc.LeftOffset})
		rCols = append(rCols, keyCol{rc, oc.RightOffset})
		// Interned shuffle keys: when both sides of a condition share
		// the same dictionary (self-join aliases do), the 8-byte code
		// replaces the string bytes in the composite hash. Distinct
		// dictionaries assign unrelated codes to equal strings, so the
		// fast path is gated on pointer identity.
		lD, rD := left.DictOf(lc), right.DictOf(rc)
		codeKeys = append(codeKeys, lD != nil && lD == rD)
		oriented = append(oriented, oc)
	}
	// writeKeyPart appends one key column's contribution to the
	// composite FNV hash: the dictionary code when the shared-dict fast
	// path applies and the value is interned, the textual form
	// otherwise. Map-side hashKey and the hot-key groupKey must agree
	// byte-for-byte, so both go through here.
	writeKeyPart := func(h hash.Hash64, v relation.Value, code bool) {
		if code {
			if c, ok := v.DictCode(); ok {
				var cb [8]byte
				binary.LittleEndian.PutUint64(cb[:], uint64(c))
				h.Write(cb[:])
				h.Write([]byte{0x1f})
				return
			}
		}
		h.Write([]byte(v.String()))
		h.Write([]byte{0x1f})
	}
	hashKey := func(t relation.Tuple, cols []keyCol) uint64 {
		h := fnv.New64a()
		for i, kc := range cols {
			writeKeyPart(h, t[kc.col].Add(kc.off), codeKeys[i])
		}
		return h.Sum64()
	}
	var partitioner mr.Partitioner
	if plan != nil {
		// A hot value combination's shuffle key: the same composite
		// hash the map side emits (hashKey over the condition-ordered
		// columns with their offsets applied).
		groupKey := func(vals []relation.Value, cols []keyCol) uint64 {
			h := fnv.New64a()
			for i, kc := range cols {
				writeKeyPart(h, vals[i].Add(kc.off), codeKeys[i])
			}
			return h.Sum64()
		}
		type frac2 struct{ l, r float64 }
		hot := make(map[uint64]frac2)
		if len(oriented) == 1 {
			oc := oriented[0]
			for _, hk := range plan.Hot(oc.Left, oc.LeftColumn) {
				k := groupKey([]relation.Value{hk.Value}, lCols)
				f := hot[k]
				if hk.Frac > f.l {
					f.l = hk.Frac
				}
				hot[k] = f
			}
			for _, hk := range plan.Hot(oc.Right, oc.RightColumn) {
				k := groupKey([]relation.Value{hk.Value}, rCols)
				f := hot[k]
				if hk.Frac > f.r {
					f.r = hk.Frac
				}
				hot[k] = f
			}
		} else {
			// Composite key: joint heavy hitters per side, stored by
			// the planner under the condition-ordered column vectors.
			lNames := make([]string, len(oriented))
			rNames := make([]string, len(oriented))
			for i, oc := range oriented {
				lNames[i] = oc.LeftColumn
				rNames[i] = oc.RightColumn
			}
			for _, g := range plan.HotJoint(left.Name, lNames) {
				if len(g.Values) != len(lCols) {
					continue
				}
				k := groupKey(g.Values, lCols)
				f := hot[k]
				if g.Frac > f.l {
					f.l = g.Frac
				}
				hot[k] = f
			}
			for _, g := range plan.HotJoint(right.Name, rNames) {
				if len(g.Values) != len(rCols) {
					continue
				}
				k := groupKey(g.Values, rCols)
				f := hot[k]
				if g.Frac > f.r {
					f.r = g.Frac
				}
				hot[k] = f
			}
		}
		splits := make(map[uint64]skew.Split)
		for k, f := range hot {
			sp := skew.Split{
				Rows: skew.SplitFactor(f.l, kr, plan.Threshold),
				Cols: skew.SplitFactor(f.r, kr, plan.Threshold),
			}
			// Shrink the larger axis until the sub-grid fits in kr.
			for sp.Cells() > kr {
				if sp.Rows >= sp.Cols && sp.Rows > 1 {
					sp.Rows--
				} else if sp.Cols > 1 {
					sp.Cols--
				} else {
					break
				}
			}
			if sp.Cells() > 1 && sp.Cells() <= kr {
				splits[k] = sp
			}
		}
		if len(splits) > 0 {
			partitioner = &skew.EquiPartitioner{Splits: splits}
		}
	}
	rels := []*relation.Relation{left, right}
	// Reducer-side verification through the shared indexed evaluator:
	// within a reduce group (one composite key hash) the equality
	// conditions compare normalized sort keys — or probe a per-group
	// hash index when hash collisions mix several key values — instead
	// of boxed Compare(Value.Add(...)) per (l, r) pair.
	bound, err := bindConditions(oriented, rels)
	if err != nil {
		return nil, err
	}
	je := newJoinEval(rels, bound)
	return &mr.Job{
		Name: name,
		Inputs: []mr.Input{
			{Rel: left, Map: func(t relation.Tuple, emit mr.Emitter) { emit(hashKey(t, lCols), 0, t) }},
			{Rel: right, Map: func(t relation.Tuple, emit mr.Emitter) { emit(hashKey(t, rCols), 1, t) }},
		},
		Reduce: func(key uint64, values []mr.Tagged, ctx *mr.ReduceContext) {
			var ls, rs []relation.Tuple
			for _, v := range values {
				if v.Tag == 0 {
					ls = append(ls, v.Tuple)
				} else {
					rs = append(rs, v.Tuple)
				}
			}
			if len(ls) == 0 || len(rs) == 0 {
				return
			}
			// Tiny groups (the common case when keys are near-unique)
			// verify pair-by-pair on normalized keys with zero group
			// setup; larger groups get the per-group indexes.
			if len(ls)*len(rs) <= directPairVerify {
				ctx.AddWork(int64(len(ls)) * int64(len(rs)))
				for _, l := range ls {
					for _, r := range rs {
						if je.matchPair(l, r) {
							ctx.Emit(l.Concat(r))
						}
					}
				}
				return
			}
			ge := je.newGroupEval([][]relation.Tuple{ls, rs})
			ge.run(ctx, func(sel []int32) {
				ctx.Emit(ls[sel[0]].Concat(rs[sel[1]]))
			})
		},
		NumReducers:  kr,
		Partitioner:  partitioner,
		OutputName:   name,
		OutputSchema: prefixedSchema(rels),
		OutputDicts:  prefixedDicts(rels),
	}, nil
}
