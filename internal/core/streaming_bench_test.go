package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/predicate"
	"repro/internal/relation"
)

// streamScanRelation is the fixture for the streaming-scan benchmark
// and the chunk/tuple key-equivalence test: ints, floats and an
// interned string column, with occasional NULLs and kind mismatches so
// both the dense and the fallback extraction paths run.
func streamScanRelation(rows int, rng *rand.Rand) *relation.Relation {
	r := relation.New("scan", relation.MustSchema(
		relation.Column{Name: "a", Kind: relation.KindInt},
		relation.Column{Name: "w", Kind: relation.KindFloat},
		relation.Column{Name: "city", Kind: relation.KindString},
	))
	cities := []string{"amsterdam", "beijing", "chicago", "delhi", "edinburgh", "florence"}
	for i := 0; i < rows; i++ {
		a := relation.Int(int64(rng.Intn(1 << 16)))
		if i%97 == 0 {
			a = relation.Null()
		}
		city := relation.Str(cities[rng.Intn(len(cities))])
		if i%53 == 0 {
			city = relation.Null()
		}
		r.MustAppend(relation.Tuple{a, relation.Float(rng.Float64() * 1e4), city})
	}
	relation.InternStrings(r)
	return r
}

// scanExtractors builds the key recipes the scan derives per row: two
// int offsets sharing a column, a float key and a dictionary key —
// the shape of a multi-condition join step.
func scanExtractors(r *relation.Relation) []keyExtractor {
	d := r.DictOf(2)
	return []keyExtractor{
		{mode: predicate.KeyInt, col: 0, off: 0},
		{mode: predicate.KeyInt, col: 0, off: 7},
		{mode: predicate.KeyFloat, col: 1, off: -2.5},
		{mode: predicate.KeyDict, col: 2, dict: d, direct: true},
	}
}

// TestChunkKeyColumnsEquivalence pins the joineval chunk-view path:
// key columns built over chunk views are bit-identical to the boxed
// tuple path, for every extractor mode.
func TestChunkKeyColumnsEquivalence(t *testing.T) {
	r := streamScanRelation(3000, rand.New(rand.NewSource(41)))
	exts := scanExtractors(r)
	fromTuples := buildKeyColumns(exts, r.Tuples)
	fromChunks := buildKeyColumnsChunks(exts, relation.ChunksOf(r, 256))
	if !reflect.DeepEqual(fromTuples, fromChunks) {
		for x := range fromTuples {
			for i := range fromTuples[x] {
				if fromTuples[x][i] != fromChunks[x][i] {
					t.Fatalf("ext %d row %d: tuple key %d != chunk key %d",
						x, i, fromTuples[x][i], fromChunks[x][i])
				}
			}
		}
		t.Fatal("key columns differ in shape")
	}
}

// BenchmarkStreamingScan compares the two data-plane scan layouts on
// an in-memory-sized input: "materialized" derives the step keys row
// by row from boxed tuples (the pre-chunk data plane), "chunked"
// streams the relation as columnar chunks and runs the vectorized
// extractors. The CI benchdiff gate watches this pair — the chunked
// path must stay no slower than the materialized one.
func BenchmarkStreamingScan(b *testing.B) {
	r := streamScanRelation(1<<14, rand.New(rand.NewSource(43)))
	exts := scanExtractors(r)
	n := len(r.Tuples)

	b.Run("materialized", func(b *testing.B) {
		dst := make([]int64, 0, len(exts)*n)
		b.ReportAllocs()
		b.ResetTimer()
		var sink int64
		for i := 0; i < b.N; i++ {
			dst = dst[:0]
			for x := range exts {
				e := &exts[x]
				for _, tp := range r.Tuples {
					dst = append(dst, e.key(tp))
				}
			}
			sink += dst[0]
		}
		benchSink = sink
	})

	// Each variant scans its native layout: the materialized path owns
	// boxed tuples, the chunked path owns columnar chunks (how a
	// block-resident relation arrives from the dfs store).
	chunks := relation.ChunksOf(r, relation.DefaultChunkRows)
	b.Run("chunked", func(b *testing.B) {
		dst := make([]int64, 0, len(exts)*n)
		b.ReportAllocs()
		b.ResetTimer()
		var sink int64
		for i := 0; i < b.N; i++ {
			dst = dst[:0]
			for _, c := range chunks {
				for x := range exts {
					e := &exts[x]
					switch e.mode {
					case predicate.KeyInt:
						dst = c.AppendIntKeys(e.col, e.off, dst)
					case predicate.KeyFloat:
						dst = c.AppendFloatKeys(e.col, e.off, dst)
					default:
						dst = c.AppendDictKeys(e.col, e.dict, e.direct, dst)
					}
				}
			}
			sink += dst[0]
		}
		benchSink = sink
	})
}

var benchSink int64
