package core

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/predicate"
	"repro/internal/relation"
)

// anchorVals builds the Compare-sorted value list anchorRange expects:
// candidate values with the anchor's offset already applied.
func anchorVals(raw []int64, off float64) []relation.Value {
	vals := make([]relation.Value, len(raw))
	for i, v := range raw {
		vals[i] = relation.Int(v).Add(off)
	}
	sort.SliceStable(vals, func(a, b int) bool { return relation.Compare(vals[a], vals[b]) < 0 })
	return vals
}

var rangeOps = []predicate.Op{predicate.LT, predicate.LE, predicate.GT, predicate.GE, predicate.EQ}

// TestAnchorRangeBoundaries pins the subrange semantics of every range
// operator on runs with duplicate anchor values: the returned [lo, hi)
// must hold exactly the candidates satisfying "pv op cand".
func TestAnchorRangeBoundaries(t *testing.T) {
	// Duplicates at both ends and in the middle.
	vals := anchorVals([]int64{1, 1, 3, 3, 3, 5, 7, 7}, 0)
	probes := []int64{0, 1, 2, 3, 4, 5, 6, 7, 8}
	for _, op := range rangeOps {
		for _, p := range probes {
			pv := relation.Int(p)
			lo, hi := anchorRange(vals, op, pv)
			if lo < 0 || hi > len(vals) || lo > hi {
				t.Fatalf("%v probe %d: invalid range [%d, %d)", op, p, lo, hi)
			}
			for i, v := range vals {
				want := op.Eval(relation.Compare(pv, v))
				got := i >= lo && i < hi
				if got != want {
					t.Errorf("%v probe %d: candidate %v at %d: in range %v, satisfies %v",
						op, p, v, i, got, want)
				}
			}
		}
	}
}

// TestAnchorRangeOffsets exercises non-zero additive constants on both
// sides: the candidate run carries its offset baked in (as the
// evaluator pre-applies it), the probe value carries its own.
func TestAnchorRangeOffsets(t *testing.T) {
	raw := []int64{2, 2, 4, 6, 6, 9}
	for _, candOff := range []float64{-3, 0, 2.5} {
		vals := anchorVals(raw, candOff)
		for _, probeOff := range []float64{-1.5, 0, 4} {
			for _, op := range rangeOps {
				for p := int64(-2); p <= 12; p++ {
					pv := relation.Int(p).Add(probeOff)
					lo, hi := anchorRange(vals, op, pv)
					for i, v := range vals {
						want := op.Eval(relation.Compare(pv, v))
						got := i >= lo && i < hi
						if got != want {
							t.Fatalf("%v probe %d%+g candOff %+g: candidate %v at %d: in range %v, satisfies %v",
								op, p, probeOff, candOff, v, i, got, want)
						}
					}
				}
			}
		}
	}
}

// TestAnchorRangeBruteForce cross-checks random runs (with heavy
// duplication) against a brute-force filter for every operator.
func TestAnchorRangeBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(40) // includes the empty run
		raw := make([]int64, n)
		for i := range raw {
			raw[i] = int64(rng.Intn(10))
		}
		off := []float64{0, 1, -2, 0.5}[rng.Intn(4)]
		vals := anchorVals(raw, off)
		pv := relation.Int(int64(rng.Intn(12) - 1))
		for _, op := range rangeOps {
			lo, hi := anchorRange(vals, op, pv)
			var want []int
			for i, v := range vals {
				if op.Eval(relation.Compare(pv, v)) {
					want = append(want, i)
				}
			}
			if len(want) != hi-lo {
				t.Fatalf("trial %d op %v: range [%d,%d) has %d candidates, brute force %d",
					trial, op, lo, hi, hi-lo, len(want))
			}
			for k, i := range want {
				if i != lo+k {
					t.Fatalf("trial %d op %v: satisfying candidates not contiguous at %d", trial, op, i)
				}
			}
		}
	}
}

// TestAnchorRangeNEFullRange documents the NE fallback: never used as
// an anchor, it returns the full run.
func TestAnchorRangeNEFullRange(t *testing.T) {
	vals := anchorVals([]int64{1, 2, 3}, 0)
	if lo, hi := anchorRange(vals, predicate.NE, relation.Int(2)); lo != 0 || hi != len(vals) {
		t.Errorf("NE anchor returned [%d, %d), want full range", lo, hi)
	}
}
