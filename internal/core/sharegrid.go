package core

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"repro/internal/mr"
	"repro/internal/predicate"
	"repro/internal/relation"
	"repro/internal/skew"
)

// Share-grid evaluation: the Afrati–Ullman one-job multiway join [2],
// generalised to carry residual theta conditions. The paper cites [2]
// as the equi-join special case its framework subsumes: when a
// candidate's EQUALITY conditions connect all of its relations, the
// reducers can form a grid over the equi-attribute classes — each
// class gets a "share", tuples hash their known classes and replicate
// only over unknown ones — and any remaining inequality conditions are
// verified reducer-side. For fully key-linked candidates (e.g. TPC-H
// Q17's partkey class spanning lineitem, part and l2) the replication
// factor is 1: the job shuffles exactly its input, the decisive
// advantage over cube partitioning for equi-connected queries.

// attrClass is one equivalence class of (relation, column) pairs under
// the job's zero-offset equality conditions; one grid dimension.
type attrClass struct {
	members map[string]int // relation → column ordinal (first seen)
	share   int
}

// ShareGridApplicable reports whether the conjunction's equality
// conditions (with zero offsets) connect every relation it references.
func ShareGridApplicable(conds predicate.Conjunction) bool {
	rels := conds.Relations()
	if len(rels) < 2 {
		return false
	}
	parent := make(map[string]string, len(rels))
	var find func(string) string
	find = func(x string) string {
		if parent[x] == x {
			return x
		}
		parent[x] = find(parent[x])
		return parent[x]
	}
	for _, r := range rels {
		parent[r] = r
	}
	for _, c := range conds {
		if c.Op == predicate.EQ && c.LeftOffset == 0 && c.RightOffset == 0 {
			parent[find(c.Left)] = find(c.Right)
		}
	}
	root := find(rels[0])
	for _, r := range rels[1:] {
		if find(r) != root {
			return false
		}
	}
	return true
}

// buildAttrClasses unions (relation, column) pairs linked by eligible
// equality conditions, resolving columns against the job's relations.
func buildAttrClasses(conds predicate.Conjunction, rels []*relation.Relation) ([]*attrClass, error) {
	ordinal := make(map[string]int, len(rels))
	for i, r := range rels {
		ordinal[r.Name] = i
	}
	type rc struct {
		rel string
		col int
	}
	parent := make(map[rc]rc)
	var find func(rc) rc
	find = func(x rc) rc {
		if parent[x] == x {
			return x
		}
		r := find(parent[x])
		parent[x] = r
		return r
	}
	add := func(x rc) {
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
	}
	for _, c := range conds {
		if c.Op != predicate.EQ || c.LeftOffset != 0 || c.RightOffset != 0 {
			continue
		}
		li, ok := ordinal[c.Left]
		if !ok {
			return nil, fmt.Errorf("core: share grid: unknown relation %s", c.Left)
		}
		ri, ok := ordinal[c.Right]
		if !ok {
			return nil, fmt.Errorf("core: share grid: unknown relation %s", c.Right)
		}
		lc, ok := resolveColumn(rels[li], c.Left, c.LeftColumn)
		if !ok {
			return nil, fmt.Errorf("core: share grid: no column %s.%s", c.Left, c.LeftColumn)
		}
		rcIdx, ok := resolveColumn(rels[ri], c.Right, c.RightColumn)
		if !ok {
			return nil, fmt.Errorf("core: share grid: no column %s.%s", c.Right, c.RightColumn)
		}
		a, b := rc{c.Left, lc}, rc{c.Right, rcIdx}
		add(a)
		add(b)
		parent[find(a)] = find(b)
	}
	groups := make(map[rc][]rc)
	for x := range parent {
		r := find(x)
		groups[r] = append(groups[r], x)
	}
	var classes []*attrClass
	var roots []rc
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool {
		if roots[i].rel != roots[j].rel {
			return roots[i].rel < roots[j].rel
		}
		return roots[i].col < roots[j].col
	})
	for _, r := range roots {
		cl := &attrClass{members: make(map[string]int)}
		members := groups[r]
		sort.Slice(members, func(i, j int) bool {
			if members[i].rel != members[j].rel {
				return members[i].rel < members[j].rel
			}
			return members[i].col < members[j].col
		})
		for _, m := range members {
			if _, seen := cl.members[m.rel]; !seen {
				cl.members[m.rel] = m.col
			}
		}
		if len(cl.members) >= 2 {
			classes = append(classes, cl)
		}
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("core: share grid: no multi-relation equality class")
	}
	return classes, nil
}

// assignShares distributes the reducer budget over grid dimensions.
// A class known by every relation of the job is "free": growing its
// share adds parallelism without replicating anyone, so one free
// dimension absorbs the entire remaining budget exactly. Replication-
// carrying dimensions grow by greedy factor steps, charging the
// Σ_r size_r · Π_{d unknown to r} s_d communication of [2]'s
// Lagrangean solution.
func assignShares(classes []*attrClass, rels []*relation.Relation, kr int) {
	for _, cl := range classes {
		cl.share = 1
	}
	sizes := make(map[string]float64, len(rels))
	for _, r := range rels {
		sizes[r.Name] = math.Max(1, float64(r.ModeledSize()))
	}
	replication := func() float64 {
		total := 0.0
		for _, r := range rels {
			rep := 1.0
			for _, cl := range classes {
				if _, knows := cl.members[r.Name]; !knows {
					rep *= float64(cl.share)
				}
			}
			total += sizes[r.Name] * rep
		}
		return total
	}
	freeDim := -1
	for d, cl := range classes {
		if len(cl.members) == len(rels) {
			freeDim = d
			break
		}
	}
	// Grow replication-carrying dimensions while the added parallelism
	// outweighs the extra communication.
	for {
		prod := 1
		for _, cl := range classes {
			prod *= cl.share
		}
		bestDim, bestFactor := -1, 0
		bestCost := math.Inf(1)
		for d, cl := range classes {
			if d == freeDim {
				continue
			}
			for _, f := range []int{2, 3} {
				if prod*f > kr {
					continue
				}
				cl.share *= f
				cost := replication() / float64(f)
				cl.share /= f
				if cost < bestCost {
					bestCost, bestDim, bestFactor = cost, d, f
				}
			}
		}
		if bestDim < 0 || bestCost >= replication() {
			break
		}
		classes[bestDim].share *= bestFactor
	}
	// The free dimension absorbs the exact remaining budget.
	if freeDim >= 0 {
		prod := 1
		for d, cl := range classes {
			if d != freeDim {
				prod *= cl.share
			}
		}
		if fill := kr / prod; fill > 1 {
			classes[freeDim].share = fill
		}
	}
}

// ReplicationFactor predicts the share-grid duplication for the
// planner's α estimate: the weighted mean over relations of the
// product of unknown-dimension shares, given kr reducers.
func ReplicationFactor(conds predicate.Conjunction, rels []*relation.Relation, kr int) (float64, error) {
	classes, err := buildAttrClasses(conds, rels)
	if err != nil {
		return 0, err
	}
	assignShares(classes, rels, kr)
	var total, weighted float64
	for _, r := range rels {
		size := math.Max(1, float64(r.ModeledSize()))
		rep := 1.0
		for _, cl := range classes {
			if _, knows := cl.members[r.Name]; !knows {
				rep *= float64(cl.share)
			}
		}
		total += size
		weighted += size * rep
	}
	return weighted / total, nil
}

// ShareGridSize returns the reducer-grid cardinality (product of
// assigned shares) the share-grid operator will actually use when
// granted kr reducers — the planner estimates with this effective
// parallelism rather than the raw allotment.
func ShareGridSize(conds predicate.Conjunction, rels []*relation.Relation, kr int) (int, error) {
	classes, err := buildAttrClasses(conds, rels)
	if err != nil {
		return 0, err
	}
	assignShares(classes, rels, kr)
	grid := 1
	for _, cl := range classes {
		grid *= cl.share
	}
	return grid, nil
}

// slotRange is the contiguous run of slots a value occupies along one
// grid dimension: width 1 for cold values, the hot value's dedicated
// sub-range otherwise.
type slotRange struct{ lo, w int }

// dimSlotter assigns grid-dimension slots to attribute values. Without
// hot keys every value hashes uniformly over [0, share) — the plain
// share-grid assignment. With hot keys, each heavy hitter owns a
// dedicated sub-range of slots sized to its frequency ("finer cells"
// for the hot row): the split relation's tuples pin one slot of the
// range by content hash, the other member relations replicate across
// it, and cold values hash into the remaining slots.
type dimSlotter struct {
	dim   int
	share int
	hot   map[string]slotRange
	cold  slotRange // remaining slots for non-hot values
	split int       // relation ordinal whose tuples pin within a hot range; -1 when no hot values
}

// rangeOf returns the slot range of value v on this dimension.
func (ds *dimSlotter) rangeOf(v relation.Value) slotRange {
	if r, ok := ds.hot[v.String()]; ok {
		return r
	}
	h := fnv.New64a()
	h.Write([]byte{byte(ds.dim)})
	h.Write([]byte(v.String()))
	return slotRange{ds.cold.lo + int(h.Sum64()%uint64(ds.cold.w)), 1}
}

// buildSlotter derives the slot assignment of one dimension from the
// job's hot-key plan: hot values (frequency × share beyond the plan
// threshold) receive sub-ranges proportional to their frequency, at
// least one slot always remaining for cold values.
func buildSlotter(dim int, cl *attrClass, rels []*relation.Relation, ordinal map[string]int, plan *skew.JobPlan) *dimSlotter {
	ds := &dimSlotter{dim: dim, share: cl.share, cold: slotRange{0, cl.share}, split: -1}
	if plan == nil || cl.share < 2 {
		return ds
	}
	type hotv struct {
		key  string
		frac float64
	}
	agg := make(map[string]float64)
	for relName, col := range cl.members {
		i, ok := ordinal[relName]
		if !ok {
			continue
		}
		colName := rels[i].Schema.Column(col).Name
		for _, hk := range plan.Hot(relName, colName) {
			k := hk.Value.String()
			if hk.Frac > agg[k] {
				agg[k] = hk.Frac
			}
		}
	}
	var hots []hotv
	for k, f := range agg {
		if f*float64(cl.share) > plan.Threshold {
			hots = append(hots, hotv{key: k, frac: f})
		}
	}
	if len(hots) == 0 {
		return ds
	}
	sort.Slice(hots, func(i, j int) bool {
		if hots[i].frac != hots[j].frac {
			return hots[i].frac > hots[j].frac
		}
		return hots[i].key < hots[j].key
	})
	budget := cl.share - 1 // at least one cold slot
	used := 0
	ds.hot = make(map[string]slotRange, len(hots))
	for _, hv := range hots {
		w := int(math.Ceil(hv.frac * float64(cl.share)))
		if w > budget-used {
			w = budget - used
		}
		if w < 1 {
			break
		}
		ds.hot[hv.key] = slotRange{used, w}
		used += w
	}
	if len(ds.hot) == 0 {
		ds.hot = nil
		return ds
	}
	ds.cold = slotRange{used, cl.share - used}
	// Split relation: the largest member carries the dominant share of
	// a hot row's tuples, so its side fragments and the smaller member
	// sides replicate (ties broken by name for determinism).
	for relName := range cl.members {
		i, ok := ordinal[relName]
		if !ok {
			continue
		}
		if ds.split < 0 ||
			rels[i].Cardinality() > rels[ds.split].Cardinality() ||
			(rels[i].Cardinality() == rels[ds.split].Cardinality() && rels[i].Name < rels[ds.split].Name) {
			ds.split = i
		}
	}
	return ds
}

// BuildShareGridJob constructs the one-job share-based multiway join
// for an equi-connected conjunction with optional theta residuals.
func BuildShareGridJob(name string, rels []*relation.Relation, conds predicate.Conjunction, kr, maxCells int) (*mr.Job, error) {
	return BuildShareGridJobSkew(name, rels, conds, kr, maxCells, nil)
}

// BuildShareGridJobSkew is BuildShareGridJob with optional heavy-hitter
// handling: grid dimensions whose attribute classes carry hot keys give
// those keys dedicated slot sub-ranges ("hot rows get finer cells") —
// the largest member relation's hot tuples spread over the sub-range by
// content hash while smaller members replicate across it, so matching
// combinations still meet in exactly one cell and the cell-ownership
// check keeps the output duplicate-free. A nil plan reproduces
// BuildShareGridJob exactly.
func BuildShareGridJobSkew(name string, rels []*relation.Relation, conds predicate.Conjunction, kr, _ int, plan *skew.JobPlan) (*mr.Job, error) {
	if len(rels) < 2 {
		return nil, fmt.Errorf("core: share grid needs >= 2 relations")
	}
	if !ShareGridApplicable(conds) {
		return nil, fmt.Errorf("core: conditions %s are not equi-connected", conds)
	}
	for _, r := range rels {
		if r.Cardinality() == 0 {
			return emptyJob(name, rels, kr), nil
		}
	}
	classes, err := buildAttrClasses(conds, rels)
	if err != nil {
		return nil, err
	}
	assignShares(classes, rels, kr)
	nDims := len(classes)
	strides := make([]int, nDims)
	grid := 1
	for d := nDims - 1; d >= 0; d-- {
		strides[d] = grid
		grid *= classes[d].share
	}
	bound, err := bindConditions(conds, rels)
	if err != nil {
		return nil, err
	}
	m := len(rels)
	ordinal := make(map[string]int, m)
	for i, r := range rels {
		ordinal[r.Name] = i
	}
	je := newJoinEval(rels, bound)
	slotters := make([]*dimSlotter, nDims)
	for d, cl := range classes {
		slotters[d] = buildSlotter(d, cl, rels, ordinal, plan)
	}
	// Per relation: which dims it knows (column ordinal per dim).
	knownCol := make([][]int, m) // knownCol[rel][dim] = col or -1
	for i, r := range rels {
		knownCol[i] = make([]int, nDims)
		for d, cl := range classes {
			if col, ok := cl.members[r.Name]; ok {
				knownCol[i][d] = col
			} else {
				knownCol[i][d] = -1
			}
		}
	}
	inputs := make([]mr.Input, m)
	for i := range rels {
		i := i
		inputs[i] = mr.Input{
			Rel: rels[i],
			Map: func(t relation.Tuple, emit mr.Emitter) {
				emitGrid(t, uint8(i), i, knownCol[i], slotters, strides, 0, 0, emit)
			},
		}
	}
	// canonicalCell computes the owning cell of a full combination:
	// every dim's class has ≥2 member relations in the job, so some
	// member of the combination knows each dim.
	dimOwner := make([]int, nDims)  // relation ordinal knowing dim
	dimOwnCol := make([]int, nDims) // its column
	for d, cl := range classes {
		found := false
		for i, r := range rels {
			if col, ok := cl.members[r.Name]; ok {
				dimOwner[d], dimOwnCol[d] = i, col
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("core: share grid: dimension %d has no owner", d)
		}
	}
	arity := totalArity(rels)
	reduce := func(key uint64, values []mr.Tagged, ctx *mr.ReduceContext) {
		groups := make([][]relation.Tuple, m)
		for _, v := range values {
			groups[v.Tag] = append(groups[v.Tag], v.Tuple)
		}
		for _, g := range groups {
			if len(g) == 0 {
				return
			}
		}
		// Backtracking via the shared indexed evaluator (joineval.go):
		// equality conditions — the grid's defining predicates — probe
		// per-group hash indexes instead of scanning the cross product.
		ge := je.newGroupEval(groups)
		ge.run(ctx, func(sel []int32) {
			// The verified equality conditions guarantee every member
			// of a dim's class carries the same value, so any owner is
			// representative; for a hot value the split relation's
			// tuple pins the slot within the sub-range, exactly as its
			// map side routed it.
			cell := 0
			for d := range slotters {
				ds := slotters[d]
				sr := ds.rangeOf(groups[dimOwner[d]][sel[dimOwner[d]]][dimOwnCol[d]])
				c := sr.lo
				if sr.w > 1 {
					c = sr.lo + int(skew.TupleHash(groups[ds.split][sel[ds.split]])%uint64(sr.w))
				}
				cell += c * strides[d]
			}
			if uint64(cell) != key {
				return // another reducer owns this combination
			}
			out := make(relation.Tuple, 0, arity)
			for i, g := range groups {
				out = append(out, g[sel[i]]...)
			}
			ctx.Emit(out)
		})
	}
	return &mr.Job{
		Name:         name,
		Inputs:       inputs,
		Reduce:       reduce,
		NumReducers:  grid,
		Partition:    mr.IdentityPartition,
		OutputName:   name,
		OutputSchema: prefixedSchema(rels),
		OutputDicts:  prefixedDicts(rels),
	}, nil
}

// emitGrid recursively enumerates the reducer cells a tuple belongs
// to: known dimensions pin a slot (or, for a hot value, pin within /
// replicate across its sub-range depending on whether this relation is
// the dimension's split side), unknown dimensions are swept.
func emitGrid(t relation.Tuple, tag uint8, relOrd int, known []int, slotters []*dimSlotter, strides []int,
	dim, acc int, emit mr.Emitter) {
	if dim == len(slotters) {
		emit(uint64(acc), tag, t)
		return
	}
	ds := slotters[dim]
	col := known[dim]
	if col < 0 {
		for c := 0; c < ds.share; c++ {
			emitGrid(t, tag, relOrd, known, slotters, strides, dim+1, acc+c*strides[dim], emit)
		}
		return
	}
	sr := ds.rangeOf(t[col])
	if sr.w <= 1 {
		emitGrid(t, tag, relOrd, known, slotters, strides, dim+1, acc+sr.lo*strides[dim], emit)
		return
	}
	if relOrd == ds.split {
		c := sr.lo + int(skew.TupleHash(t)%uint64(sr.w))
		emitGrid(t, tag, relOrd, known, slotters, strides, dim+1, acc+c*strides[dim], emit)
		return
	}
	for c := sr.lo; c < sr.lo+sr.w; c++ {
		emitGrid(t, tag, relOrd, known, slotters, strides, dim+1, acc+c*strides[dim], emit)
	}
}
