package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dfs"
	"repro/internal/mr"
	"repro/internal/predicate"
	"repro/internal/query"
)

// checkpointCascadePlan builds the two-job cascade of the
// dependent-jobs gate test: casc-j2 joins casc-j1's output back
// against B.
func checkpointCascadePlan(t *testing.T) (*Plan, *DB) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	a := randRelation("A", 40, 12, rng)
	b := randRelation("B", 30, 12, rng)
	db := newTestDB(t, a, b)
	q := query.MustNew("casc", []string{"A", "B"}, []predicate.Condition{
		predicate.C("A", "a", predicate.LT, "B", "a"),
	})
	return &Plan{
		Query: q,
		Jobs: []PlannedJob{
			{Name: "casc-j1", Conds: predicate.Conjunction{q.Conditions[0]}, RelOrder: []string{"A", "B"},
				Kind: KindHilbertTheta, Reducers: 2, Units: 8},
			{Name: "casc-j2", Conds: predicate.Conjunction{
				predicate.C("casc-j1", "A.a", predicate.LE, "B", "b"),
			}, RelOrder: []string{"casc-j1", "B"}, Kind: KindHilbertTheta, Reducers: 2, Units: 8},
		},
	}, db
}

// TestCheckpointResume is the cascade-recovery contract: a plan that
// fails partway resumes re-executing ONLY the jobs whose intermediates
// were not checkpointed, and the resumed output matches a clean run.
func TestCheckpointResume(t *testing.T) {
	plan, db := checkpointCascadePlan(t)
	clean, err := testPlanner(8).Execute(plan, db)
	if err != nil {
		t.Fatal(err)
	}

	store, err := dfs.NewBlockStore("", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	cp := dfs.NewCheckpointStore(store)

	// Run 1: exhaust casc-j2's retries (kill every attempt of reduce
	// task 0). casc-j1 completes and checkpoints; the plan fails.
	pl := testPlanner(8)
	pl.Opts.Checkpoint = cp
	pl.Config.Faults = &mr.FaultPlan{Faults: []mr.Fault{
		{Kind: mr.FaultKillReduce, Job: "casc-j2", Task: 0, Attempt: -1},
	}}
	_, err = pl.Execute(plan, db)
	var te *mr.TaskError
	if err == nil || !errors.As(err, &te) {
		t.Fatalf("faulted run error = %v, want TaskError", err)
	}
	if r, ok, err := cp.LoadIntermediate("casc", "casc-j1"); err != nil || !ok || r.Cardinality() == 0 {
		t.Fatalf("casc-j1 not checkpointed before the failure: ok=%v err=%v", ok, err)
	}

	// Run 2: resume. casc-j1 must restore (zero synthetic metrics, no
	// re-execution); casc-j2 must actually run; output matches clean.
	pl2 := testPlanner(8)
	pl2.Opts.Checkpoint = cp
	pl2.Opts.ResumeFrom = "casc"
	res, err := pl2.Execute(plan, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CheckpointRestored) != 1 || res.CheckpointRestored[0] != "casc-j1" {
		t.Fatalf("CheckpointRestored = %v, want [casc-j1]", res.CheckpointRestored)
	}
	if m := res.JobMetrics["casc-j1"]; m.MapTasks != 0 || m.ReduceTasks != 0 {
		t.Errorf("restored job re-executed: %+v", m)
	}
	if m := res.JobMetrics["casc-j2"]; m.MapTasks == 0 {
		t.Errorf("un-checkpointed job did not run: %+v", m)
	}
	if !resultSet(clean.Output).Equal(resultSet(res.Output)) {
		t.Error("resumed output differs from clean run")
	}
	if rep := res.Report(); !strings.Contains(rep, "checkpoint restore: 1 jobs skipped (casc-j1)") {
		t.Errorf("report missing restore line:\n%s", rep)
	}
}

// TestExecutePlanWithFaultPlan: a retryable fault plan threaded through
// the planner config (kills, corruption, stragglers across the
// cascade's jobs) never changes the plan's output, and the fault
// telemetry aggregates into ExecResult and its Report.
func TestExecutePlanWithFaultPlan(t *testing.T) {
	plan, db := checkpointCascadePlan(t)
	clean, err := testPlanner(8).Execute(plan, db)
	if err != nil {
		t.Fatal(err)
	}

	pl := testPlanner(8)
	pl.Config.SpillBudgetBytes = 1 << 10
	faults, err := mr.ParseFaultPlan("seed=3,map-kills=1,reduce-kills=1,corrupt-frames=1,stragglers=1,delay=5ms")
	if err != nil {
		t.Fatal(err)
	}
	pl.Config.Faults = faults
	res, err := pl.Execute(plan, db)
	if err != nil {
		t.Fatal(err)
	}
	if !resultSet(clean.Output).Equal(resultSet(res.Output)) {
		t.Error("fault plan changed the plan output")
	}
	if res.TaskFailures == 0 {
		t.Error("planned kills not charged into TaskFailures")
	}
	if res.ChecksumFailures != 2 || res.FailoverReads != 2 {
		// One corruption consumed once per job (each job resolves its
		// own injector from the shared plan).
		t.Errorf("corruption telemetry: checksum=%d failover=%d, want 2/2",
			res.ChecksumFailures, res.FailoverReads)
	}
	if rep := res.Report(); !strings.Contains(rep, "fault tolerance:") {
		t.Errorf("report missing fault line:\n%s", rep)
	}
}
