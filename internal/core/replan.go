package core

import (
	"math/rand"

	"repro/internal/mr"
	"repro/internal/relation"
	"repro/internal/skew"
)

// Runtime feedback re-planning. The static plan derives every job's
// reducer count, σ estimate and hot-key handling from pre-execution
// catalog statistics — which a cascade job consuming a *produced*
// intermediate does not even have: its input exists only once the
// upstream job finishes, and a Zipf-hot join key is typically
// amplified (quadratically, for an equi join) in the intermediate.
// ExecuteContext therefore runs the skew sketch over every completed
// job's output, installs the synthesized statistics in a
// per-execution overlay, and re-derives downstream jobs' parameters
// from measured reality at dispatch time.
//
// Determinism: a job's replan reads only the overlay entries of its
// own inputs — which have necessarily completed before it dispatches,
// regardless of how the schedule interleaves on the wall clock — and
// every synthesis step is seeded from the producing job's name, so
// the revised plan (and hence the output and metrics) is identical
// for any worker count.

// replanMinThreshold floors the escalated hot-key threshold: below
// ~1 the trigger would split near-uniform keys and the SigmaFrac cap
// would lose meaning.
const replanMinThreshold = 1.05

// feedbackStatsSample bounds the rows Analyze retains when
// synthesizing an intermediate's statistics. Matching the skew
// package's exact-pass threshold means every intermediate at or below
// it is counted exactly (the retained "sample" is the whole relation)
// rather than sketched.
const feedbackStatsSample = 4096

// MeasuredStat is one produced intermediate's measured execution
// statistics in portable form: the synthesized table statistics (with
// skew annotations), the observed reducer balance of the job that
// produced it, and the relation's volume multiplier. ExecResult
// exports these so a resident server can persist them across
// executions and warm-start later plans (Planner.WarmRevise).
type MeasuredStat struct {
	Stats            *relation.TableStats
	BalanceRatio     float64
	VolumeMultiplier float64
}

// feedback accumulates the measured statistics of completed jobs: the
// per-execution stats overlay plus each job's observed reducer
// balance and volume multiplier, consumed by replan when a downstream
// job dispatches.
type feedback struct {
	pl    *Planner
	db    *DB
	stats map[string]*relation.TableStats
	ratio map[string]float64
	mult  map[string]float64
}

func newFeedback(pl *Planner, db *DB) *feedback {
	return &feedback{
		pl:    pl,
		db:    db,
		stats: make(map[string]*relation.TableStats),
		ratio: make(map[string]float64),
		mult:  make(map[string]float64),
	}
}

// seed pre-loads the feedback with statistics measured by earlier
// executions, so replan can revise jobs statically — before anything
// has run — exactly as the dispatch-time loop would have.
func (fb *feedback) seed(warm map[string]MeasuredStat) {
	for name, m := range warm {
		if m.Stats == nil {
			continue
		}
		fb.stats[name] = m.Stats
		fb.ratio[name] = m.BalanceRatio
		fb.mult[name] = m.VolumeMultiplier
	}
}

// measured exports the accumulated per-job statistics; nil when this
// execution observed nothing (no cascades, or replan disabled).
func (fb *feedback) measured() map[string]MeasuredStat {
	if len(fb.stats) == 0 {
		return nil
	}
	out := make(map[string]MeasuredStat, len(fb.stats))
	for name, ts := range fb.stats {
		out[name] = MeasuredStat{
			Stats:            ts,
			BalanceRatio:     fb.ratio[name],
			VolumeMultiplier: fb.mult[name],
		}
	}
	return out
}

// observe ingests a completed job: the statistics pass and the skew
// sketch run over its output relation (exactly, when it is at most
// skew.Options.ExactThreshold tuples) and the synthesized TableStats
// is installed in the overlay under the job's name. The sampling rng
// is seeded from the job name, so the overlay's content is a pure
// function of the job's (deterministic) output.
func (fb *feedback) observe(jobName string, res *mr.Result) {
	out := res.Output
	rng := rand.New(rand.NewSource(int64(jobSalt(jobName))))
	ts := relation.Analyze(out, feedbackStatsSample, rng)
	skew.AnnotateTable(ts, out, skew.DefaultOptions())
	fb.stats[jobName] = ts
	fb.ratio[jobName] = res.Metrics.BalanceRatio
	fb.mult[jobName] = out.VolumeMultiplier
}

// replan re-derives a dispatched job's reducer count, σ model and
// hot-key handling from measured statistics when any of its inputs is
// a produced intermediate. It returns a revised copy — the shared
// plan is never mutated — and reports whether anything was
// re-derived. Failures degrade gracefully: any estimation error keeps
// the corresponding static choice.
func (fb *feedback) replan(pj *PlannedJob) (*PlannedJob, bool) {
	overlay := make(map[string]*relation.TableStats)
	threshold := fb.pl.skewThreshold()
	for _, name := range pj.RelOrder {
		ts, ok := fb.stats[name]
		if !ok {
			continue
		}
		overlay[name] = ts
		// Escalate when the upstream job's observed imbalance exceeded
		// the bound its threshold models (runtime splitting keeps the
		// hottest reducer near threshold × the mean): the measured
		// distribution was worse than planned, so this job hunts heavy
		// hitters proportionally more aggressively.
		if r := fb.ratio[name]; r > threshold {
			t := threshold * threshold / r
			if t < replanMinThreshold {
				t = replanMinThreshold
			}
			threshold = t
		}
	}
	if len(overlay) == 0 {
		return pj, false
	}
	cat := fb.db.Catalog.WithOverlay(overlay)
	rj := *pj
	if k, err := fb.rederiveReducers(&rj, cat); err == nil && k > 0 {
		rj.Reducers = k
	}
	if !fb.pl.Opts.DisableSkew {
		rj.Skew = SkewPlanFor(cat, rj.Kind, rj.Conds, rj.Reducers, threshold)
	}
	// Refresh the recorded σ fraction from the measured distribution,
	// so the execution report shows the re-derived model, not the
	// static one it replaced.
	pmax, known := 0.0, false
	if !fb.pl.Opts.DisableSkew && rj.Kind != KindHilbertTheta {
		pmax, known = maxJoinHotFrac(cat, rj.Conds, rj.Kind)
	}
	rj.SigmaFrac = fb.pl.sigmaFracFor(rj.Kind, rj.Reducers, pmax, known)
	return &rj, true
}

// rederiveReducers repeats the planner's T(k) sweep with measured
// input statistics, capped at the job's unit allotment so the
// schedule's placement stays valid. Share-grid jobs keep their
// allotment-wide grid (the operator derives the largest feasible
// share product itself).
func (fb *feedback) rederiveReducers(pj *PlannedJob, cat *relation.Catalog) (int, error) {
	if pj.Kind == KindShareGrid {
		return pj.Reducers, nil
	}
	maxK := pj.effectiveUnits()
	if maxK < 2 {
		return pj.Reducers, nil
	}
	pl := fb.pl
	inputBytes, mapTasks, outBytes, _, err := pl.sizeJob(cat, pj.RelOrder, pj.Conds,
		func(name string) float64 {
			// Measured intermediates carry their observed multiplier
			// (recorded at observe time or seeded from a warm store);
			// base relations answer from the db.
			if m, ok := fb.mult[name]; ok {
				return m
			}
			if r, err := fb.db.Relation(name); err == nil {
				return r.VolumeMultiplier
			}
			return 1
		})
	if err != nil {
		return 0, err
	}
	pmax, skewKnown := 0.0, false
	if !pl.Opts.DisableSkew && pj.Kind != KindHilbertTheta {
		pmax, skewKnown = maxJoinHotFrac(cat, pj.Conds, pj.Kind)
	}
	_, bestK, _, err := pl.sweepReducers(costSweepInputs{
		kind:       pj.Kind,
		inputBytes: inputBytes,
		mapTasks:   mapTasks,
		outBytes:   outBytes,
		numRels:    len(pj.RelOrder),
		pmax:       pmax,
		skewKnown:  skewKnown,
		conds:      pj.Conds,
	}, maxK)
	if err != nil {
		return 0, err
	}
	return bestK, nil
}

// WarmRevise applies persisted measured statistics to a plan before
// execution: every job whose inputs include a warm-known intermediate
// gets its reducer count, σ model and hot-key handling re-derived from
// the measured TableStats — the static counterpart of the dispatch-time
// feedback loop, using the same replan machinery. It returns the
// revised plan copy (the input plan is never mutated) and the names of
// the revised jobs; with an empty warm store (the cold first run) the
// plan is returned unchanged, so one-shot behavior is untouched.
//
// A resident server persists ExecResult.Measured across executions and
// feeds it back here, so the second submission of a cascade plans its
// downstream jobs from observed rather than modeled cardinalities even
// before anything dispatches.
func (pl *Planner) WarmRevise(plan *Plan, db *DB, warm map[string]MeasuredStat) (*Plan, []string) {
	if plan == nil || len(warm) == 0 {
		return plan, nil
	}
	fb := newFeedback(pl, db)
	fb.seed(warm)
	jobs := make([]PlannedJob, len(plan.Jobs))
	copy(jobs, plan.Jobs)
	var revised []string
	for i := range jobs {
		if rj, ok := fb.replan(&jobs[i]); ok {
			jobs[i] = *rj
			revised = append(revised, jobs[i].Name)
		}
	}
	if len(revised) == 0 {
		return plan, nil
	}
	out := *plan
	out.Jobs = jobs
	return &out, revised
}
