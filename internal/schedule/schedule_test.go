package schedule

import (
	"math"
	"math/rand"
	"testing"
)

// constProfile returns a profile with the same time for every allotment.
func constProfile(t float64, maxK int) []float64 {
	p := make([]float64, maxK)
	for i := range p {
		p[i] = t
	}
	return p
}

// speedupProfile models perfect speedup: t/k.
func speedupProfile(t float64, maxK int) []float64 {
	p := make([]float64, maxK)
	for i := range p {
		p[i] = t / float64(i+1)
	}
	return p
}

func TestScheduleSingleTask(t *testing.T) {
	plan, err := Schedule([]Task{{ID: "a", Profile: speedupProfile(10, 8)}}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.Makespan-10.0/8) > 1e-9 {
		t.Errorf("makespan = %v, want 1.25", plan.Makespan)
	}
	p, ok := plan.Placement("a")
	if !ok || p.Units != 8 {
		t.Errorf("placement = %+v", p)
	}
}

func TestScheduleValidation(t *testing.T) {
	if _, err := Schedule(nil, 4); err == nil {
		t.Error("no tasks accepted")
	}
	if _, err := Schedule([]Task{{ID: "a", Profile: []float64{1}}}, 0); err == nil {
		t.Error("kP=0 accepted")
	}
	if _, err := Schedule([]Task{{ID: "", Profile: []float64{1}}}, 4); err == nil {
		t.Error("empty ID accepted")
	}
	if _, err := Schedule([]Task{{ID: "a"}}, 4); err == nil {
		t.Error("empty profile accepted")
	}
	if _, err := Schedule([]Task{{ID: "a", Profile: []float64{-1}}}, 4); err == nil {
		t.Error("negative time accepted")
	}
	if _, err := Schedule([]Task{
		{ID: "a", Profile: []float64{1}},
		{ID: "a", Profile: []float64{1}},
	}, 4); err == nil {
		t.Error("duplicate ID accepted")
	}
	if _, err := Schedule([]Task{
		{ID: "a", Profile: []float64{1}, DependsOn: []string{"zz"}},
	}, 4); err == nil {
		t.Error("unknown dependency accepted")
	}
	if _, err := Schedule([]Task{
		{ID: "a", Profile: []float64{1}, DependsOn: []string{"b"}},
		{ID: "b", Profile: []float64{1}, DependsOn: []string{"a"}},
	}, 4); err == nil {
		t.Error("cycle accepted")
	}
}

// The paper's §4.2 example: three jobs finishing in 5, 7, 9 time units
// with 4, 4, 8 reducers. With ≥16 units they run fully parallel; the
// merge chain adds 2 more for a total of 11.
func TestFig4Example(t *testing.T) {
	prof := func(units int, time float64) []float64 {
		// Time is `time` at the stated units; worse below, no better above.
		p := make([]float64, 16)
		for k := 1; k <= 16; k++ {
			if k >= units {
				p[k-1] = time
			} else {
				p[k-1] = time * float64(units) / float64(k)
			}
		}
		return p
	}
	tasks := []Task{
		{ID: "ei", Profile: prof(4, 5)},
		{ID: "ej", Profile: prof(4, 7)},
		{ID: "ek", Profile: prof(8, 9)},
		{ID: "merge1", Profile: constProfile(1, 16), DependsOn: []string{"ei", "ej"}},
		{ID: "merge2", Profile: constProfile(1, 16), DependsOn: []string{"merge1", "ek"}},
	}
	plan, err := Schedule(tasks, 16)
	if err != nil {
		t.Fatal(err)
	}
	// 9 (parallel jobs) + 1 + 1 = 11 as in the paper's walkthrough.
	if plan.Makespan > 11+1e-9 {
		t.Errorf("makespan = %v, want <= 11", plan.Makespan)
	}
	// Dependencies respected.
	m1, _ := plan.Placement("merge1")
	ei, _ := plan.Placement("ei")
	ej, _ := plan.Placement("ej")
	if m1.Start < ei.Finish-1e-9 || m1.Start < ej.Finish-1e-9 {
		t.Error("merge1 started before inputs finished")
	}
	m2, _ := plan.Placement("merge2")
	ek, _ := plan.Placement("ek")
	if m2.Start < m1.Finish-1e-9 || m2.Start < ek.Finish-1e-9 {
		t.Error("merge2 started before inputs finished")
	}
}

// With only 8 units, the three Fig. 4 jobs cannot all run in parallel
// at their preferred allotments: the scheduler must serialize or give
// smaller allotments, producing a longer makespan than with 16 units.
func TestResourceContention(t *testing.T) {
	prof := func(units int, time float64) []float64 {
		p := make([]float64, 16)
		for k := 1; k <= 16; k++ {
			if k >= units {
				p[k-1] = time
			} else {
				p[k-1] = time * float64(units) / float64(k)
			}
		}
		return p
	}
	tasks := []Task{
		{ID: "ei", Profile: prof(4, 5)},
		{ID: "ej", Profile: prof(4, 7)},
		{ID: "ek", Profile: prof(8, 9)},
	}
	wide, err := Schedule(tasks, 16)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := Schedule(tasks, 8)
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Makespan < wide.Makespan {
		t.Errorf("narrow (%v) beat wide (%v)", narrow.Makespan, wide.Makespan)
	}
	if narrow.Makespan < LowerBound(tasks, 8)-1e-9 {
		t.Error("makespan below lower bound")
	}
}

func TestConcurrentUnitsBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 40; trial++ {
		kP := 2 + rng.Intn(14)
		n := 2 + rng.Intn(6)
		var tasks []Task
		for i := 0; i < n; i++ {
			base := 1 + rng.Float64()*20
			tasks = append(tasks, Task{
				ID:      string(rune('a' + i)),
				Profile: speedupProfile(base, 16),
			})
		}
		// Random chain dependency sometimes.
		if n >= 3 && rng.Intn(2) == 0 {
			tasks[2].DependsOn = []string{tasks[0].ID}
		}
		plan, err := Schedule(tasks, kP)
		if err != nil {
			t.Fatal(err)
		}
		// Sweep events and check concurrent unit usage.
		for _, p := range plan.Placements {
			mid := (p.Start + p.Finish) / 2
			used := 0
			for _, q := range plan.Placements {
				if q.Start <= mid && mid < q.Finish {
					used += q.Units
				}
			}
			if used > kP {
				t.Fatalf("trial %d: %d units used at t=%v with kP=%d", trial, used, mid, kP)
			}
		}
		if plan.Makespan < LowerBound(tasks, kP)-1e-9 {
			t.Fatalf("trial %d: makespan %v below lower bound %v", trial, plan.Makespan, LowerBound(tasks, kP))
		}
	}
}

// Brute-force optimal for two independent constant-profile tasks on
// kP=1: they must serialize.
func TestSerializeOnOneUnit(t *testing.T) {
	tasks := []Task{
		{ID: "a", Profile: []float64{4}},
		{ID: "b", Profile: []float64{6}},
	}
	plan, err := Schedule(tasks, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.Makespan-10) > 1e-9 {
		t.Errorf("makespan = %v, want 10", plan.Makespan)
	}
}

// Malleable trade-off: two tasks with perfect speedup on kP=8. Optimal
// is to split 4/4 (both finish at t/4); serializing with 8 each gives
// the same total here, but with unequal sizes splitting proportionally
// wins. The scheduler should land within 2× of the lower bound.
func TestNearOptimalMalleable(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		kP := 4 + rng.Intn(12)
		n := 2 + rng.Intn(5)
		var tasks []Task
		for i := 0; i < n; i++ {
			tasks = append(tasks, Task{
				ID:      string(rune('a' + i)),
				Profile: speedupProfile(5+rng.Float64()*50, kP),
			})
		}
		plan, err := Schedule(tasks, kP)
		if err != nil {
			t.Fatal(err)
		}
		lb := LowerBound(tasks, kP)
		if plan.Makespan > 2*lb+1e-9 {
			t.Errorf("trial %d: makespan %v > 2x lower bound %v", trial, plan.Makespan, lb)
		}
	}
}

func TestLowerBound(t *testing.T) {
	tasks := []Task{
		{ID: "a", Profile: speedupProfile(8, 4)},
		{ID: "b", Profile: speedupProfile(8, 4), DependsOn: []string{"a"}},
	}
	lb := LowerBound(tasks, 4)
	// Critical path: 2 + 2 = 4; work bound: (8+8)/4 = 4.
	if math.Abs(lb-4) > 1e-9 {
		t.Errorf("lower bound = %v, want 4", lb)
	}
}

func TestProfileShorterThanKP(t *testing.T) {
	// Task profile defined only up to 2 units; kP=8 must not panic and
	// must clamp the allotment.
	tasks := []Task{{ID: "a", Profile: []float64{10, 6}}}
	plan, err := Schedule(tasks, 8)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := plan.Placement("a")
	if p.Units > 2 {
		t.Errorf("allotment %d exceeds profile length", p.Units)
	}
	if math.Abs(plan.Makespan-6) > 1e-9 {
		t.Errorf("makespan = %v, want 6", plan.Makespan)
	}
}

// Exhaustive comparison on tiny instances: for two constant-profile
// tasks on kP units, the optimum is easy to state — tasks run in
// parallel when both fit, else serialized. Schedule must match it.
func TestTwoTaskOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		kP := 1 + rng.Intn(8)
		// Each task has a fixed width requirement encoded by a profile
		// that is infeasibly slow below its width.
		w1, w2 := 1+rng.Intn(kP), 1+rng.Intn(kP)
		t1 := 1 + rng.Float64()*9
		t2 := 1 + rng.Float64()*9
		prof := func(w int, tm float64) []float64 {
			p := make([]float64, kP)
			for k := 1; k <= kP; k++ {
				if k >= w {
					p[k-1] = tm
				} else {
					p[k-1] = tm * 1000
				}
			}
			return p
		}
		plan, err := Schedule([]Task{
			{ID: "a", Profile: prof(w1, t1)},
			{ID: "b", Profile: prof(w2, t2)},
		}, kP)
		if err != nil {
			t.Fatal(err)
		}
		var want float64
		if w1+w2 <= kP {
			want = math.Max(t1, t2)
		} else {
			want = t1 + t2
		}
		if plan.Makespan > want+1e-9 {
			t.Errorf("trial %d: makespan %v, optimal %v (w=%d,%d kP=%d)",
				trial, plan.Makespan, want, w1, w2, kP)
		}
	}
}

// TestExecutableStructure asserts the plan exposes what an executor
// needs: dispatch ordering, wave grouping, and dependency lists.
func TestExecutableStructure(t *testing.T) {
	flat := []float64{10, 5, 4, 4}
	plan, err := Schedule([]Task{
		{ID: "a", Profile: flat},
		{ID: "b", Profile: flat},
		{ID: "merge", Profile: flat, DependsOn: []string{"a", "b"}},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	order := plan.ExecutionOrder()
	if len(order) != 3 {
		t.Fatalf("execution order has %d placements, want 3", len(order))
	}
	pos := map[string]int{}
	for i, p := range order {
		pos[p.TaskID] = i
		if i > 0 && order[i-1].Start > p.Start {
			t.Errorf("execution order not sorted by start: %v before %v", order[i-1], p)
		}
	}
	if pos["merge"] != 2 {
		t.Errorf("dependent task dispatched at position %d, want last", pos["merge"])
	}
	mp, _ := plan.Placement("merge")
	if len(mp.DependsOn) != 2 {
		t.Errorf("merge placement lost dependencies: %v", mp.DependsOn)
	}
	waves := plan.Waves()
	if len(waves) < 2 {
		t.Fatalf("expected >= 2 waves, got %d: %v", len(waves), waves)
	}
	for _, p := range waves[0] {
		if p.Start != 0 {
			t.Errorf("wave 0 task %s starts at %v, want 0", p.TaskID, p.Start)
		}
		if p.TaskID == "merge" {
			t.Error("dependent task placed in wave 0")
		}
	}
	if mp.Wave == 0 {
		t.Error("merge task assigned wave 0")
	}
}
