package schedule

import (
	"sync"
	"testing"
)

// TestArbiterEqualShare: budgets shrink as load rises, recover as it
// drains, and respect the floor and the kP cap throughout.
func TestArbiterEqualShare(t *testing.T) {
	a := NewArbiter(96, 8)
	if got := a.Admit(); got != 96 {
		t.Errorf("first admit: budget %d, want all 96 units", got)
	}
	if got := a.Admit(); got != 48 {
		t.Errorf("second admit: budget %d, want 48", got)
	}
	if got := a.Admit(); got != 32 {
		t.Errorf("third admit: budget %d, want 32", got)
	}
	a.Done()
	a.Done()
	if got := a.Admit(); got != 48 {
		t.Errorf("after two Done: budget %d, want 48", got)
	}
	if got := a.Active(); got != 2 {
		t.Errorf("Active = %d, want 2", got)
	}
}

// TestArbiterFloor: heavy load never pushes a budget below the floor,
// and a floor above kP clamps to kP.
func TestArbiterFloor(t *testing.T) {
	a := NewArbiter(16, 6)
	for i := 0; i < 10; i++ {
		if got := a.Admit(); got < 6 || got > 16 {
			t.Fatalf("admit %d: budget %d outside [6, 16]", i, got)
		}
	}
	if got := NewArbiter(4, 99).Admit(); got != 4 {
		t.Errorf("floor above kP: budget %d, want 4", got)
	}
}

// TestArbiterCeilingDivision: the equal share rounds up, so budgets
// never collapse to zero and the shares cover kP.
func TestArbiterCeilingDivision(t *testing.T) {
	a := NewArbiter(10, 1)
	want := []int{10, 5, 4, 3, 2}
	for i, w := range want {
		if got := a.Admit(); got != w {
			t.Errorf("admit %d: budget %d, want %d", i+1, got, w)
		}
	}
}

// TestArbiterConcurrent exercises the mutex under -race and checks
// Done never underflows.
func TestArbiterConcurrent(t *testing.T) {
	a := NewArbiter(32, 2)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := a.Admit()
			if b < 2 || b > 32 {
				t.Errorf("budget %d outside [2, 32]", b)
			}
			a.Done()
		}()
	}
	wg.Wait()
	if got := a.Active(); got != 0 {
		t.Errorf("Active = %d after all Done, want 0", got)
	}
	a.Done() // extra Done must not underflow
	if got := a.Admit(); got != 32 {
		t.Errorf("admit after spurious Done: budget %d, want 32", got)
	}
}
