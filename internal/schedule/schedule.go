// Package schedule places a set of MapReduce jobs (malleable parallel
// tasks) onto k_P bounded processing units, minimising the makespan —
// the C(T) estimation of §4.2.
//
// Each task carries a time-vs-units profile derived from the cost
// model: T_j(k) is the job's estimated makespan when granted k reduce
// slots. The paper invokes Jansen's asymptotic FPTAS for malleable
// scheduling [19] as a black box; this package substitutes the classic
// practical two-phase scheme with the same structure: (1) binary-search
// a target deadline, allotting each task the fewest units that meet
// it, then (2) dependency-aware list scheduling of the allotted tasks
// over the k_P units. On small instances tests verify proximity to the
// brute-force optimum.
package schedule

import (
	"fmt"
	"math"
	"sort"
)

// Task is one malleable job. Profile[k-1] is the estimated execution
// time when the task runs with k processing units; profiles must be
// non-increasing in k (more units never hurt, the planner clamps any
// upturn — within a job the engine simply would not use the extra
// slots). DependsOn lists task IDs that must finish first (merge steps
// depend on the jobs whose outputs they combine).
type Task struct {
	ID        string
	Profile   []float64
	DependsOn []string
}

// Validate reports task specification errors.
func (t Task) Validate() error {
	if t.ID == "" {
		return fmt.Errorf("schedule: task with empty ID")
	}
	if len(t.Profile) == 0 {
		return fmt.Errorf("schedule: task %s has empty profile", t.ID)
	}
	for k, v := range t.Profile {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("schedule: task %s profile[%d] = %v", t.ID, k, v)
		}
	}
	return nil
}

// bestTime returns the minimum time over allotments ≤ maxUnits, and
// the smallest allotment achieving it.
func (t Task) bestTime(maxUnits int) (float64, int) {
	best, units := math.Inf(1), 1
	for k := 1; k <= len(t.Profile) && k <= maxUnits; k++ {
		if t.Profile[k-1] < best {
			best = t.Profile[k-1]
			units = k
		}
	}
	return best, units
}

// minUnitsFor returns the smallest allotment whose time ≤ deadline,
// or 0 when none exists within maxUnits.
func (t Task) minUnitsFor(deadline float64, maxUnits int) int {
	for k := 1; k <= len(t.Profile) && k <= maxUnits; k++ {
		if t.Profile[k-1] <= deadline {
			return k
		}
	}
	return 0
}

// Placement records one scheduled task. Beyond the report fields
// (start, finish, units) it carries what an executor needs to drive
// the task for real: the IDs that must complete first and the wave
// ordinal the task starts in.
type Placement struct {
	TaskID string
	Start  float64
	Finish float64
	Units  int

	// DependsOn lists the task IDs that must finish before this task
	// may start (copied from the task specification).
	DependsOn []string
	// Wave is the ordinal of this placement's start time among the
	// distinct start times of the plan: every task in wave 0 starts at
	// t=0, wave w+1 tasks start when some wave-≤w task frees units or
	// satisfies a dependency.
	Wave int
}

// Plan is a complete schedule. Placements are finalized in execution
// order — ascending start time, ties broken by task ID — so a driver
// can dispatch them front to back, gating each on free units and on
// its DependsOn set.
type Plan struct {
	Placements []Placement
	Makespan   float64
}

// Placement returns the placement for a task ID.
func (p *Plan) Placement(id string) (Placement, bool) {
	for _, pl := range p.Placements {
		if pl.TaskID == id {
			return pl, true
		}
	}
	return Placement{}, false
}

// ExecutionOrder returns the placements in dispatch order: ascending
// start time, ties broken by task ID. The slice is a copy; callers may
// reorder it.
func (p *Plan) ExecutionOrder() []Placement {
	out := append([]Placement(nil), p.Placements...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].TaskID < out[j].TaskID
	})
	return out
}

// Waves groups the placements by wave ordinal: Waves()[0] holds every
// task starting at t=0, and so on. Within a wave, placements are in
// task-ID order.
func (p *Plan) Waves() [][]Placement {
	order := p.ExecutionOrder()
	var waves [][]Placement
	for _, pl := range order {
		for pl.Wave >= len(waves) {
			waves = append(waves, nil)
		}
		waves[pl.Wave] = append(waves[pl.Wave], pl)
	}
	return waves
}

// finalize annotates a freshly computed plan with the executable
// structure: dependency lists from the task specs and wave ordinals
// from the distinct start times, then orders placements for dispatch.
func (p *Plan) finalize(byID map[string]*Task) {
	sort.Slice(p.Placements, func(i, j int) bool {
		if p.Placements[i].Start != p.Placements[j].Start {
			return p.Placements[i].Start < p.Placements[j].Start
		}
		return p.Placements[i].TaskID < p.Placements[j].TaskID
	})
	const eps = 1e-9
	wave := -1
	prevStart := math.Inf(-1)
	for i := range p.Placements {
		pl := &p.Placements[i]
		if t := byID[pl.TaskID]; t != nil {
			pl.DependsOn = append([]string(nil), t.DependsOn...)
		}
		if pl.Start > prevStart+eps {
			wave++
			prevStart = pl.Start
		}
		pl.Wave = wave
	}
}

// Schedule computes an execution plan for the tasks on kP units.
func Schedule(tasks []Task, kP int) (*Plan, error) {
	if kP < 1 {
		return nil, fmt.Errorf("schedule: kP must be >= 1, got %d", kP)
	}
	if len(tasks) == 0 {
		return nil, fmt.Errorf("schedule: no tasks")
	}
	byID := make(map[string]*Task, len(tasks))
	for i := range tasks {
		if err := tasks[i].Validate(); err != nil {
			return nil, err
		}
		if _, dup := byID[tasks[i].ID]; dup {
			return nil, fmt.Errorf("schedule: duplicate task ID %q", tasks[i].ID)
		}
		byID[tasks[i].ID] = &tasks[i]
	}
	for _, t := range tasks {
		for _, d := range t.DependsOn {
			if _, ok := byID[d]; !ok {
				return nil, fmt.Errorf("schedule: task %s depends on unknown %q", t.ID, d)
			}
		}
	}
	if cyclic(tasks) {
		return nil, fmt.Errorf("schedule: dependency cycle")
	}

	// Candidate deadlines: every profile entry (the makespan is always
	// determined by some task's profile value composition; scanning
	// these plus a few scaled variants approximates the continuous
	// search well).
	deadlineSet := map[float64]bool{}
	for _, t := range tasks {
		for k := 1; k <= len(t.Profile) && k <= kP; k++ {
			deadlineSet[t.Profile[k-1]] = true
		}
	}
	var deadlines []float64
	for d := range deadlineSet {
		deadlines = append(deadlines, d)
	}
	sort.Float64s(deadlines)

	var best *Plan
	for _, d := range deadlines {
		plan, ok := tryDeadline(tasks, byID, kP, d)
		if !ok {
			continue
		}
		if best == nil || plan.Makespan < best.Makespan {
			best = plan
		}
	}
	// Fallback: fastest allotment per task regardless of deadline.
	plan, ok := tryDeadline(tasks, byID, kP, math.Inf(1))
	if ok && (best == nil || plan.Makespan < best.Makespan) {
		best = plan
	}
	if best == nil {
		return nil, fmt.Errorf("schedule: no feasible plan (is every profile within kP units?)")
	}
	best.finalize(byID)
	return best, nil
}

func cyclic(tasks []Task) bool {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[string]int, len(tasks))
	adj := make(map[string][]string, len(tasks))
	for _, t := range tasks {
		adj[t.ID] = t.DependsOn
	}
	var visit func(string) bool
	visit = func(v string) bool {
		color[v] = grey
		for _, w := range adj[v] {
			switch color[w] {
			case grey:
				return true
			case white:
				if visit(w) {
					return true
				}
			}
		}
		color[v] = black
		return false
	}
	for _, t := range tasks {
		if color[t.ID] == white && visit(t.ID) {
			return true
		}
	}
	return false
}

// tryDeadline allots each task its minimal units meeting the deadline
// (or its overall best when the deadline is unreachable), then
// list-schedules respecting dependencies and the unit bound.
func tryDeadline(tasks []Task, byID map[string]*Task, kP int, deadline float64) (*Plan, bool) {
	type allotted struct {
		task  *Task
		units int
		time  float64
	}
	items := make([]allotted, 0, len(tasks))
	for i := range tasks {
		t := &tasks[i]
		u := t.minUnitsFor(deadline, kP)
		if u == 0 {
			tm, bu := t.bestTime(kP)
			if math.IsInf(tm, 1) {
				return nil, false
			}
			u = bu
		}
		items = append(items, allotted{task: t, units: u, time: t.Profile[min(u, len(t.Profile))-1]})
	}
	// Priority: longer tasks first (LPT) among ready tasks.
	idx := make(map[string]int, len(items))
	for i, it := range items {
		idx[it.task.ID] = i
	}

	done := make(map[string]float64, len(items)) // finish times
	scheduled := make(map[string]bool, len(items))
	var placements []Placement
	free := kP
	now := 0.0
	running := []Placement{}
	var makespan float64

	for len(done) < len(items) {
		// Start every ready task that fits, longest first.
		var ready []int
		for i, it := range items {
			if scheduled[it.task.ID] {
				continue
			}
			ok := true
			for _, d := range it.task.DependsOn {
				if _, fin := done[d]; !fin {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, i)
			}
		}
		sort.Slice(ready, func(a, b int) bool {
			if items[ready[a]].time != items[ready[b]].time {
				return items[ready[a]].time > items[ready[b]].time
			}
			return items[ready[a]].task.ID < items[ready[b]].task.ID
		})
		startedAny := false
		for _, i := range ready {
			it := items[i]
			if it.units <= free {
				// Dependencies may finish later than `now` was advanced
				// to; start at the max of now and dep finishes.
				start := now
				for _, d := range it.task.DependsOn {
					if done[d] > start {
						start = done[d]
					}
				}
				if start > now {
					continue // becomes ready later; wait for clock
				}
				p := Placement{TaskID: it.task.ID, Start: now, Finish: now + it.time, Units: it.units}
				placements = append(placements, p)
				running = append(running, p)
				scheduled[it.task.ID] = true
				free -= it.units
				startedAny = true
			}
		}
		if len(running) == 0 {
			if !startedAny {
				// Deadlock should be impossible (acyclic, validated).
				return nil, false
			}
			continue
		}
		// Advance to the earliest finish.
		next := math.Inf(1)
		for _, r := range running {
			if r.Finish < next {
				next = r.Finish
			}
		}
		now = next
		var still []Placement
		for _, r := range running {
			if r.Finish <= now+1e-12 {
				done[r.TaskID] = r.Finish
				free += r.Units
				if r.Finish > makespan {
					makespan = r.Finish
				}
			} else {
				still = append(still, r)
			}
		}
		running = still
		_ = idx
	}
	return &Plan{Placements: placements, Makespan: makespan}, true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// LowerBound returns max(critical-path, total-work/kP): no schedule
// can beat it. Work uses each task's most efficient point (minimum
// units·time product); the critical path uses each task's fastest time.
func LowerBound(tasks []Task, kP int) float64 {
	byID := make(map[string]*Task, len(tasks))
	for i := range tasks {
		byID[tasks[i].ID] = &tasks[i]
	}
	// Critical path on fastest times.
	memo := make(map[string]float64, len(tasks))
	var cp func(id string) float64
	cp = func(id string) float64 {
		if v, ok := memo[id]; ok {
			return v
		}
		t := byID[id]
		best, _ := t.bestTime(kP)
		longest := 0.0
		for _, d := range t.DependsOn {
			if l := cp(d); l > longest {
				longest = l
			}
		}
		memo[id] = longest + best
		return memo[id]
	}
	var maxCP float64
	var work float64
	for _, t := range tasks {
		if v := cp(t.ID); v > maxCP {
			maxCP = v
		}
		// Most efficient area point.
		bestArea := math.Inf(1)
		for k := 1; k <= len(t.Profile) && k <= kP; k++ {
			if a := t.Profile[k-1] * float64(k); a < bestArea {
				bestArea = a
			}
		}
		work += bestArea
	}
	return math.Max(maxCP, work/float64(kP))
}
