package schedule

import "sync"

// Arbiter apportions the machine-wide K_P processing units across
// concurrently executing plans — the cross-plan counterpart of the
// intra-plan placement this package computes. Each admitted query gets
// a unit budget: its plan may hold at most that many units at once
// (enforced by core.WithBudget over the shared pool), so one wide plan
// cannot monopolize the cluster while others starve.
//
// The policy is equal share at admission time: a query entering with n
// already active gets ⌈kP/(n+1)⌉ units, floored at minBudget (a plan
// needs some parallelism to make progress) and capped at kP. Budgets
// of already-running queries are not revoked — allotments on the
// shared pool cannot be clawed back mid-job — so the shares converge
// as queries finish and new ones are admitted. The shared pool remains
// the hard combined cap regardless of what budgets sum to.
type Arbiter struct {
	mu        sync.Mutex
	kP        int
	minBudget int
	active    int
}

// NewArbiter builds an arbiter over kP units with the given per-query
// floor. A floor < 1 (or > kP) is clamped.
func NewArbiter(kP, minBudget int) *Arbiter {
	if kP < 1 {
		kP = 1
	}
	if minBudget < 1 {
		minBudget = 1
	}
	if minBudget > kP {
		minBudget = kP
	}
	return &Arbiter{kP: kP, minBudget: minBudget}
}

// Admit registers one query as active and returns its unit budget.
// Pair with Done when the query's execution finishes (or is rejected
// downstream).
func (a *Arbiter) Admit() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.active++
	b := (a.kP + a.active - 1) / a.active
	if b < a.minBudget {
		b = a.minBudget
	}
	return b
}

// Done releases one Admit.
func (a *Arbiter) Done() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.active > 0 {
		a.active--
	}
}

// Active reports the queries currently admitted.
func (a *Arbiter) Active() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.active
}
