// Package cost implements the paper's I/O- and network-aware cost
// model (§4): the closed-form execution-time estimate of a single
// MapReduce job (Eq. 1–6), the partition score of Eq. 7, and the
// Δ(k_R) trade-off of Eq. 10 used to pick the number of reduce tasks.
//
// The same primitive rates drive both this analytic model and the
// discrete-event simulator (internal/mr), so comparing "estimated" vs
// "simulated" execution time is a genuine model-validation experiment
// (Fig. 8): the simulator sees wave quantisation, actual reducer skew
// and copy/compute overlap that the closed form only approximates.
package cost

import (
	"fmt"
	"math"

	"repro/internal/mr"
)

// Params are the system-dependent constants of §4.1. C1 and C2 are the
// per-byte sequential-read and network-copy costs; the spill variable p
// and connection variable q are parametric functions calibrated from
// observed job executions (Fig. 7b).
type Params struct {
	C1           float64 // seconds per byte, sequential disk read
	C2           float64 // seconds per byte, network copy
	WriteCost    float64 // seconds per byte, disk write (base of p)
	SortBufBytes int64   // io.sort.mb: spill inflation threshold
	SortFactor   int     // io.sort.factor: runs merged per pass
	QBase        float64 // seconds per connection at n=1 (base of q)
	TaskOverhead float64 // fixed per-task seconds (scheduling, JVM)
	Lambda       float64 // λ of Eq. 10; the paper observes λ≈0.4
}

// FromConfig derives model parameters from the cluster configuration,
// mirroring mr.NewStdTimer so that model and simulator share rates.
func FromConfig(cfg mr.Config) Params {
	t := mr.NewStdTimer(cfg)
	return Params{
		C1:           1 / t.ReadBps,
		C2:           1 / t.NetBps,
		WriteCost:    1 / t.WriteBps,
		SortBufBytes: t.SortBuf,
		SortFactor:   t.SortFactor,
		QBase:        t.QBase,
		TaskOverhead: t.TaskOverhead,
		Lambda:       0.4,
	}
}

// Timer returns the mr.Timer sharing these rates, for running jobs
// under the same constants the model assumes.
func (p Params) Timer() mr.Timer {
	return &mr.StdTimer{
		ReadBps:      1 / p.C1,
		WriteBps:     1 / p.WriteCost,
		NetBps:       1 / p.C2,
		SortBuf:      p.SortBufBytes,
		SortFactor:   p.SortFactor,
		QBase:        p.QBase,
		TaskOverhead: p.TaskOverhead,
	}
}

// P is the spill cost variable: per-byte write cost inflated once the
// spilled volume exceeds the sort buffer, growing with the
// io.sort.factor-ary merge depth (mirrors mr.StdTimer.SpillFactor so
// estimate and simulation stay aligned).
func (p Params) P(spillBytes int64) float64 {
	if spillBytes <= p.SortBufBytes || p.SortBufBytes <= 0 {
		return p.WriteCost
	}
	runs := float64(spillBytes) / float64(p.SortBufBytes)
	factor := float64(p.SortFactor)
	if factor < 2 {
		factor = 300
	}
	return p.WriteCost * (1 + 0.3*(1+math.Log(runs)/math.Log(factor)))
}

// Q is the connection-service cost variable for n reduce tasks. q is
// linear in n so the q·n term of Eq. 3 grows quadratically ("rapid
// growth of q while n gets larger").
func (p Params) Q(n int) float64 {
	if n < 1 {
		n = 1
	}
	return p.QBase * float64(n)
}

// JobProfile characterises one MapReduce job for estimation: total
// input S_I, map task count m and slot bound m', the map output ratio
// α (query-specific, from selectivity estimation), the reduce output
// ratio β, and the reducer-input standard deviation σ used by the
// three-sigma straggler bound.
type JobProfile struct {
	InputBytes int64   // S_I
	MapTasks   int     // m
	MapSlots   int     // m'
	Alpha      float64 // map output ratio
	Beta       float64 // reduce output ratio
	Sigma      float64 // stddev of reducer input bytes
}

// Validate reports profile errors.
func (jp JobProfile) Validate() error {
	switch {
	case jp.InputBytes < 0:
		return fmt.Errorf("cost: negative input bytes")
	case jp.MapTasks < 1:
		return fmt.Errorf("cost: map tasks must be >= 1")
	case jp.MapSlots < 1:
		return fmt.Errorf("cost: map slots must be >= 1")
	case jp.Alpha < 0 || jp.Beta < 0 || jp.Sigma < 0:
		return fmt.Errorf("cost: ratios and sigma must be non-negative")
	}
	return nil
}

// Estimate is the Eq. 1–6 decomposition for a given reducer count.
type Estimate struct {
	N   int     // reduce tasks
	TM  float64 // Eq. 1: single map task time
	JM  float64 // Eq. 2: map phase total
	TCP float64 // Eq. 3: single map output copy time
	JCP float64 // Eq. 4: copy phase total
	SR  float64 // S*_r: straggler reducer input bytes
	JR  float64 // Eq. 5: reduce phase (straggler) time
	T   float64 // Eq. 6: job makespan estimate
}

// Estimate evaluates the closed-form model for n reduce tasks.
func (p Params) Estimate(jp JobProfile, n int) (Estimate, error) {
	if err := jp.Validate(); err != nil {
		return Estimate{}, err
	}
	if n < 1 {
		return Estimate{}, fmt.Errorf("cost: reducers must be >= 1, got %d", n)
	}
	si := float64(jp.InputBytes)
	m := float64(jp.MapTasks)
	mPrime := math.Min(float64(jp.MapSlots), m)
	mapOut := jp.Alpha * si
	mapOutPerTask := int64(mapOut / m)
	pv := p.P(mapOutPerTask)
	// Eq. 1: t_M = (C1 + p·α) · S_I/m, plus the fixed task overhead.
	tM := p.TaskOverhead + (p.C1+pv*jp.Alpha)*si/m
	// Eq. 2: J_M = t_M · m/m'.
	jM := tM * m / mPrime
	// Eq. 3: t_CP = C2·α·S_I/(n·m) + q·n.
	tCP := p.C2*mapOut/(float64(n)*m) + p.Q(n)*float64(n)
	// Eq. 4: J_CP = (m/m')·t_CP.
	jCP := tCP * m / mPrime
	// S*_r = α·S_I/n + 3σ (three-sigma straggler bound).
	sr := mapOut/float64(n) + 3*jp.Sigma
	// Eq. 5: J_R = (p + β·C1)·S*_r. The paper prices the reduce output
	// at the sequential-read constant C1; on the testbed it calibrates
	// against, reads are 5× faster than writes, so we charge the
	// output at the write rate instead — the simulator's reducers
	// physically write their output, and Fig. 8's estimate-vs-simulated
	// agreement depends on the two sides pricing it identically.
	jR := p.TaskOverhead + (p.P(int64(sr))+jp.Beta*p.WriteCost)*sr
	// Eq. 6: overlap of map and copy phases.
	var t float64
	if tM >= tCP {
		t = jM + tCP + jR
	} else {
		t = tM + jCP + jR
	}
	return Estimate{N: n, TM: tM, JM: jM, TCP: tCP, JCP: jCP, SR: sr, JR: jR, T: t}, nil
}

// BestReducers sweeps n ∈ [1, maxN] and returns the estimate with the
// minimum makespan — the model's recommended RN(MRJ).
func (p Params) BestReducers(jp JobProfile, maxN int) (Estimate, error) {
	if maxN < 1 {
		return Estimate{}, fmt.Errorf("cost: maxN must be >= 1")
	}
	var best Estimate
	for n := 1; n <= maxN; n++ {
		e, err := p.Estimate(jp, n)
		if err != nil {
			return Estimate{}, err
		}
		if best.N == 0 || e.T < best.T {
			best = e
		}
	}
	return best, nil
}

// ProfileFromMetrics reconstructs a JobProfile from an executed job's
// metrics, for post-hoc model validation (Fig. 8).
func ProfileFromMetrics(m mr.Metrics, cfg mr.Config) JobProfile {
	alpha, beta := 0.0, 0.0
	if m.InputBytes > 0 {
		alpha = float64(m.ShuffleBytes) / float64(m.InputBytes)
	}
	if m.ShuffleBytes > 0 {
		beta = float64(m.OutputBytes) / float64(m.ShuffleBytes)
	}
	return JobProfile{
		InputBytes: m.InputBytes,
		MapTasks:   maxInt(m.MapTasks, 1),
		MapSlots:   cfg.MapSlots,
		Alpha:      alpha,
		Beta:       beta,
		Sigma:      stddevInt64(m.ReducerInputBytes),
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func stddevInt64(xs []int64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += float64(x)
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := float64(x) - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// ChooseKR minimises Δ(k_R) = λ·Score(k) + (1−λ)·Work(k) over the
// candidate reducer counts (Eq. 10). Score(k) is the partition score
// (total tuple duplication, Eq. 7 — the network volume side) and
// Work(k) is the per-reducer combination workload Π|R_i|/k. The two
// factors are normalised to [0,1] over the candidates before mixing,
// since they carry different units; λ≈0.4 per the paper's calibration.
func ChooseKR(lambda float64, candidates []int, score func(k int) float64, work func(k int) float64) (int, error) {
	if len(candidates) == 0 {
		return 0, fmt.Errorf("cost: no candidate reducer counts")
	}
	if lambda < 0 || lambda > 1 {
		return 0, fmt.Errorf("cost: lambda %v outside [0,1]", lambda)
	}
	scores := make([]float64, len(candidates))
	works := make([]float64, len(candidates))
	var sMin, sMax, wMin, wMax float64
	for i, k := range candidates {
		if k < 1 {
			return 0, fmt.Errorf("cost: candidate reducer count %d < 1", k)
		}
		scores[i] = score(k)
		works[i] = work(k)
		if i == 0 {
			sMin, sMax = scores[i], scores[i]
			wMin, wMax = works[i], works[i]
			continue
		}
		sMin = math.Min(sMin, scores[i])
		sMax = math.Max(sMax, scores[i])
		wMin = math.Min(wMin, works[i])
		wMax = math.Max(wMax, works[i])
	}
	norm := func(v, lo, hi float64) float64 {
		if hi <= lo {
			return 0
		}
		return (v - lo) / (hi - lo)
	}
	bestIdx := 0
	bestDelta := math.Inf(1)
	for i := range candidates {
		delta := lambda*norm(scores[i], sMin, sMax) + (1-lambda)*norm(works[i], wMin, wMax)
		if delta < bestDelta {
			bestDelta = delta
			bestIdx = i
		}
	}
	return candidates[bestIdx], nil
}

// MergeCost estimates the time of the ID-keyed merge step combining
// two job outputs (Fig. 4). The paper notes "such a merge operation
// only has output keys or data IDs involved, therefore, it can be done
// very efficiently": only ID columns (a small fraction of the tuple
// width, modelled at 2%) are scanned and re-written.
func (p Params) MergeCost(leftBytes, rightBytes int64) float64 {
	return p.TaskOverhead + (p.C1+p.WriteCost)*float64(leftBytes+rightBytes)*0.02
}
