package cost

import (
	"context"
	"math"
	"testing"

	"repro/internal/mr"
	"repro/internal/relation"
)

func params() Params { return FromConfig(mr.DefaultConfig()) }

func profile(gb float64, alpha float64) JobProfile {
	return JobProfile{
		InputBytes: int64(gb * 1e9),
		MapTasks:   int(math.Max(1, gb*1e9/64e6)),
		MapSlots:   104,
		Alpha:      alpha,
		Beta:       0.1,
		Sigma:      0,
	}
}

func TestEstimateComponentsPositive(t *testing.T) {
	p := params()
	e, err := p.Estimate(profile(10, 0.5), 16)
	if err != nil {
		t.Fatal(err)
	}
	if e.TM <= 0 || e.JM <= 0 || e.TCP <= 0 || e.JCP <= 0 || e.JR <= 0 || e.T <= 0 {
		t.Errorf("non-positive components: %+v", e)
	}
	if e.JM < e.TM {
		t.Error("JM < tM")
	}
	// Eq. 6: T must equal one of the two overlap forms.
	want1 := e.JM + e.TCP + e.JR
	want2 := e.TM + e.JCP + e.JR
	if math.Abs(e.T-want1) > 1e-9 && math.Abs(e.T-want2) > 1e-9 {
		t.Errorf("T = %v matches neither overlap form (%v, %v)", e.T, want1, want2)
	}
}

func TestEstimateValidation(t *testing.T) {
	p := params()
	if _, err := p.Estimate(profile(1, 0.5), 0); err == nil {
		t.Error("0 reducers accepted")
	}
	bad := profile(1, 0.5)
	bad.MapTasks = 0
	if _, err := p.Estimate(bad, 4); err == nil {
		t.Error("0 map tasks accepted")
	}
	bad = profile(1, 0.5)
	bad.Alpha = -1
	if _, err := p.Estimate(bad, 4); err == nil {
		t.Error("negative alpha accepted")
	}
	bad = profile(1, 0.5)
	bad.MapSlots = 0
	if _, err := p.Estimate(bad, 4); err == nil {
		t.Error("0 map slots accepted")
	}
	bad = profile(1, 0.5)
	bad.InputBytes = -5
	if _, err := p.Estimate(bad, 4); err == nil {
		t.Error("negative input accepted")
	}
}

// The paper's Fig. 6 observation: for large inputs, adding reducers
// helps a lot initially, then gains shrink (and eventually reverse as
// connection overhead dominates).
func TestReducerSweepShape(t *testing.T) {
	p := params()
	prof := profile(100, 1.0)
	t2, _ := p.Estimate(prof, 2)
	t16, _ := p.Estimate(prof, 16)
	if t16.T >= t2.T {
		t.Errorf("16 reducers (%v) not faster than 2 (%v) on 100GB", t16.T, t2.T)
	}
	// Gains flatten: marginal improvement 48→64 much smaller than 2→16.
	t48, _ := p.Estimate(prof, 48)
	t64, _ := p.Estimate(prof, 64)
	gainEarly := t2.T - t16.T
	gainLate := t48.T - t64.T
	if gainLate > gainEarly/4 {
		t.Errorf("late gain %v not much smaller than early gain %v", gainLate, gainEarly)
	}
}

// J_R strictly decreases with reducer count (workload splits), while
// the q·n connection overhead increases — producing the interior
// optimum of Fig. 7a.
func TestJRMonotoneAndInteriorOptimum(t *testing.T) {
	p := params()
	prof := profile(10, 1.0)
	prev := math.Inf(1)
	for n := 1; n <= 64; n *= 2 {
		e, err := p.Estimate(prof, n)
		if err != nil {
			t.Fatal(err)
		}
		if e.JR >= prev {
			t.Errorf("JR not decreasing at n=%d: %v >= %v", n, e.JR, prev)
		}
		prev = e.JR
	}
	best, err := p.BestReducers(prof, 512)
	if err != nil {
		t.Fatal(err)
	}
	if best.N <= 1 || best.N >= 512 {
		t.Errorf("optimum %d not interior", best.N)
	}
}

// Fig. 7a: larger map output volume pushes the optimal reducer count up.
func TestBestReducersGrowsWithVolume(t *testing.T) {
	p := params()
	small, err := p.BestReducers(profile(1, 1.0), 256)
	if err != nil {
		t.Fatal(err)
	}
	big, err := p.BestReducers(profile(200, 1.0), 256)
	if err != nil {
		t.Fatal(err)
	}
	if big.N <= small.N {
		t.Errorf("best kR for 200GB (%d) not above 1GB (%d)", big.N, small.N)
	}
	if _, err := p.BestReducers(profile(1, 1), 0); err == nil {
		t.Error("maxN=0 accepted")
	}
}

func TestPQBehaviour(t *testing.T) {
	p := params()
	if p.P(p.SortBufBytes/2) != p.WriteCost {
		t.Error("p below sort buffer should equal write cost")
	}
	if p.P(p.SortBufBytes*100) <= p.P(p.SortBufBytes*2) {
		t.Error("p not growing with spill volume")
	}
	if p.Q(64) <= p.Q(4) {
		t.Error("q not growing with reducer count")
	}
	if p.Q(0) != p.Q(1) {
		t.Error("q(0) should clamp to q(1)")
	}
}

func TestModelTracksSimulator(t *testing.T) {
	// Run a real self-join-shaped job in the simulator and compare the
	// analytic estimate against the simulated makespan: they should be
	// within 2× of each other (the closed form ignores wave
	// quantisation and exact skew).
	cfg := mr.DefaultConfig()
	cfg.TuplesPerMapTask = 64
	cfg.MapSlots = 8
	cfg.ReduceSlots = 8
	in := relation.New("t", relation.MustSchema(relation.Column{Name: "v", Kind: relation.KindInt}))
	for i := 0; i < 2000; i++ {
		in.MustAppend(relation.Tuple{relation.Int(int64(i % 64))})
	}
	in.VolumeMultiplier = 50000 // model ~ a GB-scale input
	p := FromConfig(cfg)
	job := &mr.Job{
		Name:   "selfjoin-sample",
		Inputs: []mr.Input{{Rel: in, Map: func(t relation.Tuple, emit mr.Emitter) { emit(uint64(t[0].Int64()), 0, t) }}},
		Reduce: func(key uint64, values []mr.Tagged, ctx *mr.ReduceContext) {
			ctx.AddWork(int64(len(values)) * int64(len(values)))
			ctx.Emit(relation.Tuple{values[0].Tuple[0]})
		},
		NumReducers:  8,
		OutputName:   "out",
		OutputSchema: in.Schema,
	}
	res, err := mr.Run(context.Background(), cfg, p.Timer(), job)
	if err != nil {
		t.Fatal(err)
	}
	prof := ProfileFromMetrics(res.Metrics, cfg)
	est, err := p.Estimate(prof, 8)
	if err != nil {
		t.Fatal(err)
	}
	sim := res.Metrics.Sim.Total
	if est.T < sim/2 || est.T > sim*2 {
		t.Errorf("estimate %v vs simulated %v: off by more than 2x", est.T, sim)
	}
}

func TestProfileFromMetrics(t *testing.T) {
	m := mr.Metrics{
		MapTasks:          4,
		InputBytes:        1000,
		ShuffleBytes:      500,
		OutputBytes:       50,
		ReducerInputBytes: []int64{100, 150, 250},
	}
	cfg := mr.DefaultConfig()
	jp := ProfileFromMetrics(m, cfg)
	if jp.Alpha != 0.5 {
		t.Errorf("alpha = %v", jp.Alpha)
	}
	if jp.Beta != 0.1 {
		t.Errorf("beta = %v", jp.Beta)
	}
	if jp.Sigma <= 0 {
		t.Errorf("sigma = %v", jp.Sigma)
	}
	if jp.MapTasks != 4 || jp.MapSlots != cfg.MapSlots {
		t.Error("task counts wrong")
	}
	empty := ProfileFromMetrics(mr.Metrics{}, cfg)
	if empty.Alpha != 0 || empty.Beta != 0 || empty.MapTasks != 1 {
		t.Errorf("zero metrics profile: %+v", empty)
	}
}

func TestChooseKR(t *testing.T) {
	// Score grows linearly with k, work shrinks as 1/k: Δ has an
	// interior optimum that moves down as λ (score weight) grows.
	candidates := []int{1, 2, 4, 8, 16, 32, 64}
	score := func(k int) float64 { return float64(k) }
	work := func(k int) float64 { return 1000.0 / float64(k) }
	lo, err := ChooseKR(0.1, candidates, score, work)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := ChooseKR(0.9, candidates, score, work)
	if err != nil {
		t.Fatal(err)
	}
	if lo < hi {
		t.Errorf("low lambda (%d) should allow more reducers than high lambda (%d)", lo, hi)
	}
	if _, err := ChooseKR(0.4, nil, score, work); err == nil {
		t.Error("empty candidates accepted")
	}
	if _, err := ChooseKR(-0.1, candidates, score, work); err == nil {
		t.Error("negative lambda accepted")
	}
	if _, err := ChooseKR(0.4, []int{0}, score, work); err == nil {
		t.Error("candidate 0 accepted")
	}
}

func TestChooseKRConstantFactors(t *testing.T) {
	// Degenerate: both factors constant → first candidate wins, no NaN.
	got, err := ChooseKR(0.4, []int{3, 5, 7}, func(int) float64 { return 1 }, func(int) float64 { return 2 })
	if err != nil || got != 3 {
		t.Errorf("constant factors: got %d, %v", got, err)
	}
}

func TestMergeCostSmall(t *testing.T) {
	p := params()
	mc := p.MergeCost(1e9, 1e9)
	full, _ := p.Estimate(profile(2, 1.0), 16)
	if mc >= full.T {
		t.Errorf("merge cost %v not small vs full job %v", mc, full.T)
	}
	if mc <= 0 {
		t.Error("merge cost not positive")
	}
}

func TestTimerRoundTrip(t *testing.T) {
	cfg := mr.DefaultConfig()
	p := FromConfig(cfg)
	tm, ok := p.Timer().(*mr.StdTimer)
	if !ok {
		t.Fatal("Timer() is not StdTimer")
	}
	ref := mr.NewStdTimer(cfg)
	if math.Abs(tm.ReadBps-ref.ReadBps) > 1 || math.Abs(tm.WriteBps-ref.WriteBps) > 1 {
		t.Error("timer rates do not round-trip")
	}
}

func TestStddev(t *testing.T) {
	if s := stddevInt64(nil); s != 0 {
		t.Errorf("stddev(nil) = %v", s)
	}
	if s := stddevInt64([]int64{5, 5, 5}); s != 0 {
		t.Errorf("stddev(const) = %v", s)
	}
	if s := stddevInt64([]int64{0, 10}); math.Abs(s-5) > 1e-9 {
		t.Errorf("stddev(0,10) = %v, want 5", s)
	}
}
