package hilbert

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4); err == nil {
		t.Error("dims=0 accepted")
	}
	if _, err := New(3, 0); err == nil {
		t.Error("bits=0 accepted")
	}
	if _, err := New(8, 8); err == nil {
		t.Error("64-bit curve accepted")
	}
	c, err := New(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Dims() != 3 || c.Bits() != 4 {
		t.Error("accessors wrong")
	}
	if c.CellsPerDim() != 16 {
		t.Errorf("CellsPerDim = %d", c.CellsPerDim())
	}
	if c.NumCells() != 1<<12 {
		t.Errorf("NumCells = %d", c.NumCells())
	}
}

func TestKnown2DOrder1(t *testing.T) {
	// The order-1 2-D Hilbert curve visits (0,0),(0,1),(1,1),(1,0)
	// (up to reflection/rotation; Skilling's variant produces exactly
	// this sequence for x[0]=x, x[1]=y).
	c := MustNew(2, 1)
	var visited [][]uint32
	for h := uint64(0); h < 4; h++ {
		visited = append(visited, c.IndexToAxes(h))
	}
	// Each consecutive pair must differ by exactly 1 in exactly one axis.
	for i := 1; i < len(visited); i++ {
		if manhattan(visited[i-1], visited[i]) != 1 {
			t.Errorf("step %d→%d not unit: %v → %v", i-1, i, visited[i-1], visited[i])
		}
	}
}

func manhattan(a, b []uint32) int {
	d := 0
	for i := range a {
		if a[i] > b[i] {
			d += int(a[i] - b[i])
		} else {
			d += int(b[i] - a[i])
		}
	}
	return d
}

func TestRoundTripExhaustive(t *testing.T) {
	for _, cfg := range []struct{ dims, bits int }{
		{1, 6}, {2, 4}, {3, 3}, {4, 2}, {5, 2}, {6, 2},
	} {
		c := MustNew(cfg.dims, cfg.bits)
		n := c.NumCells()
		seen := make(map[uint64]bool, n)
		for h := uint64(0); h < n; h++ {
			axes := c.IndexToAxes(h)
			for i, a := range axes {
				if a >= c.CellsPerDim() {
					t.Fatalf("%d/%d: axis %d out of range: %d", cfg.dims, cfg.bits, i, a)
				}
			}
			back := c.AxesToIndex(axes)
			if back != h {
				t.Fatalf("%d/%d: roundtrip %d → %v → %d", cfg.dims, cfg.bits, h, axes, back)
			}
			if seen[back] {
				t.Fatalf("%d/%d: index %d visited twice", cfg.dims, cfg.bits, back)
			}
			seen[back] = true
		}
		if uint64(len(seen)) != n {
			t.Fatalf("%d/%d: visited %d of %d cells", cfg.dims, cfg.bits, len(seen), n)
		}
	}
}

// The defining Hilbert property: consecutive curve positions are
// adjacent grid cells (unit Manhattan distance).
func TestUnitStepContinuity(t *testing.T) {
	for _, cfg := range []struct{ dims, bits int }{
		{2, 5}, {3, 4}, {4, 3}, {5, 2},
	} {
		c := MustNew(cfg.dims, cfg.bits)
		prev := c.IndexToAxes(0)
		for h := uint64(1); h < c.NumCells(); h++ {
			cur := c.IndexToAxes(h)
			if manhattan(prev, cur) != 1 {
				t.Fatalf("%d/%d: step at %d has distance %d (%v → %v)",
					cfg.dims, cfg.bits, h, manhattan(prev, cur), prev, cur)
			}
			prev = cur
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	c := MustNew(4, 4)
	f := func(raw uint64) bool {
		h := raw % c.NumCells()
		return c.AxesToIndex(c.IndexToAxes(h)) == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestAxesRoundTripQuick(t *testing.T) {
	c := MustNew(3, 5)
	f := func(a, b, cc uint32) bool {
		axes := []uint32{a % 32, b % 32, cc % 32}
		got := c.IndexToAxes(c.AxesToIndex(axes))
		return got[0] == axes[0] && got[1] == axes[1] && got[2] == axes[2]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestAxesToIndexDoesNotMutate(t *testing.T) {
	c := MustNew(3, 3)
	axes := []uint32{1, 2, 3}
	c.AxesToIndex(axes)
	if axes[0] != 1 || axes[1] != 2 || axes[2] != 3 {
		t.Errorf("input mutated: %v", axes)
	}
}

func TestAxesToIndexPanicsOnArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on wrong arity")
		}
	}()
	MustNew(3, 3).AxesToIndex([]uint32{1, 2})
}

// Theorem 2 fairness: a contiguous segment of the curve of length
// |H|/k traverses approximately the same proportion of every
// dimension's coordinate range. We verify that per-dimension coverage
// of each segment is within a factor ~2.5 of ideal — tight enough to
// separate Hilbert from row-major linearisation, where one dimension's
// segment coverage is 2^bits× the other's.
func TestSegmentFairness(t *testing.T) {
	c := MustNew(3, 4) // 4096 cells, 16 per dim
	k := 8
	segLen := c.NumCells() / uint64(k)
	for s := 0; s < k; s++ {
		lo := uint64(s) * segLen
		distinct := make([]map[uint32]bool, c.Dims())
		for i := range distinct {
			distinct[i] = make(map[uint32]bool)
		}
		for h := lo; h < lo+segLen; h++ {
			axes := c.IndexToAxes(h)
			for i, a := range axes {
				distinct[i][a] = true
			}
		}
		// Ideal: each segment covers 1/k of the volume; per-dim distinct
		// coordinate counts should be balanced across dimensions.
		minD, maxD := 1<<30, 0
		for _, d := range distinct {
			if len(d) < minD {
				minD = len(d)
			}
			if len(d) > maxD {
				maxD = len(d)
			}
		}
		if maxD > minD*3 {
			t.Errorf("segment %d: per-dim distinct coords unbalanced: min %d max %d", s, minD, maxD)
		}
	}
}

// Row-major linearisation fails the fairness test (sanity check that
// the fairness property is non-trivial): for comparison only.
func TestRowMajorIsUnfair(t *testing.T) {
	bits := 4
	dims := 3
	cells := uint64(1) << uint(bits*dims)
	k := uint64(8)
	segLen := cells / k
	// Row-major: axes from index digits.
	axesOf := func(h uint64) []uint32 {
		a := make([]uint32, dims)
		for i := dims - 1; i >= 0; i-- {
			a[i] = uint32(h & 15)
			h >>= uint(bits)
		}
		return a
	}
	distinct := make([]map[uint32]bool, dims)
	for i := range distinct {
		distinct[i] = make(map[uint32]bool)
	}
	for h := uint64(0); h < segLen; h++ {
		for i, a := range axesOf(h) {
			distinct[i][a] = true
		}
	}
	// Dimension 0 moves slowest: the first segment shouldn't cover it.
	if len(distinct[0]) >= len(distinct[dims-1]) {
		t.Skip("row-major coverage unexpectedly balanced (layout changed)")
	}
}

func TestInterleaveRoundTrip(t *testing.T) {
	c := MustNew(3, 4)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		x := []uint32{uint32(rng.Intn(16)), uint32(rng.Intn(16)), uint32(rng.Intn(16))}
		h := c.interleave(x)
		back := c.deinterleave(h)
		for j := range x {
			if x[j] != back[j] {
				t.Fatalf("interleave roundtrip: %v → %d → %v", x, h, back)
			}
		}
	}
}

func Test1DCurveIsIdentityLike(t *testing.T) {
	c := MustNew(1, 8)
	for h := uint64(0); h < 256; h++ {
		axes := c.IndexToAxes(h)
		if uint64(axes[0]) != h {
			// A 1-D Hilbert curve is the identity mapping.
			t.Fatalf("1-D curve not identity at %d: %v", h, axes)
		}
	}
}
