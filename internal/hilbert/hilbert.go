// Package hilbert implements the d-dimensional Hilbert space-filling
// curve used by the paper's "perfect partition function" (Theorem 2).
//
// The curve linearises the m-dimensional hyper-cube formed by the
// cross-product of the joined relations: each relation contributes one
// dimension, recursively halved η times (the paper's recursion count),
// giving 2^η cells per dimension. A contiguous segment of the curve is
// one reducer's component; because the curve traverses every dimension
// "fairly", equal-length segments touch near-equal proportions of every
// dimension, which minimises tuple duplication (Eq. 7–9).
//
// The implementation is Skilling's transpose algorithm ("Programming
// the Hilbert curve", AIP Conf. Proc. 707, 2004): conversions between
// axes and the transposed index in O(dims·bits) bit operations, plus
// bit interleaving to pack the transpose into a single uint64 index.
package hilbert

import "fmt"

// Curve is a Hilbert curve over a dims-dimensional grid with 2^bits
// cells per dimension. The total index space is 2^(dims·bits), which
// must fit in 63 bits.
type Curve struct {
	dims int
	bits int
}

// New creates a curve. dims ≥ 1, bits ≥ 1, dims·bits ≤ 63.
func New(dims, bits int) (*Curve, error) {
	if dims < 1 {
		return nil, fmt.Errorf("hilbert: dims must be >= 1, got %d", dims)
	}
	if bits < 1 {
		return nil, fmt.Errorf("hilbert: bits must be >= 1, got %d", bits)
	}
	if dims*bits > 63 {
		return nil, fmt.Errorf("hilbert: dims*bits = %d exceeds 63", dims*bits)
	}
	return &Curve{dims: dims, bits: bits}, nil
}

// MustNew is New that panics on error.
func MustNew(dims, bits int) *Curve {
	c, err := New(dims, bits)
	if err != nil {
		panic(err)
	}
	return c
}

// Dims returns the dimensionality.
func (c *Curve) Dims() int { return c.dims }

// Bits returns the per-dimension order (cells per dim = 2^bits).
func (c *Curve) Bits() int { return c.bits }

// CellsPerDim returns 2^bits.
func (c *Curve) CellsPerDim() uint32 { return 1 << uint(c.bits) }

// NumCells returns the total cell count 2^(dims·bits) — the curve length.
func (c *Curve) NumCells() uint64 { return 1 << uint(c.dims*c.bits) }

// AxesToIndex maps grid coordinates (each < 2^bits) to the Hilbert
// index along the curve. The axes slice is not modified.
func (c *Curve) AxesToIndex(axes []uint32) uint64 {
	if len(axes) != c.dims {
		panic(fmt.Sprintf("hilbert: got %d axes for %d-dim curve", len(axes), c.dims))
	}
	x := make([]uint32, c.dims)
	copy(x, axes)
	c.axesToTranspose(x)
	return c.interleave(x)
}

// IndexToAxes maps a Hilbert index back to grid coordinates.
func (c *Curve) IndexToAxes(h uint64) []uint32 {
	x := c.deinterleave(h)
	c.transposeToAxes(x)
	return x
}

// axesToTranspose converts coordinates into the transposed Hilbert
// form in place (Skilling's AxestoTranspose).
func (c *Curve) axesToTranspose(x []uint32) {
	n := c.dims
	m := uint32(1) << uint(c.bits-1)
	// Inverse undo.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint32
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// transposeToAxes converts the transposed Hilbert form back to
// coordinates in place (Skilling's TransposetoAxes).
func (c *Curve) transposeToAxes(x []uint32) {
	n := c.dims
	nBig := uint32(2) << uint(c.bits-1)
	// Gray decode by H ^ (H/2).
	t := x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != nBig; q <<= 1 {
		p := q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
}

// interleave packs the transposed form into a single index: bit j
// (from msb) of x[i] becomes bit (bits-1-j)·dims + (dims-1-i) of the
// result, i.e. the most significant index bits cycle x[0]…x[n-1] at
// their top bit positions.
func (c *Curve) interleave(x []uint32) uint64 {
	var h uint64
	for j := c.bits - 1; j >= 0; j-- {
		for i := 0; i < c.dims; i++ {
			h <<= 1
			h |= uint64((x[i] >> uint(j)) & 1)
		}
	}
	return h
}

// deinterleave unpacks an index into transposed form.
func (c *Curve) deinterleave(h uint64) []uint32 {
	x := make([]uint32, c.dims)
	total := c.dims * c.bits
	for pos := 0; pos < total; pos++ {
		// pos counts from msb of h.
		bit := (h >> uint(total-1-pos)) & 1
		j := c.bits - 1 - pos/c.dims // bit position within the axis
		i := pos % c.dims            // axis
		x[i] |= uint32(bit) << uint(j)
	}
	return x
}
