package relation

import "sort"

// Order-preserving string dictionary. A Dict maps the distinct strings
// of one column to dense codes 0..Len()-1 assigned in lexicographic
// order, so integer code comparison agrees with Compare on the member
// strings. Dictionaries are built once — at Analyze time for base
// relations (see InternStrings), at load time by the binary codec —
// and shared by reference through job outputs; they are immutable
// afterwards.
//
// Normalized sort keys derived from a dictionary use an even/odd
// scheme so that probe strings absent from the dictionary still
// resolve to the correct range position:
//
//   - NULL          → NullSortKey (Compare's NULL-sorts-first rule);
//   - member at sorted index i → even key 2·(i+1) (CodeKey);
//   - absent string with insertion point j (count of member strings
//     below it) → odd key 2·j+1, strictly between the neighbouring
//     member keys.
//
// Keys from different dictionaries are not mutually comparable, and
// two distinct absent strings falling in the same gap collide on the
// same odd key. Both hazards are avoided by construction: a condition
// only compiles to dictionary keys when one side's column carries a
// dictionary covering all of that side's values (predicate.KeyDict,
// see CondKeyModeDict), so every compared pair has at most one absent
// side and both sides key against the same reference dictionary.
type Dict struct {
	strs []string
	code map[string]int64
}

// NewDict builds a dictionary over the given strings (copied, sorted,
// deduplicated).
func NewDict(strs []string) *Dict {
	sorted := append([]string(nil), strs...)
	sort.Strings(sorted)
	uniq := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			uniq = append(uniq, s)
		}
	}
	d := &Dict{strs: uniq, code: make(map[string]int64, len(uniq))}
	for i, s := range uniq {
		d.code[s] = int64(i)
	}
	return d
}

// Len returns the number of member strings.
func (d *Dict) Len() int { return len(d.strs) }

// Code returns the dense order-preserving code of s, or false when s
// is not a member.
func (d *Dict) Code(s string) (int64, bool) {
	c, ok := d.code[s]
	return c, ok
}

// At returns the member string with the given code ("" out of range).
func (d *Dict) At(code int64) string {
	if code < 0 || code >= int64(len(d.strs)) {
		return ""
	}
	return d.strs[code]
}

// CodeKey is the normalized sort key of a member string with the given
// dictionary code: the even slot of the even/odd scheme.
func CodeKey(code int64) int64 { return 2 * (code + 1) }

// ProbeKey returns the normalized sort key of an arbitrary probe
// string: the member key when s is in the dictionary, otherwise the
// odd gap key between the neighbouring members. Key order agrees with
// Compare for any pair of strings of which at least one is a member.
func (d *Dict) ProbeKey(s string) int64 {
	if c, ok := d.code[s]; ok {
		return CodeKey(c)
	}
	j := sort.SearchStrings(d.strs, s)
	return 2*int64(j) + 1
}

// Key returns the normalized sort key of a value under this
// dictionary: NullSortKey for NULL, ProbeKey of the string payload
// otherwise. Callers that know v was interned against this exact
// dictionary can skip the lookup and use CodeKey(code) directly.
func (d *Dict) Key(v Value) int64 {
	if v.IsNull() {
		return NullSortKey
	}
	return d.ProbeKey(v.Str())
}

// InternStrings builds an order-preserving dictionary for every string
// column of r that lacks one and rewrites the column's values in place
// to carry their dictionary codes (see InternedStr). Interning changes
// no comparison result — Compare, Equal and Tuple.Key stay
// string-based — but shrinks EncodedSize to the varint code width and
// unlocks the predicate.KeyDict fast path in the join evaluator.
// Columns containing non-NULL, non-string values are skipped.
func InternStrings(r *Relation) {
	if r.Schema == nil {
		return
	}
	n := r.Schema.Len()
	for ci := 0; ci < n; ci++ {
		if r.Schema.Column(ci).Kind != KindString || r.DictOf(ci) != nil {
			continue
		}
		distinct := make(map[string]struct{})
		ok := true
		for _, t := range r.Tuples {
			v := t[ci]
			if v.IsNull() {
				continue
			}
			if v.Kind() != KindString {
				ok = false
				break
			}
			distinct[v.Str()] = struct{}{}
		}
		if !ok || len(distinct) == 0 {
			continue
		}
		strs := make([]string, 0, len(distinct))
		for s := range distinct {
			strs = append(strs, s)
		}
		d := NewDict(strs)
		if r.Dicts == nil {
			r.Dicts = make([]*Dict, n)
		}
		r.Dicts[ci] = d
		for _, t := range r.Tuples {
			v := t[ci]
			if v.Kind() != KindString {
				continue
			}
			c, _ := d.Code(v.Str())
			t[ci] = InternedStr(d.At(c), c)
		}
	}
}
