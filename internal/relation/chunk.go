package relation

import (
	"fmt"
	"io"
	"math"
)

// Columnar block relations. A Chunk is a bounded run of rows stored
// struct-of-arrays: one typed payload array per column (int64 for
// int/time, float64 for float, string plus a dictionary-code-slot
// array for string columns) and a per-column "no fast payload" bitmap
// covering NULLs and the rare row whose dynamic kind differs from the
// column's declared kind (kept exactly in a sparse exception map, so a
// chunk round-trips any tuple a row-oriented Relation can hold).
//
// Chunks are the unit of out-of-core execution: the chunk codec
// (chunkcodec.go) serializes them without materializing rows, the dfs
// block store spills and pages them, and the mr engine streams map
// input chunk by chunk. Row-oriented call sites consume chunks through
// cursor views (Cursor, Chunk.Row) — a chunk never needs to be turned
// back into a []Tuple wholesale. Key-extraction helpers (AppendIntKeys
// and friends) read the payload arrays directly so the join
// evaluator's key-column cache is built without re-boxing a Value per
// row.
//
// DefaultChunkRows is the default chunk granularity: small enough that
// one decoded chunk is a negligible memory commitment, large enough to
// amortise per-chunk overheads in scans.
const DefaultChunkRows = 1024

// colVec is one column of a Chunk. Payload arrays are row-indexed
// (dense, zero-valued at skipped rows) so columnar scans need no rank
// computation; skip marks rows without a fast payload.
type colVec struct {
	kind Kind
	skip bitmap
	// ints holds int/time payloads; for string columns it holds the
	// value's dictionary code slot (code+1, 0 = not interned), exactly
	// the integer payload Value carries internally.
	ints   []int64
	floats []float64
	strs   []string
	// exc maps row → exact Value for rows whose dynamic kind differs
	// from the declared column kind (skip bit also set). Nil when the
	// column is well-typed — the overwhelmingly common case.
	exc map[int]Value
}

// bitmap is a plain little-endian bit set.
type bitmap []uint64

func (b bitmap) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitmap) get(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// any reports whether any bit is set.
func (b bitmap) any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// Chunk is a columnar block of up to a few thousand rows sharing one
// schema. Chunks are immutable once built (see ChunkBuilder).
type Chunk struct {
	schema *Schema
	n      int
	cols   []colVec
	bytes  int64 // sum of Value.EncodedSize over all rows
}

// Rows returns the number of rows in the chunk.
func (c *Chunk) Rows() int { return c.n }

// EncodedBytes returns the raw (pre-multiplier) encoded byte size of
// the chunk's rows — the same quantity Relation.EncodedSize charges
// for the equivalent []Tuple.
func (c *Chunk) EncodedBytes() int64 { return c.bytes }

// Schema returns the chunk's schema.
func (c *Chunk) Schema() *Schema { return c.schema }

// Value reconstructs the value at (row, col). The reconstruction is
// exact: kind, payload and dictionary code slot round-trip
// bit-identically with the Value that was appended.
func (c *Chunk) Value(row, col int) Value {
	cv := &c.cols[col]
	if cv.skip.get(row) {
		if cv.exc != nil {
			if v, ok := cv.exc[row]; ok {
				return v
			}
		}
		return Null()
	}
	switch cv.kind {
	case KindInt:
		return Int(cv.ints[row])
	case KindTime:
		return TimeUnix(cv.ints[row])
	case KindFloat:
		return Float(cv.floats[row])
	case KindString:
		if slot := cv.ints[row]; slot > 0 {
			return InternedStr(cv.strs[row], slot-1)
		}
		return Str(cv.strs[row])
	default:
		return Null()
	}
}

// Row materialises row i as a fresh Tuple.
func (c *Chunk) Row(i int) Tuple {
	return c.AppendRow(make(Tuple, 0, len(c.cols)), i)
}

// AppendRow appends row i's values to dst and returns it — the
// cursor-view primitive for row-oriented call sites that manage their
// own buffers.
func (c *Chunk) AppendRow(dst Tuple, i int) Tuple {
	for ci := range c.cols {
		dst = append(dst, c.Value(i, ci))
	}
	return dst
}

// AppendIntKeys appends the integer-mode normalized sort key
// (SortKeyInt semantics) of column col, shifted by off, for every row,
// reading the int64 payload array directly. The column must be
// declared int or time; rows without a fast payload fall back to the
// exact per-value extractor.
func (c *Chunk) AppendIntKeys(col int, off float64, dst []int64) []int64 {
	cv := &c.cols[col]
	if cv.kind == KindInt && off != math.Trunc(off) {
		// Value.Add promotes int + fractional offset to float and
		// Int64 truncates the sum; times truncate the offset instead
		// and stay on the integer path below.
		for i := 0; i < c.n; i++ {
			if cv.skip.get(i) {
				dst = append(dst, SortKeyInt(c.Value(i, col), off))
				continue
			}
			dst = append(dst, int64(float64(cv.ints[i])+off))
		}
		return dst
	}
	ioff := int64(off)
	for i := 0; i < c.n; i++ {
		if cv.skip.get(i) {
			dst = append(dst, SortKeyInt(c.Value(i, col), off))
			continue
		}
		dst = append(dst, cv.ints[i]+ioff)
	}
	return dst
}

// AppendFloatKeys appends the float-mode normalized sort key
// (SortKeyFloat semantics) of column col shifted by off for every row,
// computing the order-preserving bit remap straight from the payload
// arrays.
func (c *Chunk) AppendFloatKeys(col int, off float64, dst []int64) []int64 {
	cv := &c.cols[col]
	for i := 0; i < c.n; i++ {
		if cv.skip.get(i) {
			dst = append(dst, SortKeyFloat(c.Value(i, col), off))
			continue
		}
		var f float64
		switch cv.kind {
		case KindFloat:
			f = cv.floats[i] + off
		case KindTime:
			// Value.Add truncates the offset for times unconditionally.
			f = float64(cv.ints[i] + int64(off))
		default: // int payload: Add keeps integer arithmetic for integral offsets
			if off == math.Trunc(off) {
				f = float64(cv.ints[i] + int64(off))
			} else {
				f = float64(cv.ints[i]) + off
			}
		}
		dst = append(dst, floatKeyBits(f))
	}
	return dst
}

// AppendDictKeys appends the dictionary-mode normalized sort key of
// string column col for every row, against reference dictionary ref.
// direct marks a column whose values are interned against ref itself:
// its keys come straight from the embedded code slots; otherwise every
// row probes ref by string (Dict.ProbeKey).
func (c *Chunk) AppendDictKeys(col int, ref *Dict, direct bool, dst []int64) []int64 {
	cv := &c.cols[col]
	for i := 0; i < c.n; i++ {
		if cv.skip.get(i) {
			v := c.Value(i, col)
			if v.IsNull() {
				dst = append(dst, NullSortKey)
				continue
			}
			if direct {
				if code, ok := v.DictCode(); ok {
					dst = append(dst, CodeKey(code))
					continue
				}
			}
			dst = append(dst, ref.ProbeKey(v.Str()))
			continue
		}
		if direct {
			if slot := cv.ints[i]; slot > 0 {
				dst = append(dst, CodeKey(slot-1))
				continue
			}
		}
		dst = append(dst, ref.ProbeKey(cv.strs[i]))
	}
	return dst
}

// ChunkBuilder accumulates rows into a Chunk.
type ChunkBuilder struct {
	c *Chunk
}

// NewChunkBuilder starts an empty chunk over the schema with capacity
// for capHint rows.
func NewChunkBuilder(schema *Schema, capHint int) *ChunkBuilder {
	if capHint <= 0 {
		capHint = DefaultChunkRows
	}
	c := &Chunk{schema: schema, cols: make([]colVec, schema.Len())}
	for i := range c.cols {
		c.cols[i].kind = schema.Column(i).Kind
	}
	b := &ChunkBuilder{c: c}
	b.reserve(capHint)
	return b
}

func (b *ChunkBuilder) reserve(n int) {
	for i := range b.c.cols {
		cv := &b.c.cols[i]
		switch cv.kind {
		case KindInt, KindTime:
			cv.ints = make([]int64, 0, n)
		case KindFloat:
			cv.floats = make([]float64, 0, n)
		case KindString:
			cv.ints = make([]int64, 0, n)
			cv.strs = make([]string, 0, n)
		}
	}
}

// Rows returns the number of rows appended so far.
func (b *ChunkBuilder) Rows() int { return b.c.n }

// EncodedBytes returns the raw encoded size of the rows appended so far.
func (b *ChunkBuilder) EncodedBytes() int64 { return b.c.bytes }

// Append adds one row. The tuple's arity must match the schema.
func (b *ChunkBuilder) Append(t Tuple) error {
	c := b.c
	if len(t) != len(c.cols) {
		return fmt.Errorf("relation: chunk append: arity %d != schema arity %d", len(t), len(c.cols))
	}
	row := c.n
	for ci, v := range t {
		cv := &c.cols[ci]
		fast := !v.IsNull() && v.kind == cv.kind
		if fast {
			switch cv.kind {
			case KindInt, KindTime:
				cv.ints = append(cv.ints, v.i)
			case KindFloat:
				cv.floats = append(cv.floats, v.f)
			case KindString:
				cv.ints = append(cv.ints, v.i) // code slot
				cv.strs = append(cv.strs, v.s)
			default:
				fast = false
			}
		}
		if !fast {
			// Keep the payload arrays dense (row-indexed) with zero
			// values at skipped rows.
			switch cv.kind {
			case KindInt, KindTime:
				cv.ints = append(cv.ints, 0)
			case KindFloat:
				cv.floats = append(cv.floats, 0)
			case KindString:
				cv.ints = append(cv.ints, 0)
				cv.strs = append(cv.strs, "")
			}
			markSkip(cv, row)
			if !v.IsNull() {
				if cv.exc == nil {
					cv.exc = make(map[int]Value)
				}
				cv.exc[row] = v
			}
		}
		c.bytes += int64(v.EncodedSize())
	}
	c.bytes += tupleFrameBytes
	c.n++
	return nil
}

// tupleFrameBytes is the per-row framing overhead Tuple.EncodedSize
// charges; chunk byte accounting includes it so EncodedBytes over a
// chunk equals the sum of Tuple.EncodedSize over its rows.
const tupleFrameBytes = 4

// markSkip sets the skip bit for row, growing the bitmap as needed.
func markSkip(cv *colVec, row int) {
	for len(cv.skip) <= row/64 {
		cv.skip = append(cv.skip, 0)
	}
	cv.skip.set(row)
}

// Build finalises and returns the chunk; the builder must not be used
// afterwards.
func (b *ChunkBuilder) Build() *Chunk {
	c := b.c
	// Normalise the skip bitmaps to the full row count so codec and
	// accessors can index without bounds checks beyond the slice.
	words := (c.n + 63) / 64
	for i := range c.cols {
		for len(c.cols[i].skip) < words {
			c.cols[i].skip = append(c.cols[i].skip, 0)
		}
	}
	b.c = nil
	return c
}

// PackChunk unboxes an already-materialised tuple slice into one
// columnar chunk — used by consumers that hold a candidate list (e.g.
// the reducer-side key-column cache) and want vectorized column access
// without per-tuple re-boxing on every read. The tuples must conform
// to the schema.
func PackChunk(schema *Schema, tuples []Tuple) *Chunk {
	b := NewChunkBuilder(schema, len(tuples))
	for _, t := range tuples {
		if err := b.Append(t); err != nil {
			panic(err) // arity checked by the caller against the schema
		}
	}
	return b.Build()
}

// ChunksOf splits the relation into columnar chunks of at most
// rowsPerChunk rows (DefaultChunkRows when <= 0).
func ChunksOf(r *Relation, rowsPerChunk int) []*Chunk {
	if rowsPerChunk <= 0 {
		rowsPerChunk = DefaultChunkRows
	}
	var chunks []*Chunk
	for lo := 0; lo < len(r.Tuples); lo += rowsPerChunk {
		hi := lo + rowsPerChunk
		if hi > len(r.Tuples) {
			hi = len(r.Tuples)
		}
		b := NewChunkBuilder(r.Schema, hi-lo)
		for _, t := range r.Tuples[lo:hi] {
			if err := b.Append(t); err != nil {
				panic(err) // tuples validated at Relation.Append time
			}
		}
		chunks = append(chunks, b.Build())
	}
	return chunks
}

// ChunkIterator yields chunks in order; io.EOF marks the end of the
// stream.
type ChunkIterator interface {
	NextChunk() (*Chunk, error)
}

// sliceChunks adapts a built []*Chunk to the iterator interface.
type sliceChunks struct {
	chunks []*Chunk
	i      int
}

func (s *sliceChunks) NextChunk() (*Chunk, error) {
	if s.i >= len(s.chunks) {
		return nil, io.EOF
	}
	c := s.chunks[s.i]
	s.chunks[s.i] = nil // release as consumed
	s.i++
	return c, nil
}

// ChunkStream returns an iterator over the relation's tuples in
// columnar chunks of rowsPerChunk rows. The chunks are built lazily,
// one ahead of consumption, so a consumer that releases chunks as it
// goes holds at most one chunk of the relation in columnar form.
func (r *Relation) ChunkStream(rowsPerChunk int) ChunkIterator {
	if rowsPerChunk <= 0 {
		rowsPerChunk = DefaultChunkRows
	}
	return &lazyChunks{r: r, per: rowsPerChunk}
}

type lazyChunks struct {
	r   *Relation
	per int
	lo  int
}

func (l *lazyChunks) NextChunk() (*Chunk, error) {
	if l.lo >= len(l.r.Tuples) {
		return nil, io.EOF
	}
	hi := l.lo + l.per
	if hi > len(l.r.Tuples) {
		hi = len(l.r.Tuples)
	}
	b := NewChunkBuilder(l.r.Schema, hi-l.lo)
	for _, t := range l.r.Tuples[l.lo:hi] {
		if err := b.Append(t); err != nil {
			return nil, err
		}
	}
	l.lo = hi
	return b.Build(), nil
}

// Cursor is the row view over a chunk stream: row-oriented call sites
// iterate tuples without ever materialising the full relation.
type Cursor struct {
	it    ChunkIterator
	chunk *Chunk
	row   int
}

// NewCursor returns a cursor over the iterator's rows.
func NewCursor(it ChunkIterator) *Cursor { return &Cursor{it: it} }

// Next returns the next row (a fresh Tuple safe to retain), false at
// the end of the stream.
func (cu *Cursor) Next() (Tuple, bool, error) {
	for cu.chunk == nil || cu.row >= cu.chunk.Rows() {
		c, err := cu.it.NextChunk()
		if err == io.EOF {
			cu.chunk = nil
			return nil, false, nil
		}
		if err != nil {
			return nil, false, err
		}
		cu.chunk, cu.row = c, 0
	}
	t := cu.chunk.Row(cu.row)
	cu.row++
	return t, true, nil
}
