package relation

import (
	"math"
	"math/rand"
	"testing"
)

// Key order must agree with Compare on the shifted values, for every
// pair drawn from a mixed numeric pool and a sweep of offsets.
func TestSortKeyOrderMatchesCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ints := []Value{Null(), Int(-5), Int(0), Int(3), Int(1 << 40), TimeUnix(1700000000)}
	for i := 0; i < 200; i++ {
		ints = append(ints, Int(int64(rng.Intn(2000)-1000)))
	}
	floats := []Value{Null(), Float(-3.5), Float(0), Float(math.Copysign(0, -1)), Float(2.25), Float(math.Inf(1)), Float(math.Inf(-1))}
	for i := 0; i < 200; i++ {
		floats = append(floats, Float(rng.NormFloat64()*100), Int(int64(rng.Intn(2000)-1000)))
	}
	for _, offs := range [][2]float64{{0, 0}, {3, 0}, {0, -7}, {12, 12}} {
		for _, a := range ints {
			for _, b := range ints {
				ka, kb := SortKeyInt(a, offs[0]), SortKeyInt(b, offs[1])
				want := Compare(a.Add(offs[0]), b.Add(offs[1]))
				got := 0
				if ka < kb {
					got = -1
				} else if ka > kb {
					got = 1
				}
				if got != want {
					t.Fatalf("int keys disagree with Compare: %v+%g vs %v+%g: key %d, Compare %d",
						a, offs[0], b, offs[1], got, want)
				}
			}
		}
	}
	for _, offs := range [][2]float64{{0, 0}, {0.5, 0}, {0, -2.75}, {1.5, 1.5}} {
		for _, a := range floats {
			for _, b := range floats {
				ka, kb := SortKeyFloat(a, offs[0]), SortKeyFloat(b, offs[1])
				want := Compare(a.Add(offs[0]), b.Add(offs[1]))
				got := 0
				if ka < kb {
					got = -1
				} else if ka > kb {
					got = 1
				}
				if got != want {
					t.Fatalf("float keys disagree with Compare: %v+%g vs %v+%g: key %d, Compare %d",
						a, offs[0], b, offs[1], got, want)
				}
			}
		}
	}
}

func TestSortKeyNullIsMinimum(t *testing.T) {
	if SortKeyInt(Null(), 5) != NullSortKey || SortKeyFloat(Null(), -2.5) != NullSortKey {
		t.Error("NULL key moved by offset")
	}
	if SortKeyFloat(Float(math.Inf(-1)), 0) <= NullSortKey {
		t.Error("-Inf does not sort above NULL")
	}
	if SortKeyInt(Int(math.MinInt64+1), 0) <= NullSortKey {
		t.Error("near-minimal int does not sort above NULL")
	}
}

func TestSortKeyNegativeZero(t *testing.T) {
	if SortKeyFloat(Float(math.Copysign(0, -1)), 0) != SortKeyFloat(Float(0), 0) {
		t.Error("-0.0 and +0.0 keys differ")
	}
}
