package relation

import (
	"bufio"
	"encoding/binary"
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// WriteCSV writes the relation with a typed header line
// ("name:kind,...") followed by one CSV record per tuple.
func WriteCSV(w io.Writer, r *Relation) error {
	cw := csv.NewWriter(w)
	header := make([]string, r.Schema.Len())
	for i := 0; i < r.Schema.Len(); i++ {
		c := r.Schema.Column(i)
		header[i] = c.Name + ":" + c.Kind.String()
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, r.Schema.Len())
	for _, t := range r.Tuples {
		for i, v := range t {
			rec[i] = v.String()
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a relation written by WriteCSV. The relation name is
// supplied by the caller (CSV files do not carry one).
func ReadCSV(rd io.Reader, name string) (*Relation, error) {
	cr := csv.NewReader(rd)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: read csv header: %w", err)
	}
	cols := make([]Column, len(header))
	for i, h := range header {
		parts := strings.SplitN(h, ":", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("relation: malformed csv header field %q (want name:kind)", h)
		}
		kind, err := ParseKind(parts[1])
		if err != nil {
			return nil, err
		}
		cols[i] = Column{Name: parts[0], Kind: kind}
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	rel := New(name, schema)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: read csv: %w", err)
		}
		if len(rec) != len(cols) {
			return nil, fmt.Errorf("relation: csv record has %d fields, want %d", len(rec), len(cols))
		}
		t := make(Tuple, len(cols))
		for i, field := range rec {
			v, err := ParseValue(cols[i].Kind, field)
			if err != nil {
				return nil, err
			}
			t[i] = v
		}
		rel.Tuples = append(rel.Tuples, t)
	}
	return rel, nil
}

// Binary codec layout, v1:
//
//	magic "RELB" | u16 ncols | per col: u8 kindByte, u16 nameLen, name |
//	u32 ntuples | per tuple: per value: u8 kind, payload
//
// v2 adds a per-column dictionary section so interned string columns
// (see Dict and InternStrings) serialize as varint codes instead of
// length-prefixed bytes:
//
//	magic "REL2" | u16 ncols |
//	per col: u8 kindByte, u16 nameLen, name, u8 hasDict,
//	         [uvarint nstrs, nstrs × (uvarint len, bytes)] |
//	u32 ntuples | per tuple: per value: u8 kind, payload
//
// In a v2 dictionary column a string value's payload is uvarint(code+1);
// the reserved 0 escapes to the inline v1 string layout for values not
// in the dictionary (a post-interning append). WriteBinary emits v1
// when the relation carries no dictionaries — so v1 remains the format
// of plain relations — and ReadBinary accepts both magics.
//
// The binary form is what the simulated DFS stores and what shuffle
// byte accounting measures; Value.EncodedSize mirrors the per-value
// layout chosen here.

const (
	binaryMagic   = "RELB"
	binaryMagicV2 = "REL2"
)

// WriteBinary writes the relation in the compact binary format: v1
// when no column has a dictionary, v2 otherwise.
func WriteBinary(w io.Writer, r *Relation) error {
	v2 := false
	for _, d := range r.Dicts {
		if d != nil {
			v2 = true
			break
		}
	}
	bw := bufio.NewWriter(w)
	magic := binaryMagic
	if v2 {
		magic = binaryMagicV2
	}
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	writeU16 := func(v uint16) error {
		binary.LittleEndian.PutUint16(scratch[:2], v)
		_, err := bw.Write(scratch[:2])
		return err
	}
	writeU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, err := bw.Write(scratch[:4])
		return err
	}
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	if err := writeU16(uint16(r.Schema.Len())); err != nil {
		return err
	}
	for i := 0; i < r.Schema.Len(); i++ {
		c := r.Schema.Column(i)
		if err := bw.WriteByte(byte(c.Kind)); err != nil {
			return err
		}
		if err := writeU16(uint16(len(c.Name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(c.Name); err != nil {
			return err
		}
		if !v2 {
			continue
		}
		d := r.DictOf(i)
		if d == nil {
			if err := bw.WriteByte(0); err != nil {
				return err
			}
			continue
		}
		if err := bw.WriteByte(1); err != nil {
			return err
		}
		if err := writeUvarint(uint64(d.Len())); err != nil {
			return err
		}
		for c := int64(0); c < int64(d.Len()); c++ {
			s := d.At(c)
			if err := writeUvarint(uint64(len(s))); err != nil {
				return err
			}
			if _, err := bw.WriteString(s); err != nil {
				return err
			}
		}
	}
	if err := writeU32(uint32(len(r.Tuples))); err != nil {
		return err
	}
	for _, t := range r.Tuples {
		for ci, v := range t {
			if v2 && r.DictOf(ci) != nil && v.Kind() == KindString {
				if err := bw.WriteByte(byte(KindString)); err != nil {
					return err
				}
				if code, ok := v.DictCode(); ok {
					if err := writeUvarint(uint64(code + 1)); err != nil {
						return err
					}
					continue
				}
				// Escape: a string appended after interning.
				if err := writeUvarint(0); err != nil {
					return err
				}
				if err := writeU32(uint32(len(v.Str()))); err != nil {
					return err
				}
				if _, err := bw.WriteString(v.Str()); err != nil {
					return err
				}
				continue
			}
			if err := writeValue(bw, scratch[:], v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

func writeValue(bw *bufio.Writer, scratch []byte, v Value) error {
	if err := bw.WriteByte(byte(v.kind)); err != nil {
		return err
	}
	switch v.kind {
	case KindNull:
		return nil
	case KindInt, KindTime:
		binary.LittleEndian.PutUint64(scratch[:8], uint64(v.i))
		_, err := bw.Write(scratch[:8])
		return err
	case KindFloat:
		binary.LittleEndian.PutUint64(scratch[:8], floatBits(v.f))
		_, err := bw.Write(scratch[:8])
		return err
	case KindString:
		binary.LittleEndian.PutUint32(scratch[:4], uint32(len(v.s)))
		if _, err := bw.Write(scratch[:4]); err != nil {
			return err
		}
		_, err := bw.WriteString(v.s)
		return err
	default:
		return fmt.Errorf("relation: write value: unknown kind %v", v.kind)
	}
}

// ReadBinary reads a relation written by WriteBinary or
// WriteBinaryChunked, accepting the v1 ("RELB"), v2 ("REL2") and
// chunk-framed v3 ("RELC") framings; v2/v3 files restore the
// per-column dictionaries and re-intern their string values.
func ReadBinary(r io.Reader, name string) (*Relation, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("relation: read binary magic: %w", err)
	}
	if string(magic) == binaryMagicChunked {
		dec, err := newChunkDecoderAfterMagic(br)
		if err != nil {
			return nil, err
		}
		rel := New(name, dec.Schema())
		if dec.HasDicts() {
			rel.Dicts = dec.Dicts()
		}
		cur := NewCursor(dec)
		for {
			t, ok, err := cur.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			rel.Tuples = append(rel.Tuples, t)
		}
		return rel, nil
	}
	v2 := string(magic) == binaryMagicV2
	if !v2 && string(magic) != binaryMagic {
		return nil, fmt.Errorf("relation: bad binary magic %q", magic)
	}
	var scratch [8]byte
	readU16 := func() (uint16, error) {
		if _, err := io.ReadFull(br, scratch[:2]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint16(scratch[:2]), nil
	}
	readU32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(scratch[:4]), nil
	}
	ncols, err := readU16()
	if err != nil {
		return nil, err
	}
	cols := make([]Column, ncols)
	dicts := make([]*Dict, ncols)
	haveDict := false
	for i := range cols {
		kb, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		nameLen, err := readU16()
		if err != nil {
			return nil, err
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBuf); err != nil {
			return nil, err
		}
		cols[i] = Column{Name: string(nameBuf), Kind: Kind(kb)}
		if !v2 {
			continue
		}
		hasDict, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if hasDict == 0 {
			continue
		}
		nstrs, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		strs := make([]string, nstrs)
		for j := range strs {
			slen, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			buf := make([]byte, slen)
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, err
			}
			strs[j] = string(buf)
		}
		// The section is written in code order, which NewDict's
		// sort-and-dedup reproduces.
		dicts[i] = NewDict(strs)
		haveDict = true
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	rel := New(name, schema)
	if haveDict {
		rel.Dicts = dicts
	}
	ntuples, err := readU32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < ntuples; i++ {
		t := make(Tuple, ncols)
		for j := range t {
			if v2 && dicts[j] != nil {
				v, err := readDictValue(br, scratch[:], dicts[j])
				if err != nil {
					return nil, err
				}
				t[j] = v
				continue
			}
			v, err := readValue(br, scratch[:])
			if err != nil {
				return nil, err
			}
			t[j] = v
		}
		rel.Tuples = append(rel.Tuples, t)
	}
	return rel, nil
}

// readDictValue reads one value of a v2 dictionary column: string
// payloads are uvarint codes (0 escaping to the inline layout);
// non-string kinds fall through to the shared reader.
func readDictValue(br *bufio.Reader, scratch []byte, d *Dict) (Value, error) {
	kb, err := br.ReadByte()
	if err != nil {
		return Null(), err
	}
	if Kind(kb) != KindString {
		if err := br.UnreadByte(); err != nil {
			return Null(), err
		}
		return readValue(br, scratch)
	}
	u, err := binary.ReadUvarint(br)
	if err != nil {
		return Null(), err
	}
	if u == 0 {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return Null(), err
		}
		n := binary.LittleEndian.Uint32(scratch[:4])
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return Null(), err
		}
		return Str(string(buf)), nil
	}
	code := int64(u - 1)
	if code >= int64(d.Len()) {
		return Null(), fmt.Errorf("relation: read value: dict code %d out of range (dict size %d)", code, d.Len())
	}
	return InternedStr(d.At(code), code), nil
}

func readValue(br *bufio.Reader, scratch []byte) (Value, error) {
	kb, err := br.ReadByte()
	if err != nil {
		return Null(), err
	}
	switch Kind(kb) {
	case KindNull:
		return Null(), nil
	case KindInt, KindTime:
		if _, err := io.ReadFull(br, scratch[:8]); err != nil {
			return Null(), err
		}
		n := int64(binary.LittleEndian.Uint64(scratch[:8]))
		if Kind(kb) == KindTime {
			return TimeUnix(n), nil
		}
		return Int(n), nil
	case KindFloat:
		if _, err := io.ReadFull(br, scratch[:8]); err != nil {
			return Null(), err
		}
		return Float(floatFromBits(binary.LittleEndian.Uint64(scratch[:8]))), nil
	case KindString:
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return Null(), err
		}
		n := binary.LittleEndian.Uint32(scratch[:4])
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return Null(), err
		}
		return Str(string(buf)), nil
	default:
		return Null(), fmt.Errorf("relation: read value: unknown kind byte %d", kb)
	}
}
