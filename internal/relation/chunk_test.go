package relation

import (
	"bufio"
	"bytes"
	"io"
	"math"
	"testing"
)

// chunkTestRelation builds a relation exercising every layout path:
// interned and plain strings, NULLs in every column, a mixed-kind
// exception row (a string in the int column), negative zero, and a
// cardinality (10) that straddles chunk edges at rowsPerChunk 3.
func chunkTestRelation(t *testing.T) *Relation {
	t.Helper()
	schema, err := NewSchema(
		Column{Name: "id", Kind: KindInt},
		Column{Name: "score", Kind: KindFloat},
		Column{Name: "city", Kind: KindString},
		Column{Name: "note", Kind: KindString},
		Column{Name: "ts", Kind: KindTime},
	)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDict([]string{"amsterdam", "beijing", "chicago", "delhi"})
	r := New("probe", schema)
	r.Dicts = []*Dict{nil, nil, d, nil, nil}
	interned := func(s string) Value {
		c, ok := d.Code(s)
		if !ok {
			t.Fatalf("not a dict member: %q", s)
		}
		return InternedStr(s, c)
	}
	r.Tuples = []Tuple{
		{Int(1), Float(1.5), interned("beijing"), Str("plain one"), TimeUnix(100)},
		{Int(2), Float(-0.0), interned("amsterdam"), Str(""), TimeUnix(200)},
		{Null(), Float(2.25), interned("delhi"), Null(), Null()},
		{Int(4), Null(), Str("zurich"), Str("post-intern append"), TimeUnix(400)},
		{Int(5), Float(math.MaxFloat64), interned("chicago"), Str("x"), TimeUnix(-5)},
		{Str("oops"), Float(-3.5), Null(), Str("mixed-kind row"), TimeUnix(600)},
		{Int(7), Float(0), interned("beijing"), Str("seven"), TimeUnix(700)},
		{Int(-8), Float(8.125), interned("delhi"), Null(), TimeUnix(800)},
		{Int(9), Float(9), Str("unseen"), Str("nine"), TimeUnix(900)},
		{Int(10), Float(10.5), interned("amsterdam"), Str("ten"), TimeUnix(1000)},
	}
	return r
}

// requireValueIdentical asserts bit-identity: same kind, same payload,
// same dictionary code slot — and therefore same EncodedSize.
func requireValueIdentical(t *testing.T, got, want Value, where string) {
	t.Helper()
	if got != want {
		t.Fatalf("%s: value %#v != %#v", where, got, want)
	}
	if got.EncodedSize() != want.EncodedSize() {
		t.Fatalf("%s: EncodedSize %d != %d", where, got.EncodedSize(), want.EncodedSize())
	}
}

func requireTuplesIdentical(t *testing.T, got, want []Tuple, where string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d tuples, want %d", where, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: tuple %d arity %d, want %d", where, i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			requireValueIdentical(t, got[i][j], want[i][j], where)
		}
	}
}

// TestChunkRoundTrip: columnar chunks reconstruct every row
// bit-identically through cursor views, across chunk edges, and their
// byte accounting matches the row representation.
func TestChunkRoundTrip(t *testing.T) {
	r := chunkTestRelation(t)
	for _, per := range []int{1, 3, 4, 10, 100} {
		chunks := ChunksOf(r, per)
		wantChunks := (len(r.Tuples) + per - 1) / per
		if len(chunks) != wantChunks {
			t.Fatalf("per=%d: %d chunks, want %d", per, len(chunks), wantChunks)
		}
		var rows []Tuple
		var bytes int64
		for _, c := range chunks {
			bytes += c.EncodedBytes()
			for i := 0; i < c.Rows(); i++ {
				rows = append(rows, c.Row(i))
			}
		}
		requireTuplesIdentical(t, rows, r.Tuples, "chunks")
		var want int64
		for _, tup := range r.Tuples {
			want += int64(tup.EncodedSize())
		}
		if bytes != want {
			t.Fatalf("per=%d: chunk bytes %d, want %d", per, bytes, want)
		}
		// The cursor view over the lazy stream yields the same rows.
		cur := NewCursor(r.ChunkStream(per))
		var streamed []Tuple
		for {
			tup, ok, err := cur.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			streamed = append(streamed, tup)
		}
		requireTuplesIdentical(t, streamed, r.Tuples, "cursor")
	}
}

// TestChunkedCodecRoundTrip: RELC framing loads bit-identically, with
// values straddling chunk edges, and agrees with what the legacy RELB
// and REL2 row framings load.
func TestChunkedCodecRoundTrip(t *testing.T) {
	r := chunkTestRelation(t)
	for _, per := range []int{1, 3, 7, 10, 4096} {
		var buf bytes.Buffer
		if err := WriteBinaryChunked(&buf, r, per); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBinary(&buf, r.Name)
		if err != nil {
			t.Fatalf("per=%d: %v", per, err)
		}
		requireTuplesIdentical(t, got.Tuples, r.Tuples, "RELC")
		if got.DictOf(2) == nil || got.DictOf(2).Len() != r.DictOf(2).Len() {
			t.Fatalf("per=%d: dictionary not restored", per)
		}
		if ContentHash(got) != ContentHash(r) {
			t.Fatalf("per=%d: content hash changed across RELC round trip", per)
		}
	}

	// The row-framed v2 codec loads the same bits.
	var v2buf bytes.Buffer
	if err := WriteBinary(&v2buf, r); err != nil {
		t.Fatal(err)
	}
	v2rel, err := ReadBinary(&v2buf, r.Name)
	if err != nil {
		t.Fatal(err)
	}
	var cbuf bytes.Buffer
	if err := WriteBinaryChunked(&cbuf, r, 3); err != nil {
		t.Fatal(err)
	}
	crel, err := ReadBinary(&cbuf, r.Name)
	if err != nil {
		t.Fatal(err)
	}
	requireTuplesIdentical(t, crel.Tuples, v2rel.Tuples, "RELC vs REL2")

	// A dictionary-less relation exercises the RELB-equivalent path.
	plainSchema, err := NewSchema(Column{Name: "a", Kind: KindInt}, Column{Name: "b", Kind: KindString})
	if err != nil {
		t.Fatal(err)
	}
	plain := New("plain", plainSchema)
	plain.Tuples = []Tuple{{Int(1), Str("x")}, {Null(), Str("y")}, {Int(3), Null()}}
	var pbuf bytes.Buffer
	if err := WriteBinaryChunked(&pbuf, plain, 2); err != nil {
		t.Fatal(err)
	}
	pgot, err := ReadBinary(&pbuf, "plain")
	if err != nil {
		t.Fatal(err)
	}
	requireTuplesIdentical(t, pgot.Tuples, plain.Tuples, "RELC plain")

	// Empty relation: header + terminator only.
	empty := New("empty", plainSchema)
	var ebuf bytes.Buffer
	if err := WriteBinaryChunked(&ebuf, empty, 8); err != nil {
		t.Fatal(err)
	}
	egot, err := ReadBinary(&ebuf, "empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(egot.Tuples) != 0 {
		t.Fatalf("empty relation loaded %d tuples", len(egot.Tuples))
	}
}

// TestStandaloneChunkFrame: the headerless single-frame encode the dfs
// block store uses round-trips bit-identically, dictionary slots
// included — the "dictionary codes survive spill-to-disk and reload"
// contract.
func TestStandaloneChunkFrame(t *testing.T) {
	r := chunkTestRelation(t)
	for _, c := range ChunksOf(r, 4) {
		var buf bytes.Buffer
		if err := EncodeChunk(&buf, c, r.Dicts); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeChunk(&buf, r.Schema, r.Dicts)
		if err != nil {
			t.Fatal(err)
		}
		if got.Rows() != c.Rows() || got.EncodedBytes() != c.EncodedBytes() {
			t.Fatalf("frame: rows/bytes %d/%d, want %d/%d",
				got.Rows(), got.EncodedBytes(), c.Rows(), c.EncodedBytes())
		}
		for i := 0; i < c.Rows(); i++ {
			wantRow, gotRow := c.Row(i), got.Row(i)
			for j := range wantRow {
				requireValueIdentical(t, gotRow[j], wantRow[j], "frame row")
			}
		}
	}
}

// TestRawValueCodec: the self-describing raw layout preserves
// dictionary code slots without dictionary context.
func TestRawValueCodec(t *testing.T) {
	vals := []Value{
		Null(),
		Int(0), Int(-1), Int(math.MaxInt64), Int(math.MinInt64),
		Float(0), Float(-0.0), Float(3.5), Float(math.Inf(-1)),
		Str(""), Str("plain"),
		InternedStr("member", 0), InternedStr("big-code", 1<<20),
		TimeUnix(0), TimeUnix(-12345),
	}
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	for _, v := range vals {
		if err := WriteValueRaw(bw, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(&buf)
	for _, want := range vals {
		got, err := ReadValueRaw(br)
		if err != nil {
			t.Fatal(err)
		}
		requireValueIdentical(t, got, want, "raw value")
	}
	if _, err := ReadValueRaw(br); err != io.EOF {
		t.Fatalf("expected EOF after last value, got %v", err)
	}

	tup := Tuple{Int(7), InternedStr("x", 3), Null(), Float(1.25)}
	var tbuf bytes.Buffer
	tw := bufio.NewWriter(&tbuf)
	if err := WriteTupleRaw(tw, tup); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	gotTup, err := ReadTupleRaw(bufio.NewReader(&tbuf))
	if err != nil {
		t.Fatal(err)
	}
	requireTuplesIdentical(t, []Tuple{gotTup}, []Tuple{tup}, "raw tuple")
}

// TestChunkKeyExtraction: columnar key extraction agrees with the
// per-value sort-key extractors on every row, fast paths and
// fallbacks alike.
func TestChunkKeyExtraction(t *testing.T) {
	r := chunkTestRelation(t)
	d := r.DictOf(2)
	for _, c := range ChunksOf(r, 3) {
		for _, off := range []float64{0, 2, -3, 0.5} {
			intKeys := c.AppendIntKeys(0, off, nil)
			floatKeys := c.AppendFloatKeys(1, off, nil)
			timeKeys := c.AppendFloatKeys(4, off, nil)
			for i := 0; i < c.Rows(); i++ {
				if want := SortKeyInt(c.Value(i, 0), off); intKeys[i] != want {
					t.Fatalf("int key row %d off %v: %d != %d", i, off, intKeys[i], want)
				}
				if want := SortKeyFloat(c.Value(i, 1), off); floatKeys[i] != want {
					t.Fatalf("float key row %d off %v: %d != %d", i, off, floatKeys[i], want)
				}
				if want := SortKeyFloat(c.Value(i, 4), off); timeKeys[i] != want {
					t.Fatalf("time key row %d off %v: %d != %d", i, off, timeKeys[i], want)
				}
			}
		}
		for _, direct := range []bool{true, false} {
			keys := c.AppendDictKeys(2, d, direct, nil)
			for i := 0; i < c.Rows(); i++ {
				v := c.Value(i, 2)
				var want int64
				switch {
				case v.IsNull():
					want = NullSortKey
				default:
					if code, ok := v.DictCode(); direct && ok {
						want = CodeKey(code)
					} else {
						want = d.ProbeKey(v.Str())
					}
				}
				if keys[i] != want {
					t.Fatalf("dict key row %d direct=%v: %d != %d", i, direct, keys[i], want)
				}
			}
		}
	}
}
