package relation

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Chunk-framed binary codec, v3 ("RELC"). The header is the v2 layout
// (schema columns + optional per-column dictionaries); the body is a
// sequence of self-delimiting columnar chunk frames instead of one
// row-major tuple section, so a relation serializes and loads chunk by
// chunk without ever materializing all rows:
//
//	magic "RELC" | u16 ncols |
//	per col: u8 kindByte, u16 nameLen, name, u8 hasDict,
//	         [uvarint nstrs, nstrs × (uvarint len, bytes)] |
//	chunk frame* | u32 0 (terminator)
//
// Each chunk frame is:
//
//	u32 nrows | per column:
//	  u8 hasSkip | [ceil(nrows/64) × u64 skip bitmap] |
//	  per row with clear skip bit (fast payload):
//	    int/time → u64 payload | float → u64 bits |
//	    string → u8 tag: 0 plain (u32 len, bytes)
//	                     1 dict slot (uvarint slot; string restored
//	                       from the column dictionary)
//	                     2 interned inline (uvarint slot, u32 len,
//	                       bytes; for codes not resolvable through the
//	                       column dictionary) |
//	  uvarint nexc | nexc × (uvarint row, raw value)
//
// Rows with a set skip bit and no exception entry are NULL; exception
// entries hold the exact Value for rows whose dynamic kind differs
// from the declared column kind. Every layout choice preserves Value
// bit-identity — dictionary code slots included — so EncodedSize, sort
// keys and content hashes are unchanged by a round trip.
//
// The raw value layout (WriteValueRaw/ReadValueRaw) is a
// self-describing per-value encoding that needs no dictionary context:
// strings always carry their code slot and inline bytes. The mr spill
// path uses it to write shuffle pairs to disk and reload them
// bit-identically.

const binaryMagicChunked = "RELC"

// WriteValueRaw writes v in the self-describing raw layout: kind byte,
// then an 8-byte payload for numeric kinds, or uvarint(code slot) +
// u32 length + bytes for strings. Unlike the relation codecs it
// preserves interned-string code slots without dictionary context, so
// a reloaded value is bit-identical to the original (EncodedSize
// included).
func WriteValueRaw(bw *bufio.Writer, v Value) error {
	if err := bw.WriteByte(byte(v.kind)); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	switch v.kind {
	case KindNull:
		return nil
	case KindInt, KindTime:
		binary.LittleEndian.PutUint64(scratch[:8], uint64(v.i))
		_, err := bw.Write(scratch[:8])
		return err
	case KindFloat:
		binary.LittleEndian.PutUint64(scratch[:8], floatBits(v.f))
		_, err := bw.Write(scratch[:8])
		return err
	case KindString:
		n := binary.PutUvarint(scratch[:], uint64(v.i)) // code slot (0 = not interned)
		if _, err := bw.Write(scratch[:n]); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(scratch[:4], uint32(len(v.s)))
		if _, err := bw.Write(scratch[:4]); err != nil {
			return err
		}
		_, err := bw.WriteString(v.s)
		return err
	default:
		return fmt.Errorf("relation: write raw value: unknown kind %v", v.kind)
	}
}

// ReadValueRaw reads a value written by WriteValueRaw.
func ReadValueRaw(br *bufio.Reader) (Value, error) {
	kb, err := br.ReadByte()
	if err != nil {
		return Null(), err
	}
	var scratch [8]byte
	switch Kind(kb) {
	case KindNull:
		return Null(), nil
	case KindInt, KindTime:
		if _, err := io.ReadFull(br, scratch[:8]); err != nil {
			return Null(), err
		}
		n := int64(binary.LittleEndian.Uint64(scratch[:8]))
		if Kind(kb) == KindTime {
			return TimeUnix(n), nil
		}
		return Int(n), nil
	case KindFloat:
		if _, err := io.ReadFull(br, scratch[:8]); err != nil {
			return Null(), err
		}
		return Float(floatFromBits(binary.LittleEndian.Uint64(scratch[:8]))), nil
	case KindString:
		slot, err := binary.ReadUvarint(br)
		if err != nil {
			return Null(), err
		}
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return Null(), err
		}
		n := binary.LittleEndian.Uint32(scratch[:4])
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return Null(), err
		}
		return Value{kind: KindString, s: string(buf), i: int64(slot)}, nil
	default:
		return Null(), fmt.Errorf("relation: read raw value: unknown kind byte %d", kb)
	}
}

// WriteTupleRaw writes a tuple as uvarint(arity) followed by its
// values in the raw layout.
func WriteTupleRaw(bw *bufio.Writer, t Tuple) error {
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(scratch[:], uint64(len(t)))
	if _, err := bw.Write(scratch[:n]); err != nil {
		return err
	}
	for _, v := range t {
		if err := WriteValueRaw(bw, v); err != nil {
			return err
		}
	}
	return nil
}

// ReadTupleRaw reads a tuple written by WriteTupleRaw.
func ReadTupleRaw(br *bufio.Reader) (Tuple, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	t := make(Tuple, n)
	for i := range t {
		v, err := ReadValueRaw(br)
		if err != nil {
			return nil, err
		}
		t[i] = v
	}
	return t, nil
}

// ChunkEncoder writes a RELC stream: header once, then one frame per
// EncodeChunk call, terminated by Close.
type ChunkEncoder struct {
	bw    *bufio.Writer
	dicts []*Dict
	done  bool
}

// NewChunkEncoder writes the RELC header for the schema (and optional
// per-column dictionaries; pass nil for none) and returns an encoder
// for the chunk frames.
func NewChunkEncoder(w io.Writer, schema *Schema, dicts []*Dict) (*ChunkEncoder, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagicChunked); err != nil {
		return nil, err
	}
	var scratch [binary.MaxVarintLen64]byte
	writeU16 := func(v uint16) error {
		binary.LittleEndian.PutUint16(scratch[:2], v)
		_, err := bw.Write(scratch[:2])
		return err
	}
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	if err := writeU16(uint16(schema.Len())); err != nil {
		return nil, err
	}
	for i := 0; i < schema.Len(); i++ {
		c := schema.Column(i)
		if err := bw.WriteByte(byte(c.Kind)); err != nil {
			return nil, err
		}
		if err := writeU16(uint16(len(c.Name))); err != nil {
			return nil, err
		}
		if _, err := bw.WriteString(c.Name); err != nil {
			return nil, err
		}
		var d *Dict
		if i < len(dicts) {
			d = dicts[i]
		}
		if d == nil {
			if err := bw.WriteByte(0); err != nil {
				return nil, err
			}
			continue
		}
		if err := bw.WriteByte(1); err != nil {
			return nil, err
		}
		if err := writeUvarint(uint64(d.Len())); err != nil {
			return nil, err
		}
		for c := int64(0); c < int64(d.Len()); c++ {
			s := d.At(c)
			if err := writeUvarint(uint64(len(s))); err != nil {
				return nil, err
			}
			if _, err := bw.WriteString(s); err != nil {
				return nil, err
			}
		}
	}
	return &ChunkEncoder{bw: bw, dicts: dicts}, nil
}

// EncodeChunk appends one chunk frame. Empty chunks are skipped (a
// zero row count is the stream terminator).
func (e *ChunkEncoder) EncodeChunk(c *Chunk) error {
	if e.done {
		return fmt.Errorf("relation: chunk encoder already closed")
	}
	if c.Rows() == 0 {
		return nil
	}
	return encodeChunkFrame(e.bw, c, e.dicts)
}

// Close writes the terminator frame and flushes.
func (e *ChunkEncoder) Close() error {
	if e.done {
		return nil
	}
	e.done = true
	var scratch [4]byte
	binary.LittleEndian.PutUint32(scratch[:], 0)
	if _, err := e.bw.Write(scratch[:]); err != nil {
		return err
	}
	return e.bw.Flush()
}

// EncodeChunk writes a single standalone chunk frame (no header, no
// terminator) — the dfs block store's on-disk unit. dicts provides the
// dictionary context for slot-only string encoding and may be nil.
func EncodeChunk(w io.Writer, c *Chunk, dicts []*Dict) error {
	bw := bufio.NewWriter(w)
	if err := encodeChunkFrame(bw, c, dicts); err != nil {
		return err
	}
	return bw.Flush()
}

// DecodeChunk reads a single standalone chunk frame written by
// EncodeChunk, against the given schema and dictionaries.
func DecodeChunk(r io.Reader, schema *Schema, dicts []*Dict) (*Chunk, error) {
	br := bufio.NewReader(r)
	c, err := decodeChunkFrame(br, schema, dicts)
	if err != nil {
		return nil, err
	}
	if c == nil {
		return nil, fmt.Errorf("relation: decode chunk: empty frame")
	}
	return c, nil
}

func encodeChunkFrame(bw *bufio.Writer, c *Chunk, dicts []*Dict) error {
	var scratch [binary.MaxVarintLen64]byte
	writeU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, err := bw.Write(scratch[:4])
		return err
	}
	writeU64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:8], v)
		_, err := bw.Write(scratch[:8])
		return err
	}
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	if err := writeU32(uint32(c.n)); err != nil {
		return err
	}
	for ci := range c.cols {
		cv := &c.cols[ci]
		hasSkip := cv.skip.any()
		b := byte(0)
		if hasSkip {
			b = 1
		}
		if err := bw.WriteByte(b); err != nil {
			return err
		}
		if hasSkip {
			for _, w := range cv.skip {
				if err := writeU64(w); err != nil {
					return err
				}
			}
		}
		var d *Dict
		if ci < len(dicts) {
			d = dicts[ci]
		}
		for i := 0; i < c.n; i++ {
			if hasSkip && cv.skip.get(i) {
				continue
			}
			switch cv.kind {
			case KindInt, KindTime:
				if err := writeU64(uint64(cv.ints[i])); err != nil {
					return err
				}
			case KindFloat:
				if err := writeU64(floatBits(cv.floats[i])); err != nil {
					return err
				}
			case KindString:
				slot, s := cv.ints[i], cv.strs[i]
				switch {
				case slot > 0 && d != nil && slot <= int64(d.Len()) && d.At(slot-1) == s:
					if err := bw.WriteByte(1); err != nil {
						return err
					}
					if err := writeUvarint(uint64(slot)); err != nil {
						return err
					}
				case slot > 0:
					// Interned against something other than the column
					// dictionary: keep slot and bytes inline.
					if err := bw.WriteByte(2); err != nil {
						return err
					}
					if err := writeUvarint(uint64(slot)); err != nil {
						return err
					}
					if err := writeU32(uint32(len(s))); err != nil {
						return err
					}
					if _, err := bw.WriteString(s); err != nil {
						return err
					}
				default:
					if err := bw.WriteByte(0); err != nil {
						return err
					}
					if err := writeU32(uint32(len(s))); err != nil {
						return err
					}
					if _, err := bw.WriteString(s); err != nil {
						return err
					}
				}
			}
		}
		if err := writeUvarint(uint64(len(cv.exc))); err != nil {
			return err
		}
		// Exception rows in row order for determinism.
		if len(cv.exc) > 0 {
			rows := make([]int, 0, len(cv.exc))
			for r := range cv.exc {
				rows = append(rows, r)
			}
			sortInts(rows)
			for _, r := range rows {
				if err := writeUvarint(uint64(r)); err != nil {
					return err
				}
				if err := WriteValueRaw(bw, cv.exc[r]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// decodeChunkFrame reads one frame; a zero row count (the terminator)
// returns (nil, nil).
func decodeChunkFrame(br *bufio.Reader, schema *Schema, dicts []*Dict) (*Chunk, error) {
	var scratch [8]byte
	readU32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(scratch[:4]), nil
	}
	readU64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, scratch[:8]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(scratch[:8]), nil
	}
	nrows32, err := readU32()
	if err != nil {
		return nil, err
	}
	n := int(nrows32)
	if n == 0 {
		return nil, nil
	}
	c := &Chunk{schema: schema, n: n, cols: make([]colVec, schema.Len())}
	c.bytes = int64(n) * tupleFrameBytes
	words := (n + 63) / 64
	for ci := range c.cols {
		cv := &c.cols[ci]
		cv.kind = schema.Column(ci).Kind
		hasSkip, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		cv.skip = make(bitmap, words)
		if hasSkip != 0 {
			for w := 0; w < words; w++ {
				u, err := readU64()
				if err != nil {
					return nil, err
				}
				cv.skip[w] = u
			}
		}
		var d *Dict
		if ci < len(dicts) {
			d = dicts[ci]
		}
		switch cv.kind {
		case KindInt, KindTime:
			cv.ints = make([]int64, n)
		case KindFloat:
			cv.floats = make([]float64, n)
		case KindString:
			cv.ints = make([]int64, n)
			cv.strs = make([]string, n)
		}
		for i := 0; i < n; i++ {
			if cv.skip.get(i) {
				c.bytes++ // NULL (or exception, adjusted below)
				continue
			}
			switch cv.kind {
			case KindInt, KindTime:
				u, err := readU64()
				if err != nil {
					return nil, err
				}
				cv.ints[i] = int64(u)
				c.bytes += 9
			case KindFloat:
				u, err := readU64()
				if err != nil {
					return nil, err
				}
				cv.floats[i] = floatFromBits(u)
				c.bytes += 9
			case KindString:
				tag, err := br.ReadByte()
				if err != nil {
					return nil, err
				}
				switch tag {
				case 1:
					slot, err := binary.ReadUvarint(br)
					if err != nil {
						return nil, err
					}
					if d == nil || slot == 0 || slot > uint64(d.Len()) {
						return nil, fmt.Errorf("relation: decode chunk: dict slot %d unresolvable (col %d)", slot, ci)
					}
					cv.ints[i] = int64(slot)
					cv.strs[i] = d.At(int64(slot) - 1)
					c.bytes += int64(1 + uvarintLen(slot))
				case 2:
					slot, err := binary.ReadUvarint(br)
					if err != nil {
						return nil, err
					}
					slen, err := readU32()
					if err != nil {
						return nil, err
					}
					buf := make([]byte, slen)
					if _, err := io.ReadFull(br, buf); err != nil {
						return nil, err
					}
					cv.ints[i] = int64(slot)
					cv.strs[i] = string(buf)
					c.bytes += int64(1 + uvarintLen(slot))
				case 0:
					slen, err := readU32()
					if err != nil {
						return nil, err
					}
					buf := make([]byte, slen)
					if _, err := io.ReadFull(br, buf); err != nil {
						return nil, err
					}
					cv.strs[i] = string(buf)
					c.bytes += int64(1 + 4 + len(buf))
				default:
					return nil, fmt.Errorf("relation: decode chunk: bad string tag %d", tag)
				}
			default:
				c.bytes++ // declared-null column: every value is skip/exception
			}
		}
		nexc, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if nexc > 0 {
			cv.exc = make(map[int]Value, nexc)
			for j := uint64(0); j < nexc; j++ {
				row, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, err
				}
				v, err := ReadValueRaw(br)
				if err != nil {
					return nil, err
				}
				cv.exc[int(row)] = v
				c.bytes += int64(v.EncodedSize()) - 1 // replaces the NULL byte counted above
			}
		}
	}
	return c, nil
}

// ChunkDecoder streams a RELC file: header parsed at construction,
// chunks decoded on demand. It implements ChunkIterator.
type ChunkDecoder struct {
	br     *bufio.Reader
	schema *Schema
	dicts  []*Dict
	done   bool
}

// NewChunkDecoder parses the RELC header (the caller has not consumed
// the magic) and returns a streaming decoder.
func NewChunkDecoder(r io.Reader) (*ChunkDecoder, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("relation: read chunked magic: %w", err)
	}
	if string(magic) != binaryMagicChunked {
		return nil, fmt.Errorf("relation: bad chunked magic %q", magic)
	}
	return newChunkDecoderAfterMagic(br)
}

func newChunkDecoderAfterMagic(br *bufio.Reader) (*ChunkDecoder, error) {
	var scratch [8]byte
	readU16 := func() (uint16, error) {
		if _, err := io.ReadFull(br, scratch[:2]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint16(scratch[:2]), nil
	}
	ncols, err := readU16()
	if err != nil {
		return nil, err
	}
	cols := make([]Column, ncols)
	dicts := make([]*Dict, ncols)
	for i := range cols {
		kb, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		nameLen, err := readU16()
		if err != nil {
			return nil, err
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBuf); err != nil {
			return nil, err
		}
		cols[i] = Column{Name: string(nameBuf), Kind: Kind(kb)}
		hasDict, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if hasDict == 0 {
			continue
		}
		nstrs, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		strs := make([]string, nstrs)
		for j := range strs {
			slen, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			buf := make([]byte, slen)
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, err
			}
			strs[j] = string(buf)
		}
		dicts[i] = NewDict(strs)
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	return &ChunkDecoder{br: br, schema: schema, dicts: dicts}, nil
}

// Schema returns the decoded header schema.
func (d *ChunkDecoder) Schema() *Schema { return d.schema }

// Dicts returns the decoded per-column dictionaries (entries nil for
// dictionary-less columns). The slice is all-nil when no column
// carried a dictionary.
func (d *ChunkDecoder) Dicts() []*Dict { return d.dicts }

// HasDicts reports whether any column carries a dictionary.
func (d *ChunkDecoder) HasDicts() bool {
	for _, di := range d.dicts {
		if di != nil {
			return true
		}
	}
	return false
}

// NextChunk decodes the next frame; io.EOF after the terminator.
func (d *ChunkDecoder) NextChunk() (*Chunk, error) {
	if d.done {
		return nil, io.EOF
	}
	c, err := decodeChunkFrame(d.br, d.schema, d.dicts)
	if err != nil {
		return nil, err
	}
	if c == nil {
		d.done = true
		return nil, io.EOF
	}
	return c, nil
}

// WriteBinaryChunked writes the relation in the RELC chunk-framed
// format with at most rowsPerChunk rows per frame (DefaultChunkRows
// when <= 0). Rows are framed columnar-chunk by columnar-chunk, so
// peak transient memory is one chunk regardless of relation size.
func WriteBinaryChunked(w io.Writer, r *Relation, rowsPerChunk int) error {
	enc, err := NewChunkEncoder(w, r.Schema, r.Dicts)
	if err != nil {
		return err
	}
	it := r.ChunkStream(rowsPerChunk)
	for {
		c, err := it.NextChunk()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := enc.EncodeChunk(c); err != nil {
			return err
		}
	}
	return enc.Close()
}

// sortInts is a tiny insertion sort for the (rare, small) exception
// row lists, avoiding a sort import in the codec hot path.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
