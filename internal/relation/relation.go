package relation

import (
	"fmt"
	"math/rand"
	"sort"
)

// Relation is an in-memory table: a named schema plus tuples.
//
// The simulator's "HDFS files" hold relations; map tasks iterate blocks
// of tuples. A Relation also records a VolumeMultiplier so experiments
// can model the paper's 20 GB–1 TB inputs with laptop-sized tuple
// counts: byte accounting multiplies real encoded sizes by the
// multiplier while the actual computation runs on the generated tuples.
type Relation struct {
	Name   string
	Schema *Schema
	Tuples []Tuple

	// VolumeMultiplier scales byte accounting (default 1). A relation
	// of 1,000 real tuples with multiplier 1,000 is charged like one
	// million tuples of I/O while joins still run on 1,000 rows.
	VolumeMultiplier float64

	// Dicts holds the per-column order-preserving string dictionaries
	// (nil entries for columns without one), aligned with the schema.
	// It lives here rather than in Schema.Column so Schema.Equal keeps
	// comparing columns by value. A column's dictionary covers every
	// string its tuples hold; join outputs inherit their input columns'
	// dictionaries by pointer (see InternStrings and mr.Job.OutputDicts).
	Dicts []*Dict
}

// DictOf returns the dictionary of column ci, or nil when the column
// has none (or ci is out of the Dicts slice).
func (r *Relation) DictOf(ci int) *Dict {
	if ci < 0 || ci >= len(r.Dicts) {
		return nil
	}
	return r.Dicts[ci]
}

// New creates an empty relation with the given name and schema.
func New(name string, schema *Schema) *Relation {
	return &Relation{Name: name, Schema: schema, VolumeMultiplier: 1}
}

// Append adds a tuple after validating its arity.
func (r *Relation) Append(t Tuple) error {
	if len(t) != r.Schema.Len() {
		return fmt.Errorf("relation %s: tuple arity %d != schema arity %d", r.Name, len(t), r.Schema.Len())
	}
	r.Tuples = append(r.Tuples, t)
	return nil
}

// MustAppend is Append that panics on arity mismatch (generator code).
func (r *Relation) MustAppend(t Tuple) {
	if err := r.Append(t); err != nil {
		panic(err)
	}
}

// Cardinality returns the number of tuples.
func (r *Relation) Cardinality() int { return len(r.Tuples) }

// EncodedSize returns the raw byte size of all tuples (without the
// volume multiplier).
func (r *Relation) EncodedSize() int64 {
	var n int64
	for _, t := range r.Tuples {
		n += int64(t.EncodedSize())
	}
	return n
}

// ModeledSize returns the byte size charged by the cost model:
// EncodedSize × VolumeMultiplier.
func (r *Relation) ModeledSize() int64 {
	m := r.VolumeMultiplier
	if m <= 0 {
		m = 1
	}
	return int64(float64(r.EncodedSize()) * m)
}

// AvgTupleSize returns the mean encoded tuple size in bytes (0 for an
// empty relation).
func (r *Relation) AvgTupleSize() float64 {
	if len(r.Tuples) == 0 {
		return 0
	}
	return float64(r.EncodedSize()) / float64(len(r.Tuples))
}

// Clone returns a copy sharing tuples (tuples are treated as
// immutable) and dictionaries (immutable once built).
func (r *Relation) Clone() *Relation {
	c := *r
	c.Tuples = append([]Tuple(nil), r.Tuples...)
	c.Dicts = append([]*Dict(nil), r.Dicts...)
	return &c
}

// Project returns a new relation with only the named columns.
func (r *Relation) Project(name string, columns ...string) (*Relation, error) {
	idx := make([]int, len(columns))
	cols := make([]Column, len(columns))
	for i, c := range columns {
		j, ok := r.Schema.Lookup(c)
		if !ok {
			return nil, fmt.Errorf("relation %s: project: no column %q", r.Name, c)
		}
		idx[i] = j
		cols[i] = r.Schema.Column(j)
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	out := New(name, schema)
	out.VolumeMultiplier = r.VolumeMultiplier
	if len(r.Dicts) > 0 {
		out.Dicts = make([]*Dict, len(idx))
		for i, j := range idx {
			out.Dicts[i] = r.DictOf(j)
		}
	}
	for _, t := range r.Tuples {
		p := make(Tuple, len(idx))
		for i, j := range idx {
			p[i] = t[j]
		}
		out.Tuples = append(out.Tuples, p)
	}
	return out, nil
}

// Filter returns a new relation keeping only tuples where keep returns true.
func (r *Relation) Filter(name string, keep func(Tuple) bool) *Relation {
	out := New(name, r.Schema)
	out.VolumeMultiplier = r.VolumeMultiplier
	out.Dicts = append([]*Dict(nil), r.Dicts...)
	for _, t := range r.Tuples {
		if keep(t) {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out
}

// SortBy sorts tuples in place by the named column ascending.
func (r *Relation) SortBy(column string) error {
	j, ok := r.Schema.Lookup(column)
	if !ok {
		return fmt.Errorf("relation %s: sort: no column %q", r.Name, column)
	}
	sort.SliceStable(r.Tuples, func(a, b int) bool {
		return Compare(r.Tuples[a][j], r.Tuples[b][j]) < 0
	})
	return nil
}

// Sample draws k tuples by reservoir sampling with the given rng,
// returning fewer if the relation is smaller. The relation order is
// untouched.
func (r *Relation) Sample(k int, rng *rand.Rand) []Tuple {
	if k <= 0 {
		return nil
	}
	if len(r.Tuples) <= k {
		return append([]Tuple(nil), r.Tuples...)
	}
	out := make([]Tuple, k)
	copy(out, r.Tuples[:k])
	for i := k; i < len(r.Tuples); i++ {
		j := rng.Intn(i + 1)
		if j < k {
			out[j] = r.Tuples[i]
		}
	}
	return out
}

// Blocks splits the relation into blocks of at most blockTuples tuples,
// modelling HDFS block splits for map tasks. blockTuples <= 0 yields a
// single block.
func (r *Relation) Blocks(blockTuples int) [][]Tuple {
	if blockTuples <= 0 || len(r.Tuples) == 0 {
		if len(r.Tuples) == 0 {
			return nil
		}
		return [][]Tuple{r.Tuples}
	}
	var blocks [][]Tuple
	for i := 0; i < len(r.Tuples); i += blockTuples {
		end := i + blockTuples
		if end > len(r.Tuples) {
			end = len(r.Tuples)
		}
		blocks = append(blocks, r.Tuples[i:end])
	}
	return blocks
}

// ResultSet is a deduplicating bag of tuples used to compare join
// outputs across planners in tests and to merge job outputs.
type ResultSet struct {
	counts map[string]int
	size   int
}

// NewResultSet returns an empty result set.
func NewResultSet() *ResultSet {
	return &ResultSet{counts: make(map[string]int)}
}

// Add inserts a tuple occurrence.
func (rs *ResultSet) Add(t Tuple) {
	rs.counts[t.Key()]++
	rs.size++
}

// AddAll inserts every tuple of a slice.
func (rs *ResultSet) AddAll(ts []Tuple) {
	for _, t := range ts {
		rs.Add(t)
	}
}

// Len returns the total number of tuple occurrences.
func (rs *ResultSet) Len() int { return rs.size }

// Distinct returns the number of distinct tuples.
func (rs *ResultSet) Distinct() int { return len(rs.counts) }

// Equal reports whether two result sets hold the same multiset of tuples.
func (rs *ResultSet) Equal(o *ResultSet) bool {
	if rs.size != o.size || len(rs.counts) != len(o.counts) {
		return false
	}
	for k, c := range rs.counts {
		if o.counts[k] != c {
			return false
		}
	}
	return true
}

// Diff returns up to max keys present with different multiplicity,
// formatted for test failure messages.
func (rs *ResultSet) Diff(o *ResultSet, max int) []string {
	var diffs []string
	for k, c := range rs.counts {
		if o.counts[k] != c {
			diffs = append(diffs, fmt.Sprintf("key %q: %d vs %d", k, c, o.counts[k]))
			if len(diffs) >= max {
				return diffs
			}
		}
	}
	for k, c := range o.counts {
		if _, ok := rs.counts[k]; !ok {
			diffs = append(diffs, fmt.Sprintf("key %q: 0 vs %d", k, c))
			if len(diffs) >= max {
				return diffs
			}
		}
	}
	sort.Strings(diffs)
	return diffs
}
