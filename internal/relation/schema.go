package relation

import (
	"fmt"
	"strings"
)

// Column describes a single attribute of a relation.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of named, typed columns.
type Schema struct {
	cols  []Column
	index map[string]int
}

// NewSchema builds a schema from columns. Column names must be unique
// and non-empty.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{cols: append([]Column(nil), cols...), index: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("relation: column %d has empty name", i)
		}
		if _, dup := s.index[c.Name]; dup {
			return nil, fmt.Errorf("relation: duplicate column %q", c.Name)
		}
		s.index[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for static schemas.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Column returns the i-th column.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// Lookup returns the ordinal of the named column and whether it exists.
func (s *Schema) Lookup(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// MustLookup is Lookup that panics when the column is missing.
func (s *Schema) MustLookup(name string) int {
	i, ok := s.index[name]
	if !ok {
		panic(fmt.Sprintf("relation: no column %q in schema %s", name, s))
	}
	return i
}

// String renders the schema as "name:kind, ...".
func (s *Schema) String() string {
	var b strings.Builder
	for i, c := range s.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%s", c.Name, c.Kind)
	}
	return b.String()
}

// Equal reports whether two schemas have identical column lists.
func (s *Schema) Equal(o *Schema) bool {
	if s.Len() != o.Len() {
		return false
	}
	for i := range s.cols {
		if s.cols[i] != o.cols[i] {
			return false
		}
	}
	return true
}

// Concat returns the schema of a join result: the columns of s prefixed
// with prefixS followed by the columns of o prefixed with prefixO.
// Prefixing keeps names unique across self-joins.
func (s *Schema) Concat(prefixS string, o *Schema, prefixO string) *Schema {
	cols := make([]Column, 0, s.Len()+o.Len())
	for _, c := range s.cols {
		cols = append(cols, Column{Name: prefixS + c.Name, Kind: c.Kind})
	}
	for _, c := range o.cols {
		cols = append(cols, Column{Name: prefixO + c.Name, Kind: c.Kind})
	}
	return MustSchema(cols...)
}

// Tuple is a row: one value per schema column. Tuples are value slices
// so the hot join paths index directly without interface dispatch.
type Tuple []Value

// EncodedSize returns the byte size charged for the tuple by the
// simulator (sum of value sizes plus a 4-byte length header).
func (t Tuple) EncodedSize() int {
	n := 4
	for _, v := range t {
		n += v.EncodedSize()
	}
	return n
}

// Clone returns a deep-enough copy (values are immutable).
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Concat returns the concatenation of two tuples (a join output row).
func (t Tuple) Concat(o Tuple) Tuple {
	c := make(Tuple, 0, len(t)+len(o))
	c = append(c, t...)
	c = append(c, o...)
	return c
}

// String renders the tuple as a parenthesised value list.
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Key renders a canonical string form usable as a map key when
// deduplicating result sets in tests and merges.
func (t Tuple) Key() string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteByte(byte('0' + v.kind))
		b.WriteString(v.String())
	}
	return b.String()
}
