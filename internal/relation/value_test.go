package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null(), KindNull},
		{Int(42), KindInt},
		{Float(3.5), KindFloat},
		{Str("x"), KindString},
		{TimeUnix(100), KindTime},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("kind of %v = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
	if !Null().IsNull() {
		t.Error("Null().IsNull() = false")
	}
	if Int(1).IsNull() {
		t.Error("Int(1).IsNull() = true")
	}
}

func TestValueAccessors(t *testing.T) {
	if got := Int(7).Int64(); got != 7 {
		t.Errorf("Int(7).Int64() = %d", got)
	}
	if got := Float(2.5).Int64(); got != 2 {
		t.Errorf("Float(2.5).Int64() = %d, want 2", got)
	}
	if got := Int(7).Float64(); got != 7.0 {
		t.Errorf("Int(7).Float64() = %v", got)
	}
	if got := Str("hi").Str(); got != "hi" {
		t.Errorf("Str() = %q", got)
	}
	now := time.Date(2012, 8, 1, 0, 0, 0, 0, time.UTC)
	if got := Time(now).AsTime(); !got.Equal(now) {
		t.Errorf("AsTime() = %v, want %v", got, now)
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{Float(1.5), Int(2), -1},
		{Int(2), Float(1.5), 1},
		{Float(2), Int(2), 0},
		{TimeUnix(5), TimeUnix(9), -1},
		{TimeUnix(5), Int(5), 0},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("a"), 1},
		{Str("a"), Str("a"), 0},
		{Null(), Int(0), -1},
		{Int(0), Null(), 1},
		{Null(), Null(), 0},
		{Int(1), Str("a"), -1}, // numeric before string
		{Str("a"), Int(1), 1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randVal := func() Value {
		switch rng.Intn(4) {
		case 0:
			return Int(int64(rng.Intn(100) - 50))
		case 1:
			return Float(rng.Float64()*100 - 50)
		case 2:
			return Str(string(rune('a' + rng.Intn(26))))
		default:
			return TimeUnix(int64(rng.Intn(1000)))
		}
	}
	for i := 0; i < 2000; i++ {
		a, b := randVal(), randVal()
		if Compare(a, b) != -Compare(b, a) {
			t.Fatalf("antisymmetry violated for %v, %v", a, b)
		}
	}
}

func TestCompareTransitivityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := make([]Value, 60)
	for i := range vals {
		switch rng.Intn(3) {
		case 0:
			vals[i] = Int(int64(rng.Intn(20)))
		case 1:
			vals[i] = Float(float64(rng.Intn(20)))
		default:
			vals[i] = Str(string(rune('a' + rng.Intn(5))))
		}
	}
	for _, a := range vals {
		for _, b := range vals {
			for _, c := range vals {
				if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
					t.Fatalf("transitivity violated: %v <= %v <= %v but a > c", a, b, c)
				}
			}
		}
	}
}

func TestValueAdd(t *testing.T) {
	if got := Int(5).Add(3); Compare(got, Int(8)) != 0 {
		t.Errorf("Int(5).Add(3) = %v", got)
	}
	if got := Int(5).Add(0.5); Compare(got, Float(5.5)) != 0 {
		t.Errorf("Int(5).Add(0.5) = %v", got)
	}
	if got := Float(1.25).Add(0.25); Compare(got, Float(1.5)) != 0 {
		t.Errorf("Float add = %v", got)
	}
	if got := TimeUnix(100).Add(60); got.Kind() != KindTime || got.Int64() != 160 {
		t.Errorf("TimeUnix add = %v", got)
	}
	if got := Str("x").Add(1); got.Str() != "x" {
		t.Errorf("String add mutated: %v", got)
	}
}

func TestParseValueRoundTrip(t *testing.T) {
	vals := []Value{Int(-12), Float(3.25), Str("hello, world"), TimeUnix(1349049600), Null()}
	kinds := []Kind{KindInt, KindFloat, KindString, KindTime, KindInt}
	for i, v := range vals {
		got, err := ParseValue(kinds[i], v.String())
		if err != nil {
			t.Fatalf("ParseValue(%v, %q): %v", kinds[i], v.String(), err)
		}
		if v.IsNull() {
			if !got.IsNull() {
				t.Errorf("null roundtrip = %v", got)
			}
			continue
		}
		if Compare(got, v) != 0 {
			t.Errorf("roundtrip %v -> %v", v, got)
		}
	}
}

func TestParseValueErrors(t *testing.T) {
	if _, err := ParseValue(KindInt, "xyz"); err == nil {
		t.Error("ParseValue(int, xyz) succeeded")
	}
	if _, err := ParseValue(KindFloat, "1.2.3"); err == nil {
		t.Error("ParseValue(float, 1.2.3) succeeded")
	}
	if _, err := ParseValue(Kind(99), "1"); err == nil {
		t.Error("ParseValue(kind 99) succeeded")
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range []Kind{KindNull, KindInt, KindFloat, KindString, KindTime} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind(bogus) succeeded")
	}
}

func TestEncodedSize(t *testing.T) {
	if got := Null().EncodedSize(); got != 1 {
		t.Errorf("null size = %d", got)
	}
	if got := Int(1).EncodedSize(); got != 9 {
		t.Errorf("int size = %d", got)
	}
	if got := Str("abcd").EncodedSize(); got != 9 {
		t.Errorf("string size = %d, want 9", got)
	}
	tup := Tuple{Int(1), Str("ab")}
	want := 4 + 9 + (1 + 4 + 2)
	if got := tup.EncodedSize(); got != want {
		t.Errorf("tuple size = %d, want %d", got, want)
	}
}

func TestIntCompareQuick(t *testing.T) {
	f := func(a, b int64) bool {
		got := Compare(Int(a), Int(b))
		switch {
		case a < b:
			return got == -1
		case a > b:
			return got == 1
		default:
			return got == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
