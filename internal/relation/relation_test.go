package relation

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Column{Name: "id", Kind: KindInt},
		Column{Name: "name", Kind: KindString},
		Column{Name: "score", Kind: KindFloat},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaBasics(t *testing.T) {
	s := testSchema(t)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if i, ok := s.Lookup("name"); !ok || i != 1 {
		t.Errorf("Lookup(name) = %d, %v", i, ok)
	}
	if _, ok := s.Lookup("missing"); ok {
		t.Error("Lookup(missing) succeeded")
	}
	if got := s.String(); got != "id:int, name:string, score:float" {
		t.Errorf("String() = %q", got)
	}
	if !s.Equal(testSchema(t)) {
		t.Error("Equal(self-copy) = false")
	}
}

func TestSchemaErrors(t *testing.T) {
	if _, err := NewSchema(Column{Name: "", Kind: KindInt}); err == nil {
		t.Error("empty column name accepted")
	}
	if _, err := NewSchema(Column{Name: "a", Kind: KindInt}, Column{Name: "a", Kind: KindInt}); err == nil {
		t.Error("duplicate column accepted")
	}
}

func TestSchemaConcat(t *testing.T) {
	s := testSchema(t)
	j := s.Concat("l.", s, "r.")
	if j.Len() != 6 {
		t.Fatalf("concat len = %d", j.Len())
	}
	if _, ok := j.Lookup("l.id"); !ok {
		t.Error("missing l.id")
	}
	if _, ok := j.Lookup("r.score"); !ok {
		t.Error("missing r.score")
	}
}

func makeRel(t *testing.T, n int) *Relation {
	t.Helper()
	r := New("test", testSchema(t))
	for i := 0; i < n; i++ {
		r.MustAppend(Tuple{Int(int64(i)), Str("n" + string(rune('a'+i%26))), Float(float64(i) / 2)})
	}
	return r
}

func TestRelationAppendArity(t *testing.T) {
	r := makeRel(t, 3)
	if err := r.Append(Tuple{Int(1)}); err == nil {
		t.Error("short tuple accepted")
	}
	if r.Cardinality() != 3 {
		t.Errorf("cardinality = %d", r.Cardinality())
	}
}

func TestRelationProject(t *testing.T) {
	r := makeRel(t, 5)
	p, err := r.Project("p", "score", "id")
	if err != nil {
		t.Fatal(err)
	}
	if p.Schema.Len() != 2 || p.Schema.Column(0).Name != "score" {
		t.Fatalf("bad projected schema %v", p.Schema)
	}
	if p.Cardinality() != 5 {
		t.Fatalf("projected cardinality %d", p.Cardinality())
	}
	if p.Tuples[2][1].Int64() != 2 {
		t.Errorf("projected value mismatch: %v", p.Tuples[2])
	}
	if _, err := r.Project("p", "nope"); err == nil {
		t.Error("project on missing column succeeded")
	}
}

func TestRelationFilterSort(t *testing.T) {
	r := makeRel(t, 10)
	f := r.Filter("f", func(tp Tuple) bool { return tp[0].Int64()%2 == 0 })
	if f.Cardinality() != 5 {
		t.Fatalf("filter cardinality %d", f.Cardinality())
	}
	// Shuffle then sort.
	rng := rand.New(rand.NewSource(3))
	rng.Shuffle(len(r.Tuples), func(i, j int) { r.Tuples[i], r.Tuples[j] = r.Tuples[j], r.Tuples[i] })
	if err := r.SortBy("id"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(r.Tuples); i++ {
		if r.Tuples[i-1][0].Int64() > r.Tuples[i][0].Int64() {
			t.Fatalf("not sorted at %d", i)
		}
	}
	if err := r.SortBy("nope"); err == nil {
		t.Error("sort by missing column succeeded")
	}
}

func TestRelationSample(t *testing.T) {
	r := makeRel(t, 100)
	rng := rand.New(rand.NewSource(1))
	s := r.Sample(10, rng)
	if len(s) != 10 {
		t.Fatalf("sample size %d", len(s))
	}
	s2 := r.Sample(500, rng)
	if len(s2) != 100 {
		t.Fatalf("oversized sample returned %d", len(s2))
	}
	if got := r.Sample(0, rng); got != nil {
		t.Errorf("Sample(0) = %v", got)
	}
}

func TestRelationBlocks(t *testing.T) {
	r := makeRel(t, 10)
	b := r.Blocks(3)
	if len(b) != 4 {
		t.Fatalf("blocks = %d, want 4", len(b))
	}
	total := 0
	for _, blk := range b {
		total += len(blk)
	}
	if total != 10 {
		t.Fatalf("block tuples total %d", total)
	}
	if got := r.Blocks(0); len(got) != 1 || len(got[0]) != 10 {
		t.Errorf("Blocks(0) shape wrong")
	}
	empty := New("e", testSchema(t))
	if got := empty.Blocks(3); got != nil {
		t.Errorf("empty relation blocks = %v", got)
	}
}

func TestModeledSize(t *testing.T) {
	r := makeRel(t, 10)
	raw := r.EncodedSize()
	if raw <= 0 {
		t.Fatal("zero encoded size")
	}
	r.VolumeMultiplier = 8
	if got := r.ModeledSize(); got != raw*8 {
		t.Errorf("modeled size = %d, want %d", got, raw*8)
	}
	r.VolumeMultiplier = 0
	if got := r.ModeledSize(); got != raw {
		t.Errorf("modeled size with zero multiplier = %d, want %d", got, raw)
	}
}

func TestResultSetEqualDiff(t *testing.T) {
	a, b := NewResultSet(), NewResultSet()
	t1 := Tuple{Int(1), Str("x")}
	t2 := Tuple{Int(2), Str("y")}
	a.Add(t1)
	a.Add(t1)
	a.Add(t2)
	b.Add(t1)
	b.Add(t2)
	if a.Equal(b) {
		t.Error("multisets with different multiplicity compared equal")
	}
	b.Add(t1)
	if !a.Equal(b) {
		t.Errorf("equal multisets compared unequal: %v", a.Diff(b, 5))
	}
	if a.Len() != 3 || a.Distinct() != 2 {
		t.Errorf("Len/Distinct = %d/%d", a.Len(), a.Distinct())
	}
	c := NewResultSet()
	c.Add(Tuple{Int(9)})
	if len(a.Diff(c, 10)) == 0 {
		t.Error("Diff of different sets empty")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := makeRel(t, 25)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "test")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Schema.Equal(r.Schema) {
		t.Fatalf("schema mismatch: %v vs %v", got.Schema, r.Schema)
	}
	if got.Cardinality() != r.Cardinality() {
		t.Fatalf("cardinality mismatch")
	}
	for i := range r.Tuples {
		for j := range r.Tuples[i] {
			if Compare(r.Tuples[i][j], got.Tuples[i][j]) != 0 {
				t.Fatalf("tuple %d col %d mismatch: %v vs %v", i, j, r.Tuples[i][j], got.Tuples[i][j])
			}
		}
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("bad header\n1\n"), "x"); err == nil {
		t.Error("malformed header accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a:int\nnot-an-int\n"), "x"); err == nil {
		t.Error("malformed int accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a:bogus\n"), "x"); err == nil {
		t.Error("bogus kind accepted")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	r := makeRel(t, 40)
	r.MustAppend(Tuple{Null(), Str(""), Float(-0.5)})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf, "test")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Schema.Equal(r.Schema) {
		t.Fatal("schema mismatch")
	}
	if got.Cardinality() != r.Cardinality() {
		t.Fatalf("cardinality %d vs %d", got.Cardinality(), r.Cardinality())
	}
	want, have := NewResultSet(), NewResultSet()
	want.AddAll(r.Tuples)
	have.AddAll(got.Tuples)
	if !want.Equal(have) {
		t.Fatalf("tuple mismatch: %v", want.Diff(have, 3))
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOPE"), "x"); err == nil {
		t.Error("garbage magic accepted")
	}
	if _, err := ReadBinary(strings.NewReader(""), "x"); err == nil {
		t.Error("empty input accepted")
	}
}

func TestBinaryQuickProperty(t *testing.T) {
	schema := MustSchema(Column{Name: "a", Kind: KindInt}, Column{Name: "b", Kind: KindString})
	f := func(vals []int64, strs []string) bool {
		r := New("q", schema)
		n := len(vals)
		if len(strs) < n {
			n = len(strs)
		}
		for i := 0; i < n; i++ {
			r.MustAppend(Tuple{Int(vals[i]), Str(strs[i])})
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, r); err != nil {
			return false
		}
		got, err := ReadBinary(&buf, "q")
		if err != nil || got.Cardinality() != n {
			return false
		}
		for i := 0; i < n; i++ {
			if got.Tuples[i][0].Int64() != vals[i] || got.Tuples[i][1].Str() != strs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAnalyzeStats(t *testing.T) {
	r := New("t", MustSchema(Column{Name: "v", Kind: KindInt}))
	for i := 0; i < 1000; i++ {
		r.MustAppend(Tuple{Int(int64(i % 100))})
	}
	ts := Analyze(r, 500, rand.New(rand.NewSource(5)))
	cs := ts.Columns["v"]
	if cs == nil {
		t.Fatal("no column stats")
	}
	if cs.Min.Int64() != 0 {
		t.Errorf("min = %v", cs.Min)
	}
	if cs.Max.Int64() != 99 {
		t.Errorf("max = %v", cs.Max)
	}
	if cs.Distinct < 80 || cs.Distinct > 300 {
		t.Errorf("distinct estimate = %d, want ~100-200", cs.Distinct)
	}
	// FracLess should be approximately linear for uniform data.
	if f := cs.FracLess(50); f < 0.4 || f > 0.6 {
		t.Errorf("FracLess(50) = %v, want ~0.5", f)
	}
	if f := cs.FracLess(-10); f != 0 {
		t.Errorf("FracLess below min = %v", f)
	}
	if f := cs.FracLess(1000); f != 1 {
		t.Errorf("FracLess above max = %v", f)
	}
}

func TestCatalog(t *testing.T) {
	r1 := makeRel(t, 30)
	r1.Name = "alpha"
	r2 := makeRel(t, 60)
	r2.Name = "beta"
	cat := NewCatalog([]*Relation{r1, r2}, 100, rand.New(rand.NewSource(2)))
	if cat.Cardinality("alpha") != 30 || cat.Cardinality("beta") != 60 {
		t.Errorf("catalog cardinalities wrong")
	}
	if cat.Cardinality("gamma") != 0 {
		t.Error("unknown relation cardinality != 0")
	}
	if _, err := cat.Stats("alpha"); err != nil {
		t.Error(err)
	}
	if _, err := cat.Stats("gamma"); err == nil {
		t.Error("Stats(gamma) succeeded")
	}
}

// TestAnalyzeSeededDefault pins the determinism contract Analyze
// documents: with a nil rng (the rand.NewSource(1) default) — or any
// identically seeded rng — repeated analyses of the same relation
// retain the same sample rows and produce identical statistics. The
// heavy-hitter detection feeding off these samples inherits the
// guarantee.
func TestAnalyzeSeededDefault(t *testing.T) {
	r := New("S", MustSchema(
		Column{Name: "a", Kind: KindInt},
		Column{Name: "b", Kind: KindFloat},
	))
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		r.MustAppend(Tuple{Int(int64(rng.Intn(50))), Float(rng.Float64() * 100)})
	}
	a := Analyze(r, 300, nil)
	b := Analyze(r, 300, nil)
	c := Analyze(r, 300, rand.New(rand.NewSource(1)))
	if !reflect.DeepEqual(a.SampleRows, b.SampleRows) {
		t.Error("nil-rng analyses drew different samples")
	}
	if !reflect.DeepEqual(a.SampleRows, c.SampleRows) {
		t.Error("nil rng is not equivalent to rand.NewSource(1)")
	}
	if !reflect.DeepEqual(a.Columns, b.Columns) {
		t.Error("nil-rng analyses produced different column stats")
	}
	d := Analyze(r, 300, rand.New(rand.NewSource(2)))
	if reflect.DeepEqual(a.SampleRows, d.SampleRows) {
		t.Error("differently seeded analyses drew identical samples (suspicious)")
	}
}
