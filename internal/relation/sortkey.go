package relation

import "math"

// Normalized sort keys: order-preserving int64 encodings of numeric
// values, extracted once per tuple so reducer-side join inner loops
// compare raw integers instead of calling Compare(Value.Add(...), ...)
// per candidate. A condition's key mode (see predicate.CondKeyMode)
// decides which extractor both of its sides use; keys from different
// modes are not comparable with each other.
//
// NULL maps to math.MinInt64, below every proper value, mirroring
// Compare's NULL-sorts-first rule. The encoding cannot distinguish
// NULL from the extreme key itself (int64 math.MinInt64 in int mode, a
// negative NaN in float mode); no workload produces either, and the
// generic Compare path remains available for data that does. Float
// NaNs are unsupported: Compare treats a NaN as equal to everything
// (both orderings fail), which no total-order key can express.

// NullSortKey is the key both extractors assign to NULL values.
const NullSortKey = math.MinInt64

// SortKeyInt returns the order-preserving key of v.Add(off) for
// conditions in integer key mode: both columns of kind int or time,
// integral offsets. The key is the shifted value itself, so key
// comparison is exactly Compare on the shifted values.
func SortKeyInt(v Value, off float64) int64 {
	if v.kind == KindNull {
		return NullSortKey
	}
	return v.Add(off).Int64()
}

// SortKeyFloat returns the order-preserving key of v.Add(off) for
// conditions in float key mode: at least one side float-valued after
// its shift, both numeric. The shifted value is computed exactly as
// Compare would see it (Add's int→float promotion rules included) and
// its float64 bits are remapped so int64 key order equals float order;
// -0 and +0 share a key, matching Compare.
func SortKeyFloat(v Value, off float64) int64 {
	if v.kind == KindNull {
		return NullSortKey
	}
	return floatKeyBits(v.Add(off).Float64())
}

// floatKeyBits is the order-preserving bit remap at the core of
// SortKeyFloat: float order on f equals int64 order on the result,
// with -0 and +0 sharing a key. Columnar key extraction
// (Chunk.AppendFloatKeys) uses it directly on payload arrays.
func floatKeyBits(f float64) int64 {
	if f == 0 {
		f = 0 // canonicalize -0.0
	}
	u := math.Float64bits(f)
	if u>>63 != 0 {
		u = ^u
	} else {
		u |= 1 << 63
	}
	return int64(u ^ 1<<63)
}
