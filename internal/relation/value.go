// Package relation provides the tabular data model underlying the
// theta-join processor: typed values, schemas, tuples, in-memory
// relations, codecs and the sampling-based statistics the optimizer
// consumes.
//
// The model is deliberately small: four scalar kinds cover every
// attribute used by the paper's workloads (mobile call records, TPC-H
// and flight itineraries), and tuples carry their encoded byte size so
// the MapReduce simulator can account I/O and network volume the same
// way the paper's cost model does.
//
// # String interning
//
// String columns can carry an order-preserving dictionary (Dict,
// built by InternStrings at DB.Analyze time or restored by the binary
// codec): the column's distinct strings get dense codes assigned in
// lexicographic order, each Value embeds its code next to the payload,
// and join conditions over dictionary-backed columns compile to the
// same normalized-int64 sort keys the numeric fast path uses. The
// contract is order preservation — for members a, b of one dictionary,
// sign(Key(a)−Key(b)) == sign(Compare(a, b)) — extended to absent
// probe strings and NULL by the even/odd key scheme documented on
// Dict. The generic relation.Compare fallback still applies whenever
// the contract cannot be established: neither side of a condition
// carries a dictionary (interning disabled, or a relation built
// outside Analyze/the codec), the two sides have mixed kinds, or a
// nominally-string column holds non-string values.
//
// # Binary codec
//
// WriteBinary emits interned relations in the v2 framing (magic
// "REL2"): each column header carries a hasDict byte and, when set,
// the dictionary's member strings; string values in dictionary columns
// are written as uvarint(code+1), with 0 escaping to the inline string
// layout for post-interning values absent from the dictionary.
// Dictionary-less relations keep the v1 framing (magic "RELB"), and
// ReadBinary accepts both magics, so files written before interning
// existed still load. See codec.go for the exact byte layout.
package relation

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindTime
)

// String returns the lower-case kind name used in schema DDL and CSV headers.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindTime:
		return "time"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ParseKind converts a kind name (as produced by Kind.String) back to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "null":
		return KindNull, nil
	case "int":
		return KindInt, nil
	case "float":
		return KindFloat, nil
	case "string":
		return KindString, nil
	case "time":
		return KindTime, nil
	default:
		return KindNull, fmt.Errorf("relation: unknown kind %q", s)
	}
}

// Value is a dynamically typed scalar. The zero Value is the SQL NULL.
//
// Values are compact (no interface boxing) because the simulator keeps
// millions of them in memory during an experiment sweep.
type Value struct {
	kind Kind
	i    int64 // KindInt and KindTime (unix seconds)
	f    float64
	s    string
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a float value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Str returns a string value. (The name avoids a clash with the
// fmt.Stringer method on Value; the accessor counterpart is Value.Str.)
func Str(v string) Value { return Value{kind: KindString, s: v} }

// InternedStr returns a string value carrying its order-preserving
// dictionary code (see Dict). The code rides in the otherwise unused
// integer payload as code+1, so the zero payload still means "not
// interned" and the struct does not grow. Interned and plain string
// values compare identically (Compare, Equal and String use the string
// payload); the code only changes EncodedSize and enables the
// dictionary key fast path.
func InternedStr(s string, code int64) Value {
	return Value{kind: KindString, s: s, i: code + 1}
}

// Time returns a time value with second precision.
func Time(t time.Time) Value { return Value{kind: KindTime, i: t.Unix()} }

// TimeUnix returns a time value from unix seconds.
func TimeUnix(sec int64) Value { return Value{kind: KindTime, i: sec} }

// Kind reports the value's dynamic kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int64 returns the integer payload. It is valid for KindInt and
// KindTime, and truncates KindFloat. String values return 0 (their
// integer payload is the dictionary code slot, see InternedStr).
func (v Value) Int64() int64 {
	switch v.kind {
	case KindFloat:
		return int64(v.f)
	case KindString:
		return 0
	default:
		return v.i
	}
}

// DictCode returns the dictionary code an interned string value
// carries (see InternedStr and Dict), or false for NULL, non-string
// and non-interned values. The code is only meaningful relative to the
// dictionary of the column the value came from; callers must verify
// dictionary identity before comparing codes across relations.
func (v Value) DictCode() (int64, bool) {
	if v.kind == KindString && v.i > 0 {
		return v.i - 1, true
	}
	return 0, false
}

// Float64 returns the numeric payload as a float. It is valid for
// KindInt, KindFloat and KindTime.
func (v Value) Float64() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt, KindTime:
		return float64(v.i)
	default:
		return 0
	}
}

// Str returns the string payload (empty for non-string kinds).
func (v Value) Str() string { return v.s }

// AsTime returns the time payload for KindTime values.
func (v Value) AsTime() time.Time { return time.Unix(v.i, 0).UTC() }

// String renders the value the way the CSV codec writes it.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return ""
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindTime:
		return strconv.FormatInt(v.i, 10)
	default:
		return fmt.Sprintf("value(kind=%d)", uint8(v.kind))
	}
}

// numericKinds reports whether both values can be compared numerically.
func numericComparable(a, b Value) bool {
	na := a.kind == KindInt || a.kind == KindFloat || a.kind == KindTime
	nb := b.kind == KindInt || b.kind == KindFloat || b.kind == KindTime
	return na && nb
}

// Compare orders two values. It returns -1, 0, or +1. NULL sorts before
// everything; numeric kinds (int, float, time) compare by magnitude;
// strings compare lexicographically. Comparing a string with a numeric
// kind orders the numeric kind first (deterministic but arbitrary, as
// the planner never produces such comparisons for well-typed queries).
func Compare(a, b Value) int {
	switch {
	case a.kind == KindNull && b.kind == KindNull:
		return 0
	case a.kind == KindNull:
		return -1
	case b.kind == KindNull:
		return 1
	}
	if numericComparable(a, b) {
		// Exact path when neither side is a float.
		if a.kind != KindFloat && b.kind != KindFloat {
			switch {
			case a.i < b.i:
				return -1
			case a.i > b.i:
				return 1
			default:
				return 0
			}
		}
		af, bf := a.Float64(), b.Float64()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.kind == KindString && b.kind == KindString {
		switch {
		case a.s < b.s:
			return -1
		case a.s > b.s:
			return 1
		default:
			return 0
		}
	}
	// Mixed string/numeric: numeric first.
	if a.kind == KindString {
		return 1
	}
	return -1
}

// Equal reports whether two values are equal under Compare semantics.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Add returns a numeric value shifted by the given constant. It is used
// to evaluate conditions of the form "R.a + c < S.b". String values are
// returned unchanged.
func (v Value) Add(c float64) Value {
	switch v.kind {
	case KindInt:
		if c == math.Trunc(c) {
			return Int(v.i + int64(c))
		}
		return Float(float64(v.i) + c)
	case KindFloat:
		return Float(v.f + c)
	case KindTime:
		return TimeUnix(v.i + int64(c))
	default:
		return v
	}
}

// EncodedSize returns the number of bytes the binary codec uses for the
// value. The MapReduce simulator charges I/O and network cost in these
// units. Interned strings (see InternedStr) serialize as their varint
// dictionary code — the interning win the shuffle-byte accounting
// measures — while plain strings keep the v1 length-prefixed layout.
func (v Value) EncodedSize() int {
	switch v.kind {
	case KindNull:
		return 1
	case KindInt, KindFloat, KindTime:
		return 1 + 8
	case KindString:
		if v.i > 0 {
			return 1 + uvarintLen(uint64(v.i))
		}
		return 1 + 4 + len(v.s)
	default:
		return 1
	}
}

// uvarintLen is the byte length of x in unsigned varint encoding.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// ParseValue parses the textual form written by Value.String according
// to the expected kind.
func ParseValue(kind Kind, text string) (Value, error) {
	if text == "" && kind != KindString {
		return Null(), nil
	}
	switch kind {
	case KindNull:
		return Null(), nil
	case KindInt:
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Null(), fmt.Errorf("relation: parse int %q: %w", text, err)
		}
		return Int(n), nil
	case KindFloat:
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Null(), fmt.Errorf("relation: parse float %q: %w", text, err)
		}
		return Float(f), nil
	case KindString:
		return Str(text), nil
	case KindTime:
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Null(), fmt.Errorf("relation: parse time %q: %w", text, err)
		}
		return TimeUnix(n), nil
	default:
		return Null(), fmt.Errorf("relation: unknown kind %v", kind)
	}
}
