// Package relation provides the tabular data model underlying the
// theta-join processor: typed values, schemas, tuples, in-memory
// relations, codecs and the sampling-based statistics the optimizer
// consumes.
//
// The model is deliberately small: four scalar kinds cover every
// attribute used by the paper's workloads (mobile call records, TPC-H
// and flight itineraries), and tuples carry their encoded byte size so
// the MapReduce simulator can account I/O and network volume the same
// way the paper's cost model does.
package relation

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindTime
)

// String returns the lower-case kind name used in schema DDL and CSV headers.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindTime:
		return "time"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ParseKind converts a kind name (as produced by Kind.String) back to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "null":
		return KindNull, nil
	case "int":
		return KindInt, nil
	case "float":
		return KindFloat, nil
	case "string":
		return KindString, nil
	case "time":
		return KindTime, nil
	default:
		return KindNull, fmt.Errorf("relation: unknown kind %q", s)
	}
}

// Value is a dynamically typed scalar. The zero Value is the SQL NULL.
//
// Values are compact (no interface boxing) because the simulator keeps
// millions of them in memory during an experiment sweep.
type Value struct {
	kind Kind
	i    int64 // KindInt and KindTime (unix seconds)
	f    float64
	s    string
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a float value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Str returns a string value. (The name avoids a clash with the
// fmt.Stringer method on Value; the accessor counterpart is Value.Str.)
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Time returns a time value with second precision.
func Time(t time.Time) Value { return Value{kind: KindTime, i: t.Unix()} }

// TimeUnix returns a time value from unix seconds.
func TimeUnix(sec int64) Value { return Value{kind: KindTime, i: sec} }

// Kind reports the value's dynamic kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int64 returns the integer payload. It is valid for KindInt and
// KindTime, and truncates KindFloat.
func (v Value) Int64() int64 {
	if v.kind == KindFloat {
		return int64(v.f)
	}
	return v.i
}

// Float64 returns the numeric payload as a float. It is valid for
// KindInt, KindFloat and KindTime.
func (v Value) Float64() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt, KindTime:
		return float64(v.i)
	default:
		return 0
	}
}

// Str returns the string payload (empty for non-string kinds).
func (v Value) Str() string { return v.s }

// AsTime returns the time payload for KindTime values.
func (v Value) AsTime() time.Time { return time.Unix(v.i, 0).UTC() }

// String renders the value the way the CSV codec writes it.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return ""
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindTime:
		return strconv.FormatInt(v.i, 10)
	default:
		return fmt.Sprintf("value(kind=%d)", uint8(v.kind))
	}
}

// numericKinds reports whether both values can be compared numerically.
func numericComparable(a, b Value) bool {
	na := a.kind == KindInt || a.kind == KindFloat || a.kind == KindTime
	nb := b.kind == KindInt || b.kind == KindFloat || b.kind == KindTime
	return na && nb
}

// Compare orders two values. It returns -1, 0, or +1. NULL sorts before
// everything; numeric kinds (int, float, time) compare by magnitude;
// strings compare lexicographically. Comparing a string with a numeric
// kind orders the numeric kind first (deterministic but arbitrary, as
// the planner never produces such comparisons for well-typed queries).
func Compare(a, b Value) int {
	switch {
	case a.kind == KindNull && b.kind == KindNull:
		return 0
	case a.kind == KindNull:
		return -1
	case b.kind == KindNull:
		return 1
	}
	if numericComparable(a, b) {
		// Exact path when neither side is a float.
		if a.kind != KindFloat && b.kind != KindFloat {
			switch {
			case a.i < b.i:
				return -1
			case a.i > b.i:
				return 1
			default:
				return 0
			}
		}
		af, bf := a.Float64(), b.Float64()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.kind == KindString && b.kind == KindString {
		switch {
		case a.s < b.s:
			return -1
		case a.s > b.s:
			return 1
		default:
			return 0
		}
	}
	// Mixed string/numeric: numeric first.
	if a.kind == KindString {
		return 1
	}
	return -1
}

// Equal reports whether two values are equal under Compare semantics.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Add returns a numeric value shifted by the given constant. It is used
// to evaluate conditions of the form "R.a + c < S.b". String values are
// returned unchanged.
func (v Value) Add(c float64) Value {
	switch v.kind {
	case KindInt:
		if c == math.Trunc(c) {
			return Int(v.i + int64(c))
		}
		return Float(float64(v.i) + c)
	case KindFloat:
		return Float(v.f + c)
	case KindTime:
		return TimeUnix(v.i + int64(c))
	default:
		return v
	}
}

// EncodedSize returns the number of bytes the binary codec uses for the
// value. The MapReduce simulator charges I/O and network cost in these
// units.
func (v Value) EncodedSize() int {
	switch v.kind {
	case KindNull:
		return 1
	case KindInt, KindFloat, KindTime:
		return 1 + 8
	case KindString:
		return 1 + 4 + len(v.s)
	default:
		return 1
	}
}

// ParseValue parses the textual form written by Value.String according
// to the expected kind.
func ParseValue(kind Kind, text string) (Value, error) {
	if text == "" && kind != KindString {
		return Null(), nil
	}
	switch kind {
	case KindNull:
		return Null(), nil
	case KindInt:
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Null(), fmt.Errorf("relation: parse int %q: %w", text, err)
		}
		return Int(n), nil
	case KindFloat:
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Null(), fmt.Errorf("relation: parse float %q: %w", text, err)
		}
		return Float(f), nil
	case KindString:
		return Str(text), nil
	case KindTime:
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Null(), fmt.Errorf("relation: parse time %q: %w", text, err)
		}
		return TimeUnix(n), nil
	default:
		return Null(), fmt.Errorf("relation: unknown kind %v", kind)
	}
}
