package relation

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// randomWord draws a short lowercase string; the tiny alphabet and
// length keep duplicate and near-miss probes frequent.
func randomWord(rng *rand.Rand) string {
	n := 1 + rng.Intn(6)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(4))
	}
	return string(b)
}

// Dictionary key order must agree with Compare for every pair of which
// at least one side is a member — the contract the KeyDict join fast
// path relies on (the reference dictionary always covers one side).
func TestDictKeyOrderMatchesCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	members := make([]string, 40)
	for i := range members {
		members[i] = randomWord(rng)
	}
	d := NewDict(members)
	pool := []Value{Null()}
	for _, s := range members {
		pool = append(pool, Str(s))
	}
	for i := 0; i < 120; i++ {
		pool = append(pool, Str(randomWord(rng))) // mostly absent probes
	}
	for _, a := range pool {
		aMember := !a.IsNull() && func() bool { _, ok := d.Code(a.Str()); return ok }()
		for _, b := range pool {
			bMember := !b.IsNull() && func() bool { _, ok := d.Code(b.Str()); return ok }()
			if !aMember && !bMember && !(a.IsNull() || b.IsNull()) {
				continue // two absent strings may legitimately collide in a gap
			}
			ka, kb := d.Key(a), d.Key(b)
			want := Compare(a, b)
			got := 0
			if ka < kb {
				got = -1
			} else if ka > kb {
				got = 1
			}
			if got != want {
				t.Fatalf("dict keys disagree with Compare: %v vs %v: key %d, Compare %d", a, b, got, want)
			}
		}
	}
}

func TestDictNullAndCodes(t *testing.T) {
	d := NewDict([]string{"b", "a", "c", "a"}) // dedup + sort
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
	for i, s := range []string{"a", "b", "c"} {
		c, ok := d.Code(s)
		if !ok || c != int64(i) {
			t.Fatalf("Code(%q) = %d,%v", s, c, ok)
		}
		if d.At(c) != s {
			t.Fatalf("At(%d) = %q", c, d.At(c))
		}
	}
	if _, ok := d.Code("x"); ok {
		t.Fatal("absent string reported as member")
	}
	if d.At(-1) != "" || d.At(3) != "" {
		t.Fatal("out-of-range At not empty")
	}
	if d.Key(Null()) != NullSortKey {
		t.Fatal("NULL key is not NullSortKey")
	}
	if NullSortKey >= d.ProbeKey("") {
		t.Fatal("NULL does not sort below every string key")
	}
}

// Absent probes must land strictly between the neighbouring member
// keys: below the first member, in each gap, above the last.
func TestDictProbeKeyGapPositions(t *testing.T) {
	d := NewDict([]string{"bb", "dd", "ff"})
	cases := []struct {
		probe string
		below string // member the probe sorts below ("" = none)
		above string // member the probe sorts above ("" = none)
	}{
		{"aa", "bb", ""},
		{"cc", "dd", "bb"},
		{"ee", "ff", "dd"},
		{"gg", "", "ff"},
	}
	for _, c := range cases {
		pk := d.ProbeKey(c.probe)
		if pk%2 == 0 {
			t.Fatalf("absent probe %q got even key %d", c.probe, pk)
		}
		if c.below != "" {
			mc, _ := d.Code(c.below)
			if pk >= CodeKey(mc) {
				t.Errorf("probe %q key %d not below member %q key %d", c.probe, pk, c.below, CodeKey(mc))
			}
		}
		if c.above != "" {
			mc, _ := d.Code(c.above)
			if pk <= CodeKey(mc) {
				t.Errorf("probe %q key %d not above member %q key %d", c.probe, pk, c.above, CodeKey(mc))
			}
		}
	}
	// Member probes take the even member key.
	for _, s := range []string{"bb", "dd", "ff"} {
		c, _ := d.Code(s)
		if d.ProbeKey(s) != CodeKey(c) {
			t.Errorf("member probe %q key %d != CodeKey %d", s, d.ProbeKey(s), CodeKey(c))
		}
	}
}

func TestInternStrings(t *testing.T) {
	schema := MustSchema(
		Column{Name: "s", Kind: KindString},
		Column{Name: "n", Kind: KindInt},
	)
	r := New("t", schema)
	words := []string{"pear", "apple", "pear", "fig"}
	for i, w := range words {
		r.MustAppend(Tuple{Str(w), Int(int64(i))})
	}
	r.MustAppend(Tuple{Null(), Int(99)})
	plainSize := r.EncodedSize()
	InternStrings(r)
	d := r.DictOf(0)
	if d == nil || d.Len() != 3 {
		t.Fatalf("dict = %v", d)
	}
	if r.DictOf(1) != nil {
		t.Fatal("int column grew a dict")
	}
	for i, w := range words {
		v := r.Tuples[i][0]
		if v.Str() != w {
			t.Fatalf("string payload changed: %q", v.Str())
		}
		c, ok := v.DictCode()
		if !ok {
			t.Fatalf("row %d not interned", i)
		}
		if d.At(c) != w {
			t.Fatalf("row %d code %d decodes to %q, want %q", i, c, d.At(c), w)
		}
	}
	if _, ok := r.Tuples[4][0].DictCode(); ok {
		t.Fatal("NULL reported a dict code")
	}
	if r.EncodedSize() >= plainSize {
		t.Errorf("interning did not shrink encoded size: %d -> %d", plainSize, r.EncodedSize())
	}
	// Idempotent: a second pass keeps the same dictionary.
	InternStrings(r)
	if r.DictOf(0) != d {
		t.Fatal("re-interning replaced the dictionary")
	}
}

// Interned relations round-trip through the v2 binary format with
// dictionaries, codes and un-interned escape values intact; plain
// relations keep the byte-identical v1 framing.
func TestBinaryCodecDictRoundTrip(t *testing.T) {
	schema := MustSchema(
		Column{Name: "s", Kind: KindString},
		Column{Name: "n", Kind: KindInt},
	)
	r := New("t", schema)
	for i := 0; i < 50; i++ {
		r.MustAppend(Tuple{Str(fmt.Sprintf("w%02d", i%7)), Int(int64(i))})
	}
	r.MustAppend(Tuple{Null(), Null()})
	InternStrings(r)
	// An un-interned string appended after interning exercises the
	// escape encoding.
	r.MustAppend(Tuple{Str("zz-late"), Int(1000)})

	var buf bytes.Buffer
	if err := WriteBinary(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), binaryMagicV2) {
		t.Fatalf("interned relation not written as v2: %q", buf.String()[:4])
	}
	got, err := ReadBinary(bytes.NewReader(buf.Bytes()), "t")
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() != r.Cardinality() {
		t.Fatalf("cardinality %d, want %d", got.Cardinality(), r.Cardinality())
	}
	d := got.DictOf(0)
	if d == nil || d.Len() != r.DictOf(0).Len() {
		t.Fatalf("dict not restored: %v", d)
	}
	for i := range r.Tuples {
		for ci := range r.Tuples[i] {
			if Compare(got.Tuples[i][ci], r.Tuples[i][ci]) != 0 {
				t.Fatalf("row %d col %d: %v != %v", i, ci, got.Tuples[i][ci], r.Tuples[i][ci])
			}
		}
	}
	// Decoded dict values are re-interned (codes usable immediately).
	if _, ok := got.Tuples[0][0].DictCode(); !ok {
		t.Error("decoded dict value not interned")
	}
	// The post-interning escape value decodes as a plain string.
	last := got.Tuples[got.Cardinality()-1][0]
	if last.Str() != "zz-late" {
		t.Errorf("escape value = %q", last.Str())
	}

	// Dictionary-less relations keep the v1 magic (backward compat).
	plain := New("p", schema)
	plain.MustAppend(Tuple{Str("x"), Int(1)})
	var b1 bytes.Buffer
	if err := WriteBinary(&b1, plain); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b1.String(), binaryMagic) || strings.HasPrefix(b1.String(), binaryMagicV2) {
		t.Fatalf("plain relation not written as v1: %q", b1.String()[:4])
	}
	back, err := ReadBinary(bytes.NewReader(b1.Bytes()), "p")
	if err != nil {
		t.Fatal(err)
	}
	if back.DictOf(0) != nil {
		t.Error("v1 read invented a dictionary")
	}
}
