package relation

import (
	"fmt"
	"math"
	"math/rand"
)

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// ColumnStats summarises one attribute: min/max, an approximate
// distinct count, and an equi-width histogram. The optimizer uses these
// to estimate theta-condition selectivities without scanning full
// relations (the paper builds them during data upload, §6.3).
type ColumnStats struct {
	Name     string
	Kind     Kind
	Count    int
	NullCnt  int
	Min      Value
	Max      Value
	Distinct int // estimated via sample distinct scaling

	// Dict references the column's order-preserving string dictionary
	// when the relation was interned before analysis (see InternStrings);
	// nil for numeric columns and un-interned string columns.
	Dict *Dict

	// Histogram over [histMin, histMax] with equal-width buckets.
	// Only populated for numeric kinds.
	HistMin     float64
	HistMax     float64
	BucketCount []int
}

// DefaultHistogramBuckets is the bucket count used by Analyze.
const DefaultHistogramBuckets = 32

// Selectivity of v-range queries is linear-interpolated inside buckets.

// FracLess estimates P[x < v] from the histogram (numeric columns).
func (cs *ColumnStats) FracLess(v float64) float64 {
	if cs.Count == 0 || len(cs.BucketCount) == 0 {
		return 0.5
	}
	if v <= cs.HistMin {
		return 0
	}
	if v >= cs.HistMax {
		return 1
	}
	width := (cs.HistMax - cs.HistMin) / float64(len(cs.BucketCount))
	if width <= 0 {
		return 0.5
	}
	pos := (v - cs.HistMin) / width
	full := int(pos)
	frac := pos - float64(full)
	total := 0
	for _, c := range cs.BucketCount {
		total += c
	}
	if total == 0 {
		return 0.5
	}
	acc := 0
	for i := 0; i < full && i < len(cs.BucketCount); i++ {
		acc += cs.BucketCount[i]
	}
	est := float64(acc)
	if full < len(cs.BucketCount) {
		est += frac * float64(cs.BucketCount[full])
	}
	return est / float64(total)
}

// HotKey is one detected heavy hitter of a column: a value estimated
// to carry at least a minimum share of the relation's tuples. The
// skew subsystem (internal/skew) computes these from the statistics
// sample — or exactly, for small relations — and the planner and
// partitioners consume them to split hot keys across reducers.
type HotKey struct {
	Value Value
	Count int64   // estimated occurrences in the full relation
	Frac  float64 // estimated fraction of tuples carrying Value
}

// TableStats bundles per-column statistics with cardinality and size
// information for one relation.
type TableStats struct {
	Relation    string
	Cardinality int
	AvgTuple    float64
	ModeledSize int64
	Columns     map[string]*ColumnStats
	SampleRows  []Tuple

	// HotKeys holds the per-column heavy-hitter report, ordered by
	// estimated count descending. A nil map means detection never ran;
	// an empty slice for a column means it was measured near-uniform.
	HotKeys map[string][]HotKey

	colOrder []string
}

// ColumnOrder returns column names in schema order, matching the value
// order inside SampleRows tuples.
func (ts *TableStats) ColumnOrder() []string { return ts.colOrder }

// Analyze scans (a sample of) the relation and produces TableStats.
// sampleSize bounds both histogram construction and the retained sample
// rows used for pairwise selectivity estimation; <=0 means a default
// of 1000.
//
// A nil rng defaults to rand.New(rand.NewSource(1)): sampling — which
// also feeds heavy-hitter detection (internal/skew) — is then
// deterministic, so repeated analyses of the same relation produce
// identical statistics, hot-key reports and, downstream, identical
// plans. Callers wanting sampling variety must pass their own seeded
// rng (core.NewDB threads an explicit seed through here).
func Analyze(r *Relation, sampleSize int, rng *rand.Rand) *TableStats {
	if sampleSize <= 0 {
		sampleSize = 1000
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	sample := r.Sample(sampleSize, rng)
	ts := &TableStats{
		Relation:    r.Name,
		Cardinality: r.Cardinality(),
		AvgTuple:    r.AvgTupleSize(),
		ModeledSize: r.ModeledSize(),
		Columns:     make(map[string]*ColumnStats, r.Schema.Len()),
		SampleRows:  sample,
	}
	for ci := 0; ci < r.Schema.Len(); ci++ {
		ts.colOrder = append(ts.colOrder, r.Schema.Column(ci).Name)
	}
	for ci := 0; ci < r.Schema.Len(); ci++ {
		col := r.Schema.Column(ci)
		cs := &ColumnStats{Name: col.Name, Kind: col.Kind, Dict: r.DictOf(ci)}
		distinct := make(map[string]struct{})
		var minV, maxV Value
		first := true
		var lo, hi float64
		numeric := col.Kind == KindInt || col.Kind == KindFloat || col.Kind == KindTime
		for _, t := range sample {
			v := t[ci]
			cs.Count++
			if v.IsNull() {
				cs.NullCnt++
				continue
			}
			distinct[v.String()] = struct{}{}
			if first {
				minV, maxV = v, v
				if numeric {
					lo, hi = v.Float64(), v.Float64()
				}
				first = false
				continue
			}
			if Compare(v, minV) < 0 {
				minV = v
			}
			if Compare(v, maxV) > 0 {
				maxV = v
			}
			if numeric {
				f := v.Float64()
				if f < lo {
					lo = f
				}
				if f > hi {
					hi = f
				}
			}
		}
		cs.Min, cs.Max = minV, maxV
		// Scale sample distinct count to the full relation assuming the
		// sample is uniform; capped by cardinality.
		if len(sample) > 0 {
			scaled := int(float64(len(distinct)) * float64(r.Cardinality()) / float64(len(sample)))
			if len(distinct) == len(sample) {
				scaled = r.Cardinality() // likely unique
			}
			if scaled > r.Cardinality() {
				scaled = r.Cardinality()
			}
			if scaled < len(distinct) {
				scaled = len(distinct)
			}
			cs.Distinct = scaled
		}
		if numeric && !first {
			cs.HistMin, cs.HistMax = lo, hi
			cs.BucketCount = make([]int, DefaultHistogramBuckets)
			width := (hi - lo) / float64(DefaultHistogramBuckets)
			for _, t := range sample {
				v := t[ci]
				if v.IsNull() {
					continue
				}
				b := 0
				if width > 0 {
					b = int((v.Float64() - lo) / width)
					if b >= DefaultHistogramBuckets {
						b = DefaultHistogramBuckets - 1
					}
					if b < 0 {
						b = 0
					}
				}
				cs.BucketCount[b]++
			}
		}
		ts.Columns[col.Name] = cs
	}
	return ts
}

// Catalog maps relation names to their statistics, forming the
// optimizer's view of the database.
type Catalog struct {
	Tables map[string]*TableStats
}

// NewCatalog analyzes every relation with the given sample size. The
// rng is shared across relations in slice order; nil falls back to
// Analyze's seeded default per relation (see Analyze for the
// determinism contract).
func NewCatalog(rels []*Relation, sampleSize int, rng *rand.Rand) *Catalog {
	c := &Catalog{Tables: make(map[string]*TableStats, len(rels))}
	for _, r := range rels {
		c.Tables[r.Name] = Analyze(r, sampleSize, rng)
	}
	return c
}

// WithOverlay returns a catalog view layering extra tables — e.g.
// statistics measured from produced intermediates at runtime — over
// this catalog. The receiver is not mutated; overlay entries shadow
// base entries of the same name.
func (c *Catalog) WithOverlay(extra map[string]*TableStats) *Catalog {
	merged := make(map[string]*TableStats, len(c.Tables)+len(extra))
	for k, v := range c.Tables {
		merged[k] = v
	}
	for k, v := range extra {
		merged[k] = v
	}
	return &Catalog{Tables: merged}
}

// Stats returns statistics for a relation name.
func (c *Catalog) Stats(name string) (*TableStats, error) {
	ts, ok := c.Tables[name]
	if !ok {
		return nil, fmt.Errorf("relation: catalog has no stats for %q", name)
	}
	return ts, nil
}

// Cardinality is a convenience accessor returning 0 for unknown tables.
func (c *Catalog) Cardinality(name string) int {
	if ts, ok := c.Tables[name]; ok {
		return ts.Cardinality
	}
	return 0
}
