package relation

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
)

// fpWriter accumulates an FNV-1a fingerprint over typed fields with
// explicit separators, so adjacent fields cannot alias ("ab"+"c" vs
// "a"+"bc") and numeric zero is distinct from absence.
type fpWriter struct {
	h   interface{ Sum64() uint64 }
	w   interface{ Write([]byte) (int, error) }
	buf [8]byte
}

func newFPWriter() *fpWriter {
	h := fnv.New64a()
	return &fpWriter{h: h, w: h}
}

func (f *fpWriter) str(s string) {
	f.u64(uint64(len(s)))
	f.w.Write([]byte(s))
}

func (f *fpWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(f.buf[:], v)
	f.w.Write(f.buf[:])
}

func (f *fpWriter) i64(v int64)   { f.u64(uint64(v)) }
func (f *fpWriter) f64(v float64) { f.u64(floatBits(v)) }
func (f *fpWriter) value(v Value) { f.u64(uint64(v.Kind())); f.str(v.String()) }
func (f *fpWriter) sum64() uint64 { return f.h.Sum64() }

// Fingerprint returns a 64-bit content hash of the catalog: every
// relation's schema (column names, kinds) and statistics (cardinality,
// sizes, min/max, distinct counts, histograms, hot-key reports, sample
// rows). Two catalogs with identical fingerprints plan identically, so
// the fingerprint — combined with an analyze generation, see
// core.DB.CatalogVersion — keys plan caches: reloading a relation or
// re-analyzing with a different sample changes the fingerprint and
// invalidates every cached plan built on the old statistics.
func (c *Catalog) Fingerprint() uint64 {
	if c == nil {
		return 0
	}
	names := make([]string, 0, len(c.Tables))
	for n := range c.Tables {
		names = append(names, n)
	}
	sort.Strings(names)
	f := newFPWriter()
	f.u64(uint64(len(names)))
	for _, n := range names {
		ts := c.Tables[n]
		f.str(n)
		f.str(ts.Relation)
		f.i64(int64(ts.Cardinality))
		f.f64(ts.AvgTuple)
		f.i64(ts.ModeledSize)
		f.u64(uint64(len(ts.colOrder)))
		for _, col := range ts.colOrder {
			f.str(col)
		}
		// Columns in deterministic (sorted) order; colOrder may not cover
		// map entries for hand-built stats.
		cols := make([]string, 0, len(ts.Columns))
		for cn := range ts.Columns {
			cols = append(cols, cn)
		}
		sort.Strings(cols)
		for _, cn := range cols {
			cs := ts.Columns[cn]
			f.str(cn)
			f.str(cs.Name)
			f.u64(uint64(cs.Kind))
			f.i64(int64(cs.Count))
			f.i64(int64(cs.NullCnt))
			f.value(cs.Min)
			f.value(cs.Max)
			f.i64(int64(cs.Distinct))
			f.f64(cs.HistMin)
			f.f64(cs.HistMax)
			f.u64(uint64(len(cs.BucketCount)))
			for _, b := range cs.BucketCount {
				f.i64(int64(b))
			}
		}
		hkCols := make([]string, 0, len(ts.HotKeys))
		for cn := range ts.HotKeys {
			hkCols = append(hkCols, cn)
		}
		sort.Strings(hkCols)
		f.u64(uint64(len(hkCols)))
		for _, cn := range hkCols {
			f.str(cn)
			for _, hk := range ts.HotKeys[cn] {
				f.value(hk.Value)
				f.i64(hk.Count)
				f.f64(hk.Frac)
			}
		}
		f.u64(uint64(len(ts.SampleRows)))
		for _, row := range ts.SampleRows {
			for _, v := range row {
				f.value(v)
			}
		}
	}
	return f.sum64()
}

// ContentHash returns an order-insensitive 64-bit hash of a relation's
// content: the schema fingerprint plus a commutative combination of
// per-tuple hashes. Two relations holding the same multiset of rows
// under the same schema hash identically regardless of row order —
// letting a client compare a served query result against a one-shot
// run without shipping the rows.
func ContentHash(r *Relation) uint64 {
	if r == nil {
		return 0
	}
	f := newFPWriter()
	f.u64(uint64(r.Schema.Len()))
	for i := 0; i < r.Schema.Len(); i++ {
		col := r.Schema.Column(i)
		f.str(col.Name)
		f.u64(uint64(col.Kind))
	}
	schemaHash := f.sum64()
	var rows uint64
	for _, t := range r.Tuples {
		tf := newFPWriter()
		for _, v := range t {
			tf.value(v)
		}
		rows += tf.sum64() // wrapping add: order-insensitive multiset hash
	}
	out := newFPWriter()
	out.u64(schemaHash)
	out.u64(uint64(r.Cardinality()))
	out.u64(rows)
	return out.sum64()
}
