package query

import (
	"math"
	"sort"
	"strconv"
	"strings"
)

// Canonical renders a parsed query back into the Parse grammar in a
// normalized form, so that textually different but equivalent
// submissions produce one string — the plan-cache key. aliases is the
// alias → table map Parse returned (absent entries treat the relation
// name as the table name).
//
// Normalizations applied:
//   - FROM items are sorted by alias; "table table" collapses to
//     "table".
//   - Each condition is oriented so its lexicographically smaller
//     rel.col operand is on the left (flipping the operator as
//     needed), and the conjunction is sorted.
//   - Offsets render exactly (shortest decimal round-tripping the
//     float, no exponent notation, Inf/NaN spelled out), so
//     Parse(Canonical(q)) reconstructs the same query: Canonical is
//     idempotent across a parse round trip (FuzzParse holds this).
func Canonical(q *Query, aliases map[string]string) string {
	rels := append([]string(nil), q.Relations...)
	sort.Strings(rels)
	var b strings.Builder
	b.WriteString("FROM ")
	for i, alias := range rels {
		if i > 0 {
			b.WriteString(", ")
		}
		table, ok := aliases[alias]
		if !ok || table == "" {
			table = alias
		}
		b.WriteString(table)
		if alias != table {
			b.WriteByte(' ')
			b.WriteString(alias)
		}
	}
	b.WriteString(" WHERE ")
	conds := make([]string, 0, len(q.Conditions))
	for _, c := range q.Conditions {
		if c.Right+"."+c.RightColumn < c.Left+"."+c.LeftColumn {
			c = c.Reversed()
		}
		conds = append(conds,
			canonicalOperand(c.Left, c.LeftColumn, c.LeftOffset)+
				" "+c.Op.String()+" "+
				canonicalOperand(c.Right, c.RightColumn, c.RightOffset))
	}
	sort.Strings(conds)
	b.WriteString(strings.Join(conds, " AND "))
	return b.String()
}

// canonicalOperand renders "rel.col" with an exact, re-parseable
// additive constant. Condition.String's %+g is for humans — its
// exponent notation ("1e-07") does not tokenize — so the cache key
// spells the offset in plain decimal with a separated sign token.
func canonicalOperand(rel, col string, off float64) string {
	s := rel + "." + col
	if off == 0 {
		// Covers -0.0 too: an additive -0 is indistinguishable from no
		// offset in every comparison, so it normalizes away.
		return s
	}
	sign := " + "
	if math.Signbit(off) && !math.IsNaN(off) {
		sign = " - "
	}
	mag := math.Abs(off)
	var num string
	switch {
	case math.IsInf(mag, 1):
		num = "Inf"
	case math.IsNaN(mag):
		num = "NaN"
	default:
		num = strconv.FormatFloat(mag, 'f', -1, 64)
	}
	return s + sign + num
}
