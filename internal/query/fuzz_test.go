package query

import (
	"testing"
)

// FuzzParse asserts the parser's two safety properties over arbitrary
// input: it never panics, and every accepted spec survives a canonical
// round trip — Canonical(q) re-parses successfully and canonicalizes
// to the same string (the fixed point the plan cache keys on).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"FROM a t1, a t2 WHERE t1.x < t2.y",
		"FROM calls t1, calls t2, calls t3 WHERE t1.bt <= t2.bt AND t2.bsc = t3.bsc",
		"FROM a, b WHERE a.x + 3 > b.y - 0.25",
		"FROM a, b WHERE a.x + 0.0000001 <> b.y",
		"FROM a, b WHERE b.y >= a.x + 1e5",
		"FROM a, b WHERE a.x + inf = b.y AND a.x <> b.z",
		"FROM a, b WHERE a.x + nan = b.y",
		"from lineitem l1, lineitem l2 where l1.k = l2.k",
		"FROM a,b,c WHERE a.x=b.x AND b.y=c.y",
		"FROM a b WHERE",
		"FROM WHERE",
		", , + - <> !=",
		"FROM a, b WHERE a.x ! b.y",
		"FROM a, b WHERE a.x < b.y AND",
		"FROM a, b WHERE a.x < b.y trailing",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		q, aliases, err := Parse("fuzz", spec)
		if err != nil {
			return
		}
		canon := Canonical(q, aliases)
		q2, a2, err := Parse("fuzz", canon)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\nspec:  %q\ncanon: %q", err, spec, canon)
		}
		if again := Canonical(q2, a2); again != canon {
			t.Fatalf("canonical form not a fixed point:\nspec:  %q\nonce:  %q\ntwice: %q", spec, canon, again)
		}
		if len(q2.Relations) != len(q.Relations) || len(q2.Conditions) != len(q.Conditions) {
			t.Fatalf("round trip changed shape: %d/%d relations, %d/%d conditions\nspec: %q\ncanon: %q",
				len(q.Relations), len(q2.Relations), len(q.Conditions), len(q2.Conditions), spec, canon)
		}
	})
}

// TestCanonicalNormalizes pins the normalizations Canonical promises:
// FROM order, condition order and operand orientation all wash out,
// while genuinely different queries keep distinct canonical forms.
func TestCanonicalNormalizes(t *testing.T) {
	canonOf := func(spec string) string {
		t.Helper()
		q, aliases, err := Parse("q", spec)
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		return Canonical(q, aliases)
	}
	equiv := [][2]string{
		{"FROM a, b WHERE a.x < b.y", "FROM b, a WHERE a.x < b.y"},
		{"FROM a, b WHERE a.x < b.y", "FROM a, b WHERE b.y > a.x"},
		{"FROM a, b, c WHERE a.x = b.x AND b.y = c.y", "FROM c, b, a WHERE c.y = b.y AND b.x = a.x"},
		{"FROM t a, t b WHERE a.x <= b.x", "FROM t b, t a WHERE b.x >= a.x"},
		{"FROM a, b WHERE a.x - 0 = b.y", "FROM a, b WHERE a.x = b.y"},
		{"from a, b where a.x + 2.50 < b.y", "FROM a, b WHERE a.x + 2.5 < b.y"},
	}
	for _, pair := range equiv {
		if c0, c1 := canonOf(pair[0]), canonOf(pair[1]); c0 != c1 {
			t.Errorf("want equal canonical forms:\n%q -> %q\n%q -> %q", pair[0], c0, pair[1], c1)
		}
	}
	distinct := [][2]string{
		{"FROM a, b WHERE a.x < b.y", "FROM a, b WHERE a.x <= b.y"},
		{"FROM a, b WHERE a.x < b.y", "FROM a, b WHERE a.x < b.y AND a.z = b.z"},
		{"FROM a, b WHERE a.x + 1 < b.y", "FROM a, b WHERE a.x - 1 < b.y"},
		{"FROM t a, t b WHERE a.x < b.x", "FROM u a, u b WHERE a.x < b.x"},
	}
	for _, pair := range distinct {
		if c0, c1 := canonOf(pair[0]), canonOf(pair[1]); c0 == c1 {
			t.Errorf("want distinct canonical forms, both %q:\n%q\n%q", c0, pair[0], pair[1])
		}
	}
	// The canonical form must carry offsets in plain decimal — %+g would
	// render this one as "1e-07", which does not re-tokenize.
	if c, want := canonOf("FROM a, b WHERE a.x + 0.0000001 < b.y"),
		"FROM a, b WHERE a.x + 0.0000001 < b.y"; c != want {
		t.Errorf("canonical offset rendering: got %q, want %q", c, want)
	}
}
