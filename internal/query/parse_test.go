package query

import (
	"testing"

	"repro/internal/predicate"
)

func TestParseMobileQ1(t *testing.T) {
	q, aliases, err := Parse("Q1", `
		FROM calls t1, calls t2, calls t3
		WHERE t1.bt <= t2.bt AND t1.l >= t2.l
		  AND t2.bsc = t3.bsc AND t2.d = t3.d`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Relations) != 3 || q.Relations[0] != "t1" {
		t.Errorf("relations = %v", q.Relations)
	}
	if len(q.Conditions) != 4 {
		t.Fatalf("conditions = %d", len(q.Conditions))
	}
	if aliases["t2"] != "calls" || len(aliases) != 3 {
		t.Errorf("aliases = %v", aliases)
	}
	c := q.Conditions[0]
	if c.Left != "t1" || c.LeftColumn != "bt" || c.Op != predicate.LE || c.Right != "t2" {
		t.Errorf("first condition = %v", c)
	}
}

func TestParseOffsets(t *testing.T) {
	q, _, err := Parse("q3ish", `
		FROM calls t1, calls t3
		WHERE t1.d + 3 > t3.d AND t1.d < t3.d - 1.5`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Conditions[0].LeftOffset != 3 {
		t.Errorf("left offset = %v", q.Conditions[0].LeftOffset)
	}
	if q.Conditions[1].RightOffset != -1.5 {
		t.Errorf("right offset = %v", q.Conditions[1].RightOffset)
	}
}

func TestParseNoAlias(t *testing.T) {
	q, aliases, err := Parse("q", `FROM a, b WHERE a.x <> b.y`)
	if err != nil {
		t.Fatal(err)
	}
	if aliases["a"] != "a" || aliases["b"] != "b" {
		t.Errorf("aliases = %v", aliases)
	}
	if q.Conditions[0].Op != predicate.NE {
		t.Errorf("op = %v", q.Conditions[0].Op)
	}
}

func TestParseOperatorSpellings(t *testing.T) {
	for spelling, want := range map[string]predicate.Op{
		"<": predicate.LT, "<=": predicate.LE, "=": predicate.EQ,
		">=": predicate.GE, ">": predicate.GT, "<>": predicate.NE, "!=": predicate.NE,
	} {
		q, _, err := Parse("q", "FROM a, b WHERE a.x "+spelling+" b.y")
		if err != nil {
			t.Fatalf("%q: %v", spelling, err)
		}
		if q.Conditions[0].Op != want {
			t.Errorf("%q parsed as %v, want %v", spelling, q.Conditions[0].Op, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                     // empty
		"WHERE a.x < b.y",                      // missing FROM
		"FROM a, b",                            // missing WHERE
		"FROM a, b WHERE a.x < b.y AND",        // dangling AND
		"FROM a, b WHERE x < b.y",              // operand without dot
		"FROM a, b WHERE a.x ~ b.y",            // bad operator
		"FROM a, b WHERE a.x < b.y extra.z",    // trailing tokens
		"FROM a, a WHERE a.x < a.y",            // duplicate alias
		"FROM a, b WHERE a.x + foo > b.y",      // bad offset number
		"FROM a, b WHERE a.x < a.y",            // self-loop (query.New rejects)
		"FROM a, b, c WHERE a.x < b.y",         // disconnected (c unused)
		"FROM a, b WHERE a.x < b.y AND ; true", // bad character
	}
	for _, spec := range cases {
		if _, _, err := Parse("q", spec); err == nil {
			t.Errorf("accepted %q", spec)
		}
	}
}

func TestParseWhitespaceRobust(t *testing.T) {
	q, _, err := Parse("q", "FROM\n\ta x ,\n b\ty\nWHERE\nx.c1<=y.c2\nAND x.c3>y.c4")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Conditions) != 2 || q.Relations[0] != "x" || q.Relations[1] != "y" {
		t.Errorf("parse = %v", q)
	}
}

func TestParseRoundTripAgainstManual(t *testing.T) {
	manual := MustNew("m", []string{"A", "B"}, []predicate.Condition{
		predicate.C("A", "v", predicate.LT, "B", "w").WithOffsets(2, 0),
	})
	parsed, _, err := Parse("m", "FROM A, B WHERE A.v + 2 < B.w")
	if err != nil {
		t.Fatal(err)
	}
	if manual.Conditions[0].String() != parsed.Conditions[0].String() {
		t.Errorf("mismatch: %v vs %v", manual.Conditions[0], parsed.Conditions[0])
	}
}
