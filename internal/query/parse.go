package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/predicate"
)

// Parse builds a Query from a SQL-ish join specification:
//
//	FROM calls t1, calls t2, calls t3
//	WHERE t1.bt <= t2.bt AND t1.l >= t2.l
//	  AND t2.bsc = t3.bsc AND t2.d = t3.d
//
// Grammar (case-insensitive keywords, free whitespace):
//
//	spec      := "FROM" fromItem ("," fromItem)* "WHERE" cond ("AND" cond)*
//	fromItem  := table [alias]
//	cond      := operand op operand
//	operand   := rel "." col [("+"|"-") number]
//	op        := "<" | "<=" | "=" | ">=" | ">" | "<>" | "!="
//
// The returned aliases map lists alias → table for every FROM item, so
// callers can register the needed relations (core.DB.Alias) before
// planning self-joins.
func Parse(name, spec string) (q *Query, aliases map[string]string, err error) {
	toks, err := tokenize(spec)
	if err != nil {
		return nil, nil, err
	}
	p := &parser{toks: toks}
	if !p.eatKeyword("FROM") {
		return nil, nil, fmt.Errorf("query: parse: expected FROM, got %q", p.peek())
	}
	aliases = make(map[string]string)
	var relNames []string
	for {
		table := p.next()
		if table == "" || isKeyword(table) {
			return nil, nil, fmt.Errorf("query: parse: expected table name, got %q", table)
		}
		alias := table
		if n := p.peek(); n != "" && n != "," && !isKeyword(n) && isIdent(n) {
			alias = p.next()
		}
		if _, dup := aliases[alias]; dup {
			return nil, nil, fmt.Errorf("query: parse: duplicate alias %q", alias)
		}
		aliases[alias] = table
		relNames = append(relNames, alias)
		if p.peek() == "," {
			p.next()
			continue
		}
		break
	}
	if !p.eatKeyword("WHERE") {
		return nil, nil, fmt.Errorf("query: parse: expected WHERE, got %q", p.peek())
	}
	var conds []predicate.Condition
	for {
		c, err := p.condition()
		if err != nil {
			return nil, nil, err
		}
		conds = append(conds, c)
		if p.eatKeyword("AND") {
			continue
		}
		break
	}
	if rest := p.peek(); rest != "" {
		return nil, nil, fmt.Errorf("query: parse: trailing input at %q", rest)
	}
	q, err = New(name, relNames, conds)
	if err != nil {
		return nil, nil, err
	}
	return q, aliases, nil
}

type parser struct {
	toks []string
	pos  int
}

func (p *parser) peek() string {
	if p.pos >= len(p.toks) {
		return ""
	}
	return p.toks[p.pos]
}

func (p *parser) next() string {
	t := p.peek()
	if t != "" {
		p.pos++
	}
	return t
}

func (p *parser) eatKeyword(kw string) bool {
	if strings.EqualFold(p.peek(), kw) {
		p.pos++
		return true
	}
	return false
}

func isKeyword(s string) bool {
	switch strings.ToUpper(s) {
	case "FROM", "WHERE", "AND":
		return true
	}
	return false
}

func isIdent(s string) bool {
	for i, r := range s {
		if unicode.IsLetter(r) || r == '_' || (i > 0 && unicode.IsDigit(r)) {
			continue
		}
		return false
	}
	return s != ""
}

// operand parses rel.col with an optional additive constant.
func (p *parser) operand() (rel, col string, offset float64, err error) {
	t := p.next()
	dot := strings.IndexByte(t, '.')
	if dot <= 0 || dot == len(t)-1 {
		return "", "", 0, fmt.Errorf("query: parse: expected rel.col, got %q", t)
	}
	rel, col = t[:dot], t[dot+1:]
	if !isIdent(rel) || !isIdent(col) {
		return "", "", 0, fmt.Errorf("query: parse: malformed operand %q", t)
	}
	if sign := p.peek(); sign == "+" || sign == "-" {
		p.next()
		numTok := p.next()
		n, err := strconv.ParseFloat(numTok, 64)
		if err != nil {
			return "", "", 0, fmt.Errorf("query: parse: expected number after %q, got %q", sign, numTok)
		}
		if sign == "-" {
			n = -n
		}
		offset = n
	}
	return rel, col, offset, nil
}

func (p *parser) condition() (predicate.Condition, error) {
	lRel, lCol, lOff, err := p.operand()
	if err != nil {
		return predicate.Condition{}, err
	}
	opTok := p.next()
	op, err := predicate.ParseOp(opTok)
	if err != nil {
		return predicate.Condition{}, fmt.Errorf("query: parse: %w", err)
	}
	rRel, rCol, rOff, err := p.operand()
	if err != nil {
		return predicate.Condition{}, err
	}
	return predicate.C(lRel, lCol, op, rRel, rCol).WithOffsets(lOff, rOff), nil
}

// tokenize splits the spec into identifiers, numbers, commas, signs and
// operator tokens.
func tokenize(s string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == ',':
			toks = append(toks, ",")
			i++
		case c == '+' || c == '-':
			toks = append(toks, string(c))
			i++
		case c == '<' || c == '>' || c == '=' || c == '!':
			j := i + 1
			if j < len(s) && (s[j] == '=' || s[j] == '>') {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		case isWordByte(c):
			j := i
			for j < len(s) && (isWordByte(s[j]) || s[j] == '.') {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		default:
			return nil, fmt.Errorf("query: parse: unexpected character %q", c)
		}
	}
	return toks, nil
}

func isWordByte(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}
