// Package query represents multi-way theta-join queries ("N-join"
// queries in the paper's terminology, §3.1) and their join graphs.
//
// A Query names m relations and n theta conditions; its JoinGraph G_J
// (Definition 1) has one vertex per relation and one labelled edge per
// condition. The join-path graph machinery of internal/joinpath
// enumerates candidate MapReduce jobs over this graph.
package query

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/predicate"
)

// Query is an N-join query: a projection-free conjunctive theta-join
// over named relations. Output columns (if any) are applied after the
// join by the harness; the planner's concern is the join itself.
type Query struct {
	Name       string
	Relations  []string
	Conditions []predicate.Condition
}

// New validates and builds a query. Conditions are assigned 1-based IDs
// (θ_1 … θ_n, matching the paper's edge labels). Every condition must
// reference two distinct declared relations, and the join graph must be
// connected (Definition 1 requires a connected graph).
func New(name string, relations []string, conditions []predicate.Condition) (*Query, error) {
	if len(relations) < 2 {
		return nil, fmt.Errorf("query %s: need at least 2 relations, got %d", name, len(relations))
	}
	declared := make(map[string]bool, len(relations))
	for _, r := range relations {
		if r == "" {
			return nil, fmt.Errorf("query %s: empty relation name", name)
		}
		if declared[r] {
			return nil, fmt.Errorf("query %s: duplicate relation %q", name, r)
		}
		declared[r] = true
	}
	if len(conditions) == 0 {
		return nil, fmt.Errorf("query %s: no join conditions", name)
	}
	conds := append([]predicate.Condition(nil), conditions...)
	for i := range conds {
		c := &conds[i]
		c.ID = i + 1
		if !declared[c.Left] {
			return nil, fmt.Errorf("query %s: condition %s references undeclared relation %q", name, c, c.Left)
		}
		if !declared[c.Right] {
			return nil, fmt.Errorf("query %s: condition %s references undeclared relation %q", name, c, c.Right)
		}
		if c.Left == c.Right {
			return nil, fmt.Errorf("query %s: condition %s is a self-loop; self-joins must alias the relation twice", name, c)
		}
	}
	q := &Query{Name: name, Relations: append([]string(nil), relations...), Conditions: conds}
	if !q.JoinGraph().Connected() {
		return nil, fmt.Errorf("query %s: join graph is not connected", name)
	}
	return q, nil
}

// MustNew is New that panics on error, for statically known queries.
func MustNew(name string, relations []string, conditions []predicate.Condition) *Query {
	q, err := New(name, relations, conditions)
	if err != nil {
		panic(err)
	}
	return q
}

// Condition returns the condition with the given 1-based ID.
func (q *Query) Condition(id int) (predicate.Condition, bool) {
	if id < 1 || id > len(q.Conditions) {
		return predicate.Condition{}, false
	}
	return q.Conditions[id-1], true
}

// ConditionIDs returns all condition IDs (1..n).
func (q *Query) ConditionIDs() []int {
	ids := make([]int, len(q.Conditions))
	for i := range ids {
		ids[i] = i + 1
	}
	return ids
}

// String renders the query as SQL-ish text.
func (q *Query) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: JOIN %s WHERE ", q.Name, strings.Join(q.Relations, ", "))
	for i, c := range q.Conditions {
		if i > 0 {
			b.WriteString(" AND ")
		}
		b.WriteString(c.String())
	}
	return b.String()
}

// JoinGraph builds G_J (Definition 1) for the query.
func (q *Query) JoinGraph() *JoinGraph {
	g := &JoinGraph{
		Vertices: append([]string(nil), q.Relations...),
		adj:      make(map[string][]Edge),
	}
	for _, c := range q.Conditions {
		e := Edge{ID: c.ID, U: c.Left, V: c.Right, Cond: c}
		g.Edges = append(g.Edges, e)
		g.adj[c.Left] = append(g.adj[c.Left], e)
		g.adj[c.Right] = append(g.adj[c.Right], e)
	}
	return g
}

// Edge is a labelled edge of the join graph: the θ_i condition between
// two relations. ID matches the condition's 1-based ordinal.
type Edge struct {
	ID   int
	U, V string
	Cond predicate.Condition
}

// Other returns the opposite endpoint.
func (e Edge) Other(v string) string {
	if e.U == v {
		return e.V
	}
	return e.U
}

// JoinGraph is G_J = ⟨V, E, L⟩ of Definition 1.
type JoinGraph struct {
	Vertices []string
	Edges    []Edge
	adj      map[string][]Edge
}

// Adjacent returns the edges incident to a vertex.
func (g *JoinGraph) Adjacent(v string) []Edge { return g.adj[v] }

// Degree returns the number of incident edges (parallel edges counted).
func (g *JoinGraph) Degree(v string) int { return len(g.adj[v]) }

// Connected reports whether the graph is connected.
func (g *JoinGraph) Connected() bool {
	if len(g.Vertices) == 0 {
		return true
	}
	seen := map[string]bool{g.Vertices[0]: true}
	stack := []string{g.Vertices[0]}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[v] {
			w := e.Other(v)
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return len(seen) == len(g.Vertices)
}

// OddDegreeVertices returns vertices of odd degree sorted by name. A
// connected graph has an Eulerian trail iff 0 or 2 such vertices exist
// (used by the G_JP hardness discussion, §3.2).
func (g *JoinGraph) OddDegreeVertices() []string {
	var odd []string
	for _, v := range g.Vertices {
		if g.Degree(v)%2 == 1 {
			odd = append(odd, v)
		}
	}
	sort.Strings(odd)
	return odd
}

// HasEulerianTrail reports whether a trail visiting every edge exactly
// once exists.
func (g *JoinGraph) HasEulerianTrail() bool {
	if !g.Connected() {
		return false
	}
	n := len(g.OddDegreeVertices())
	return n == 0 || n == 2
}

// HasEulerianCircuit reports whether a closed trail covering all edges
// exists (every vertex has even degree), as in the Fig. 1 example.
func (g *JoinGraph) HasEulerianCircuit() bool {
	return g.Connected() && len(g.OddDegreeVertices()) == 0
}

// IsChain reports whether the edge subset given by ids forms a simple
// chain (path) in the join graph: the induced multigraph is connected,
// has no repeated edges, and every vertex has degree ≤ 2 with exactly
// two degree-1 endpoints (or is a single edge). Chains are the queries
// Algorithm 1 evaluates in one MapReduce job (§5.1: "we only consider
// the case of chain joins").
//
// The returned order lists the relations along the chain when ok.
func (g *JoinGraph) IsChain(ids []int) (order []string, ok bool) {
	if len(ids) == 0 {
		return nil, false
	}
	edges := make([]Edge, 0, len(ids))
	seen := make(map[int]bool, len(ids))
	byID := make(map[int]Edge, len(g.Edges))
	for _, e := range g.Edges {
		byID[e.ID] = e
	}
	deg := make(map[string]int)
	adj := make(map[string][]Edge)
	for _, id := range ids {
		if seen[id] {
			return nil, false
		}
		seen[id] = true
		e, exists := byID[id]
		if !exists {
			return nil, false
		}
		edges = append(edges, e)
		deg[e.U]++
		deg[e.V]++
		adj[e.U] = append(adj[e.U], e)
		adj[e.V] = append(adj[e.V], e)
	}
	var ends []string
	for v, d := range deg {
		switch {
		case d == 1:
			ends = append(ends, v)
		case d > 2:
			return nil, false
		}
	}
	if len(ends) != 2 {
		return nil, false
	}
	sort.Strings(ends)
	// Walk from the lexicographically first endpoint.
	cur := ends[0]
	used := make(map[int]bool, len(edges))
	order = []string{cur}
	for len(used) < len(edges) {
		var next *Edge
		for i := range adj[cur] {
			e := adj[cur][i]
			if !used[e.ID] {
				next = &e
				break
			}
		}
		if next == nil {
			return nil, false // disconnected
		}
		used[next.ID] = true
		cur = next.Other(cur)
		order = append(order, cur)
	}
	if len(order) != len(edges)+1 {
		return nil, false
	}
	return order, true
}

// SubgraphConditions returns the conditions for the edge IDs in input
// order.
func (g *JoinGraph) SubgraphConditions(ids []int) (predicate.Conjunction, error) {
	byID := make(map[int]Edge, len(g.Edges))
	for _, e := range g.Edges {
		byID[e.ID] = e
	}
	cj := make(predicate.Conjunction, 0, len(ids))
	for _, id := range ids {
		e, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("query: no edge with id %d", id)
		}
		cj = append(cj, e.Cond)
	}
	return cj, nil
}

// Chain builds the chain query R_1 ⋈ R_2 ⋈ … ⋈ R_m with the supplied
// conditions linking consecutive relations. It is a convenience used by
// workload generators and tests.
func Chain(name string, relations []string, conds []predicate.Condition) (*Query, error) {
	if len(conds) != len(relations)-1 {
		return nil, fmt.Errorf("query: chain needs %d conditions for %d relations, got %d",
			len(relations)-1, len(relations), len(conds))
	}
	for i, c := range conds {
		if !(c.Left == relations[i] && c.Right == relations[i+1]) &&
			!(c.Left == relations[i+1] && c.Right == relations[i]) {
			return nil, fmt.Errorf("query: chain condition %d (%s) does not link %s and %s",
				i, c, relations[i], relations[i+1])
		}
	}
	return New(name, relations, conds)
}
