package query

import (
	"testing"

	"repro/internal/predicate"
)

func chain3(t *testing.T) *Query {
	t.Helper()
	q, err := New("chain3",
		[]string{"A", "B", "C"},
		[]predicate.Condition{
			predicate.C("A", "x", predicate.LT, "B", "y"),
			predicate.C("B", "y", predicate.GE, "C", "z"),
		})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// fig1Graph builds the 5-relation, 6-condition example of Fig. 1.
// Edges: θ1(R1,R2) θ2(R2,R3) θ3(R1,R3) θ4(R3,R4) θ5(R3,R5) θ6(R4,R5).
func fig1Graph(t *testing.T) *Query {
	t.Helper()
	q, err := New("fig1",
		[]string{"R1", "R2", "R3", "R4", "R5"},
		[]predicate.Condition{
			predicate.C("R1", "a", predicate.LT, "R2", "a"),
			predicate.C("R2", "a", predicate.LT, "R3", "a"),
			predicate.C("R1", "a", predicate.LT, "R3", "a"),
			predicate.C("R3", "a", predicate.LT, "R4", "a"),
			predicate.C("R3", "a", predicate.LT, "R5", "a"),
			predicate.C("R4", "a", predicate.LT, "R5", "a"),
		})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestNewValidation(t *testing.T) {
	cond := predicate.C("A", "x", predicate.LT, "B", "y")
	if _, err := New("q", []string{"A"}, []predicate.Condition{cond}); err == nil {
		t.Error("single relation accepted")
	}
	if _, err := New("q", []string{"A", "A"}, []predicate.Condition{cond}); err == nil {
		t.Error("duplicate relation accepted")
	}
	if _, err := New("q", []string{"A", "B"}, nil); err == nil {
		t.Error("no conditions accepted")
	}
	if _, err := New("q", []string{"A", "B"}, []predicate.Condition{predicate.C("A", "x", predicate.LT, "Z", "y")}); err == nil {
		t.Error("undeclared relation accepted")
	}
	if _, err := New("q", []string{"A", "B"}, []predicate.Condition{predicate.C("A", "x", predicate.LT, "A", "y")}); err == nil {
		t.Error("self-loop accepted")
	}
	// Disconnected: A-B edge only, C declared.
	if _, err := New("q", []string{"A", "B", "C"}, []predicate.Condition{cond}); err == nil {
		t.Error("disconnected graph accepted")
	}
	if _, err := New("q", []string{"A", "B", ""}, []predicate.Condition{cond}); err == nil {
		t.Error("empty relation name accepted")
	}
}

func TestConditionIDsAssigned(t *testing.T) {
	q := chain3(t)
	for i, c := range q.Conditions {
		if c.ID != i+1 {
			t.Errorf("condition %d has ID %d", i, c.ID)
		}
	}
	c, ok := q.Condition(2)
	if !ok || c.Left != "B" {
		t.Errorf("Condition(2) = %v, %v", c, ok)
	}
	if _, ok := q.Condition(0); ok {
		t.Error("Condition(0) succeeded")
	}
	if _, ok := q.Condition(99); ok {
		t.Error("Condition(99) succeeded")
	}
	ids := q.ConditionIDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Errorf("ConditionIDs = %v", ids)
	}
}

func TestJoinGraphStructure(t *testing.T) {
	g := fig1Graph(t).JoinGraph()
	if len(g.Vertices) != 5 || len(g.Edges) != 6 {
		t.Fatalf("graph shape %d vertices %d edges", len(g.Vertices), len(g.Edges))
	}
	if g.Degree("R3") != 4 {
		t.Errorf("deg(R3) = %d, want 4", g.Degree("R3"))
	}
	if g.Degree("R1") != 2 {
		t.Errorf("deg(R1) = %d, want 2", g.Degree("R1"))
	}
	if !g.Connected() {
		t.Error("fig1 graph not connected")
	}
}

func TestEulerianProperties(t *testing.T) {
	g := fig1Graph(t).JoinGraph()
	// All degrees even (2,2,4,2,2) → Eulerian circuit, as the paper
	// notes for Fig. 1.
	if !g.HasEulerianCircuit() {
		t.Error("fig1 graph should have an Eulerian circuit")
	}
	if !g.HasEulerianTrail() {
		t.Error("fig1 graph should have an Eulerian trail")
	}
	if odd := g.OddDegreeVertices(); len(odd) != 0 {
		t.Errorf("odd vertices = %v", odd)
	}
	// chain3: endpoints odd.
	g2 := chain3(t).JoinGraph()
	odd := g2.OddDegreeVertices()
	if len(odd) != 2 || odd[0] != "A" || odd[1] != "C" {
		t.Errorf("chain odd vertices = %v", odd)
	}
	if !g2.HasEulerianTrail() || g2.HasEulerianCircuit() {
		t.Error("chain Eulerian classification wrong")
	}
}

func TestIsChain(t *testing.T) {
	g := fig1Graph(t).JoinGraph()
	// θ1(R1,R2), θ2(R2,R3): chain R1-R2-R3.
	order, ok := g.IsChain([]int{1, 2})
	if !ok {
		t.Fatal("1,2 not recognized as chain")
	}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	// θ1, θ2, θ4: chain R1-R2-R3-R4.
	if order, ok := g.IsChain([]int{1, 2, 4}); !ok || len(order) != 4 {
		t.Errorf("1,2,4 chain = %v, %v", order, ok)
	}
	// θ1, θ4 disconnected → not a chain.
	if _, ok := g.IsChain([]int{1, 4}); ok {
		t.Error("disconnected edges accepted as chain")
	}
	// θ4, θ5, θ6 triangle → not a chain (no endpoints).
	if _, ok := g.IsChain([]int{4, 5, 6}); ok {
		t.Error("cycle accepted as chain")
	}
	// θ1, θ2, θ3 triangle → not a chain.
	if _, ok := g.IsChain([]int{1, 2, 3}); ok {
		t.Error("triangle accepted as chain")
	}
	// θ2, θ4, θ5: star at R3 → degree 3 → not a chain.
	if _, ok := g.IsChain([]int{2, 4, 5}); ok {
		t.Error("star accepted as chain")
	}
	// Repeated edge id.
	if _, ok := g.IsChain([]int{1, 1}); ok {
		t.Error("repeated edge accepted")
	}
	// Unknown id.
	if _, ok := g.IsChain([]int{42}); ok {
		t.Error("unknown edge accepted")
	}
	// Single edge is a chain.
	if order, ok := g.IsChain([]int{6}); !ok || len(order) != 2 {
		t.Errorf("single edge chain = %v, %v", order, ok)
	}
	// Empty.
	if _, ok := g.IsChain(nil); ok {
		t.Error("empty chain accepted")
	}
}

func TestChainOrderEndpoints(t *testing.T) {
	g := fig1Graph(t).JoinGraph()
	order, ok := g.IsChain([]int{1, 2, 4, 6})
	// R1-θ1-R2-θ2-R3-θ4-R4-θ6-R5
	if !ok || len(order) != 5 {
		t.Fatalf("chain = %v, %v", order, ok)
	}
	if order[0] != "R1" || order[4] != "R5" {
		t.Errorf("endpoints %v", order)
	}
}

func TestSubgraphConditions(t *testing.T) {
	g := fig1Graph(t).JoinGraph()
	cj, err := g.SubgraphConditions([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(cj) != 2 || cj[0].ID != 2 || cj[1].ID != 4 {
		t.Errorf("conjunction = %v", cj)
	}
	if _, err := g.SubgraphConditions([]int{99}); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestChainConstructor(t *testing.T) {
	conds := []predicate.Condition{
		predicate.C("A", "x", predicate.LT, "B", "y"),
		predicate.C("C", "z", predicate.GT, "B", "y"), // reversed orientation still links B,C
	}
	q, err := Chain("c", []string{"A", "B", "C"}, conds)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Conditions) != 2 {
		t.Fatalf("conditions = %d", len(q.Conditions))
	}
	if _, err := Chain("c", []string{"A", "B", "C"}, conds[:1]); err == nil {
		t.Error("wrong condition count accepted")
	}
	bad := []predicate.Condition{
		predicate.C("A", "x", predicate.LT, "C", "y"),
		predicate.C("B", "y", predicate.GT, "C", "y"),
	}
	if _, err := Chain("c", []string{"A", "B", "C"}, bad); err == nil {
		t.Error("non-adjacent chain condition accepted")
	}
}

func TestQueryString(t *testing.T) {
	q := chain3(t)
	s := q.String()
	if s == "" || len(s) < 10 {
		t.Errorf("String() = %q", s)
	}
}
