package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/relation"
)

// The travel-planning scenario of §2.2: n cities c_1…c_n, a flight
// table FI_{i,i+1} per consecutive pair holding (flight no, departure
// time dt, arrival time at), and a stay-over window [l1, l2] at each
// intermediate city. Valid itineraries satisfy, for each hop,
//
//	FI_i.at + L_{i+1}.l1 < FI_{i+1}.dt < FI_i.at + L_{i+1}.l2
//
// — a chain multi-way theta-join, the paper's flagship use case for
// the one-job Hilbert evaluation.

// FlightsConfig parameterises the itinerary generator.
type FlightsConfig struct {
	Cities        int // number of cities on the route (≥ 2 → Cities-1 legs)
	FlightsPerLeg int // flights per leg table
	Days          int // scheduling horizon
	Seed          int64
	// StayMin/StayMax are the layover window [l1, l2] in seconds,
	// applied at every intermediate city.
	StayMin, StayMax int64
	NominalGB        float64
}

// DefaultFlightsConfig gives a 4-city route with 2-hour to 8-hour
// layovers.
func DefaultFlightsConfig() FlightsConfig {
	return FlightsConfig{
		Cities: 4, FlightsPerLeg: 120, Days: 7, Seed: 1,
		StayMin: 2 * 3600, StayMax: 8 * 3600,
	}
}

// FlightSchema returns (flightno, dt, at).
func FlightSchema() *relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "flightno", Kind: relation.KindInt},
		relation.Column{Name: "dt", Kind: relation.KindInt},
		relation.Column{Name: "at", Kind: relation.KindInt},
	)
}

// LegName names the flight table between cities i and i+1 (0-based).
func LegName(i int) string { return fmt.Sprintf("FI%d_%d", i+1, i+2) }

// FlightsDB generates one relation per leg.
func FlightsDB(cfg FlightsConfig, sampleSize int) (*core.DB, error) {
	if cfg.Cities < 2 {
		return nil, fmt.Errorf("workloads: need >= 2 cities")
	}
	if cfg.FlightsPerLeg < 1 {
		return nil, fmt.Errorf("workloads: need >= 1 flight per leg")
	}
	if cfg.Days < 1 {
		cfg.Days = 7
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	legs := cfg.Cities - 1
	rels := make([]*relation.Relation, legs)
	for leg := 0; leg < legs; leg++ {
		r := relation.New(LegName(leg), FlightSchema())
		for f := 0; f < cfg.FlightsPerLeg; f++ {
			dep := int64(rng.Intn(cfg.Days*86400 - 6*3600))
			dur := int64(3600 + rng.Intn(5*3600))
			r.MustAppend(relation.Tuple{
				relation.Int(int64(leg*10000 + f)),
				relation.Int(dep),
				relation.Int(dep + dur),
			})
		}
		applyNominal(r, cfg.NominalGB/float64(legs))
		rels[leg] = r
	}
	return core.NewDB(sampleSize, cfg.Seed, rels...)
}

// FlightsQuery builds the itinerary chain query: for each consecutive
// leg pair, FI_i.at + l1 < FI_{i+1}.dt AND FI_{i+1}.dt < FI_i.at + l2.
func FlightsQuery(cfg FlightsConfig) (*query.Query, error) {
	legs := cfg.Cities - 1
	if legs < 2 {
		return nil, fmt.Errorf("workloads: itinerary query needs >= 3 cities")
	}
	names := make([]string, legs)
	for i := range names {
		names[i] = LegName(i)
	}
	var conds []predicate.Condition
	for i := 0; i+1 < legs; i++ {
		conds = append(conds,
			// FI_i.at + l1 < FI_{i+1}.dt
			predicate.C(names[i], "at", predicate.LT, names[i+1], "dt").
				WithOffsets(float64(cfg.StayMin), 0),
			// FI_{i+1}.dt < FI_i.at + l2  ⇔  FI_i.at + l2 > FI_{i+1}.dt
			predicate.C(names[i], "at", predicate.GT, names[i+1], "dt").
				WithOffsets(float64(cfg.StayMax), 0),
		)
	}
	return query.New("travelplan", names, conds)
}
