package workloads

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/mr"
	"repro/internal/predicate"
	"repro/internal/relation"
)

func TestMobileTableShape(t *testing.T) {
	cfg := DefaultMobileConfig()
	cfg.Tuples = 500
	r := MobileTable(cfg)
	if r.Cardinality() != 500 {
		t.Fatalf("cardinality = %d", r.Cardinality())
	}
	if r.Schema.Len() != 6 {
		t.Fatalf("schema = %s", r.Schema)
	}
	dIdx := r.Schema.MustLookup("d")
	btIdx := r.Schema.MustLookup("bt")
	lIdx := r.Schema.MustLookup("l")
	bscIdx := r.Schema.MustLookup("bsc")
	bsIdx := r.Schema.MustLookup("bs")
	for _, tup := range r.Tuples {
		d := tup[dIdx].Int64()
		if d < 0 || d >= 61 {
			t.Fatalf("day %d out of range", d)
		}
		bt := tup[btIdx].Int64()
		if bt < d*86400 || bt >= (d+1)*86400 {
			t.Fatalf("begin time %d outside day %d", bt, d)
		}
		if l := tup[lIdx].Int64(); l < 10 || l > 3600 {
			t.Fatalf("length %d out of range", l)
		}
		b := tup[bscIdx].Int64()
		if b < 0 || b >= int64(cfg.Stations) {
			t.Fatalf("station %d out of range", b)
		}
		if got := tup[bsIdx].Str(); got != StationName(b) {
			t.Fatalf("station name %q does not match code %d", got, b)
		}
	}
}

func TestMobileDeterminism(t *testing.T) {
	cfg := DefaultMobileConfig()
	a := MobileTable(cfg)
	b := MobileTable(cfg)
	if a.Cardinality() != b.Cardinality() {
		t.Fatal("nondeterministic cardinality")
	}
	for i := range a.Tuples {
		if a.Tuples[i].Key() != b.Tuples[i].Key() {
			t.Fatal("nondeterministic tuples")
		}
	}
}

func TestMobileDiurnalPattern(t *testing.T) {
	cfg := DefaultMobileConfig()
	cfg.Tuples = 20000
	r := MobileTable(cfg)
	btIdx := r.Schema.MustLookup("bt")
	hourCount := make([]int, 24)
	for _, tup := range r.Tuples {
		hourCount[(tup[btIdx].Int64()%86400)/3600]++
	}
	// Peak hours (12-16) should be busier than overnight (1-5).
	peak := hourCount[12] + hourCount[13] + hourCount[14] + hourCount[15]
	trough := hourCount[1] + hourCount[2] + hourCount[3] + hourCount[4]
	if peak <= trough {
		t.Errorf("no diurnal pattern: peak %d vs trough %d", peak, trough)
	}
}

func TestMobileNominalVolume(t *testing.T) {
	cfg := DefaultMobileConfig()
	cfg.NominalGB = 20
	r := MobileTable(cfg)
	got := float64(r.ModeledSize())
	if math.Abs(got-20e9)/20e9 > 0.01 {
		t.Errorf("modeled size %.3g, want 2e10", got)
	}
}

func TestMobileQueriesMatchTable2(t *testing.T) {
	// Table 2's structural stats: relation counts, inequality funcs,
	// join counts.
	expect := []struct {
		n     int
		rels  int
		conds int
		ineq  map[predicate.Op]bool
	}{
		{1, 3, 4, map[predicate.Op]bool{predicate.LE: true, predicate.GE: true}},
		{2, 3, 4, map[predicate.Op]bool{predicate.LE: true, predicate.GE: true, predicate.NE: true}},
		{3, 4, 4, map[predicate.Op]bool{predicate.LT: true, predicate.GT: true}},
		{4, 4, 4, map[predicate.Op]bool{predicate.LT: true, predicate.GT: true, predicate.NE: true}},
	}
	for _, e := range expect {
		q, err := MobileQuery(e.n)
		if err != nil {
			t.Fatal(err)
		}
		if len(q.Relations) != e.rels {
			t.Errorf("Q%d relations = %d, want %d", e.n, len(q.Relations), e.rels)
		}
		if len(q.Conditions) != e.conds {
			t.Errorf("Q%d conditions = %d, want %d", e.n, len(q.Conditions), e.conds)
		}
		got := map[predicate.Op]bool{}
		for _, op := range coreInequality(q.Conditions) {
			got[op] = true
		}
		for op := range e.ineq {
			if !got[op] {
				t.Errorf("Q%d missing inequality %v", e.n, op)
			}
		}
		for op := range got {
			if !e.ineq[op] {
				t.Errorf("Q%d unexpected inequality %v", e.n, op)
			}
		}
	}
	if _, err := MobileQuery(5); err == nil {
		t.Error("Q5 accepted")
	}
}

func coreInequality(conds []predicate.Condition) []predicate.Op {
	seen := map[predicate.Op]bool{}
	var out []predicate.Op
	for _, c := range conds {
		if c.Op != predicate.EQ && !seen[c.Op] {
			seen[c.Op] = true
			out = append(out, c.Op)
		}
	}
	return out
}

func TestMobileDBAndQueriesRun(t *testing.T) {
	cfg := DefaultMobileConfig()
	cfg.Tuples = 60
	db, err := MobileDB(cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 4; n++ {
		q, err := MobileQuery(n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Naive(q, db)
		if err != nil {
			t.Fatalf("Q%d naive: %v", n, err)
		}
		if res.Cardinality() == 0 {
			t.Logf("Q%d produced no rows at this scale (acceptable)", n)
		}
	}
}

func TestMobileTuplesFor(t *testing.T) {
	// Grows with volume, capped, smaller for 4-way queries.
	if MobileTuplesFor(1, 500) <= MobileTuplesFor(1, 20) {
		t.Error("tuples not growing with volume")
	}
	if MobileTuplesFor(3, 500) >= MobileTuplesFor(1, 500) {
		t.Error("4-way queries should use fewer tuples")
	}
	if MobileTuplesFor(1, 1e9) > 500 {
		t.Error("cap exceeded")
	}
}

func TestTPCHQueriesMatchTable3(t *testing.T) {
	expect := []struct {
		n     int
		rels  int
		conds int
		ineq  map[predicate.Op]bool
	}{
		{7, 5, 8, map[predicate.Op]bool{predicate.LE: true, predicate.GE: true}},
		{17, 3, 4, map[predicate.Op]bool{predicate.LE: true}},
		{18, 4, 4, map[predicate.Op]bool{predicate.GE: true}},
		{21, 6, 8, map[predicate.Op]bool{predicate.GE: true, predicate.NE: true}},
	}
	for _, e := range expect {
		q, err := TPCHQuery(e.n)
		if err != nil {
			t.Fatal(err)
		}
		if len(q.Relations) != e.rels {
			t.Errorf("Q%d relations = %d, want %d", e.n, len(q.Relations), e.rels)
		}
		if len(q.Conditions) != e.conds {
			t.Errorf("Q%d conditions = %d, want %d", e.n, len(q.Conditions), e.conds)
		}
		got := map[predicate.Op]bool{}
		for _, op := range coreInequality(q.Conditions) {
			got[op] = true
		}
		for op := range e.ineq {
			if !got[op] {
				t.Errorf("Q%d missing inequality %v", e.n, op)
			}
		}
		for op := range got {
			if !e.ineq[op] {
				t.Errorf("Q%d unexpected inequality %v", e.n, op)
			}
		}
	}
	if _, err := TPCHQuery(99); err == nil {
		t.Error("Q99 accepted")
	}
}

func TestTPCHDBRunsQueries(t *testing.T) {
	cfg := DefaultTPCHConfig()
	cfg.Scale = 0.3
	db, err := TPCHDB(cfg, 200)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{7, 17, 18, 21} {
		q, err := TPCHQuery(n)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.Naive(q, db); err != nil {
			t.Errorf("Q%d naive: %v", n, err)
		}
	}
}

func TestTPCHNominalVolume(t *testing.T) {
	cfg := DefaultTPCHConfig()
	cfg.NominalGB = 200
	db, err := TPCHDB(cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, name := range []string{"nation", "supplier", "customer", "orders", "lineitem", "part"} {
		r, err := db.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		total += float64(r.ModeledSize())
	}
	// The rid column added by NewDB inflates encoded size slightly
	// beyond nominal; allow 25%.
	if total < 200e9*0.95 || total > 200e9*1.3 {
		t.Errorf("total modeled = %.3g, want ~2e11", total)
	}
}

func TestFlightsDBAndQuery(t *testing.T) {
	cfg := DefaultFlightsConfig()
	cfg.FlightsPerLeg = 40
	db, err := FlightsDB(cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	q, err := FlightsQuery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Relations) != 3 || len(q.Conditions) != 4 {
		t.Fatalf("query shape: %d rels %d conds", len(q.Relations), len(q.Conditions))
	}
	res, err := core.Naive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	// Verify every itinerary satisfies the layover window.
	at1 := res.Schema.MustLookup("FI1_2.at")
	dt2 := res.Schema.MustLookup("FI2_3.dt")
	for _, tup := range res.Tuples {
		gap := tup[dt2].Int64() - tup[at1].Int64()
		if gap <= cfg.StayMin || gap >= cfg.StayMax {
			t.Fatalf("itinerary violates layover: gap %d", gap)
		}
	}
}

func TestFlightsValidation(t *testing.T) {
	cfg := DefaultFlightsConfig()
	cfg.Cities = 1
	if _, err := FlightsDB(cfg, 100); err == nil {
		t.Error("1 city accepted")
	}
	if _, err := FlightsQuery(cfg); err == nil {
		t.Error("1-city query accepted")
	}
	cfg = DefaultFlightsConfig()
	cfg.FlightsPerLeg = 0
	if _, err := FlightsDB(cfg, 100); err == nil {
		t.Error("0 flights accepted")
	}
	cfg = DefaultFlightsConfig()
	cfg.Cities = 2
	if _, err := FlightsQuery(cfg); err == nil {
		t.Error("2-city itinerary (no chain) accepted")
	}
}

func TestTPCHRowsFor(t *testing.T) {
	if TPCHRowsFor(7, 1000) <= TPCHRowsFor(7, 200) {
		t.Error("scale not growing with volume")
	}
	if TPCHRowsFor(21, 200) >= TPCHRowsFor(17, 200) {
		t.Error("6-way query should generate less data than 3-way")
	}
}

// TestZipfSkewKnobs: the -zipf plumbing produces measurably more
// concentrated key distributions without disturbing default datasets.
func TestZipfSkewKnobs(t *testing.T) {
	topFrac := func(vals []int64) float64 {
		counts := map[int64]int{}
		max := 0
		for _, v := range vals {
			counts[v]++
			if counts[v] > max {
				max = counts[v]
			}
		}
		return float64(max) / float64(len(vals))
	}

	// Mobile: higher exponent concentrates station codes.
	mild := DefaultMobileConfig()
	mild.Tuples = 3000
	heavy := mild
	heavy.ZipfS = 2.5
	col := func(cfg MobileConfig) []int64 {
		r := MobileTable(cfg)
		idx := r.Schema.MustLookup("bsc")
		out := make([]int64, 0, r.Cardinality())
		for _, tp := range r.Tuples {
			out = append(out, tp[idx].Int64())
		}
		return out
	}
	if mf, hf := topFrac(col(mild)), topFrac(col(heavy)); hf <= mf {
		t.Errorf("mobile zipf 2.5 not more skewed: top frac %.3f vs default %.3f", hf, mf)
	}

	// TPC-H: ZipfS skews custkey; 0 keeps the uniform default.
	ucfg := DefaultTPCHConfig()
	ucfg.Scale = 4
	zcfg := ucfg
	zcfg.ZipfS = 1.5
	custCol := func(cfg TPCHConfig) []int64 {
		db, err := TPCHDB(cfg, 100)
		if err != nil {
			t.Fatal(err)
		}
		orders, err := db.Relation("orders")
		if err != nil {
			t.Fatal(err)
		}
		idx := orders.Schema.MustLookup("custkey")
		out := make([]int64, 0, orders.Cardinality())
		for _, tp := range orders.Tuples {
			out = append(out, tp[idx].Int64())
		}
		return out
	}
	uf, zf := topFrac(custCol(ucfg)), topFrac(custCol(zcfg))
	if zf < 2*uf {
		t.Errorf("tpch zipf 1.5 custkey top frac %.3f, want >= 2x uniform %.3f", zf, uf)
	}
}

// TestMobileInternedShuffleBytes: dictionary interning must cut the
// mobile workload's shuffle volume by at least 30% — the varint
// station-name codes replace ~29-byte strings in every shuffled tuple.
// NominalGB stays 0 so VolumeMultiplier is 1 and the metric reflects
// real encoded bytes. Flips core.StringInterning, so no t.Parallel.
func TestMobileInternedShuffleBytes(t *testing.T) {
	run := func(interned bool) int64 {
		prev := core.StringInterning
		core.StringInterning = interned
		defer func() { core.StringInterning = prev }()
		cfg := DefaultMobileConfig()
		cfg.Tuples = 400
		db, err := MobileDB(cfg, 100)
		if err != nil {
			t.Fatal(err)
		}
		rels := make([]*relation.Relation, 2)
		for i, name := range []string{"t1", "t2"} {
			r, err := db.Relation(name)
			if err != nil {
				t.Fatal(err)
			}
			rels[i] = r
		}
		conds := []predicate.Condition{
			predicate.C("t1", "bs", predicate.EQ, "t2", "bs"),
			predicate.C("t1", "d", predicate.LT, "t2", "d"),
		}
		job, _, err := core.BuildThetaJob("mobile-bs", rels, conds, 4, 1<<12)
		if err != nil {
			t.Fatal(err)
		}
		mcfg := mr.DefaultConfig()
		mcfg.TuplesPerMapTask = 64
		res, err := mr.Run(context.Background(), mcfg, nil, job)
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics.ShuffleBytes
	}
	plain := run(false)
	coded := run(true)
	if plain <= 0 || coded <= 0 {
		t.Fatalf("no shuffle traffic: plain=%d interned=%d", plain, coded)
	}
	if float64(coded) > 0.7*float64(plain) {
		t.Errorf("interned shuffle %d bytes > 70%% of plain %d (%.1f%%)",
			coded, plain, 100*float64(coded)/float64(plain))
	}
	t.Logf("shuffle bytes: plain=%d interned=%d (%.1f%%)", plain, coded, 100*float64(coded)/float64(plain))
}
