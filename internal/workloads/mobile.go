// Package workloads generates the paper's three data sets and
// benchmark queries: the mobile call-detail-record set with queries
// Q1–Q4 (§6.3.1, Table 2), the TPC-H subset with the modified
// Q7/Q17/Q18/Q21 (§6.3.2, Table 3), and the travel-planning flight
// itineraries of the §2.2 motivating example.
//
// Nominal data volumes ("20 GB", "1 TB") are realised by a documented
// two-knob scheme: generated tuple counts grow with the nominal volume
// but are capped to keep in-process join work tractable, while each
// relation's VolumeMultiplier is set so its ModeledSize equals the
// nominal bytes — so the simulator's I/O, network and time accounting
// sees the paper's volumes while the laptop sees thousands of rows.
package workloads

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/relation"
)

// MobileConfig parameterises the CDR generator. The real data set
// records 571,687,536 calls from 2,113,968 users over 2,000+ base
// stations across 61 days (Oct 1 – Nov 30, 2008).
type MobileConfig struct {
	Tuples    int     // generated call records
	Days      int     // observation window (default 61)
	Stations  int     // base stations (default 50 scaled down from 2000)
	Users     int     // distinct caller ids (default Tuples/3)
	Seed      int64   // generator seed
	NominalGB float64 // modeled volume; 0 leaves VolumeMultiplier at 1
	// ZipfS is the station-popularity Zipf exponent (s > 1; larger is
	// more skewed). 0 keeps the default of 1.3; values in (0,1] are
	// clamped to just above 1 (mild skew).
	ZipfS float64
}

// DefaultMobileConfig mirrors the paper's data set shape at laptop scale.
func DefaultMobileConfig() MobileConfig {
	return MobileConfig{Tuples: 300, Days: 61, Stations: 50, Seed: 1}
}

// MobileSchema returns the CDR schema of §6.1: caller id, date, begin
// time, call length, base station code — plus the station's textual
// identifier bs (StationName of bsc), the string column the
// dictionary-interning fast path and its benchmarks join on.
func MobileSchema() *relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "id", Kind: relation.KindInt},
		relation.Column{Name: "d", Kind: relation.KindInt},
		relation.Column{Name: "bt", Kind: relation.KindInt},
		relation.Column{Name: "l", Kind: relation.KindInt},
		relation.Column{Name: "bsc", Kind: relation.KindInt},
		relation.Column{Name: "bs", Kind: relation.KindString},
	)
}

// mobileRegions are the city names station identifiers embed (the
// paper's data set covers a Chinese province's network).
var mobileRegions = [...]string{
	"guangzhou", "shenzhen", "dongguan", "foshan",
	"zhuhai", "huizhou", "zhongshan", "jiangmen",
}

// StationName renders base-station code c as the network's textual
// cell-site identifier ("base-station-<city>-<code>"). The city
// segment varies before the zero-padded code, so lexicographic name
// order differs from numeric code order and string conditions genuinely
// exercise the order-preserving dictionary rather than degenerating to
// the integer order of bsc.
func StationName(c int64) string {
	return fmt.Sprintf("base-station-%s-%06d", mobileRegions[c%int64(len(mobileRegions))], c)
}

// diurnalHour draws an hour of day following the paper's observed
// diurnal pattern (a 24-hour-periodic call-volume curve): calls peak
// mid-day and evening, trough overnight.
func diurnalHour(rng *rand.Rand) int {
	// Rejection-sample against 1 + sin curve shifted to peak at 14h.
	for {
		h := rng.Intn(24)
		w := 0.25 + 0.75*(1+math.Sin((float64(h)-8)*math.Pi/12))/2
		if rng.Float64() < w {
			return h
		}
	}
}

// MobileTable generates the call table.
func MobileTable(cfg MobileConfig) *relation.Relation {
	if cfg.Days <= 0 {
		cfg.Days = 61
	}
	if cfg.Stations <= 0 {
		cfg.Stations = 50
	}
	if cfg.Users <= 0 {
		cfg.Users = cfg.Tuples/3 + 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, zipfExponent(cfg.ZipfS, 1.3), 1, uint64(cfg.Stations-1))
	r := relation.New("calls", MobileSchema())
	for i := 0; i < cfg.Tuples; i++ {
		day := rng.Intn(cfg.Days)
		hour := diurnalHour(rng)
		bt := int64(day)*86400 + int64(hour)*3600 + int64(rng.Intn(3600))
		// Call lengths: lognormal-ish, most under 5 minutes.
		l := int64(10 + rng.ExpFloat64()*120)
		if l > 3600 {
			l = 3600
		}
		// Station popularity is Zipf-skewed: low codes busier.
		bsc := int64(zipf.Uint64())
		r.MustAppend(relation.Tuple{
			relation.Int(int64(rng.Intn(cfg.Users))),
			relation.Int(int64(day)),
			relation.Int(bt),
			relation.Int(l),
			relation.Int(bsc),
			relation.Str(StationName(bsc)),
		})
	}
	applyNominal(r, cfg.NominalGB)
	return r
}

// zipfExponent resolves a configured Zipf exponent: 0 means the
// workload default, and rand.NewZipf requires s > 1, so values in
// (0,1] clamp to just above 1.
func zipfExponent(s, def float64) float64 {
	if s == 0 {
		return def
	}
	if s <= 1 {
		return 1.0001
	}
	return s
}

// applyNominal sets VolumeMultiplier so ModeledSize == gb×1e9.
func applyNominal(r *relation.Relation, gb float64) {
	if gb <= 0 || r.EncodedSize() == 0 {
		return
	}
	r.VolumeMultiplier = gb * 1e9 / float64(r.EncodedSize())
}

// MobileTuplesFor picks the generated cardinality for a query/volume
// pair: counts grow with the nominal volume but are capped by query
// arity so the 4-way self-joins stay tractable in-process.
func MobileTuplesFor(queryNum int, gb float64) int {
	if gb < 1 {
		gb = 1
	}
	base := 140.0 * math.Pow(gb/20.0, 0.25)
	switch queryNum {
	case 1, 2: // 3-way self-joins
		return clampInt(int(base*2), 120, 500)
	default: // 4-way self-joins
		return clampInt(int(base), 80, 240)
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// MobileDB builds the database for the mobile queries: the base table
// plus aliases t1..t4 so self-joins present distinct planner vertices.
func MobileDB(cfg MobileConfig, sampleSize int) (*core.DB, error) {
	table := MobileTable(cfg)
	db, err := core.NewDB(sampleSize, cfg.Seed, table)
	if err != nil {
		return nil, err
	}
	for i := 1; i <= 4; i++ {
		if err := db.Alias(fmt.Sprintf("t%d", i), "calls"); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// MobileQuery returns benchmark query n ∈ {1,2,3,4} exactly as defined
// in §6.3.1:
//
//	Q1: t1.bt ≤ t2.bt, t1.l ≥ t2.l, t2.bsc = t3.bsc, t2.d = t3.d
//	Q2: t1.bt ≤ t2.bt, t1.l ≥ t2.l, t2.bsc ≠ t3.bsc, t2.d = t3.d
//	Q3: t1.d < t2.d,  t2.d < t3.d,  t1.d+3 > t3.d,  t1.bsc = t4.bsc
//	Q4: t1.d < t2.d,  t2.d < t3.d,  t1.d+3 > t3.d,  t1.bsc ≠ t4.bsc
func MobileQuery(n int) (*query.Query, error) {
	switch n {
	case 1, 2:
		bscOp := predicate.EQ
		if n == 2 {
			bscOp = predicate.NE
		}
		return query.New(fmt.Sprintf("Q%d", n),
			[]string{"t1", "t2", "t3"},
			[]predicate.Condition{
				predicate.C("t1", "bt", predicate.LE, "t2", "bt"),
				predicate.C("t1", "l", predicate.GE, "t2", "l"),
				predicate.C("t2", "bsc", bscOp, "t3", "bsc"),
				predicate.C("t2", "d", predicate.EQ, "t3", "d"),
			})
	case 3, 4:
		bscOp := predicate.EQ
		if n == 4 {
			bscOp = predicate.NE
		}
		return query.New(fmt.Sprintf("Q%d", n),
			[]string{"t1", "t2", "t3", "t4"},
			[]predicate.Condition{
				predicate.C("t1", "d", predicate.LT, "t2", "d"),
				predicate.C("t2", "d", predicate.LT, "t3", "d"),
				predicate.C("t1", "d", predicate.GT, "t3", "d").WithOffsets(3, 0),
				predicate.C("t1", "bsc", bscOp, "t4", "bsc"),
			})
	default:
		return nil, fmt.Errorf("workloads: no mobile query Q%d", n)
	}
}
