package workloads

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/relation"
)

// TPC-H subset: the tables and join skeletons needed by the paper's
// four benchmark queries Q7, Q17, Q18, Q21 (Table 3). The paper uses
// DBGEN data and "slightly amend[s] the join predicate to add
// inequality join conditions"; the queries below keep each query's
// original equi-join skeleton and add inequality conditions so the
// per-query statistics match Table 3:
//
//	Q7  — 5 relations, 8 conditions, {≤,≥}
//	Q17 — 3 relations, 4 conditions, {≤}
//	Q18 — 4 relations, 4 conditions, {≥}
//	Q21 — 6 relations, 8 conditions, {≥,≠}

// TPCHConfig parameterises the generator. Cardinalities follow DBGEN
// ratios at laptop scale: per unit of Scale, 25 nations, 10 suppliers,
// 150 customers·f, 150 orders, 600 lineitems, 200 parts.
type TPCHConfig struct {
	Scale     float64 // row-count scale unit (1.0 ≈ 1k total rows)
	Seed      int64
	NominalGB float64 // modeled total volume across all tables
	// ZipfS, when > 0, draws the foreign keys that drive the benchmark
	// joins (orders.custkey, lineitem.partkey, lineitem.suppkey) from a
	// Zipf(s) distribution instead of uniformly — a few hot customers,
	// parts and suppliers, the skew shape the skew subsystem targets.
	// 0 keeps DBGEN's uniform references; values in (0,1] clamp to
	// just above 1.
	ZipfS float64
}

// DefaultTPCHConfig returns a laptop-scale configuration.
func DefaultTPCHConfig() TPCHConfig { return TPCHConfig{Scale: 1, Seed: 1} }

// TPCHRowsFor picks the generation scale for a query/volume pair,
// growing slowly with nominal volume and capped by query arity (Q21
// joins lineitem three times).
func TPCHRowsFor(queryNum int, gb float64) float64 {
	if gb < 1 {
		gb = 1
	}
	base := math.Pow(gb/200.0, 0.25)
	switch queryNum {
	case 17:
		return 1.4 * base
	case 18:
		return 1.0 * base
	case 21:
		return 0.7 * base
	default: // Q7: deep equi chain, cheap per tuple, needs more rows
		return 2.0 * base
	}
}

const (
	tpchDateLo = 0
	tpchDateHi = 2400 // days covering 1992-1998
)

// TPCHDB generates every table, applies the nominal volume split
// proportionally to DBGEN's byte shares, and registers the aliases the
// four queries need (nation n1/n2, lineitem l1/l2/l3).
func TPCHDB(cfg TPCHConfig, sampleSize int) (*core.DB, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sc := func(base int) int {
		n := int(float64(base) * cfg.Scale)
		if n < 3 {
			n = 3
		}
		return n
	}
	// Foreign-key picker: uniform by default, Zipf-skewed when asked;
	// the uniform path draws from rng exactly as before so default
	// datasets are bit-identical across this change.
	fkPick := func(n int) func() int {
		if cfg.ZipfS <= 0 {
			return func() int { return rng.Intn(n) }
		}
		z := rand.NewZipf(rng, zipfExponent(cfg.ZipfS, 1.2), 1, uint64(n-1))
		return func() int { return int(z.Uint64()) }
	}
	nNation := 25
	nSupplier := sc(25)
	nCustomer := sc(75)
	nOrders := sc(150)
	nLineitem := sc(450)
	nPart := sc(100)

	nation := relation.New("nation", relation.MustSchema(
		relation.Column{Name: "nationkey", Kind: relation.KindInt},
		relation.Column{Name: "regionkey", Kind: relation.KindInt},
	))
	for i := 0; i < nNation; i++ {
		nation.MustAppend(relation.Tuple{relation.Int(int64(i)), relation.Int(int64(i % 5))})
	}
	supplier := relation.New("supplier", relation.MustSchema(
		relation.Column{Name: "suppkey", Kind: relation.KindInt},
		relation.Column{Name: "nationkey", Kind: relation.KindInt},
		relation.Column{Name: "acctbal", Kind: relation.KindFloat},
	))
	for i := 0; i < nSupplier; i++ {
		supplier.MustAppend(relation.Tuple{
			relation.Int(int64(i)),
			relation.Int(int64(rng.Intn(nNation))),
			relation.Float(float64(rng.Intn(11000)) - 1000),
		})
	}
	customer := relation.New("customer", relation.MustSchema(
		relation.Column{Name: "custkey", Kind: relation.KindInt},
		relation.Column{Name: "nationkey", Kind: relation.KindInt},
		relation.Column{Name: "acctbal", Kind: relation.KindFloat},
	))
	for i := 0; i < nCustomer; i++ {
		customer.MustAppend(relation.Tuple{
			relation.Int(int64(i)),
			relation.Int(int64(rng.Intn(nNation))),
			relation.Float(float64(rng.Intn(11000)) - 1000),
		})
	}
	orders := relation.New("orders", relation.MustSchema(
		relation.Column{Name: "orderkey", Kind: relation.KindInt},
		relation.Column{Name: "custkey", Kind: relation.KindInt},
		relation.Column{Name: "orderdate", Kind: relation.KindInt},
		relation.Column{Name: "totalprice", Kind: relation.KindFloat},
	))
	custPick := fkPick(nCustomer)
	for i := 0; i < nOrders; i++ {
		orders.MustAppend(relation.Tuple{
			relation.Int(int64(i)),
			relation.Int(int64(custPick())),
			relation.Int(int64(tpchDateLo + rng.Intn(tpchDateHi-tpchDateLo))),
			relation.Float(1000 + rng.Float64()*400000),
		})
	}
	lineitem := relation.New("lineitem", relation.MustSchema(
		relation.Column{Name: "orderkey", Kind: relation.KindInt},
		relation.Column{Name: "partkey", Kind: relation.KindInt},
		relation.Column{Name: "suppkey", Kind: relation.KindInt},
		relation.Column{Name: "quantity", Kind: relation.KindInt},
		relation.Column{Name: "extendedprice", Kind: relation.KindFloat},
		relation.Column{Name: "shipdate", Kind: relation.KindInt},
		relation.Column{Name: "commitdate", Kind: relation.KindInt},
		relation.Column{Name: "receiptdate", Kind: relation.KindInt},
	))
	orderDateIdx := orders.Schema.MustLookup("orderdate")
	partPick, suppPick := fkPick(nPart), fkPick(nSupplier)
	for i := 0; i < nLineitem; i++ {
		ok := int64(rng.Intn(nOrders))
		// As in DBGEN, line items ship 1–121 days after their order is
		// placed and are received 1–30 days after shipping — so the
		// added inequality join predicates of Q7 select a realistic
		// majority of lines rather than a measure-zero slice.
		odate := int(orders.Tuples[ok][orderDateIdx].Int64())
		ship := odate + 1 + rng.Intn(121)
		commit := odate + 30 + rng.Intn(60)
		receipt := ship + 1 + rng.Intn(30)
		lineitem.MustAppend(relation.Tuple{
			relation.Int(ok),
			relation.Int(int64(partPick())),
			relation.Int(int64(suppPick())),
			relation.Int(int64(1 + rng.Intn(50))),
			relation.Float(100 + rng.Float64()*90000),
			relation.Int(int64(ship)),
			relation.Int(int64(commit)),
			relation.Int(int64(receipt)),
		})
	}
	part := relation.New("part", relation.MustSchema(
		relation.Column{Name: "partkey", Kind: relation.KindInt},
		relation.Column{Name: "retailprice", Kind: relation.KindFloat},
		relation.Column{Name: "size", Kind: relation.KindInt},
	))
	for i := 0; i < nPart; i++ {
		part.MustAppend(relation.Tuple{
			relation.Int(int64(i)),
			relation.Float(900 + rng.Float64()*1200),
			relation.Int(int64(1 + rng.Intn(50))),
		})
	}

	tables := []*relation.Relation{nation, supplier, customer, orders, lineitem, part}
	if cfg.NominalGB > 0 {
		var total int64
		for _, t := range tables {
			total += t.EncodedSize()
		}
		for _, t := range tables {
			if t.EncodedSize() > 0 {
				share := float64(t.EncodedSize()) / float64(total)
				t.VolumeMultiplier = cfg.NominalGB * 1e9 * share / float64(t.EncodedSize())
			}
		}
	}
	db, err := core.NewDB(sampleSize, cfg.Seed, tables...)
	if err != nil {
		return nil, err
	}
	for _, alias := range [][2]string{
		{"n1", "nation"}, {"n2", "nation"},
		{"l1", "lineitem"}, {"l2", "lineitem"}, {"l3", "lineitem"},
	} {
		if err := db.Alias(alias[0], alias[1]); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// TPCHQuery returns the modified benchmark query n ∈ {7,17,18,21}.
func TPCHQuery(n int) (*query.Query, error) {
	switch n {
	case 7:
		// Supplier–customer trade flows: the Q7 equi skeleton over
		// supplier, lineitem, orders, customer, nation plus the added
		// inequality predicates ({≤,≥}, 8 conditions).
		return query.New("Q7",
			[]string{"supplier", "lineitem", "orders", "customer", "nation"},
			[]predicate.Condition{
				predicate.C("supplier", "suppkey", predicate.EQ, "lineitem", "suppkey"),
				predicate.C("lineitem", "orderkey", predicate.EQ, "orders", "orderkey"),
				predicate.C("orders", "custkey", predicate.EQ, "customer", "custkey"),
				predicate.C("customer", "nationkey", predicate.EQ, "nation", "nationkey"),
				predicate.C("supplier", "nationkey", predicate.EQ, "nation", "nationkey"),
				predicate.C("lineitem", "shipdate", predicate.GE, "orders", "orderdate"),
				predicate.C("lineitem", "receiptdate", predicate.LE, "orders", "orderdate").WithOffsets(0, 110),
				predicate.C("supplier", "acctbal", predicate.GE, "customer", "acctbal"),
			})
	case 17:
		// Small-quantity-order revenue: lineitem × part × lineitem
		// with the averaging subquery flattened to theta conditions
		// ({≤}, 4 conditions).
		return query.New("Q17",
			[]string{"lineitem", "part", "l2"},
			[]predicate.Condition{
				predicate.C("lineitem", "partkey", predicate.EQ, "part", "partkey"),
				predicate.C("l2", "partkey", predicate.EQ, "part", "partkey"),
				predicate.C("lineitem", "quantity", predicate.LE, "l2", "quantity"),
				predicate.C("lineitem", "extendedprice", predicate.LE, "l2", "extendedprice"),
			})
	case 18:
		// Large-volume customers: customer–orders–lineitem with the
		// HAVING subquery flattened ({≥}, 4 conditions).
		return query.New("Q18",
			[]string{"customer", "orders", "lineitem", "l2"},
			[]predicate.Condition{
				predicate.C("customer", "custkey", predicate.EQ, "orders", "custkey"),
				predicate.C("orders", "orderkey", predicate.EQ, "lineitem", "orderkey"),
				predicate.C("l2", "orderkey", predicate.EQ, "orders", "orderkey"),
				predicate.C("lineitem", "quantity", predicate.GE, "l2", "quantity"),
			})
	case 21:
		// Suppliers who kept orders waiting: supplier–lineitem–orders–
		// nation with the EXISTS/NOT EXISTS lineitems flattened
		// ({≥,≠}, 8 conditions).
		return query.New("Q21",
			[]string{"supplier", "l1", "orders", "nation", "l2", "l3"},
			[]predicate.Condition{
				predicate.C("supplier", "suppkey", predicate.EQ, "l1", "suppkey"),
				predicate.C("orders", "orderkey", predicate.EQ, "l1", "orderkey"),
				predicate.C("supplier", "nationkey", predicate.EQ, "nation", "nationkey"),
				predicate.C("l2", "orderkey", predicate.EQ, "l1", "orderkey"),
				predicate.C("l2", "suppkey", predicate.NE, "l1", "suppkey"),
				predicate.C("l3", "orderkey", predicate.EQ, "l1", "orderkey"),
				predicate.C("l3", "suppkey", predicate.NE, "l1", "suppkey"),
				predicate.C("l2", "receiptdate", predicate.GE, "l1", "receiptdate"),
			})
	default:
		return nil, fmt.Errorf("workloads: no TPC-H query Q%d", n)
	}
}
