// Command thetad serves multi-way theta-joins as a long-lived HTTP
// daemon: relations load once, then concurrent clients submit queries
// that share one K_P-unit processing pool, one plan cache, and one
// warm-start statistics catalog.
//
// Usage:
//
//	thetad -rel A=a.csv -rel B=b.csv [-addr :7077] [-kp 96] \
//	       [-max-concurrent 4] [-max-queue 16] [-queue-timeout 10s] \
//	       [-query-timeout 0] [-min-budget 1] [-no-warm] [-trace f] [-metrics f]
//
// Endpoints (see internal/server):
//
//	POST /query    {"spec": "FROM A, B WHERE A.x < B.y", "limit": 20}
//	GET  /healthz  liveness
//	GET  /metrics  live metrics registry JSON
//
// SIGINT/SIGTERM drain gracefully: in-flight queries finish, new ones
// are rejected with 503, and the -trace/-metrics artifacts are written
// on the way out.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/server"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ", ") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "thetad:", err)
		os.Exit(1)
	}
}

func run() error {
	var rels multiFlag
	flag.Var(&rels, "rel", "relation as NAME=path.csv (repeatable)")
	addr := flag.String("addr", ":7077", "listen address")
	kp := flag.Int("kp", 96, "shared processing units across all queries")
	maxConcurrent := flag.Int("max-concurrent", 4, "queries admitted to execution at once")
	maxQueue := flag.Int("max-queue", 16, "queued admissions before rejecting with 429")
	queueTimeout := flag.Duration("queue-timeout", 10*time.Second, "max time a submission waits for admission")
	queryTimeout := flag.Duration("query-timeout", 0, "per-query execution deadline after admission (0 = none); expiry degrades that query to 503 + Retry-After")
	minBudget := flag.Int("min-budget", 1, "floor for a query's unit budget")
	noWarm := flag.Bool("no-warm", false, "disable warm-start plan revision from measured statistics")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of all executions to `file` on shutdown")
	metricsOut := flag.String("metrics", "", "write the metrics registry as JSON to `file` on shutdown")
	flag.Parse()

	if len(rels) == 0 {
		flag.Usage()
		return fmt.Errorf("need at least one -rel")
	}
	var relations []*relation.Relation
	for _, spec := range rels {
		eq := strings.IndexByte(spec, '=')
		if eq <= 0 {
			return fmt.Errorf("bad -rel %q (want NAME=path.csv)", spec)
		}
		name, path := spec[:eq], spec[eq+1:]
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		r, err := relation.ReadCSV(f, name)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		relations = append(relations, r)
	}
	db, err := core.NewDB(1000, 1, relations...)
	if err != nil {
		return err
	}

	o := &obs.Obs{Metrics: obs.NewRegistry()}
	if *traceOut != "" {
		o.Tracer = obs.NewTracer()
	}
	svc := server.New(db, server.Config{
		KP:               *kp,
		MaxConcurrent:    *maxConcurrent,
		MaxQueue:         *maxQueue,
		QueueTimeout:     *queueTimeout,
		QueryTimeout:     *queryTimeout,
		MinBudget:        *minBudget,
		Obs:              o,
		DisableWarmStart: *noWarm,
	})

	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("thetad listening on %s (K_P=%d, %d relations, catalog version %016x)\n",
			*addr, *kp, len(relations), db.CatalogVersion())
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Graceful drain: stop accepting connections, let in-flight queries
	// finish, then flush observability artifacts.
	fmt.Println("thetad: draining...")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "thetad: shutdown:", err)
	}
	svc.Close()
	if *traceOut != "" {
		if err := writeFileWith(*traceOut, o.Tracer.WriteJSON); err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
		fmt.Println("trace written to", *traceOut)
	}
	if *metricsOut != "" {
		if err := writeFileWith(*metricsOut, o.Metrics.WriteJSON); err != nil {
			return fmt.Errorf("-metrics: %w", err)
		}
		fmt.Println("metrics written to", *metricsOut)
	}
	fmt.Println("thetad: stopped")
	return nil
}

// writeFileWith creates path and streams write into it.
func writeFileWith(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
