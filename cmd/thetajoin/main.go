// Command thetajoin plans and executes a multi-way theta-join over CSV
// relations using the paper's optimizer.
//
// Usage:
//
//	thetajoin -rel A=a.csv -rel B=b.csv -cond "A.x < B.y" [-cond ...] \
//	          [-kp 96] [-explain] [-limit 20] [-out result.csv] \
//	          [-trace f] [-metrics f] [-pprof addr] [-spill-budget-mb MB] \
//	          [-faults "seed=7,map-kills=2,..."]
//	thetajoin -server http://localhost:7077 -query "FROM A, B WHERE A.x < B.y"
//
// With -server the query is submitted to a running thetad daemon
// instead of executing locally; both modes print the same
// order-insensitive "result hash:" line, so outputs are directly
// comparable across entry points.
//
// Each -rel flag registers a relation from a CSV file written in the
// typed-header format (name:kind,...). Each -cond flag adds one theta
// condition "Rel.col OP Rel.col" with OP ∈ {<, <=, =, >=, >, <>}.
//
// -explain prints the chosen plan, executes it, and renders the
// per-job execution report: planned reducer counts and σ next to the
// measured reduce tasks, wall times, shuffle volume and balance
// ratios, with the modeled makespan and the measured wall time kept
// explicitly apart. -trace writes Chrome trace-event JSON (open at
// ui.perfetto.dev), -metrics the structured counters/histograms, and
// -pprof serves live net/http/pprof endpoints during execution.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/mr"
	"repro/internal/obs"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/server"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ", ") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "thetajoin:", err)
		os.Exit(1)
	}
}

func run() error {
	var rels, conds multiFlag
	flag.Var(&rels, "rel", "relation as NAME=path.csv (repeatable)")
	flag.Var(&conds, "cond", `condition "A.x < B.y" (repeatable)`)
	queryStr := flag.String("query", "", `full query, e.g. "FROM a.csv t1, b.csv t2 WHERE t1.x < t2.y" (aliases resolve against -rel names)`)
	kp := flag.Int("kp", 96, "available processing units")
	explain := flag.Bool("explain", false, "print the plan, execute, and print the planned-vs-measured execution report")
	limit := flag.Int("limit", 20, "max result rows to print (-1 = all)")
	outPath := flag.String("out", "", "write full result CSV to this path")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of the execution to `file` (open in Perfetto)")
	metricsOut := flag.String("metrics", "", "write the structured metrics registry as JSON to `file`")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on `addr` (e.g. localhost:6060) during execution")
	serverURL := flag.String("server", "", "submit -query to a running thetad at `url` (e.g. http://localhost:7077) instead of executing locally")
	spillMB := flag.Int("spill-budget-mb", 0, "bound real shuffle memory per map task at `MB`, spilling sorted runs to a temp block store (0 = fully in-memory); results are bit-identical either way")
	faultSpec := flag.String("faults", "", `inject a seeded fault plan, e.g. "seed=7,map-kills=2,reduce-kills=1,corrupt-frames=1,stragglers=1,delay=300ms"; all faults are retried and the result hash stays identical to a fault-free run`)
	flag.Parse()

	if *serverURL != "" {
		if *queryStr == "" {
			return fmt.Errorf("-server needs a -query")
		}
		return submitRemote(*serverURL, *queryStr, *limit)
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "thetajoin: -pprof: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "[pprof listening on http://%s/debug/pprof/]\n", *pprofAddr)
	}

	// A -query can alias one table several times (self-joins), so a
	// single -rel suffices with it; -cond mode needs two relations.
	if *queryStr != "" {
		if len(rels) < 1 {
			flag.Usage()
			return fmt.Errorf("-query needs at least one -rel")
		}
	} else if len(rels) < 2 || len(conds) == 0 {
		flag.Usage()
		return fmt.Errorf("need at least two -rel and one -cond (or a -query)")
	}
	var relations []*relation.Relation
	var names []string
	for _, spec := range rels {
		eq := strings.IndexByte(spec, '=')
		if eq <= 0 {
			return fmt.Errorf("bad -rel %q (want NAME=path.csv)", spec)
		}
		name, path := spec[:eq], spec[eq+1:]
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		r, err := relation.ReadCSV(f, name)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		relations = append(relations, r)
		names = append(names, name)
	}
	db, err := core.NewDB(1000, 1, relations...)
	if err != nil {
		return err
	}
	var q *query.Query
	if *queryStr != "" {
		var aliases map[string]string
		q, aliases, err = query.Parse("query", *queryStr)
		if err != nil {
			return err
		}
		// Register aliases against the loaded relations.
		loaded := map[string]bool{}
		for _, n := range names {
			loaded[n] = true
		}
		for alias, table := range aliases {
			if alias == table {
				if !loaded[table] {
					return fmt.Errorf("-query references unknown relation %q", table)
				}
				continue
			}
			if err := db.Alias(alias, table); err != nil {
				return err
			}
		}
	} else {
		var parsed []predicate.Condition
		for _, c := range conds {
			pc, err := parseCondition(c)
			if err != nil {
				return err
			}
			parsed = append(parsed, pc)
		}
		q, err = query.New("query", names, parsed)
		if err != nil {
			return err
		}
	}
	cfg := mr.DefaultConfig()
	if cfg.MapSlots > *kp {
		cfg.MapSlots = *kp
	}
	cfg.ReduceSlots = *kp
	if *spillMB > 0 {
		cfg.SpillBudgetBytes = int64(*spillMB) << 20
		// Serve spilled runs back through a page cache bounded at the
		// same budget; the store lives in a temp dir removed on exit.
		store, err := dfs.NewBlockStore("", cfg.SpillBudgetBytes)
		if err != nil {
			return err
		}
		defer store.Close()
		cfg.Spill = store
	}
	if *faultSpec != "" {
		plan, err := mr.ParseFaultPlan(*faultSpec)
		if err != nil {
			return fmt.Errorf("-faults: %w", err)
		}
		cfg.Faults = plan
	}
	pl := core.NewPlanner(cfg, *kp)
	plan, err := pl.Plan(q, db)
	if err != nil {
		return err
	}
	fmt.Println(plan)
	// Observability sinks; metrics use the process-wide registry so
	// context-free hot paths (dictionary probes) land in the export.
	var o *obs.Obs
	if *traceOut != "" || *metricsOut != "" {
		o = &obs.Obs{Metrics: obs.Default()}
		if *traceOut != "" {
			o.Tracer = obs.NewTracer()
		}
	}
	res, err := pl.ExecuteContext(obs.NewContext(context.Background(), o), plan, db)
	if werr := writeObs(o, *traceOut, *metricsOut); werr != nil && err == nil {
		err = werr
	}
	if err != nil {
		return err
	}
	if *explain {
		fmt.Print(res.Report())
	}
	fmt.Printf("result: %d rows, simulated makespan %.1fs, %.2f GB shuffled\n",
		res.Output.Cardinality(), res.Makespan, float64(res.ShuffleBytes)/1e9)
	if res.SpillBytes > 0 {
		fmt.Printf("spill: %.2f MB in %d runs, peak live pair bytes %.2f MB\n",
			float64(res.SpillBytes)/1e6, res.SpillRuns, float64(res.PeakLiveBytes)/1e6)
	}
	fmt.Println("result hash:", server.ResultHash(res))
	shown := 0
	for _, t := range res.Output.Tuples {
		if *limit >= 0 && shown >= *limit {
			fmt.Printf("... (%d more rows)\n", res.Output.Cardinality()-shown)
			break
		}
		fmt.Println(t)
		shown++
	}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := relation.WriteCSV(f, res.Output); err != nil {
			return err
		}
		fmt.Println("full result written to", *outPath)
	}
	return nil
}

// submitRemote posts the query to a thetad daemon and prints the
// response in the same shape as a local run, so result hashes are
// directly comparable across the two entry points.
func submitRemote(base, spec string, limit int) error {
	body, err := json.Marshal(server.Request{Spec: spec, Limit: limit})
	if err != nil {
		return err
	}
	httpResp, err := http.Post(strings.TrimRight(base, "/")+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(httpResp.Body, 4096))
		return fmt.Errorf("server: %s: %s", httpResp.Status, strings.TrimSpace(string(msg)))
	}
	var resp server.Response
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return err
	}
	fmt.Printf("query %s: canonical %q\n", resp.Name, resp.Canonical)
	fmt.Printf("plan: cache hit %v, planned in %.2fms, budget %d units", resp.CacheHit, float64(resp.PlanNs)/1e6, resp.Budget)
	if len(resp.WarmRevised) > 0 {
		fmt.Printf(", warm-revised %v", resp.WarmRevised)
	}
	fmt.Println()
	fmt.Printf("result: %d rows, simulated makespan %.1fs, %.2f GB shuffled\n",
		resp.Rows, resp.Makespan, float64(resp.ShuffleBytes)/1e9)
	fmt.Println("result hash:", resp.ResultHash)
	for _, t := range resp.Tuples {
		fmt.Println(t)
	}
	if rest := resp.Rows - len(resp.Tuples); rest > 0 && limit >= 0 {
		fmt.Printf("... (%d more rows)\n", rest)
	}
	return nil
}

// writeObs flushes the trace and metrics exports when requested.
// Nil-safe: a nil Obs (no flags) writes nothing.
func writeObs(o *obs.Obs, tracePath, metricsPath string) error {
	if o == nil {
		return nil
	}
	if tracePath != "" {
		if err := writeFileWith(tracePath, o.Tracer.WriteJSON); err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
	}
	if metricsPath != "" {
		if err := writeFileWith(metricsPath, o.Metrics.WriteJSON); err != nil {
			return fmt.Errorf("-metrics: %w", err)
		}
	}
	return nil
}

// writeFileWith creates path and streams write into it.
func writeFileWith(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseCondition parses "A.x < B.y" (whitespace-separated).
func parseCondition(s string) (predicate.Condition, error) {
	fields := strings.Fields(s)
	if len(fields) != 3 {
		return predicate.Condition{}, fmt.Errorf("bad condition %q (want \"A.x OP B.y\")", s)
	}
	op, err := predicate.ParseOp(fields[1])
	if err != nil {
		return predicate.Condition{}, err
	}
	l := strings.SplitN(fields[0], ".", 2)
	r := strings.SplitN(fields[2], ".", 2)
	if len(l) != 2 || len(r) != 2 {
		return predicate.Condition{}, fmt.Errorf("bad condition %q: operands must be Rel.col", s)
	}
	return predicate.C(l[0], l[1], op, r[0], r[1]), nil
}
